// Regenerates the recorded-schedule regression corpus under tests/corpus/.
//
//   $ corpus_gen --out=tests/corpus
//
// Each entry is an artifact directory (swarm/artifacts.h format) holding a
// recorded schedule of an *interesting but clean* run — a near-miss the
// replay_corpus_test re-executes and re-gates on every CI run. Entries are
// deterministic: regenerating over an unchanged simulator is a no-op diff.
// Shrunken counterexamples from future swarm failures belong in the same
// directory once fixed (as regression locks), which is why the format is
// shared with the swarm's artifact writer.
#include <iostream>
#include <memory>

#include "adversary/basic.h"
#include "adversary/crash.h"
#include "adversary/latemsg.h"
#include "adversary/partition.h"
#include "common/flags.h"
#include "sim/replay.h"
#include "sim/simulator.h"
#include "swarm/artifacts.h"
#include "swarm/matrix.h"
#include "swarm/runner.h"

namespace {

using namespace rcommit;

/// Runs `adversary` against the cell's replay fleet, records the schedule,
/// verifies the run is clean, and writes the corpus entry.
void generate(const std::string& out_root, const std::string& name,
              const swarm::CellConfig& config,
              std::unique_ptr<sim::Adversary> adversary) {
  auto recorder = std::make_unique<sim::RecordingAdversary>(std::move(adversary));
  auto* recorder_ptr = recorder.get();
  sim::Simulator sim({.seed = config.seed, .max_events = config.max_events},
                     swarm::make_replay_fleet(config), std::move(recorder));
  const auto result = sim.run();

  const auto detail =
      swarm::gate_violation(config, swarm::cell_votes(config), result);
  RCOMMIT_CHECK_MSG(detail.empty(),
                    "corpus entry " << name << " violates invariants: " << detail);
  RCOMMIT_CHECK_MSG(result.status == sim::RunStatus::kAllDecided,
                    "corpus entry " << name << " did not decide");

  swarm::Artifact artifact;
  artifact.config = config;
  artifact.violation = "none — near-miss corpus entry (" + name + ")";
  artifact.schedule = recorder_ptr->schedule();
  const auto dir = swarm::write_artifact(out_root, artifact, name);
  std::cout << dir << ": " << artifact.schedule.actions.size() << " actions\n";
}

}  // namespace

int main(int argc, char** argv) {
  const auto flags = Flags::parse(argc, argv);
  const auto out = flags.get_string("out", "tests/corpus");

  // 1. Late-message near miss: a commit fleet where one GO and one vote
  //    message arrive a single tick inside the on-time bound. One more tick
  //    of delay would make them late (the paper's §1 scenario); the protocol
  //    must shrug either way.
  {
    swarm::CellConfig config;
    config.protocol = swarm::ProtocolKind::kCommit;
    config.adversary = swarm::AdversaryKind::kLateMsg;
    config.n = 5;
    config.t = 2;
    config.k = 3;
    config.seed = 1001;
    std::vector<adversary::LateRule> rules;
    rules.push_back({.from = 0, .to = 3, .nth = 0, .extra_delay = config.k - 1});
    rules.push_back({.from = 2, .to = 1, .nth = 1, .extra_delay = config.k - 1});
    generate(out, "latemsg_nearmiss", config,
             std::make_unique<adversary::LateMessageAdversary>(std::move(rules)));
  }

  // 2. Healing partition: {0,1} cut off from {2,3,4} for the first 60
  //    events, then full connectivity. Protocol 2 must still agree and
  //    terminate once the guaranteed messages flow.
  {
    swarm::CellConfig config;
    config.protocol = swarm::ProtocolKind::kCommit;
    config.adversary = swarm::AdversaryKind::kPartition;
    config.n = 5;
    config.t = 2;
    config.k = 2;
    config.seed = 1002;
    generate(out, "partition_heal", config,
             std::make_unique<adversary::PartitionAdversary>(
                 std::vector<ProcId>{0, 1}, /*heal_at_event=*/60));
  }

  // 3. Mid-broadcast crashes: two victims die part-way through a broadcast
  //    (sends to some destinations suppressed) — the "guaranteed message"
  //    machinery's hardest shape.
  {
    swarm::CellConfig config;
    config.protocol = swarm::ProtocolKind::kCommit;
    config.adversary = swarm::AdversaryKind::kCrash;
    config.n = 7;
    config.t = 3;
    config.k = 2;
    config.seed = 1003;
    std::vector<adversary::CrashPlan> plans;
    plans.push_back({.victim = 2, .at_clock = 4, .suppress_sends_to = {0, 5}});
    plans.push_back({.victim = 5, .at_clock = 7, .suppress_sends_to = {1, 3, 6}});
    generate(out, "crash_midbroadcast", config,
             std::make_unique<adversary::CrashAdversary>(
                 adversary::make_random_adversary(config.seed + 1, 2),
                 std::move(plans)));
  }

  // 4. Paxos Commit with a dead ballot-0 leader: the transaction manager
  //    crashes mid-begin-broadcast, leaving a mixed fleet of registered and
  //    unregistered votes; the rotating recovery leaders must still drive
  //    every survivor to one outcome (the nonblocking path 2PC lacks).
  {
    swarm::CellConfig config;
    config.protocol = swarm::ProtocolKind::kPaxosCommit;
    config.adversary = swarm::AdversaryKind::kCrash;
    config.n = 5;
    config.t = 2;
    config.k = 2;
    config.seed = 1004;
    std::vector<adversary::CrashPlan> plans;
    plans.push_back({.victim = 0, .at_clock = 1, .suppress_sends_to = {2, 4}});
    generate(out, "paxoscommit_leadercrash", config,
             std::make_unique<adversary::CrashAdversary>(
                 adversary::make_random_adversary(config.seed + 1, 2),
                 std::move(plans)));
  }

  // 5. BFT commit with live traitors: the cell's seed-derived Byzantine
  //    victims (wrapped into the replay fleet by make_replay_fleet itself)
  //    equivocate under a random schedule; the honest majority must still
  //    converge. Locks both the protocol and the determinism of the
  //    config-derived tampering across simulator changes.
  {
    swarm::CellConfig config;
    config.protocol = swarm::ProtocolKind::kBftCommit;
    config.adversary = swarm::AdversaryKind::kByzantine;
    config.n = 7;
    config.t = 3;
    config.k = 2;
    config.seed = 1005;
    generate(out, "bftcommit_byzantine", config,
             adversary::make_random_adversary(config.seed + 1, 3));
  }

  return 0;
}
