#include "tools/rcommit_analyze/frontend.h"

#include <algorithm>
#include <cctype>
#include <set>

namespace rcommit::analyze {
namespace {

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

// Extracts analyzer annotations from one comment's text. Same grammar as the
// lint marker: the marker must be followed by "(" / "_FILE(" / no other
// suffix; the reason is whatever follows "):", trimmed. ROOT notes take an
// optional reason but never require one — the rule id in the marker is the
// contract.
void parse_notes(const std::string& comment, int line, bool code_before,
                 std::vector<Note>& out) {
  struct Marker {
    const char* text;
    Note::Kind kind;
  };
  static const Marker kMarkers[] = {
      // Longest first so ALLOW_FILE is not mis-read as ALLOW + prose.
      {"RCOMMIT_ANALYZE_ALLOW_FILE", Note::Kind::kAllowFile},
      {"RCOMMIT_ANALYZE_ALLOW", Note::Kind::kAllow},
      {"RCOMMIT_ANALYZE_ROOT", Note::Kind::kRoot},
  };
  size_t pos = 0;
  while (pos < comment.size()) {
    size_t best = std::string::npos;
    const Marker* marker = nullptr;
    for (const Marker& m : kMarkers) {
      const size_t at = comment.find(m.text, pos);
      if (at < best) {
        best = at;
        marker = &m;
      }
    }
    if (marker == nullptr) break;
    size_t p = best + std::string(marker->text).size();
    if (p >= comment.size() || comment[p] != '(') {
      pos = p;  // prose mention (or the _FILE form already matched earlier)
      continue;
    }
    ++p;
    const size_t close = comment.find(')', p);
    if (close == std::string::npos) {
      pos = p;
      continue;
    }
    Note note;
    note.kind = marker->kind;
    note.line = line;
    note.code_before = code_before;
    note.rule = comment.substr(p, close - p);
    const bool rule_is_ident =
        !note.rule.empty() &&
        std::all_of(note.rule.begin(), note.rule.end(),
                    [](char ch) { return ident_char(ch); });
    if (!rule_is_ident) {
      pos = close + 1;  // placeholder like "(<rule>)" in prose
      continue;
    }
    p = close + 1;
    while (p < comment.size() &&
           std::isspace(static_cast<unsigned char>(comment[p]))) {
      ++p;
    }
    if (p < comment.size() && comment[p] == ':') {
      std::string reason = comment.substr(p + 1);
      if (const size_t end = reason.find("*/"); end != std::string::npos) {
        reason.resize(end);
      }
      note.has_reason = reason.find_first_not_of(" \t") != std::string::npos;
    }
    out.push_back(note);
    pos = p;
  }
}

struct Scan {
  std::vector<Tok> toks;
  std::vector<Note> notes;
};

// Lexer. Same shape as the rcommit_lint lexer with two front-end-oriented
// changes: preprocessor directives swallow their whole (continuation-joined)
// logical line so macro bodies cannot unbalance the structural parser, and
// annotations are harvested into typed Notes.
Scan lex(const std::string& src) {
  Scan scan;
  int line = 1;
  int toks_on_line = 0;
  size_t i = 0;
  const size_t n = src.size();

  auto at = [&](size_t k) { return k < n ? src[k] : '\0'; };
  auto push = [&](TokKind kind, std::string text) {
    scan.toks.push_back(Tok{kind, std::move(text), line});
    ++toks_on_line;
  };

  while (i < n) {
    const char c = src[i];
    if (c == '\n') {
      ++line;
      toks_on_line = 0;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (c == '/' && at(i + 1) == '/') {
      size_t end = i + 2;
      while (end < n && src[end] != '\n') ++end;
      parse_notes(src.substr(i + 2, end - i - 2), line, toks_on_line > 0,
                  scan.notes);
      i = end;
      continue;
    }
    if (c == '/' && at(i + 1) == '*') {
      size_t end = i + 2;
      const int start_line = line;
      while (end + 1 < n && !(src[end] == '*' && src[end + 1] == '/')) {
        if (src[end] == '\n') ++line;
        ++end;
      }
      parse_notes(src.substr(i + 2, end - i - 2), start_line, toks_on_line > 0,
                  scan.notes);
      i = (end + 1 < n) ? end + 2 : n;
      if (line != start_line) toks_on_line = 0;
      continue;
    }
    if (c == 'R' && at(i + 1) == '"') {
      size_t p = i + 2;
      std::string delim;
      while (p < n && src[p] != '(') delim += src[p++];
      const std::string closer = ")" + delim + "\"";
      const size_t end = src.find(closer, p);
      std::string body = end == std::string::npos
                             ? src.substr(p + 1)
                             : src.substr(p + 1, end - p - 1);
      push(TokKind::kStr, std::move(body));
      line += static_cast<int>(std::count(
          src.begin() + static_cast<long>(i),
          src.begin() + static_cast<long>(end == std::string::npos
                                              ? n
                                              : end + closer.size()),
          '\n'));
      i = end == std::string::npos ? n : end + closer.size();
      continue;
    }
    if (c == '"' || c == '\'') {
      const char quote = c;
      size_t p = i + 1;
      std::string body;
      while (p < n && src[p] != quote) {
        if (src[p] == '\\' && p + 1 < n) {
          body += src[p];
          body += src[p + 1];
          p += 2;
          continue;
        }
        if (src[p] == '\n') ++line;
        body += src[p++];
      }
      push(TokKind::kStr, std::move(body));
      i = p + 1;
      continue;
    }
    // Preprocessor directive: emit `#`, the directive name, and an include
    // target, then swallow the rest of the logical line (backslash
    // continuations included). Macro replacement lists are not real code and
    // would otherwise feed unbalanced braces into the structural parser.
    if (c == '#' && toks_on_line == 0) {
      push(TokKind::kPunct, "#");
      size_t p = i + 1;
      while (p < n && (src[p] == ' ' || src[p] == '\t')) ++p;
      size_t d = p;
      while (d < n && ident_char(src[d])) ++d;
      const std::string directive = src.substr(p, d - p);
      if (!directive.empty()) push(TokKind::kIdent, directive);
      p = d;
      if (directive == "include") {
        while (p < n && (src[p] == ' ' || src[p] == '\t')) ++p;
        const char open = at(p);
        const char close_ch = open == '<' ? '>' : (open == '"' ? '"' : '\0');
        if (close_ch != '\0') {
          size_t close = p + 1;
          while (close < n && src[close] != close_ch && src[close] != '\n') {
            ++close;
          }
          push(TokKind::kStr, src.substr(p + 1, close - p - 1));
          p = close < n && src[close] == close_ch ? close + 1 : close;
        }
      }
      // Swallow the remainder, honoring backslash-newline continuations but
      // still harvesting annotations from // comments on the directive line.
      while (p < n) {
        if (src[p] == '/' && at(p + 1) == '/') {
          size_t end = p + 2;
          while (end < n && src[end] != '\n') ++end;
          parse_notes(src.substr(p + 2, end - p - 2), line, true, scan.notes);
          p = end;
          continue;
        }
        if (src[p] == '\n') {
          if (p > 0 && src[p - 1] == '\\') {
            ++line;
            ++p;
            continue;
          }
          break;  // logical line ends; main loop handles the newline
        }
        ++p;
      }
      i = p;
      continue;
    }
    if (ident_start(c)) {
      size_t p = i + 1;
      while (p < n && ident_char(src[p])) ++p;
      push(TokKind::kIdent, src.substr(i, p - i));
      i = p;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && std::isdigit(static_cast<unsigned char>(at(i + 1))))) {
      size_t p = i + 1;
      while (p < n) {
        const char d = src[p];
        if (ident_char(d) || d == '.' ||
            ((d == '+' || d == '-') &&
             (src[p - 1] == 'e' || src[p - 1] == 'E' || src[p - 1] == 'p' ||
              src[p - 1] == 'P'))) {
          ++p;
        } else {
          break;
        }
      }
      push(TokKind::kNum, src.substr(i, p - i));
      i = p;
      continue;
    }
    if (c == ':' && at(i + 1) == ':') {
      push(TokKind::kPunct, "::");
      i += 2;
      continue;
    }
    if (c == '-' && at(i + 1) == '>') {
      push(TokKind::kPunct, "->");
      i += 2;
      continue;
    }
    push(TokKind::kPunct, std::string(1, c));
    ++i;
  }
  return scan;
}

// ---------------------------------------------------------------------------
// Structural parser.
// ---------------------------------------------------------------------------

struct Scope {
  enum class Kind { kNamespace, kClass, kBlock };
  Kind kind;
  std::string name;
};

class Parser {
 public:
  Parser(TranslationUnit& tu) : tu_(tu), toks_(tu.toks) {}

  void run() {
    size_t i = 0;
    while (i < toks_.size()) i = step(i);
  }

 private:
  const std::string& text(size_t i) const {
    static const std::string kEmpty;
    return i < toks_.size() ? toks_[i].text : kEmpty;
  }
  bool is_ident(size_t i) const {
    return i < toks_.size() && toks_[i].kind == TokKind::kIdent;
  }

  /// Index just past the brace that matches the opener at `open` (which must
  /// be "{"); toks_.size() if unbalanced.
  size_t skip_braces(size_t open) const {
    int depth = 0;
    for (size_t j = open; j < toks_.size(); ++j) {
      if (text(j) == "{") ++depth;
      if (text(j) == "}" && --depth == 0) return j + 1;
    }
    return toks_.size();
  }

  /// Index just past a balanced `<...>` starting at `open` ("<"). The lexer
  /// never fuses ">>", so closing depth bookkeeping is per-character. Bails
  /// at `;` or `{` so a stray comparison cannot eat the file.
  size_t skip_angles(size_t open) const {
    int depth = 0;
    for (size_t j = open; j < toks_.size(); ++j) {
      const std::string& s = text(j);
      if (s == "<") ++depth;
      if (s == ">" && --depth == 0) return j + 1;
      if (s == ";" || s == "{") break;
    }
    return open + 1;
  }

  size_t skip_parens(size_t open) const {
    int depth = 0;
    for (size_t j = open; j < toks_.size(); ++j) {
      if (text(j) == "(") ++depth;
      if (text(j) == ")" && --depth == 0) return j + 1;
    }
    return toks_.size();
  }

  size_t skip_to_semi(size_t i) const {
    int brace = 0, paren = 0;
    for (size_t j = i; j < toks_.size(); ++j) {
      const std::string& s = text(j);
      if (s == "{") ++brace;
      if (s == "}") {
        if (brace == 0) return j;  // enclosing scope closes; let step() see it
        --brace;
      }
      if (s == "(") ++paren;
      if (s == ")") --paren;
      if (s == ";" && brace == 0 && paren == 0) return j + 1;
    }
    return toks_.size();
  }

  std::string innermost_class() const {
    for (auto it = stack_.rbegin(); it != stack_.rend(); ++it) {
      if (it->kind == Scope::Kind::kClass) return it->name;
    }
    return "";
  }

  std::string scope_prefix() const {
    std::string out;
    for (const Scope& s : stack_) {
      if (s.name.empty()) continue;
      if (!out.empty()) out += "::";
      out += s.name;
    }
    return out;
  }

  size_t step(size_t i) {
    const std::string& s = text(i);
    if (s == "#") {
      // Directive marker + name ("# pragma", "# include"); an include target
      // follows as a kStr token, which the punct/str branch below skips.
      return is_ident(i + 1) ? i + 2 : i + 1;
    }
    if (s == "{") {
      stack_.push_back({Scope::Kind::kBlock, ""});
      return i + 1;
    }
    if (s == "}") {
      if (!stack_.empty()) stack_.pop_back();
      return i + 1;
    }
    if (s == ";" || toks_[i].kind == TokKind::kPunct ||
        toks_[i].kind == TokKind::kStr || toks_[i].kind == TokKind::kNum) {
      return i + 1;
    }
    if (s == "namespace") return parse_namespace(i);
    if (s == "enum") return parse_enum(i);
    if (s == "class" || s == "struct" || s == "union") return parse_record(i);
    if (s == "template") {
      if (text(i + 1) != "<") return i + 1;
      // Parse what the template header introduces with the header's line
      // active, so a function template's decl_line covers `template <...>`
      // (ROOT/ALLOW annotations sit above that line).
      const size_t j = skip_angles(i + 1);
      template_line_ = toks_[i].line;
      const size_t r = step(j);
      template_line_ = 0;
      return r;
    }
    if (s == "public" || s == "private" || s == "protected") {
      // Access label: consume `public :` only. skip_to_semi here would
      // swallow every member defined before the next depth-0 semicolon.
      return text(i + 1) == ":" ? i + 2 : i + 1;
    }
    if (s == "using" || s == "typedef" || s == "friend" ||
        s == "static_assert") {
      return skip_to_semi(i);
    }
    return parse_declaration(i);
  }

  size_t parse_namespace(size_t i) {
    size_t j = i + 1;
    std::string name;
    while (is_ident(j) || text(j) == "::") {
      if (is_ident(j)) {
        if (!name.empty()) name += "::";
        name += text(j);
      }
      ++j;
    }
    if (text(j) == "{") {
      stack_.push_back({Scope::Kind::kNamespace, name});
      return j + 1;
    }
    return skip_to_semi(i);  // alias or malformed
  }

  size_t parse_record(size_t i) {
    size_t j = i + 1;
    // Attributes and declspec-ish macro idents between keyword and name:
    // `class CAPABILITY("mutex") Mutex {`.
    std::string name;
    while (j < toks_.size()) {
      const std::string& s = text(j);
      if (s == "[") {  // [[attribute]]
        int depth = 0;
        while (j < toks_.size()) {
          if (text(j) == "[") ++depth;
          if (text(j) == "]" && --depth == 0) break;
          ++j;
        }
        ++j;
        continue;
      }
      if (text(j) == "final") break;  // `class X final : ...` — X is the name
      if (is_ident(j)) {
        if (text(j + 1) == "(") {  // annotation macro with args
          name = text(j);
          j = skip_parens(j + 1);
          continue;
        }
        name = text(j);
        ++j;
        continue;
      }
      break;
    }
    // `class X;` forward declaration / `class X final : base {` / `struct {`.
    while (j < toks_.size() && text(j) != "{" && text(j) != ";" &&
           text(j) != "=") {
      if (text(j) == "<") {
        j = skip_angles(j);
        continue;
      }
      if (text(j) == "(") return parse_declaration(i + 1);  // `struct X f(...)`
      ++j;
    }
    if (text(j) == "{") {
      stack_.push_back({Scope::Kind::kClass, name});
      return j + 1;
    }
    return skip_to_semi(j);
  }

  size_t parse_enum(size_t i) {
    size_t j = i + 1;
    if (text(j) == "class" || text(j) == "struct") ++j;
    std::string name;
    if (is_ident(j)) {
      name = text(j);
      ++j;
    }
    if (text(j) == ":") {  // underlying type
      while (j < toks_.size() && text(j) != "{" && text(j) != ";") ++j;
    }
    if (text(j) != "{") return skip_to_semi(i);  // opaque declaration
    EnumDef def;
    def.name = name;
    def.path = tu_.path;
    def.line = toks_[i].line;
    size_t k = j + 1;
    int depth = 1;
    bool expect_name = true;
    while (k < toks_.size() && depth > 0) {
      const std::string& s = text(k);
      if (s == "{" || s == "(" || s == "<") ++depth;
      if (s == "}" || s == ")" || s == ">") --depth;
      if (depth == 0) break;
      if (depth == 1) {
        if (expect_name && is_ident(k)) {
          def.enumerators.push_back(s);
          expect_name = false;
        } else if (s == ",") {
          expect_name = true;
        }
      }
      ++k;
    }
    if (!def.name.empty() && !def.enumerators.empty()) {
      tu_.enums.push_back(std::move(def));
    }
    return skip_to_semi(k);
  }

  // Anything else at namespace/class scope: possibly a function definition.
  // Scans the declaration-ish token run for `name(params)` and classifies
  // what follows the parameter list.
  size_t parse_declaration(size_t i) {
    size_t j = i;
    std::string name;        // bare name of the latest `name(` candidate
    std::string qualifier;   // explicit `Class::` qualifier on that name
    int name_line = 0;
    size_t params_open = 0;  // index of the candidate's `(`

    while (j < toks_.size()) {
      const std::string& s = text(j);
      if (s == ";" || s == "}" || s == "=" || s == "{") break;
      if (s == "#" || s == "namespace") return j;  // ran off the declaration
      if (s == "<") {
        j = skip_angles(j);
        continue;
      }
      if (s == "[") {  // [[attributes]] / array declarator
        int depth = 0;
        while (j < toks_.size()) {
          if (text(j) == "[") ++depth;
          if (text(j) == "]" && --depth == 0) break;
          ++j;
        }
        ++j;
        continue;
      }
      if (s == "operator") {
        // `operator==(`, `operator()(`, `operator new(`, `operator bool(`.
        name = "operator";
        name_line = toks_[j].line;
        qualifier.clear();
        if (j > 0 && text(j - 1) == "::" && is_ident(j - 2)) {
          qualifier = text(j - 2);
        }
        size_t k = j + 1;
        if (text(k) == "(" && text(k + 1) == ")") {
          name += "()";
          k += 2;
        } else {
          while (k < toks_.size() && text(k) != "(") {
            name += text(k);
            ++k;
          }
        }
        if (text(k) != "(") return skip_to_semi(j);
        params_open = k;
        j = skip_parens(k);
        return classify_after_params(i, j, name, qualifier, name_line,
                                     params_open);
      }
      if (s == "~" && is_ident(j + 1) && text(j + 2) == "(") {
        name = "~" + text(j + 1);
        name_line = toks_[j].line;
        qualifier.clear();
        if (j > 0 && text(j - 1) == "::" && is_ident(j - 2)) {
          qualifier = text(j - 2);
        }
        params_open = j + 2;
        j = skip_parens(params_open);
        return classify_after_params(i, j, name, qualifier, name_line,
                                     params_open);
      }
      if (is_ident(j) && text(j + 1) == "(") {
        name = s;
        name_line = toks_[j].line;
        qualifier.clear();
        if (j > 0 && text(j - 1) == "::" && is_ident(j - 2)) {
          qualifier = text(j - 2);
        }
        params_open = j + 1;
        j = skip_parens(params_open);
        return classify_after_params(i, j, name, qualifier, name_line,
                                     params_open);
      }
      ++j;
    }
    if (text(j) == "{") {
      // A brace we do not understand (aggregate initializer, asm block):
      // treat as an opaque block.
      stack_.push_back({Scope::Kind::kBlock, ""});
      return j + 1;
    }
    if (text(j) == "}") return j;
    if (text(j) == "=") return skip_to_semi(j);
    return j < toks_.size() ? j + 1 : toks_.size();
  }

  // `j` sits just past the candidate's closing ')'. Decide declaration vs
  // definition, consuming trailing qualifiers and a constructor initializer
  // list if present.
  size_t classify_after_params(size_t decl_start, size_t j, std::string name,
                               std::string qualifier, int name_line,
                               size_t params_open) {
    static const std::set<std::string> kTrailers = {
        "const", "noexcept", "override", "final",  "mutable",
        "try",   "requires", "&",        "*",      "::",
        "->",    "volatile", "throw",    "&&"};
    while (j < toks_.size()) {
      const std::string& s = text(j);
      if (s == "{") {
        return record_function(decl_start, j, std::move(name),
                               std::move(qualifier), name_line);
      }
      if (s == ";") return j + 1;
      if (s == "=") return skip_to_semi(j);  // = default / = delete / = 0
      if (s == ":") return consume_init_list(decl_start, j + 1, std::move(name),
                                             std::move(qualifier), name_line);
      if (s == "(") {
        j = skip_parens(j);
        continue;
      }
      if (s == "<") {
        j = skip_angles(j);
        continue;
      }
      if (s == "[") {
        int depth = 0;
        while (j < toks_.size()) {
          if (text(j) == "[") ++depth;
          if (text(j) == "]" && --depth == 0) break;
          ++j;
        }
        ++j;
        continue;
      }
      if (kTrailers.count(s) > 0 || is_ident(j)) {
        ++j;
        continue;
      }
      // Unexpected token: not a function after all (e.g. comma-separated
      // declarators, macro soup). Bail to the statement end.
      (void)params_open;
      return skip_to_semi(j);
    }
    return toks_.size();
  }

  // Constructor initializer list: `name(args) : a_(x), b_{y} { body }`.
  size_t consume_init_list(size_t decl_start, size_t j, std::string name,
                           std::string qualifier, int name_line) {
    while (j < toks_.size()) {
      // Member name (possibly qualified base class with template args).
      while (is_ident(j) || text(j) == "::") ++j;
      if (text(j) == "<") j = skip_angles(j);
      if (text(j) == "(") {
        j = skip_parens(j);
      } else if (text(j) == "{") {
        j = skip_braces(j);
      } else {
        return skip_to_semi(j);  // malformed; bail
      }
      if (text(j) == ",") {
        ++j;
        continue;
      }
      if (text(j) == "{") {
        return record_function(decl_start, j, std::move(name),
                               std::move(qualifier), name_line);
      }
      if (text(j) == "try") ++j;  // function-try-block on a ctor
      if (text(j) == "{") {
        return record_function(decl_start, j, std::move(name),
                               std::move(qualifier), name_line);
      }
      return skip_to_semi(j);
    }
    return toks_.size();
  }

  size_t record_function(size_t decl_start, size_t body_open, std::string name,
                         std::string qualifier, int name_line) {
    Function fn;
    fn.name = std::move(name);
    fn.class_name = !qualifier.empty() ? qualifier : innermost_class();
    fn.path = tu_.path;
    fn.line = name_line;
    const size_t body_close = skip_braces(body_open) - 1;
    fn.body_begin = body_open + 1;
    fn.body_end = body_close;
    {
      std::string prefix = scope_prefix();
      if (!qualifier.empty()) {
        if (!prefix.empty()) prefix += "::";
        prefix += qualifier;
      }
      fn.qual_name = prefix.empty() ? fn.name : prefix + "::" + fn.name;
    }
    fn.decl_line = template_line_ > 0 ? template_line_ : toks_[decl_start].line;
    fn.open_line = toks_[body_open].line;
    extract_calls(fn);
    tu_.functions.push_back(std::move(fn));
    return skip_braces(body_open);
  }

  void extract_calls(Function& fn) {
    for (size_t j = fn.body_begin; j < fn.body_end; ++j) {
      if (!is_ident(j)) continue;
      // Direct call `f(` or explicit-template-argument call `f<T...>(`.
      // The skip_angles bail (at `;`/`{`) keeps a stray comparison from
      // minting a phantom call site.
      size_t after = j + 1;
      if (text(after) == "<") {
        const size_t closed = skip_angles(after);
        if (closed == after + 1) continue;  // unbalanced: a real comparison
        after = closed;
      }
      if (text(after) != "(") continue;
      const std::string& s = text(j);
      if (is_call_keyword(s)) continue;
      CallSite call;
      call.name = s;
      call.line = toks_[j].line;
      call.tok_index = j;
      size_t back = j;
      if (back >= 1 && text(back - 1) == "::" && is_ident(back - 2)) {
        call.qualifier = text(back - 2);
        back -= 2;
        // walk further qualifier links so member-ness sees past `a::b::c(`
        while (back >= 2 && text(back - 1) == "::" && is_ident(back - 2)) {
          back -= 2;
        }
      }
      if (back >= 1 &&
          (text(back - 1) == "." || text(back - 1) == "->")) {
        call.member = true;
      }
      fn.calls.push_back(std::move(call));
    }
  }

  TranslationUnit& tu_;
  const std::vector<Tok>& toks_;
  std::vector<Scope> stack_;
  int template_line_ = 0;  ///< line of an active `template <...>` header
};

}  // namespace

bool is_call_keyword(const std::string& s) {
  static const std::set<std::string> kKeywords = {
      "if",       "for",       "while",    "switch",        "return",
      "sizeof",   "alignof",   "alignas",  "catch",         "throw",
      "decltype", "typeid",    "noexcept", "static_assert", "assert",
      "defined",  "co_await",  "co_yield", "co_return",     "delete",
      "requires", "constexpr", "explicit", "typename",      "else",
      "do",       "case",      "goto",     "new"};
  return kKeywords.count(s) > 0;
}

TranslationUnit parse_tu(const std::string& path, const std::string& content) {
  TranslationUnit tu;
  tu.path = path;
  Scan scan = lex(content);
  tu.toks = std::move(scan.toks);
  tu.notes = std::move(scan.notes);
  Parser(tu).run();
  return tu;
}

}  // namespace rcommit::analyze
