// ANALYZE_PATH: src/sim/decide.cpp
// A2 no-fire: the decision is a pure function of the seed the caller hands
// in; no entropy, clock, or address-dependent input anywhere in the chain.
namespace rcommit::sim {

long seed_helper(long seed) {
  return seed * 6364136223846793005L + 1442695040888963407L;
}

long pick(long seed) { return seed_helper(seed) % 7; }

}  // namespace rcommit::sim
