// ANALYZE_PATH: src/sim/decide.cpp
// A2 fire: a wall-clock read taints seed_helper(), and the taint propagates
// through the call graph into pick(), a core decision function.
#include <chrono>

namespace rcommit::sim {

long seed_helper() {
  return std::chrono::steady_clock::now().time_since_epoch().count();
}

long pick() { return seed_helper() % 7; }

}  // namespace rcommit::sim
