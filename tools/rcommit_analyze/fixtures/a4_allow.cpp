// ANALYZE_PATH: src/db/kind.cpp
// A4 suppression: a reasoned allow on the default arm records why the
// catch-all is intentional for this switch.
namespace rcommit::db {

enum class Kind { kRead, kWrite, kScan };

int cost(Kind k) {
  switch (k) {
    case Kind::kRead:
      return 1;
    // RCOMMIT_ANALYZE_ALLOW(A4): fixture — wire decoding accepts foreign kinds and maps them to the cheap bucket
    default:
      return 0;
  }
}

}  // namespace rcommit::db
