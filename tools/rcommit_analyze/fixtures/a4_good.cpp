// ANALYZE_PATH: src/db/kind.cpp
// A4 no-fire: every enumerator is spelled out and there is no default, so
// -Wswitch reports any enumerator added later.
namespace rcommit::db {

enum class Kind { kRead, kWrite, kScan };

int cost(Kind k) {
  switch (k) {
    case Kind::kRead:
      return 1;
    case Kind::kWrite:
      return 2;
    case Kind::kScan:
      return 8;
  }
  return 0;
}

}  // namespace rcommit::db
