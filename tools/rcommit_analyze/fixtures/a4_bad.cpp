// ANALYZE_PATH: src/db/kind.cpp
// A4 fire: a 'default:' arm in a switch over a project enum would silently
// swallow any enumerator a future protocol adds.
namespace rcommit::db {

enum class Kind { kRead, kWrite, kScan };

int cost(Kind k) {
  switch (k) {
    case Kind::kRead:
      return 1;
    default:
      return 0;
  }
}

}  // namespace rcommit::db
