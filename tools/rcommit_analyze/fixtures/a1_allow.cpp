// ANALYZE_PATH: src/sim/hot.cpp
// A1 suppression forms: a reasoned per-site allow on a capacity-reuse
// push_back, and a reasoned signature-level allow that turns grow() into a
// traversal frontier the proof does not descend into.
#include <vector>

namespace rcommit::sim {

class HotLoop {
 public:
  // RCOMMIT_ANALYZE_ROOT(A1): fixture hot path
  void step() {
    if (samples_.size() == samples_.capacity()) grow();
    // RCOMMIT_ANALYZE_ALLOW(A1): fixture — capacity is reserved by grow(), steady state never reallocates
    samples_.push_back(1);
  }

 private:
  // RCOMMIT_ANALYZE_ALLOW(A1): fixture — amortized growth frontier, not the steady-state loop
  void grow() { samples_.reserve(samples_.capacity() * 2 + 8); }

  std::vector<int> samples_;
};

}  // namespace rcommit::sim
