// ANALYZE_PATH: src/db/store.cpp
// A3 no-fire: write-ahead ordering — the append happens first, so a crash
// inside it leaves memory untouched and recovery replays from the log.
namespace rcommit::db {

class WriteAheadLog {
 public:
  void append(int rec) { last_ = rec; }

 private:
  int last_ = 0;
};

class Store {
 public:
  void commit(int txn) {
    wal_.append(txn);
    applied_ = txn;
  }

 private:
  WriteAheadLog wal_;
  int applied_ = 0;
};

}  // namespace rcommit::db
