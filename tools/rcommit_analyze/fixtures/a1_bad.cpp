// ANALYZE_PATH: src/sim/hot.cpp
// A1 fire: the marked root reaches a std-container allocation two calls
// deep, and the chain in the diagnostic names both hops.
#include <vector>

namespace rcommit::sim {

class HotLoop {
 public:
  // RCOMMIT_ANALYZE_ROOT(A1): fixture hot path
  void step() { record(7); }

 private:
  void record(int v) { samples_.push_back(v); }

  std::vector<int> samples_;
};

}  // namespace rcommit::sim
