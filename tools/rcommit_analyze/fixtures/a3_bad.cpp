// ANALYZE_PATH: src/db/store.cpp
// A3 fire: commit() mutates durable-looking state (applied_) before the call
// that reaches WriteAheadLog::append. If append throws CrashInjected, a
// caller that catches and reuses the store sees memory ahead of the log.
namespace rcommit::db {

class WriteAheadLog {
 public:
  void append(int rec) { last_ = rec; }

 private:
  int last_ = 0;
};

class Store {
 public:
  void commit(int txn) {
    applied_ = txn;
    wal_.append(txn);
  }

 private:
  WriteAheadLog wal_;
  int applied_ = 0;
};

}  // namespace rcommit::db
