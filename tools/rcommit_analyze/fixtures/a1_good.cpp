// ANALYZE_PATH: src/sim/hot.cpp
// A1 no-fire: the root only writes into preallocated storage. The cold()
// helper allocates but is unreachable from any root, so it is not part of
// the proof obligation.
#include <vector>

namespace rcommit::sim {

class HotLoop {
 public:
  // RCOMMIT_ANALYZE_ROOT(A1): fixture hot path
  void step() { record(7); }

  void cold() { samples_.push_back(0); }  // never called from the root

 private:
  void record(int v) { samples_[0] = v; }

  std::vector<int> samples_;
};

}  // namespace rcommit::sim
