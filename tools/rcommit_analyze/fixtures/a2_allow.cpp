// ANALYZE_PATH: src/sim/decide.cpp
// A2 suppression: a reasoned allow on the source line neutralizes the taint
// at its origin, so nothing downstream is reported either.
#include <chrono>

namespace rcommit::sim {

long stamp() {
  // RCOMMIT_ANALYZE_ALLOW(A2): fixture — wall clock feeds a human-readable log tag, never a decision
  return std::chrono::steady_clock::now().time_since_epoch().count();
}

long annotate() { return stamp(); }

}  // namespace rcommit::sim
