// ANALYZE_PATH: src/db/store.cpp
// A3 suppression: a reasoned allow on the pre-append mutation records why
// the ordering is safe (the flag is not durable state).
namespace rcommit::db {

class WriteAheadLog {
 public:
  void append(int rec) { last_ = rec; }

 private:
  int last_ = 0;
};

class Store {
 public:
  void commit(int txn) {
    // RCOMMIT_ANALYZE_ALLOW(A3): fixture — in-memory progress flag, reset on recovery, never persisted
    committing_ = true;
    wal_.append(txn);
  }

 private:
  WriteAheadLog wal_;
  bool committing_ = false;
};

}  // namespace rcommit::db
