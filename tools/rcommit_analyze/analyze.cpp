#include "tools/rcommit_analyze/analyze.h"

#include <algorithm>
#include <deque>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <tuple>

#include "tools/rcommit_analyze/frontend.h"

namespace rcommit::analyze {
namespace {

// ---------------------------------------------------------------------------
// Path scoping and layering (mirrors rcommit_lint and the R4 include rules).
// ---------------------------------------------------------------------------

struct PathInfo {
  std::vector<std::string> comps;
  std::string filename;

  bool under(const std::string& a, const std::string& b) const {
    for (size_t i = 0; i + 1 < comps.size(); ++i) {
      if (comps[i] == a && comps[i + 1] == b) return true;
    }
    return false;
  }
};

PathInfo classify(const std::string& path) {
  PathInfo info;
  std::string part;
  for (const char c : path) {
    if (c == '/' || c == '\\') {
      if (!part.empty()) info.comps.push_back(part);
      part.clear();
    } else {
      part += c;
    }
  }
  if (!part.empty()) info.comps.push_back(part);
  if (!info.comps.empty()) info.filename = info.comps.back();
  return info;
}

enum class Layer {
  kCore,        // src/protocol, src/sim, src/adversary, src/baselines
  kCommon,      // src/common
  kDb,          // src/db
  kFaultInject, // src/faultinject
  kSwarm,       // src/swarm
  kTransport,   // src/transport
  kOther,       // tools, tests, bench, anything else
};

Layer layer_of(const PathInfo& p) {
  if (p.under("src", "protocol") || p.under("src", "sim") ||
      p.under("src", "adversary") || p.under("src", "baselines")) {
    return Layer::kCore;
  }
  if (p.under("src", "common")) return Layer::kCommon;
  if (p.under("src", "db")) return Layer::kDb;
  if (p.under("src", "faultinject")) return Layer::kFaultInject;
  if (p.under("src", "swarm")) return Layer::kSwarm;
  if (p.under("src", "transport")) return Layer::kTransport;
  return Layer::kOther;
}

// Call edges respect the include layering: a call from the deterministic core
// can only land on core/common definitions, so a common *name* shared with an
// upper layer (`run`, `insert`) cannot manufacture a phantom edge into the
// swarm or transport. kOther (tools/tests/bench) sees everything.
bool domain_allows(Layer from, Layer to) {
  switch (from) {
    case Layer::kCore:
      return to == Layer::kCore || to == Layer::kCommon;
    case Layer::kCommon:
      return to == Layer::kCommon;
    case Layer::kDb:
      return to == Layer::kDb || to == Layer::kCore || to == Layer::kCommon ||
             to == Layer::kFaultInject;
    case Layer::kFaultInject:
      return to == Layer::kFaultInject || to == Layer::kDb ||
             to == Layer::kCore || to == Layer::kCommon;
    case Layer::kSwarm:
      return to != Layer::kTransport && to != Layer::kOther;
    case Layer::kTransport:
      return to == Layer::kTransport || to == Layer::kCommon ||
             to == Layer::kCore;
    case Layer::kOther:
      return true;
  }
  return true;
}

// ---------------------------------------------------------------------------
// Program model: every TU parsed, every function and enum indexed.
// ---------------------------------------------------------------------------

struct Model {
  std::vector<TranslationUnit> tus;
  // Parallel arrays over a global function id.
  std::vector<Function*> fns;
  std::vector<int> fn_tu;
  std::vector<Layer> fn_layer;
  std::map<std::string, std::vector<int>> by_name;

  std::vector<const EnumDef*> enums;
  std::map<std::string, int> enum_by_name;
  std::map<std::string, int> enum_by_enumerator;  // first definition wins

  // Names declared with an unordered container type, per TU (R3-style).
  std::vector<std::set<std::string>> tu_unordered_names;
};

bool matches_qualifier(const Function& fn, const std::string& q) {
  if (fn.class_name == q) return true;
  // Match q as any :: component of the display name.
  size_t pos = 0;
  const std::string& s = fn.qual_name;
  while (pos <= s.size()) {
    const size_t next = s.find("::", pos);
    const std::string comp =
        s.substr(pos, next == std::string::npos ? next : next - pos);
    if (comp == q) return true;
    if (next == std::string::npos) break;
    pos = next + 2;
  }
  return false;
}

std::vector<int> resolve(const Model& m, int caller, const CallSite& c) {
  const auto it = m.by_name.find(c.name);
  if (it == m.by_name.end()) return {};
  std::vector<int> out;
  for (const int id : it->second) {
    if (!c.qualifier.empty() && !matches_qualifier(*m.fns[id], c.qualifier)) {
      continue;
    }
    if (!domain_allows(m.fn_layer[caller], m.fn_layer[id])) continue;
    out.push_back(id);
  }
  return out;
}

std::set<std::string> collect_unordered_names(const TranslationUnit& tu) {
  static const std::set<std::string> kUnordered = {
      "unordered_map", "unordered_set", "unordered_multimap",
      "unordered_multiset"};
  const auto& t = tu.toks;
  auto text = [&](size_t i) -> const std::string& {
    static const std::string kEmpty;
    return i < t.size() ? t[i].text : kEmpty;
  };
  std::set<std::string> names;
  for (size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != TokKind::kIdent || kUnordered.count(t[i].text) == 0) {
      continue;
    }
    size_t j = i + 1;
    if (text(j) == "<") {
      int depth = 1;
      ++j;
      while (j < t.size() && depth > 0) {
        if (t[j].text == "<") ++depth;
        if (t[j].text == ">") --depth;
        ++j;
      }
    }
    while (j < t.size() &&
           (t[j].text == "&" || t[j].text == "*" || t[j].text == "const")) {
      ++j;
    }
    if (j < t.size() && t[j].kind == TokKind::kIdent) names.insert(t[j].text);
  }
  return names;
}

Model build_model(const std::vector<FileInput>& files) {
  Model m;
  m.tus.reserve(files.size());
  for (const FileInput& f : files) m.tus.push_back(parse_tu(f.path, f.content));
  std::sort(m.tus.begin(), m.tus.end(),
            [](const TranslationUnit& a, const TranslationUnit& b) {
              return a.path < b.path;
            });
  for (size_t t = 0; t < m.tus.size(); ++t) {
    const Layer layer = layer_of(classify(m.tus[t].path));
    for (Function& fn : m.tus[t].functions) {
      const int id = static_cast<int>(m.fns.size());
      m.fns.push_back(&fn);
      m.fn_tu.push_back(static_cast<int>(t));
      m.fn_layer.push_back(layer);
      m.by_name[fn.name].push_back(id);
    }
    for (const EnumDef& e : m.tus[t].enums) {
      const int id = static_cast<int>(m.enums.size());
      m.enums.push_back(&e);
      m.enum_by_name.emplace(e.name, id);
      for (const std::string& en : e.enumerators) {
        m.enum_by_enumerator.emplace(en, id);
      }
    }
    m.tu_unordered_names.push_back(collect_unordered_names(m.tus[t]));
  }
  return m;
}

// ---------------------------------------------------------------------------
// Suppression bookkeeping.
// ---------------------------------------------------------------------------

class Allows {
 public:
  Allows(const Model& m, const std::set<std::string>& known_rules,
         std::vector<Diagnostic>& hygiene) {
    for (const TranslationUnit& tu : m.tus) {
      for (const Note& note : tu.notes) {
        if (note.kind == Note::Kind::kRoot) {
          if (note.rule != "A1") {
            hygiene.push_back({tu.path, note.line, "allow",
                               "RCOMMIT_ANALYZE_ROOT names unsupported rule '" +
                                   note.rule + "' — only A1 takes roots"});
          }
          continue;
        }
        if (known_rules.count(note.rule) == 0) {
          hygiene.push_back({tu.path, note.line, "allow",
                             "suppression names unknown rule '" + note.rule +
                                 "'"});
          continue;
        }
        if (!note.has_reason) {
          hygiene.push_back(
              {tu.path, note.line, "allow",
               "suppression of " + note.rule +
                   " has no reason — write RCOMMIT_ANALYZE_ALLOW" +
                   std::string(note.kind == Note::Kind::kAllowFile ? "_FILE"
                                                                   : "") +
                   "(" + note.rule + "): <why this is legitimate>"});
          continue;
        }
        if (note.kind == Note::Kind::kAllowFile) {
          file_.emplace(std::make_pair(tu.path, note.rule), false);
        } else {
          const int target = note.code_before ? note.line : note.line + 1;
          line_.emplace(std::make_tuple(tu.path, target, note.rule), false);
        }
      }
    }
  }

  /// Line-then-file suppression for an emitted diagnostic; marks used.
  bool suppress(const Diagnostic& d) {
    if (consume_line(d.path, d.line, d.rule)) return true;
    return consume_file(d.path, d.rule);
  }

  /// Consumes a line-level allow at an exact target line (for A1 frontiers
  /// and A2 source neutralization, which act before diagnostics exist).
  bool consume_line(const std::string& path, int line,
                    const std::string& rule) {
    const auto it = line_.find(std::make_tuple(path, line, rule));
    if (it == line_.end()) return false;
    it->second = true;
    return true;
  }

  bool consume_file(const std::string& path, const std::string& rule) {
    const auto it = file_.find(std::make_pair(path, rule));
    if (it == file_.end()) return false;
    it->second = true;
    return true;
  }

  bool has_file(const std::string& path, const std::string& rule) const {
    return file_.count(std::make_pair(path, rule)) > 0;
  }

  void report_stale(std::vector<Diagnostic>& out) const {
    for (const auto& [key, used] : line_) {
      if (used) continue;
      out.push_back({std::get<0>(key), std::get<1>(key), "allow",
                     "stale suppression: no " + std::get<2>(key) +
                         " finding on this line — delete the annotation"});
    }
    for (const auto& [key, used] : file_) {
      if (used) continue;
      out.push_back({key.first, 1, "allow",
                     "stale file-level suppression: no " + key.second +
                         " finding anywhere in this file"});
    }
  }

 private:
  std::map<std::tuple<std::string, int, std::string>, bool> line_;
  std::map<std::pair<std::string, std::string>, bool> file_;
};

void diag(std::vector<Diagnostic>& out, const std::string& path, int line,
          const char* rule, std::string message) {
  out.push_back(Diagnostic{path, line, rule, std::move(message)});
}

const std::string& text_at(const std::vector<Tok>& t, size_t i) {
  static const std::string kEmpty;
  return i < t.size() ? t[i].text : kEmpty;
}

/// "a -> b -> c" over qual_names following `parent` links from `fn` back to
/// its root/source, then reversed. Capped to keep messages readable.
std::string chain_string(const Model& m, const std::map<int, int>& parent,
                         int fn) {
  std::vector<int> chain;
  for (int cur = fn; cur >= 0;) {
    chain.push_back(cur);
    const auto it = parent.find(cur);
    if (it == parent.end() || it->second == cur) break;
    cur = it->second;
  }
  std::reverse(chain.begin(), chain.end());
  std::string out;
  const size_t cap = 8;
  for (size_t i = 0; i < chain.size(); ++i) {
    if (!out.empty()) out += " -> ";
    if (chain.size() > cap && i == 3) {
      out += "...";
      i = chain.size() - 4;
      continue;
    }
    out += m.fns[static_cast<size_t>(chain[i])]->qual_name;
  }
  return out;
}

// ---------------------------------------------------------------------------
// A1 — static allocation-freedom of the marked hot-path roots.
// ---------------------------------------------------------------------------

int rule_a1(Model& m, Allows& allows, std::vector<Diagnostic>& raw) {
  // Attach ROOT(A1) notes to the functions whose signature range they hit.
  int roots_found = 0;
  for (TranslationUnit& tu : m.tus) {
    for (const Note& note : tu.notes) {
      if (note.kind != Note::Kind::kRoot || note.rule != "A1") continue;
      const int target = note.code_before ? note.line : note.line + 1;
      bool attached = false;
      for (Function& fn : tu.functions) {
        if (target >= fn.decl_line && target <= fn.open_line) {
          fn.is_root_a1 = true;
          attached = true;
        }
      }
      if (!attached) {
        diag(raw, tu.path, note.line, "allow",
             "RCOMMIT_ANALYZE_ROOT(A1) attaches to no function definition on "
             "the next line");
      }
    }
  }

  std::vector<int> roots;
  std::set<int> frontier;
  for (size_t id = 0; id < m.fns.size(); ++id) {
    const Function& fn = *m.fns[id];
    if (fn.is_root_a1) {
      roots.push_back(static_cast<int>(id));
      ++roots_found;
    }
    // A signature-level ALLOW(A1) makes the function a traversal frontier:
    // the proof treats it as opaque (growth/fallback paths, legacy code).
    for (int t = fn.decl_line; t <= fn.open_line; ++t) {
      if (allows.consume_line(fn.path, t, "A1")) {
        frontier.insert(static_cast<int>(id));
        break;
      }
    }
  }

  static const std::set<std::string> kAllocFns = {
      "malloc",      "calloc",          "realloc",   "strdup",
      "aligned_alloc", "make_unique",   "make_shared", "allocate_shared",
      "to_string"};
  static const std::set<std::string> kAllocMembers = {
      "push_back", "emplace_back", "emplace", "emplace_front", "push_front",
      "insert",    "resize",       "reserve", "assign",        "append",
      "push",      "substr",       "str"};

  // BFS over resolved call edges; parent links reconstruct the chain.
  std::map<int, int> parent;
  std::deque<int> queue;
  std::set<int> visited;
  for (const int r : roots) {
    if (visited.insert(r).second) {
      parent[r] = r;
      queue.push_back(r);
    }
  }
  while (!queue.empty()) {
    const int id = queue.front();
    queue.pop_front();
    const Function& fn = *m.fns[id];
    const TranslationUnit& tu = m.tus[static_cast<size_t>(m.fn_tu[id])];
    const std::string chain = chain_string(m, parent, id);

    // Allocation sites: call-shaped ones via the extracted call list...
    for (const CallSite& c : fn.calls) {
      const std::vector<int> callees = resolve(m, id, c);
      if (!callees.empty()) {
        for (const int callee : callees) {
          if (frontier.count(callee) > 0) continue;
          if (visited.insert(callee).second) {
            parent[callee] = id;
            queue.push_back(callee);
          }
        }
        continue;  // a repo call edge, not a std allocation
      }
      const bool alloc =
          (c.member && kAllocMembers.count(c.name) > 0) ||
          (!c.member && kAllocFns.count(c.name) > 0);
      if (alloc) {
        diag(raw, fn.path, c.line, "A1",
             "heap allocation on the hot path: '" + c.name +
                 "' — reachable via " + chain);
      }
    }
    // ...plus `new` expressions, which the call extractor skips as keywords.
    for (size_t j = fn.body_begin; j < fn.body_end && j < tu.toks.size(); ++j) {
      if (tu.toks[j].kind != TokKind::kIdent || tu.toks[j].text != "new") {
        continue;
      }
      const std::string& prev = j > 0 ? tu.toks[j - 1].text : text_at(tu.toks, tu.toks.size());
      const char* what =
          prev == "operator" ? "'::operator new' call" : "'new' expression";
      diag(raw, fn.path, tu.toks[j].line, "A1",
           std::string("heap allocation on the hot path: ") + what +
               " — reachable via " + chain);
    }
  }
  return roots_found;
}

// ---------------------------------------------------------------------------
// A2 — determinism taint into the deterministic core.
// ---------------------------------------------------------------------------

struct TaintSource {
  std::string kind;  // human-readable source description
  int line = 0;
};

std::vector<TaintSource> scan_sources(const Model& m, int id) {
  const Function& fn = *m.fns[static_cast<size_t>(id)];
  const TranslationUnit& tu = m.tus[static_cast<size_t>(m.fn_tu[id])];
  const auto& t = tu.toks;
  const std::set<std::string>& unordered_names =
      m.tu_unordered_names[static_cast<size_t>(m.fn_tu[id])];

  static const std::set<std::string> kClocks = {
      "steady_clock", "system_clock", "high_resolution_clock", "utc_clock",
      "file_clock"};
  static const std::set<std::string> kCallPositions = {
      ";", "{", "}", "(", ",", "=", "return", "+", "-", "*", "/",
      "%", "<", ">", "!", "&", "|", "?", ":", "case"};
  static const std::set<std::string> kIterStarts = {"begin", "cbegin",
                                                    "rbegin", "crbegin"};

  std::vector<TaintSource> out;
  for (size_t i = fn.body_begin; i < fn.body_end && i < t.size(); ++i) {
    if (t[i].kind != TokKind::kIdent) continue;
    const std::string& s = t[i].text;
    const std::string& prev = i > 0 ? t[i - 1].text : text_at(t, t.size());
    const bool member = prev == "." || prev == "->";
    const bool calls = text_at(t, i + 1) == "(";
    if (kClocks.count(s) > 0 && text_at(t, i + 1) == "::" &&
        text_at(t, i + 2) == "now") {
      out.push_back({"wall-clock read (std::chrono::" + s + "::now)",
                     t[i].line});
    } else if (s == "random_device" && !member) {
      out.push_back({"OS entropy (std::random_device)", t[i].line});
    } else if ((s == "rand" || s == "srand") && calls && !member) {
      out.push_back({"OS-seeded entropy (" + s + "())", t[i].line});
    } else if ((s == "getenv" || s == "setenv" || s == "putenv") && calls &&
               !member) {
      out.push_back({"ambient environment (" + s + "())", t[i].line});
    } else if ((s == "time" || s == "clock") && calls && !member) {
      const bool std_qualified =
          prev == "::" && i >= 2 && text_at(t, i - 2) == "std";
      if (std_qualified || kCallPositions.count(prev) > 0) {
        out.push_back({"wall-clock read (" + s + "())", t[i].line});
      }
    } else if (s == "this_thread" && text_at(t, i + 1) == "::") {
      out.push_back({"thread identity/timing (std::this_thread)", t[i].line});
    } else if (s == "reinterpret_cast" && text_at(t, i + 1) == "<") {
      size_t j = i + 2;
      if (text_at(t, j) == "std" && text_at(t, j + 1) == "::") j += 2;
      if (text_at(t, j) == "uintptr_t" || text_at(t, j) == "intptr_t") {
        out.push_back(
            {"pointer-identity value (reinterpret_cast<" + text_at(t, j) +
                 ">) — allocation addresses vary run to run",
             t[i].line});
      }
    } else if (s == "for" && text_at(t, i + 1) == "(" &&
               !unordered_names.empty()) {
      int depth = 0;
      bool seen_colon = false;
      for (size_t j = i + 1; j < t.size() && j < fn.body_end; ++j) {
        if (t[j].text == "(") ++depth;
        if (t[j].text == ")" && --depth == 0) break;
        if (depth == 1 && t[j].text == ";") break;
        if (depth == 1 && t[j].text == ":") seen_colon = true;
        if (seen_colon && t[j].kind == TokKind::kIdent &&
            unordered_names.count(t[j].text) > 0) {
          out.push_back({"unordered-container iteration order ('" + t[j].text +
                             "')",
                         t[j].line});
          break;
        }
      }
    } else if (unordered_names.count(s) > 0 &&
               (text_at(t, i + 1) == "." || text_at(t, i + 1) == "->") &&
               kIterStarts.count(text_at(t, i + 2)) > 0 &&
               text_at(t, i + 3) == "(") {
      out.push_back(
          {"unordered-container iteration order ('" + s + "')", t[i].line});
    }
  }
  return out;
}

void rule_a2(const Model& m, Allows& allows, std::vector<Diagnostic>& raw) {
  const int n = static_cast<int>(m.fns.size());
  // Live (un-neutralized) sources per function.
  std::vector<std::vector<TaintSource>> sources(static_cast<size_t>(n));
  for (int id = 0; id < n; ++id) {
    const Function& fn = *m.fns[static_cast<size_t>(id)];
    for (TaintSource& src : scan_sources(m, id)) {
      if (allows.consume_line(fn.path, src.line, "A2")) continue;
      if (allows.has_file(fn.path, "A2")) {
        allows.consume_file(fn.path, "A2");
        continue;
      }
      sources[static_cast<size_t>(id)].push_back(std::move(src));
    }
  }

  // Fixed-point taint propagation callee -> caller. `via[f]` records the
  // first callee that tainted f (or -1 when f holds a source itself).
  std::vector<int> via(static_cast<size_t>(n), -2);  // -2 = untainted
  for (int id = 0; id < n; ++id) {
    if (!sources[static_cast<size_t>(id)].empty()) {
      via[static_cast<size_t>(id)] = -1;
    }
  }
  bool changed = true;
  while (changed) {
    changed = false;
    for (int id = 0; id < n; ++id) {
      if (via[static_cast<size_t>(id)] != -2) continue;
      for (const CallSite& c : m.fns[static_cast<size_t>(id)]->calls) {
        bool tainted = false;
        for (const int callee : resolve(m, id, c)) {
          if (callee != id && via[static_cast<size_t>(callee)] != -2) {
            via[static_cast<size_t>(id)] = callee;
            tainted = true;
            break;
          }
        }
        if (tainted) {
          changed = true;
          break;
        }
      }
    }
  }

  auto root_source = [&](int id) {
    // Follow via links to the function that holds the source.
    std::string chain = m.fns[static_cast<size_t>(id)]->qual_name;
    int cur = id;
    int hops = 0;
    while (via[static_cast<size_t>(cur)] >= 0 && hops++ < 16) {
      cur = via[static_cast<size_t>(cur)];
      chain += " -> " + m.fns[static_cast<size_t>(cur)]->qual_name;
    }
    const TaintSource& src = sources[static_cast<size_t>(cur)].front();
    return std::make_pair(src.kind + " at " +
                              m.fns[static_cast<size_t>(cur)]->path + ":" +
                              std::to_string(src.line),
                          chain);
  };

  std::set<std::tuple<std::string, int, std::string>> seen;
  for (int id = 0; id < n; ++id) {
    if (m.fn_layer[static_cast<size_t>(id)] != Layer::kCore) continue;
    const Function& fn = *m.fns[static_cast<size_t>(id)];
    for (const TaintSource& src : sources[static_cast<size_t>(id)]) {
      diag(raw, fn.path, src.line, "A2",
           src.kind + " in the deterministic core — runs must be pure "
                      "functions of (protocol, adversary, n, seed)");
    }
    for (const CallSite& c : fn.calls) {
      for (const int callee : resolve(m, id, c)) {
        if (callee == id || via[static_cast<size_t>(callee)] == -2) continue;
        const auto [src_desc, chain] = root_source(callee);
        if (!seen.insert({fn.path, c.line, src_desc}).second) continue;
        diag(raw, fn.path, c.line, "A2",
             "call from the deterministic core reaches " + src_desc +
                 " via " + chain);
        break;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// A3 — crash-safety ordering around WriteAheadLog::append.
// ---------------------------------------------------------------------------

void rule_a3(const Model& m, std::vector<Diagnostic>& raw) {
  // Reverse reachability: every function whose call chain can reach
  // WriteAheadLog::append.
  std::set<int> reach;
  for (size_t id = 0; id < m.fns.size(); ++id) {
    const Function& fn = *m.fns[id];
    if (fn.name == "append" && fn.class_name == "WriteAheadLog") {
      reach.insert(static_cast<int>(id));
    }
  }
  if (reach.empty()) return;
  bool changed = true;
  while (changed) {
    changed = false;
    for (size_t id = 0; id < m.fns.size(); ++id) {
      if (reach.count(static_cast<int>(id)) > 0) continue;
      for (const CallSite& c : m.fns[id]->calls) {
        bool hits = false;
        for (const int callee : resolve(m, static_cast<int>(id), c)) {
          if (reach.count(callee) > 0) {
            hits = true;
            break;
          }
        }
        if (hits) {
          reach.insert(static_cast<int>(id));
          changed = true;
          break;
        }
      }
    }
  }

  static const std::set<std::string> kMutMembers = {
      "push_back", "emplace_back", "emplace",   "push_front", "emplace_front",
      "insert",    "erase",        "clear",     "assign",     "resize",
      "reset",     "push",         "pop",       "pop_back",   "pop_front",
      "store",     "lock",         "try_lock",  "unlock",     "unlock_all",
      "swap",      "write",        "truncate"};

  for (size_t id = 0; id < m.fns.size(); ++id) {
    const Function& fn = *m.fns[id];
    const PathInfo p = classify(fn.path);
    if (!p.under("src", "db") && !p.under("src", "faultinject")) continue;
    const TranslationUnit& tu = m.tus[static_cast<size_t>(m.fn_tu[id])];
    const auto& t = tu.toks;

    // A function that handles unwinding at all is assumed to roll back; the
    // fixture corpus pins this as a deliberate (documented) approximation.
    bool has_catch = false;
    for (size_t j = fn.body_begin; j < fn.body_end && j < t.size(); ++j) {
      if (t[j].kind == TokKind::kIdent && t[j].text == "catch") {
        has_catch = true;
        break;
      }
    }
    if (has_catch) continue;

    // First call that can reach an append.
    const CallSite* first = nullptr;
    std::string callee_name;
    for (const CallSite& c : fn.calls) {
      bool hits = false;
      for (const int callee : resolve(m, static_cast<int>(id), c)) {
        if (callee != static_cast<int>(id) && reach.count(callee) > 0) {
          hits = true;
          callee_name = m.fns[static_cast<size_t>(callee)]->qual_name;
          break;
        }
      }
      if (hits) {
        first = &c;
        break;
      }
    }
    if (first == nullptr) continue;

    // Member-state mutations (repo convention: trailing-underscore names)
    // sequenced before that call.
    std::set<int> flagged_lines;
    for (size_t j = fn.body_begin; j < first->tok_index && j < t.size(); ++j) {
      if (t[j].kind != TokKind::kIdent) continue;
      const std::string& s = t[j].text;
      if (s.size() < 2 || s.back() != '_') continue;
      const std::string& prev = j > 0 ? t[j - 1].text : text_at(t, t.size());
      if ((prev == "." || prev == "->") &&
          !(j >= 2 && t[j - 2].text == "this")) {
        continue;  // member of some other object
      }
      const std::string& n1 = text_at(t, j + 1);
      const std::string& n2 = text_at(t, j + 2);
      std::string what;
      if (n1 == "=" && n2 != "=") {
        what = "assignment to '" + s + "'";
      } else if ((n1 == "+" || n1 == "-" || n1 == "*" || n1 == "/" ||
                  n1 == "%" || n1 == "&" || n1 == "|" || n1 == "^") &&
                 n2 == "=") {
        what = "compound assignment to '" + s + "'";
      } else if ((n1 == "+" && n2 == "+") || (n1 == "-" && n2 == "-")) {
        what = "increment of '" + s + "'";
      } else if ((n1 == "." || n1 == "->") && kMutMembers.count(n2) > 0 &&
                 text_at(t, j + 3) == "(") {
        what = "'" + s + "." + n2 + "(...)'";
      } else if (n1 == "[") {
        int depth = 0;
        size_t k = j + 1;
        while (k < t.size()) {
          if (t[k].text == "[") ++depth;
          if (t[k].text == "]" && --depth == 0) break;
          ++k;
        }
        if (text_at(t, k + 1) == "=" && text_at(t, k + 2) != "=") {
          what = "element assignment through '" + s + "[...]'";
        }
      }
      if (what.empty()) continue;
      if (!flagged_lines.insert(t[j].line).second) continue;
      diag(raw, fn.path, t[j].line, "A3",
           "state mutation (" + what + ") before the WAL append reached via "
           "'" + callee_name + "' (line " + std::to_string(first->line) +
               ") is not rolled back if the append throws CrashInjected — "
               "append first, or unwind the mutation on failure");
    }
  }
}

// ---------------------------------------------------------------------------
// A4 — exhaustive switches over project enums.
// ---------------------------------------------------------------------------

// Scans one switch statement's brace region; returns the index just past its
// closing '}'. Nested switches recurse and report independently.
size_t scan_switch(const Model& m, const TranslationUnit& tu, size_t sw,
                   std::vector<Diagnostic>& raw) {
  const auto& t = tu.toks;
  size_t j = sw + 1;
  if (text_at(t, j) != "(") return sw + 1;
  int depth = 0;
  while (j < t.size()) {  // skip the condition
    if (t[j].text == "(") ++depth;
    if (t[j].text == ")" && --depth == 0) break;
    ++j;
  }
  ++j;
  if (text_at(t, j) != "{") return j;
  const size_t open = j;
  int brace = 0;
  int default_line = 0;
  int enum_id = -1;
  j = open;
  while (j < t.size()) {
    const std::string& s = t[j].text;
    if (s == "{") ++brace;
    if (s == "}" && --brace == 0) {
      ++j;
      break;
    }
    if (t[j].kind == TokKind::kIdent && s == "switch" && j != sw) {
      j = scan_switch(m, tu, j, raw);
      continue;
    }
    if (t[j].kind == TokKind::kIdent && s == "default" &&
        text_at(t, j + 1) == ":") {
      default_line = t[j].line;
    }
    if (t[j].kind == TokKind::kIdent && s == "case") {
      // Collect the label's identifier chain up to ':'.
      std::vector<std::string> idents;
      size_t k = j + 1;
      while (k < t.size() && t[k].text != ":" && t[k].text != ";") {
        if (t[k].kind == TokKind::kIdent) idents.push_back(t[k].text);
        ++k;
      }
      if (!idents.empty() && enum_id < 0) {
        // Prefer resolution through the enumerator itself; fall back to a
        // qualifier that names the enum.
        const auto by_en = m.enum_by_enumerator.find(idents.back());
        if (by_en != m.enum_by_enumerator.end()) {
          enum_id = by_en->second;
        } else {
          for (const std::string& q : idents) {
            const auto by_name = m.enum_by_name.find(q);
            if (by_name != m.enum_by_name.end()) {
              enum_id = by_name->second;
              break;
            }
          }
        }
      }
      j = k;
      continue;
    }
    ++j;
  }
  if (default_line > 0 && enum_id >= 0) {
    diag(raw, tu.path, default_line, "A4",
         "'default:' arm in a switch over enum '" +
             m.enums[static_cast<size_t>(enum_id)]->name +
             "' — an enumerator added by a future protocol would be silently "
             "swallowed; enumerate every case and let -Wswitch catch "
             "additions");
  }
  return j;
}

void rule_a4(const Model& m, std::vector<Diagnostic>& raw) {
  for (size_t t = 0; t < m.tus.size(); ++t) {
    const TranslationUnit& tu = m.tus[t];
    const PathInfo p = classify(tu.path);
    if (!p.under("src", "protocol") && !p.under("src", "sim") &&
        !p.under("src", "adversary") && !p.under("src", "baselines") &&
        !p.under("src", "db") && !p.under("src", "faultinject") &&
        !p.under("src", "common") && !p.under("src", "swarm") &&
        !p.under("src", "transport")) {
      continue;
    }
    for (const Function& fn : tu.functions) {
      for (size_t j = fn.body_begin; j < fn.body_end && j < tu.toks.size();) {
        if (tu.toks[j].kind == TokKind::kIdent && tu.toks[j].text == "switch") {
          j = scan_switch(m, tu, j, raw);
          continue;
        }
        ++j;
      }
    }
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Driver.
// ---------------------------------------------------------------------------

const std::vector<RuleInfo>& rule_registry() {
  static const std::vector<RuleInfo> kRules = {
      {"A1",
       "static allocation-freedom: no call chain from a hot-path root to the "
       "heap",
       "functions marked RCOMMIT_ANALYZE_ROOT(A1) and everything they reach; "
       "signature-level allows are traversal frontiers"},
      {"A2",
       "determinism taint: nondeterminism sources cannot reach core decision "
       "paths through any call chain",
       "sources anywhere; findings in src/protocol, src/sim, src/adversary, "
       "src/baselines"},
      {"A3",
       "crash-safety ordering: no un-unwound state mutation before a "
       "WriteAheadLog::append-reaching call",
       "src/db, src/faultinject (functions without unwind handling)"},
      {"A4",
       "exhaustive switch coverage: no 'default:' arms over project enums",
       "all src/ layers"},
  };
  return kRules;
}

AnalysisResult analyze_files(const std::vector<FileInput>& files) {
  AnalysisResult result;
  Model m = build_model(files);

  std::set<std::string> known_rules;
  for (const RuleInfo& r : rule_registry()) known_rules.insert(r.id);

  std::vector<Diagnostic> out;
  Allows allows(m, known_rules, out);

  std::vector<Diagnostic> raw;
  result.a1_roots = rule_a1(m, allows, raw);
  rule_a2(m, allows, raw);
  rule_a3(m, raw);
  rule_a4(m, raw);

  for (Diagnostic& d : raw) {
    if (d.rule != "allow" && allows.suppress(d)) continue;
    out.push_back(std::move(d));
  }
  allows.report_stale(out);

  std::sort(out.begin(), out.end(),
            [](const Diagnostic& a, const Diagnostic& b) {
              return std::tie(a.path, a.line, a.rule, a.message) <
                     std::tie(b.path, b.line, b.rule, b.message);
            });
  out.erase(std::unique(out.begin(), out.end(),
                        [](const Diagnostic& a, const Diagnostic& b) {
                          return std::tie(a.path, a.line, a.rule, a.message) ==
                                 std::tie(b.path, b.line, b.rule, b.message);
                        }),
            out.end());
  result.diags = std::move(out);
  return result;
}

AnalysisResult analyze_paths(const std::vector<std::filesystem::path>& files) {
  std::vector<FileInput> inputs;
  std::vector<Diagnostic> io_errors;
  for (const auto& f : files) {
    std::ifstream in(f, std::ios::binary);
    if (!in) {
      io_errors.push_back({f.generic_string(), 0, "io", "cannot read file"});
      continue;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    inputs.push_back({f.generic_string(), buf.str()});
  }
  AnalysisResult result = analyze_files(inputs);
  result.diags.insert(result.diags.begin(), io_errors.begin(),
                      io_errors.end());
  return result;
}

std::vector<std::filesystem::path> collect_files(
    const std::vector<std::filesystem::path>& roots) {
  static const std::set<std::string> kExts = {".h",  ".hh",  ".hpp",
                                              ".cc", ".cpp", ".cxx"};
  auto skip_dir = [](const std::string& name) {
    return name == "testdata" || name == "fixtures" ||
           name.rfind("build", 0) == 0 || (!name.empty() && name[0] == '.');
  };
  std::set<std::filesystem::path> found;
  for (const auto& root : roots) {
    std::error_code ec;
    if (std::filesystem::is_regular_file(root, ec)) {
      if (kExts.count(root.extension().string()) > 0) found.insert(root);
      continue;
    }
    std::filesystem::recursive_directory_iterator it(root, ec), end;
    if (ec) continue;
    for (; it != end; it.increment(ec)) {
      if (ec) break;
      const auto& entry = *it;
      if (entry.is_directory(ec)) {
        if (skip_dir(entry.path().filename().string())) {
          it.disable_recursion_pending();
        }
        continue;
      }
      if (entry.is_regular_file(ec) &&
          kExts.count(entry.path().extension().string()) > 0) {
        found.insert(entry.path());
      }
    }
  }
  return {found.begin(), found.end()};
}

std::string format(const Diagnostic& d) {
  std::ostringstream os;
  os << d.path << ":" << d.line << ": [" << d.rule << "] " << d.message;
  return os.str();
}

}  // namespace rcommit::analyze
