// rcommit-analyze: call-graph semantic analysis for the repo's core
// guarantees — the transitive complement to rcommit_lint's token rules.
//
// Where the linter pattern-matches single sites, this pass builds a
// project-wide symbol index and a heuristic call graph (frontend.h) and
// checks properties of *call chains*:
//
//   A1  static allocation-freedom: no path from an RCOMMIT_ANALYZE_ROOT(A1)
//       hot-path function to `new` / malloc / allocating std calls. The
//       static complement to bench_simperf's runtime zero-alloc gate.
//   A2  determinism taint: wall-clock, OS entropy, pointer-identity, and
//       unordered-iteration sources anywhere in the project, propagated
//       through the call graph into the deterministic core's decision paths.
//   A3  crash-safety ordering: member-state mutations sequenced before a
//       WriteAheadLog::append-reaching call with no unwind handling — if
//       the append throws CrashInjected (or fails), the mutation survives
//       un-rolled-back in a store a caller may keep using.
//   A4  exhaustive switch coverage: `default:` arms over project enums
//       silently swallow enumerators added by future protocols; enumerate
//       the cases and let -Wswitch catch additions at compile time.
//
// Suppression mirrors the linter, with its own marker so the two vocabularies
// cannot collide:
//     RCOMMIT_ANALYZE_ALLOW(<rule>): <reason>       one line (trailing, or
//                                                   alone on the line above)
//     RCOMMIT_ANALYZE_ALLOW_FILE(<rule>): <reason>  whole file
// An ALLOW of A1 whose target line lands on a function *signature* is a
// traversal frontier: the proof stops there instead of descending (used for
// growth/fallback paths that are allocating by design). Reasons are
// mandatory; stale or unknown-rule annotations are themselves diagnostics.
// (Angle brackets above are placeholders, not live annotations.)
#pragma once

#include <filesystem>
#include <string>
#include <vector>

namespace rcommit::analyze {

struct Diagnostic {
  std::string path;
  int line = 0;
  std::string rule;  // "A1".."A4", or "allow" for annotation problems
  std::string message;
};

struct RuleInfo {
  std::string id;
  std::string title;
  std::string scope;
};

/// The rule registry, in report order.
const std::vector<RuleInfo>& rule_registry();

struct FileInput {
  std::string path;  // repo-relative or absolute; rules scope on components
  std::string content;
};

struct AnalysisResult {
  std::vector<Diagnostic> diags;  // sorted by (path, line, rule, message)
  int a1_roots = 0;               // RCOMMIT_ANALYZE_ROOT(A1) functions seen
};

/// Analyzes the whole file set as one program: cross-file call edges resolve
/// against every function defined anywhere in `files`.
AnalysisResult analyze_files(const std::vector<FileInput>& files);

/// Reads `files` from disk and analyzes them together. Unreadable files
/// produce an "io" diagnostic.
AnalysisResult analyze_paths(const std::vector<std::filesystem::path>& files);

/// Recursively collects analyzable sources (.h .hh .hpp .cc .cpp .cxx) under
/// `roots`, skipping build*/, testdata/, fixtures/ (intentionally dirty),
/// and dot-directories. Sorted and deduplicated.
std::vector<std::filesystem::path> collect_files(
    const std::vector<std::filesystem::path>& roots);

/// "path:line: [rule] message" — GCC-style, same shape as rcommit_lint.
std::string format(const Diagnostic& d);

}  // namespace rcommit::analyze
