// rcommit_analyze CLI: `rcommit_analyze [--list-rules] [--json[=FILE]] <path>...`
//
// Runs the call-graph semantic analysis (rules A1-A4, see analyze.h) over the
// given files/directories and prints GCC-style diagnostics. Run from the repo
// root (`rcommit_analyze src`) so rule scoping and cross-file call resolution
// see the canonical layout. Exit status: 0 clean, 1 findings (or a rootless
// A1 proof), 2 usage error.
//
// --json emits a machine-readable findings document to stdout (human text
// moves to stderr); --json=FILE writes the document to FILE and keeps the
// normal text output. Unknown flags exit 2 with usage, matching the bench
// harness convention.

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "common/json.h"
#include "tools/rcommit_analyze/analyze.h"

namespace {

void print_usage() {
  std::fprintf(
      stderr,
      "usage: rcommit_analyze [--list-rules] [--json[=FILE]] <path>...\n"
      "  Call-graph semantic analysis: allocation-freedom (A1), determinism\n"
      "  taint (A2), crash-safety ordering (A3), exhaustive switches (A4).\n"
      "  See docs/static-analysis.md for the rule catalogue.\n");
}

std::string to_json(const rcommit::analyze::AnalysisResult& result,
                    size_t files) {
  rcommit::json::JsonWriter w;
  w.begin_object();
  w.key("tool").value("rcommit_analyze");
  w.key("schema_version").value(1);
  w.key("files").value(static_cast<int64_t>(files));
  w.key("a1_roots").value(result.a1_roots);
  w.key("diagnostics");
  w.begin_array();
  for (const auto& d : result.diags) {
    w.begin_object();
    w.key("path").value(d.path);
    w.key("line").value(d.line);
    w.key("rule").value(d.rule);
    w.key("message").value(d.message);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str();
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::filesystem::path> roots;
  bool json_stdout = false;
  std::string json_file;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--list-rules") {
      for (const auto& r : rcommit::analyze::rule_registry()) {
        std::printf("%s  %s\n      scope: %s\n", r.id.c_str(), r.title.c_str(),
                    r.scope.c_str());
      }
      return 0;
    }
    if (arg == "--help" || arg == "-h") {
      print_usage();
      return 0;
    }
    if (arg == "--json") {
      json_stdout = true;
      continue;
    }
    if (arg.rfind("--json=", 0) == 0) {
      json_file = arg.substr(7);
      continue;
    }
    if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "rcommit_analyze: unknown option '%s'\n",
                   arg.c_str());
      print_usage();
      return 2;
    }
    roots.emplace_back(arg);
  }
  if (roots.empty()) {
    print_usage();
    return 2;
  }

  const auto files = rcommit::analyze::collect_files(roots);
  if (files.empty()) {
    std::fprintf(stderr,
                 "rcommit_analyze: no analyzable sources under the given "
                 "paths\n");
    return 2;
  }

  const auto result = rcommit::analyze::analyze_paths(files);

  if (!json_file.empty()) {
    std::ofstream out(json_file, std::ios::binary);
    if (!out) {
      std::fprintf(stderr, "rcommit_analyze: cannot write '%s'\n",
                   json_file.c_str());
      return 2;
    }
    out << to_json(result, files.size()) << "\n";
  }
  if (json_stdout) {
    std::printf("%s\n", to_json(result, files.size()).c_str());
  }

  std::FILE* text = json_stdout ? stderr : stdout;
  for (const auto& d : result.diags) {
    std::fprintf(text, "%s\n", rcommit::analyze::format(d).c_str());
  }

  if (result.a1_roots == 0) {
    std::fprintf(stderr,
                 "rcommit_analyze: error: no RCOMMIT_ANALYZE_ROOT(A1) markers "
                 "found — the allocation-freedom proof has no roots\n");
    return 1;
  }
  if (result.diags.empty()) {
    std::fprintf(stderr, "rcommit_analyze: %zu files clean (%d A1 roots)\n",
                 files.size(), result.a1_roots);
    return 0;
  }
  std::fprintf(stderr, "rcommit_analyze: %zu diagnostics in %zu files\n",
               result.diags.size(), files.size());
  return 1;
}
