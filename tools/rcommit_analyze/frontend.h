// rcommit_analyze front-end: a lightweight C++ token parser that grows the
// rcommit_lint lexer into per-TU *structure* extraction — function
// definitions with body extents and call sites, enum definitions with their
// enumerator lists, and the analyzer's annotation vocabulary — so the rule
// layer (analyze.h) can reason about call *chains* instead of single tokens.
//
// It is still deliberately heuristic and dependency-free (no libclang): the
// parser tracks namespace/class nesting and brace depth over the token
// stream, recognizes function definitions by their `name(...) ... {` shape
// (constructor initializer lists included), and records every `callee(`
// occurrence inside a body as a call site with its qualifier (`Foo::bar`) and
// member-ness (`x.bar` / `x->bar`). Templates, overload sets, virtual
// dispatch, and function pointers all collapse onto name-based resolution —
// docs/static-analysis.md lists the resulting approximations and why they
// are acceptable for the A-rules.
//
// Annotations (comments, harvested before stripping):
//   RCOMMIT_ANALYZE_ALLOW(<rule>): <reason>        suppress on this/next line
//   RCOMMIT_ANALYZE_ALLOW_FILE(<rule>): <reason>   suppress in whole file
//   RCOMMIT_ANALYZE_ROOT(A1): <reason>             mark the function defined
//                                                  on this/next line as an
//                                                  allocation-freedom root
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace rcommit::analyze {

enum class TokKind { kIdent, kPunct, kStr, kNum };

struct Tok {
  TokKind kind;
  std::string text;
  int line;
};

/// One RCOMMIT_ANALYZE_ALLOW / _FILE / _ROOT annotation.
struct Note {
  enum class Kind { kAllow, kAllowFile, kRoot };
  Kind kind = Kind::kAllow;
  std::string rule;
  bool has_reason = false;
  int line = 0;              ///< line the annotation appears on
  bool code_before = false;  ///< code tokens precede it on that line
};

/// One `callee(` occurrence inside a function body.
struct CallSite {
  std::string name;       ///< bare callee name (`append`)
  std::string qualifier;  ///< innermost explicit qualifier (`WriteAheadLog`), or ""
  bool member = false;    ///< preceded by `.` or `->`
  int line = 0;
  size_t tok_index = 0;  ///< index into TranslationUnit::toks
};

/// One function definition (has a body in this TU).
struct Function {
  std::string name;        ///< bare name (`apply`, `operator()`, `~Foo`)
  std::string class_name;  ///< innermost enclosing/explicit class, or ""
  std::string qual_name;   ///< display name: outermost context + name
  std::string path;
  int line = 0;       ///< line of the name token
  int decl_line = 0;  ///< first line of the declaration-ish token run
  int open_line = 0;  ///< line of the body's opening `{`
  size_t body_begin = 0;  ///< token index just past the opening `{`
  size_t body_end = 0;    ///< token index of the closing `}`
  std::vector<CallSite> calls;
  bool is_root_a1 = false;  ///< set by the rule layer from ROOT(A1) notes
};

/// One enum definition (scoped or classic) with its enumerators.
struct EnumDef {
  std::string name;  ///< bare name (`WalRecordType`)
  std::string path;
  int line = 0;
  std::vector<std::string> enumerators;
};

struct TranslationUnit {
  std::string path;
  std::vector<Tok> toks;
  std::vector<Note> notes;
  std::vector<Function> functions;
  std::vector<EnumDef> enums;
};

/// Lexes and structurally parses one file's content.
TranslationUnit parse_tu(const std::string& path, const std::string& content);

/// True for C++ keywords that look like calls (`if (`, `sizeof (`, ...).
bool is_call_keyword(const std::string& s);

}  // namespace rcommit::analyze
