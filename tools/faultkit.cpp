// faultkit — crash-point fault-injection driver.
//
// Modes (pick one):
//   --enumerate          list the reachable WAL injection sites of the workload
//   --sweep              exhaustive (site × kind) recovery-equivalence sweep;
//                        failures are shrunk and written as artifacts
//   --replay             run one crash point: --site=N --kind=K [--arg=A]
//   --artifact=<dir>     replay a saved artifact and diff against its report
//
// Workload knobs (--seed --shards --txns --fanout --keys) feed TortureOptions;
// a sweep failure is reproducible from (seed, site) alone — see
// docs/fault-injection.md for the repro recipe CI prints.
//
// --multishot switches every mode onto the pipelined MultiShotDb workload
// (MultiTortureOptions: --batches/--batch-size replace --txns), where a crash
// leaves many transactions in doubt per shard. --artifact auto-detects the
// schema from config.txt, so saved multi-shot artifacts replay either way.
#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <string>

#include "common/check.h"
#include "common/flags.h"
#include "faultinject/multitorture.h"
#include "faultinject/torture.h"

namespace {

namespace fs = std::filesystem;
using namespace rcommit;
using namespace rcommit::faultinject;

const std::vector<FlagDoc> kDocs = {
    {"enumerate", "", "list reachable WAL injection sites"},
    {"sweep", "", "exhaustive (site x kind) recovery-equivalence sweep"},
    {"replay", "", "run one crash point (--site, --kind, --arg)"},
    {"artifact", "dir", "replay a saved artifact; exit 1 on report mismatch"},
    {"site", "N", "WAL site for --replay"},
    {"kind", "name", "fault kind for --replay (crash-before, torn, "
                     "partial-flush, duplicate, crash-after)"},
    {"arg", "N", "fault argument for --replay (torn-byte draw, ...)"},
    {"save", "dir", "with --replay: also write the crash point as an artifact"},
    {"seed", "N", "workload seed (default 1)"},
    {"shards", "N", "shard count (default 3)"},
    {"txns", "N", "workload transactions (default 4)"},
    {"fanout", "N", "shards per transaction (default 2)"},
    {"keys", "N", "keys per shard (default 4)"},
    {"multishot", "", "pipelined MultiShotDb workload (many txns in doubt)"},
    {"batches", "N", "--multishot: pipelined batches (default 3)"},
    {"batch-size", "N", "--multishot: in-flight txns per batch (default 8)"},
    {"group-commit", "", "--multishot: group-commit WAL mode (sites move to "
                         "group-flush boundaries)"},
    {"decision-batch", "N",
     "--multishot: prepared txns decided per protocol round (default 1)"},
    {"threads", "N", "sweep parallelism (default 1)"},
    {"max-sites", "N", "cap swept sites; -1 = all (default)"},
    {"artifacts", "dir", "where --sweep writes shrunk failure artifacts"},
    {"dir", "path", "scratch directory (default: under the system temp dir)"},
};
const char kSummary[] = "deterministic crash-point fault injection driver";

void print_result(const CrashPointResult& result) {
  std::cout << result.serialize();
}

void print_sites(const std::vector<SiteInfo>& sites) {
  std::cout << "# site  wal  record_type  frame_size\n";
  for (const auto& site : sites) {
    std::cout << site.site << "  " << site.wal_name << "  "
              << static_cast<int>(site.record_type) << "  " << site.frame_size
              << "\n";
  }
  std::cout << sites.size() << " reachable WAL sites\n";
}

int run_enumerate(const TortureOptions& options) {
  print_sites(enumerate_sites(options));
  return 0;
}

int run_sweep(const TortureOptions& options, const SweepOptions& sweep,
              const std::string& artifacts_dir) {
  const auto result = run_wal_sweep(options, sweep);
  std::cout << "sites=" << result.sites << " crash_points=" << result.crash_points
            << " failures=" << result.failures.size() << "\n";
  int index = 0;
  for (const auto& failure : result.failures) {
    std::cout << "\nFAIL plan:\n" << failure.plan.serialize() << "result:\n";
    print_result(failure.result);
    TortureOptions shrink_options = options;
    shrink_options.scratch_dir = options.scratch_dir / "shrink";
    const FaultPlan shrunk = shrink_fault_plan(shrink_options, failure.plan);
    if (!artifacts_dir.empty()) {
      TortureOptions clean = options;
      clean.scratch_dir.clear();
      TortureOptions replay_options = options;
      replay_options.scratch_dir = options.scratch_dir / "artifact-replay";
      FaultArtifact artifact{clean, shrunk,
                             run_crash_point(replay_options, shrunk)};
      fs::remove_all(replay_options.scratch_dir);
      const fs::path dir =
          fs::path(artifacts_dir) / ("fault-" + std::to_string(index++));
      write_fault_artifact(dir, artifact);
      std::cout << "artifact: " << dir.string() << "\n";
      std::cout << "reproduce: faultkit --artifact=" << dir.string() << "\n";
    }
  }
  return result.ok() ? 0 : 1;
}

int run_replay(const TortureOptions& options, int64_t site,
               const std::string& kind_name, uint64_t arg,
               const std::string& save_dir) {
  const FaultKind kind = parse_fault_kind(kind_name);
  RCOMMIT_CHECK_MSG(is_wal_kind(kind), "--replay takes a WAL fault kind");
  const FaultPlan plan = FaultPlan::wal_fault_at(site, kind, arg);
  const auto result = run_crash_point(options, plan);
  print_result(result);
  if (!save_dir.empty()) {
    TortureOptions clean = options;
    clean.scratch_dir.clear();
    write_fault_artifact(save_dir, {clean, plan, result});
    std::cout << "artifact: " << save_dir << "\n";
  }
  return result.ok() ? 0 : 1;
}

int run_multi_enumerate(const MultiTortureOptions& options) {
  print_sites(enumerate_multi_sites(options));
  return 0;
}

int run_multi_sweep(const MultiTortureOptions& options, const SweepOptions& sweep,
                    const std::string& artifacts_dir) {
  const auto result = run_multi_wal_sweep(options, sweep);
  std::cout << "sites=" << result.sites << " crash_points=" << result.crash_points
            << " failures=" << result.failures.size() << "\n";
  int index = 0;
  for (const auto& failure : result.failures) {
    std::cout << "\nFAIL plan:\n" << failure.plan.serialize() << "result:\n";
    print_result(failure.result);
    if (!artifacts_dir.empty()) {
      MultiTortureOptions clean = options;
      clean.scratch_dir.clear();
      const fs::path dir =
          fs::path(artifacts_dir) / ("multifault-" + std::to_string(index++));
      write_multi_fault_artifact(dir, {clean, failure.plan, failure.result});
      std::cout << "artifact: " << dir.string() << "\n";
      std::cout << "reproduce: faultkit --multishot --artifact=" << dir.string()
                << "\n";
    }
  }
  return result.ok() ? 0 : 1;
}

int run_multi_replay(const MultiTortureOptions& options, int64_t site,
                     const std::string& kind_name, uint64_t arg,
                     const std::string& save_dir) {
  const FaultKind kind = parse_fault_kind(kind_name);
  RCOMMIT_CHECK_MSG(is_wal_kind(kind), "--replay takes a WAL fault kind");
  const FaultPlan plan = FaultPlan::wal_fault_at(site, kind, arg);
  const auto result = run_multi_crash_point(options, plan);
  print_result(result);
  if (!save_dir.empty()) {
    MultiTortureOptions clean = options;
    clean.scratch_dir.clear();
    write_multi_fault_artifact(save_dir, {clean, plan, result});
    std::cout << "artifact: " << save_dir << "\n";
  }
  return result.ok() ? 0 : 1;
}

int run_multi_artifact(const fs::path& dir, const fs::path& scratch) {
  const MultiFaultArtifact artifact = load_multi_fault_artifact(dir);
  MultiTortureOptions options = artifact.options;
  options.scratch_dir = scratch;
  const CrashPointResult result = run_multi_crash_point(options, artifact.plan);
  if (result == artifact.expected) {
    std::cout << "replay matches " << (dir / "report.txt").string() << "\n";
    print_result(result);
    return result.ok() ? 0 : 1;
  }
  std::cout << "REPLAY MISMATCH\nexpected:\n"
            << artifact.expected.serialize() << "got:\n";
  print_result(result);
  return 1;
}

int run_artifact(const fs::path& dir, const fs::path& scratch) {
  if (is_multishot_artifact(dir)) return run_multi_artifact(dir, scratch);
  const FaultArtifact artifact = load_fault_artifact(dir);
  TortureOptions options = artifact.options;
  options.scratch_dir = scratch;
  const CrashPointResult result = run_crash_point(options, artifact.plan);
  if (result == artifact.expected) {
    std::cout << "replay matches " << (dir / "report.txt").string() << "\n";
    print_result(result);
    return result.ok() ? 0 : 1;
  }
  std::cout << "REPLAY MISMATCH\nexpected:\n"
            << artifact.expected.serialize() << "got:\n";
  print_result(result);
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags = Flags::parse(argc, argv);
  if (flags.has("help")) {
    Flags::print_usage(std::cout, flags.program(), kSummary, kDocs);
    (void)flags.get_bool("help", false);
    return 0;
  }

  TortureOptions options;
  options.seed = static_cast<uint64_t>(flags.get_int("seed", 1));
  options.shard_count = static_cast<int32_t>(flags.get_int("shards", 3));
  options.txns = static_cast<int32_t>(flags.get_int("txns", 4));
  options.fanout = static_cast<int32_t>(flags.get_int("fanout", 2));
  options.keys_per_shard = static_cast<int32_t>(flags.get_int("keys", 4));
  options.scratch_dir = flags.get_string(
      "dir", (fs::temp_directory_path() / "faultkit-scratch").string());

  const bool multishot = flags.get_bool("multishot", false);
  MultiTortureOptions multi_options;
  multi_options.seed = options.seed;
  multi_options.shard_count = options.shard_count;
  multi_options.fanout = options.fanout;
  multi_options.keys_per_shard = options.keys_per_shard;
  multi_options.batches = static_cast<int32_t>(flags.get_int("batches", 3));
  multi_options.batch_size = static_cast<int32_t>(flags.get_int("batch-size", 8));
  multi_options.group_commit = flags.get_bool("group-commit", false);
  multi_options.decision_batch =
      static_cast<int32_t>(flags.get_int("decision-batch", 1));
  multi_options.scratch_dir = options.scratch_dir;

  const bool enumerate = flags.get_bool("enumerate", false);
  const bool sweep = flags.get_bool("sweep", false);
  const bool replay = flags.get_bool("replay", false);
  const std::string artifact = flags.get_string("artifact", "");

  SweepOptions sweep_options;
  sweep_options.threads = static_cast<int>(flags.get_int("threads", 1));
  sweep_options.max_sites = flags.get_int("max-sites", -1);
  const std::string artifacts_dir = flags.get_string("artifacts", "");
  const int64_t site = flags.get_int("site", 0);
  const std::string kind = flags.get_string("kind", "crash-after");
  const auto arg = static_cast<uint64_t>(flags.get_int("arg", 0));
  const std::string save_dir = flags.get_string("save", "");

  if (!flags.check_unknown(std::cerr, kSummary, kDocs)) return 2;
  const int modes = (enumerate ? 1 : 0) + (sweep ? 1 : 0) + (replay ? 1 : 0) +
                    (artifact.empty() ? 0 : 1);
  if (modes != 1) {
    std::cerr << "pick exactly one of --enumerate, --sweep, --replay, "
                 "--artifact=<dir>\n";
    Flags::print_usage(std::cerr, flags.program(), kSummary, kDocs);
    return 2;
  }

  int exit_code = 0;
  if (enumerate) {
    exit_code = multishot ? run_multi_enumerate(multi_options)
                          : run_enumerate(options);
  } else if (sweep) {
    exit_code = multishot ? run_multi_sweep(multi_options, sweep_options, artifacts_dir)
                          : run_sweep(options, sweep_options, artifacts_dir);
  } else if (replay) {
    exit_code = multishot ? run_multi_replay(multi_options, site, kind, arg, save_dir)
                          : run_replay(options, site, kind, arg, save_dir);
  } else {
    // --artifact auto-detects the config schema; --multishot is implied.
    exit_code = run_artifact(artifact, options.scratch_dir);
  }
  std::filesystem::remove_all(options.scratch_dir);
  return exit_code;
}
