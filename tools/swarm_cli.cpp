// Swarm driver CLI: sweep a protocol × adversary × n × seed matrix across a
// work-stealing thread pool, gate every run on the paper's correctness
// conditions, shrink and archive any counterexample, and print a JSON
// summary.
//
//   $ swarm_cli --protocols=commit,benor --adversaries=crash,latemsg
//               --n=3,5,7 --seeds=25 --threads=8 --artifacts=swarm-artifacts
//
// Matrix flags:
//   --protocols    comma list: commit | benor | twopc | q3pc | paxoscommit
//                  | bftcommit                                  (default all 6)
//   --adversaries  comma list: ontime | random | crash | latemsg | partition
//                  | stretch | adaptive | omniscient | byzantine (default all)
//   --n            comma list of fleet sizes                    (default 3,5,7)
//   --seeds        seeds per cell                               (default 10)
//   --seed0        base seed the cell seeds derive from         (default 1)
//   --k            on-time bound K in ticks                     (default 2)
//   --max-events   per-run event budget                         (default 200000)
// Execution flags:
//   --threads      worker threads                               (default 1)
//   --budget       wall-clock seconds; 0 = run everything       (default 0)
//                  (skipped cells make the aggregate timing-dependent)
//   --artifacts    directory for counterexample artifacts       (default
//                  swarm-artifacts; empty string disables)
//   --no-shrink    keep raw counterexample schedules
//   --shrink-evals max replay evaluations per shrink            (default 4000)
//   --measure      record traces and compute round/lateness stats for every
//                  cell (default off: the sweep runs the trace-off fast path
//                  except where a safety gate needs the trace)
// Output flags:
//   --json         summary destination: a path, or - for stdout (default -)
//   --aggregate-only  emit only the deterministic aggregate section (no perf
//                  timing) — byte-identical across --threads values
// Replay mode:
//   --replay=DIR   replay an artifact directory instead of sweeping; exit 0
//                  iff the recorded violation reproduces
// Search mode (docs/coverage-search.md):
//   --search       coverage-guided schedule search instead of a sweep, over
//                  ONE cell shape: the first --protocols / --adversaries /
//                  --n value (the adversary drives the seeding phase).
//                  --seed0, --k, --max-events, --threads, --artifacts,
//                  --no-shrink, --shrink-evals, --json apply as in sweeps.
//   --chains       independent deterministic chains            (default 4)
//   --seed-runs    random-seeding runs per chain               (default 32)
//   --mutations    corpus-mutation runs per chain              (default 96)
//   --corpus-out=DIR  save the distilled corpus (artifact-dir format,
//                  replayable by --replay and the replay-corpus test)
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/flags.h"
#include "swarm/artifacts.h"
#include "swarm/coverage.h"
#include "swarm/runner.h"
#include "swarm/swarm.h"

namespace {

using namespace rcommit;

std::vector<std::string> split_list(const std::string& csv) {
  std::vector<std::string> out;
  std::istringstream is(csv);
  std::string item;
  while (std::getline(is, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

int replay_artifact(const std::string& dir) {
  const auto artifact = swarm::load_artifact(dir);
  std::cerr << "replaying " << artifact.config.id() << " ("
            << artifact.schedule.actions.size() << " actions)";
  if (!artifact.violation.empty()) {
    std::cerr << ", recorded violation: " << artifact.violation;
  }
  std::cerr << "\n";

  try {
    const auto result =
        swarm::replay_schedule(artifact.config, artifact.schedule);
    const auto detail = swarm::gate_violation(
        artifact.config, swarm::cell_votes(artifact.config), result);
    if (!detail.empty()) {
      std::cout << "violation reproduced: " << detail << "\n";
      return 0;
    }
    std::cout << "no violation on replay\n";
    return 2;
  } catch (const CheckFailure& failure) {
    std::cout << "replay diverged: " << failure.what() << "\n";
    return 2;
  }
}

void write_json(const std::string& dest, const std::string& json) {
  if (dest == "-") {
    std::cout << json << "\n";
  } else {
    std::ofstream out(dest, std::ios::binary | std::ios::trunc);
    RCOMMIT_CHECK_MSG(out.good(), "cannot write " << dest);
    out << json << "\n";
  }
}

int search_mode(const Flags& flags) {
  swarm::SearchOptions options;
  options.cell.protocol = swarm::parse_protocol_kind(
      split_list(flags.get_string("protocols", "commit")).at(0));
  options.cell.adversary = swarm::parse_adversary_kind(
      split_list(flags.get_string("adversaries", "crash")).at(0));
  options.cell.n =
      static_cast<int32_t>(std::stol(split_list(flags.get_string("n", "5")).at(0)));
  options.cell.t = (options.cell.n - 1) / 2;
  options.cell.k = flags.get_int("k", 2);
  options.cell.seed = static_cast<uint64_t>(flags.get_int("seed0", 1));
  options.cell.max_events = flags.get_int("max-events", 200'000);

  options.chains = static_cast<int>(flags.get_int("chains", 4));
  options.threads = static_cast<int>(flags.get_int("threads", 1));
  options.seed_runs = static_cast<int>(flags.get_int("seed-runs", 32));
  options.mutation_runs = static_cast<int>(flags.get_int("mutations", 96));
  options.artifacts_dir = flags.get_string("artifacts", "swarm-artifacts");
  options.shrink = !flags.get_bool("no-shrink", false);
  options.shrink_max_evals = static_cast<int>(flags.get_int("shrink-evals", 4000));

  const auto summary = swarm::run_search(options);

  std::cerr << "search: " << summary.runs_executed << " runs over "
            << options.chains << " chain(s), " << summary.novel_fingerprints
            << " novel fingerprint(s), " << summary.corpus.entries().size()
            << " corpus entries, " << summary.violations << " violation(s) in "
            << summary.elapsed_seconds << "s\n";
  for (const auto& report : summary.violation_reports) {
    std::cerr << "  VIOLATION " << report.config.id() << ": " << report.detail
              << " — shrunk " << report.original_actions << " -> "
              << report.shrunk_actions << " actions";
    if (!report.artifact_path.empty()) std::cerr << " @ " << report.artifact_path;
    std::cerr << "\n";
  }

  if (const auto corpus_out = flags.get_string("corpus-out", "");
      !corpus_out.empty()) {
    const auto dirs = swarm::save_corpus(corpus_out, summary.corpus);
    std::cerr << "search: saved " << dirs.size() << " corpus entries under "
              << corpus_out << "\n";
  }

  write_json(flags.get_string("json", "-"), summary.json(options));
  return summary.violations == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) try {
  const auto flags = Flags::parse(argc, argv);

  if (flags.has("replay")) {
    return replay_artifact(flags.get_string("replay", ""));
  }
  if (flags.get_bool("search", false)) {
    return search_mode(flags);
  }

  swarm::SwarmOptions options;
  for (const auto& name : split_list(flags.get_string(
           "protocols", "commit,benor,twopc,q3pc,paxoscommit,bftcommit"))) {
    options.matrix.protocols.push_back(swarm::parse_protocol_kind(name));
  }
  for (const auto& name : split_list(flags.get_string(
           "adversaries",
           "ontime,random,crash,latemsg,partition,stretch,adaptive,omniscient,"
           "byzantine"))) {
    options.matrix.adversaries.push_back(swarm::parse_adversary_kind(name));
  }
  for (const auto& n : split_list(flags.get_string("n", "3,5,7"))) {
    options.matrix.ns.push_back(static_cast<int32_t>(std::stol(n)));
  }
  options.matrix.seeds_per_cell = static_cast<int>(flags.get_int("seeds", 10));
  options.matrix.base_seed = static_cast<uint64_t>(flags.get_int("seed0", 1));
  options.matrix.k = flags.get_int("k", 2);
  options.matrix.max_events = flags.get_int("max-events", 200'000);

  options.threads = static_cast<int>(flags.get_int("threads", 1));
  options.budget_seconds = flags.get_double("budget", 0);
  options.artifacts_dir = flags.get_string("artifacts", "swarm-artifacts");
  options.shrink = !flags.get_bool("no-shrink", false);
  options.shrink_max_evals = static_cast<int>(flags.get_int("shrink-evals", 4000));
  options.measure = flags.get_bool("measure", false);

  const auto json_dest = flags.get_string("json", "-");
  const bool aggregate_only = flags.get_bool("aggregate-only", false);

  for (const auto& unknown : flags.unused()) {
    std::cerr << "warning: unknown flag --" << unknown << "\n";
  }

  const auto summary = swarm::run_swarm(options);

  std::cerr << "swarm: " << summary.runs_executed << "/" << summary.cells_total
            << " runs on " << summary.threads << " thread(s) in "
            << summary.elapsed_seconds << "s (" << summary.runs_per_second
            << " runs/s), " << summary.violations << " violation(s), "
            << summary.expected_divergence
            << " expected baseline divergence(s)\n";
  for (const auto& report : summary.violation_reports) {
    std::cerr << "  VIOLATION " << report.config.id() << ": " << report.detail
              << " — shrunk " << report.original_actions << " -> "
              << report.shrunk_actions << " actions";
    if (!report.artifact_path.empty()) std::cerr << " @ " << report.artifact_path;
    std::cerr << "\n";
  }

  const auto json = aggregate_only ? summary.aggregate_json(options.matrix)
                                   : summary.full_json(options.matrix);
  if (json_dest == "-") {
    std::cout << json << "\n";
  } else {
    std::ofstream out(json_dest, std::ios::binary | std::ios::trunc);
    RCOMMIT_CHECK_MSG(out.good(), "cannot write " << json_dest);
    out << json << "\n";
  }

  return summary.violations == 0 ? 0 : 1;
} catch (const std::exception& error) {
  std::cerr << "swarm_cli: " << error.what() << "\n";
  return 2;
}
