// bench_report — merge per-bench JSON artifacts into BENCH_RESULTS.json and
// regenerate the generated section of EXPERIMENTS.md.
//
//   bench_report [--in=bench/out] [--out=BENCH_RESULTS.json]
//                [--experiments=EXPERIMENTS.md]
//
// Reads every *.json under --in (sorted by filename), merges them (duplicate
// experiment ids are an error), writes the merged document to --out, and —
// when --experiments is given — rewrites the marker-delimited block of that
// file in place. Exits 2 on usage errors, 1 on any other failure.
#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <vector>

#include "benchkit.h"
#include "common/check.h"
#include "common/flags.h"
#include "common/json.h"

namespace {

namespace fs = std::filesystem;
using namespace rcommit;

std::string read_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  RCOMMIT_CHECK_MSG(in.good(), "cannot open " << path.string());
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void write_file(const fs::path& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  RCOMMIT_CHECK_MSG(out.good(), "cannot open " << path.string() << " for writing");
  out << content;
  RCOMMIT_CHECK_MSG(out.good(), "failed writing " << path.string());
}

const std::vector<FlagDoc> kDocs = {
    {"in", "dir", "directory of per-bench *.json artifacts (default bench/out)"},
    {"out", "path", "merged output document (default BENCH_RESULTS.json)"},
    {"experiments", "path", "EXPERIMENTS.md to rewrite in place (optional)"},
    {"help", "", "this text"},
};
const char kSummary[] = "merge bench JSON artifacts and regenerate EXPERIMENTS.md";

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  try {
    flags = Flags::parse(argc, argv);
  } catch (const CheckFailure& e) {
    std::cerr << "bench_report: " << e.what() << "\n";
    Flags::print_usage(std::cerr, "bench_report", kSummary, kDocs);
    return 2;
  }
  const std::string in_dir = flags.get_string("in", "bench/out");
  const std::string out_path = flags.get_string("out", "BENCH_RESULTS.json");
  const std::string experiments = flags.get_string("experiments", "");
  if (flags.get_bool("help", false)) {
    Flags::print_usage(std::cout, "bench_report", kSummary, kDocs);
    return 0;
  }
  if (!flags.check_unknown(std::cerr, kSummary, kDocs)) return 2;

  try {
    std::vector<fs::path> inputs;
    RCOMMIT_CHECK_MSG(fs::is_directory(in_dir),
                      "--in directory " << in_dir
                                        << " does not exist; run the bench "
                                           "suite with --json first");
    for (const auto& entry : fs::directory_iterator(in_dir)) {
      if (entry.path().extension() == ".json") inputs.push_back(entry.path());
    }
    std::sort(inputs.begin(), inputs.end());
    RCOMMIT_CHECK_MSG(!inputs.empty(), "no *.json artifacts under " << in_dir);

    std::vector<metrics::BenchResult> results;
    for (const auto& path : inputs) {
      results.push_back(
          metrics::bench_result_from_json(json::parse(read_file(path))));
    }
    const auto merged = benchkit::merge_to_json(results);
    write_file(out_path, merged + "\n");

    int total = 0;
    int held = 0;
    for (const auto& r : results) {
      total += static_cast<int>(r.claims.size());
      held += metrics::claims_held(r);
    }
    std::cout << "bench_report: merged " << results.size() << " experiments, "
              << held << "/" << total << " claims hold -> " << out_path << "\n";

    if (!experiments.empty()) {
      const auto doc = read_file(experiments);
      write_file(experiments,
                 benchkit::splice_generated_block(
                     doc, benchkit::render_experiments_block(results)));
      std::cout << "bench_report: regenerated measured section of "
                << experiments << "\n";
    }
  } catch (const CheckFailure& e) {
    std::cerr << "bench_report: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
