// bench_compare — the regression gate between two BENCH_RESULTS.json files.
//
//   bench_compare --baseline=bench/baseline/BENCH_RESULTS.json
//                 --current=BENCH_RESULTS.json
//                 [--tolerance=0.25] [--no-timing]
//
// Exits 1 when any claim that held in the baseline no longer holds, when a
// baseline experiment or claim disappeared, or when a "total" timing sample
// grew beyond the tolerance (skipped with --no-timing: verdicts are
// machine-independent, wall-clock is not). Exits 2 on usage errors.
#include <fstream>
#include <iostream>
#include <sstream>

#include "benchkit.h"
#include "common/check.h"
#include "common/flags.h"

namespace {

using namespace rcommit;

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  RCOMMIT_CHECK_MSG(in.good(), "cannot open " << path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

const std::vector<FlagDoc> kDocs = {
    {"baseline", "path", "baseline BENCH_RESULTS.json (required)"},
    {"current", "path", "current BENCH_RESULTS.json (required)"},
    {"tolerance", "frac", "allowed relative timing growth (default 0.25)"},
    {"no-timing", "", "ignore timing samples; gate on claim verdicts only"},
    {"help", "", "this text"},
};
const char kSummary[] = "diff two BENCH_RESULTS.json files; nonzero on regression";

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  try {
    flags = Flags::parse(argc, argv);
  } catch (const CheckFailure& e) {
    std::cerr << "bench_compare: " << e.what() << "\n";
    Flags::print_usage(std::cerr, "bench_compare", kSummary, kDocs);
    return 2;
  }
  const std::string baseline_path = flags.get_string("baseline", "");
  const std::string current_path = flags.get_string("current", "");
  benchkit::CompareOptions options;
  options.timing_tolerance = flags.get_double("tolerance", 0.25);
  options.check_timing = !flags.get_bool("no-timing", false);
  if (flags.get_bool("help", false)) {
    Flags::print_usage(std::cout, "bench_compare", kSummary, kDocs);
    return 0;
  }
  if (!flags.check_unknown(std::cerr, kSummary, kDocs)) return 2;
  if (baseline_path.empty() || current_path.empty()) {
    std::cerr << "bench_compare: --baseline and --current are required\n";
    Flags::print_usage(std::cerr, "bench_compare", kSummary, kDocs);
    return 2;
  }

  try {
    const auto baseline = benchkit::parse_merged_json(read_file(baseline_path));
    const auto current = benchkit::parse_merged_json(read_file(current_path));
    const auto report = benchkit::compare(baseline, current, options);
    for (const auto& note : report.notes) {
      std::cout << "note: " << note << "\n";
    }
    for (const auto& regression : report.regressions) {
      std::cout << "REGRESSION: " << regression << "\n";
    }
    if (!report.ok()) {
      std::cout << "bench_compare: " << report.regressions.size()
                << " regression(s)\n";
      return 1;
    }
    std::cout << "bench_compare: no regressions against " << baseline_path << "\n";
  } catch (const CheckFailure& e) {
    std::cerr << "bench_compare: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
