#include "benchkit.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>
#include <sstream>

#include "common/check.h"
#include "common/json.h"
#include "common/stats.h"

namespace rcommit::benchkit {
namespace {

/// Sort key putting E1..E14 in numeric order and everything else after,
/// alphabetically.
std::pair<int, std::string> experiment_order(const std::string& id) {
  if (id.size() >= 2 && id[0] == 'E') {
    bool digits = true;
    for (size_t i = 1; i < id.size(); ++i) digits = digits && std::isdigit(id[i]);
    if (digits) return {std::stoi(id.substr(1)), ""};
  }
  return {1'000'000, id};
}

const metrics::BenchResult* find_experiment(
    const std::vector<metrics::BenchResult>& results, const std::string& id) {
  for (const auto& r : results) {
    if (r.experiment_id == id) return &r;
  }
  return nullptr;
}

const metrics::ClaimRow* find_claim(const metrics::BenchResult& result,
                                    const std::string& claim_id) {
  for (const auto& c : result.claims) {
    if (c.claim_id == claim_id) return &c;
  }
  return nullptr;
}

const metrics::TimingSample* find_timing(const metrics::BenchResult& result,
                                         const std::string& name) {
  for (const auto& t : result.timings) {
    if (t.name == name) return &t;
  }
  return nullptr;
}

}  // namespace

std::string merge_to_json(std::vector<metrics::BenchResult> results) {
  std::set<std::string> seen;
  for (const auto& r : results) {
    RCOMMIT_CHECK_MSG(seen.insert(r.experiment_id).second,
                      "duplicate experiment id '"
                          << r.experiment_id
                          << "' — two bench artifacts claim the same "
                             "experiment; remove the stale one from bench/out");
  }
  std::stable_sort(results.begin(), results.end(),
                   [](const metrics::BenchResult& a, const metrics::BenchResult& b) {
                     return experiment_order(a.experiment_id) <
                            experiment_order(b.experiment_id);
                   });

  int total = 0;
  int held = 0;
  for (const auto& r : results) {
    total += static_cast<int>(r.claims.size());
    held += metrics::claims_held(r);
  }

  json::JsonWriter w;
  w.begin_object();
  w.key("schema_version").value(static_cast<int64_t>(metrics::kBenchSchemaVersion));
  w.key("claims_total").value(static_cast<int64_t>(total));
  w.key("claims_held").value(static_cast<int64_t>(held));
  w.key("experiments");
  w.begin_array();
  for (const auto& r : results) w.raw(metrics::to_json(r));
  w.end_array();
  w.end_object();
  return w.str();
}

std::vector<metrics::BenchResult> parse_merged_json(const std::string& text) {
  const auto doc = json::parse(text);
  const auto version = static_cast<int>(doc.at("schema_version").as_int());
  RCOMMIT_CHECK_MSG(version == metrics::kBenchSchemaVersion,
                    "BENCH_RESULTS schema version "
                        << version << " != supported version "
                        << metrics::kBenchSchemaVersion);
  std::vector<metrics::BenchResult> results;
  for (const auto& item : doc.at("experiments").items()) {
    results.push_back(metrics::bench_result_from_json(item));
  }
  return results;
}

std::string render_experiments_block(
    const std::vector<metrics::BenchResult>& results) {
  std::ostringstream os;
  int total = 0;
  int held = 0;
  for (const auto& r : results) {
    total += static_cast<int>(r.claims.size());
    held += metrics::claims_held(r);
  }

  os << "Regenerate with `tools/bench_report` after running the bench suite "
        "with `--json` (see\n[docs/benchmarking.md](docs/benchmarking.md)); "
        "sourced from `BENCH_RESULTS.json`.\n\n";
  os << "### Claim ledger — " << held << "/" << total << " claims hold\n\n";
  Table ledger({"experiment", "bench", "claim", "paper says", "measured", "verdict"});
  for (const auto& r : results) {
    for (const auto& c : r.claims) {
      ledger.row({r.experiment_id, r.bench, c.claim_id, c.paper, c.measured,
                  c.holds ? "OK" : "MISMATCH"});
    }
  }
  os << ledger.str();

  os << "\n### Timing summary\n\n"
     << "Wall-clock is the only machine-dependent column; every other number "
        "above is a\ndeterministic function of the seeds.\n\n";
  Table timing({"experiment", "bench", "mode", "total seconds", "repeats"});
  for (const auto& r : results) {
    const auto* t = find_timing(r, "total");
    timing.row({r.experiment_id, r.bench, r.quick ? "quick" : "full",
                t != nullptr ? Table::num(t->seconds, 3) : "-",
                t != nullptr ? Table::num(static_cast<int64_t>(t->repeats)) : "-"});
  }
  os << timing.str();
  return os.str();
}

std::string splice_generated_block(const std::string& document,
                                   const std::string& block) {
  const auto begin_pos = document.find(kGeneratedBegin);
  RCOMMIT_CHECK_MSG(begin_pos != std::string::npos,
                    "generated-section begin marker not found; add\n"
                        << kGeneratedBegin << "\n...\n" << kGeneratedEnd
                        << "\nto the document first");
  const auto end_pos = document.find(kGeneratedEnd);
  RCOMMIT_CHECK_MSG(end_pos != std::string::npos,
                    "generated-section end marker not found");
  const auto content_start = begin_pos + std::string(kGeneratedBegin).size();
  RCOMMIT_CHECK_MSG(end_pos >= content_start,
                    "generated-section markers are out of order");
  return document.substr(0, content_start) + "\n\n" + block + "\n" +
         document.substr(end_pos);
}

CompareReport compare(const std::vector<metrics::BenchResult>& baseline,
                      const std::vector<metrics::BenchResult>& current,
                      const CompareOptions& options) {
  CompareReport report;
  for (const auto& base : baseline) {
    const auto* cur = find_experiment(current, base.experiment_id);
    if (cur == nullptr) {
      report.regressions.push_back("experiment " + base.experiment_id + " (" +
                                   base.bench + ") missing from current results");
      continue;
    }
    for (const auto& base_claim : base.claims) {
      const auto* cur_claim = find_claim(*cur, base_claim.claim_id);
      if (cur_claim == nullptr) {
        report.regressions.push_back("claim " + base.experiment_id + "/" +
                                     base_claim.claim_id +
                                     " missing from current results");
        continue;
      }
      if (base_claim.holds && !cur_claim->holds) {
        report.regressions.push_back(
            "claim " + base.experiment_id + "/" + base_claim.claim_id +
            " flipped to MISMATCH: " + cur_claim->measured);
      } else if (!base_claim.holds && cur_claim->holds) {
        report.notes.push_back("claim " + base.experiment_id + "/" +
                               base_claim.claim_id + " now holds");
      }
    }
    if (options.check_timing) {
      const auto* base_total = find_timing(base, "total");
      const auto* cur_total = find_timing(*cur, "total");
      if (base_total != nullptr && cur_total != nullptr &&
          base_total->seconds > 0.0) {
        const double limit = base_total->seconds * (1.0 + options.timing_tolerance);
        if (cur_total->seconds > limit) {
          std::ostringstream msg;
          msg << "timing " << base.experiment_id << " (" << base.bench
              << ") total " << cur_total->seconds << "s exceeds baseline "
              << base_total->seconds << "s by more than "
              << options.timing_tolerance * 100.0 << "%";
          report.regressions.push_back(msg.str());
        }
      }
    }
  }
  for (const auto& cur : current) {
    if (find_experiment(baseline, cur.experiment_id) == nullptr) {
      report.notes.push_back("new experiment " + cur.experiment_id + " (" +
                             cur.bench + ") not in baseline");
    }
  }
  return report;
}

}  // namespace rcommit::benchkit
