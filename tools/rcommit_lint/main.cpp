// rcommit_lint CLI: `rcommit_lint [--list-rules] <path>...`
//
// Scans the given files/directories and prints GCC-style diagnostics, one
// per line. Exit status: 0 clean, 1 findings, 2 usage error. Run from the
// repo root (`rcommit_lint src tools tests`) so rule scoping sees the
// canonical directory layout; absolute paths work too because scoping
// matches path components, not prefixes.

#include <cstdio>
#include <string>
#include <vector>

#include "tools/rcommit_lint/lint.h"

namespace {

void print_usage() {
  std::fprintf(stderr,
               "usage: rcommit_lint [--list-rules] <path>...\n"
               "  Lints C++ sources for determinism & layering violations.\n"
               "  See docs/static-analysis.md for the rule catalogue.\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::filesystem::path> roots;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--list-rules") {
      for (const auto& r : rcommit::lint::rule_registry()) {
        std::printf("%s  %s\n      scope: %s\n", r.id.c_str(),
                    r.title.c_str(), r.scope.c_str());
      }
      return 0;
    }
    if (arg == "--help" || arg == "-h") {
      print_usage();
      return 0;
    }
    if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "rcommit_lint: unknown option '%s'\n", arg.c_str());
      print_usage();
      return 2;
    }
    roots.emplace_back(arg);
  }
  if (roots.empty()) {
    print_usage();
    return 2;
  }

  const auto files = rcommit::lint::collect_files(roots);
  if (files.empty()) {
    std::fprintf(stderr, "rcommit_lint: no lintable sources under the given paths\n");
    return 2;
  }

  size_t total = 0;
  size_t dirty_files = 0;
  for (const auto& file : files) {
    const auto diags = rcommit::lint::lint_file(file);
    if (!diags.empty()) ++dirty_files;
    for (const auto& d : diags) {
      std::printf("%s\n", rcommit::lint::format(d).c_str());
      ++total;
    }
  }
  if (total == 0) {
    std::fprintf(stderr, "rcommit_lint: %zu files clean\n", files.size());
    return 0;
  }
  std::fprintf(stderr, "rcommit_lint: %zu diagnostics in %zu of %zu files\n",
               total, dirty_files, files.size());
  return 1;
}
