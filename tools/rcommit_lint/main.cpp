// rcommit_lint CLI: `rcommit_lint [--list-rules] [--json[=FILE]] <path>...`
//
// Scans the given files/directories and prints GCC-style diagnostics, one
// per line. Exit status: 0 clean, 1 findings, 2 usage error. Run from the
// repo root (`rcommit_lint src tools tests`) so rule scoping sees the
// canonical directory layout; absolute paths work too because scoping
// matches path components, not prefixes.
//
// --json emits a machine-readable findings document to stdout (human text
// moves to stderr); --json=FILE writes the document to FILE and keeps the
// normal text output. The schema matches rcommit_analyze --json so CI and
// editor integrations parse both tools with one reader.

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "common/json.h"
#include "tools/rcommit_lint/lint.h"

namespace {

void print_usage() {
  std::fprintf(stderr,
               "usage: rcommit_lint [--list-rules] [--json[=FILE]] <path>...\n"
               "  Lints C++ sources for determinism & layering violations.\n"
               "  See docs/static-analysis.md for the rule catalogue.\n");
}

std::string to_json(const std::vector<rcommit::lint::Diagnostic>& diags,
                    size_t files) {
  rcommit::json::JsonWriter w;
  w.begin_object();
  w.key("tool").value("rcommit_lint");
  w.key("schema_version").value(1);
  w.key("files").value(static_cast<int64_t>(files));
  w.key("diagnostics");
  w.begin_array();
  for (const auto& d : diags) {
    w.begin_object();
    w.key("path").value(d.path);
    w.key("line").value(d.line);
    w.key("rule").value(d.rule);
    w.key("message").value(d.message);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str();
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::filesystem::path> roots;
  bool json_stdout = false;
  std::string json_file;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--list-rules") {
      for (const auto& r : rcommit::lint::rule_registry()) {
        std::printf("%s  %s\n      scope: %s\n", r.id.c_str(),
                    r.title.c_str(), r.scope.c_str());
      }
      return 0;
    }
    if (arg == "--help" || arg == "-h") {
      print_usage();
      return 0;
    }
    if (arg == "--json") {
      json_stdout = true;
      continue;
    }
    if (arg.rfind("--json=", 0) == 0) {
      json_file = arg.substr(7);
      continue;
    }
    if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "rcommit_lint: unknown option '%s'\n", arg.c_str());
      print_usage();
      return 2;
    }
    roots.emplace_back(arg);
  }
  if (roots.empty()) {
    print_usage();
    return 2;
  }

  const auto files = rcommit::lint::collect_files(roots);
  if (files.empty()) {
    std::fprintf(stderr, "rcommit_lint: no lintable sources under the given paths\n");
    return 2;
  }

  std::vector<rcommit::lint::Diagnostic> diags;
  size_t dirty_files = 0;
  for (const auto& file : files) {
    auto file_diags = rcommit::lint::lint_file(file);
    if (!file_diags.empty()) ++dirty_files;
    for (auto& d : file_diags) diags.push_back(std::move(d));
  }

  if (!json_file.empty()) {
    std::ofstream out(json_file, std::ios::binary);
    if (!out) {
      std::fprintf(stderr, "rcommit_lint: cannot write '%s'\n",
                   json_file.c_str());
      return 2;
    }
    out << to_json(diags, files.size()) << "\n";
  }
  if (json_stdout) {
    std::printf("%s\n", to_json(diags, files.size()).c_str());
  }

  std::FILE* text = json_stdout ? stderr : stdout;
  for (const auto& d : diags) {
    std::fprintf(text, "%s\n", rcommit::lint::format(d).c_str());
  }
  if (diags.empty()) {
    std::fprintf(stderr, "rcommit_lint: %zu files clean\n", files.size());
    return 0;
  }
  std::fprintf(stderr, "rcommit_lint: %zu diagnostics in %zu of %zu files\n",
               diags.size(), dirty_files, files.size());
  return 1;
}
