#include "tools/rcommit_lint/lint.h"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <map>
#include <set>
#include <sstream>

namespace rcommit::lint {
namespace {

// ---------------------------------------------------------------------------
// Lexer: turns a source file into identifier / punctuation / string / number
// tokens, dropping comments but harvesting lint-allow annotations from them.
// ---------------------------------------------------------------------------

enum class Kind { kIdent, kPunct, kStr, kNum };

struct Tok {
  Kind kind;
  std::string text;
  int line;
};

struct AllowNote {
  std::string rule;
  bool file_scope = false;
  bool has_reason = false;
  int line = 0;          // line the annotation appears on
  bool code_before = false;  // code tokens precede it on that line
};

struct Scan {
  std::vector<Tok> toks;
  std::vector<AllowNote> allows;
};

bool ident_start(char c) { return std::isalpha(static_cast<unsigned char>(c)) || c == '_'; }
bool ident_char(char c) { return std::isalnum(static_cast<unsigned char>(c)) || c == '_'; }

// Extracts allow annotations from one comment's text. The marker must be
// followed by "(" (line form) or "_FILE(" (file form); a bare mention in
// prose is ignored. The reason is whatever follows "):", trimmed; an empty
// reason counts as missing.
void parse_allows(const std::string& comment, int line, bool code_before,
                  std::vector<AllowNote>& out) {
  static const std::string kMarker = "RCOMMIT_LINT_ALLOW";
  size_t pos = 0;
  while ((pos = comment.find(kMarker, pos)) != std::string::npos) {
    size_t p = pos + kMarker.size();
    AllowNote note;
    note.line = line;
    note.code_before = code_before;
    if (comment.compare(p, 6, "_FILE(") == 0) {
      note.file_scope = true;
      p += 6;
    } else if (p < comment.size() && comment[p] == '(') {
      p += 1;
    } else {
      pos = p;
      continue;  // prose mention, not an annotation
    }
    const size_t close = comment.find(')', p);
    if (close == std::string::npos) {
      pos = p;
      continue;
    }
    note.rule = comment.substr(p, close - p);
    // Placeholder forms like "(<rule>)" in prose are not annotations.
    const bool rule_is_ident =
        !note.rule.empty() &&
        std::all_of(note.rule.begin(), note.rule.end(),
                    [](char ch) { return ident_char(ch); });
    if (!rule_is_ident) {
      pos = close + 1;
      continue;
    }
    p = close + 1;
    while (p < comment.size() && std::isspace(static_cast<unsigned char>(comment[p]))) ++p;
    if (p < comment.size() && comment[p] == ':') {
      std::string reason = comment.substr(p + 1);
      // Block comments may close on the same line; drop the terminator.
      if (const size_t end = reason.find("*/"); end != std::string::npos) {
        reason.resize(end);
      }
      const auto first = reason.find_first_not_of(" \t");
      note.has_reason = first != std::string::npos;
    }
    out.push_back(note);
    pos = p;
  }
}

Scan lex(const std::string& src) {
  Scan scan;
  int line = 1;
  int toks_on_line = 0;
  size_t i = 0;
  const size_t n = src.size();

  auto at = [&](size_t k) { return k < n ? src[k] : '\0'; };
  auto push = [&](Kind kind, std::string text) {
    scan.toks.push_back(Tok{kind, std::move(text), line});
    ++toks_on_line;
  };

  while (i < n) {
    const char c = src[i];
    if (c == '\n') {
      ++line;
      toks_on_line = 0;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Line comment.
    if (c == '/' && at(i + 1) == '/') {
      size_t end = i + 2;
      while (end < n && src[end] != '\n') ++end;
      parse_allows(src.substr(i + 2, end - i - 2), line, toks_on_line > 0,
                   scan.allows);
      i = end;
      continue;
    }
    // Block comment.
    if (c == '/' && at(i + 1) == '*') {
      size_t end = i + 2;
      int start_line = line;
      while (end + 1 < n && !(src[end] == '*' && src[end + 1] == '/')) {
        if (src[end] == '\n') ++line;
        ++end;
      }
      parse_allows(src.substr(i + 2, end - i - 2), start_line,
                   toks_on_line > 0, scan.allows);
      i = (end + 1 < n) ? end + 2 : n;
      if (line != start_line) toks_on_line = 0;
      continue;
    }
    // Raw string literal R"delim(...)delim".
    if (c == 'R' && at(i + 1) == '"') {
      size_t p = i + 2;
      std::string delim;
      while (p < n && src[p] != '(') delim += src[p++];
      const std::string closer = ")" + delim + "\"";
      const size_t end = src.find(closer, p);
      std::string body = end == std::string::npos
                             ? src.substr(p + 1)
                             : src.substr(p + 1, end - p - 1);
      push(Kind::kStr, std::move(body));
      line += static_cast<int>(std::count(
          src.begin() + static_cast<long>(i),
          src.begin() + static_cast<long>(
              end == std::string::npos ? n : end + closer.size()),
          '\n'));
      i = end == std::string::npos ? n : end + closer.size();
      continue;
    }
    // Ordinary string / char literal.
    if (c == '"' || c == '\'') {
      const char quote = c;
      size_t p = i + 1;
      std::string body;
      while (p < n && src[p] != quote) {
        if (src[p] == '\\' && p + 1 < n) {
          body += src[p];
          body += src[p + 1];
          p += 2;
          continue;
        }
        if (src[p] == '\n') ++line;  // unterminated literal; stay sane
        body += src[p++];
      }
      push(Kind::kStr, std::move(body));
      i = p + 1;
      continue;
    }
    // Preprocessor include: lex the target (quoted or angle-bracketed) as a
    // single string token so the layering rules can match path prefixes.
    if (c == '#' && toks_on_line == 0) {
      push(Kind::kPunct, "#");
      size_t p = i + 1;
      while (p < n && (src[p] == ' ' || src[p] == '\t')) ++p;
      size_t d = p;
      while (d < n && ident_char(src[d])) ++d;
      const std::string directive = src.substr(p, d - p);
      if (!directive.empty()) push(Kind::kIdent, directive);
      i = d;
      if (directive == "include") {
        while (i < n && (src[i] == ' ' || src[i] == '\t')) ++i;
        if (at(i) == '<') {
          size_t close = i + 1;
          while (close < n && src[close] != '>' && src[close] != '\n') ++close;
          push(Kind::kStr, src.substr(i + 1, close - i - 1));
          i = close < n && src[close] == '>' ? close + 1 : close;
        }
        // Quoted includes fall through to the ordinary string lexer.
      }
      continue;
    }
    if (ident_start(c)) {
      size_t p = i + 1;
      while (p < n && ident_char(src[p])) ++p;
      push(Kind::kIdent, src.substr(i, p - i));
      i = p;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && std::isdigit(static_cast<unsigned char>(at(i + 1))))) {
      size_t p = i + 1;
      while (p < n) {
        const char d = src[p];
        if (ident_char(d) || d == '.' ||
            ((d == '+' || d == '-') &&
             (src[p - 1] == 'e' || src[p - 1] == 'E' || src[p - 1] == 'p' ||
              src[p - 1] == 'P'))) {
          ++p;
        } else {
          break;
        }
      }
      push(Kind::kNum, src.substr(i, p - i));
      i = p;
      continue;
    }
    // Punctuation. "::" and "->" are the only digraphs the rules care about.
    if (c == ':' && at(i + 1) == ':') {
      push(Kind::kPunct, "::");
      i += 2;
      continue;
    }
    if (c == '-' && at(i + 1) == '>') {
      push(Kind::kPunct, "->");
      i += 2;
      continue;
    }
    push(Kind::kPunct, std::string(1, c));
    ++i;
  }
  return scan;
}

// ---------------------------------------------------------------------------
// Path scoping.
// ---------------------------------------------------------------------------

struct PathInfo {
  std::vector<std::string> comps;
  std::string filename;

  // True when components `a/b` appear adjacent anywhere in the path.
  bool under(const std::string& a, const std::string& b) const {
    for (size_t i = 0; i + 1 < comps.size(); ++i) {
      if (comps[i] == a && comps[i + 1] == b) return true;
    }
    return false;
  }
};

PathInfo classify(const std::string& path) {
  PathInfo info;
  std::string part;
  for (const char c : path) {
    if (c == '/' || c == '\\') {
      if (!part.empty()) info.comps.push_back(part);
      part.clear();
    } else {
      part += c;
    }
  }
  if (!part.empty()) info.comps.push_back(part);
  if (!info.comps.empty()) info.filename = info.comps.back();
  return info;
}

bool in_deterministic_core(const PathInfo& p) {
  return p.under("src", "protocol") || p.under("src", "sim") ||
         p.under("src", "adversary") || p.under("src", "baselines");
}

bool threading_layer(const PathInfo& p) {
  if (p.under("src", "swarm")) return true;
  // Two db components are allowed to own threads: rpc hosts the real RPC
  // server loop, and multishot pipelines commit instances across real client
  // threads (its decision rounds run over the threaded transport).
  return p.under("src", "db") && (p.filename.rfind("rpc.", 0) == 0 ||
                                  p.filename.rfind("multishot.", 0) == 0);
}

// The simulator's per-event hot path: the files whose code runs once per
// simulated event (or per replayed action). Trace/round/on-time analyses run
// after a simulation finishes and are deliberately out of scope.
bool sim_hot_path(const PathInfo& p) {
  if (!p.under("src", "sim")) return false;
  static const std::set<std::string> kHotStems = {
      "adversary", "batch",  "in_flight", "message", "pattern",
      "process",   "replay", "sim_core",  "simulator"};
  const auto dot = p.filename.find('.');
  return kHotStems.count(p.filename.substr(0, dot)) > 0;
}

// ---------------------------------------------------------------------------
// Rules.
// ---------------------------------------------------------------------------

using Toks = std::vector<Tok>;

void diag(std::vector<Diagnostic>& out, const std::string& path, int line,
          const char* rule, std::string message) {
  out.push_back(Diagnostic{path, line, rule, std::move(message)});
}

const std::string& text_at(const Toks& t, size_t i) {
  static const std::string kEmpty;
  return i < t.size() ? t[i].text : kEmpty;
}

// R1 — no ambient nondeterminism in the deterministic layers. A simulation
// run must be a pure function of (protocol, adversary, n, seed). The
// real-time layers (swarm budgets, transport delays, RPC timeouts, bench
// timing windows, tests of those layers) read clocks as part of their job
// and are out of scope here: rcommit_analyze's A2 taint pass tracks their
// reads through the call graph and fires if one ever reaches a core
// decision path — the guarantee the per-site allows used to assert by hand.
bool r1_in_scope(const PathInfo& p) {
  if (p.under("src", "swarm") || p.under("src", "transport") ||
      p.under("src", "db")) {
    return false;
  }
  for (const auto& comp : p.comps) {
    if (comp == "bench" || comp == "tests") return false;
  }
  return true;
}

void rule_r1(const PathInfo& p, const Toks& t, const std::string& path,
             std::vector<Diagnostic>& out) {
  if (!r1_in_scope(p)) return;
  static const std::set<std::string> kClocks = {
      "steady_clock", "system_clock", "high_resolution_clock", "utc_clock",
      "file_clock"};
  // Tokens after which a bare `time(`/`clock(` is a call, not a declaration
  // (declarations look like `Tick clock(...)`: preceded by a type name).
  static const std::set<std::string> kCallPositions = {
      ";", "{", "}", "(", ",", "=", "return", "+", "-", "*", "/",
      "%", "<", ">", "!", "&", "|", "?", ":", "case"};
  for (size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != Kind::kIdent) continue;
    const std::string& s = t[i].text;
    const std::string& prev = i > 0 ? t[i - 1].text : text_at(t, t.size());
    const bool member = prev == "." || prev == "->";
    const bool calls = text_at(t, i + 1) == "(";
    if (s == "random_device" && !member) {
      diag(out, path, t[i].line, "R1",
           "std::random_device draws OS entropy; derive a seed from the run "
           "config and construct a RandomTape with it");
    } else if ((s == "rand" || s == "srand" || s == "getenv" ||
                s == "setenv" || s == "putenv") &&
               calls && !member) {
      diag(out, path, t[i].line, "R1",
           s + "() is ambient state; runs must be pure functions of "
               "(protocol, adversary, n, seed)");
    } else if ((s == "time" || s == "clock") && calls && !member) {
      const bool std_qualified =
          prev == "::" && i >= 2 && text_at(t, i - 2) == "std";
      if (std_qualified || i == 0 || kCallPositions.count(prev) > 0) {
        diag(out, path, t[i].line, "R1",
             s + "() reads the wall clock; use the simulation Tick clock "
                 "(ctx.clock()) instead");
      }
    } else if (kClocks.count(s) > 0 && text_at(t, i + 1) == "::" &&
               text_at(t, i + 2) == "now") {
      diag(out, path, t[i].line, "R1",
           "std::chrono::" + s +
               "::now() is a wall-clock read; schedules must replay "
               "identically regardless of real time");
    }
  }
}

// R2 — threads, mutexes, and atomics live only in src/swarm (the worker
// pool), src/db/rpc (the real server loop), and src/db/multishot (the
// pipelined engine driven by real client threads). The simulator itself is
// single-threaded by design: that is what makes every schedule recordable.
// The repo's annotated wrappers (common/thread_annotations.h: Mutex,
// MutexLock, CondVar) are locks all the same and are banned identically —
// otherwise they would be an R2 bypass.
void rule_r2(const PathInfo& p, const Toks& t, const std::string& path,
             std::vector<Diagnostic>& out) {
  if (threading_layer(p)) return;
  static const std::set<std::string> kThreadIdents = {
      "thread",          "jthread",
      "mutex",           "shared_mutex",
      "recursive_mutex", "timed_mutex",
      "recursive_timed_mutex",
      "condition_variable", "condition_variable_any",
      "lock_guard",      "unique_lock",
      "scoped_lock",     "shared_lock",
      "once_flag",       "call_once",
      "future",          "shared_future",
      "promise",         "async",
      "packaged_task",   "counting_semaphore",
      "binary_semaphore", "barrier",
      "latch",           "stop_token",
      "stop_source",     "this_thread"};
  static const std::set<std::string> kThreadHeaders = {
      "thread", "mutex", "atomic", "condition_variable", "future",
      "shared_mutex", "semaphore", "barrier", "latch", "stop_token"};
  static const std::set<std::string> kWrapperIdents = {"Mutex", "MutexLock",
                                                       "CondVar"};
  for (size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind == Kind::kIdent && t[i].text == "std" &&
        text_at(t, i + 1) == "::" && i + 2 < t.size() &&
        t[i + 2].kind == Kind::kIdent) {
      const std::string& s = t[i + 2].text;
      if (kThreadIdents.count(s) > 0 || s.rfind("atomic", 0) == 0) {
        diag(out, path, t[i + 2].line, "R2",
             "std::" + s +
                 " outside src/swarm, src/db/rpc, and src/db/multishot — "
                 "the simulator is single-threaded so every schedule stays "
                 "recordable");
      }
    } else if (t[i].kind == Kind::kPunct && t[i].text == "#" &&
               text_at(t, i + 1) == "include" && i + 2 < t.size() &&
               t[i + 2].kind == Kind::kStr &&
               kThreadHeaders.count(t[i + 2].text) > 0) {
      diag(out, path, t[i + 2].line, "R2",
           "#include <" + t[i + 2].text +
               "> outside src/swarm, src/db/rpc, and src/db/multishot");
    } else if (t[i].kind == Kind::kPunct && t[i].text == "#" &&
               text_at(t, i + 1) == "include" && i + 2 < t.size() &&
               t[i + 2].kind == Kind::kStr &&
               t[i + 2].text == "common/thread_annotations.h") {
      diag(out, path, t[i + 2].line, "R2",
           "#include \"common/thread_annotations.h\" outside src/swarm, "
           "src/db/rpc, and src/db/multishot — the annotated Mutex is still "
           "a mutex");
    } else if (t[i].kind == Kind::kIdent &&
               kWrapperIdents.count(t[i].text) > 0 &&
               text_at(t, i + 1) != "::") {
      // rcommit::Mutex and friends; skip qualifier positions like
      // `Mutex::...` so prose-ish uses in scope resolution do not double-fire.
      diag(out, path, t[i].line, "R2",
           t[i].text +
               " (common/thread_annotations.h) outside src/swarm, "
               "src/db/rpc, and src/db/multishot — the annotated wrapper is "
               "still a lock");
    }
  }
}

// R3 — no iteration over unordered containers in the deterministic core.
// Hash iteration order is implementation-defined; it leaks into traces and
// breaks byte-identical swarm summaries. Keyed lookup (.at/.find/.count) is
// fine; ranging or .begin() chains are not.
void rule_r3(const PathInfo& p, const Toks& t, const std::string& path,
             std::vector<Diagnostic>& out) {
  if (!in_deterministic_core(p)) return;
  static const std::set<std::string> kUnordered = {
      "unordered_map", "unordered_set", "unordered_multimap",
      "unordered_multiset"};

  // Pass 1: names declared with an unordered type in this file.
  std::set<std::string> names;
  for (size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != Kind::kIdent || kUnordered.count(t[i].text) == 0) continue;
    size_t j = i + 1;
    if (text_at(t, j) == "<") {
      int depth = 1;
      ++j;
      while (j < t.size() && depth > 0) {
        if (t[j].text == "<") ++depth;
        if (t[j].text == ">") --depth;
        ++j;
      }
    }
    while (j < t.size() &&
           (t[j].text == "&" || t[j].text == "*" || t[j].text == "const")) {
      ++j;
    }
    if (j < t.size() && t[j].kind == Kind::kIdent) names.insert(t[j].text);
  }
  if (names.empty()) return;

  auto flag = [&](int line, const std::string& name) {
    diag(out, path, line, "R3",
         "iteration over unordered container '" + name +
             "' — hash order leaks into traces; use std::map, or copy keys "
             "out and sort");
  };

  // Pass 2a: range-for whose range expression mentions a tracked name.
  for (size_t i = 0; i + 1 < t.size(); ++i) {
    if (!(t[i].kind == Kind::kIdent && t[i].text == "for" &&
          t[i + 1].text == "(")) {
      continue;
    }
    int depth = 0;
    bool seen_colon = false;
    for (size_t j = i + 1; j < t.size(); ++j) {
      if (t[j].text == "(") ++depth;
      if (t[j].text == ")" && --depth == 0) break;
      if (depth == 1 && t[j].text == ";") break;  // classic for loop
      if (depth == 1 && t[j].text == ":") seen_colon = true;
      if (seen_colon && t[j].kind == Kind::kIdent && names.count(t[j].text)) {
        flag(t[j].line, t[j].text);
        break;
      }
    }
  }

  // Pass 2b: explicit iterator walks: name.begin(), name->rbegin(), ...
  static const std::set<std::string> kIterStarts = {"begin", "cbegin",
                                                    "rbegin", "crbegin"};
  for (size_t i = 0; i + 3 < t.size(); ++i) {
    if (t[i].kind == Kind::kIdent && names.count(t[i].text) > 0 &&
        (t[i + 1].text == "." || t[i + 1].text == "->") &&
        kIterStarts.count(t[i + 2].text) > 0 && t[i + 3].text == "(") {
      flag(t[i].line, t[i].text);
    }
  }
}

// R4 — layering. protocol/ and baselines/ sit below swarm/, db/, and
// transport/, and reach adversaries only through the sim/adversary.h
// interface; sim/ likewise never includes a concrete adversary.
void rule_r4(const PathInfo& p, const Toks& t, const std::string& path,
             std::vector<Diagnostic>& out) {
  const bool core = p.under("src", "protocol") || p.under("src", "baselines");
  const bool sim = p.under("src", "sim");
  if (!core && !sim) return;
  for (size_t i = 0; i + 2 < t.size(); ++i) {
    if (!(t[i].kind == Kind::kPunct && t[i].text == "#" &&
          text_at(t, i + 1) == "include" && t[i + 2].kind == Kind::kStr)) {
      continue;
    }
    const std::string& target = t[i + 2].text;
    const int line = t[i + 2].line;
    if (core && (target.rfind("swarm/", 0) == 0 ||
                 target.rfind("db/", 0) == 0 ||
                 target.rfind("transport/", 0) == 0)) {
      diag(out, path, line, "R4",
           "protocol/baselines must not include \"" + target +
               "\" — they sit below the swarm, db, and transport layers");
    }
    if (target.rfind("adversary/", 0) == 0) {
      diag(out, path, line, "R4",
           "include concrete adversaries only via \"sim/adversary.h\"; \"" +
               target + "\" is a layering violation");
    }
    if (sim && (target.rfind("swarm/", 0) == 0 || target.rfind("db/", 0) == 0)) {
      diag(out, path, line, "R4",
           "sim/ must not include \"" + target + "\" — it is the bottom layer");
    }
  }
}

// R5 — every RNG construction names its seed. The repo's own generators
// have no default constructor, but std engines default-construct to a fixed
// implicit seed (mt19937's 5489), which hides the seed the swarm needs to
// record for replay.
void rule_r5(const PathInfo&, const Toks& t, const std::string& path,
             std::vector<Diagnostic>& out) {
  static const std::set<std::string> kRepoRng = {"RandomTape", "Xoshiro256",
                                                 "SplitMix64"};
  static const std::set<std::string> kStdRng = {
      "mt19937",       "mt19937_64",   "minstd_rand", "minstd_rand0",
      "ranlux24",      "ranlux48",     "ranlux24_base", "ranlux48_base",
      "knuth_b",       "default_random_engine"};
  for (size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != Kind::kIdent) continue;
    const bool repo = kRepoRng.count(t[i].text) > 0;
    const bool std_engine = kStdRng.count(t[i].text) > 0;
    if (!repo && !std_engine) continue;
    const std::string& n1 = text_at(t, i + 1);
    const std::string& n2 = text_at(t, i + 2);
    const std::string& n3 = text_at(t, i + 3);
    const bool empty_parens = (n1 == "(" && n2 == ")") || (n1 == "{" && n2 == "}");
    const bool named_empty_braces =
        i + 1 < t.size() && t[i + 1].kind == Kind::kIdent && n2 == "{" && n3 == "}";
    // `std::mt19937 gen;` silently seeds with a constant; the repo types
    // cannot default-construct, so a bare member declaration is fine there.
    const bool named_bare = std_engine && i + 1 < t.size() &&
                            t[i + 1].kind == Kind::kIdent && n2 == ";";
    if (empty_parens || named_empty_braces || named_bare) {
      diag(out, path, t[i].line, "R5",
           t[i].text +
               " constructed without an explicit seed — replay requires "
               "every random stream to be derived from the recorded run seed");
    }
  }
}

// R6 — no unordered containers in the simulator's per-event hot path. The
// steady-state step is allocation-free by construction: in-flight messages
// live in a flat direct-mapped slot table (sim/in_flight.h) and every scratch
// buffer recycles its capacity across steps. A hash container on this path
// reintroduces per-node heap traffic on every send/deliver — and,
// transitively, R3's iteration-order hazard. Use sim::InFlightTable, a
// vector keyed by the dense sequential id, or a sorted vector.
void rule_r6(const PathInfo& p, const Toks& t, const std::string& path,
             std::vector<Diagnostic>& out) {
  if (!sim_hot_path(p)) return;
  static const std::set<std::string> kUnordered = {
      "unordered_map", "unordered_set", "unordered_multimap",
      "unordered_multiset"};
  for (size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind == Kind::kPunct && t[i].text == "#" &&
        text_at(t, i + 1) == "include" && i + 2 < t.size() &&
        t[i + 2].kind == Kind::kStr && kUnordered.count(t[i + 2].text) > 0) {
      diag(out, path, t[i + 2].line, "R6",
           "#include <" + t[i + 2].text +
               "> in a sim hot-path file — the per-event loop is "
               "allocation-free; use the flat InFlightTable or a vector "
               "keyed by the dense id");
      i += 2;
      continue;
    }
    if (t[i].kind == Kind::kIdent && kUnordered.count(t[i].text) > 0) {
      diag(out, path, t[i].line, "R6",
           "std::" + t[i].text +
               " on the simulator hot path — hash nodes allocate on every "
               "insert; use the flat InFlightTable or a vector keyed by the "
               "dense id");
    }
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Driver.
// ---------------------------------------------------------------------------

const std::vector<RuleInfo>& rule_registry() {
  static const std::vector<RuleInfo> kRules = {
      {"R1", "no ambient nondeterminism (wall clocks, OS entropy, environment)",
       "deterministic layers only (src minus swarm/transport/db, tools, "
       "examples); real-time layers are covered by rcommit_analyze A2 taint "
       "tracking instead"},
      {"R2", "threads/mutexes/atomics confined to the concurrent layers",
       "everywhere except src/swarm, src/db/rpc, and src/db/multishot"},
      {"R3", "no iteration over unordered containers in decision paths",
       "src/protocol, src/sim, src/adversary, src/baselines"},
      {"R4", "layering: core never includes swarm/db/transport; adversaries "
             "only via sim/adversary.h",
       "src/protocol, src/baselines, src/sim"},
      {"R5", "every RNG construction takes an explicit seed",
       "all scanned files"},
      {"R6", "no unordered containers on the simulator's per-event hot path",
       "src/sim hot-path files (simulator, sim_core, batch, in_flight, "
       "message, pattern, process, adversary, replay)"},
  };
  return kRules;
}

std::vector<Diagnostic> lint_content(const std::string& path,
                                     const std::string& content) {
  const PathInfo info = classify(path);
  const Scan scan = lex(content);

  std::vector<Diagnostic> raw;
  rule_r1(info, scan.toks, path, raw);
  rule_r2(info, scan.toks, path, raw);
  rule_r3(info, scan.toks, path, raw);
  rule_r4(info, scan.toks, path, raw);
  rule_r5(info, scan.toks, path, raw);
  rule_r6(info, scan.toks, path, raw);

  std::set<std::string> known_rules;
  for (const auto& r : rule_registry()) known_rules.insert(r.id);

  // Annotation bookkeeping. Only annotations with a reason suppress; each
  // must actually suppress something or it is reported as stale.
  std::vector<Diagnostic> out;
  std::set<std::string> file_allows;
  std::map<std::pair<int, std::string>, bool> line_allows;  // -> used
  std::map<std::string, bool> file_allow_used;
  for (const auto& a : scan.allows) {
    if (known_rules.count(a.rule) == 0) {
      out.push_back({path, a.line, "allow",
                     "suppression names unknown rule '" + a.rule + "'"});
      continue;
    }
    if (!a.has_reason) {
      out.push_back({path, a.line, "allow",
                     "suppression of " + a.rule +
                         " has no reason — write "
                         "RCOMMIT_LINT_ALLOW" +
                         std::string(a.file_scope ? "_FILE" : "") + "(" +
                         a.rule + "): <why this is legitimate>"});
      continue;
    }
    if (a.file_scope) {
      file_allows.insert(a.rule);
      file_allow_used.emplace(a.rule, false);
    } else {
      const int target = a.code_before ? a.line : a.line + 1;
      line_allows.emplace(std::make_pair(target, a.rule), false);
    }
  }

  for (auto& d : raw) {
    if (auto it = line_allows.find({d.line, d.rule}); it != line_allows.end()) {
      it->second = true;
      continue;
    }
    if (file_allows.count(d.rule) > 0) {
      file_allow_used[d.rule] = true;
      continue;
    }
    out.push_back(std::move(d));
  }
  for (const auto& [key, used] : line_allows) {
    if (!used) {
      out.push_back({path, key.first, "allow",
                     "stale suppression: no " + key.second +
                         " finding on this line — delete the annotation"});
    }
  }
  for (const auto& [rule, used] : file_allow_used) {
    if (!used) {
      out.push_back({path, 1, "allow",
                     "stale file-level suppression: no " + rule +
                         " finding anywhere in this file"});
    }
  }

  std::sort(out.begin(), out.end(), [](const Diagnostic& a, const Diagnostic& b) {
    return std::tie(a.line, a.rule, a.message) <
           std::tie(b.line, b.rule, b.message);
  });
  return out;
}

std::vector<Diagnostic> lint_file(const std::filesystem::path& file) {
  std::ifstream in(file, std::ios::binary);
  if (!in) {
    return {{file.generic_string(), 0, "io", "cannot read file"}};
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return lint_content(file.generic_string(), buf.str());
}

std::vector<std::filesystem::path> collect_files(
    const std::vector<std::filesystem::path>& roots) {
  static const std::set<std::string> kExts = {".h",  ".hh",  ".hpp",
                                              ".cc", ".cpp", ".cxx"};
  auto skip_dir = [](const std::string& name) {
    return name == "testdata" || name == "fixtures" ||
           name.rfind("build", 0) == 0 || (!name.empty() && name[0] == '.');
  };
  std::set<std::filesystem::path> found;
  for (const auto& root : roots) {
    std::error_code ec;
    if (std::filesystem::is_regular_file(root, ec)) {
      if (kExts.count(root.extension().string()) > 0) found.insert(root);
      continue;
    }
    std::filesystem::recursive_directory_iterator it(root, ec), end;
    if (ec) continue;
    for (; it != end; it.increment(ec)) {
      if (ec) break;
      const auto& entry = *it;
      if (entry.is_directory(ec)) {
        if (skip_dir(entry.path().filename().string())) {
          it.disable_recursion_pending();
        }
        continue;
      }
      if (entry.is_regular_file(ec) &&
          kExts.count(entry.path().extension().string()) > 0) {
        found.insert(entry.path());
      }
    }
  }
  return {found.begin(), found.end()};
}

std::string format(const Diagnostic& d) {
  std::ostringstream os;
  os << d.path << ":" << d.line << ": [" << d.rule << "] " << d.message;
  return os.str();
}

}  // namespace rcommit::lint
