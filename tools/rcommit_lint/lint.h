// rcommit-lint: the repo's determinism & layering linter.
//
// Every guarantee this codebase checks — Protocol 1/2 invariant gating,
// schedule replay, byte-identical swarm summaries across thread counts —
// depends on simulation runs being pure functions of (protocol, adversary,
// n, seed). Nothing in C++ stops a future change from smuggling wall-clock
// time, ambient randomness, or unordered-container iteration order into a
// decision path; this linter does, statically.
//
// It is a deliberately dependency-free token-level scanner (no libclang):
// comments and string literals are stripped by a small lexer, and each rule
// pattern-matches the remaining token stream. That makes it fast, buildable
// anywhere the repo builds, and honest about being heuristic — see
// docs/static-analysis.md for the rule catalogue and known blind spots.
//
// Suppression: a finding on line L is silenced by
//     RCOMMIT_LINT_ALLOW(<rule>): <reason>
// in a comment trailing on line L or alone on the line above it, and a whole
// file is exempted from one rule by the _FILE variant anywhere in the file.
// The reason is mandatory: a suppression without one is itself a diagnostic,
// and an annotation that suppresses nothing is flagged as stale. (The angle
// brackets here are placeholders — concrete rule ids in a comment would be
// live annotations, including in this very header.)
#pragma once

#include <filesystem>
#include <string>
#include <vector>

namespace rcommit::lint {

struct Diagnostic {
  std::string path;
  int line = 0;
  std::string rule;  // "R1".."R6", or "allow" for annotation problems
  std::string message;
};

struct RuleInfo {
  std::string id;
  std::string title;
  std::string scope;  // human-readable description of where the rule applies
};

/// The rule registry, in report order. "allow" (annotation hygiene) is
/// implicit and always on; it is not listed here.
const std::vector<RuleInfo>& rule_registry();

/// Lint `content` as if it lived at `path`. Rule scoping matches directory
/// components anywhere in the path (e.g. ".../src/protocol/x.cpp" is in
/// scope for src/protocol rules), so both repo-relative and absolute paths
/// work. Returns diagnostics sorted by line.
std::vector<Diagnostic> lint_content(const std::string& path,
                                     const std::string& content);

/// Reads and lints one file from disk.
std::vector<Diagnostic> lint_file(const std::filesystem::path& file);

/// Recursively collects lintable sources (.h .hh .hpp .cc .cpp .cxx) under
/// `roots`, skipping build*/, testdata/ and fixtures/ (the lint and analyze
/// corpora are intentionally dirty), and dot-directories. The result is
/// sorted and deduplicated so
/// output is deterministic — the linter holds itself to its own contract.
std::vector<std::filesystem::path> collect_files(
    const std::vector<std::filesystem::path>& roots);

/// "path:line: [rule] message" — the format promised by the ISSUE and
/// consumed by editors that understand GCC-style diagnostics.
std::string format(const Diagnostic& d);

}  // namespace rcommit::lint
