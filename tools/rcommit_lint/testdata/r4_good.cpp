// LINT_PATH: src/protocol/r4_good.cpp
// The dependencies the protocol layer is allowed: common/, sim/ (including
// the adversary *interface*), and its own headers.
#include "common/check.h"
#include "common/types.h"
#include "protocol/messages.h"
#include "sim/adversary.h"
#include "sim/process.h"

namespace rcommit {
int fine() { return 0; }
}  // namespace rcommit
