// LINT_PATH: src/sim/r5_bad.cpp
// RNGs constructed without naming their seed. std::mt19937's default
// constructor silently seeds with 5489 — the run "works" but the seed never
// reaches the swarm's recorded config, so the schedule cannot be replayed.
#include <random>

#include "common/rng.h"

namespace rcommit {

unsigned long implicit_seeds() {
  std::mt19937 gen;                  // hidden constant seed
  std::mt19937_64 gen64{};           // same, braced
  RandomTape tape{};                 // would not even compile — and flagged
  unsigned long x = Xoshiro256().next();  // zero-arg temporary
  return x + gen() + gen64() + tape.draws();
}

}  // namespace rcommit
