// LINT_PATH: src/protocol/r1_good.cpp
// The deterministic equivalents: simulation Tick clocks and seeded tapes.
// Member functions *named* clock()/time() are fine — only free-function and
// std-qualified calls read the real world.
#include <chrono>

#include "common/rng.h"

namespace rcommit {

struct Ctx {
  long clock() const { return 7; }  // simulation clock, declaration is fine
};

long deterministic(Ctx& ctx, unsigned long seed) {
  RandomTape tape(seed);
  // chrono *types* are fine too; only ::now() reads the wall clock.
  std::chrono::steady_clock::time_point unused{};
  (void)unused;
  return ctx.clock() + static_cast<long>(tape.next_below(10));
}

}  // namespace rcommit
