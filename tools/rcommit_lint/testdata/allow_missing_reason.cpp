// LINT_PATH: src/protocol/allow_missing_reason.cpp
// A suppression without a reason: the annotation itself is a diagnostic,
// and — because it does not count as a suppression — the R1 finding still
// fires alongside it.
#include <cstdlib>

namespace rcommit {

long lazy() {
  return std::rand();  // RCOMMIT_LINT_ALLOW(R1)
}

}  // namespace rcommit
