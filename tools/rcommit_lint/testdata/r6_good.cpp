// LINT_PATH: src/sim/pattern.cpp
// The hot-path idiom: a flat slot vector direct-mapped by the dense
// sequential id. No hashing, no per-insert node allocation — capacity is
// reused across steps.
#include <cstddef>
#include <vector>

namespace rcommit::sim {

struct Router {
  std::vector<int> slot_of_;  // power-of-two size; -1 marks a free slot
  void add(std::size_t id, int pos) {
    slot_of_[id & (slot_of_.size() - 1)] = pos;
  }
  int position(std::size_t id) const {
    return slot_of_[id & (slot_of_.size() - 1)];
  }
};

}  // namespace rcommit::sim
