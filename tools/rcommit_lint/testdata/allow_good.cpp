// LINT_PATH: src/common/allow_good.cpp
// A reasoned suppression, in both positions the linter accepts: alone on the
// line above a finding, and trailing on the finding's own line.
#include <chrono>

namespace rcommit {

double perf_now() {
  // RCOMMIT_LINT_ALLOW(R1): reporting-only wall clock; never schedules work
  const auto t0 = std::chrono::steady_clock::now();
  const auto t1 = std::chrono::steady_clock::now();  // RCOMMIT_LINT_ALLOW(R1): same — perf measurement only
  return std::chrono::duration<double>(t1 - t0).count();
}

}  // namespace rcommit
