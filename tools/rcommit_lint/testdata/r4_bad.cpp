// LINT_PATH: src/protocol/r4_bad.cpp
// Upward and sideways dependencies from the protocol core: the layers above
// (swarm, db, transport) may depend on protocol, never the reverse, and
// concrete adversaries are reachable only through the sim/adversary.h
// interface.
#include "adversary/crash.h"
#include "db/kv.h"
#include "swarm/runner.h"
#include "transport/network.h"

namespace rcommit {
int never_compiles() { return 0; }
}  // namespace rcommit
