// LINT_PATH: src/swarm/r2_good.cpp
// Identical code to the bad fixture, but inside src/swarm — the worker pool
// is one of the two layers allowed to own threads, so R2 stays silent.
#include <atomic>
#include <mutex>
#include <thread>

namespace rcommit {

struct PoolInnards {
  std::mutex mu;
  std::atomic<int> counter{0};

  void spin() {
    std::thread worker([this] {
      std::lock_guard<std::mutex> lock(mu);
      counter.fetch_add(1);
    });
    worker.join();
  }
};

}  // namespace rcommit
