// LINT_PATH: src/sim/r2_bad.cpp
// Threading primitives in the simulator core. The simulator is
// single-threaded by design — that is what makes schedules recordable.
#include <atomic>
#include <mutex>
#include <thread>

namespace rcommit {

struct Racy {
  std::mutex mu;
  std::atomic<int> counter{0};

  void spin() {
    std::thread worker([this] {
      std::lock_guard<std::mutex> lock(mu);
      counter.fetch_add(1);
    });
    worker.join();
  }
};

}  // namespace rcommit
