// LINT_PATH: src/protocol/r1_bad.cpp
// Every classic nondeterminism smuggle in one function. None of these can
// appear in a decision path: a run must replay identically from its seed.
#include <chrono>
#include <cstdlib>
#include <ctime>
#include <random>

namespace rcommit {

long entropy_soup() {
  std::random_device rd;                         // OS entropy
  long x = static_cast<long>(rd());
  x += std::rand();                              // ambient PRNG state
  x += static_cast<long>(std::time(nullptr));    // wall clock
  if (const char* home = std::getenv("HOME")) {  // environment
    x += home[0];
  }
  const auto t = std::chrono::steady_clock::now();  // wall clock again
  x += t.time_since_epoch().count();
  return x;
}

}  // namespace rcommit
