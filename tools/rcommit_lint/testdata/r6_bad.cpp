// LINT_PATH: src/sim/pattern.cpp
// A hash container on the per-event hot path: every emplace allocates a
// node, which breaks the simulator's zero-allocation steady state. (Keyed
// lookup keeps R3 quiet — the problem R6 flags is the allocation, not the
// iteration order.)
#include <unordered_map>

namespace rcommit::sim {

struct Router {
  std::unordered_map<long, int> in_flight_;
  void add(long id, int pos) { in_flight_.emplace(id, pos); }
  int position(long id) const { return in_flight_.at(id); }
};

}  // namespace rcommit::sim
