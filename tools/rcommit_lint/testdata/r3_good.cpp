// LINT_PATH: src/sim/r3_good.cpp
// The deterministic idioms: keyed lookup into hash containers is fine, and
// anything that must be *walked* either lives in a std::map or gets its keys
// copied out and sorted first.
#include <algorithm>
#include <map>
#include <unordered_map>
#include <vector>

namespace rcommit {

std::vector<int> drain_sorted(const std::unordered_map<int, int>& pending) {
  std::vector<int> keys;
  keys.reserve(pending.size());
  for (int k = 0; k < 1024; ++k) {   // keyed probe, not iteration
    if (pending.count(k) > 0) keys.push_back(k);
  }
  std::sort(keys.begin(), keys.end());
  std::vector<int> out;
  for (const int k : keys) out.push_back(pending.at(k));
  return out;
}

struct Mailbox {
  std::map<long, long> due_;  // ordered container: iteration is deterministic
  long first() { return due_.begin()->second; }
};

}  // namespace rcommit
