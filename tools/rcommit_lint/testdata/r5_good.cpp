// LINT_PATH: src/sim/r5_good.cpp
// Every stream is derived from an explicit, recordable seed.
#include <random>

#include "common/rng.h"

namespace rcommit {

unsigned long explicit_seeds(unsigned long seed) {
  std::mt19937 gen(static_cast<unsigned int>(seed));
  RandomTape tape(seed);
  Xoshiro256 x{seed ^ 0x9e3779b97f4a7c15ULL};
  SplitMix64 deriver(seed + 1);
  return gen() + x.next() + deriver.next() +
         static_cast<unsigned long>(tape.draws());
}

}  // namespace rcommit
