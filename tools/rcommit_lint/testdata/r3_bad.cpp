// LINT_PATH: src/sim/r3_bad.cpp
// Iterating a hash container in a decision path: the visit order is
// implementation-defined, so it leaks into traces and breaks byte-identical
// swarm summaries across thread counts / standard libraries.
#include <unordered_map>
#include <vector>

namespace rcommit {

std::vector<int> drain(const std::unordered_map<int, int>& pending) {
  std::vector<int> out;
  for (const auto& [id, payload] : pending) {  // hash order → trace order
    out.push_back(payload);
  }
  return out;
}

struct Mailbox {
  std::unordered_map<long, long> due_;
  long first() { return due_.begin()->second; }  // "first" by hash order
};

}  // namespace rcommit
