#include "adversary/omniscient.h"

#include <algorithm>

#include "common/check.h"

namespace rcommit::adversary {

void BroadcastSpy::record(ProcId sender, Tick clock, SpiedSend info) {
  sends_[std::make_pair(sender, clock)].push_back(info);
}

const std::vector<SpiedSend>& BroadcastSpy::lookup_all(ProcId sender,
                                                       Tick clock) const {
  static const std::vector<SpiedSend> kEmpty;
  auto it = sends_.find(std::make_pair(sender, clock));
  return it == sends_.end() ? kEmpty : it->second;
}

SplitVoteAdversary::SplitVoteAdversary(std::shared_ptr<const BroadcastSpy> spy,
                                       int32_t t)
    : spy_(std::move(spy)), t_(t) {
  RCOMMIT_CHECK(spy_ != nullptr);
  RCOMMIT_CHECK(t_ >= 0);
}

std::vector<MsgId> SplitVoteAdversary::choose_deliveries(const sim::PatternView& view,
                                                         ProcId p) {
  if (endgame_) {
    std::vector<MsgId> all;
    for (const auto& m : view.pending(p)) all.push_back(m.id);
    return all;
  }

  const int32_t n = view.n();
  std::vector<MsgId> deliver;

  // First, flush leftovers released at an earlier step.
  auto lo = leftovers_.find(p);
  if (lo != leftovers_.end()) {
    deliver = std::move(lo->second);
    leftovers_.erase(lo);
  }

  // Assign each newly-seen message its spied content. All siblings of a
  // (sender, clock) key enter the buffer at the same event, and message ids
  // ascend in send order, so sorting the key's pending ids and zipping them
  // with the spy's send-ordered list is an exact match.
  std::map<std::pair<ProcId, Tick>, std::vector<MsgId>> unclassified;
  for (const auto& m : view.pending(p)) {
    if (classified_.count(m.id) == 0) {
      unclassified[{m.from, m.sender_clock}].push_back(m.id);
    }
  }
  for (auto& [key, ids] : unclassified) {
    std::sort(ids.begin(), ids.end());
    const auto& sends = spy_->lookup_all(key.first, key.second);
    RCOMMIT_CHECK_MSG(sends.size() == ids.size(),
                      "spy record mismatch for sender " << key.first << " clock "
                                                        << key.second);
    for (size_t i = 0; i < ids.size(); ++i) classified_.emplace(ids[i], sends[i]);
  }

  // Group pending messages by (stage, phase).
  struct Classified {
    MsgId id;
    ProcId from;
    SpiedSend info;
  };
  std::map<std::pair<int, int>, std::vector<Classified>> groups;  // (stage, phase)
  for (const auto& m : view.pending(p)) {
    if (released_.count(m.id) > 0) continue;  // already in `deliver` or leftovers
    const SpiedSend info = classified_.at(m.id);
    if (info.phase == 0) {
      // DECIDED: the stall is over.
      endgame_ = true;
      std::vector<MsgId> all;
      for (const auto& msg : view.pending(p)) all.push_back(msg.id);
      return all;
    }
    groups[{info.stage, info.phase}].push_back({m.id, m.from, info});
  }

  // How many senders can still produce messages (crashless experiment: all
  // non-halted processors participate).
  int32_t live_senders = 0;
  for (ProcId q = 0; q < n; ++q) {
    if (!view.crashed(q) && !view.halted(q)) ++live_senders;
  }

  for (auto& [key, msgs] : groups) {
    const auto [stage, phase] = key;
    (void)stage;
    if (static_cast<int32_t>(msgs.size()) < live_senders) continue;  // keep waiting

    if (phase == 2) {
      // Deliver the complete second-phase pool.
      for (const auto& c : msgs) {
        deliver.push_back(c.id);
        released_.insert(c.id);
      }
      continue;
    }

    // Phase 1: balance values so that neither exceeds n/2.
    std::vector<const Classified*> zeros;
    std::vector<const Classified*> ones;
    for (const auto& c : msgs) (c.info.value == 0 ? zeros : ones).push_back(&c);
    if (zeros.empty() || ones.empty()) {
      // Unanimous — the stall has failed (the 2^(1-n) escape). Deliver all;
      // the protocol will now march to a decision.
      endgame_ = true;
      for (const auto& c : msgs) {
        deliver.push_back(c.id);
        released_.insert(c.id);
      }
      continue;
    }
    auto* minority = zeros.size() <= ones.size() ? &zeros : &ones;
    auto* majority = zeros.size() <= ones.size() ? &ones : &zeros;
    const auto quorum = static_cast<size_t>(n - t_);
    RCOMMIT_CHECK(minority->size() + majority->size() >= quorum);
    std::vector<MsgId> batch;
    for (const auto* c : *minority) batch.push_back(c->id);
    for (const auto* c : *majority) {
      if (batch.size() >= quorum) break;
      batch.push_back(c->id);
    }
    // Sanity: the majority slice handed over must not itself exceed n/2.
    RCOMMIT_CHECK_MSG(batch.size() - minority->size() <= static_cast<size_t>(n) / 2,
                      "balanced batch leaks a majority");
    std::vector<MsgId> withheld;
    for (const auto& c : msgs) {
      if (std::find(batch.begin(), batch.end(), c.id) == batch.end()) {
        withheld.push_back(c.id);
      }
    }
    for (MsgId id : batch) {
      deliver.push_back(id);
      released_.insert(id);
    }
    for (MsgId id : withheld) released_.insert(id);
    auto& pending_leftovers = leftovers_[p];
    pending_leftovers.insert(pending_leftovers.end(), withheld.begin(), withheld.end());
  }

  return deliver;
}

// RCOMMIT_ANALYZE_ALLOW(A1): strategy boundary — schedule construction is workload, not simulator machinery; bench_simperf gates the per-event budget at runtime
void SplitVoteAdversary::next(const sim::PatternView& view, sim::Action& action) {
  const int32_t n = view.n();
  for (int32_t i = 0; i < n; ++i) {
    const ProcId p = (rr_next_ + i) % n;
    if (view.schedulable(p)) {
      action.proc = p;
      rr_next_ = (p + 1) % n;
      break;
    }
  }
  RCOMMIT_CHECK(action.proc != kNoProc);
  action.deliver = choose_deliveries(view, action.proc);
}

}  // namespace rcommit::adversary
