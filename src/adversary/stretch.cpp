#include "adversary/stretch.h"

#include "common/check.h"

namespace rcommit::adversary {

DelayStretchAdversary::DelayStretchAdversary(Tick delay) : delay_(delay) {
  RCOMMIT_CHECK(delay >= 1);
}

// RCOMMIT_ANALYZE_ALLOW(A1): strategy boundary — schedule construction is workload, not simulator machinery; bench_simperf gates the per-event budget at runtime
void DelayStretchAdversary::next(const sim::PatternView& view, sim::Action& action) {
  const int32_t n = view.n();
  for (int32_t i = 0; i < n; ++i) {
    const ProcId p = (rr_next_ + i) % n;
    if (view.schedulable(p)) {
      action.proc = p;
      rr_next_ = (p + 1) % n;
      break;
    }
  }
  RCOMMIT_CHECK(action.proc != kNoProc);

  const Tick clock_at_step = view.clock(action.proc) + 1;
  for (const auto& msg : view.pending(action.proc)) {
    auto it = due_.find(msg.id);
    if (it == due_.end()) {
      it = due_.emplace(msg.id, view.clock(msg.to) + delay_ - 1).first;
    }
    if (it->second < clock_at_step) action.deliver.push_back(msg.id);
  }
}

}  // namespace rcommit::adversary
