// Crash (fail-stop) fault injection.
//
// Wraps any inner adversary and turns selected steps into failure steps.
// A crash plan can name the victims up front (deterministic experiments) or
// be drawn at random (property tests). Crashing in the middle of a broadcast
// — the situation the paper's "guaranteed message" machinery exists for — is
// expressed by suppressing the dying processor's sends to a subset of
// destinations at its final step.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "sim/adversary.h"

namespace rcommit::adversary {

/// One scheduled crash.
struct CrashPlan {
  ProcId victim = kNoProc;
  /// The crash fires at the victim's step that would advance its clock to
  /// this value (i.e. after it has taken at_clock - 1 steps).
  Tick at_clock = 1;
  /// Destinations whose messages from the victim's final step are dropped.
  /// Empty = pure failure step (the victim does not execute the step at all).
  std::vector<ProcId> suppress_sends_to;
};

/// Applies CrashPlans on top of an inner adversary's schedule.
class CrashAdversary final : public sim::Adversary {
 public:
  CrashAdversary(std::unique_ptr<sim::Adversary> inner, std::vector<CrashPlan> plans);

  void next(const sim::PatternView& view, sim::Action& action) override;
  bool done(const sim::PatternView& view) override;

 private:
  std::unique_ptr<sim::Adversary> inner_;
  std::vector<CrashPlan> plans_;
};

/// Builds a random crash plan: `count` distinct victims, each crashing at a
/// uniformly random clock in [1, max_clock], each suppressing sends to a
/// random subset of destinations at its final step (modelling mid-broadcast
/// failure) with probability 1/2.
std::vector<CrashPlan> random_crash_plans(uint64_t seed, int32_t n, int count,
                                          Tick max_clock);

}  // namespace rcommit::adversary
