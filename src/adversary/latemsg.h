// Targeted late-message injection.
//
// The paper's central criticism of synchronous commit protocols: "a single
// violation of the timing assumptions (i.e., a late message) can cause the
// protocol to produce the wrong answer" (§1). This adversary produces exactly
// that violation: an otherwise perfectly on-time schedule in which chosen
// messages (identified by sender, recipient, and ordinal) are held for an
// extra delay.
#pragma once

#include <memory>
#include <unordered_map>
#include <vector>

#include "adversary/basic.h"
#include "common/types.h"

namespace rcommit::adversary {

/// Selects a message by its position in the (from -> to) stream: nth = 0 is
/// the first message from `from` to `to`, and so on. nth = kEveryMessage
/// matches all messages on the link.
struct LateRule {
  ProcId from = kNoProc;
  ProcId to = kNoProc;
  int nth = 0;
  Tick extra_delay = 0;  ///< added on top of the base delay of 1

  static constexpr int kEveryMessage = -1;
};

/// Round-robin delay-1 schedule, except that matched messages are delayed by
/// rule.extra_delay additional recipient steps. With any extra_delay > K - 1
/// the matched message is late in the paper's sense while every other message
/// stays on time.
class LateMessageAdversary final : public sim::Adversary {
 public:
  explicit LateMessageAdversary(std::vector<LateRule> rules);

  void next(const sim::PatternView& view, sim::Action& action) override;

 private:
  Tick delay_for(const sim::PendingInfo& msg);

  std::vector<LateRule> rules_;
  /// Count of messages seen per (from, to) link, for ordinal matching.
  std::unordered_map<int64_t, int> link_counts_;
  std::unordered_map<MsgId, Tick> due_;
  ProcId rr_next_ = 0;
};

}  // namespace rcommit::adversary
