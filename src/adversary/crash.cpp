#include "adversary/crash.h"

#include <algorithm>

#include "common/check.h"

namespace rcommit::adversary {

CrashAdversary::CrashAdversary(std::unique_ptr<sim::Adversary> inner,
                               std::vector<CrashPlan> plans)
    : inner_(std::move(inner)), plans_(std::move(plans)) {
  RCOMMIT_CHECK(inner_ != nullptr);
  for (const auto& plan : plans_) {
    RCOMMIT_CHECK(plan.victim != kNoProc);
    RCOMMIT_CHECK(plan.at_clock >= 1);
  }
}

void CrashAdversary::next(const sim::PatternView& view, sim::Action& action) {
  inner_->next(view, action);
  for (const auto& plan : plans_) {
    if (plan.victim != action.proc) continue;
    if (view.clock(action.proc) + 1 < plan.at_clock) continue;
    action.crash = true;
    action.suppress_sends_to = plan.suppress_sends_to;
    break;
  }
}

bool CrashAdversary::done(const sim::PatternView& view) { return inner_->done(view); }

std::vector<CrashPlan> random_crash_plans(uint64_t seed, int32_t n, int count,
                                          Tick max_clock) {
  RCOMMIT_CHECK(count >= 0 && count <= n);
  RCOMMIT_CHECK(max_clock >= 1);
  RandomTape rng(seed);
  std::vector<ProcId> victims(static_cast<size_t>(n));
  for (ProcId p = 0; p < n; ++p) victims[static_cast<size_t>(p)] = p;
  // Partial Fisher–Yates: the first `count` entries become the victims.
  for (int i = 0; i < count; ++i) {
    const auto j =
        i + static_cast<int>(rng.next_below(static_cast<uint64_t>(n - i)));
    std::swap(victims[static_cast<size_t>(i)], victims[static_cast<size_t>(j)]);
  }

  std::vector<CrashPlan> plans;
  plans.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    CrashPlan plan;
    plan.victim = victims[static_cast<size_t>(i)];
    plan.at_clock = 1 + static_cast<Tick>(rng.next_below(static_cast<uint64_t>(max_clock)));
    if (rng.flip() == 1) {
      // Mid-broadcast failure: drop sends to a random nonempty subset.
      for (ProcId p = 0; p < n; ++p) {
        if (rng.flip() == 1) plan.suppress_sends_to.push_back(p);
      }
      if (plan.suppress_sends_to.empty()) plan.suppress_sends_to.push_back(0);
    }
    plans.push_back(std::move(plan));
  }
  return plans;
}

}  // namespace rcommit::adversary
