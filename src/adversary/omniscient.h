// Omniscient split-vote adversary — the Ben-Or worst case, made schedulable.
//
// *** This adversary is deliberately STRONGER than the paper's model. ***
// The paper's adversary cannot read message contents (§2.3), which is exactly
// why supplying identical coin flips defeats it. To *measure* the separation
// the paper claims against local-coin Ben-Or ("expected running time from
// exponential to constant", §1), we need a scheduler that actually drives
// Ben-Or to its worst case, and that requires reading the values in phase-1
// messages. The side channel is the BroadcastSpy: protocol instances built
// for this experiment record what they broadcast, keyed by (sender, clock),
// and the adversary looks the metadata up by the (sender, sender_clock) pair
// visible in the message pattern.
//
// Strategy: run processors in lockstep; hold each stage's phase-1 messages
// until all have arrived, then deliver a quorum-sized subset balanced so that
// neither value exceeds n/2 — no processor sends an S-message, everyone falls
// through to its coin. With independent local coins the values re-split with
// probability 1 - 2^(1-n) and the protocol stalls for an expected 2^(n-1)
// stages; with the paper's shared coin list the post-coin values are
// unanimous immediately and the protocol decides in the next stage. The same
// adversary, run against both variants, exhibits the exponential-vs-constant
// separation. Used only by the comparison bench and its tests — never by
// correctness experiments.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <set>
#include <unordered_map>
#include <vector>

#include "common/types.h"
#include "sim/adversary.h"

namespace rcommit::adversary {

/// What a spied broadcast contained.
struct SpiedSend {
  int phase = 0;   ///< 1 or 2 for agreement messages; 0 = other (e.g. DECIDED)
  int stage = 0;   ///< agreement stage s
  int value = -1;  ///< 0/1, or -1 for ⊥ / not applicable
};

/// Out-of-model side channel: protocol instances record their broadcasts here
/// so the omniscient adversary can classify in-flight messages. A processor
/// may broadcast several payloads in one step (finish phase 2, immediately
/// open the next stage); they are recorded in send order, which matches the
/// ascending message-id order the adversary observes, so the k-th pending
/// message from a given (sender, clock) is the k-th recorded send.
class BroadcastSpy {
 public:
  void record(ProcId sender, Tick clock, SpiedSend info);
  /// All broadcasts by `sender` at `clock`, in send order (possibly empty).
  [[nodiscard]] const std::vector<SpiedSend>& lookup_all(ProcId sender,
                                                         Tick clock) const;

 private:
  std::map<std::pair<ProcId, Tick>, std::vector<SpiedSend>> sends_;
};

class SplitVoteAdversary final : public sim::Adversary {
 public:
  /// `t` determines the quorum size n - t the protocol waits for.
  SplitVoteAdversary(std::shared_ptr<const BroadcastSpy> spy, int32_t t);

  void next(const sim::PatternView& view, sim::Action& action) override;

 private:
  std::vector<MsgId> choose_deliveries(const sim::PatternView& view, ProcId p);

  std::shared_ptr<const BroadcastSpy> spy_;
  int32_t t_;
  bool endgame_ = false;  ///< once set, deliver everything immediately
  /// Message id -> spied content, assigned at first sighting.
  std::unordered_map<MsgId, SpiedSend> classified_;
  /// Messages already released to a recipient in a balanced batch or as
  /// stale leftovers, pending actual delivery ordering.
  std::set<MsgId> released_;
  /// Leftover (withheld) message ids per recipient, released one step after
  /// the balanced batch so the bulletin board has moved past the stage.
  std::unordered_map<ProcId, std::vector<MsgId>> leftovers_;
  ProcId rr_next_ = 0;
};

}  // namespace rcommit::adversary
