// Delay-stretch adversary (Theorem 17 scenario).
//
// Delivers every message with the same uniform delay x. As x grows past K,
// every message is late, each asynchronous round simply dilates, and the
// number of clock ticks to decision grows without bound — while the number
// of asynchronous rounds stays constant. This is the executable version of
// the paper's Section 5 argument that clock ticks are the wrong unit and
// asynchronous rounds the right one.
#pragma once

#include <unordered_map>

#include "common/types.h"
#include "sim/adversary.h"

namespace rcommit::adversary {

class DelayStretchAdversary final : public sim::Adversary {
 public:
  explicit DelayStretchAdversary(Tick delay);

  void next(const sim::PatternView& view, sim::Action& action) override;

 private:
  Tick delay_;
  std::unordered_map<MsgId, Tick> due_;
  ProcId rr_next_ = 0;
};

}  // namespace rcommit::adversary
