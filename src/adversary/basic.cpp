#include "adversary/basic.h"

#include <algorithm>
#include <limits>
#include <numeric>

#include "common/check.h"

namespace rcommit::adversary {

FixedDelay::FixedDelay(Tick delay) : delay_(delay) { RCOMMIT_CHECK(delay >= 0); }

Tick FixedDelay::delay_for(const sim::PendingInfo& msg, RandomTape& rng) {
  (void)msg;
  (void)rng;
  return delay_;
}

UniformDelay::UniformDelay(Tick min_delay, Tick max_delay)
    : min_delay_(min_delay), max_delay_(max_delay) {
  RCOMMIT_CHECK(min_delay >= 0);
  RCOMMIT_CHECK(max_delay >= min_delay);
}

Tick UniformDelay::delay_for(const sim::PendingInfo& msg, RandomTape& rng) {
  (void)msg;
  const auto span = static_cast<uint64_t>(max_delay_ - min_delay_ + 1);
  return min_delay_ + static_cast<Tick>(rng.next_below(span));
}

MostlyOnTimeDelay::MostlyOnTimeDelay(Tick k, double p_late, Tick max_late)
    : k_(k), p_late_(p_late), max_late_(max_late) {
  RCOMMIT_CHECK(k >= 1);
  RCOMMIT_CHECK(p_late >= 0.0 && p_late <= 1.0);
  RCOMMIT_CHECK(max_late > k);
}

Tick MostlyOnTimeDelay::delay_for(const sim::PendingInfo& msg, RandomTape& rng) {
  (void)msg;
  if (rng.next_real() < p_late_) {
    const auto span = static_cast<uint64_t>(max_late_ - k_);
    return k_ + 1 + static_cast<Tick>(rng.next_below(std::max<uint64_t>(span, 1)));
  }
  return 1 + static_cast<Tick>(rng.next_below(static_cast<uint64_t>(k_)));
}

ScheduleAdversary::ScheduleAdversary(SchedulingOrder order,
                                     std::unique_ptr<DelayModel> delays, uint64_t seed)
    : order_(order), delays_(std::move(delays)), rng_(seed) {
  RCOMMIT_CHECK(delays_ != nullptr);
}

ProcId ScheduleAdversary::pick_processor(const sim::PatternView& view) {
  // No upfront schedulable_count() precondition: that is a full O(n) scan of
  // virtual calls on every event, and both branches below already end in a
  // CHECK when no schedulable processor turns up. The simulator never calls
  // next() without one (its run loop stops first).
  const int32_t n = view.n();
  if (order_ == SchedulingOrder::kRoundRobin) {
    for (int32_t i = 0; i < n; ++i) {
      const ProcId p = (rr_next_ + i) % n;
      if (view.schedulable(p)) {
        rr_next_ = (p + 1) % n;
        return p;
      }
    }
  } else {
    for (int32_t attempts = 0; attempts < 2 * n + 2; ++attempts) {
      if (perm_pos_ >= permutation_.size()) {
        permutation_.resize(static_cast<size_t>(n));
        std::iota(permutation_.begin(), permutation_.end(), 0);
        // Fisher–Yates with the adversary's own tape.
        for (int32_t i = n - 1; i > 0; --i) {
          const auto j = static_cast<int32_t>(rng_.next_below(static_cast<uint64_t>(i + 1)));
          std::swap(permutation_[static_cast<size_t>(i)],
                    permutation_[static_cast<size_t>(j)]);
        }
        perm_pos_ = 0;
      }
      const ProcId p = permutation_[perm_pos_++];
      if (view.schedulable(p)) return p;
    }
  }
  RCOMMIT_CHECK_MSG(false, "scheduler failed to find schedulable processor");
  return kNoProc;
}

namespace {
// A due clock is always >= clock(to) + delay - 1 >= -1, so INT64_MIN can
// never be a real value.
constexpr Tick kUnassigned = std::numeric_limits<Tick>::min();
}  // namespace

Tick ScheduleAdversary::due_clock(const sim::PatternView& view,
                                  const sim::PendingInfo& msg) {
  const auto idx = static_cast<size_t>(msg.id);
  if (idx >= due_.size()) {
    due_.resize(std::max(idx + 1, due_.size() * 2), kUnassigned);
  }
  if (due_[idx] != kUnassigned) return due_[idx];
  const Tick due = view.clock(msg.to) + delays_->delay_for(msg, rng_) - 1;
  due_[idx] = due;
  return due;
}

void ScheduleAdversary::due_messages(const sim::PatternView& view, ProcId p,
                                     std::vector<MsgId>& out) {
  // The step about to happen will advance p's clock to clock(p) + 1; a
  // message is delivered at that step when its due clock has been reached.
  const Tick clock_at_step = view.clock(p) + 1;
  for (const auto& msg : view.pending(p)) {
    if (due_clock(view, msg) < clock_at_step) out.push_back(msg.id);
  }
}

// RCOMMIT_ANALYZE_ALLOW(A1): strategy boundary — schedule construction is workload, not simulator machinery; bench_simperf gates the per-event budget at runtime
void ScheduleAdversary::next(const sim::PatternView& view, sim::Action& action) {
  action.proc = pick_processor(view);
  due_messages(view, action.proc, action.deliver);
}

std::unique_ptr<sim::Adversary> make_on_time_adversary() {
  return std::make_unique<ScheduleAdversary>(SchedulingOrder::kRoundRobin,
                                             std::make_unique<FixedDelay>(1),
                                             /*seed=*/0);
}

std::unique_ptr<sim::Adversary> make_random_adversary(uint64_t seed, Tick max_delay) {
  return std::make_unique<ScheduleAdversary>(
      SchedulingOrder::kRandomPermutation,
      std::make_unique<UniformDelay>(1, max_delay), seed);
}

std::unique_ptr<sim::Adversary> make_mostly_on_time_adversary(uint64_t seed, Tick k,
                                                              double p_late,
                                                              Tick max_late) {
  return std::make_unique<ScheduleAdversary>(
      SchedulingOrder::kRandomPermutation,
      std::make_unique<MostlyOnTimeDelay>(k, p_late, max_late), seed);
}

}  // namespace rcommit::adversary
