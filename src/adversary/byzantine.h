// Byzantine fault injection.
//
// The adversary API is structurally content-oblivious — Adversary::next sees
// only the message pattern — so Byzantine *content* behaviour cannot live
// there. Instead it is a fleet-side decorator: ByzantineProcess wraps a
// victim's honest state machine and tampers with its *outgoing* messages,
// deterministically, off a seed-derived tape (same discipline as
// adversary/crash.h plans). The tampering repertoire is:
//
//   * omission       — a send silently dropped,
//   * equivocation   — a broadcast delivered per-recipient, with different
//                      recipients receiving different (corrupted, stale, or
//                      missing) copies,
//   * stale replay   — an earlier payload re-sent in place of the current one,
//   * duplication    — a send delivered twice (second copy possibly corrupted),
//   * corruption     — the payload replaced by the copy its own type returns
//                      from sim::MessageBase::corrupted().
//
// The content-oblivious boundary survives intact: this wrapper never inspects
// a payload. Corruption is delegated blindly to the payload type's own
// corrupted() hook — message types that model Byzantine content attacks
// (BFT commit's votes and certificates, Paxos Commit's 2a/outcome, 2PC's
// vote/decision) return a tampered copy; every other type returns nullptr and
// is passed through unmodified. A victim's *incoming* messages and its inner
// state machine stay honest: Byzantine behaviour here is "what the rest of
// the system can observe from a traitor", which is exactly what quorum-based
// protocols defend against.
#pragma once

#include <memory>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "sim/process.h"

namespace rcommit::adversary {

/// One Byzantine victim, fully determined (analogous to CrashPlan).
struct ByzantinePlan {
  ProcId victim = kNoProc;
  /// Tampering starts at the victim's step that advances its clock to this
  /// value; earlier steps send honestly (a traitor that turns).
  Tick from_clock = 1;
  /// Seed of the victim's private tamper tape.
  uint64_t seed = 1;
};

/// Wraps an honest process as a Byzantine traitor per the plan.
class ByzantineProcess final : public sim::Process {
 public:
  ByzantineProcess(std::unique_ptr<sim::Process> inner, ByzantinePlan plan);

  void on_step(sim::StepContext& ctx, std::span<const sim::Envelope> delivered) override;
  [[nodiscard]] bool decided() const override { return inner_->decided(); }
  [[nodiscard]] Decision decision() const override { return inner_->decision(); }
  [[nodiscard]] bool halted() const override { return inner_->halted(); }

  [[nodiscard]] const ByzantinePlan& plan() const { return plan_; }

 private:
  std::unique_ptr<sim::Process> inner_;
  ByzantinePlan plan_;
  RandomTape tape_;
  /// Recently sent payloads, for stale-replay equivocation (fixed-capacity
  /// ring so the hot path never grows).
  std::vector<sim::MessageRef> history_;
  size_t next_history_slot_ = 0;
};

/// Builds a deterministic random plan set: `count` distinct victims, each
/// turning at a uniformly random clock in [1, max_start_clock], each with an
/// independent tamper-tape seed derived from `seed`.
std::vector<ByzantinePlan> random_byzantine_plans(uint64_t seed, int32_t n, int count,
                                                  Tick max_start_clock);

/// Applies the plans to a fleet in place: fleet[plan.victim] is replaced by a
/// ByzantineProcess wrapping it. Victims must be distinct and in range.
void wrap_byzantine(std::vector<std::unique_ptr<sim::Process>>& fleet,
                    const std::vector<ByzantinePlan>& plans);

}  // namespace rcommit::adversary
