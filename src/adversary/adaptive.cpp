#include "adversary/adaptive.h"

#include <numeric>

#include "common/check.h"

namespace rcommit::adversary {

QuorumStallAdversary::QuorumStallAdversary(int32_t t, Tick slow_lag, uint64_t seed)
    : t_(t), slow_lag_(slow_lag), rng_(seed) {
  RCOMMIT_CHECK(t >= 0);
  RCOMMIT_CHECK(slow_lag >= 1);
}

const std::vector<bool>& QuorumStallAdversary::fast_set(const sim::PatternView& view,
                                                        ProcId p) {
  auto it = fast_.find(p);
  if (it != fast_.end()) return it->second;

  const int32_t n = view.n();
  std::vector<ProcId> order(static_cast<size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  for (int32_t i = n - 1; i > 0; --i) {
    const auto j = static_cast<int32_t>(rng_.next_below(static_cast<uint64_t>(i + 1)));
    std::swap(order[static_cast<size_t>(i)], order[static_cast<size_t>(j)]);
  }

  std::vector<bool> fast(static_cast<size_t>(n), false);
  fast[static_cast<size_t>(p)] = true;  // self is always fast
  int32_t chosen = 1;
  for (ProcId q : order) {
    if (chosen >= n - t_) break;
    if (!fast[static_cast<size_t>(q)]) {
      fast[static_cast<size_t>(q)] = true;
      ++chosen;
    }
  }
  return fast_.emplace(p, std::move(fast)).first->second;
}

// RCOMMIT_ANALYZE_ALLOW(A1): strategy boundary — schedule construction is workload, not simulator machinery; bench_simperf gates the per-event budget at runtime
void QuorumStallAdversary::next(const sim::PatternView& view, sim::Action& action) {
  const int32_t n = view.n();
  for (int32_t i = 0; i < n; ++i) {
    const ProcId p = (rr_next_ + i) % n;
    if (view.schedulable(p)) {
      action.proc = p;
      rr_next_ = (p + 1) % n;
      break;
    }
  }
  RCOMMIT_CHECK(action.proc != kNoProc);

  const auto& fast = fast_set(view, action.proc);
  const Tick clock_at_step = view.clock(action.proc) + 1;
  for (const auto& msg : view.pending(action.proc)) {
    auto it = due_.find(msg.id);
    if (it == due_.end()) {
      const Tick delay = fast[static_cast<size_t>(msg.from)] ? 1 : slow_lag_;
      it = due_.emplace(msg.id, view.clock(msg.to) + delay - 1).first;
    }
    if (it->second < clock_at_step) action.deliver.push_back(msg.id);
  }
}

}  // namespace rcommit::adversary
