// Adaptive quorum-staller.
//
// A hostile but admissible adversary: for each recipient it fixes a "fast
// set" of n - t senders whose messages arrive promptly and delays everyone
// else's by a long (but finite) lag. Protocol 1's waits fill up with exactly
// a quorum, always from the same biased subset — the hardest admissible
// delivery pattern for quorum-based protocols. Because the lag is finite and
// every processor keeps being scheduled, the adversary remains t-admissible,
// so Protocol 2 must still terminate in constant expected asynchronous
// rounds against it (Theorem 10).
#pragma once

#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "sim/adversary.h"

namespace rcommit::adversary {

class QuorumStallAdversary final : public sim::Adversary {
 public:
  /// `t` controls the fast-set size (n - t); `slow_lag` is the extra delay
  /// (in recipient steps) on messages from outside the fast set.
  QuorumStallAdversary(int32_t t, Tick slow_lag, uint64_t seed);

  void next(const sim::PatternView& view, sim::Action& action) override;

 private:
  /// Lazily picks the fast set for a recipient: a random subset of n - t
  /// senders (always containing the recipient itself, since self-messages
  /// cannot plausibly be slow).
  const std::vector<bool>& fast_set(const sim::PatternView& view, ProcId p);

  int32_t t_;
  Tick slow_lag_;
  RandomTape rng_;
  std::unordered_map<ProcId, std::vector<bool>> fast_;
  std::unordered_map<MsgId, Tick> due_;
  ProcId rr_next_ = 0;
};

}  // namespace rcommit::adversary
