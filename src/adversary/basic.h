// Basic admissible adversaries: fair schedulers with pluggable delay models.
//
// These adversaries are t-admissible by construction: they schedule every
// non-halted, non-crashed processor infinitely often (round-robin or random
// permutation cycles) and assign every message a finite delivery delay, so
// every guaranteed message is eventually received.
//
// Delays are measured in *recipient steps*: a message becomes deliverable
// once its recipient has taken `delay` steps since the adversary first saw
// the message. Under cycle-based scheduling every processor steps once per
// cycle, so a delay of d recipient steps means every processor takes about d
// steps between send and receipt — i.e. the message is on time iff d <= K.
#pragma once

#include <memory>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "sim/adversary.h"

namespace rcommit::adversary {

/// How the next processor to step is chosen.
enum class SchedulingOrder {
  kRoundRobin,         ///< p1, p2, ..., pn, p1, ... (skipping unschedulable)
  kRandomPermutation,  ///< a fresh random permutation each cycle
};

/// Chooses a delivery delay (in recipient steps) for each message, decided
/// once per message when the adversary first observes it.
class DelayModel {
 public:
  virtual ~DelayModel() = default;
  virtual Tick delay_for(const sim::PendingInfo& msg, RandomTape& rng) = 0;
};

/// Every message takes exactly `delay` recipient steps.
class FixedDelay final : public DelayModel {
 public:
  explicit FixedDelay(Tick delay);
  Tick delay_for(const sim::PendingInfo& msg, RandomTape& rng) override;

 private:
  Tick delay_;
};

/// Uniform delay in [min_delay, max_delay].
class UniformDelay final : public DelayModel {
 public:
  UniformDelay(Tick min_delay, Tick max_delay);
  Tick delay_for(const sim::PendingInfo& msg, RandomTape& rng) override;

 private:
  Tick min_delay_;
  Tick max_delay_;
};

/// Mostly-fast delays with occasional stragglers: delay 1..k with probability
/// 1 - p_late, and k+1..max_late otherwise. This is the paper's motivating
/// network: "messages are usually delivered within some known time bound but
/// sometimes come late" (§1).
class MostlyOnTimeDelay final : public DelayModel {
 public:
  MostlyOnTimeDelay(Tick k, double p_late, Tick max_late);
  Tick delay_for(const sim::PendingInfo& msg, RandomTape& rng) override;

 private:
  Tick k_;
  double p_late_;
  Tick max_late_;
};

/// Fair scheduler + delay model. The workhorse adversary behind most
/// experiments; specialized adversaries (crash, partition, late-message)
/// either wrap or extend it.
class ScheduleAdversary : public sim::Adversary {
 public:
  ScheduleAdversary(SchedulingOrder order, std::unique_ptr<DelayModel> delays,
                    uint64_t seed);

  void next(const sim::PatternView& view, sim::Action& action) override;

 protected:
  /// Picks the next processor in the configured order.
  ProcId pick_processor(const sim::PatternView& view);

  /// Appends the messages pending for `p` whose delay has elapsed.
  void due_messages(const sim::PatternView& view, ProcId p,
                    std::vector<MsgId>& out);

  RandomTape& rng() { return rng_; }

 private:
  /// Due clock (on the recipient's clock) for a message, assigned at first
  /// sighting.
  Tick due_clock(const sim::PatternView& view, const sim::PendingInfo& msg);

  SchedulingOrder order_;
  std::unique_ptr<DelayModel> delays_;
  RandomTape rng_;
  ProcId rr_next_ = 0;
  std::vector<ProcId> permutation_;
  size_t perm_pos_ = 0;
  /// Due clocks indexed by the dense MsgId (kUnassigned = not yet sighted);
  /// a flat vector because the hot loop consults it for every pending
  /// message of every step.
  std::vector<Tick> due_;
};

/// Convenience: the well-behaved network. Round-robin, fixed delay 1 —
/// every run it produces is failure-free (no crashes) and on-time for any
/// K >= 1. This is the adversary of the Theorem 9 commit-validity condition.
std::unique_ptr<sim::Adversary> make_on_time_adversary();

/// Convenience: random but admissible timing. Random permutation scheduling
/// with uniform delays in [1, max_delay].
std::unique_ptr<sim::Adversary> make_random_adversary(uint64_t seed, Tick max_delay);

/// Convenience: the paper's "realistic" network — usually within K, late with
/// probability p_late up to max_late.
std::unique_ptr<sim::Adversary> make_mostly_on_time_adversary(uint64_t seed, Tick k,
                                                              double p_late,
                                                              Tick max_late);

}  // namespace rcommit::adversary
