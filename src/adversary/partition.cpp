#include "adversary/partition.h"

#include "common/check.h"

namespace rcommit::adversary {

PartitionAdversary::PartitionAdversary(std::vector<ProcId> group_a,
                                       EventIndex heal_at_event)
    : group_a_(group_a.begin(), group_a.end()), heal_at_event_(heal_at_event) {}

bool PartitionAdversary::intergroup(ProcId from, ProcId to) const {
  return (group_a_.count(from) > 0) != (group_a_.count(to) > 0);
}

bool PartitionAdversary::healed(const sim::PatternView& view) const {
  return heal_at_event_ != kNever && view.now() >= heal_at_event_;
}

// RCOMMIT_ANALYZE_ALLOW(A1): strategy boundary — schedule construction is workload, not simulator machinery; bench_simperf gates the per-event budget at runtime
void PartitionAdversary::next(const sim::PatternView& view, sim::Action& action) {
  const int32_t n = view.n();
  for (int32_t i = 0; i < n; ++i) {
    const ProcId p = (rr_next_ + i) % n;
    if (view.schedulable(p)) {
      action.proc = p;
      rr_next_ = (p + 1) % n;
      break;
    }
  }
  RCOMMIT_CHECK(action.proc != kNoProc);

  const bool partition_open = !healed(view);
  for (const auto& msg : view.pending(action.proc)) {
    if (partition_open && intergroup(msg.from, msg.to)) continue;
    action.deliver.push_back(msg.id);
  }
}

}  // namespace rcommit::adversary
