#include "adversary/byzantine.h"

#include <set>
#include <utility>

#include "common/check.h"

namespace rcommit::adversary {

namespace {

constexpr size_t kHistoryCap = 16;

/// Forwards to the real StepContext, tampering with sends when active.
/// Broadcasts become per-recipient sends so equivocation — different
/// recipients observing different copies — falls out of per-send draws.
class TamperContext final : public sim::StepContext {
 public:
  TamperContext(sim::StepContext& real, RandomTape& tape, bool active,
                std::vector<sim::MessageRef>& history, size_t& next_slot)
      : real_(real), tape_(tape), active_(active), history_(history),
        next_slot_(next_slot) {}

  void send(ProcId to, sim::MessageRef payload) override {
    if (!active_) {
      real_.send(to, std::move(payload));
      return;
    }
    tampered_send(to, std::move(payload));
  }

  void broadcast(sim::MessageRef payload) override {
    if (!active_) {
      real_.broadcast(std::move(payload));
      return;
    }
    for (ProcId p = 0; p < static_cast<ProcId>(real_.n()); ++p) {
      tampered_send(p, payload);
    }
  }

  [[nodiscard]] Tick clock() const override { return real_.clock(); }
  [[nodiscard]] ProcId self() const override { return real_.self(); }
  [[nodiscard]] int32_t n() const override { return real_.n(); }
  RandomTape& random() override { return real_.random(); }

 private:
  void tampered_send(ProcId to, sim::MessageRef payload) {
    remember(payload);
    // Pass-through dominates (half the draws): a traitor that never sends a
    // usable message is indistinguishable from a crash and exercises nothing.
    switch (tape_.next_below(8)) {
      case 0:  // omission
        return;
      case 1: {  // content corruption (blind: the payload type decides)
        if (auto c = payload->corrupted(tape_)) payload = std::move(c);
        real_.send(to, std::move(payload));
        return;
      }
      case 2: {  // stale replay: an earlier payload in place of this one
        if (!history_.empty()) {
          payload = history_[static_cast<size_t>(
              tape_.next_below(static_cast<uint64_t>(history_.size())))];
        }
        real_.send(to, std::move(payload));
        return;
      }
      case 3: {  // duplication, second copy possibly corrupted
        real_.send(to, payload);
        if (auto c = payload->corrupted(tape_)) payload = std::move(c);
        real_.send(to, std::move(payload));
        return;
      }
      default:
        real_.send(to, std::move(payload));
        return;
    }
  }

  void remember(const sim::MessageRef& payload) {
    if (history_.size() < kHistoryCap) {
      // RCOMMIT_ANALYZE_ALLOW(A1): bounded — the owner reserves kHistoryCap up front, so this push_back never reallocates; past the cap the ring overwrites in place
      history_.push_back(payload);
    } else {
      history_[next_slot_] = payload;
    }
    next_slot_ = (next_slot_ + 1) % kHistoryCap;
  }

  sim::StepContext& real_;
  RandomTape& tape_;
  bool active_;
  std::vector<sim::MessageRef>& history_;
  size_t& next_slot_;
};

}  // namespace

ByzantineProcess::ByzantineProcess(std::unique_ptr<sim::Process> inner,
                                   ByzantinePlan plan)
    : inner_(std::move(inner)), plan_(plan), tape_(plan.seed) {
  RCOMMIT_CHECK(inner_ != nullptr);
  RCOMMIT_CHECK(plan_.victim != kNoProc);
  RCOMMIT_CHECK(plan_.from_clock >= 1);
  history_.reserve(kHistoryCap);
}

void ByzantineProcess::on_step(sim::StepContext& ctx,
                               std::span<const sim::Envelope> delivered) {
  const bool active = ctx.clock() >= plan_.from_clock;
  TamperContext tctx(ctx, tape_, active, history_, next_history_slot_);
  inner_->on_step(tctx, delivered);
}

std::vector<ByzantinePlan> random_byzantine_plans(uint64_t seed, int32_t n, int count,
                                                  Tick max_start_clock) {
  RCOMMIT_CHECK(count >= 0 && count <= n);
  RCOMMIT_CHECK(max_start_clock >= 1);
  RandomTape rng(seed);
  std::vector<ProcId> victims(static_cast<size_t>(n));
  for (ProcId p = 0; p < n; ++p) victims[static_cast<size_t>(p)] = p;
  // Partial Fisher–Yates, as in random_crash_plans.
  for (int i = 0; i < count; ++i) {
    const auto j =
        i + static_cast<int>(rng.next_below(static_cast<uint64_t>(n - i)));
    std::swap(victims[static_cast<size_t>(i)], victims[static_cast<size_t>(j)]);
  }

  std::vector<ByzantinePlan> plans;
  plans.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    ByzantinePlan plan;
    plan.victim = victims[static_cast<size_t>(i)];
    plan.from_clock =
        1 + static_cast<Tick>(rng.next_below(static_cast<uint64_t>(max_start_clock)));
    plan.seed = SplitMix64(seed ^ (0xb12a0ULL + static_cast<uint64_t>(i))).next();
    plans.push_back(plan);
  }
  return plans;
}

void wrap_byzantine(std::vector<std::unique_ptr<sim::Process>>& fleet,
                    const std::vector<ByzantinePlan>& plans) {
  std::set<ProcId> seen;
  for (const auto& plan : plans) {
    RCOMMIT_CHECK_MSG(plan.victim >= 0 &&
                          static_cast<size_t>(plan.victim) < fleet.size(),
                      "byzantine victim out of range");
    RCOMMIT_CHECK_MSG(seen.insert(plan.victim).second,
                      "duplicate byzantine victim " << plan.victim);
    auto& slot = fleet[static_cast<size_t>(plan.victim)];
    slot = std::make_unique<ByzantineProcess>(std::move(slot), plan);
  }
}

}  // namespace rcommit::adversary
