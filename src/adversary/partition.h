// Network partition adversary.
//
// Splits the processors into two groups and withholds intergroup messages
// for a window of events — the communication pattern at the heart of the
// Theorem 14 lower-bound proof (A-semicycles and B-semicycles with intergroup
// messages flowing in one direction per phase). A partition that never heals
// is *inadmissible* (it violates eventual delivery); the blocking experiments
// use it deliberately to show that Protocol 2 stalls rather than erring.
#pragma once

#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/types.h"
#include "sim/adversary.h"

namespace rcommit::adversary {

class PartitionAdversary final : public sim::Adversary {
 public:
  /// `group_a` lists the processors on one side; everyone else is in B.
  /// Intergroup messages sent before `heal_at_event` are withheld until the
  /// partition heals; heal_at_event = kNever means the partition is permanent
  /// (inadmissible on purpose).
  PartitionAdversary(std::vector<ProcId> group_a, EventIndex heal_at_event);

  static constexpr EventIndex kNever = -1;

  void next(const sim::PatternView& view, sim::Action& action) override;

 private:
  [[nodiscard]] bool intergroup(ProcId from, ProcId to) const;
  [[nodiscard]] bool healed(const sim::PatternView& view) const;

  std::unordered_set<ProcId> group_a_;
  EventIndex heal_at_event_;
  ProcId rr_next_ = 0;
};

}  // namespace rcommit::adversary
