#include "adversary/latemsg.h"

#include "common/check.h"

namespace rcommit::adversary {

namespace {
int64_t link_key(ProcId from, ProcId to) {
  return (static_cast<int64_t>(from) << 32) | static_cast<uint32_t>(to);
}
}  // namespace

LateMessageAdversary::LateMessageAdversary(std::vector<LateRule> rules)
    : rules_(std::move(rules)) {}

Tick LateMessageAdversary::delay_for(const sim::PendingInfo& msg) {
  const int ordinal = link_counts_[link_key(msg.from, msg.to)]++;
  Tick delay = 1;
  for (const auto& rule : rules_) {
    if (rule.from == msg.from && rule.to == msg.to &&
        (rule.nth == LateRule::kEveryMessage || rule.nth == ordinal)) {
      delay += rule.extra_delay;
    }
  }
  return delay;
}

// RCOMMIT_ANALYZE_ALLOW(A1): strategy boundary — schedule construction is workload, not simulator machinery; bench_simperf gates the per-event budget at runtime
void LateMessageAdversary::next(const sim::PatternView& view, sim::Action& action) {
  const int32_t n = view.n();
  for (int32_t i = 0; i < n; ++i) {
    const ProcId p = (rr_next_ + i) % n;
    if (view.schedulable(p)) {
      action.proc = p;
      rr_next_ = (p + 1) % n;
      break;
    }
  }
  RCOMMIT_CHECK(action.proc != kNoProc);

  const Tick clock_at_step = view.clock(action.proc) + 1;
  for (const auto& msg : view.pending(action.proc)) {
    auto it = due_.find(msg.id);
    if (it == due_.end()) {
      const Tick due = view.clock(msg.to) + delay_for(msg) - 1;
      it = due_.emplace(msg.id, due).first;
    }
    if (it->second < clock_at_step) action.deliver.push_back(msg.id);
  }
}

}  // namespace rcommit::adversary
