#include "transport/wire.h"

#include "baselines/q3pc.h"
#include "baselines/threepc.h"
#include "baselines/twopc.h"
#include "common/check.h"
#include "protocol/messages.h"

namespace rcommit::transport {

namespace {

/// Stable wire tags. Append only — reusing a tag breaks interoperability
/// between builds.
enum WireTag : uint16_t {
  kAgreementR1 = 1,
  kAgreementR2 = 2,
  kDecided = 3,
  kGo = 4,
  kVote = 5,
  kPiggybacked = 6,
  kTpcPrepare = 20,
  kTpcVote = 21,
  kTpcDecision = 22,
  kThreePcCanCommit = 30,
  kThreePcVote = 31,
  kThreePcPreCommit = 32,
  kThreePcAck = 33,
  kThreePcOutcome = 34,
  kQ3pcStateReport = 40,
  kQ3pcRecoveryDecision = 41,
};

template <typename T>
const T& as(const sim::MessageBase& payload) {
  const auto* typed = dynamic_cast<const T*>(&payload);
  RCOMMIT_CHECK_MSG(typed != nullptr, "wire encoder given wrong payload type");
  return *typed;
}

}  // namespace

WireRegistry& detail_mutable_instance() {
  static WireRegistry registry;
  return registry;
}

namespace {

WireRegistry& mutable_instance() { return detail_mutable_instance(); }

void register_builtin(WireRegistry& r) {
  using namespace rcommit::protocol;
  using namespace rcommit::baselines;

  r.register_type(
      kAgreementR1, typeid(AgreementR1),
      [](BufWriter& w, const sim::MessageBase& m) {
        const auto& msg = as<AgreementR1>(m);
        w.svarint(msg.stage());
        w.u8(msg.value());
      },
      [](BufReader& rd) -> sim::MessageRef {
        const auto stage = static_cast<int32_t>(rd.svarint());
        const uint8_t value = rd.u8();
        return sim::make_message<AgreementR1>(stage, value);
      });

  r.register_type(
      kAgreementR2, typeid(AgreementR2),
      [](BufWriter& w, const sim::MessageBase& m) {
        const auto& msg = as<AgreementR2>(m);
        w.svarint(msg.stage());
        w.svarint(msg.value());
      },
      [](BufReader& rd) -> sim::MessageRef {
        const auto stage = static_cast<int32_t>(rd.svarint());
        const auto value = static_cast<int8_t>(rd.svarint());
        return sim::make_message<AgreementR2>(stage, value);
      });

  r.register_type(
      kDecided, typeid(DecidedMsg),
      [](BufWriter& w, const sim::MessageBase& m) { w.u8(as<DecidedMsg>(m).value()); },
      [](BufReader& rd) -> sim::MessageRef {
        return sim::make_message<DecidedMsg>(rd.u8());
      });

  r.register_type(
      kGo, typeid(GoMsg),
      [](BufWriter&, const sim::MessageBase&) {},
      [](BufReader&) -> sim::MessageRef { return sim::make_message<GoMsg>(); });

  r.register_type(
      kVote, typeid(VoteMsg),
      [](BufWriter& w, const sim::MessageBase& m) { w.u8(as<VoteMsg>(m).vote()); },
      [](BufReader& rd) -> sim::MessageRef {
        return sim::make_message<VoteMsg>(rd.u8());
      });

  r.register_type(
      kPiggybacked, typeid(PiggybackedMsg),
      [&r](BufWriter& w, const sim::MessageBase& m) {
        const auto& msg = as<PiggybackedMsg>(m);
        w.bytes(msg.coins());
        WireRegistry::instance().encode_into(w, *msg.inner());
      },
      [](BufReader& rd) -> sim::MessageRef {
        auto coins = rd.bytes();
        auto inner = WireRegistry::instance().decode_from(rd);
        return sim::make_message<PiggybackedMsg>(std::move(coins), std::move(inner));
      });

  // --- 2PC ---------------------------------------------------------------
  r.register_type(
      kTpcPrepare, typeid(TpcPrepare),
      [](BufWriter&, const sim::MessageBase&) {},
      [](BufReader&) -> sim::MessageRef { return sim::make_message<TpcPrepare>(); });
  r.register_type(
      kTpcVote, typeid(TpcVote),
      [](BufWriter& w, const sim::MessageBase& m) { w.u8(as<TpcVote>(m).vote()); },
      [](BufReader& rd) -> sim::MessageRef {
        return sim::make_message<TpcVote>(rd.u8());
      });
  r.register_type(
      kTpcDecision, typeid(TpcDecision),
      [](BufWriter& w, const sim::MessageBase& m) {
        w.u8(as<TpcDecision>(m).commit() ? 1 : 0);
      },
      [](BufReader& rd) -> sim::MessageRef {
        return sim::make_message<TpcDecision>(rd.u8());
      });

  // --- 3PC ---------------------------------------------------------------
  r.register_type(
      kThreePcCanCommit, typeid(ThreePcCanCommit),
      [](BufWriter&, const sim::MessageBase&) {},
      [](BufReader&) -> sim::MessageRef {
        return sim::make_message<ThreePcCanCommit>();
      });
  r.register_type(
      kThreePcVote, typeid(ThreePcVote),
      [](BufWriter& w, const sim::MessageBase& m) { w.u8(as<ThreePcVote>(m).vote()); },
      [](BufReader& rd) -> sim::MessageRef {
        return sim::make_message<ThreePcVote>(rd.u8());
      });
  r.register_type(
      kThreePcPreCommit, typeid(ThreePcPreCommit),
      [](BufWriter&, const sim::MessageBase&) {},
      [](BufReader&) -> sim::MessageRef {
        return sim::make_message<ThreePcPreCommit>();
      });
  r.register_type(
      kThreePcAck, typeid(ThreePcAck),
      [](BufWriter&, const sim::MessageBase&) {},
      [](BufReader&) -> sim::MessageRef { return sim::make_message<ThreePcAck>(); });
  r.register_type(
      kQ3pcStateReport, typeid(Q3pcStateReport),
      [](BufWriter& w, const sim::MessageBase& m) {
        w.u8(static_cast<uint8_t>(as<Q3pcStateReport>(m).state()));
      },
      [](BufReader& rd) -> sim::MessageRef {
        return sim::make_message<Q3pcStateReport>(static_cast<Q3pcState>(rd.u8()));
      });
  r.register_type(
      kQ3pcRecoveryDecision, typeid(Q3pcRecoveryDecision),
      [](BufWriter& w, const sim::MessageBase& m) {
        w.u8(as<Q3pcRecoveryDecision>(m).commit() ? 1 : 0);
      },
      [](BufReader& rd) -> sim::MessageRef {
        return sim::make_message<Q3pcRecoveryDecision>(rd.u8());
      });
  r.register_type(
      kThreePcOutcome, typeid(ThreePcOutcome),
      [](BufWriter& w, const sim::MessageBase& m) {
        w.u8(as<ThreePcOutcome>(m).commit() ? 1 : 0);
      },
      [](BufReader& rd) -> sim::MessageRef {
        return sim::make_message<ThreePcOutcome>(rd.u8());
      });
}

}  // namespace

const WireRegistry& WireRegistry::instance() {
  static const bool initialized = [] {
    register_builtin(mutable_instance());
    return true;
  }();
  (void)initialized;
  return mutable_instance();
}

void WireRegistry::extend(uint16_t tag, std::type_index type, EncodeFn encode,
                          DecodeFn decode) {
  (void)instance();  // ensure the builtins are in before extending
  detail_mutable_instance().register_type(tag, type, std::move(encode),
                                          std::move(decode));
}

void WireRegistry::register_type(uint16_t tag, std::type_index type, EncodeFn encode,
                                 DecodeFn decode) {
  RCOMMIT_CHECK_MSG(by_tag_.emplace(tag, std::make_pair(std::move(encode),
                                                        std::move(decode)))
                        .second,
                    "duplicate wire tag " << tag);
  RCOMMIT_CHECK_MSG(tag_of_.emplace(type, tag).second,
                    "payload type registered twice");
}

void WireRegistry::encode_into(BufWriter& writer, const sim::MessageBase& payload) const {
  auto it = tag_of_.find(std::type_index(typeid(payload)));
  RCOMMIT_CHECK_MSG(it != tag_of_.end(),
                    "unregistered payload type: " << payload.debug_string());
  writer.u16(it->second);
  by_tag_.at(it->second).first(writer, payload);
}

std::vector<uint8_t> WireRegistry::encode(const sim::MessageBase& payload) const {
  BufWriter writer;
  encode_into(writer, payload);
  return writer.take();
}

namespace {
/// Decoders can nest (the piggyback wrapper embeds an inner frame); a crafted
/// buffer nesting wrappers thousands deep would otherwise recurse the stack
/// away. Network input is untrusted — cap the depth.
thread_local int decode_depth = 0;
constexpr int kMaxDecodeDepth = 16;

struct DepthGuard {
  DepthGuard() {
    if (++decode_depth > kMaxDecodeDepth) {
      --decode_depth;
      throw CodecError("payload nesting exceeds depth limit");
    }
  }
  ~DepthGuard() { --decode_depth; }
};
}  // namespace

sim::MessageRef WireRegistry::decode_from(BufReader& reader) const {
  DepthGuard guard;
  const uint16_t tag = reader.u16();
  auto it = by_tag_.find(tag);
  if (it == by_tag_.end()) {
    throw CodecError("unknown wire tag " + std::to_string(tag));
  }
  return it->second.second(reader);
}

sim::MessageRef WireRegistry::decode(std::span<const uint8_t> data) const {
  BufReader reader(data);
  auto msg = decode_from(reader);
  if (!reader.exhausted()) throw CodecError("trailing bytes after payload");
  return msg;
}

std::vector<uint8_t> WireFrame::serialize() const {
  BufWriter w;
  w.svarint(from);
  w.svarint(to);
  w.svarint(sender_clock);
  w.bytes(payload);
  return w.take();
}

WireFrame WireFrame::deserialize(std::span<const uint8_t> data) {
  BufReader r(data);
  WireFrame frame;
  frame.from = static_cast<ProcId>(r.svarint());
  frame.to = static_cast<ProcId>(r.svarint());
  frame.sender_clock = r.svarint();
  frame.payload = r.bytes();
  if (!r.exhausted()) throw CodecError("trailing bytes after frame");
  return frame;
}

}  // namespace rcommit::transport
