// RCOMMIT_LINT_ALLOW_FILE(R2): the transport layer is real concurrent I/O by design; determinism is owned by the sim/ layer, not here
#include "transport/tcp.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/check.h"

namespace rcommit::transport {

namespace {

/// Writes exactly `len` bytes or throws.
void write_all(int fd, const uint8_t* data, size_t len) {
  size_t written = 0;
  while (written < len) {
    const ssize_t rc = ::send(fd, data + written, len - written, MSG_NOSIGNAL);
    RCOMMIT_CHECK_MSG(rc > 0, "tcp send failed: " << std::strerror(errno));
    written += static_cast<size_t>(rc);
  }
}

/// Reads exactly `len` bytes; returns false on orderly shutdown.
bool read_all(int fd, uint8_t* data, size_t len) {
  size_t got = 0;
  while (got < len) {
    const ssize_t rc = ::recv(fd, data + got, len - got, 0);
    if (rc <= 0) return false;  // peer closed or error: end of stream
    got += static_cast<size_t>(rc);
  }
  return true;
}

int make_listener(uint16_t* port_out) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  RCOMMIT_CHECK_MSG(fd >= 0, "socket() failed: " << std::strerror(errno));
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;  // ephemeral
  RCOMMIT_CHECK_MSG(::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0,
                    "bind failed: " << std::strerror(errno));
  RCOMMIT_CHECK_MSG(::listen(fd, 64) == 0, "listen failed: " << std::strerror(errno));
  socklen_t len = sizeof(addr);
  RCOMMIT_CHECK(::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) == 0);
  *port_out = ntohs(addr.sin_port);
  return fd;
}

int dial(uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  RCOMMIT_CHECK_MSG(fd >= 0, "socket() failed: " << std::strerror(errno));
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  RCOMMIT_CHECK_MSG(
      ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0,
      "connect to 127.0.0.1:" << port << " failed: " << std::strerror(errno));
  return fd;
}

}  // namespace

TcpNetwork::TcpNetwork(int32_t n) : n_(n) {
  RCOMMIT_CHECK(n >= 1);
  inboxes_.reserve(static_cast<size_t>(n));
  for (int32_t i = 0; i < n; ++i) {
    inboxes_.push_back(std::make_unique<Channel<std::vector<uint8_t>>>());
  }
}

TcpNetwork::~TcpNetwork() { stop(); }

void TcpNetwork::start() {
  RCOMMIT_CHECK(!running_);
  running_ = true;

  listen_fds_.resize(static_cast<size_t>(n_));
  ports_.resize(static_cast<size_t>(n_));
  for (int32_t i = 0; i < n_; ++i) {
    listen_fds_[static_cast<size_t>(i)] =
        make_listener(&ports_[static_cast<size_t>(i)]);
  }

  // Dial the full mesh: one connection per ordered (from, to) pair. The dial
  // side sends a one-byte hello identifying `from`; the accept side spawns a
  // reader for the connection.
  out_fds_.assign(static_cast<size_t>(n_), std::vector<int>(static_cast<size_t>(n_), -1));
  out_mu_.resize(static_cast<size_t>(n_));
  for (auto& row : out_mu_) {
    row.clear();
    for (int32_t j = 0; j < n_; ++j) row.push_back(std::make_unique<Mutex>());
  }

  for (ProcId from = 0; from < n_; ++from) {
    for (ProcId to = 0; to < n_; ++to) {
      const int fd = dial(ports_[static_cast<size_t>(to)]);
      const auto hello = static_cast<uint8_t>(from);
      write_all(fd, &hello, 1);
      out_fds_[static_cast<size_t>(from)][static_cast<size_t>(to)] = fd;
    }
  }

  // Accept n connections per listener and spawn a reader thread for each.
  for (ProcId to = 0; to < n_; ++to) {
    for (int32_t conn = 0; conn < n_; ++conn) {
      const int fd = ::accept(listen_fds_[static_cast<size_t>(to)], nullptr, nullptr);
      RCOMMIT_CHECK_MSG(fd >= 0, "accept failed: " << std::strerror(errno));
      uint8_t hello = 0;
      RCOMMIT_CHECK_MSG(read_all(fd, &hello, 1), "hello read failed");
      readers_.emplace_back([this, to, fd] { reader_loop(to, fd); });
    }
  }
}

void TcpNetwork::stop() {
  if (!running_) return;
  running_ = false;
  // Shut down the sending sides: readers see EOF and exit.
  for (auto& row : out_fds_) {
    for (int fd : row) {
      if (fd >= 0) {
        ::shutdown(fd, SHUT_RDWR);
        ::close(fd);
      }
    }
  }
  out_fds_.clear();
  for (int fd : listen_fds_) {
    if (fd >= 0) ::close(fd);
  }
  listen_fds_.clear();
  for (auto& reader : readers_) reader.join();
  readers_.clear();
  for (auto& inbox : inboxes_) inbox->close();
}

void TcpNetwork::send(const WireFrame& frame) {
  RCOMMIT_CHECK_MSG(frame.to >= 0 && frame.to < n_, "send to invalid node " << frame.to);
  RCOMMIT_CHECK_MSG(frame.from >= 0 && frame.from < n_, "invalid sender " << frame.from);
  RCOMMIT_CHECK_MSG(running_, "network not started");
  const auto bytes = frame.serialize();
  uint8_t header[4];
  const auto len = static_cast<uint32_t>(bytes.size());
  header[0] = static_cast<uint8_t>(len);
  header[1] = static_cast<uint8_t>(len >> 8);
  header[2] = static_cast<uint8_t>(len >> 16);
  header[3] = static_cast<uint8_t>(len >> 24);
  auto& mu = *out_mu_[static_cast<size_t>(frame.from)][static_cast<size_t>(frame.to)];
  const int fd = out_fds_[static_cast<size_t>(frame.from)][static_cast<size_t>(frame.to)];
  MutexLock lock(mu);
  write_all(fd, header, 4);
  write_all(fd, bytes.data(), bytes.size());
}

Channel<std::vector<uint8_t>>& TcpNetwork::inbox(ProcId id) {
  RCOMMIT_CHECK(id >= 0 && id < n_);
  return *inboxes_[static_cast<size_t>(id)];
}

uint16_t TcpNetwork::port(ProcId id) const {
  RCOMMIT_CHECK(id >= 0 && id < static_cast<ProcId>(ports_.size()));
  return ports_[static_cast<size_t>(id)];
}

void TcpNetwork::reader_loop(ProcId to, int fd) {
  for (;;) {
    uint8_t header[4];
    if (!read_all(fd, header, 4)) break;
    const uint32_t len = static_cast<uint32_t>(header[0]) |
                         (static_cast<uint32_t>(header[1]) << 8) |
                         (static_cast<uint32_t>(header[2]) << 16) |
                         (static_cast<uint32_t>(header[3]) << 24);
    if (len > (1u << 24)) break;  // implausible frame: treat as corruption
    std::vector<uint8_t> bytes(len);
    if (!read_all(fd, bytes.data(), len)) break;
    inboxes_[static_cast<size_t>(to)]->push(std::move(bytes));
  }
  ::close(fd);
}

}  // namespace rcommit::transport
