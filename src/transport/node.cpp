// RCOMMIT_LINT_ALLOW_FILE(R2): the transport layer is real concurrent I/O by design; determinism is owned by the sim/ layer, not here
#include "transport/node.h"

#include <vector>

#include "common/check.h"

namespace rcommit::transport {

namespace {

/// StepContext that routes sends to the in-memory network.
class NetStepContext final : public sim::StepContext {
 public:
  NetStepContext(ProcId self, int32_t n, Tick clock, RandomTape& tape,
                 Network& network)
      : self_(self), n_(n), clock_(clock), tape_(tape), network_(network) {}

  void send(ProcId to, sim::MessageRef payload) override {
    RCOMMIT_CHECK(payload != nullptr);
    WireFrame frame;
    frame.from = self_;
    frame.to = to;
    frame.sender_clock = clock_;
    frame.payload = WireRegistry::instance().encode(*payload);
    network_.send(frame);
  }

  void broadcast(sim::MessageRef payload) override {
    for (ProcId to = 0; to < n_; ++to) send(to, payload);
  }

  [[nodiscard]] Tick clock() const override { return clock_; }
  [[nodiscard]] ProcId self() const override { return self_; }
  [[nodiscard]] int32_t n() const override { return n_; }
  RandomTape& random() override { return tape_; }

 private:
  ProcId self_;
  int32_t n_;
  Tick clock_;
  RandomTape& tape_;
  Network& network_;
};

}  // namespace

NodeHost::NodeHost(Options options, std::unique_ptr<sim::Process> process,
                   Network& network)
    : options_(options),
      process_(std::move(process)),
      network_(network),
      tape_(options.seed) {
  RCOMMIT_CHECK(options_.id >= 0 && options_.id < network.n());
  RCOMMIT_CHECK(process_ != nullptr);
}

NodeHost::~NodeHost() { join(); }

void NodeHost::start() {
  RCOMMIT_CHECK(joined_);
  joined_ = false;
  thread_ = std::thread([this] { run_loop(); });
}

void NodeHost::join() {
  if (joined_) return;
  request_stop();
  thread_.join();
  joined_ = true;
}

void NodeHost::run_loop() {
  auto& inbox = network_.inbox(options_.id);
  int64_t steps = 0;
  // A frame pulled while pacing the previous step, carried into this one.
  std::vector<std::vector<uint8_t>> carry;
  while (!stop_requested_.load() && steps < options_.max_steps) {
    if (process_->halted()) break;

    // One step: whatever has arrived by now is this step's message set M.
    std::vector<std::vector<uint8_t>> raw = std::move(carry);
    carry.clear();
    for (auto& bytes : inbox.drain()) raw.push_back(std::move(bytes));
    std::vector<sim::Envelope> delivered;
    for (auto& bytes : raw) {
      try {
        const WireFrame frame = WireFrame::deserialize(bytes);
        sim::Envelope env;
        env.from = frame.from;
        env.to = options_.id;
        env.sender_clock = frame.sender_clock;
        env.payload = WireRegistry::instance().decode(frame.payload);
        delivered.push_back(std::move(env));
      } catch (const CodecError&) {
        // Corrupted frame: drop it. The protocols tolerate message loss of
        // unguaranteed messages; a mangled frame is treated the same way.
      }
    }

    const Tick clock = ++steps;
    clock_.store(clock);
    NetStepContext ctx(options_.id, network_.n(), clock, tape_, network_);
    process_->on_step(ctx, delivered);

    if (process_->decided() && !decided_.load()) {
      decision_commit_.store(process_->decision() == Decision::kCommit);
      decided_.store(true);
    }

    // Pace the loop: the step period is this node's clock granularity. Wait
    // on the inbox so an arriving message wakes the node early; the pulled
    // frame joins the next step's message set.
    if (auto first = inbox.pop(options_.step_period); first.has_value()) {
      carry.push_back(std::move(*first));
    }
  }
}

FleetResult run_fleet(std::vector<std::unique_ptr<sim::Process>> processes,
                      Network& network, uint64_t seed,
                      std::chrono::milliseconds timeout) {
  const auto n = static_cast<int32_t>(processes.size());
  RCOMMIT_CHECK(n == network.n());
  auto seeds = derive_seeds(seed, n);

  std::vector<std::unique_ptr<NodeHost>> hosts;
  hosts.reserve(static_cast<size_t>(n));
  for (int32_t i = 0; i < n; ++i) {
    NodeHost::Options options;
    options.id = i;
    options.seed = seeds[static_cast<size_t>(i)];
    hosts.push_back(std::make_unique<NodeHost>(options, std::move(processes[static_cast<size_t>(i)]),
                                               network));
  }
  network.start();
  for (auto& host : hosts) host->start();

  const auto deadline = std::chrono::steady_clock::now() + timeout;
  bool all_decided = false;
  while (std::chrono::steady_clock::now() < deadline) {
    all_decided = true;
    for (const auto& host : hosts) all_decided = all_decided && host->decided();
    if (all_decided) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }

  for (auto& host : hosts) host->request_stop();
  for (auto& host : hosts) host->join();
  network.stop();

  FleetResult result;
  result.all_decided = all_decided;
  for (const auto& host : hosts) {
    if (host->process().decided()) {
      result.decisions.push_back(host->process().decision());
    } else {
      result.decisions.push_back(std::nullopt);
    }
  }
  return result;
}

}  // namespace rcommit::transport
