// TCP loopback transport.
//
// The same Network interface as InMemoryNetwork, but over real sockets: each
// node listens on an ephemeral 127.0.0.1 port, a full mesh of connections is
// established at start(), frames travel length-prefixed over the stream, and
// per-connection reader threads feed the inbox channels. Kernel scheduling
// and socket buffering supply genuine (if benign) asynchrony — this backend
// exists to demonstrate that the protocol state machines run unchanged over
// a real network stack, not to inject faults (use InMemoryNetwork's
// LinkPolicy for that).
// RCOMMIT_LINT_ALLOW_FILE(R2): the transport layer is real concurrent I/O by design; determinism is owned by the sim/ layer, not here
#pragma once

#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "common/thread_annotations.h"
#include "common/types.h"
#include "transport/network.h"

namespace rcommit::transport {

class TcpNetwork final : public Network {
 public:
  explicit TcpNetwork(int32_t n);
  ~TcpNetwork() override;

  TcpNetwork(const TcpNetwork&) = delete;
  TcpNetwork& operator=(const TcpNetwork&) = delete;

  /// Binds n listeners, dials the full mesh, and spawns reader threads.
  void start() override;

  /// Shuts every socket down, joins the readers, closes the inboxes.
  void stop() override;

  /// Writes the frame, length-prefixed, on the (from -> to) connection.
  void send(const WireFrame& frame) override;

  Channel<std::vector<uint8_t>>& inbox(ProcId id) override;

  [[nodiscard]] int32_t n() const override { return n_; }

  /// The TCP port node `id` listens on (valid after start()).
  [[nodiscard]] uint16_t port(ProcId id) const;

 private:
  struct Connection;

  void reader_loop(ProcId to, int fd);

  int32_t n_;
  bool running_ = false;
  std::vector<int> listen_fds_;
  std::vector<uint16_t> ports_;
  /// out_fds_[from][to]: the sending side of each mesh connection.
  std::vector<std::vector<int>> out_fds_;
  /// One mutex per outgoing connection: frames must not interleave. The
  /// fd it guards is picked by runtime index, which GUARDED_BY cannot
  /// express — send() documents the invariant with a MutexLock instead.
  std::vector<std::vector<std::unique_ptr<Mutex>>> out_mu_;
  std::vector<std::unique_ptr<Channel<std::vector<uint8_t>>>> inboxes_;
  std::vector<std::thread> readers_;
};

}  // namespace rcommit::transport
