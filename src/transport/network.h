// RCOMMIT_LINT_ALLOW_FILE(R2): the transport layer is real concurrent I/O by design; determinism is owned by the sim/ layer, not here
#include <atomic>
// In-memory network with per-link fault injection.
//
// Nodes exchange serialized WireFrames. A dedicated delivery thread holds
// frames for their sampled delay and then pushes them into the recipient's
// inbox channel, giving the threaded runtime genuinely asynchronous,
// reorderable, droppable message delivery — the "realistic" network of the
// paper's introduction, in wall-clock form.
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <queue>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "common/thread_annotations.h"
#include "common/types.h"
#include "transport/channel.h"
#include "transport/wire.h"

namespace rcommit::transport {

/// Behaviour of one directed link.
struct LinkPolicy {
  std::chrono::microseconds min_delay{100};
  std::chrono::microseconds max_delay{500};
  double drop_prob = 0.0;  ///< probability a frame is silently dropped
};

/// Abstract point-to-point network: n addressable nodes, per-node inboxes of
/// serialized frames. Implemented by InMemoryNetwork (delay-injected queues)
/// and TcpNetwork (real loopback sockets).
class Network {
 public:
  virtual ~Network() = default;

  virtual void start() = 0;
  virtual void stop() = 0;
  /// Serializes and routes a frame (thread-safe).
  virtual void send(const WireFrame& frame) = 0;
  /// The inbox of node `id`, holding serialized WireFrames.
  virtual Channel<std::vector<uint8_t>>& inbox(ProcId id) = 0;
  [[nodiscard]] virtual int32_t n() const = 0;
};

class InMemoryNetwork final : public Network {
 public:
  InMemoryNetwork(int32_t n, uint64_t seed, LinkPolicy default_policy = {});
  ~InMemoryNetwork() override;

  InMemoryNetwork(const InMemoryNetwork&) = delete;
  InMemoryNetwork& operator=(const InMemoryNetwork&) = delete;

  /// Overrides the policy of the (from -> to) link. Call before start().
  void set_link_policy(ProcId from, ProcId to, LinkPolicy policy);

  /// Starts the delivery thread.
  void start() override;

  /// Stops delivery and closes every inbox.
  void stop() override;

  /// Serializes and enqueues a frame (thread-safe). Frames to out-of-range
  /// destinations are rejected with CheckFailure.
  void send(const WireFrame& frame) override;

  /// The inbox channel of node `id`; frames arrive as serialized bytes.
  Channel<std::vector<uint8_t>>& inbox(ProcId id) override;

  [[nodiscard]] int32_t n() const override { return n_; }
  [[nodiscard]] int64_t frames_sent() const;
  [[nodiscard]] int64_t frames_dropped() const;
  /// Frames handed to an inbox so far.
  [[nodiscard]] int64_t frames_delivered() const;
  /// Frames still queued for delivery.
  [[nodiscard]] int64_t frames_queued() const;

 private:
  struct Scheduled {
    std::chrono::steady_clock::time_point due;
    int64_t seq;  ///< tiebreaker: FIFO among equal due times
    ProcId to;
    std::vector<uint8_t> bytes;
    bool operator>(const Scheduled& other) const {
      return std::tie(due, seq) > std::tie(other.due, other.seq);
    }
  };

  void delivery_loop();
  const LinkPolicy& policy_for(ProcId from, ProcId to) const;

  int32_t n_;
  LinkPolicy default_policy_;
  /// Written only before start() (enforced by set_link_policy), read by the
  /// sending threads afterwards — effectively immutable, so unguarded.
  std::map<std::pair<ProcId, ProcId>, LinkPolicy> link_policies_;
  std::vector<std::unique_ptr<Channel<std::vector<uint8_t>>>> inboxes_;

  mutable Mutex mu_;
  CondVar cv_;
  std::priority_queue<Scheduled, std::vector<Scheduled>, std::greater<>>
      queue_ GUARDED_BY(mu_);
  RandomTape rng_ GUARDED_BY(mu_);
  int64_t next_seq_ GUARDED_BY(mu_) = 0;
  int64_t frames_sent_ GUARDED_BY(mu_) = 0;
  int64_t frames_dropped_ GUARDED_BY(mu_) = 0;
  int64_t frames_delivered_ GUARDED_BY(mu_) = 0;
  bool running_ GUARDED_BY(mu_) = false;
  bool stopping_ GUARDED_BY(mu_) = false;
  std::thread delivery_thread_;
};

}  // namespace rcommit::transport
