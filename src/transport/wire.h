// Wire serialization for protocol payloads.
//
// The threaded runtime sends real bytes between nodes: every payload type is
// registered with a tag plus encode/decode functions, and frames are
// round-tripped through the common binary codec. Unknown tags and truncated
// frames surface as CodecError — network input is untrusted.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <typeindex>
#include <unordered_map>
#include <vector>

#include "common/codec.h"
#include "common/types.h"
#include "sim/message.h"

namespace rcommit::transport {

/// Serializes payloads to tagged byte frames and back.
class WireRegistry {
 public:
  using EncodeFn = std::function<void(BufWriter&, const sim::MessageBase&)>;
  using DecodeFn = std::function<sim::MessageRef(BufReader&)>;

  /// The process-wide registry with every built-in payload type registered
  /// (Protocol 1/2, baselines, and the db substrate's records).
  static const WireRegistry& instance();

  /// Registers a payload type. Tags must be unique; re-registering the same
  /// tag throws.
  void register_type(uint16_t tag, std::type_index type, EncodeFn encode,
                     DecodeFn decode);

  /// Extension point for higher layers (e.g. the db substrate's RPC
  /// messages): registers into the process-wide instance. NOT thread-safe
  /// against concurrent encode/decode — call during startup, before any
  /// network is started (the db layer guards its call with std::call_once).
  static void extend(uint16_t tag, std::type_index type, EncodeFn encode,
                     DecodeFn decode);

  /// Encodes payload as [tag:u16][body]. Throws CheckFailure for payload
  /// types that were never registered.
  [[nodiscard]] std::vector<uint8_t> encode(const sim::MessageBase& payload) const;

  /// Appends the tagged encoding to an existing writer (used for nesting,
  /// e.g. the piggyback wrapper embedding its inner message).
  void encode_into(BufWriter& writer, const sim::MessageBase& payload) const;

  /// Decodes one tagged frame. Throws CodecError on unknown tag / truncation.
  [[nodiscard]] sim::MessageRef decode(std::span<const uint8_t> data) const;

  /// Decodes a tagged frame from a reader positioned at the tag.
  [[nodiscard]] sim::MessageRef decode_from(BufReader& reader) const;

 private:
  WireRegistry() = default;
  friend WireRegistry& detail_mutable_instance();
  std::unordered_map<uint16_t, std::pair<EncodeFn, DecodeFn>> by_tag_;
  std::unordered_map<std::type_index, uint16_t> tag_of_;
};

/// A network frame: routing metadata plus the encoded payload.
struct WireFrame {
  ProcId from = kNoProc;
  ProcId to = kNoProc;
  Tick sender_clock = 0;
  std::vector<uint8_t> payload;

  [[nodiscard]] std::vector<uint8_t> serialize() const;
  static WireFrame deserialize(std::span<const uint8_t> data);
};

}  // namespace rcommit::transport
