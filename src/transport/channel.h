// A minimal MPSC blocking channel used as each node's inbox.
// RCOMMIT_LINT_ALLOW_FILE(R2): the transport layer is real concurrent I/O by design; determinism is owned by the sim/ layer, not here
#pragma once

#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

namespace rcommit::transport {

template <typename T>
class Channel {
 public:
  /// Enqueues one item; returns false if the channel is closed.
  bool push(T item) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_) return false;
      items_.push_back(std::move(item));
    }
    cv_.notify_one();
    return true;
  }

  /// Pops one item, waiting up to `timeout`; nullopt on timeout or close.
  std::optional<T> pop(std::chrono::microseconds timeout) {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait_for(lock, timeout, [this] { return !items_.empty() || closed_; });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  /// Drains everything currently queued without waiting.
  std::vector<T> drain() {
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<T> out(std::make_move_iterator(items_.begin()),
                       std::make_move_iterator(items_.end()));
    items_.clear();
    return out;
  }

  /// Closes the channel: pushes fail, waiting pops wake empty-handed.
  void close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  [[nodiscard]] bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

  [[nodiscard]] size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace rcommit::transport
