// A minimal MPSC blocking channel used as each node's inbox.
// RCOMMIT_LINT_ALLOW_FILE(R2): the transport layer is real concurrent I/O by design; determinism is owned by the sim/ layer, not here
#pragma once

#include <chrono>
#include <deque>
#include <optional>
#include <utility>
#include <vector>

#include "common/thread_annotations.h"

namespace rcommit::transport {

template <typename T>
class Channel {
 public:
  /// Enqueues one item; returns false if the channel is closed.
  bool push(T item) {
    {
      MutexLock lock(mu_);
      if (closed_) return false;
      items_.push_back(std::move(item));
    }
    cv_.notify_one();
    return true;
  }

  /// Pops one item, waiting up to `timeout`; nullopt on timeout or close.
  std::optional<T> pop(std::chrono::microseconds timeout) {
    const auto deadline = std::chrono::steady_clock::now() + timeout;
    MutexLock lock(mu_);
    while (items_.empty() && !closed_) {
      if (cv_.wait_until(mu_, deadline) == std::cv_status::timeout) break;
    }
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  /// Drains everything currently queued without waiting.
  std::vector<T> drain() {
    MutexLock lock(mu_);
    std::vector<T> out(std::make_move_iterator(items_.begin()),
                       std::make_move_iterator(items_.end()));
    items_.clear();
    return out;
  }

  /// Closes the channel: pushes fail, waiting pops wake empty-handed.
  void close() {
    {
      MutexLock lock(mu_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  [[nodiscard]] bool closed() const {
    MutexLock lock(mu_);
    return closed_;
  }

  [[nodiscard]] size_t size() const {
    MutexLock lock(mu_);
    return items_.size();
  }

 private:
  mutable Mutex mu_;
  CondVar cv_;
  std::deque<T> items_ GUARDED_BY(mu_);
  bool closed_ GUARDED_BY(mu_) = false;
};

}  // namespace rcommit::transport
