// Threaded node host.
//
// Runs one sim::Process on its own thread against the in-memory network: the
// exact same protocol state machines that run on the deterministic simulator
// run here with real concurrency, real serialization, and wall-clock message
// delays. Each loop iteration is one processor step (the paper's clock tick):
// drain whatever frames have arrived, call on_step, route the sends.
// RCOMMIT_LINT_ALLOW_FILE(R2): the transport layer is real concurrent I/O by design; determinism is owned by the sim/ layer, not here
#pragma once

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>

#include "common/rng.h"
#include "common/types.h"
#include "sim/process.h"
#include "transport/network.h"

namespace rcommit::transport {

class NodeHost {
 public:
  struct Options {
    ProcId id = kNoProc;
    uint64_t seed = 1;
    /// Pacing of steps; the step period is the node's clock granularity.
    std::chrono::microseconds step_period{200};
    /// Safety net: stop after this many steps even if the process never
    /// halts (e.g. kRunForever protocols or deliberately blocked runs).
    int64_t max_steps = 100'000;
  };

  NodeHost(Options options, std::unique_ptr<sim::Process> process,
           Network& network);
  ~NodeHost();

  NodeHost(const NodeHost&) = delete;
  NodeHost& operator=(const NodeHost&) = delete;

  /// Starts the node thread.
  void start();

  /// Requests the node loop to exit (after the current step).
  void request_stop() { stop_requested_.store(true); }

  /// Joins the node thread (idempotent).
  void join();

  /// The hosted process. Safe to read decided()/decision() concurrently only
  /// after join(); while running, use the atomic snapshot below.
  [[nodiscard]] const sim::Process& process() const { return *process_; }

  /// Lock-free progress snapshot, safe to poll from other threads.
  [[nodiscard]] bool decided() const { return decided_.load(); }
  [[nodiscard]] Decision decision() const {
    return decision_commit_.load() ? Decision::kCommit : Decision::kAbort;
  }
  [[nodiscard]] Tick clock() const { return clock_.load(); }

 private:
  void run_loop();

  Options options_;
  std::unique_ptr<sim::Process> process_;
  Network& network_;
  RandomTape tape_;
  std::thread thread_;
  std::atomic<bool> stop_requested_{false};
  std::atomic<bool> decided_{false};
  std::atomic<bool> decision_commit_{false};
  std::atomic<Tick> clock_{0};
  bool joined_ = true;
};

/// Runs a fleet of processes over a network until every node decides (or the
/// timeout expires); returns when all node threads have been joined.
/// Convenience wrapper used by tests, examples, and the db substrate.
struct FleetResult {
  bool all_decided = false;
  std::vector<std::optional<Decision>> decisions;
};

FleetResult run_fleet(std::vector<std::unique_ptr<sim::Process>> processes,
                      Network& network, uint64_t seed,
                      std::chrono::milliseconds timeout);

}  // namespace rcommit::transport
