// RCOMMIT_LINT_ALLOW_FILE(R2): the transport layer is real concurrent I/O by design; determinism is owned by the sim/ layer, not here
#include "transport/network.h"

#include "common/check.h"

namespace rcommit::transport {

InMemoryNetwork::InMemoryNetwork(int32_t n, uint64_t seed, LinkPolicy default_policy)
    : n_(n), default_policy_(default_policy), rng_(seed) {
  RCOMMIT_CHECK(n >= 1);
  RCOMMIT_CHECK(default_policy.min_delay <= default_policy.max_delay);
  RCOMMIT_CHECK(default_policy.drop_prob >= 0.0 && default_policy.drop_prob <= 1.0);
  inboxes_.reserve(static_cast<size_t>(n));
  for (int32_t i = 0; i < n; ++i) {
    inboxes_.push_back(std::make_unique<Channel<std::vector<uint8_t>>>());
  }
}

InMemoryNetwork::~InMemoryNetwork() { stop(); }

void InMemoryNetwork::set_link_policy(ProcId from, ProcId to, LinkPolicy policy) {
  MutexLock lock(mu_);
  RCOMMIT_CHECK(!running_);
  RCOMMIT_CHECK(policy.min_delay <= policy.max_delay);
  link_policies_[{from, to}] = policy;
}

const LinkPolicy& InMemoryNetwork::policy_for(ProcId from, ProcId to) const {
  auto it = link_policies_.find({from, to});
  return it == link_policies_.end() ? default_policy_ : it->second;
}

void InMemoryNetwork::start() {
  MutexLock lock(mu_);
  RCOMMIT_CHECK(!running_);
  running_ = true;
  stopping_ = false;
  delivery_thread_ = std::thread([this] { delivery_loop(); });
}

void InMemoryNetwork::stop() {
  {
    MutexLock lock(mu_);
    if (!running_) return;
    stopping_ = true;
  }
  cv_.notify_all();
  delivery_thread_.join();
  {
    MutexLock lock(mu_);
    running_ = false;
  }
  for (auto& inbox : inboxes_) inbox->close();
}

void InMemoryNetwork::send(const WireFrame& frame) {
  RCOMMIT_CHECK_MSG(frame.to >= 0 && frame.to < n_, "send to invalid node " << frame.to);
  const auto& policy = policy_for(frame.from, frame.to);
  MutexLock lock(mu_);
  ++frames_sent_;
  if (policy.drop_prob > 0.0 && rng_.next_real() < policy.drop_prob) {
    ++frames_dropped_;
    return;
  }
  const auto span = static_cast<uint64_t>(
      (policy.max_delay - policy.min_delay).count() + 1);
  const auto delay =
      policy.min_delay + std::chrono::microseconds(
                             static_cast<int64_t>(rng_.next_below(span)));
  queue_.push(Scheduled{std::chrono::steady_clock::now() + delay, next_seq_++,
                        frame.to, frame.serialize()});
  cv_.notify_one();
}

Channel<std::vector<uint8_t>>& InMemoryNetwork::inbox(ProcId id) {
  RCOMMIT_CHECK(id >= 0 && id < n_);
  return *inboxes_[static_cast<size_t>(id)];
}

int64_t InMemoryNetwork::frames_sent() const {
  MutexLock lock(mu_);
  return frames_sent_;
}

int64_t InMemoryNetwork::frames_dropped() const {
  MutexLock lock(mu_);
  return frames_dropped_;
}

int64_t InMemoryNetwork::frames_delivered() const {
  MutexLock lock(mu_);
  return frames_delivered_;
}

int64_t InMemoryNetwork::frames_queued() const {
  MutexLock lock(mu_);
  return static_cast<int64_t>(queue_.size());
}

void InMemoryNetwork::delivery_loop() {
  // Robustness note: all waits are *bounded* and the loop re-derives what to
  // do from the queue state each iteration, so a lost or misdirected wakeup
  // can delay a delivery by at most kMaxNap rather than strand it (observed
  // in the wild: a predicated wait_until on this kernel occasionally slept
  // past a sub-millisecond deadline indefinitely under thread load). The
  // bounded re-derivation also lets the waits be predicate-free, keeping
  // every access to guarded state inside the MutexLock scope below.
  constexpr auto kMaxNap = std::chrono::milliseconds(5);
  for (;;) {
    Scheduled item{};
    {
      MutexLock lock(mu_);
      if (stopping_) return;
      if (queue_.empty()) {
        cv_.wait_for(mu_, kMaxNap);
        continue;
      }
      const auto now = std::chrono::steady_clock::now();
      if (queue_.top().due > now) {
        const auto nap = std::min<std::chrono::steady_clock::duration>(
            queue_.top().due - now, kMaxNap);
        cv_.wait_for(mu_, nap);
        continue;
      }
      item = queue_.top();
      queue_.pop();
      ++frames_delivered_;
    }
    // Push outside the lock: inbox channels take their own mutex.
    inboxes_[static_cast<size_t>(item.to)]->push(std::move(item.bytes));
  }
}

}  // namespace rcommit::transport
