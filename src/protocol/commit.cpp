#include "protocol/commit.h"

#include "common/check.h"

namespace rcommit::protocol {

CommitProcess::CommitProcess(Options options) : options_(std::move(options)) {
  RCOMMIT_CHECK(options_.params.n >= 1);
  RCOMMIT_CHECK(options_.initial_vote == 0 || options_.initial_vote == 1);
  if (options_.coin_count == 0) options_.coin_count = options_.params.n;
  RCOMMIT_CHECK(options_.coin_count >= options_.params.n);
  vote_ = options_.initial_vote;
}

void CommitProcess::broadcast_piggybacked(sim::StepContext& ctx, sim::MessageRef inner) {
  RCOMMIT_CHECK_MSG(have_coins_, "cannot piggyback before the GO is known");
  ctx.broadcast(sim::make_message<PiggybackedMsg>(coins_, std::move(inner)));
}

// RCOMMIT_ANALYZE_ALLOW(A1): process boundary — protocol transitions are workload, not simulator machinery; bench_simperf gates their steady-state cost at runtime
void CommitProcess::on_step(sim::StepContext& ctx,
                            std::span<const sim::Envelope> delivered) {
  if (first_step_) {
    first_step_ = false;
    id_ = ctx.self();
    if (is_coordinator()) {
      // Line 1: call flip(n) and broadcast the results in a GO message.
      coins_ = ctx.random().flip_bits(options_.coin_count);
      have_coins_ = true;
      go_senders_.insert(id_);
      broadcast_piggybacked(ctx, sim::make_message<GoMsg>());
      phase_ = Phase::kCollectGo;
      window_start_ = ctx.clock();
    }
    // Non-coordinators: line 2, wait for a GO message (no timeout — if no
    // processor ever receives a message, blocking is the specified outcome).
  }

  for (const auto& env : delivered) handle_message(ctx, env);
  maybe_transition(ctx);
}

void CommitProcess::handle_message(sim::StepContext& ctx, const sim::Envelope& env) {
  const auto* pb = sim::msg_cast<PiggybackedMsg>(env.payload);
  // Every Protocol 2 message is piggybacked; anything else is foreign traffic.
  if (pb == nullptr) return;

  if (!have_coins_) {
    // "As soon as a processor receives a message, it has received a GO."
    coins_ = pb->coins();
    have_coins_ = true;
  }
  // Any piggybacked message from q doubles as q's GO: q is participating.
  go_senders_.insert(env.from);

  const sim::MessageRef& inner = pb->inner();
  if (sim::msg_cast<GoMsg>(inner) != nullptr) {
    return;  // participation already recorded above
  }
  if (const auto* vote = sim::msg_cast<VoteMsg>(inner)) {
    if (vote_senders_.insert(env.from).second && vote->vote() != 0) ++commit_votes_;
    return;
  }
  // Agreement-layer message (R1/R2/DECIDED). Feed the core if it is running;
  // otherwise stash for replay at line 12.
  if (core_ != nullptr) {
    core_->on_message(ctx, env.from, *inner);
  } else {
    stash_.push_back(Stashed{env.from, inner});
  }
}

void CommitProcess::maybe_transition(sim::StepContext& ctx) {
  const int32_t n = options_.params.n;
  const Tick two_k = 2 * options_.params.k;

  if (phase_ == Phase::kAwaitGo && have_coins_) {
    // Line 3: broadcast GO ("I am participating in the protocol").
    go_senders_.insert(ctx.self());
    broadcast_piggybacked(ctx, sim::make_message<GoMsg>());
    phase_ = Phase::kCollectGo;
    window_start_ = ctx.clock();
  }

  if (phase_ == Phase::kCollectGo) {
    const bool all_go = static_cast<int32_t>(go_senders_.size()) >= n;
    const bool timed_out = ctx.clock() - window_start_ >= two_k;
    if (all_go || timed_out) {
      // Lines 5-6: without n GO messages in time, switch the vote to abort.
      if (!all_go) vote_ = 0;
      enter_collect_votes(ctx);
    }
  }

  if (phase_ == Phase::kCollectVotes) {
    const bool all_votes = static_cast<int32_t>(vote_senders_.size()) >= n;
    const bool timed_out = ctx.clock() - window_start_ >= two_k;
    if (all_votes || timed_out) {
      // Lines 9-11: xp = 1 iff n commit votes arrived in time.
      agreement_input_ = (all_votes && commit_votes_ >= n) ? 1 : 0;
      enter_agreement(ctx);
    }
  }

  if (phase_ == Phase::kAgreement) {
    core_->advance(ctx);
  }
}

void CommitProcess::enter_collect_votes(sim::StepContext& ctx) {
  // Line 7: broadcast vote. Our own vote counts toward the n (the broadcast
  // includes self, but counting it directly avoids a needless wait on the
  // self-delivery).
  phase_ = Phase::kCollectVotes;
  window_start_ = ctx.clock();
  if (vote_senders_.insert(ctx.self()).second && vote_ != 0) ++commit_votes_;
  broadcast_piggybacked(ctx, sim::make_message<VoteMsg>(static_cast<uint8_t>(vote_)));
}

void CommitProcess::enter_agreement(sim::StepContext& ctx) {
  phase_ = Phase::kAgreement;
  AgreementCore::Config config;
  config.params = options_.params;
  config.halt = options_.halt;
  config.broadcast = [this](sim::StepContext& c, sim::MessageRef msg) {
    broadcast_piggybacked(c, std::move(msg));
  };
  core_ = std::make_unique<AgreementCore>(std::move(config));
  // Line 12: call Protocol 1 with xp and the GO coins. The coin list spans
  // coin_count >= n stages; stages beyond it fall back to local flips.
  core_->start(ctx, agreement_input_, coins_);
  for (const auto& s : stash_) core_->on_message(ctx, s.from, *s.payload);
  stash_.clear();
  stash_.shrink_to_fit();
}

std::vector<std::unique_ptr<sim::Process>> make_commit_fleet(
    const SystemParams& params, const std::vector<int>& votes, HaltPolicy halt,
    int32_t coin_count) {
  RCOMMIT_CHECK_MSG(static_cast<int32_t>(votes.size()) == params.n,
                    "need one vote per processor");
  std::vector<std::unique_ptr<sim::Process>> fleet;
  fleet.reserve(votes.size());
  for (int32_t i = 0; i < params.n; ++i) {
    CommitProcess::Options options;
    options.params = params;
    options.initial_vote = votes[static_cast<size_t>(i)];
    options.halt = halt;
    options.coin_count = coin_count;
    fleet.push_back(std::make_unique<CommitProcess>(options));
  }
  return fleet;
}

}  // namespace rcommit::protocol
