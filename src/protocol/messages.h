// Message vocabulary of Protocols 1 and 2.
//
// Protocol 1 (the agreement subroutine) exchanges two message forms per
// stage: (1, s, v) first-phase reports and (2, s, v/⊥) second-phase votes —
// the paper calls a (2, s, v) with v ≠ ⊥ an "S-message". Protocol 2 adds GO
// messages carrying the coordinator's coin string and vote messages, and
// piggybacks the GO on *every* message it sends ("an important part of the
// protocol is that GO messages are piggybacked on every message sent,
// including those of Protocol 1", §3.2).
#pragma once

#include <cstdint>
#include <sstream>
#include <utility>
#include <vector>

#include "common/types.h"
#include "sim/message.h"

namespace rcommit::protocol {

/// Sentinel for the second-phase "I don't know" marker ⊥.
inline constexpr int8_t kBottom = -1;

/// First-phase stage message (1, s, v).
class AgreementR1 final : public sim::MessageBase {
 public:
  AgreementR1(int32_t stage, uint8_t value) : stage_(stage), value_(value) {}

  [[nodiscard]] int32_t stage() const { return stage_; }
  [[nodiscard]] uint8_t value() const { return value_; }

  [[nodiscard]] std::string debug_string() const override {
    std::ostringstream os;
    os << "(1," << stage_ << "," << int(value_) << ")";
    return os.str();
  }

 private:
  int32_t stage_;
  uint8_t value_;
};

/// Second-phase stage message (2, s, v) or (2, s, ⊥).
class AgreementR2 final : public sim::MessageBase {
 public:
  AgreementR2(int32_t stage, int8_t value) : stage_(stage), value_(value) {}

  [[nodiscard]] int32_t stage() const { return stage_; }
  /// 0, 1, or kBottom.
  [[nodiscard]] int8_t value() const { return value_; }
  [[nodiscard]] bool is_s_message() const { return value_ != kBottom; }

  [[nodiscard]] std::string debug_string() const override {
    std::ostringstream os;
    os << "(2," << stage_ << ",";
    if (value_ == kBottom) {
      os << "⊥";
    } else {
      os << int(value_);
    }
    os << ")";
    return os.str();
  }

 private:
  int32_t stage_;
  int8_t value_;
};

/// Termination helper (design decision D1): broadcast by a processor when its
/// Protocol 1 invocation returns, so that slow processors need not assemble
/// their own n - t quorum after fast ones have stopped sending. Carried value
/// is always backed by n - t matching S-messages at the sender, so acting on
/// it preserves the agreement and validity conditions.
class DecidedMsg final : public sim::MessageBase {
 public:
  explicit DecidedMsg(uint8_t value) : value_(value) {}

  [[nodiscard]] uint8_t value() const { return value_; }

  [[nodiscard]] std::string debug_string() const override {
    return std::string("DECIDED(") + std::to_string(int(value_)) + ")";
  }

 private:
  uint8_t value_;
};

/// GO announcement / relay: "I am participating in the protocol." The coin
/// string itself rides on the piggyback envelope below.
class GoMsg final : public sim::MessageBase {
 public:
  [[nodiscard]] std::string debug_string() const override { return "GO"; }
};

/// A processor's vote: 1 = commit, 0 = abort.
class VoteMsg final : public sim::MessageBase {
 public:
  explicit VoteMsg(uint8_t vote) : vote_(vote) {}

  [[nodiscard]] uint8_t vote() const { return vote_; }

  [[nodiscard]] std::string debug_string() const override {
    return std::string("VOTE(") + std::to_string(int(vote_)) + ")";
  }

 private:
  uint8_t vote_;
};

/// Envelope wrapper adding the GO piggyback (the coordinator's coin string)
/// to an inner message. Every message Protocol 2 sends is wrapped in one of
/// these, so receiving *any* message hands a processor the GO.
class PiggybackedMsg final : public sim::MessageBase {
 public:
  PiggybackedMsg(std::vector<uint8_t> coins, sim::MessageRef inner)
      : coins_(std::move(coins)), inner_(std::move(inner)) {}

  [[nodiscard]] const std::vector<uint8_t>& coins() const { return coins_; }
  [[nodiscard]] const sim::MessageRef& inner() const { return inner_; }

  [[nodiscard]] std::string debug_string() const override {
    return "GO+" + inner_->debug_string();
  }

 private:
  std::vector<uint8_t> coins_;
  sim::MessageRef inner_;
};

}  // namespace rcommit::protocol
