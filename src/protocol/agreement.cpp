#include "protocol/agreement.h"

#include "common/check.h"

namespace rcommit::protocol {

AgreementCore::AgreementCore(Config config) : config_(std::move(config)) {
  RCOMMIT_CHECK(config_.params.n >= 1);
  RCOMMIT_CHECK(config_.params.t >= 0);
  RCOMMIT_CHECK_MSG(config_.broadcast != nullptr, "AgreementCore needs a broadcast hook");
}

void AgreementCore::broadcast_r1(sim::StepContext& ctx, int stage, int value) {
  if (config_.observer) config_.observer(ctx.clock(), 1, stage, value);
  config_.broadcast(ctx, sim::make_message<AgreementR1>(stage, static_cast<uint8_t>(value)));
}

void AgreementCore::broadcast_r2(sim::StepContext& ctx, int stage, int value) {
  if (config_.observer) config_.observer(ctx.clock(), 2, stage, value);
  config_.broadcast(ctx, sim::make_message<AgreementR2>(stage, static_cast<int8_t>(value)));
}

void AgreementCore::broadcast_decided(sim::StepContext& ctx, int value) {
  if (sent_decided_) return;
  sent_decided_ = true;
  if (config_.observer) config_.observer(ctx.clock(), 0, 0, value);
  config_.broadcast(ctx, sim::make_message<DecidedMsg>(static_cast<uint8_t>(value)));
}

int AgreementCore::coin_for_stage(sim::StepContext& ctx, int stage) {
  // Line 8: xp <- coins[s] if s <= |coins|, else flip(1).
  if (stage >= 1 && static_cast<size_t>(stage) <= coins_.size()) {
    return coins_[static_cast<size_t>(stage - 1)] != 0 ? 1 : 0;
  }
  return ctx.random().flip();
}

void AgreementCore::start(sim::StepContext& ctx, int initial_value,
                          std::vector<uint8_t> coins) {
  RCOMMIT_CHECK(!started_);
  RCOMMIT_CHECK(initial_value == 0 || initial_value == 1);
  started_ = true;
  x_ = initial_value;
  coins_ = std::move(coins);
  // Line 1 of stage 1: broadcast (1, s, xp).
  broadcast_r1(ctx, stage_, x_);
  advance(ctx);
}

void AgreementCore::on_message(sim::StepContext& ctx, ProcId from,
                               const sim::MessageBase& msg) {
  if (returned_) return;
  if (const auto* r1 = dynamic_cast<const AgreementR1*>(&msg)) {
    auto& b = board(r1->stage());
    if (b.r1_senders.insert(from).second) {
      RCOMMIT_CHECK(r1->value() == 0 || r1->value() == 1);
      ++b.r1_count[r1->value()];
    }
    return;
  }
  if (const auto* r2 = dynamic_cast<const AgreementR2*>(&msg)) {
    auto& b = board(r2->stage());
    if (b.r2_senders.insert(from).second) {
      if (r2->value() == kBottom) {
        ++b.r2_bottom;
      } else {
        RCOMMIT_CHECK(r2->value() == 0 || r2->value() == 1);
        ++b.r2_count[r2->value()];
      }
    }
    return;
  }
  if (const auto* dec = dynamic_cast<const DecidedMsg*>(&msg)) {
    if (config_.halt == HaltPolicy::kRunForever) return;  // helper disabled
    const int v = dec->value() != 0 ? 1 : 0;
    if (!decided_) {
      decided_ = true;
      decision_value_ = v;
      decision_stage_ = stage_;
    }
    // Safe: the sender assembled n - t matching S-messages for v.
    RCOMMIT_CHECK_MSG(decision_value_ == v, "DECIDED conflicts with own decision");
    broadcast_decided(ctx, decision_value_);
    returned_ = true;
    return;
  }
  // Other message types (e.g. commit-layer traffic) are not ours to handle.
}

void AgreementCore::advance(sim::StepContext& ctx) {
  if (!started_) return;
  const int n = config_.params.n;
  const int quorum = config_.params.quorum();

  for (;;) {
    if (returned_) return;
    auto& b = board(stage_);
    if (phase_ == 1) {
      // Line 2: wait to receive n - t messages of the form (1, s, *). Per the
      // bulletin-board semantics the condition and the majority test below
      // look at *all* messages received so far, which can exceed n - t.
      if (b.r1_total() < quorum) return;
      // Lines 3-5: if more than n/2 messages are (1, s, v) for some v then
      // broadcast (2, s, v) else broadcast (2, s, ⊥).
      int v = kBottom;
      if (2 * b.r1_count[0] > n) v = 0;
      if (2 * b.r1_count[1] > n) v = 1;
      broadcast_r2(ctx, stage_, v);
      phase_ = 2;
      continue;
    }

    // Line 6: wait to receive n - t messages of the form (2, s, *).
    if (b.r2_total() < quorum) return;
    ++stages_completed_;

    // Lemma 2: at most one value is carried by S-messages per stage.
    RCOMMIT_CHECK_MSG(b.r2_count[0] == 0 || b.r2_count[1] == 0,
                      "two distinct S-message values in stage " << stage_);

    // Lines 7-8: if there are no (2, s, v) messages for any v, draw the coin.
    if (b.r2_count[0] == 0 && b.r2_count[1] == 0) {
      x_ = coin_for_stage(ctx, stage_);
    } else {
      // Lines 9-10: if there is a (2, s, v) message, adopt v.
      x_ = b.r2_count[1] > 0 ? 1 : 0;
    }

    // Lines 11-14: with at least n - t matching S-messages, decide v — or, if
    // already decided in an earlier stage, return.
    const int s_value = b.r2_count[1] > 0 ? 1 : (b.r2_count[0] > 0 ? 0 : -1);
    if (s_value >= 0 && b.r2_count[s_value] >= quorum) {
      if (decided_) {
        RCOMMIT_CHECK_MSG(decision_value_ == s_value,
                          "quorum S-value conflicts with earlier decision");
        if (config_.halt == HaltPolicy::kDecidedBroadcast) {
          broadcast_decided(ctx, decision_value_);
          returned_ = true;
          return;
        }
        // kRunForever: keep assisting; fall through to the next stage.
      } else {
        decided_ = true;
        decision_value_ = s_value;
        decision_stage_ = stage_;
        if (config_.halt == HaltPolicy::kDecidedBroadcast) {
          // Deviation from literal line 14 in service of termination (D1):
          // announce the decision immediately rather than waiting to
          // re-assemble a second quorum; the announcement carries the same
          // value the quorum certified, so safety is untouched, and it saves
          // the paper's extra wind-down stage.
          broadcast_decided(ctx, decision_value_);
          returned_ = true;
          return;
        }
      }
    }

    // Start stage s + 1 (line 1 again).
    ++stage_;
    phase_ = 1;
    broadcast_r1(ctx, stage_, x_);
  }
}

AgreementProcess::AgreementProcess(Options options) : options_(std::move(options)) {
  AgreementCore::Config config;
  config.params = options_.params;
  config.halt = options_.halt;
  config.observer = options_.observer;
  config.broadcast = [](sim::StepContext& ctx, sim::MessageRef msg) {
    ctx.broadcast(std::move(msg));
  };
  core_ = std::make_unique<AgreementCore>(std::move(config));
}

// RCOMMIT_ANALYZE_ALLOW(A1): process boundary — protocol transitions are workload, not simulator machinery; bench_simperf gates their steady-state cost at runtime
void AgreementProcess::on_step(sim::StepContext& ctx,
                               std::span<const sim::Envelope> delivered) {
  if (first_step_) {
    first_step_ = false;
    core_->start(ctx, options_.initial_value, options_.coins);
  }
  for (const auto& env : delivered) {
    core_->on_message(ctx, env.from, *env.payload);
  }
  core_->advance(ctx);
}

}  // namespace rcommit::protocol
