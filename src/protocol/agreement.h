// Protocol 1: the randomized asynchronous agreement subroutine.
//
// A modification of Ben-Or's asynchronous agreement protocol in which the
// local coin flip of an undecided stage is replaced, for the first |coins|
// stages, by a pre-distributed list of *identical* coin flips (the
// coordinator's, in Protocol 2). Matching coins collapse Ben-Or's expected
// exponential stage count to a constant: Pr[MATCH(s)] = 1/2 per early stage,
// so all processors decide within 4 expected stages (Lemma 8). With an empty
// coin list this class *is* the local-coin Ben-Or baseline.
//
// AgreementCore is the embeddable state machine (used by Protocol 2);
// AgreementProcess wraps it as a standalone sim::Process solving the
// agreement problem of §2.4.
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <set>
#include <vector>

#include "common/types.h"
#include "protocol/messages.h"
#include "sim/process.h"

namespace rcommit::protocol {

/// What a processor does after its Protocol 1 invocation returns
/// (design decision D1 in DESIGN.md).
enum class HaltPolicy {
  /// On return, broadcast DECIDED(v) and halt; on receiving DECIDED(v),
  /// decide v, rebroadcast, and halt. Default: terminating executable.
  kDecidedBroadcast,
  /// Never return: a decided processor keeps participating in stages
  /// forever. Paper-literal stage behaviour; runs end when the simulator
  /// observes that every nonfaulty processor has decided.
  kRunForever,
};

/// Out-of-model instrumentation hook (used only by the omniscient Ben-Or
/// worst-case bench): called for each broadcast with (clock, phase, stage,
/// value); phase 0 = DECIDED, value kBottom for ⊥.
using SendObserver = std::function<void(Tick clock, int phase, int stage, int value)>;

/// The Protocol 1 state machine, faithful to the paper's line numbering
/// (comments cite lines). Embeddable: the owner forwards messages and calls
/// advance() once per step; sends go through a caller-supplied broadcast
/// function so Protocol 2 can piggyback the GO on them.
class AgreementCore {
 public:
  struct Config {
    SystemParams params;
    HaltPolicy halt = HaltPolicy::kDecidedBroadcast;
    /// Broadcast hook; required. Protocol 2 wraps payloads in PiggybackedMsg.
    std::function<void(sim::StepContext&, sim::MessageRef)> broadcast;
    /// Optional spy hook (see SendObserver).
    SendObserver observer;
  };

  explicit AgreementCore(Config config);

  /// Starts the subroutine with input xp = initial_value and the coin list
  /// (paper: "input parameters are xp and coins"). Broadcasts (1, 1, xp).
  void start(sim::StepContext& ctx, int initial_value, std::vector<uint8_t> coins);

  /// Feeds one received message (AgreementR1 / AgreementR2 / DecidedMsg;
  /// anything else is ignored). Call advance() after the step's batch.
  void on_message(sim::StepContext& ctx, ProcId from, const sim::MessageBase& msg);

  /// Re-evaluates the wait conditions over everything received so far (the
  /// paper's bulletin-board semantics) and performs any enabled transitions.
  void advance(sim::StepContext& ctx);

  [[nodiscard]] bool started() const { return started_; }
  [[nodiscard]] bool decided() const { return decided_; }
  /// The agreement value; only meaningful when decided().
  [[nodiscard]] int decision_value() const { return decision_value_; }
  /// True once the subroutine has returned (kDecidedBroadcast only).
  [[nodiscard]] bool returned() const { return returned_; }
  /// Current stage s (1-based).
  [[nodiscard]] int stage() const { return stage_; }
  /// Number of stages fully completed (phase-2 quorum reached) — the paper's
  /// performance unit for Lemma 8.
  [[nodiscard]] int stages_completed() const { return stages_completed_; }
  /// Stage at which this processor first decided (0 = not yet).
  [[nodiscard]] int decision_stage() const { return decision_stage_; }

 private:
  struct StageBoard {
    std::set<ProcId> r1_senders;
    int r1_count[2] = {0, 0};
    std::set<ProcId> r2_senders;
    int r2_count[2] = {0, 0};
    int r2_bottom = 0;
    [[nodiscard]] int r1_total() const {
      return static_cast<int>(r1_senders.size());
    }
    [[nodiscard]] int r2_total() const {
      return static_cast<int>(r2_senders.size());
    }
  };

  StageBoard& board(int stage) { return boards_[stage]; }
  void broadcast_r1(sim::StepContext& ctx, int stage, int value);
  void broadcast_r2(sim::StepContext& ctx, int stage, int value);
  void broadcast_decided(sim::StepContext& ctx, int value);
  /// Coin for an undecided stage: coins[s] when s <= |coins|, else flip(1)
  /// (paper line 8).
  int coin_for_stage(sim::StepContext& ctx, int stage);

  Config config_;
  bool started_ = false;
  int x_ = 0;                        ///< local value xp
  std::vector<uint8_t> coins_;
  int stage_ = 1;
  int phase_ = 1;                    ///< 1 = waiting at line 2, 2 = line 6
  bool decided_ = false;
  int decision_value_ = -1;
  int decision_stage_ = 0;
  bool returned_ = false;
  bool sent_decided_ = false;
  int stages_completed_ = 0;
  std::map<int, StageBoard> boards_;
};

/// Standalone agreement protocol participant (the §2.4 agreement problem):
/// begins with `initial_value`, optionally seeded with a shared coin list.
class AgreementProcess final : public sim::Process {
 public:
  struct Options {
    SystemParams params;
    int initial_value = 0;
    std::vector<uint8_t> coins;  ///< empty = local-coin Ben-Or baseline
    HaltPolicy halt = HaltPolicy::kDecidedBroadcast;
    SendObserver observer;
  };

  explicit AgreementProcess(Options options);

  void on_step(sim::StepContext& ctx, std::span<const sim::Envelope> delivered) override;
  [[nodiscard]] bool decided() const override { return core_->decided(); }
  [[nodiscard]] Decision decision() const override {
    return decision_from_bit(core_->decision_value());
  }
  [[nodiscard]] bool halted() const override { return core_->returned(); }

  [[nodiscard]] const AgreementCore& core() const { return *core_; }

 private:
  Options options_;
  std::unique_ptr<AgreementCore> core_;
  bool first_step_ = true;
};

}  // namespace rcommit::protocol
