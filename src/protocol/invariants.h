// Executable correctness conditions (paper §2.4).
//
// These checkers turn the paper's three transaction-commit conditions — and
// the agreement problem's validity condition — into predicates over finished
// runs, shared by the test suite and the benchmark harness.
#pragma once

#include <vector>

#include "common/types.h"
#include "sim/simulator.h"

namespace rcommit::protocol {

/// Agreement Condition: every configuration has at most one decision value.
/// (Checked on the final configuration; decisions are absorbing, so a
/// conflict at any earlier point persists to the end.)
bool agreement_holds(const sim::RunResult& result);

/// Abort Validity Condition: whenever the initial value of any processor is
/// 0, the nonfaulty processors decide 0. We check the stronger statement the
/// protocol actually guarantees: *no* processor (faulty or not) ever decides
/// 1 in such a run, whether or not the run is deciding.
bool abort_validity_holds(const sim::RunResult& result, const std::vector<int>& votes);

/// Commit Validity Condition: if all initial values are 1 and the run is
/// failure-free and on-time, the nonfaulty processors decide 1. Returns true
/// vacuously when the precondition does not hold (mixed votes, crashes, or a
/// late message).
bool commit_validity_holds(const sim::RunResult& result, const std::vector<int>& votes,
                           Tick k);

/// Agreement-problem validity (§2.4): if every initial value is v, deciders
/// decided v. Vacuously true for mixed inputs.
bool agreement_validity_holds(const sim::RunResult& result, const std::vector<int>& inputs);

/// Agreement / abort validity quantified only over the processors marked true
/// in `honest`. The swarm's Byzantine cells use these: a Byzantine victim's
/// decision and vote sit outside every guarantee a BFT protocol makes, so
/// including them would flag spurious violations. With an all-true mask these
/// coincide with the unfiltered predicates.
bool agreement_holds_among(const sim::RunResult& result, const std::vector<bool>& honest);
bool abort_validity_holds_among(const sim::RunResult& result,
                                const std::vector<int>& votes,
                                const std::vector<bool>& honest);

/// All three commit conditions at once; CHECK-fails with a description on
/// violation (used as a hard gate inside property tests).
void check_commit_conditions(const sim::RunResult& result, const std::vector<int>& votes,
                             Tick k);

}  // namespace rcommit::protocol
