// Protocol 2: the randomized transaction commit protocol.
//
// The paper's flow (§3.2), with line references in the implementation:
//   1. The coordinator (id 0) flips coins and broadcasts them in a GO message.
//   2. Everyone else waits for a GO (which rides piggybacked on *every*
//      message) and relays it: "I am participating."
//   3. Wait for n GO messages or 2K clock ticks; on timeout, switch the vote
//      to abort.
//   4. Broadcast the vote; wait for n vote messages or 2K clock ticks.
//   5. Input to Protocol 1: 1 iff n commit votes arrived in time, else 0.
//   6. Run Protocol 1 with the shared coins; COMMIT iff it returns 1.
//
// Correctness (Theorem 9): agreement always; abort validity under any timing;
// commit validity in failure-free on-time runs. Graceful degradation
// (Theorem 11): with more than t failures the protocol may block but never
// produces conflicting decisions.
#pragma once

#include <memory>
#include <optional>
#include <set>
#include <vector>

#include "common/types.h"
#include "protocol/agreement.h"
#include "protocol/messages.h"
#include "sim/process.h"

namespace rcommit::protocol {

class CommitProcess final : public sim::Process {
 public:
  struct Options {
    SystemParams params;
    /// This processor's initial vote: 1 = wants to commit, 0 = abort.
    int initial_vote = 1;
    /// Number of coins the coordinator flips. The paper uses n; flipping
    /// more lowers the expected stage count toward 3 (remark (3), §3.2).
    int32_t coin_count = 0;  ///< 0 = default to params.n
    HaltPolicy halt = HaltPolicy::kDecidedBroadcast;
  };

  explicit CommitProcess(Options options);

  void on_step(sim::StepContext& ctx, std::span<const sim::Envelope> delivered) override;

  [[nodiscard]] bool decided() const override { return core_ && core_->decided(); }
  [[nodiscard]] Decision decision() const override {
    return decision_from_bit(core_->decision_value());
  }
  [[nodiscard]] bool halted() const override { return core_ && core_->returned(); }

  /// Phase of the commit protocol, for tests and metrics.
  enum class Phase {
    kAwaitGo,       ///< line 2: waiting for a GO message
    kCollectGo,     ///< line 4: waiting for n GOs or 2K ticks
    kCollectVotes,  ///< line 8: waiting for n votes or 2K ticks
    kAgreement,     ///< line 12: inside Protocol 1
  };
  [[nodiscard]] Phase phase() const { return phase_; }

  /// The vote this processor carried into the protocol (may have been
  /// switched to abort by the GO timeout, line 6).
  [[nodiscard]] int current_vote() const { return vote_; }

  /// The value fed to Protocol 1 (lines 9-11); meaningful in kAgreement.
  [[nodiscard]] int agreement_input() const { return agreement_input_; }

  /// Protocol 1 instance (valid once phase() == kAgreement).
  [[nodiscard]] const AgreementCore* agreement_core() const { return core_.get(); }

  [[nodiscard]] bool is_coordinator() const { return id_ == 0; }

 private:
  void handle_message(sim::StepContext& ctx, const sim::Envelope& env);
  void maybe_transition(sim::StepContext& ctx);
  void enter_collect_go(sim::StepContext& ctx);
  void enter_collect_votes(sim::StepContext& ctx);
  void enter_agreement(sim::StepContext& ctx);
  /// Sends `inner` to everyone with the GO piggybacked (§3.2: "GO messages
  /// are piggybacked on every message sent, including those of Protocol 1").
  void broadcast_piggybacked(sim::StepContext& ctx, sim::MessageRef inner);

  Options options_;
  ProcId id_ = kNoProc;  ///< learned at the first step
  bool first_step_ = true;

  Phase phase_ = Phase::kAwaitGo;
  int vote_ = 1;
  bool have_coins_ = false;
  std::vector<uint8_t> coins_;
  std::set<ProcId> go_senders_;
  std::set<ProcId> vote_senders_;
  int commit_votes_ = 0;
  Tick window_start_ = 0;  ///< anchor of the current 2K timeout window (D3)

  int agreement_input_ = -1;
  std::unique_ptr<AgreementCore> core_;
  /// Agreement-layer messages that arrived before this processor reached
  /// line 12 (a fast peer can start Protocol 1 while we are still collecting
  /// votes); replayed into the core on entry.
  struct Stashed {
    ProcId from;
    sim::MessageRef payload;
  };
  std::vector<Stashed> stash_;
};

/// Builds the n processes of one Protocol 2 instance, one per processor id in
/// order, with the given initial votes (votes.size() == params.n).
std::vector<std::unique_ptr<sim::Process>> make_commit_fleet(
    const SystemParams& params, const std::vector<int>& votes,
    HaltPolicy halt = HaltPolicy::kDecidedBroadcast, int32_t coin_count = 0);

}  // namespace rcommit::protocol
