#include "protocol/invariants.h"

#include <algorithm>

#include "common/check.h"
#include "sim/ontime.h"

namespace rcommit::protocol {

bool agreement_holds(const sim::RunResult& result) {
  return !result.has_conflicting_decisions();
}

bool abort_validity_holds(const sim::RunResult& result, const std::vector<int>& votes) {
  const bool any_abort = std::any_of(votes.begin(), votes.end(),
                                     [](int v) { return v == 0; });
  if (!any_abort) return true;
  for (const auto& d : result.decisions) {
    if (d.has_value() && *d == Decision::kCommit) return false;
  }
  return true;
}

bool commit_validity_holds(const sim::RunResult& result, const std::vector<int>& votes,
                           Tick k) {
  const bool all_commit = std::all_of(votes.begin(), votes.end(),
                                      [](int v) { return v == 1; });
  if (!all_commit) return true;
  const bool failure_free = std::none_of(result.crashed.begin(), result.crashed.end(),
                                         [](bool c) { return c; });
  if (!failure_free) return true;
  if (!sim::is_on_time(result.trace, k)) return true;
  for (const auto& d : result.decisions) {
    if (!d.has_value() || *d != Decision::kCommit) return false;
  }
  return true;
}

bool agreement_validity_holds(const sim::RunResult& result,
                              const std::vector<int>& inputs) {
  const bool all_same = std::all_of(inputs.begin(), inputs.end(),
                                    [&](int v) { return v == inputs.front(); });
  if (!all_same || inputs.empty()) return true;
  const Decision expected = decision_from_bit(inputs.front());
  for (const auto& d : result.decisions) {
    if (d.has_value() && *d != expected) return false;
  }
  return true;
}

bool agreement_holds_among(const sim::RunResult& result,
                           const std::vector<bool>& honest) {
  RCOMMIT_CHECK(honest.size() == result.decisions.size());
  std::optional<Decision> seen;
  for (size_t p = 0; p < result.decisions.size(); ++p) {
    if (!honest[p]) continue;
    const auto& d = result.decisions[p];
    if (!d.has_value()) continue;
    if (seen.has_value() && *seen != *d) return false;
    seen = *d;
  }
  return true;
}

bool abort_validity_holds_among(const sim::RunResult& result,
                                const std::vector<int>& votes,
                                const std::vector<bool>& honest) {
  RCOMMIT_CHECK(honest.size() == votes.size());
  RCOMMIT_CHECK(honest.size() == result.decisions.size());
  bool any_honest_abort = false;
  for (size_t p = 0; p < votes.size(); ++p) {
    if (honest[p] && votes[p] == 0) any_honest_abort = true;
  }
  if (!any_honest_abort) return true;
  for (size_t p = 0; p < result.decisions.size(); ++p) {
    if (!honest[p]) continue;
    const auto& d = result.decisions[p];
    if (d.has_value() && *d == Decision::kCommit) return false;
  }
  return true;
}

void check_commit_conditions(const sim::RunResult& result, const std::vector<int>& votes,
                             Tick k) {
  RCOMMIT_CHECK_MSG(agreement_holds(result), "agreement condition violated");
  RCOMMIT_CHECK_MSG(abort_validity_holds(result, votes),
                    "abort validity condition violated");
  RCOMMIT_CHECK_MSG(commit_validity_holds(result, votes, k),
                    "commit validity condition violated");
}

}  // namespace rcommit::protocol
