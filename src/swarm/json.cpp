#include "swarm/json.h"

#include <cstdio>

namespace rcommit::swarm {

std::string JsonWriter::escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::comma_if_needed() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (!has_elements_.empty()) {
    if (has_elements_.back()) out_ += ',';
    has_elements_.back() = true;
  }
}

void JsonWriter::begin_object() {
  comma_if_needed();
  out_ += '{';
  has_elements_.push_back(false);
}

void JsonWriter::end_object() {
  has_elements_.pop_back();
  out_ += '}';
}

void JsonWriter::begin_array() {
  comma_if_needed();
  out_ += '[';
  has_elements_.push_back(false);
}

void JsonWriter::end_array() {
  has_elements_.pop_back();
  out_ += ']';
}

JsonWriter& JsonWriter::key(std::string_view name) {
  comma_if_needed();
  out_ += '"';
  out_ += escape(name);
  out_ += "\":";
  after_key_ = true;
  return *this;
}

void JsonWriter::value(std::string_view s) {
  comma_if_needed();
  out_ += '"';
  out_ += escape(s);
  out_ += '"';
}

void JsonWriter::value(int64_t v) {
  comma_if_needed();
  out_ += std::to_string(v);
}

void JsonWriter::value(uint64_t v) {
  comma_if_needed();
  out_ += std::to_string(v);
}

void JsonWriter::value(double v) {
  comma_if_needed();
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.4f", v);
  out_ += buf;
}

void JsonWriter::value(bool v) {
  comma_if_needed();
  out_ += v ? "true" : "false";
}

}  // namespace rcommit::swarm
