#include "swarm/shrink.h"

#include <algorithm>
#include <map>
#include <vector>

namespace rcommit::swarm {

sim::RecordedSchedule schedule_prefix(const sim::RecordedSchedule& schedule,
                                      size_t len) {
  sim::RecordedSchedule out;
  out.actions.assign(schedule.actions.begin(),
                     schedule.actions.begin() + static_cast<ptrdiff_t>(len));
  return out;
}

sim::RecordedSchedule schedule_without_range(const sim::RecordedSchedule& schedule,
                                             size_t begin, size_t end) {
  sim::RecordedSchedule out;
  out.actions.reserve(schedule.actions.size() - (end - begin));
  out.actions.insert(out.actions.end(), schedule.actions.begin(),
                     schedule.actions.begin() + static_cast<ptrdiff_t>(begin));
  out.actions.insert(out.actions.end(),
                     schedule.actions.begin() + static_cast<ptrdiff_t>(end),
                     schedule.actions.end());
  return out;
}

sim::RecordedSchedule schedule_without_deliveries(const sim::RecordedSchedule& schedule,
                                                  size_t begin, size_t end) {
  sim::RecordedSchedule out = schedule;
  for (size_t i = begin; i < end; ++i) out.actions[i].deliver.clear();
  return out;
}

sim::RecordedSchedule schedule_without_proc(const sim::RecordedSchedule& schedule,
                                            ProcId proc) {
  sim::RecordedSchedule out;
  out.actions.reserve(schedule.actions.size());
  for (const auto& action : schedule.actions) {
    if (action.proc != proc) out.actions.push_back(action);
  }
  return out;
}

sim::RecordedSchedule shrink_schedule(
    const sim::RecordedSchedule& original,
    const std::function<CandidateOutcome(const sim::RecordedSchedule&)>& test,
    const ShrinkOptions& options, ShrinkStats* stats) {
  int evals = 0;
  const auto violates = [&](const sim::RecordedSchedule& candidate) {
    ++evals;
    return test(candidate) == CandidateOutcome::kViolates;
  };
  const auto budget_left = [&] { return evals < options.max_evals; };
  const auto record_stats = [&](const sim::RecordedSchedule& result) {
    if (stats != nullptr) {
      stats->evals = evals;
      stats->original_actions = original.actions.size();
      stats->shrunk_actions = result.actions.size();
    }
    return result;
  };

  if (!violates(original)) return record_stats(original);

  // Phase 1 — shortest violating prefix, by bisection. The invariant is that
  // prefix(hi) is confirmed violating; the oracle need not be monotone for
  // the result to be a genuine violation, only for it to be the global
  // minimum prefix.
  size_t lo = 0;
  size_t hi = original.actions.size();
  while (lo < hi && budget_left()) {
    const size_t mid = lo + (hi - lo) / 2;
    if (violates(schedule_prefix(original, mid))) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  sim::RecordedSchedule current = schedule_prefix(original, hi);

  // Phase 2 — delivery stripping. Removing an interior action shifts every
  // later message id, so the remaining deliver sets reference ids that no
  // longer line up and the replay diverges. Clearing deliver sets first
  // (wholesale, then by halving chunks) removes those references wherever the
  // violation does not actually depend on the deliveries, unlocking phase 3.
  if (auto candidate = schedule_without_deliveries(current, 0, current.actions.size());
      budget_left() && violates(candidate)) {
    current = std::move(candidate);
  } else {
    for (size_t chunk = std::max<size_t>(current.actions.size() / 2, 1); chunk >= 1;
         chunk /= 2) {
      for (size_t begin = 0; begin < current.actions.size() && budget_left();
           begin += chunk) {
        const size_t end = std::min(begin + chunk, current.actions.size());
        auto stripped = schedule_without_deliveries(current, begin, end);
        if (violates(stripped)) current = std::move(stripped);
      }
      if (chunk == 1) break;
    }
  }

  // Phase 3 — processor elimination: drop every action of one processor at a
  // time, heaviest footprint first. Counterexamples usually involve a small
  // cast; trying the biggest contributors first keeps cheap-but-essential
  // processors (greedy set-cover) and removes bystanders in one evaluation
  // each.
  {
    std::map<ProcId, size_t> footprint;
    for (const auto& action : current.actions) ++footprint[action.proc];
    std::vector<ProcId> procs;
    procs.reserve(footprint.size());
    for (const auto& [proc, count] : footprint) procs.push_back(proc);
    std::sort(procs.begin(), procs.end(), [&](ProcId a, ProcId b) {
      return footprint[a] != footprint[b] ? footprint[a] > footprint[b] : a < b;
    });
    for (const ProcId p : procs) {
      if (!budget_left()) break;
      auto candidate = schedule_without_proc(current, p);
      if (candidate.actions.size() < current.actions.size() && violates(candidate)) {
        current = std::move(candidate);
      }
    }
  }

  // Phase 4 — ddmin: remove chunks at halving granularity until no single
  // action can be removed (1-minimality) or the budget runs out. Removing an
  // interior chunk usually shifts message ids and diverges on replay; the
  // oracle classifies those candidates kInvalid and they are skipped.
  for (size_t chunk = std::max<size_t>(current.actions.size() / 2, 1); chunk >= 1;
       chunk /= 2) {
    bool removed_any = true;
    while (removed_any && budget_left()) {
      removed_any = false;
      for (size_t begin = 0; begin < current.actions.size() && budget_left();) {
        const size_t end = std::min(begin + chunk, current.actions.size());
        auto candidate = schedule_without_range(current, begin, end);
        if (violates(candidate)) {
          current = std::move(candidate);
          removed_any = true;  // retry the same offset against the new tail
        } else {
          begin = end;
        }
      }
    }
    if (chunk == 1) break;
  }

  return record_stats(current);
}

std::vector<size_t> ddmin_keep(
    size_t count, const std::function<bool(const std::vector<size_t>&)>& violates,
    const ShrinkOptions& options, int* evals) {
  int eval_count = 0;
  const auto check = [&](const std::vector<size_t>& keep) {
    ++eval_count;
    return violates(keep);
  };
  const auto budget_left = [&] { return eval_count < options.max_evals; };

  std::vector<size_t> current(count);
  for (size_t i = 0; i < count; ++i) current[i] = i;

  const auto finish = [&](std::vector<size_t> result) {
    if (evals != nullptr) *evals = eval_count;
    return result;
  };

  if (!check(current)) return finish(current);

  // Remove chunks at halving granularity until 1-minimal or out of budget —
  // the same loop structure as shrink_schedule's phase 4, over indices.
  for (size_t chunk = std::max<size_t>(current.size() / 2, 1); chunk >= 1;
       chunk /= 2) {
    bool removed_any = true;
    while (removed_any && budget_left()) {
      removed_any = false;
      for (size_t begin = 0; begin < current.size() && budget_left();) {
        const size_t end = std::min(begin + chunk, current.size());
        std::vector<size_t> candidate;
        candidate.reserve(current.size() - (end - begin));
        candidate.insert(candidate.end(), current.begin(),
                         current.begin() + static_cast<ptrdiff_t>(begin));
        candidate.insert(candidate.end(),
                         current.begin() + static_cast<ptrdiff_t>(end),
                         current.end());
        if (check(candidate)) {
          current = std::move(candidate);
          removed_any = true;  // retry the same offset against the new tail
        } else {
          begin = end;
        }
      }
    }
    if (chunk == 1) break;
  }
  return finish(current);
}

}  // namespace rcommit::swarm
