// One swarm cell, executed and gated.
//
// run_cell drives a cell's run through sim::Simulator with the schedule
// recorded, then gates the finished run on the paper's correctness
// conditions (protocol/invariants.h). Every CheckFailure raised anywhere in
// the run — including RunResult::agreed_decision() throwing on conflicting
// decisions — is converted into a reported violation so one bad run can
// never tear down the worker pool.
#pragma once

#include <string>
#include <vector>

#include "sim/batch.h"
#include "sim/replay.h"
#include "sim/simulator.h"
#include "swarm/matrix.h"

namespace rcommit::swarm {

/// Everything the swarm keeps about one finished cell run.
struct CellOutcome {
  CellConfig config;
  sim::RunStatus status = sim::RunStatus::kEventLimit;

  /// A gated invariant failed (or a CheckFailure escaped the run). The
  /// recorded schedule below reproduces it.
  bool violation = false;
  std::string violation_detail;

  /// A synchronous baseline diverged under an adversary it is not guaranteed
  /// safe against — the paper's §1 criticism, counted but not gating.
  bool expected_divergence = false;

  // Measurements of clean runs (violation == false). Round/tick/stage values
  // are only meaningful when all_decided; rounds and late_messages
  // additionally require `measured` (they are trace analyses, skipped on the
  // trace-off fast path).
  bool all_decided = false;
  bool measured = false;
  int rounds = 0;
  Tick ticks = 0;
  int stages = 0;
  int64_t events = 0;
  int64_t messages = 0;
  int64_t late_messages = 0;

  /// The recorded action sequence; populated only on violation (it is the
  /// shrinker's input and the artifact's payload).
  sim::RecordedSchedule schedule;

  // Filled in by the swarm driver when the violation is shrunk/archived.
  sim::RecordedSchedule shrunk_schedule;
  std::string artifact_path;
};

struct CellRunOptions {
  /// Record the run's trace and compute the trace-derived measurements
  /// (asynchronous rounds, lateness counts). When false — the swarm sweep's
  /// default — the simulator runs trace-free except for cells whose safety
  /// gate genuinely needs the trace (commit-validity's on-time check), which
  /// is what makes large sweeps allocation-light. Ticks, stages, events and
  /// messages are reported either way.
  bool measure = true;
  /// Populate outcome.schedule on clean runs too (normally it is kept only
  /// for violations). The coverage search stores every novel run's schedule
  /// in its corpus, violating or not.
  bool record_schedule = false;
  /// When non-null, receives the finished RunResult (moved; empty on a
  /// mid-run CheckFailure). The coverage fingerprint reads the per-processor
  /// decision/crash pattern, which CellOutcome does not carry.
  sim::RunResult* result_out = nullptr;
};

/// Runs one cell to completion. Never throws: protocol/invariant failures
/// come back as outcome.violation. The single-argument overload measures
/// (trace on) — the right default for direct inspection and tests. The
/// BatchRunner overload executes the identical run on the caller's warm
/// engine (byte-identical per tests/batch_equivalence_test.cpp); sweeps and
/// searches use it to amortize per-run setup, one runner per worker thread.
///
/// Thread-safety: these are functions of their arguments with no shared
/// state, so there is no capability to annotate (cf.
/// common/thread_annotations.h). The BatchRunner overloads rely on thread
/// confinement instead — a runner has no internal locking and must never be
/// shared across workers (WorkStealingPool gives each worker its own).
[[nodiscard]] CellOutcome run_cell(const CellConfig& config);
[[nodiscard]] CellOutcome run_cell(const CellConfig& config,
                                   const CellRunOptions& options);
[[nodiscard]] CellOutcome run_cell(const CellConfig& config,
                                   const CellRunOptions& options,
                                   sim::BatchRunner& runner);

/// Runs a cell whose schedule is forced by `adversary` instead of the cell's
/// own (kind-derived) adversary — the coverage search's mutation replays.
/// The adversary is wrapped in a RecordingAdversary, so outcome.schedule
/// (with record_schedule) holds the schedule as actually executed.
[[nodiscard]] CellOutcome run_cell_with_adversary(
    const CellConfig& config, std::unique_ptr<sim::Adversary> adversary,
    const CellRunOptions& options, sim::BatchRunner& runner);

/// Checks the gated invariants for this cell against a finished run. Returns
/// an empty string when everything holds, else a description of the first
/// violated condition. Non-gating cells (see cell_guarantees_safety) always
/// return empty.
[[nodiscard]] std::string gate_violation(const CellConfig& config,
                                         const std::vector<int>& votes,
                                         const sim::RunResult& result);

/// Replays a recorded schedule against the cell's initial configuration.
/// Throws CheckFailure when the replay diverges (an action becomes
/// inapplicable against the rebuilt fleet).
[[nodiscard]] sim::RunResult replay_schedule(const CellConfig& config,
                                             const sim::RecordedSchedule& schedule);

/// True iff replaying `schedule` on this cell still produces a gated
/// violation (divergence counts as "no"). This is the predicate the shrinker
/// and the artifact-replay command share. The BatchRunner overload serves
/// shrink loops, which evaluate thousands of candidates per counterexample.
[[nodiscard]] bool replay_still_violates(const CellConfig& config,
                                         const sim::RecordedSchedule& schedule);
[[nodiscard]] bool replay_still_violates(const CellConfig& config,
                                         const sim::RecordedSchedule& schedule,
                                         sim::BatchRunner& runner);

}  // namespace rcommit::swarm
