// Automatic counterexample shrinking.
//
// A swarm-found violation arrives as a raw recorded schedule, often hundreds
// of actions long, most of them irrelevant. shrink_schedule reduces it to a
// locally-minimal still-violating schedule by (1) bisecting for the shortest
// violating prefix — prefixes of a valid schedule are always replayable —
// (2) clearing deliver sets so later removals cannot dangle message ids,
// (3) eliminating whole processors, heaviest footprint first, and
// (4) delta-debugging chunk removal (ddmin) at halving granularity down to
// single actions. Candidates are judged by a caller-supplied oracle, which
// for swarm cells is "replay against the rebuilt fleet and re-check the
// gate" (runner.h); a replay that diverges is simply an invalid candidate,
// not a reproduction.
#pragma once

#include <functional>

#include "sim/replay.h"

namespace rcommit::swarm {

/// What replaying one shrink candidate produced.
enum class CandidateOutcome {
  kViolates,     ///< the violation still reproduces — candidate acceptable
  kNoViolation,  ///< clean run — candidate rejected
  kInvalid,      ///< replay diverged (action inapplicable) — candidate rejected
};

struct ShrinkOptions {
  /// Cap on oracle evaluations; shrinking is best-effort within the budget.
  int max_evals = 4000;
};

struct ShrinkStats {
  int evals = 0;
  size_t original_actions = 0;
  size_t shrunk_actions = 0;
};

// --- Schedule-edit substrate -----------------------------------------------
// The primitive edits the shrinker's phases are built from, exposed so other
// schedule transformers — the coverage search's mutation operators
// (swarm/coverage.h) — compose the exact same moves. Each returns a new
// schedule; the input is never modified.

/// The first `len` actions (len <= size).
[[nodiscard]] sim::RecordedSchedule schedule_prefix(
    const sim::RecordedSchedule& schedule, size_t len);

/// Everything except actions [begin, end).
[[nodiscard]] sim::RecordedSchedule schedule_without_range(
    const sim::RecordedSchedule& schedule, size_t begin, size_t end);

/// The same actions with the deliver sets of [begin, end) cleared.
[[nodiscard]] sim::RecordedSchedule schedule_without_deliveries(
    const sim::RecordedSchedule& schedule, size_t begin, size_t end);

/// Every action not belonging to `proc`.
[[nodiscard]] sim::RecordedSchedule schedule_without_proc(
    const sim::RecordedSchedule& schedule, ProcId proc);

/// Returns a locally-minimal schedule on which `test` still reports
/// kViolates. If the original itself does not violate (oracle disagreement),
/// it is returned unchanged. The result is always a confirmed-violating
/// schedule except in that degenerate case.
[[nodiscard]] sim::RecordedSchedule shrink_schedule(
    const sim::RecordedSchedule& original,
    const std::function<CandidateOutcome(const sim::RecordedSchedule&)>& test,
    const ShrinkOptions& options = {}, ShrinkStats* stats = nullptr);

/// Generic ddmin over an abstract action list: given `count` items and an
/// oracle judging a kept-index subset (indices ascending), returns a locally
/// 1-minimal subset of [0, count) on which `violates` still holds. This is
/// shrink_schedule's phase-4 engine factored out for other schedule-shaped
/// axes — the fault-injection layer shrinks crash plans (FaultPlan actions)
/// through it, so a seeded multi-fault counterexample reduces to the few
/// faults that matter. If the full set does not violate, it is returned
/// unchanged. `evals`, when non-null, receives the oracle call count.
[[nodiscard]] std::vector<size_t> ddmin_keep(
    size_t count, const std::function<bool(const std::vector<size_t>&)>& violates,
    const ShrinkOptions& options = {}, int* evals = nullptr);

}  // namespace rcommit::swarm
