#include "swarm/artifacts.h"

#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/check.h"

namespace rcommit::swarm {

namespace fs = std::filesystem;

namespace {

void write_file(const fs::path& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  RCOMMIT_CHECK_MSG(out.good(), "cannot write " << path.string());
  out << content;
  RCOMMIT_CHECK_MSG(out.good(), "short write to " << path.string());
}

std::string read_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  RCOMMIT_CHECK_MSG(in.good(), "cannot read " << path.string());
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

}  // namespace

std::string write_artifact(const std::string& root, const Artifact& artifact,
                           const std::string& dir_name) {
  const fs::path dir =
      fs::path(root) / (dir_name.empty() ? artifact.config.id() : dir_name);
  fs::create_directories(dir);

  write_file(dir / "config.txt", artifact.config.serialize());
  write_file(dir / "violation.txt", artifact.violation + "\n");
  write_file(dir / "schedule.txt", artifact.schedule.serialize());
  if (!artifact.original_schedule.actions.empty()) {
    write_file(dir / "schedule_original.txt", artifact.original_schedule.serialize());
  }

  std::ostringstream readme;
  readme << "Swarm counterexample: " << artifact.config.id() << "\n"
         << "Violation: " << artifact.violation << "\n"
         << "Shrunken schedule: " << artifact.schedule.actions.size()
         << " actions (recorded: " << artifact.original_schedule.actions.size()
         << ")\n\nReproduce with:\n  swarm_cli --replay=" << dir.string() << "\n";
  write_file(dir / "README.txt", readme.str());

  return dir.string();
}

Artifact load_artifact(const std::string& dir) {
  const fs::path path(dir);
  Artifact artifact;
  artifact.config = CellConfig::deserialize(read_file(path / "config.txt"));
  artifact.schedule = sim::RecordedSchedule::deserialize(read_file(path / "schedule.txt"));
  if (fs::exists(path / "violation.txt")) {
    auto text = read_file(path / "violation.txt");
    while (!text.empty() && (text.back() == '\n' || text.back() == '\r')) {
      text.pop_back();
    }
    artifact.violation = text;
  }
  if (fs::exists(path / "schedule_original.txt")) {
    artifact.original_schedule =
        sim::RecordedSchedule::deserialize(read_file(path / "schedule_original.txt"));
  }
  return artifact;
}

}  // namespace rcommit::swarm
