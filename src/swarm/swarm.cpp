#include "swarm/swarm.h"

#include <chrono>
#include <optional>

#include "common/check.h"

#include "swarm/artifacts.h"
#include "swarm/json.h"
#include "swarm/pool.h"
#include "swarm/shrink.h"

namespace rcommit::swarm {

namespace {

void emit_samples(JsonWriter& json, const char* name, const Samples& samples) {
  json.key(name);
  json.begin_object();
  json.key("count").value(samples.count());
  json.key("mean").value(samples.mean());
  json.key("p99").value(samples.percentile(0.99));
  json.key("max").value(samples.max());
  json.end_object();
}

void emit_matrix(JsonWriter& json, const MatrixSpec& spec) {
  json.key("matrix");
  json.begin_object();
  json.key("protocols");
  json.begin_array();
  for (auto p : spec.protocols) json.value(to_string(p));
  json.end_array();
  json.key("adversaries");
  json.begin_array();
  for (auto a : spec.adversaries) json.value(to_string(a));
  json.end_array();
  json.key("ns");
  json.begin_array();
  for (auto n : spec.ns) json.value(static_cast<int64_t>(n));
  json.end_array();
  json.key("seeds_per_cell").value(static_cast<int64_t>(spec.seeds_per_cell));
  json.key("base_seed").value(spec.base_seed);
  json.key("k").value(static_cast<int64_t>(spec.k));
  json.key("max_events").value(spec.max_events);
  json.end_object();
}

void emit_aggregate_body(JsonWriter& json, const SwarmSummary& summary,
                         const MatrixSpec& spec) {
  emit_matrix(json, spec);
  json.key("cells_total").value(summary.cells_total);
  json.key("runs_executed").value(summary.runs_executed);
  json.key("runs_skipped").value(summary.runs_skipped);
  json.key("violations").value(summary.violations);
  json.key("expected_divergence").value(summary.expected_divergence);

  json.key("groups");
  json.begin_array();
  for (const auto& group : summary.groups) {
    json.begin_object();
    json.key("protocol").value(to_string(group.protocol));
    json.key("adversary").value(to_string(group.adversary));
    json.key("runs").value(group.runs);
    json.key("decided").value(group.decided);
    json.key("censored").value(group.censored);
    json.key("violations").value(group.violations);
    json.key("expected_divergence").value(group.expected_divergence);
    emit_samples(json, "rounds", group.rounds);
    emit_samples(json, "ticks", group.ticks);
    emit_samples(json, "stages", group.stages);
    emit_samples(json, "events", group.events);
    emit_samples(json, "messages", group.messages);
    json.end_object();
  }
  json.end_array();

  json.key("violation_reports");
  json.begin_array();
  for (const auto& report : summary.violation_reports) {
    json.begin_object();
    json.key("cell").value(report.config.id());
    json.key("detail").value(report.detail);
    json.key("original_actions").value(static_cast<int64_t>(report.original_actions));
    json.key("shrunk_actions").value(static_cast<int64_t>(report.shrunk_actions));
    json.key("artifact").value(report.artifact_path);
    json.end_object();
  }
  json.end_array();
}

}  // namespace

std::string SwarmSummary::aggregate_json(const MatrixSpec& spec) const {
  JsonWriter json;
  json.begin_object();
  emit_aggregate_body(json, *this, spec);
  json.end_object();
  return json.str();
}

std::string SwarmSummary::full_json(const MatrixSpec& spec) const {
  JsonWriter json;
  json.begin_object();
  emit_aggregate_body(json, *this, spec);
  json.key("perf");
  json.begin_object();
  json.key("threads").value(static_cast<int64_t>(threads));
  json.key("elapsed_seconds").value(elapsed_seconds);
  json.key("runs_per_second").value(runs_per_second);
  json.end_object();
  json.end_object();
  return json.str();
}

SwarmSummary run_swarm(const SwarmOptions& options) {
  const auto cells = enumerate_cells(options.matrix);
  std::vector<CellOutcome> outcomes(cells.size());

  std::optional<std::chrono::steady_clock::time_point> deadline;
  if (options.budget_seconds > 0) {
    deadline = std::chrono::steady_clock::now() +
               std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                   std::chrono::duration<double>(options.budget_seconds));
  }

  const auto started = std::chrono::steady_clock::now();
  WorkStealingPool pool(options.threads);
  const auto executed = pool.run(
      static_cast<int64_t>(cells.size()),
      [&](int64_t i) {
        // One warm engine per worker thread: the sweep's runs (and any
        // shrink replays below) amortize their setup on it. Workers die with
        // the pool, so the engines never outlive one run_swarm call; results
        // are byte-identical to per-run construction (batch_equivalence_test).
        thread_local sim::BatchRunner batch_runner;
        auto& outcome = outcomes[static_cast<size_t>(i)];
        outcome = run_cell(cells[static_cast<size_t>(i)],
                           CellRunOptions{.measure = options.measure}, batch_runner);
        if (!outcome.violation) return;

        // Shrink and archive inside the worker: each violating cell owns a
        // distinct artifact directory, so workers never contend.
        if (options.shrink && !outcome.schedule.actions.empty()) {
          outcome.shrunk_schedule = shrink_schedule(
              outcome.schedule,
              [&](const sim::RecordedSchedule& candidate) {
                return replay_still_violates(outcome.config, candidate, batch_runner)
                           ? CandidateOutcome::kViolates
                           : CandidateOutcome::kNoViolation;
              },
              {.max_evals = options.shrink_max_evals});
        } else {
          outcome.shrunk_schedule = outcome.schedule;
        }
        if (!options.artifacts_dir.empty()) {
          Artifact artifact;
          artifact.config = outcome.config;
          artifact.violation = outcome.violation_detail;
          artifact.schedule = outcome.shrunk_schedule;
          artifact.original_schedule = outcome.schedule;
          outcome.artifact_path = write_artifact(options.artifacts_dir, artifact);
        }
      },
      deadline);
  const auto elapsed = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                                     started)
                           .count();

  // Deterministic fold, in cell-enumeration order, over executed cells only.
  SwarmSummary summary;
  summary.cells_total = static_cast<int64_t>(cells.size());
  summary.threads = pool.threads();  // clamped, not the raw option
  summary.elapsed_seconds = elapsed;

  for (auto protocol : options.matrix.protocols) {
    for (auto adversary : options.matrix.adversaries) {
      if (!compatible(protocol, adversary)) continue;
      GroupAggregate group;
      group.protocol = protocol;
      group.adversary = adversary;
      summary.groups.push_back(std::move(group));
    }
  }
  const auto group_of = [&](const CellConfig& config) -> GroupAggregate& {
    for (auto& group : summary.groups) {
      if (group.protocol == config.protocol && group.adversary == config.adversary) {
        return group;
      }
    }
    RCOMMIT_CHECK_MSG(false, "cell without group: " << config.id());
  };

  for (size_t i = 0; i < cells.size(); ++i) {
    if (executed[i] == 0) {
      ++summary.runs_skipped;
      continue;
    }
    ++summary.runs_executed;
    const auto& outcome = outcomes[i];
    auto& group = group_of(outcome.config);
    ++group.runs;

    if (outcome.violation) {
      ++summary.violations;
      ++group.violations;
      ViolationReport report;
      report.config = outcome.config;
      report.detail = outcome.violation_detail;
      report.original_actions = outcome.schedule.actions.size();
      report.shrunk_actions = outcome.shrunk_schedule.actions.size();
      report.artifact_path = outcome.artifact_path;
      summary.violation_reports.push_back(std::move(report));
      continue;
    }
    if (outcome.expected_divergence) {
      ++summary.expected_divergence;
      ++group.expected_divergence;
    }
    if (outcome.status == sim::RunStatus::kEventLimit) ++group.censored;
    if (outcome.all_decided && !outcome.expected_divergence) {
      ++group.decided;
      // Rounds are a trace analysis; unmeasured (fast-path) runs have none.
      if (outcome.measured) group.rounds.add(static_cast<double>(outcome.rounds));
      group.ticks.add(static_cast<double>(outcome.ticks));
      group.stages.add(static_cast<double>(outcome.stages));
      group.events.add(static_cast<double>(outcome.events));
      group.messages.add(static_cast<double>(outcome.messages));
    }
  }

  summary.runs_per_second =
      elapsed > 0 ? static_cast<double>(summary.runs_executed) / elapsed : 0;
  return summary;
}

}  // namespace rcommit::swarm
