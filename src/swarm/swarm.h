// The swarm driver: sweep the matrix, gate every run, shrink every
// counterexample, aggregate deterministically.
//
// Workers (swarm/pool.h) execute cells concurrently; results land in
// per-cell slots and are folded in cell-enumeration order after the pool
// drains, so the aggregate section of the summary is byte-identical for any
// --threads value (the perf section, which contains wall-clock timing, is
// the only nondeterministic part and lives under its own key).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/stats.h"
#include "swarm/matrix.h"
#include "swarm/runner.h"

namespace rcommit::swarm {

struct SwarmOptions {
  MatrixSpec matrix;
  int threads = 1;
  /// Wall-clock budget in seconds; 0 = run every cell. When the budget
  /// expires, remaining cells are skipped (and counted), which makes the
  /// aggregate depend on timing — use no budget when determinism matters.
  double budget_seconds = 0;
  /// Where violation artifacts are written; empty = keep them in memory only.
  std::string artifacts_dir;
  bool shrink = true;
  int shrink_max_evals = 4000;
  /// Record traces and compute the trace-derived measurements (asynchronous
  /// rounds, lateness) for every cell. Off by default: the sweep's job is
  /// gating invariants, and the trace-off fast path runs the same schedules
  /// — byte-identically — at a fraction of the allocation cost. Cells whose
  /// safety gate needs the trace get one regardless.
  bool measure = false;
};

/// Aggregate over one (protocol, adversary) group, clean decided runs only.
struct GroupAggregate {
  ProtocolKind protocol = ProtocolKind::kCommit;
  AdversaryKind adversary = AdversaryKind::kOnTime;
  int64_t runs = 0;       ///< executed cells in this group
  int64_t decided = 0;    ///< runs where every nonfaulty processor decided
  int64_t censored = 0;   ///< runs stopped by the event budget
  int64_t violations = 0;
  int64_t expected_divergence = 0;
  Samples rounds;    ///< asynchronous rounds (Theorem 10's unit); only fed by
                     ///< measured runs (SwarmOptions::measure), else empty
  Samples ticks;     ///< max decide clock
  Samples stages;    ///< Protocol 1 stages (commit/benor fleets)
  Samples events;
  Samples messages;
};

struct ViolationReport {
  CellConfig config;
  std::string detail;
  size_t original_actions = 0;
  size_t shrunk_actions = 0;
  std::string artifact_path;  ///< empty when artifacts_dir was empty
};

struct SwarmSummary {
  int64_t cells_total = 0;
  int64_t runs_executed = 0;
  int64_t runs_skipped = 0;  ///< dropped by the wall-clock budget
  int64_t violations = 0;
  int64_t expected_divergence = 0;
  std::vector<GroupAggregate> groups;        ///< spec enumeration order
  std::vector<ViolationReport> violation_reports;

  // Perf (excluded from aggregate_json).
  int threads = 1;
  double elapsed_seconds = 0;
  double runs_per_second = 0;

  /// The deterministic part of the summary: matrix + counts + group stats +
  /// violation reports. Byte-identical across thread counts (budgetless runs).
  [[nodiscard]] std::string aggregate_json(const MatrixSpec& spec) const;
  /// aggregate_json plus the "perf" section.
  [[nodiscard]] std::string full_json(const MatrixSpec& spec) const;
};

[[nodiscard]] SwarmSummary run_swarm(const SwarmOptions& options);

}  // namespace rcommit::swarm
