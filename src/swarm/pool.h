// Work-stealing executor for the swarm.
//
// Jobs are integer indices into a fixed, pre-enumerated job list (the cell
// list), dealt round-robin onto per-worker deques. A worker pops from the
// back of its own deque and steals from the front of a victim's — the
// classic arrangement that keeps owner and thief on opposite ends. Because
// the job set is fixed up front, emptiness is monotone and a worker may exit
// as soon as one full sweep over every deque finds nothing.
//
// Determinism note: the pool makes no ordering promises; callers that need
// thread-count-independent results must write results into per-index slots
// and aggregate in index order afterwards (which is what swarm.cpp does).
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

namespace rcommit::swarm {

class WorkStealingPool {
 public:
  /// `threads` >= 1; clamped up to 1.
  explicit WorkStealingPool(int threads);

  /// Runs fn(i) for i in [0, count). If `deadline` is set, jobs that have
  /// not started by then are dropped. Returns one flag per job: true iff it
  /// executed. An exception escaping fn stops the pool and is rethrown on
  /// the calling thread after all workers join.
  std::vector<char> run(
      int64_t count, const std::function<void(int64_t)>& fn,
      std::optional<std::chrono::steady_clock::time_point> deadline = std::nullopt);

  [[nodiscard]] int threads() const { return threads_; }

 private:
  int threads_;
};

}  // namespace rcommit::swarm
