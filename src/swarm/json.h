// The deterministic JSON writer moved to src/common/json.h when the
// benchmark pipeline started emitting structured results through it too
// (src/metrics cannot depend on src/swarm — the dependency points the other
// way). This forwarding header keeps the historical include path and the
// rcommit::swarm spelling alive for the swarm's own emitters.
#pragma once

#include "common/json.h"

namespace rcommit::swarm {

using JsonWriter = ::rcommit::json::JsonWriter;

}  // namespace rcommit::swarm
