// Minimal deterministic JSON assembly for the swarm summary.
//
// The swarm promises byte-identical aggregate output across thread counts,
// so the writer is deliberately boring: explicit key order (insertion
// order), fixed "%.4f" formatting for doubles, no locale involvement, and
// full string escaping. Not a parser; output only.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace rcommit::swarm {

class JsonWriter {
 public:
  void begin_object();
  void end_object();
  void begin_array();
  void end_array();

  /// Key inside an object; must be followed by a value or container.
  JsonWriter& key(std::string_view name);

  void value(std::string_view s);
  void value(const char* s) { value(std::string_view(s)); }
  void value(int64_t v);
  void value(uint64_t v);
  void value(int v) { value(static_cast<int64_t>(v)); }
  void value(double v);
  void value(bool v);

  /// The assembled document. Valid once every container is closed.
  [[nodiscard]] const std::string& str() const { return out_; }

  static std::string escape(std::string_view s);

 private:
  void comma_if_needed();

  std::string out_;
  /// One entry per open container: true once it has at least one element.
  std::vector<bool> has_elements_;
  bool after_key_ = false;
};

}  // namespace rcommit::swarm
