// A deliberately unsound commit variant — TEST-ONLY.
//
// The swarm's violation → shrink → artifact pipeline needs a protocol that is
// *guaranteed* to break so the pipeline itself can be tested end to end
// (ISSUE acceptance: a shrunken counterexample ≤ 25% of the recording). This
// fleet plays that part: processor 0 decides COMMIT early, every other
// processor pads the run with beacon chatter for many steps and then decides,
// with the last processor deciding ABORT — a certain Agreement violation.
// The long chatter prefix is the point: most of the recorded schedule is
// irrelevant to the violation, giving the shrinker something to remove.
//
// ProtocolKind::kBroken maps here. It is parseable (so artifacts from broken
// runs can be replayed through swarm_cli --replay) but never listed in the
// CLI help and never a default.
#pragma once

#include <memory>
#include <vector>

#include "common/types.h"
#include "sim/process.h"

namespace rcommit::swarm {

class BrokenCommitProcess final : public sim::Process {
 public:
  struct Options {
    int32_t n = 5;
    /// Clock at which processor 0 decides (COMMIT).
    Tick early_decide_clock = 3;
    /// Clock at which the last processor decides (ABORT).
    Tick abort_decide_clock = 10;
    /// Clock at which everyone else decides (COMMIT).
    Tick late_decide_clock = 40;
  };

  explicit BrokenCommitProcess(Options options) : options_(options) {}

  void on_step(sim::StepContext& ctx, std::span<const sim::Envelope> delivered) override;

  [[nodiscard]] bool decided() const override { return decision_.has_value(); }
  [[nodiscard]] Decision decision() const override { return *decision_; }
  [[nodiscard]] bool halted() const override { return decided(); }

 private:
  Options options_;
  std::optional<Decision> decision_;
};

/// The n-process broken fleet.
[[nodiscard]] std::vector<std::unique_ptr<sim::Process>> make_broken_fleet(
    int32_t n, Tick early_decide_clock = 3, Tick abort_decide_clock = 10,
    Tick late_decide_clock = 40);

}  // namespace rcommit::swarm
