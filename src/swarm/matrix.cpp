#include "swarm/matrix.h"

#include <sstream>

#include "adversary/adaptive.h"
#include "adversary/basic.h"
#include "adversary/crash.h"
#include "adversary/latemsg.h"
#include "adversary/omniscient.h"
#include "adversary/partition.h"
#include "adversary/stretch.h"
#include "baselines/benor.h"
#include "baselines/bftcommit.h"
#include "baselines/paxoscommit.h"
#include "baselines/q3pc.h"
#include "baselines/twopc.h"
#include "common/check.h"
#include "common/rng.h"
#include "protocol/commit.h"
#include "swarm/broken.h"

namespace rcommit::swarm {

const char* to_string(ProtocolKind p) {
  switch (p) {
    case ProtocolKind::kCommit: return "commit";
    case ProtocolKind::kBenor: return "benor";
    case ProtocolKind::kTwoPc: return "twopc";
    case ProtocolKind::kQ3pc: return "q3pc";
    case ProtocolKind::kBroken: return "broken";
    case ProtocolKind::kPaxosCommit: return "paxoscommit";
    case ProtocolKind::kBftCommit: return "bftcommit";
  }
  return "?";
}

const char* to_string(AdversaryKind a) {
  switch (a) {
    case AdversaryKind::kOnTime: return "ontime";
    case AdversaryKind::kRandom: return "random";
    case AdversaryKind::kCrash: return "crash";
    case AdversaryKind::kLateMsg: return "latemsg";
    case AdversaryKind::kPartition: return "partition";
    case AdversaryKind::kStretch: return "stretch";
    case AdversaryKind::kAdaptive: return "adaptive";
    case AdversaryKind::kOmniscient: return "omniscient";
    case AdversaryKind::kByzantine: return "byzantine";
  }
  return "?";
}

ProtocolKind parse_protocol_kind(const std::string& name) {
  for (auto p : {ProtocolKind::kCommit, ProtocolKind::kBenor, ProtocolKind::kTwoPc,
                 ProtocolKind::kQ3pc, ProtocolKind::kBroken,
                 ProtocolKind::kPaxosCommit, ProtocolKind::kBftCommit}) {
    if (name == to_string(p)) return p;
  }
  RCOMMIT_CHECK_MSG(false, "unknown protocol: " << name);
}

AdversaryKind parse_adversary_kind(const std::string& name) {
  for (auto a : {AdversaryKind::kOnTime, AdversaryKind::kRandom, AdversaryKind::kCrash,
                 AdversaryKind::kLateMsg, AdversaryKind::kPartition,
                 AdversaryKind::kStretch, AdversaryKind::kAdaptive,
                 AdversaryKind::kOmniscient, AdversaryKind::kByzantine}) {
    if (name == to_string(a)) return a;
  }
  RCOMMIT_CHECK_MSG(false, "unknown adversary: " << name);
}

bool compatible(ProtocolKind protocol, AdversaryKind adversary) {
  if (adversary == AdversaryKind::kOmniscient) return protocol == ProtocolKind::kBenor;
  return true;
}

bool cell_guarantees_safety(ProtocolKind protocol, AdversaryKind adversary) {
  switch (protocol) {
    case ProtocolKind::kCommit:
    case ProtocolKind::kBenor:
      // Safe under any timing and any (≤ t) crash load — but defined in the
      // crash-fault model only; a Byzantine traitor is outside their claims.
      return adversary != AdversaryKind::kByzantine;
    case ProtocolKind::kBroken:
      return true;
    case ProtocolKind::kTwoPc:
    case ProtocolKind::kQ3pc:
      // The synchronous baselines are only guaranteed safe when the timing
      // assumptions hold and nothing fails (paper §1).
      return adversary == AdversaryKind::kOnTime;
    case ProtocolKind::kPaxosCommit:
      // A Paxos safety argument: any timing, any message lateness, any ≤ t
      // crash load — but crash-fault model only, like Protocol 2.
      return adversary != AdversaryKind::kByzantine;
    case ProtocolKind::kBftCommit:
      // Safe against everything the swarm can throw, including up to
      // (n-1)/3 Byzantine traitors (the gate quantifies over honest
      // processors in Byzantine cells, see runner.cpp).
      return true;
  }
  return false;
}

std::string CellConfig::serialize() const {
  std::ostringstream os;
  os << "protocol=" << to_string(protocol) << '\n'
     << "adversary=" << to_string(adversary) << '\n'
     << "n=" << n << '\n'
     << "t=" << t << '\n'
     << "k=" << k << '\n'
     << "seed=" << seed << '\n'
     << "max_events=" << max_events << '\n';
  return os.str();
}

CellConfig CellConfig::deserialize(const std::string& text) {
  CellConfig config;
  std::istringstream is(text);
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty() || line[0] == '#') continue;
    const auto eq = line.find('=');
    RCOMMIT_CHECK_MSG(eq != std::string::npos, "malformed config line: " << line);
    const auto key = line.substr(0, eq);
    const auto value = line.substr(eq + 1);
    if (key == "protocol") {
      config.protocol = parse_protocol_kind(value);
    } else if (key == "adversary") {
      config.adversary = parse_adversary_kind(value);
    } else if (key == "n") {
      config.n = static_cast<int32_t>(std::stol(value));
    } else if (key == "t") {
      config.t = static_cast<int32_t>(std::stol(value));
    } else if (key == "k") {
      config.k = std::stoll(value);
    } else if (key == "seed") {
      config.seed = std::stoull(value);
    } else if (key == "max_events") {
      config.max_events = std::stoll(value);
    } else {
      RCOMMIT_CHECK_MSG(false, "unknown config key: " << key);
    }
  }
  return config;
}

std::string CellConfig::id() const {
  std::ostringstream os;
  os << to_string(protocol) << '-' << to_string(adversary) << "-n" << n << "-s" << seed;
  return os.str();
}

namespace {

/// Mixes one coordinate into a seed. Chained SplitMix64 keeps every cell's
/// seed stable when a value is appended to some other axis of the spec.
uint64_t mix(uint64_t h, uint64_t coord) {
  return SplitMix64(h ^ (coord + 0x9e3779b97f4a7c15ULL)).next();
}

}  // namespace

std::vector<CellConfig> enumerate_cells(const MatrixSpec& spec) {
  std::vector<CellConfig> cells;
  for (auto protocol : spec.protocols) {
    for (auto adversary : spec.adversaries) {
      if (!compatible(protocol, adversary)) continue;
      for (auto n : spec.ns) {
        for (int s = 0; s < spec.seeds_per_cell; ++s) {
          CellConfig config;
          config.protocol = protocol;
          config.adversary = adversary;
          config.n = n;
          config.t = (n - 1) / 2;
          config.k = spec.k;
          config.max_events = spec.max_events;
          uint64_t h = mix(spec.base_seed, static_cast<uint64_t>(protocol));
          h = mix(h, static_cast<uint64_t>(adversary));
          h = mix(h, static_cast<uint64_t>(n));
          config.seed = mix(h, static_cast<uint64_t>(s));
          cells.push_back(config);
        }
      }
    }
  }
  return cells;
}

std::vector<int> cell_votes(const CellConfig& config) {
  RandomTape tape(config.seed ^ 0x70763ULL);
  std::vector<int> votes(static_cast<size_t>(config.n));
  for (auto& v : votes) v = tape.flip();
  return votes;
}

std::vector<adversary::ByzantinePlan> cell_byzantine_plans(const CellConfig& config) {
  if (config.adversary != AdversaryKind::kByzantine) return {};
  // Victim count capped at (n-1)/3 — the BFT resilience bound — so the one
  // protocol that claims Byzantine safety is gated within its own claim.
  const int32_t fmax = (config.n - 1) / 3;
  if (fmax <= 0) return {};
  RandomTape tape(config.seed ^ 0xb12a7ULL);
  const int count = 1 + static_cast<int>(tape.next_below(static_cast<uint64_t>(fmax)));
  return adversary::random_byzantine_plans(config.seed ^ 0xb12a7badULL, config.n,
                                           count, /*max_start_clock=*/8 * config.k);
}

namespace {

std::vector<std::unique_ptr<sim::Process>> make_honest_fleet(
    const CellConfig& config, const std::vector<int>& votes,
    const std::shared_ptr<adversary::BroadcastSpy>& spy) {
  const SystemParams params{.n = config.n, .t = config.t, .k = config.k};
  std::vector<std::unique_ptr<sim::Process>> fleet;
  switch (config.protocol) {
    case ProtocolKind::kCommit:
      return protocol::make_commit_fleet(params, votes);
    case ProtocolKind::kBenor:
      for (int32_t i = 0; i < config.n; ++i) {
        protocol::SendObserver observer;
        if (spy != nullptr) {
          observer = [spy, i](Tick clock, int phase, int stage, int value) {
            spy->record(i, clock, adversary::SpiedSend{phase, stage, value});
          };
        }
        fleet.push_back(baselines::make_benor_process(
            params, votes[static_cast<size_t>(i)], std::move(observer)));
      }
      return fleet;
    case ProtocolKind::kTwoPc:
      for (int32_t i = 0; i < config.n; ++i) {
        baselines::TwoPcProcess::Options options;
        options.params = params;
        options.initial_vote = votes[static_cast<size_t>(i)];
        options.policy = baselines::TwoPcTimeoutPolicy::kPresumeAbort;
        fleet.push_back(std::make_unique<baselines::TwoPcProcess>(options));
      }
      return fleet;
    case ProtocolKind::kQ3pc:
      for (int32_t i = 0; i < config.n; ++i) {
        baselines::Q3pcProcess::Options options;
        options.params = params;
        options.initial_vote = votes[static_cast<size_t>(i)];
        fleet.push_back(std::make_unique<baselines::Q3pcProcess>(options));
      }
      return fleet;
    case ProtocolKind::kBroken:
      return make_broken_fleet(config.n);
    case ProtocolKind::kPaxosCommit:
      for (int32_t i = 0; i < config.n; ++i) {
        baselines::PaxosCommitProcess::Options options;
        options.params = params;
        options.initial_vote = votes[static_cast<size_t>(i)];
        fleet.push_back(std::make_unique<baselines::PaxosCommitProcess>(options));
      }
      return fleet;
    case ProtocolKind::kBftCommit:
      for (int32_t i = 0; i < config.n; ++i) {
        baselines::BftCommitProcess::Options options;
        options.params = params;
        options.initial_vote = votes[static_cast<size_t>(i)];
        fleet.push_back(std::make_unique<baselines::BftCommitProcess>(options));
      }
      return fleet;
  }
  RCOMMIT_CHECK(false);
}

std::vector<std::unique_ptr<sim::Process>> make_fleet(
    const CellConfig& config, const std::vector<int>& votes,
    const std::shared_ptr<adversary::BroadcastSpy>& spy) {
  auto fleet = make_honest_fleet(config, votes, spy);
  // Byzantine victims are fleet-side wrappers, not an Adversary subclass: the
  // pattern-only adversary API cannot see (let alone rewrite) payloads, so
  // content attacks have to happen where the content lives. Both the live and
  // the replay fleet pass through here, so a recorded Byzantine schedule
  // replays against the same traitors.
  if (config.adversary == AdversaryKind::kByzantine) {
    adversary::wrap_byzantine(fleet, cell_byzantine_plans(config));
  }
  return fleet;
}

std::unique_ptr<sim::Adversary> make_adversary(
    const CellConfig& config, const std::shared_ptr<adversary::BroadcastSpy>& spy) {
  // All adversary randomness comes off one tape derived from the cell seed,
  // so the adversary is a pure function of the config.
  RandomTape tape(config.seed ^ 0xadc0ffeeULL);
  const uint64_t sub_seed = config.seed ^ 0xa5a5a5a5ULL;
  switch (config.adversary) {
    case AdversaryKind::kOnTime:
      return adversary::make_on_time_adversary();
    case AdversaryKind::kRandom:
      return adversary::make_random_adversary(
          sub_seed, 1 + static_cast<Tick>(tape.next_below(
                            static_cast<uint64_t>(3 * config.k))));
    case AdversaryKind::kCrash: {
      const int crashes =
          static_cast<int>(tape.next_below(static_cast<uint64_t>(config.t + 1)));
      auto plans = adversary::random_crash_plans(sub_seed + 7, config.n, crashes,
                                                 /*max_clock=*/12 * config.k);
      for (auto& p : plans) {
        if (p.victim == 0 && p.at_clock == 1 && p.suppress_sends_to.empty()) {
          p.at_clock = 2;  // keep the coordinator's GO alive (§2.4 exemption)
        }
      }
      return std::make_unique<adversary::CrashAdversary>(
          adversary::make_random_adversary(
              sub_seed + 1, 1 + static_cast<Tick>(tape.next_below(
                                    static_cast<uint64_t>(2 * config.k)))),
          std::move(plans));
    }
    case AdversaryKind::kLateMsg: {
      const int rule_count = 1 + static_cast<int>(tape.next_below(3));
      std::vector<adversary::LateRule> rules;
      for (int r = 0; r < rule_count; ++r) {
        adversary::LateRule rule;
        rule.from = static_cast<ProcId>(tape.next_below(static_cast<uint64_t>(config.n)));
        rule.to = static_cast<ProcId>(tape.next_below(static_cast<uint64_t>(config.n)));
        rule.nth = static_cast<int>(tape.next_below(4));
        rule.extra_delay = config.k + static_cast<Tick>(tape.next_below(
                                          static_cast<uint64_t>(3 * config.k)));
        rules.push_back(rule);
      }
      return std::make_unique<adversary::LateMessageAdversary>(std::move(rules));
    }
    case AdversaryKind::kPartition: {
      // A random proper nonempty subset on one side; the partition heals (the
      // inadmissible never-healing variant is for the blocking experiments,
      // not the swarm).
      std::vector<ProcId> group_a;
      for (ProcId p = 0; p < config.n; ++p) {
        if (tape.flip() == 1) group_a.push_back(p);
      }
      if (group_a.empty()) group_a.push_back(0);
      if (group_a.size() == static_cast<size_t>(config.n)) group_a.pop_back();
      const EventIndex heal = 40 + static_cast<EventIndex>(tape.next_below(120));
      return std::make_unique<adversary::PartitionAdversary>(std::move(group_a), heal);
    }
    case AdversaryKind::kStretch:
      return std::make_unique<adversary::DelayStretchAdversary>(
          2 * config.k + static_cast<Tick>(tape.next_below(
                             static_cast<uint64_t>(4 * config.k))));
    case AdversaryKind::kAdaptive:
      return std::make_unique<adversary::QuorumStallAdversary>(
          config.t, 16 + static_cast<Tick>(tape.next_below(32)), sub_seed);
    case AdversaryKind::kOmniscient:
      RCOMMIT_CHECK_MSG(spy != nullptr, "omniscient adversary requires a benor fleet");
      return std::make_unique<adversary::SplitVoteAdversary>(spy, config.t);
    case AdversaryKind::kByzantine:
      // Scheduling side only: a random fair schedule. The Byzantine content
      // attacks live in the fleet wrappers (see make_fleet), keeping this
      // adversary inside the pattern-only API like every other kind.
      return adversary::make_random_adversary(
          sub_seed + 3, 1 + static_cast<Tick>(tape.next_below(
                                static_cast<uint64_t>(2 * config.k))));
  }
  RCOMMIT_CHECK(false);
}

}  // namespace

CellSetup make_cell_setup(const CellConfig& config) {
  RCOMMIT_CHECK_MSG(compatible(config.protocol, config.adversary),
                    "incompatible cell: " << config.id());
  CellSetup setup;
  setup.votes = cell_votes(config);
  std::shared_ptr<adversary::BroadcastSpy> spy;
  if (config.adversary == AdversaryKind::kOmniscient) {
    spy = std::make_shared<adversary::BroadcastSpy>();
  }
  setup.fleet = make_fleet(config, setup.votes, spy);
  setup.adversary = make_adversary(config, spy);
  return setup;
}

std::vector<std::unique_ptr<sim::Process>> make_replay_fleet(const CellConfig& config) {
  // Replays ignore the spy: a ReplayAdversary never consults it, and the
  // observer side channel does not influence the processes themselves.
  return make_fleet(config, cell_votes(config), nullptr);
}

}  // namespace rcommit::swarm
