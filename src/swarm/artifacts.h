// Violation artifacts: one directory per counterexample.
//
//   <root>/<cell id>/
//     config.txt             the CellConfig (key=value; rebuilds fleet+votes)
//     violation.txt          one-line description of what broke
//     schedule.txt           the shrunken schedule (the counterexample)
//     schedule_original.txt  the raw recording, for forensics
//     README.txt             the one-command reproduction recipe
//
// Reproduce with:  swarm_cli --replay=<dir>
// The same format doubles as the regression-corpus format under
// tests/corpus/ (where schedule_original.txt is optional).
#pragma once

#include <string>

#include "sim/replay.h"
#include "swarm/matrix.h"

namespace rcommit::swarm {

struct Artifact {
  CellConfig config;
  std::string violation;  ///< one-line description; empty for corpus entries
  sim::RecordedSchedule schedule;           ///< the (shrunken) counterexample
  sim::RecordedSchedule original_schedule;  ///< raw recording; may be empty
};

/// Writes the artifact under `<root>/<dir_name>/` (default: the cell id),
/// creating directories as needed, and returns that directory's path.
std::string write_artifact(const std::string& root, const Artifact& artifact,
                           const std::string& dir_name = "");

/// Loads an artifact directory written by write_artifact (or a hand-made
/// corpus entry: config.txt + schedule.txt suffice). Throws CheckFailure on
/// missing/malformed files.
[[nodiscard]] Artifact load_artifact(const std::string& dir);

}  // namespace rcommit::swarm
