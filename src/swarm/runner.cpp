#include "swarm/runner.h"

#include <algorithm>
#include <memory>

#include "common/check.h"
#include "metrics/counters.h"
#include "protocol/agreement.h"
#include "protocol/commit.h"
#include "protocol/invariants.h"
#include "sim/ontime.h"
#include "sim/rounds.h"

namespace rcommit::swarm {

std::string gate_violation(const CellConfig& config, const std::vector<int>& votes,
                           const sim::RunResult& result) {
  if (!cell_guarantees_safety(config.protocol, config.adversary)) return "";
  switch (config.protocol) {
    case ProtocolKind::kCommit:
      if (!protocol::agreement_holds(result)) return "agreement violated";
      if (!protocol::abort_validity_holds(result, votes)) {
        return "abort validity violated";
      }
      if (!protocol::commit_validity_holds(result, votes, config.k)) {
        return "commit validity violated";
      }
      return "";
    case ProtocolKind::kBenor:
      if (!protocol::agreement_holds(result)) return "agreement violated";
      if (!protocol::agreement_validity_holds(result, votes)) {
        return "agreement validity violated";
      }
      return "";
    case ProtocolKind::kTwoPc:
    case ProtocolKind::kQ3pc:
      // Gated only under the on-time adversary (cell_guarantees_safety).
      if (!protocol::agreement_holds(result)) return "agreement violated";
      if (!protocol::abort_validity_holds(result, votes)) {
        return "abort validity violated";
      }
      if (!protocol::commit_validity_holds(result, votes, config.k)) {
        return "commit validity violated";
      }
      return "";
    case ProtocolKind::kBroken:
      // The broken variant claims (and fails) agreement only; validity noise
      // would muddy the shrinker tests.
      if (!protocol::agreement_holds(result)) return "agreement violated";
      return "";
  }
  return "";
}

namespace {

/// Largest Protocol 1 decision stage over the fleet; 0 when the protocol has
/// no agreement core (2PC/Q3PC/broken) or nobody reached it.
int max_decision_stage(const CellConfig& config,
                       const std::vector<std::unique_ptr<sim::Process>>& fleet) {
  int max_stage = 0;
  for (const auto& proc : fleet) {
    const protocol::AgreementCore* core = nullptr;
    if (config.protocol == ProtocolKind::kCommit) {
      core = dynamic_cast<const protocol::CommitProcess&>(*proc).agreement_core();
    } else if (config.protocol == ProtocolKind::kBenor) {
      core = &dynamic_cast<const protocol::AgreementProcess&>(*proc).core();
    }
    if (core != nullptr) max_stage = std::max(max_stage, core->decision_stage());
  }
  return max_stage;
}

}  // namespace

CellOutcome run_cell(const CellConfig& config) {
  CellOutcome outcome;
  outcome.config = config;
  try {
    auto setup = make_cell_setup(config);
    auto recorder =
        std::make_unique<sim::RecordingAdversary>(std::move(setup.adversary));
    auto* recorder_ptr = recorder.get();
    sim::Simulator sim({.seed = config.seed, .max_events = config.max_events},
                       std::move(setup.fleet), std::move(recorder));
    sim::RunResult result;
    try {
      result = sim.run();
    } catch (const CheckFailure& failure) {
      // Thrown mid-run (simulator validation, adversary bookkeeping): the
      // recorder is still alive inside `sim`, so the partial schedule can be
      // captured for the artifact.
      outcome.violation = true;
      outcome.violation_detail = std::string("CheckFailure: ") + failure.what();
      outcome.schedule = recorder_ptr->schedule();
      return outcome;
    }
    outcome.status = result.status;

    const auto detail = gate_violation(config, setup.votes, result);
    if (!detail.empty()) {
      outcome.violation = true;
      outcome.violation_detail = detail;
      outcome.schedule = recorder_ptr->schedule();
      return outcome;
    }
    outcome.expected_divergence = result.has_conflicting_decisions();

    outcome.all_decided = result.all_nonfaulty_decided();
    outcome.events = result.events;
    outcome.messages = result.messages_sent;
    outcome.late_messages = sim::late_message_count(result.trace, config.k);
    if (outcome.all_decided && !outcome.expected_divergence) {
      // measure_run calls agreed_decision(), which CHECK-fails on conflicting
      // decisions; divergent baseline runs skip the round/tick analysis.
      const auto m = metrics::measure_run(result, config.k);
      outcome.rounds = m.max_decision_round;
      outcome.ticks = m.max_decision_clock;
      outcome.stages = max_decision_stage(config, sim.processes());
    }
    return outcome;
  } catch (const CheckFailure& failure) {
    // A CheckFailure anywhere in the run — adversary bookkeeping, simulator
    // validation, or an invariant CHECK such as agreed_decision() — is a
    // finding to report, never a reason to kill the worker pool.
    outcome.violation = true;
    outcome.violation_detail = std::string("CheckFailure: ") + failure.what();
    return outcome;
  }
}

sim::RunResult replay_schedule(const CellConfig& config,
                               const sim::RecordedSchedule& schedule) {
  sim::Simulator sim({.seed = config.seed, .max_events = config.max_events},
                     make_replay_fleet(config),
                     std::make_unique<sim::ReplayAdversary>(schedule));
  return sim.run();
}

bool replay_still_violates(const CellConfig& config,
                           const sim::RecordedSchedule& schedule) {
  try {
    const auto result = replay_schedule(config, schedule);
    return !gate_violation(config, cell_votes(config), result).empty();
  } catch (const CheckFailure&) {
    return false;  // diverged — not a reproduction
  }
}

}  // namespace rcommit::swarm
