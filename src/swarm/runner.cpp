#include "swarm/runner.h"

#include <algorithm>
#include <memory>

#include "common/check.h"
#include "metrics/counters.h"
#include "protocol/agreement.h"
#include "protocol/commit.h"
#include "protocol/invariants.h"
#include "sim/ontime.h"
#include "sim/rounds.h"

namespace rcommit::swarm {

std::string gate_violation(const CellConfig& config, const std::vector<int>& votes,
                           const sim::RunResult& result) {
  if (!cell_guarantees_safety(config.protocol, config.adversary)) return "";
  switch (config.protocol) {
    case ProtocolKind::kCommit:
      if (!protocol::agreement_holds(result)) return "agreement violated";
      if (!protocol::abort_validity_holds(result, votes)) {
        return "abort validity violated";
      }
      if (!protocol::commit_validity_holds(result, votes, config.k)) {
        return "commit validity violated";
      }
      return "";
    case ProtocolKind::kBenor:
      if (!protocol::agreement_holds(result)) return "agreement violated";
      if (!protocol::agreement_validity_holds(result, votes)) {
        return "agreement validity violated";
      }
      return "";
    case ProtocolKind::kTwoPc:
    case ProtocolKind::kQ3pc:
      // Gated only under the on-time adversary (cell_guarantees_safety).
      if (!protocol::agreement_holds(result)) return "agreement violated";
      if (!protocol::abort_validity_holds(result, votes)) {
        return "abort validity violated";
      }
      if (!protocol::commit_validity_holds(result, votes, config.k)) {
        return "commit validity violated";
      }
      return "";
    case ProtocolKind::kBroken:
      // The broken variant claims (and fails) agreement only; validity noise
      // would muddy the shrinker tests.
      if (!protocol::agreement_holds(result)) return "agreement violated";
      return "";
    case ProtocolKind::kPaxosCommit:
      // Same guarantees as Protocol 2 (crash-fault model, any timing); only
      // gated on non-Byzantine cells, so the unfiltered predicates apply.
      if (!protocol::agreement_holds(result)) return "agreement violated";
      if (!protocol::abort_validity_holds(result, votes)) {
        return "abort validity violated";
      }
      if (!protocol::commit_validity_holds(result, votes, config.k)) {
        return "commit validity violated";
      }
      return "";
    case ProtocolKind::kBftCommit: {
      // Gated under every adversary including kByzantine, but the guarantees
      // quantify over honest processors only: a traitor's decision and vote
      // sit outside any claim a BFT protocol makes.
      std::vector<bool> honest(static_cast<size_t>(config.n), true);
      for (const auto& plan : cell_byzantine_plans(config)) {
        honest[static_cast<size_t>(plan.victim)] = false;
      }
      if (!protocol::agreement_holds_among(result, honest)) {
        return "agreement violated (honest)";
      }
      if (!protocol::abort_validity_holds_among(result, votes, honest)) {
        return "abort validity violated (honest)";
      }
      const bool any_byz = std::any_of(honest.begin(), honest.end(),
                                       [](bool h) { return !h; });
      if (!any_byz && !protocol::commit_validity_holds(result, votes, config.k)) {
        return "commit validity violated";
      }
      return "";
    }
  }
  return "";
}

namespace {

/// Largest Protocol 1 decision stage over the fleet; 0 when the protocol has
/// no agreement core (2PC/Q3PC/broken) or nobody reached it.
int max_decision_stage(const CellConfig& config,
                       const std::vector<std::unique_ptr<sim::Process>>& fleet) {
  int max_stage = 0;
  for (const auto& proc : fleet) {
    // Pointer casts, not reference casts: under the Byzantine adversary a
    // victim's slot holds a ByzantineProcess wrapper, whose stage count
    // sits outside every guarantee anyway — skip it.
    const protocol::AgreementCore* core = nullptr;
    if (config.protocol == ProtocolKind::kCommit) {
      if (const auto* p = dynamic_cast<const protocol::CommitProcess*>(proc.get())) {
        core = p->agreement_core();
      }
    } else if (config.protocol == ProtocolKind::kBenor) {
      if (const auto* p = dynamic_cast<const protocol::AgreementProcess*>(proc.get())) {
        core = &p->core();
      }
    }
    if (core != nullptr) max_stage = std::max(max_stage, core->decision_stage());
  }
  return max_stage;
}

/// True when this cell's safety gate consults the trace: the commit-validity
/// condition is non-vacuous only on an all-commit vote vector, and deciding
/// it requires the run's on-time analysis. Everything else the gates check
/// (decisions, crash flags) lives in the trace-free RunResult. Erring on the
/// side of "needs trace" is always safe; returning false when the gate would
/// have consulted is_on_time would make an empty trace read as vacuously
/// on time and flag spurious violations.
bool gate_needs_trace(const CellConfig& config, const std::vector<int>& votes) {
  if (!cell_guarantees_safety(config.protocol, config.adversary)) return false;
  switch (config.protocol) {
    case ProtocolKind::kCommit:
    case ProtocolKind::kTwoPc:
    case ProtocolKind::kQ3pc:
    case ProtocolKind::kPaxosCommit:
    case ProtocolKind::kBftCommit:
      return std::all_of(votes.begin(), votes.end(), [](int v) { return v == 1; });
    case ProtocolKind::kBenor:
    case ProtocolKind::kBroken:
      return false;
  }
  return true;
}

/// Shared core of every run_cell flavor: run `adversary` (recorded) against
/// `fleet` on the caller's warm engine, gate, and measure.
CellOutcome run_cell_impl(const CellConfig& config,
                          std::vector<std::unique_ptr<sim::Process>> fleet,
                          std::unique_ptr<sim::Adversary> adversary,
                          const std::vector<int>& votes,
                          const CellRunOptions& options, sim::BatchRunner& runner) {
  CellOutcome outcome;
  outcome.config = config;
  outcome.measured = options.measure;
  try {
    const bool record_trace = options.measure || gate_needs_trace(config, votes);
    auto recorder = std::make_unique<sim::RecordingAdversary>(std::move(adversary));
    auto* recorder_ptr = recorder.get();
    sim::RunResult result;
    try {
      result = runner.run({.seed = config.seed,
                           .max_events = config.max_events,
                           .record_trace = record_trace,
                           .pool_payloads = true},
                          std::move(fleet), std::move(recorder));
    } catch (const CheckFailure& failure) {
      // Thrown mid-run (simulator validation, adversary bookkeeping): the
      // recorder is still alive inside the runner, so the partial schedule
      // can be captured for the artifact.
      outcome.violation = true;
      outcome.violation_detail = std::string("CheckFailure: ") + failure.what();
      outcome.schedule = recorder_ptr->schedule();
      return outcome;
    }
    outcome.status = result.status;

    const auto detail = gate_violation(config, votes, result);
    if (!detail.empty()) {
      outcome.violation = true;
      outcome.violation_detail = detail;
      outcome.schedule = recorder_ptr->schedule();
      if (options.result_out != nullptr) *options.result_out = std::move(result);
      return outcome;
    }
    outcome.expected_divergence = result.has_conflicting_decisions();

    outcome.all_decided = result.all_nonfaulty_decided();
    outcome.events = result.events;
    outcome.messages = result.messages_sent;
    if (options.measure) {
      outcome.late_messages = sim::late_message_count(result.trace, config.k);
    }
    if (outcome.all_decided && !outcome.expected_divergence) {
      outcome.stages = max_decision_stage(config, runner.processes());
      if (options.measure) {
        // measure_run calls agreed_decision(), which CHECK-fails on
        // conflicting decisions; divergent baseline runs skip the round/tick
        // analysis.
        const auto m = metrics::measure_run(result, config.k);
        outcome.rounds = m.max_decision_round;
        outcome.ticks = m.max_decision_clock;
      } else {
        // Ticks come straight from the RunResult's decide clocks — no trace
        // needed (same definition as metrics::measure_run).
        for (size_t p = 0; p < result.decide_clock.size(); ++p) {
          if (result.crashed[p]) continue;
          if (const auto& c = result.decide_clock[p]; c.has_value()) {
            outcome.ticks = std::max(outcome.ticks, *c);
          }
        }
      }
    }
    if (options.record_schedule) outcome.schedule = recorder_ptr->schedule();
    if (options.result_out != nullptr) *options.result_out = std::move(result);
    return outcome;
  } catch (const CheckFailure& failure) {
    // A CheckFailure anywhere in the run — adversary bookkeeping, simulator
    // validation, or an invariant CHECK such as agreed_decision() — is a
    // finding to report, never a reason to kill the worker pool.
    outcome.violation = true;
    outcome.violation_detail = std::string("CheckFailure: ") + failure.what();
    return outcome;
  }
}

}  // namespace

CellOutcome run_cell(const CellConfig& config) {
  return run_cell(config, CellRunOptions{});
}

CellOutcome run_cell(const CellConfig& config, const CellRunOptions& options) {
  // One-off runs spin up a private engine; a cold BatchRunner run is the
  // same run a Simulator would execute (batch_equivalence_test).
  sim::BatchRunner runner;
  return run_cell(config, options, runner);
}

CellOutcome run_cell(const CellConfig& config, const CellRunOptions& options,
                     sim::BatchRunner& runner) {
  try {
    auto setup = make_cell_setup(config);
    return run_cell_impl(config, std::move(setup.fleet), std::move(setup.adversary),
                         setup.votes, options, runner);
  } catch (const CheckFailure& failure) {
    CellOutcome outcome;
    outcome.config = config;
    outcome.measured = options.measure;
    outcome.violation = true;
    outcome.violation_detail = std::string("CheckFailure: ") + failure.what();
    return outcome;
  }
}

CellOutcome run_cell_with_adversary(const CellConfig& config,
                                    std::unique_ptr<sim::Adversary> adversary,
                                    const CellRunOptions& options,
                                    sim::BatchRunner& runner) {
  try {
    return run_cell_impl(config, make_replay_fleet(config), std::move(adversary),
                         cell_votes(config), options, runner);
  } catch (const CheckFailure& failure) {
    CellOutcome outcome;
    outcome.config = config;
    outcome.measured = options.measure;
    outcome.violation = true;
    outcome.violation_detail = std::string("CheckFailure: ") + failure.what();
    return outcome;
  }
}

sim::RunResult replay_schedule(const CellConfig& config,
                               const sim::RecordedSchedule& schedule) {
  sim::Simulator sim({.seed = config.seed,
                      .max_events = config.max_events,
                      .pool_payloads = true},
                     make_replay_fleet(config),
                     std::make_unique<sim::ReplayAdversary>(schedule));
  return sim.run();
}

bool replay_still_violates(const CellConfig& config,
                           const sim::RecordedSchedule& schedule) {
  sim::BatchRunner runner;
  return replay_still_violates(config, schedule, runner);
}

bool replay_still_violates(const CellConfig& config,
                           const sim::RecordedSchedule& schedule,
                           sim::BatchRunner& runner) {
  try {
    // The shrinker calls this thousands of times per counterexample, so the
    // replay runs trace-free unless the cell's gate consults the trace
    // (replay_schedule itself stays trace-on for external inspection).
    const auto votes = cell_votes(config);
    const auto result = runner.run({.seed = config.seed,
                                    .max_events = config.max_events,
                                    .record_trace = gate_needs_trace(config, votes),
                                    .pool_payloads = true},
                                   make_replay_fleet(config),
                                   std::make_unique<sim::ReplayAdversary>(schedule));
    return !gate_violation(config, votes, result).empty();
  } catch (const CheckFailure&) {
    return false;  // diverged — not a reproduction
  }
}

}  // namespace rcommit::swarm
