// The swarm's configuration matrix.
//
// A swarm sweep is the cross product
//   protocol × adversary × n × seed-index
// where each cell fully determines one simulator run: the fleet, the
// adversary, the vote vector, and every random tape all derive from the
// cell's master seed (paper §2.3 — a run is a pure function of (A, I, F)).
// Enumeration order is fixed and thread-count independent, which is what
// makes the swarm's aggregate statistics deterministic.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "adversary/byzantine.h"
#include "common/types.h"
#include "sim/adversary.h"
#include "sim/process.h"

namespace rcommit::swarm {

/// Which protocol family populates the fleet.
enum class ProtocolKind {
  kCommit,  ///< Protocol 2 (the paper's randomized commit protocol)
  kBenor,   ///< local-coin Ben-Or agreement (baselines/benor.h)
  kTwoPc,   ///< two-phase commit, presume-abort timeouts
  kQ3pc,    ///< 3PC + termination protocol (Dwork–Skeen family)
  kBroken,  ///< deliberately unsound test-only variant (swarm/broken.h);
            ///< parsed but undocumented — exists to exercise the
            ///< violation→shrink→artifact pipeline end to end
  // New kinds append after kBroken: enum values feed cell-seed mixing and
  // run fingerprints, so renumbering would invalidate the committed corpora.
  kPaxosCommit,  ///< Paxos Commit (baselines/paxoscommit.h, Gray–Lamport)
  kBftCommit,    ///< Byzantine fault tolerant commit (baselines/bftcommit.h)
};

/// Which scheduling/fault strategy drives the run.
enum class AdversaryKind {
  kOnTime,      ///< round-robin, every delay = 1
  kRandom,      ///< random fair schedule, uniform delays
  kCrash,       ///< random schedule + up to t crash plans (mid-broadcast too)
  kLateMsg,     ///< on-time except targeted late messages (paper §1)
  kPartition,   ///< two groups, intergroup messages withheld until a heal event
  kStretch,     ///< every message delayed uniformly past K (Theorem 17)
  kAdaptive,    ///< quorum-stalling biased delivery (hardest admissible)
  kOmniscient,  ///< Ben-Or split-vote worst case (benor fleets only)
  // Appended after kOmniscient for the same fingerprint-stability reason as
  // the protocol kinds.
  kByzantine,  ///< random schedule + seed-derived Byzantine victim wrappers
               ///< (adversary/byzantine.h): equivocation, stale replay,
               ///< omission, content corruption — at most (n-1)/3 victims
};

[[nodiscard]] const char* to_string(ProtocolKind p);
[[nodiscard]] const char* to_string(AdversaryKind a);
/// Throw CheckFailure on an unknown name.
[[nodiscard]] ProtocolKind parse_protocol_kind(const std::string& name);
[[nodiscard]] AdversaryKind parse_adversary_kind(const std::string& name);

/// True when the pair makes sense to run. The omniscient adversary needs the
/// BroadcastSpy side channel only agreement fleets provide, so it pairs with
/// kBenor exclusively; every other combination is runnable.
[[nodiscard]] bool compatible(ProtocolKind protocol, AdversaryKind adversary);

/// True when the paper guarantees safety (agreement + validity) for this
/// protocol under this adversary, i.e. when an observed violation must gate
/// the swarm. Protocol 2 and Ben-Or are safe under *any* timing — that is the
/// paper's whole point — and the broken variant claims the same guarantee (so
/// its violations are reported). The synchronous baselines (2PC, Q3PC) are
/// only guaranteed safe when every message is on time and nothing crashes;
/// under the other adversaries their divergence is the paper's §1 criticism,
/// which the swarm counts separately instead of failing on.
[[nodiscard]] bool cell_guarantees_safety(ProtocolKind protocol, AdversaryKind adversary);

/// One fully-determined run.
struct CellConfig {
  ProtocolKind protocol = ProtocolKind::kCommit;
  AdversaryKind adversary = AdversaryKind::kOnTime;
  int32_t n = 5;
  int32_t t = 2;
  Tick k = 2;
  uint64_t seed = 1;  ///< master seed: fleet votes, tapes, adversary draws
  int64_t max_events = 200'000;

  /// Key=value serialization for artifacts; round-trips via deserialize.
  [[nodiscard]] std::string serialize() const;
  static CellConfig deserialize(const std::string& text);

  /// Stable human-readable id, e.g. "commit-latemsg-n5-s42"; used for
  /// artifact directory names and log lines.
  [[nodiscard]] std::string id() const;
};

/// The sweep specification the CLI flags map onto.
struct MatrixSpec {
  std::vector<ProtocolKind> protocols;
  std::vector<AdversaryKind> adversaries;
  std::vector<int32_t> ns;
  int seeds_per_cell = 10;
  uint64_t base_seed = 1;
  Tick k = 2;
  int64_t max_events = 200'000;
};

/// Expands the spec into concrete cells in a fixed order (protocol-major,
/// then adversary, n, seed index), skipping incompatible pairs. Each cell's
/// seed mixes the base seed with its coordinates, so adding a value to one
/// axis never changes the seeds of existing cells.
[[nodiscard]] std::vector<CellConfig> enumerate_cells(const MatrixSpec& spec);

/// The deterministic vote/input vector of a cell (derived from its seed).
[[nodiscard]] std::vector<int> cell_votes(const CellConfig& config);

/// The deterministic Byzantine victim plans of a cell: between 1 and
/// (n-1)/3 distinct victims derived from the cell seed (empty when the
/// fleet is too small to tolerate any traitor, and always empty for
/// non-Byzantine cells). Shared by fleet construction, the safety gate's
/// honest mask, and the coverage fingerprint, so all three agree on who the
/// traitors are.
[[nodiscard]] std::vector<adversary::ByzantinePlan> cell_byzantine_plans(
    const CellConfig& config);

/// Fleet + adversary for a live (recorded) run. Kept together because the
/// omniscient adversary and its fleet share a BroadcastSpy.
struct CellSetup {
  std::vector<int> votes;
  std::vector<std::unique_ptr<sim::Process>> fleet;
  std::unique_ptr<sim::Adversary> adversary;
};
[[nodiscard]] CellSetup make_cell_setup(const CellConfig& config);

/// Fleet only, for replaying a recorded schedule against the same initial
/// configuration (the adversary is a ReplayAdversary supplied by the caller).
[[nodiscard]] std::vector<std::unique_ptr<sim::Process>> make_replay_fleet(
    const CellConfig& config);

}  // namespace rcommit::swarm
