#include "swarm/coverage.h"

#include <algorithm>
#include <bit>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/check.h"
#include "common/codec.h"
#include "swarm/artifacts.h"
#include "swarm/json.h"
#include "swarm/pool.h"
#include "swarm/shrink.h"

namespace rcommit::swarm {

namespace {

// The same coordinate-mixing step enumerate_cells uses (matrix.cpp), so
// chain and run seeds inherit its property: extending one axis never
// perturbs the seeds of existing coordinates.
uint64_t mix(uint64_t h, uint64_t coord) {
  return SplitMix64(h ^ (coord + 0x9e3779b97f4a7c15ULL)).next();
}

void put_u8(std::vector<uint8_t>& bytes, uint8_t v) { bytes.push_back(v); }

void put_u32(std::vector<uint8_t>& bytes, uint32_t v) {
  for (int i = 0; i < 4; ++i) bytes.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void put_u64(std::vector<uint8_t>& bytes, uint64_t v) {
  for (int i = 0; i < 8; ++i) bytes.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

/// log2 bucket of a non-negative magnitude: 0 for 0, else bit_width
/// (1..2→1..2, 3..4→3, 5..8→4, ...). Collapsing magnitudes to ~64 buckets
/// is what bounds the fingerprint space (coverage.h).
uint8_t log2_bucket(int64_t v) {
  if (v <= 0) return 0;
  return static_cast<uint8_t>(std::bit_width(static_cast<uint64_t>(v)));
}

}  // namespace

uint64_t run_fingerprint(const CellConfig& config, const sim::RunResult& result,
                         const sim::RecordedSchedule& executed, int stages) {
  std::vector<uint8_t> bytes;
  bytes.reserve(64 + 4 * result.decisions.size());
  put_u8(bytes, 0);  // salt slot, rewritten per pass below
  // Cell shape — not the seed (behavior twins across seeds must collide)
  // and not the adversary kind (a mutated schedule has no kind). Byzantine
  // victim plans ARE included: they are fleet-side (derived from the config,
  // not the schedule), so a mutated schedule still runs against the same
  // traitors — runs with different traitor sets live in different regions of
  // the behavior space and must not collide.
  put_u8(bytes, static_cast<uint8_t>(config.protocol));
  put_u32(bytes, static_cast<uint32_t>(config.n));
  put_u64(bytes, static_cast<uint64_t>(config.k));
  for (const auto& plan : cell_byzantine_plans(config)) {
    put_u32(bytes, static_cast<uint32_t>(plan.victim));
    put_u8(bytes, log2_bucket(plan.from_clock));
  }

  put_u8(bytes, static_cast<uint8_t>(result.status));
  for (size_t p = 0; p < result.decisions.size(); ++p) {
    uint8_t flags = 0;
    if (result.crashed[p]) flags |= 1;
    if (result.decisions[p].has_value()) flags |= 2;
    put_u8(bytes, flags);
    put_u8(bytes, result.decisions[p].has_value()
                      ? static_cast<uint8_t>(*result.decisions[p])
                      : 0xff);
    // Round profile: the decide clock's log2 bucket stands in for the round
    // number (both grow together; the bucket is computable trace-free).
    put_u8(bytes, result.decide_clock[p].has_value()
                      ? log2_bucket(*result.decide_clock[p])
                      : 0xff);
  }
  put_u32(bytes, static_cast<uint32_t>(stages));
  put_u8(bytes, log2_bucket(result.events));
  put_u8(bytes, log2_bucket(result.messages_sent));

  // Crash/fault sites actually hit, in schedule order: who died, roughly
  // where in the run, and whether mid-broadcast (suppressed sends).
  for (size_t i = 0; i < executed.actions.size(); ++i) {
    const auto& action = executed.actions[i];
    if (!action.crash) continue;
    put_u32(bytes, static_cast<uint32_t>(action.proc));
    put_u8(bytes, log2_bucket(static_cast<int64_t>(i) + 1));
    put_u8(bytes, action.suppress_sends_to.empty() ? 0 : 1);
  }

  bytes[0] = 0xa5;
  const uint64_t hi = crc32c(bytes);
  bytes[0] = 0x5a;
  const uint64_t lo = crc32c(bytes);
  return (hi << 32) | lo;
}

// --- Corpus ----------------------------------------------------------------

bool Corpus::add(uint64_t fingerprint, const CellConfig& config,
                 const sim::RecordedSchedule& schedule) {
  const auto it = std::lower_bound(seen_.begin(), seen_.end(), fingerprint);
  if (it != seen_.end() && *it == fingerprint) return false;
  seen_.insert(it, fingerprint);
  if (entries_.size() < max_entries_) {
    entries_.push_back(CorpusEntry{fingerprint, config, schedule});
  }
  return true;
}

bool Corpus::contains(uint64_t fingerprint) const {
  return std::binary_search(seen_.begin(), seen_.end(), fingerprint);
}

namespace {

std::string fingerprint_hex(uint64_t fingerprint) {
  std::ostringstream os;
  os << std::hex;
  os.width(16);
  os.fill('0');
  os << fingerprint;
  return os.str();
}

}  // namespace

std::vector<std::string> save_corpus(const std::string& root, const Corpus& corpus) {
  std::vector<std::string> dirs;
  dirs.reserve(corpus.entries().size());
  for (size_t i = 0; i < corpus.entries().size(); ++i) {
    const auto& entry = corpus.entries()[i];
    Artifact artifact;
    artifact.config = entry.config;
    artifact.violation = "none — coverage corpus entry";
    artifact.schedule = entry.schedule;
    std::ostringstream name;
    name << "cov-";
    name.width(4);
    name.fill('0');
    name << i << "-" << fingerprint_hex(entry.fingerprint);
    const auto dir = write_artifact(root, artifact, name.str());
    std::ofstream fp(dir + "/fingerprint.txt", std::ios::binary | std::ios::trunc);
    RCOMMIT_CHECK_MSG(fp.good(), "cannot write " << dir << "/fingerprint.txt");
    fp << fingerprint_hex(entry.fingerprint) << "\n";
    dirs.push_back(dir);
  }
  return dirs;
}

std::vector<CorpusEntry> load_corpus(const std::string& root) {
  std::vector<std::string> dirs;
  for (const auto& entry : std::filesystem::directory_iterator(root)) {
    if (entry.is_directory()) dirs.push_back(entry.path().string());
  }
  std::sort(dirs.begin(), dirs.end());  // directory order is fs-dependent

  std::vector<CorpusEntry> entries;
  entries.reserve(dirs.size());
  for (const auto& dir : dirs) {
    const auto artifact = load_artifact(dir);
    CorpusEntry entry;
    entry.config = artifact.config;
    entry.schedule = artifact.schedule;
    if (std::ifstream fp(dir + "/fingerprint.txt"); fp.good()) {
      std::string hex;
      fp >> hex;
      entry.fingerprint = std::stoull(hex, nullptr, 16);
    }
    entries.push_back(std::move(entry));
  }
  return entries;
}

// --- Mutation --------------------------------------------------------------

sim::RecordedSchedule mutate_schedule(const sim::RecordedSchedule& base, int32_t n,
                                      int max_crashes, RandomTape& tape) {
  const size_t size = base.actions.size();
  if (size == 0 || n <= 0) return base;

  // A chunk is a small contiguous window; small edits preserve most of the
  // base schedule's structure, which is what makes corpus mutation walk
  // outward from known-novel behavior instead of jumping randomly.
  const auto chunk_of = [&](size_t* begin, size_t* end) {
    *begin = static_cast<size_t>(tape.next_below(size));
    const size_t len =
        1 + static_cast<size_t>(tape.next_below(std::max<size_t>(size / 4, 1)));
    *end = std::min(*begin + len, size);
  };

  switch (tape.next_below(7)) {
    case 0: {  // truncate: keep a nonempty prefix
      return schedule_prefix(base, 1 + static_cast<size_t>(tape.next_below(size)));
    }
    case 1: {  // drop a chunk
      size_t begin = 0;
      size_t end = 0;
      chunk_of(&begin, &end);
      return schedule_without_range(base, begin, end);
    }
    case 2: {  // strip a chunk's deliveries
      size_t begin = 0;
      size_t end = 0;
      chunk_of(&begin, &end);
      return schedule_without_deliveries(base, begin, end);
    }
    case 3: {  // eliminate one processor's actions
      return schedule_without_proc(
          base, static_cast<ProcId>(tape.next_below(static_cast<uint64_t>(n))));
    }
    case 4: {  // swap two adjacent actions
      sim::RecordedSchedule out = base;
      if (size >= 2) {
        const size_t i = static_cast<size_t>(tape.next_below(size - 1));
        std::swap(out.actions[i], out.actions[i + 1]);
      }
      return out;
    }
    case 5: {  // duplicate a chunk in place
      size_t begin = 0;
      size_t end = 0;
      chunk_of(&begin, &end);
      sim::RecordedSchedule out;
      out.actions.reserve(size + (end - begin));
      out.actions.assign(base.actions.begin(),
                         base.actions.begin() + static_cast<ptrdiff_t>(end));
      out.actions.insert(out.actions.end(),
                         base.actions.begin() + static_cast<ptrdiff_t>(begin),
                         base.actions.begin() + static_cast<ptrdiff_t>(end));
      out.actions.insert(out.actions.end(),
                         base.actions.begin() + static_cast<ptrdiff_t>(end),
                         base.actions.end());
      return out;
    }
    default: {  // inject a crash (respecting the fault budget t)
      int crashes = 0;
      for (const auto& action : base.actions) crashes += action.crash ? 1 : 0;
      if (crashes >= max_crashes) {
        // Budget spent: degrade to truncation so the draw is never wasted.
        return schedule_prefix(base, 1 + static_cast<size_t>(tape.next_below(size)));
      }
      sim::Action crash;
      crash.proc = static_cast<ProcId>(tape.next_below(static_cast<uint64_t>(n)));
      crash.crash = true;
      if (tape.flip() == 1) {
        // Mid-broadcast: the victim executes its step but a random subset of
        // its sends is suppressed (the paper's hardest crash shape).
        for (ProcId p = 0; p < n; ++p) {
          if (tape.flip() == 1) crash.suppress_sends_to.push_back(p);
        }
      }
      sim::RecordedSchedule out = base;
      out.actions.insert(
          out.actions.begin() + static_cast<ptrdiff_t>(tape.next_below(size + 1)),
          std::move(crash));
      return out;
    }
  }
}

TolerantReplayAdversary::TolerantReplayAdversary(sim::RecordedSchedule schedule)
    : schedule_(std::move(schedule)) {}

void TolerantReplayAdversary::next(const sim::PatternView& view, sim::Action& action) {
  const int32_t n = view.n();
  while (position_ < schedule_.actions.size()) {
    const sim::Action& want = schedule_.actions[position_++];
    if (want.proc < 0 || want.proc >= n) continue;
    if (!view.schedulable(want.proc)) continue;  // skip: crashed/halted since
    action.proc = want.proc;
    for (const MsgId id : want.deliver) {
      // Keep only ids actually pending for the processor (mutation edits
      // displace message ids freely), once each.
      const auto& pending = view.pending(want.proc);
      const bool is_pending =
          std::any_of(pending.begin(), pending.end(),
                      [id](const sim::PendingInfo& m) { return m.id == id; });
      const bool already =
          std::find(action.deliver.begin(), action.deliver.end(), id) !=
          action.deliver.end();
      if (is_pending && !already) action.deliver.push_back(id);
    }
    action.crash = want.crash;
    if (want.crash) {
      for (const ProcId p : want.suppress_sends_to) {
        if (p >= 0 && p < n) action.suppress_sends_to.push_back(p);
      }
    }
    return;
  }
  // Schedule exhausted: drive the run to completion with a deterministic
  // fair fallback — round-robin over schedulable processors, delivering
  // everything pending. The simulator guarantees a schedulable processor
  // exists whenever next() is called.
  for (int32_t probes = 0; probes < n; ++probes) {
    const ProcId p = fallback_next_;
    fallback_next_ = (fallback_next_ + 1) % n;
    if (!view.schedulable(p)) continue;
    action.proc = p;
    for (const auto& m : view.pending(p)) action.deliver.push_back(m.id);
    return;
  }
  RCOMMIT_CHECK_MSG(false, "tolerant replay: no schedulable processor");
}

// --- Search ----------------------------------------------------------------

namespace {

/// Everything one chain produces; merged in chain order by run_search.
struct ChainResult {
  Corpus corpus{0};
  std::vector<CellOutcome> violating;  ///< executed schedules that broke a gate
  int64_t runs = 0;
  int64_t events = 0;
};

/// Fingerprints one finished run and folds it into the chain. Violating runs
/// are collected for the shrink/artifact flow instead of the corpus (corpus
/// entries double as clean replay regressions).
void absorb_run(ChainResult& chain, const CellConfig& cell,
                const CellOutcome& outcome, const sim::RunResult& result) {
  ++chain.runs;
  chain.events += result.events;
  if (outcome.violation) {
    chain.violating.push_back(outcome);
    return;
  }
  const auto fp = run_fingerprint(cell, result, outcome.schedule, outcome.stages);
  chain.corpus.add(fp, cell, outcome.schedule);
}

ChainResult run_chain(const SearchOptions& options, int chain_index) {
  ChainResult chain;
  chain.corpus = Corpus(options.corpus_capacity);
  sim::BatchRunner runner;
  const uint64_t chain_seed = mix(options.cell.seed, static_cast<uint64_t>(chain_index));
  RandomTape tape(mix(chain_seed, 0x636f76ULL));  // "cov": the mutation tape
  const CellRunOptions run_options{.measure = false, .record_schedule = true};

  // Phase A — seeding: the cell's own adversary kind under derived seeds.
  for (int r = 0; r < options.seed_runs; ++r) {
    CellConfig cell = options.cell;
    cell.seed = mix(chain_seed, 1 + static_cast<uint64_t>(r));
    sim::RunResult result;
    auto opts = run_options;
    opts.result_out = &result;
    const auto outcome = run_cell(cell, opts, runner);
    absorb_run(chain, cell, outcome, result);
  }

  // Phase B — mutation: derive schedules from novelty-producing runs and
  // execute them tolerantly against the base run's exact cell (same seed ⇒
  // same votes and tapes, so only the schedule varies).
  for (int r = 0; r < options.mutation_runs; ++r) {
    sim::RunResult result;
    auto opts = run_options;
    opts.result_out = &result;
    if (chain.corpus.entries().empty()) {
      // Nothing to mutate from (tiny seed phase): keep seeding.
      CellConfig cell = options.cell;
      cell.seed = mix(chain_seed, 0x10000 + static_cast<uint64_t>(r));
      const auto outcome = run_cell(cell, opts, runner);
      absorb_run(chain, cell, outcome, result);
      continue;
    }
    const auto& base = chain.corpus.entries()[static_cast<size_t>(
        tape.next_below(chain.corpus.entries().size()))];
    auto mutant = mutate_schedule(base.schedule, base.config.n, base.config.t, tape);
    const auto outcome = run_cell_with_adversary(
        base.config, std::make_unique<TolerantReplayAdversary>(std::move(mutant)),
        opts, runner);
    absorb_run(chain, base.config, outcome, result);
  }
  return chain;
}

}  // namespace

SearchSummary run_search(const SearchOptions& options) {
  RCOMMIT_CHECK(options.chains >= 1);
  const auto started = std::chrono::steady_clock::now();

  std::vector<ChainResult> chains(static_cast<size_t>(options.chains));
  WorkStealingPool pool(options.threads);
  pool.run(options.chains, [&](int64_t i) {
    chains[static_cast<size_t>(i)] = run_chain(options, static_cast<int>(i));
  });

  // Ordered merge: chain 0's discoveries land first, so the summary is a
  // pure function of the options no matter how chains raced above.
  SearchSummary summary;
  summary.corpus = Corpus(options.corpus_capacity);
  std::vector<uint64_t> all_seen;
  for (auto& chain : chains) {
    summary.runs_executed += chain.runs;
    summary.events_executed += chain.events;
    for (const auto& entry : chain.corpus.entries()) {
      summary.corpus.add(entry.fingerprint, entry.config, entry.schedule);
    }
    // Novelty across chains counts every distinct fingerprint observed,
    // stored or not (a chain may exceed its storage cap).
    all_seen.insert(all_seen.end(), chain.corpus.seen().begin(),
                    chain.corpus.seen().end());
  }
  std::sort(all_seen.begin(), all_seen.end());
  all_seen.erase(std::unique(all_seen.begin(), all_seen.end()), all_seen.end());
  summary.novel_fingerprints = all_seen.size();

  // Violations: shrink and archive serially, in chain order, on one warm
  // replay engine — deterministic regardless of the thread count above.
  sim::BatchRunner shrink_runner;
  for (const auto& chain : chains) {
    for (const auto& outcome : chain.violating) {
      ++summary.violations;
      ViolationReport report;
      report.config = outcome.config;
      report.detail = outcome.violation_detail;
      report.original_actions = outcome.schedule.actions.size();

      sim::RecordedSchedule shrunk = outcome.schedule;
      if (options.shrink && !outcome.schedule.actions.empty()) {
        shrunk = shrink_schedule(
            outcome.schedule,
            [&](const sim::RecordedSchedule& candidate) {
              return replay_still_violates(outcome.config, candidate, shrink_runner)
                         ? CandidateOutcome::kViolates
                         : CandidateOutcome::kNoViolation;
            },
            {.max_evals = options.shrink_max_evals});
      }
      report.shrunk_actions = shrunk.actions.size();
      if (!options.artifacts_dir.empty()) {
        Artifact artifact;
        artifact.config = outcome.config;
        artifact.violation = outcome.violation_detail;
        artifact.schedule = shrunk;
        artifact.original_schedule = outcome.schedule;
        report.artifact_path = write_artifact(options.artifacts_dir, artifact);
      }
      summary.violation_reports.push_back(std::move(report));
    }
  }

  summary.elapsed_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - started)
          .count();
  return summary;
}

std::string SearchSummary::json(const SearchOptions& options) const {
  JsonWriter json;
  json.begin_object();
  json.key("search");
  json.begin_object();
  json.key("protocol").value(to_string(options.cell.protocol));
  json.key("adversary").value(to_string(options.cell.adversary));
  json.key("n").value(static_cast<int64_t>(options.cell.n));
  json.key("k").value(static_cast<int64_t>(options.cell.k));
  json.key("base_seed").value(options.cell.seed);
  json.key("chains").value(static_cast<int64_t>(options.chains));
  json.key("seed_runs").value(static_cast<int64_t>(options.seed_runs));
  json.key("mutation_runs").value(static_cast<int64_t>(options.mutation_runs));
  json.end_object();
  json.key("runs_executed").value(runs_executed);
  json.key("events_executed").value(events_executed);
  json.key("novel_fingerprints").value(static_cast<int64_t>(novel_fingerprints));
  json.key("corpus_entries").value(static_cast<int64_t>(corpus.entries().size()));
  json.key("violations").value(violations);
  json.key("violation_reports");
  json.begin_array();
  for (const auto& report : violation_reports) {
    json.begin_object();
    json.key("cell").value(report.config.id());
    json.key("detail").value(report.detail);
    json.key("original_actions").value(static_cast<int64_t>(report.original_actions));
    json.key("shrunk_actions").value(static_cast<int64_t>(report.shrunk_actions));
    json.key("artifact").value(report.artifact_path);
    json.end_object();
  }
  json.end_array();
  json.key("perf");
  json.begin_object();
  json.key("elapsed_seconds").value(elapsed_seconds);
  json.end_object();
  json.end_object();
  return json.str();
}

}  // namespace rcommit::swarm
