#include "swarm/pool.h"

#include <atomic>
#include <deque>
#include <exception>
#include <mutex>
#include <thread>

#include "common/check.h"

namespace rcommit::swarm {

WorkStealingPool::WorkStealingPool(int threads) : threads_(threads < 1 ? 1 : threads) {}

namespace {

struct WorkerQueue {
  std::mutex mu;
  std::deque<int64_t> jobs;
};

}  // namespace

std::vector<char> WorkStealingPool::run(
    int64_t count, const std::function<void(int64_t)>& fn,
    std::optional<std::chrono::steady_clock::time_point> deadline) {
  RCOMMIT_CHECK(count >= 0);
  std::vector<char> executed(static_cast<size_t>(count), 0);
  if (count == 0) return executed;

  const int workers = static_cast<int>(std::min<int64_t>(threads_, count));
  std::vector<WorkerQueue> queues(static_cast<size_t>(workers));
  for (int64_t i = 0; i < count; ++i) {
    queues[static_cast<size_t>(i % workers)].jobs.push_back(i);
  }

  std::atomic<bool> abort{false};
  std::exception_ptr first_error;
  std::mutex error_mu;

  const auto worker_main = [&](int self) {
    for (;;) {
      if (abort.load(std::memory_order_relaxed)) return;
      int64_t job = -1;
      {
        // Own queue first (back), then sweep the others as a thief (front).
        auto& own = queues[static_cast<size_t>(self)];
        std::lock_guard<std::mutex> lock(own.mu);
        if (!own.jobs.empty()) {
          job = own.jobs.back();
          own.jobs.pop_back();
        }
      }
      if (job < 0) {
        for (int offset = 1; offset < workers && job < 0; ++offset) {
          auto& victim = queues[static_cast<size_t>((self + offset) % workers)];
          std::lock_guard<std::mutex> lock(victim.mu);
          if (!victim.jobs.empty()) {
            job = victim.jobs.front();
            victim.jobs.pop_front();
          }
        }
      }
      if (job < 0) return;  // every deque empty — no new jobs ever appear

      if (deadline.has_value() && std::chrono::steady_clock::now() >= *deadline) {  // RCOMMIT_LINT_ALLOW(R1): budget deadline check; affects which cells run, never their outcomes
        continue;  // budget exhausted: drop this job, keep draining the queues
      }
      try {
        fn(job);
        executed[static_cast<size_t>(job)] = 1;
      } catch (...) {
        {
          std::lock_guard<std::mutex> lock(error_mu);
          if (first_error == nullptr) first_error = std::current_exception();
        }
        abort.store(true, std::memory_order_relaxed);
        return;
      }
    }
  };

  if (workers == 1) {
    worker_main(0);
  } else {
    std::vector<std::thread> threads;
    threads.reserve(static_cast<size_t>(workers));
    for (int w = 0; w < workers; ++w) threads.emplace_back(worker_main, w);
    for (auto& t : threads) t.join();
  }

  if (first_error != nullptr) std::rethrow_exception(first_error);
  return executed;
}

}  // namespace rcommit::swarm
