#include "swarm/pool.h"

#include <atomic>
#include <deque>
#include <exception>
#include <thread>

#include "common/check.h"
#include "common/thread_annotations.h"

namespace rcommit::swarm {

WorkStealingPool::WorkStealingPool(int threads) : threads_(threads < 1 ? 1 : threads) {}

namespace {

struct WorkerQueue {
  Mutex mu;
  std::deque<int64_t> jobs GUARDED_BY(mu);
};

/// First exception thrown by any worker; later ones are dropped.
struct ErrorSlot {
  Mutex mu;
  std::exception_ptr first GUARDED_BY(mu);
};

}  // namespace

std::vector<char> WorkStealingPool::run(
    int64_t count, const std::function<void(int64_t)>& fn,
    std::optional<std::chrono::steady_clock::time_point> deadline) {
  RCOMMIT_CHECK(count >= 0);
  std::vector<char> executed(static_cast<size_t>(count), 0);
  if (count == 0) return executed;

  const int workers = static_cast<int>(std::min<int64_t>(threads_, count));
  std::vector<WorkerQueue> queues(static_cast<size_t>(workers));
  for (int64_t i = 0; i < count; ++i) {
    // No worker is running yet, but the lock keeps the capability story
    // uniform (and an uncontended acquire costs nothing here).
    auto& q = queues[static_cast<size_t>(i % workers)];
    MutexLock lock(q.mu);
    q.jobs.push_back(i);
  }

  std::atomic<bool> abort{false};
  ErrorSlot error;

  const auto worker_main = [&](int self) {
    for (;;) {
      if (abort.load(std::memory_order_relaxed)) return;
      int64_t job = -1;
      {
        // Own queue first (back), then sweep the others as a thief (front).
        auto& own = queues[static_cast<size_t>(self)];
        MutexLock lock(own.mu);
        if (!own.jobs.empty()) {
          job = own.jobs.back();
          own.jobs.pop_back();
        }
      }
      if (job < 0) {
        for (int offset = 1; offset < workers && job < 0; ++offset) {
          auto& victim = queues[static_cast<size_t>((self + offset) % workers)];
          MutexLock lock(victim.mu);
          if (!victim.jobs.empty()) {
            job = victim.jobs.front();
            victim.jobs.pop_front();
          }
        }
      }
      if (job < 0) return;  // every deque empty — no new jobs ever appear

      if (deadline.has_value() && std::chrono::steady_clock::now() >= *deadline) {
        continue;  // budget exhausted: drop this job, keep draining the queues
      }
      try {
        fn(job);
        executed[static_cast<size_t>(job)] = 1;
      } catch (...) {
        {
          MutexLock lock(error.mu);
          if (error.first == nullptr) error.first = std::current_exception();
        }
        abort.store(true, std::memory_order_relaxed);
        return;
      }
    }
  };

  if (workers == 1) {
    worker_main(0);
  } else {
    std::vector<std::thread> threads;
    threads.reserve(static_cast<size_t>(workers));
    for (int w = 0; w < workers; ++w) threads.emplace_back(worker_main, w);
    for (auto& t : threads) t.join();
  }

  {
    MutexLock lock(error.mu);
    if (error.first != nullptr) std::rethrow_exception(error.first);
  }
  return executed;
}

}  // namespace rcommit::swarm
