// Coverage-guided schedule search.
//
// The paper's guarantees are schedule-quantified — Protocol 2 must satisfy
// its invariants under *every* admissible interleaving — but a seed sweep
// explores that space blindly, re-visiting behaviorally equivalent schedules.
// This module turns the run budget into coverage: every finished run is
// fingerprinted into a stable 64-bit behavior digest, a Corpus keeps one
// representative schedule per novel fingerprint, and a mutation loop derives
// new schedules from corpus entries through the shrinker's schedule-edit
// substrate (swarm/shrink.h), replayed best-effort so edits that break
// strict applicability are repaired rather than discarded.
//
// Search is deterministic and thread-count independent: it runs as
// `chains` self-contained chains (own corpus, own RNG tape, own warm
// BatchRunner), each seeded from mix(base_seed, chain); chains are merged in
// chain order afterwards. Any novel schedule that violates a gated invariant
// flows through the standard shrink → artifact pipeline (swarm/runner.h,
// swarm/artifacts.h), so a search finding reproduces with swarm_cli
// --replay exactly like a sweep finding. docs/coverage-search.md is the
// narrative companion; bench_coverage (E17) measures the payoff.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "sim/batch.h"
#include "sim/replay.h"
#include "swarm/matrix.h"
#include "swarm/runner.h"
#include "swarm/swarm.h"

namespace rcommit::swarm {

// --- Fingerprint -----------------------------------------------------------

/// The behavior digest of one finished run: two salted crc32c passes (the
/// wire-format checksum primitive) over a canonical byte encoding of
///   - cell shape: protocol, n, k — never the seed or the adversary kind,
///     so behaviorally identical runs from different seeds collide;
///   - terminal status and the per-processor decision pattern (decided?,
///     which value, crashed?);
///   - the round profile: each processor's decide clock in log2 buckets;
///   - stage count (Protocol 1 decision stages, when the fleet has a core);
///   - run magnitude: event and message counts in log2 buckets;
///   - crash/fault sites actually hit, in order: victim, schedule position
///     in log2 buckets, and whether the crash was mid-broadcast.
/// The log2 bucketing is deliberate: it bounds the reachable fingerprint
/// space so random seeding saturates, which is exactly what makes novelty a
/// meaningful search signal (docs/coverage-search.md).
[[nodiscard]] uint64_t run_fingerprint(const CellConfig& config,
                                       const sim::RunResult& result,
                                       const sim::RecordedSchedule& executed,
                                       int stages);

// --- Corpus ----------------------------------------------------------------

/// One retained novelty-producing run.
struct CorpusEntry {
  uint64_t fingerprint = 0;
  CellConfig config;  ///< the cell the schedule executed against (its seed
                      ///< fixes votes and tapes, so replay is exact)
  sim::RecordedSchedule schedule;  ///< as actually executed (strictly replayable)
};

/// Distilled set of schedules, one per novel fingerprint, in discovery
/// order. Mutation bases are drawn from here; storage is capped, but
/// novelty accounting (seen fingerprints) is not — a novel run past the cap
/// still counts as coverage, it just cannot seed further mutations.
class Corpus {
 public:
  explicit Corpus(size_t max_entries = 512) : max_entries_(max_entries) {}

  /// Records a fingerprint; stores the schedule when it is novel and the
  /// cap permits. Returns true iff the fingerprint was novel.
  bool add(uint64_t fingerprint, const CellConfig& config,
           const sim::RecordedSchedule& schedule);

  [[nodiscard]] bool contains(uint64_t fingerprint) const;
  /// Distinct fingerprints observed (>= entries().size()).
  [[nodiscard]] size_t novel_count() const { return seen_.size(); }
  /// Every fingerprint observed, sorted ascending (stored entries or not).
  [[nodiscard]] const std::vector<uint64_t>& seen() const { return seen_; }
  [[nodiscard]] const std::vector<CorpusEntry>& entries() const { return entries_; }

 private:
  size_t max_entries_;
  std::vector<uint64_t> seen_;  ///< sorted for binary-search membership
  std::vector<CorpusEntry> entries_;
};

/// Writes each stored entry as an artifact directory under `root`
/// (config.txt + schedule.txt + fingerprint.txt), named
/// cov-<index>-<fingerprint hex>; returns the directory names. The format is
/// load_artifact-compatible, so entries double as replay-corpus regression
/// locks (tests/replay_corpus_test.cpp).
std::vector<std::string> save_corpus(const std::string& root, const Corpus& corpus);

/// Loads every artifact-format subdirectory of `root` into corpus entries
/// (fingerprint.txt wanted but optional: absent means "recompute on replay").
[[nodiscard]] std::vector<CorpusEntry> load_corpus(const std::string& root);

// --- Mutation --------------------------------------------------------------

/// Derives a mutant schedule from `base` using one tape-selected operator:
/// truncation to a prefix, chunk removal, delivery stripping, processor
/// elimination (all via the shrink substrate), adjacent-action swap, chunk
/// duplication, or crash injection (pure or mid-broadcast, capped at
/// `max_crashes` crash actions so mutants stay t-admissible). The mutant is
/// a *proposal*: it generally breaks strict replay applicability and is
/// meant to be executed through TolerantReplayAdversary.
[[nodiscard]] sim::RecordedSchedule mutate_schedule(
    const sim::RecordedSchedule& base, int32_t n, int max_crashes,
    RandomTape& tape);

/// Best-effort replay of a (typically mutated) schedule: actions whose
/// processor is no longer schedulable are skipped, deliver sets are filtered
/// to the ids actually pending for the processor, and when the schedule is
/// exhausted the run is driven to completion by a deterministic round-robin
/// deliver-everything fallback. Wrapped in a RecordingAdversary by the
/// search, so the *executed* schedule is recorded and strictly replayable.
class TolerantReplayAdversary final : public sim::Adversary {
 public:
  explicit TolerantReplayAdversary(sim::RecordedSchedule schedule);

  void next(const sim::PatternView& view, sim::Action& action) override;

 private:
  sim::RecordedSchedule schedule_;
  size_t position_ = 0;
  ProcId fallback_next_ = 0;
};

// --- Search ----------------------------------------------------------------

struct SearchOptions {
  /// The cell shape to search. `cell.seed` is the base seed: run seeds
  /// derive from it, per chain and run index. `cell.adversary` drives the
  /// random seeding phase (and labels artifacts).
  CellConfig cell;
  int chains = 1;        ///< independent deterministic chains
  int threads = 1;       ///< workers executing chains (results independent)
  int seed_runs = 32;    ///< per chain: phase A, kind-adversary runs
  int mutation_runs = 96;///< per chain: phase B, corpus-mutation runs
  size_t corpus_capacity = 512;  ///< stored entries per chain
  std::string artifacts_dir;     ///< violation artifacts; empty = in-memory
  bool shrink = true;
  int shrink_max_evals = 4000;
};

struct SearchSummary {
  int64_t runs_executed = 0;
  int64_t events_executed = 0;
  size_t novel_fingerprints = 0;  ///< distinct across merged chains
  int64_t violations = 0;
  std::vector<ViolationReport> violation_reports;  ///< chain order
  Corpus corpus;  ///< merged in chain order (first discovery wins)

  // Perf (wall clock; not part of the deterministic result).
  double elapsed_seconds = 0;

  [[nodiscard]] std::string json(const SearchOptions& options) const;
};

/// Runs the coverage-guided search. The returned summary (minus
/// elapsed_seconds) is a pure function of the options — independent of
/// `threads` — because chains never share state until the ordered merge.
[[nodiscard]] SearchSummary run_search(const SearchOptions& options);

}  // namespace rcommit::swarm
