#include "swarm/broken.h"

#include <string>

#include "sim/message.h"

namespace rcommit::swarm {

namespace {

/// Contentless chatter so the recorded schedule contains deliveries the
/// shrinker has to reason about.
class BrokenBeacon final : public sim::MessageBase {
 public:
  [[nodiscard]] std::string debug_string() const override { return "BROKEN-BEACON"; }
};

}  // namespace

void BrokenCommitProcess::on_step(sim::StepContext& ctx,
                                  std::span<const sim::Envelope> delivered) {
  (void)delivered;
  if (!decision_.has_value()) {
    const Tick clock = ctx.clock();
    if (ctx.self() == 0 && clock >= options_.early_decide_clock) {
      decision_ = Decision::kCommit;
    } else if (ctx.self() == options_.n - 1 && ctx.self() != 0 &&
               clock >= options_.abort_decide_clock) {
      decision_ = Decision::kAbort;
    } else if (ctx.self() != 0 && clock >= options_.late_decide_clock) {
      decision_ = Decision::kCommit;
    } else if (clock % 4 == 1) {
      ctx.broadcast(sim::make_message<BrokenBeacon>());
    }
  }
}

std::vector<std::unique_ptr<sim::Process>> make_broken_fleet(int32_t n,
                                                             Tick early_decide_clock,
                                                             Tick abort_decide_clock,
                                                             Tick late_decide_clock) {
  std::vector<std::unique_ptr<sim::Process>> fleet;
  fleet.reserve(static_cast<size_t>(n));
  for (int32_t i = 0; i < n; ++i) {
    BrokenCommitProcess::Options options;
    options.n = n;
    options.early_decide_clock = early_decide_clock;
    options.abort_decide_clock = abort_decide_clock;
    options.late_decide_clock = late_decide_clock;
    fleet.push_back(std::make_unique<BrokenCommitProcess>(options));
  }
  return fleet;
}

}  // namespace rcommit::swarm
