#include "sim/tracedump.h"

#include <ostream>
#include <sstream>

#include "sim/ontime.h"

namespace rcommit::sim {

void dump_trace(std::ostream& os, const Trace& trace, const TraceDumpOptions& options) {
  os << "trace: n=" << trace.n << ", " << trace.events.size() << " events, "
     << trace.messages.size() << " messages\n";

  std::vector<MessageTiming> timings;
  if (options.k > 0) timings = classify_messages(trace, options.k);

  int64_t shown = 0;
  for (const auto& ev : trace.events) {
    if (shown++ >= options.max_events) {
      os << "... (truncated)\n";
      break;
    }
    os << "e" << ev.index << " p" << ev.proc << "@" << ev.clock_after;
    if (ev.crash) os << " CRASH";
    if (!ev.delivered.empty()) {
      os << " recv[";
      for (size_t i = 0; i < ev.delivered.size(); ++i) {
        if (i) os << ' ';
        os << 'm' << ev.delivered[i];
      }
      os << ']';
    }
    if (!ev.sent.empty()) {
      os << " send[";
      for (size_t i = 0; i < ev.sent.size(); ++i) {
        if (i) os << ' ';
        os << 'm' << ev.sent[i];
      }
      os << ']';
    }
    for (size_t p = 0; p < trace.decide_event.size(); ++p) {
      if (trace.decide_event[p].has_value() && *trace.decide_event[p] == ev.index) {
        os << " <-- p" << p << " DECIDES";
      }
    }
    os << '\n';
  }

  if (options.show_messages) {
    os << "messages:\n";
    for (const auto& m : trace.messages) {
      os << "  m" << m.id << " p" << m.from << "->p" << m.to << " sent@e"
         << m.sent_event << "(clk " << m.sender_clock << ")";
      if (m.received()) {
        os << " recv@e" << m.recv_event << "(clk " << m.receiver_clock << ")";
      } else {
        os << " never received";
      }
      if (options.k > 0 && m.id < static_cast<MsgId>(timings.size()) &&
          timings[static_cast<size_t>(m.id)].late) {
        os << " LATE";
      }
      os << '\n';
    }
  }
}

std::string trace_to_string(const Trace& trace, const TraceDumpOptions& options) {
  std::ostringstream os;
  dump_trace(os, trace, options);
  return os.str();
}

}  // namespace rcommit::sim
