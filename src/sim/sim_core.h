// The re-armable simulation engine (internal).
//
// SimCore is Simulator's former Impl, lifted out so two front ends can share
// it: sim::Simulator (single-shot: construct, run, discard) and
// sim::BatchRunner (batch.h: arm the same core once per run, keeping the
// in-flight slot table, the per-event scratch, the pending buffers, and the
// trace storage warm across an entire batch of runs). arm() resets every
// piece of run state while deliberately preserving vector and table
// capacity, so in a batch only the first run pays the warm-up allocations —
// the equivalence license is tests/batch_equivalence_test.cpp, which proves
// an armed-and-reused core produces byte-identical runs to a fresh one.
//
// This header is internal to src/sim: protocol and experiment code talks to
// Simulator or BatchRunner, never to SimCore directly.
//
// RCOMMIT_LINT_ALLOW_FILE(R6): the unordered container here backs only the
// legacy hot path (SimConfig::legacy_hot_path), kept verbatim so the
// determinism-equivalence suite and bench_simperf can compare it against the
// flat-table path inside one binary.
#pragma once

#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/payload_pool.h"
#include "common/rng.h"
#include "common/types.h"
#include "sim/adversary.h"
#include "sim/in_flight.h"
#include "sim/message.h"
#include "sim/pattern.h"
#include "sim/process.h"
#include "sim/simulator.h"
#include "sim/trace.h"

namespace rcommit::sim::internal {

/// StepContext handed to a process during one step. Collects sends so the
/// simulator can apply crash-time send suppression before committing them to
/// the buffers. One instance is owned by SimCore and re-armed via
/// begin_step() before every step, so the outgoing vector's capacity
/// survives across events and a steady-state step allocates nothing.
class SimStepContext final : public StepContext {
 public:
  void begin_step(ProcId self, int32_t n, Tick clock, RandomTape* tape) {
    self_ = self;
    n_ = n;
    clock_ = clock;
    tape_ = tape;
    outgoing_.clear();
  }

  // RCOMMIT_ANALYZE_ROOT(A1): the per-send enqueue every process goes through
  void send(ProcId to, MessageRef payload) override {
    RCOMMIT_CHECK_MSG(to >= 0 && to < n_, "send to invalid processor " << to);
    RCOMMIT_CHECK(payload != nullptr);
    // RCOMMIT_ANALYZE_ALLOW(A1): outgoing buffer is re-armed by begin_step; capacity survives across steps
    outgoing_.push_back({to, std::move(payload)});
  }

  // RCOMMIT_ANALYZE_ROOT(A1): the broadcast enqueue every process goes through
  void broadcast(MessageRef payload) override {
    RCOMMIT_CHECK(payload != nullptr);
    // RCOMMIT_ANALYZE_ALLOW(A1): outgoing buffer is re-armed by begin_step; capacity survives across steps
    for (ProcId to = 0; to < n_; ++to) outgoing_.push_back({to, payload});
  }

  [[nodiscard]] Tick clock() const override { return clock_; }
  [[nodiscard]] ProcId self() const override { return self_; }
  [[nodiscard]] int32_t n() const override { return n_; }
  RandomTape& random() override { return *tape_; }

  struct Outgoing {
    ProcId to;
    MessageRef payload;
  };
  [[nodiscard]] std::vector<Outgoing>& outgoing() { return outgoing_; }

 private:
  ProcId self_ = kNoProc;
  int32_t n_ = 0;
  Tick clock_ = 0;
  RandomTape* tape_ = nullptr;
  std::vector<Outgoing> outgoing_;
};

/// Holds all mutable run state; also implements the adversary's PatternView.
/// Non-owning: the front end keeps the fleet and the adversary alive for the
/// duration of the run (and, for run_cell-style gates, beyond it).
class SimCore final : public PatternView {
 public:
  SimCore() = default;

  SimCore(const SimCore&) = delete;
  SimCore& operator=(const SimCore&) = delete;

  /// Resets every piece of run state for a fresh run of `config` over
  /// `processes` driven by `adversary`, preserving the capacity of the
  /// in-flight table, the pending buffers, the scratch vectors, and the
  /// trace storage from any previous run on this core.
  void arm(const SimConfig& config,
           std::vector<std::unique_ptr<Process>>* processes, Adversary* adversary);

  /// Executes the armed run to completion. `pool` (may be null) is installed
  /// as the payload-pool scope for the whole run; the caller owns it so a
  /// batch can recycle one pool across runs.
  RunResult run(const std::shared_ptr<PayloadPool>& pool);

  // --- PatternView ----------------------------------------------------------
  [[nodiscard]] int32_t n() const override { return n_; }
  [[nodiscard]] EventIndex now() const override { return next_event_; }
  [[nodiscard]] Tick clock(ProcId p) const override {
    return clocks_[static_cast<size_t>(p)];
  }
  [[nodiscard]] bool crashed(ProcId p) const override {
    return crashed_[static_cast<size_t>(p)];
  }
  [[nodiscard]] bool halted(ProcId p) const override {
    return (*processes_)[static_cast<size_t>(p)]->halted();
  }
  [[nodiscard]] const std::vector<PendingInfo>& pending(ProcId p) const override {
    return buffers_[static_cast<size_t>(p)];
  }

 private:
  void apply(const Action& action);
  void apply_legacy(const Action& action);
  void record_delivery_metadata(const std::vector<Envelope>& delivered,
                                EventIndex event_index, Tick receiver_clock);
  void mark_crashed(ProcId p);
  [[nodiscard]] bool has_schedulable() const;
  [[nodiscard]] bool all_nonfaulty_decided() const;
  [[nodiscard]] bool all_nonfaulty_halted() const;
  RunResult finish(RunStatus status);

  SimConfig config_;
  std::vector<std::unique_ptr<Process>>* processes_ = nullptr;
  Adversary* adversary_ = nullptr;
  int32_t n_ = 0;

  std::vector<RandomTape> tapes_;
  std::vector<std::vector<PendingInfo>> buffers_;
  InFlightTable in_flight_;
  std::unordered_map<MsgId, Envelope> legacy_in_flight_;  ///< legacy path only
  std::vector<Tick> clocks_;
  std::vector<bool> crashed_;
  std::vector<bool> was_decided_;
  int32_t live_undecided_ = 0;  ///< processors neither crashed nor decided
  std::vector<std::optional<Tick>> decide_clock_;
  std::vector<std::optional<EventIndex>> decide_event_;

  // Reusable per-event scratch: cleared (capacity kept) instead of
  // reconstructed, so the steady-state step allocates nothing.
  Action action_;
  std::vector<Envelope> delivered_;
  SimStepContext ctx_;

  EventIndex next_event_ = 0;
  MsgId next_msg_id_ = 0;
  int64_t messages_sent_ = 0;
  int64_t messages_delivered_ = 0;
  Trace trace_;
};

}  // namespace rcommit::sim::internal
