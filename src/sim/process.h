// The processor abstraction (paper §2.1).
//
// A processor is a state machine with a message buffer and a private random
// tape. Each event (p, M, f) is one call to Process::on_step: the processor
// receives the (possibly empty) message set M chosen by the adversary, draws
// randomness f from its tape, changes state, and sends messages. Its clock is
// its step count. The same Process implementations run unchanged on the
// deterministic simulator and on the threaded transport runtime.
#pragma once

#include <optional>
#include <span>

#include "common/rng.h"
#include "common/types.h"
#include "sim/message.h"

namespace rcommit::sim {

/// Capabilities available to a processor during one step.
class StepContext {
 public:
  virtual ~StepContext() = default;

  /// Sends one message to processor `to` (0 <= to < n). Sending to self is
  /// allowed; the message goes through the buffer like any other.
  virtual void send(ProcId to, MessageRef payload) = 0;

  /// The paper's "broadcast": send to all n processors, self included.
  /// Not atomic — a processor can crash part-way through (the adversary's
  /// suppress_sends_to models exactly that, see sim/simulator.h).
  virtual void broadcast(MessageRef payload) = 0;

  /// This processor's clock: the number of steps taken, counting this one.
  [[nodiscard]] virtual Tick clock() const = 0;

  /// This processor's id.
  [[nodiscard]] virtual ProcId self() const = 0;

  /// Number of processors in the protocol.
  [[nodiscard]] virtual int32_t n() const = 0;

  /// The processor's private random tape.
  virtual RandomTape& random() = 0;
};

/// A protocol participant.
class Process {
 public:
  virtual ~Process() = default;

  /// One step: `delivered` is the message set M chosen by the adversary
  /// (possibly empty — a step with no deliveries still advances the clock,
  /// which is what makes timeouts expressible).
  virtual void on_step(StepContext& ctx, std::span<const Envelope> delivered) = 0;

  /// True once this processor has entered a decision state Y0 or Y1.
  /// Deciding is irreversible (checked by the simulator).
  [[nodiscard]] virtual bool decided() const = 0;

  /// The decision value; only meaningful when decided().
  [[nodiscard]] virtual Decision decision() const = 0;

  /// True once the processor needs no further steps (e.g. its commit
  /// subroutine returned). A halted processor is excluded from scheduling.
  /// Halting is about termination of the executable, not correctness: the
  /// paper's correctness conditions are phrased in terms of deciding.
  [[nodiscard]] virtual bool halted() const { return false; }
};

}  // namespace rcommit::sim
