#include "sim/rounds.h"

#include <algorithm>

#include "common/check.h"

namespace rcommit::sim {

RoundAnalyzer::RoundAnalyzer(const Trace& trace, Tick k)
    : trace_(trace), k_(k), n_(trace.n) {
  RCOMMIT_CHECK(k_ >= 1);
  RCOMMIT_CHECK(n_ >= 1);
  ends_.resize(static_cast<size_t>(n_));
  receipts_.resize(static_cast<size_t>(n_));
  for (const auto& m : trace_.messages) {
    if (!m.received()) continue;
    if (trace_.crashed[static_cast<size_t>(m.from)]) continue;  // faulty sender
    receipts_[static_cast<size_t>(m.to)].push_back(
        Receipt{m.from, m.sender_clock, m.receiver_clock});
  }
  // Level 1: round 1 ends when the clock reads K, for everyone.
  for (ProcId p = 0; p < n_; ++p) ends_[static_cast<size_t>(p)].push_back(k_);
  levels_ = 1;
}

void RoundAnalyzer::compute_next_level() {
  const int r = levels_ + 1;  // the round being computed
  std::vector<Tick> new_ends(static_cast<size_t>(n_));
  for (ProcId p = 0; p < n_; ++p) {
    const auto& my_ends = ends_[static_cast<size_t>(p)];
    Tick end = my_ends[static_cast<size_t>(r - 2)] + k_;  // K after round r-1 ends
    for (const auto& receipt : receipts_[static_cast<size_t>(p)]) {
      // Was this message sent in the sender's round r-1? Round r-1 of q spans
      // sender clocks (end_q[r-2], end_q[r-1]], with round 1 = (0, K].
      const auto& q_ends = ends_[static_cast<size_t>(receipt.sender)];
      const Tick lo = (r - 1 >= 2) ? q_ends[static_cast<size_t>(r - 3)] : 0;
      const Tick hi = q_ends[static_cast<size_t>(r - 2)];
      if (receipt.sender_clock > lo && receipt.sender_clock <= hi) {
        end = std::max(end, receipt.receiver_clock + k_);
      }
    }
    new_ends[static_cast<size_t>(p)] = end;
  }
  for (ProcId p = 0; p < n_; ++p) {
    ends_[static_cast<size_t>(p)].push_back(new_ends[static_cast<size_t>(p)]);
  }
  ++levels_;
}

Tick RoundAnalyzer::round_end(ProcId p, int round) {
  RCOMMIT_CHECK(p >= 0 && p < n_);
  RCOMMIT_CHECK(round >= 1);
  while (levels_ < round) compute_next_level();
  return ends_[static_cast<size_t>(p)][static_cast<size_t>(round - 1)];
}

int RoundAnalyzer::round_at(ProcId p, Tick clock) {
  RCOMMIT_CHECK(clock >= 1);
  int round = 1;
  while (round_end(p, round) < clock) ++round;
  return round;
}

std::optional<int> RoundAnalyzer::decision_round(ProcId p) {
  RCOMMIT_CHECK(p >= 0 && p < n_);
  const auto& clock = trace_.decide_clock[static_cast<size_t>(p)];
  if (!clock.has_value()) return std::nullopt;
  return round_at(p, *clock);
}

std::optional<int> RoundAnalyzer::max_decision_round() {
  std::optional<int> result;
  for (ProcId p = 0; p < n_; ++p) {
    if (trace_.crashed[static_cast<size_t>(p)]) continue;
    auto r = decision_round(p);
    if (!r.has_value()) continue;
    if (!result.has_value() || *r > *result) result = r;
  }
  return result;
}

}  // namespace rcommit::sim
