#include "sim/simulator.h"

#include "common/check.h"
#include "common/payload_pool.h"
#include "sim/sim_core.h"

namespace rcommit::sim {

bool RunResult::all_nonfaulty_decided() const {
  for (size_t p = 0; p < decisions.size(); ++p) {
    if (!crashed[p] && !decisions[p].has_value()) return false;
  }
  return true;
}

bool RunResult::has_conflicting_decisions() const {
  std::optional<Decision> seen;
  for (const auto& d : decisions) {
    if (!d.has_value()) continue;
    if (seen.has_value() && *seen != *d) return true;
    seen = d;
  }
  return false;
}

std::optional<Decision> RunResult::agreed_decision() const {
  RCOMMIT_CHECK_MSG(!has_conflicting_decisions(),
                    "agreement violated: two processors decided differently");
  for (const auto& d : decisions) {
    if (d.has_value()) return d;
  }
  return std::nullopt;
}

Simulator::Simulator(SimConfig config, std::vector<std::unique_ptr<Process>> processes,
                     std::unique_ptr<Adversary> adversary)
    : config_(config),
      core_(std::make_unique<internal::SimCore>()),
      processes_(std::move(processes)),
      adversary_(std::move(adversary)) {
  RCOMMIT_CHECK(adversary_ != nullptr);
  core_->arm(config_, &processes_, adversary_.get());
}

Simulator::~Simulator() = default;

RunResult Simulator::run() {
  // Single-shot semantics: the pool (when enabled) lives for exactly this
  // run, so Simulator behaves as it always did. BatchRunner is the front end
  // that keeps a pool (and the core's warmed-up storage) across runs.
  std::shared_ptr<PayloadPool> pool;
  // RCOMMIT_ANALYZE_ALLOW(A1): per-run pool in the single-shot front end; BatchRunner is the re-arming hot path
  if (config_.pool_payloads) pool = std::make_shared<PayloadPool>();
  return core_->run(pool);
}

}  // namespace rcommit::sim
