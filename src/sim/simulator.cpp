#include "sim/simulator.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "common/check.h"
#include "common/log.h"

namespace rcommit::sim {

bool RunResult::all_nonfaulty_decided() const {
  for (size_t p = 0; p < decisions.size(); ++p) {
    if (!crashed[p] && !decisions[p].has_value()) return false;
  }
  return true;
}

bool RunResult::has_conflicting_decisions() const {
  std::optional<Decision> seen;
  for (const auto& d : decisions) {
    if (!d.has_value()) continue;
    if (seen.has_value() && *seen != *d) return true;
    seen = d;
  }
  return false;
}

std::optional<Decision> RunResult::agreed_decision() const {
  RCOMMIT_CHECK_MSG(!has_conflicting_decisions(),
                    "agreement violated: two processors decided differently");
  for (const auto& d : decisions) {
    if (d.has_value()) return d;
  }
  return std::nullopt;
}

namespace {

/// StepContext handed to a process during one step. Collects sends so the
/// simulator can apply crash-time send suppression before committing them to
/// the buffers.
class SimStepContext final : public StepContext {
 public:
  SimStepContext(ProcId self, int32_t n, Tick clock, RandomTape& tape)
      : self_(self), n_(n), clock_(clock), tape_(tape) {}

  void send(ProcId to, MessageRef payload) override {
    RCOMMIT_CHECK_MSG(to >= 0 && to < n_, "send to invalid processor " << to);
    RCOMMIT_CHECK(payload != nullptr);
    outgoing_.push_back({to, std::move(payload)});
  }

  void broadcast(MessageRef payload) override {
    RCOMMIT_CHECK(payload != nullptr);
    for (ProcId to = 0; to < n_; ++to) outgoing_.push_back({to, payload});
  }

  [[nodiscard]] Tick clock() const override { return clock_; }
  [[nodiscard]] ProcId self() const override { return self_; }
  [[nodiscard]] int32_t n() const override { return n_; }
  RandomTape& random() override { return tape_; }

  struct Outgoing {
    ProcId to;
    MessageRef payload;
  };
  [[nodiscard]] std::vector<Outgoing>& outgoing() { return outgoing_; }

 private:
  ProcId self_;
  int32_t n_;
  Tick clock_;
  RandomTape& tape_;
  std::vector<Outgoing> outgoing_;
};

}  // namespace

/// Holds all mutable run state; also implements the adversary's PatternView.
class Simulator::Impl final : public PatternView {
 public:
  Impl(SimConfig config, std::vector<std::unique_ptr<Process>>& processes,
       std::unique_ptr<Adversary> adversary)
      : config_(config),
        processes_(processes),
        adversary_(std::move(adversary)),
        n_(static_cast<int32_t>(processes.size())) {
    RCOMMIT_CHECK(n_ >= 1);
    RCOMMIT_CHECK(adversary_ != nullptr);
    auto seeds = derive_seeds(config_.seed, n_);
    tapes_.reserve(static_cast<size_t>(n_));
    for (auto s : seeds) tapes_.emplace_back(s);
    buffers_.resize(static_cast<size_t>(n_));
    clocks_.assign(static_cast<size_t>(n_), 0);
    crashed_.assign(static_cast<size_t>(n_), false);
    was_decided_.assign(static_cast<size_t>(n_), false);
    trace_.n = n_;
    trace_.decide_clock.assign(static_cast<size_t>(n_), std::nullopt);
    trace_.decide_event.assign(static_cast<size_t>(n_), std::nullopt);
  }

  // --- PatternView ----------------------------------------------------------
  [[nodiscard]] int32_t n() const override { return n_; }
  [[nodiscard]] EventIndex now() const override { return next_event_; }
  [[nodiscard]] Tick clock(ProcId p) const override {
    return clocks_[static_cast<size_t>(p)];
  }
  [[nodiscard]] bool crashed(ProcId p) const override {
    return crashed_[static_cast<size_t>(p)];
  }
  [[nodiscard]] bool halted(ProcId p) const override {
    return processes_[static_cast<size_t>(p)]->halted();
  }
  [[nodiscard]] const std::vector<PendingInfo>& pending(ProcId p) const override {
    return buffers_[static_cast<size_t>(p)];
  }

  // --- run loop --------------------------------------------------------------
  RunResult run() {
    while (next_event_ < config_.max_events) {
      if (config_.stop_on_all_decided && all_nonfaulty_decided()) {
        return finish(RunStatus::kAllDecided);
      }
      if (!config_.stop_on_all_decided && all_nonfaulty_halted()) {
        return finish(all_nonfaulty_decided() ? RunStatus::kAllDecided
                                              : RunStatus::kNoSchedulable);
      }
      if (schedulable_count() == 0) {
        return finish(all_nonfaulty_decided() ? RunStatus::kAllDecided
                                              : RunStatus::kNoSchedulable);
      }
      if (adversary_->done(*this)) return finish(RunStatus::kAdversaryDone);
      apply(adversary_->next(*this));
    }
    return finish(all_nonfaulty_decided() ? RunStatus::kAllDecided
                                          : RunStatus::kEventLimit);
  }

 private:
  void apply(const Action& action) {
    const ProcId p = action.proc;
    RCOMMIT_CHECK_MSG(p >= 0 && p < n_, "adversary scheduled invalid proc " << p);
    RCOMMIT_CHECK_MSG(schedulable(p), "adversary scheduled unschedulable proc " << p);

    auto& proc = *processes_[static_cast<size_t>(p)];
    auto& buffer = buffers_[static_cast<size_t>(p)];

    // Remove the delivered subset from p's buffer.
    std::vector<Envelope> delivered;
    delivered.reserve(action.deliver.size());
    for (MsgId id : action.deliver) {
      auto it = std::find_if(buffer.begin(), buffer.end(),
                             [id](const PendingInfo& m) { return m.id == id; });
      RCOMMIT_CHECK_MSG(it != buffer.end(),
                        "adversary delivered message " << id << " not pending for " << p);
      delivered.push_back(std::move(in_flight_.at(id)));
      in_flight_.erase(id);
      buffer.erase(it);
    }

    const EventIndex event_index = next_event_++;
    TraceEvent trace_event;
    trace_event.index = event_index;
    trace_event.proc = p;
    trace_event.crash = action.crash;
    for (const auto& env : delivered) trace_event.delivered.push_back(env.id);

    const bool pure_failure_step = action.crash && action.suppress_sends_to.empty();
    if (pure_failure_step) {
      // The processor dies without executing its transition; the delivered
      // messages are consumed by the failure step (they were removed from the
      // buffer) but never observed, matching the (p, ⊥, f) formulation.
      crashed_[static_cast<size_t>(p)] = true;
      trace_event.clock_after = clocks_[static_cast<size_t>(p)];
      record_delivery_metadata(delivered, event_index, trace_event.clock_after);
      if (config_.record_trace) trace_.events.push_back(std::move(trace_event));
      return;
    }

    // Regular step (or crash-during-broadcast): execute the transition.
    const Tick clock_after = ++clocks_[static_cast<size_t>(p)];
    trace_event.clock_after = clock_after;
    record_delivery_metadata(delivered, event_index, clock_after);
    messages_delivered_ += static_cast<int64_t>(delivered.size());

    SimStepContext ctx(p, n_, clock_after, tapes_[static_cast<size_t>(p)]);
    proc.on_step(ctx, delivered);

    // A decision, once made, is forever (paper: Y0/Y1 are absorbing).
    if (was_decided_[static_cast<size_t>(p)]) {
      RCOMMIT_CHECK_MSG(proc.decided(), "processor " << p << " un-decided");
    } else if (proc.decided()) {
      was_decided_[static_cast<size_t>(p)] = true;
      trace_.decide_clock[static_cast<size_t>(p)] = clock_after;
      trace_.decide_event[static_cast<size_t>(p)] = event_index;
    }

    // Commit the step's sends, minus any the adversary suppressed (modelling
    // a crash in the middle of a broadcast).
    std::unordered_set<ProcId> suppressed(action.suppress_sends_to.begin(),
                                          action.suppress_sends_to.end());
    for (auto& out : ctx.outgoing()) {
      if (action.crash && suppressed.count(out.to) > 0) continue;
      const MsgId id = next_msg_id_++;
      Envelope env;
      env.id = id;
      env.from = p;
      env.to = out.to;
      env.sent_at_event = event_index;
      env.sender_clock = clock_after;
      env.payload = std::move(out.payload);

      buffers_[static_cast<size_t>(out.to)].push_back(
          PendingInfo{id, p, out.to, event_index, clock_after});
      in_flight_.emplace(id, std::move(env));
      trace_event.sent.push_back(id);
      ++messages_sent_;

      if (config_.record_trace) {
        TraceMessage tm;
        tm.id = id;
        tm.from = p;
        tm.to = out.to;
        tm.sent_event = event_index;
        tm.sender_clock = clock_after;
        trace_.messages.push_back(tm);
      }
    }

    if (action.crash) crashed_[static_cast<size_t>(p)] = true;
    if (config_.record_trace) trace_.events.push_back(std::move(trace_event));
  }

  void record_delivery_metadata(const std::vector<Envelope>& delivered,
                                EventIndex event_index, Tick receiver_clock) {
    if (!config_.record_trace) return;
    for (const auto& env : delivered) {
      auto& tm = trace_.messages[static_cast<size_t>(env.id)];
      tm.recv_event = event_index;
      tm.receiver_clock = receiver_clock;
    }
  }

  [[nodiscard]] bool all_nonfaulty_decided() const {
    for (ProcId p = 0; p < n_; ++p) {
      if (!crashed_[static_cast<size_t>(p)] &&
          !processes_[static_cast<size_t>(p)]->decided()) {
        return false;
      }
    }
    return true;
  }

  [[nodiscard]] bool all_nonfaulty_halted() const {
    for (ProcId p = 0; p < n_; ++p) {
      if (!crashed_[static_cast<size_t>(p)] &&
          !processes_[static_cast<size_t>(p)]->halted()) {
        return false;
      }
    }
    return true;
  }

  RunResult finish(RunStatus status) {
    RunResult result;
    result.status = status;
    result.events = next_event_;
    result.crashed = crashed_;
    result.messages_sent = messages_sent_;
    result.messages_delivered = messages_delivered_;
    result.decisions.resize(static_cast<size_t>(n_));
    for (ProcId p = 0; p < n_; ++p) {
      const auto& proc = *processes_[static_cast<size_t>(p)];
      if (proc.decided()) result.decisions[static_cast<size_t>(p)] = proc.decision();
    }
    trace_.crashed = crashed_;
    if (config_.record_trace) result.trace = std::move(trace_);
    return result;
  }

  SimConfig config_;
  std::vector<std::unique_ptr<Process>>& processes_;
  std::unique_ptr<Adversary> adversary_;
  int32_t n_;

  std::vector<RandomTape> tapes_;
  std::vector<std::vector<PendingInfo>> buffers_;
  std::unordered_map<MsgId, Envelope> in_flight_;
  std::vector<Tick> clocks_;
  std::vector<bool> crashed_;
  std::vector<bool> was_decided_;

  EventIndex next_event_ = 0;
  MsgId next_msg_id_ = 0;
  int64_t messages_sent_ = 0;
  int64_t messages_delivered_ = 0;
  Trace trace_;
};

Simulator::Simulator(SimConfig config, std::vector<std::unique_ptr<Process>> processes,
                     std::unique_ptr<Adversary> adversary)
    : processes_(std::move(processes)) {
  impl_ = std::make_unique<Impl>(config, processes_, std::move(adversary));
}

Simulator::~Simulator() = default;

RunResult Simulator::run() { return impl_->run(); }

}  // namespace rcommit::sim
