// Lateness and on-time checking (paper §2.2).
//
// "A message m from p to q is late in run R if any processor takes more than
// K steps between the event when m is sent and the event when m is received.
// A run is on-time if it contains no late messages."
#pragma once

#include <vector>

#include "common/types.h"
#include "sim/trace.h"

namespace rcommit::sim {

/// Verdict for one message.
struct MessageTiming {
  MsgId id = kNoMsg;
  bool received = false;
  bool late = false;
  /// Maximum number of steps any single processor took between send and
  /// receipt — or, for a message still pending at the end of the trace,
  /// between send and the end of the trace.
  int64_t max_steps_between = 0;
};

/// Classifies every message in the trace against the bound K. A message
/// received more than K steps (on any processor's clock) after its send is
/// late, per the paper's definition. A message still *pending* at the end of
/// the trace is also marked late once more than K steps have already elapsed
/// since its send: the paper's correctness conditions quantify over infinite
/// runs, and such a message can never be received on time in any extension
/// of this prefix. (A pending message within the K window is not late — the
/// run ended before its fate was determined.)
std::vector<MessageTiming> classify_messages(const Trace& trace, Tick k);

/// True iff the run contains no (actually or inevitably) late message.
bool is_on_time(const Trace& trace, Tick k);

/// Number of late messages in the run.
int64_t late_message_count(const Trace& trace, Tick k);

}  // namespace rcommit::sim
