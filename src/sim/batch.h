// Batch run-to-completion front end over the re-armable SimCore engine.
//
// A swarm sweep or a coverage search executes thousands of short runs, and
// with the single-shot Simulator every one of them re-pays the engine's
// warm-up: sizing the in-flight table, growing the pending buffers and
// per-event scratch, and priming a fresh payload pool. BatchRunner keeps one
// SimCore (and one PayloadPool, when pooling is on) alive across run() calls
// so only the first run in a batch allocates; every later run re-arms the
// same storage. The reuse is observably silent — capacity carried over from
// a previous run changes only when allocations happen, never a run's
// outputs — and tests/batch_equivalence_test.cpp holds the byte-identical
// proof against per-run Simulator construction.
//
// Usage mirrors Simulator but amortizes across calls:
//
//   sim::BatchRunner runner;
//   for (uint64_t seed : seeds) {
//     auto result = runner.run({.seed = seed, .record_trace = false,
//                               .pool_payloads = true},
//                              make_fleet(seed), make_adversary(seed));
//     ...
//   }
//
// Not thread-safe: one BatchRunner per worker thread.
#pragma once

#include <memory>
#include <vector>

#include "sim/adversary.h"
#include "sim/process.h"
#include "sim/simulator.h"

namespace rcommit {
class PayloadPool;  // common/payload_pool.h
}  // namespace rcommit

namespace rcommit::sim {

/// Aggregate counters across every run() this runner has executed; useful
/// for CPU-budget accounting in searches and benches.
struct BatchStats {
  int64_t runs = 0;
  int64_t events = 0;
  int64_t messages_sent = 0;
};

/// Runs a sequence of independent simulations on one warm engine. Each run
/// takes ownership of its fleet and adversary and keeps them alive until the
/// next run() (or destruction), so post-run inspection — invariant gates
/// walking processes(), recording adversaries yielding their schedule —
/// works exactly as it does with Simulator.
class BatchRunner {
 public:
  BatchRunner();
  ~BatchRunner();

  BatchRunner(const BatchRunner&) = delete;
  BatchRunner& operator=(const BatchRunner&) = delete;

  /// Executes one run to completion. The previous run's fleet and adversary
  /// are released on entry; the new ones stay owned by the runner afterwards
  /// (see processes() / adversary()).
  RunResult run(const SimConfig& config,
                std::vector<std::unique_ptr<Process>> processes,
                std::unique_ptr<Adversary> adversary);

  /// The fleet of the most recent run() (empty before the first run).
  [[nodiscard]] const std::vector<std::unique_ptr<Process>>& processes() const {
    return processes_;
  }

  /// The adversary of the most recent run() (null before the first run).
  /// Typed accessor for callers that handed in a wrapper they need back,
  /// e.g. a RecordingAdversary whose schedule the caller extracts.
  [[nodiscard]] Adversary* adversary() const { return adversary_.get(); }

  [[nodiscard]] const BatchStats& stats() const { return stats_; }

 private:
  std::unique_ptr<internal::SimCore> core_;
  std::shared_ptr<PayloadPool> pool_;  ///< persists across pooled runs
  std::vector<std::unique_ptr<Process>> processes_;
  std::unique_ptr<Adversary> adversary_;
  BatchStats stats_;
};

}  // namespace rcommit::sim
