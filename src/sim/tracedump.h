// Human-readable trace rendering.
//
// Turns a recorded run into a step-by-step narrative (who stepped, what was
// delivered, what was sent, who decided when) and a per-message ledger —
// the first thing to reach for when a property test shakes out a surprising
// interleaving.
#pragma once

#include <iosfwd>
#include <string>

#include "common/types.h"
#include "sim/trace.h"

namespace rcommit::sim {

struct TraceDumpOptions {
  bool show_messages = true;   ///< append the per-message ledger
  Tick k = 0;                  ///< when > 0, annotate late messages for this K
  int64_t max_events = 10'000; ///< truncate absurdly long traces
};

/// Writes the narrative to `os`.
void dump_trace(std::ostream& os, const Trace& trace, const TraceDumpOptions& options = {});

/// Convenience: render to a string (what tests embed in failure messages).
std::string trace_to_string(const Trace& trace, const TraceDumpOptions& options = {});

}  // namespace rcommit::sim
