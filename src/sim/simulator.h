// The deterministic run driver.
//
// Implements the paper's run construction (§2.3): a run is uniquely
// determined by an adversary A, an initial configuration I (the Process
// objects and their initial values), and a collection F of per-processor
// random tapes (derived from one master seed). The simulator applies the
// adversary's events one at a time, maintains the message buffers, records a
// trace, and stops when every schedulable nonfaulty processor has decided
// (and halted, when halting is in play), or on the event budget.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "sim/adversary.h"
#include "sim/message.h"
#include "sim/pattern.h"
#include "sim/process.h"
#include "sim/trace.h"

namespace rcommit::sim {

/// Why a run ended.
enum class RunStatus {
  kAllDecided,     ///< every nonfaulty processor decided
  kEventLimit,     ///< event budget exhausted (e.g. a deliberately blocked run)
  kAdversaryDone,  ///< the adversary's done() hook fired
  kNoSchedulable,  ///< every processor crashed or halted without all deciding
};

/// Everything an experiment needs to know about a finished run.
struct RunResult {
  RunStatus status = RunStatus::kEventLimit;
  int64_t events = 0;
  std::vector<std::optional<Decision>> decisions;  ///< per processor
  std::vector<bool> crashed;                       ///< per processor
  int64_t messages_sent = 0;
  int64_t messages_delivered = 0;

  /// Per-processor clock / event index at the moment it first decided
  /// (nullopt = never decided). Unlike the trace, these are populated
  /// regardless of record_trace, so trace-free runs (the swarm fast path)
  /// can still report decision ticks and stage depths.
  std::vector<std::optional<Tick>> decide_clock;
  std::vector<std::optional<EventIndex>> decide_event;

  Trace trace;  ///< populated when SimConfig::record_trace

  /// True iff every nonfaulty processor decided.
  [[nodiscard]] bool all_nonfaulty_decided() const;

  /// The single decision value, if all decided values agree; nullopt when no
  /// processor decided. Throws CheckFailure on conflicting decisions — a
  /// conflicting decision is a safety violation no experiment should absorb
  /// silently.
  [[nodiscard]] std::optional<Decision> agreed_decision() const;

  /// True if two decided processors hold different values (safety violation).
  [[nodiscard]] bool has_conflicting_decisions() const;
};

/// Simulator knobs.
struct SimConfig {
  uint64_t seed = 1;             ///< master seed; derives every tape
  int64_t max_events = 2'000'000;
  bool record_trace = true;
  /// Stop as soon as all nonfaulty decided even if not halted (default).
  /// Set false to keep running until halted as well (halt-policy bench).
  bool stop_on_all_decided = true;
  /// Route make_message payload allocations through a per-run PayloadPool
  /// (recycled fixed-size blocks instead of the global allocator). Purely an
  /// allocation strategy: runs are bit-identical with or without it.
  bool pool_payloads = false;
  /// Run the pre-optimization event loop (hash-map in-flight storage,
  /// per-step scratch allocations). Kept verbatim so the determinism-
  /// equivalence suite and bench_simperf can compare the two paths inside
  /// one binary; not for production use.
  bool legacy_hot_path = false;
};

namespace internal {
class SimCore;  // sim_core.h — the re-armable engine behind both front ends
}  // namespace internal

/// Drives one run. Single-shot: construct, call run(), inspect the result.
/// A thin wrapper over the re-armable internal::SimCore engine; batch
/// workloads that want to amortize the engine's warm-up allocations across
/// many runs use sim::BatchRunner (batch.h) over the same core instead.
class Simulator {
 public:
  Simulator(SimConfig config, std::vector<std::unique_ptr<Process>> processes,
            std::unique_ptr<Adversary> adversary);
  ~Simulator();

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Executes the run to completion and returns the result.
  RunResult run();

  /// The hosted processes (valid after run(); used by invariant checkers and
  /// by the omniscient bench adversary's side channel).
  [[nodiscard]] const std::vector<std::unique_ptr<Process>>& processes() const {
    return processes_;
  }

 private:
  SimConfig config_;
  std::unique_ptr<internal::SimCore> core_;
  std::vector<std::unique_ptr<Process>> processes_;
  std::unique_ptr<Adversary> adversary_;
};

}  // namespace rcommit::sim
