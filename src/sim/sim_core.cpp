#include "sim/sim_core.h"

#include <algorithm>
#include <unordered_set>

#include "common/check.h"

// RCOMMIT_LINT_ALLOW_FILE(R6): the unordered containers here live only on the
// legacy hot path (SimConfig::legacy_hot_path), kept verbatim so the
// determinism-equivalence suite and bench_simperf can compare it against the
// flat-table path inside one binary.

namespace rcommit::sim::internal {

void SimCore::arm(const SimConfig& config,
                  std::vector<std::unique_ptr<Process>>* processes,
                  Adversary* adversary) {
  RCOMMIT_CHECK(processes != nullptr);
  RCOMMIT_CHECK(adversary != nullptr);
  config_ = config;
  processes_ = processes;
  adversary_ = adversary;
  n_ = static_cast<int32_t>(processes->size());
  RCOMMIT_CHECK(n_ >= 1);

  // Every assignment below reuses the previous run's storage where the
  // contract allows it: assign()/clear() keep vector capacity, and the
  // in-flight table keeps its grown slot count — so in a batch only the
  // first run pays the warm-up allocations. None of this is observable in a
  // run's outputs (the equivalence suite holds the proof): a larger initial
  // table or pre-reserved buffer changes only when allocations happen.
  const auto seeds = derive_seeds(config_.seed, n_);
  tapes_.clear();
  // RCOMMIT_ANALYZE_ALLOW(A1): fleet-sized; later re-arms reuse the capacity
  tapes_.reserve(static_cast<size_t>(n_));
  // RCOMMIT_ANALYZE_ALLOW(A1): fills within the reservation above
  for (auto s : seeds) tapes_.emplace_back(s);

  if (buffers_.size() < static_cast<size_t>(n_)) {
    // RCOMMIT_ANALYZE_ALLOW(A1): grows only when the fleet outgrows every earlier run
    buffers_.resize(static_cast<size_t>(n_));
  }
  for (auto& buffer : buffers_) buffer.clear();
  in_flight_.clear();
  legacy_in_flight_.clear();

  // RCOMMIT_ANALYZE_ALLOW(A1): assign reuses capacity; fleet-sized
  clocks_.assign(static_cast<size_t>(n_), 0);
  // RCOMMIT_ANALYZE_ALLOW(A1): assign reuses capacity; fleet-sized
  crashed_.assign(static_cast<size_t>(n_), false);
  // RCOMMIT_ANALYZE_ALLOW(A1): assign reuses capacity; fleet-sized
  was_decided_.assign(static_cast<size_t>(n_), false);
  // RCOMMIT_ANALYZE_ALLOW(A1): assign reuses capacity; fleet-sized
  decide_clock_.assign(static_cast<size_t>(n_), std::nullopt);
  // RCOMMIT_ANALYZE_ALLOW(A1): assign reuses capacity; fleet-sized
  decide_event_.assign(static_cast<size_t>(n_), std::nullopt);
  live_undecided_ = n_;

  next_event_ = 0;
  next_msg_id_ = 0;
  messages_sent_ = 0;
  messages_delivered_ = 0;

  trace_.n = n_;
  trace_.events.clear();
  trace_.messages.clear();
  trace_.decide_clock.clear();
  trace_.decide_event.clear();
  trace_.crashed.clear();
}

// RCOMMIT_ANALYZE_ROOT(A1): the per-event step loop — the hot path bench_simperf gates at runtime
RunResult SimCore::run(const std::shared_ptr<PayloadPool>& pool) {
  RCOMMIT_CHECK_MSG(processes_ != nullptr, "SimCore::run before arm()");
  // Installed for the whole run so every make_message inside a process
  // step draws from the pool. A null pool makes the scope a no-op.
  PayloadPoolScope pool_scope(pool);

  while (next_event_ < config_.max_events) {
    // live_undecided_ counts processors that are neither crashed nor
    // decided, so the all-decided test is O(1) instead of a per-event scan
    // of virtual decided() calls (decisions only change inside on_step,
    // where the counter is maintained).
    if (config_.stop_on_all_decided && live_undecided_ == 0) {
      return finish(RunStatus::kAllDecided);
    }
    if (!config_.stop_on_all_decided && all_nonfaulty_halted()) {
      return finish(all_nonfaulty_decided() ? RunStatus::kAllDecided
                                            : RunStatus::kNoSchedulable);
    }
    if (!has_schedulable()) {
      return finish(all_nonfaulty_decided() ? RunStatus::kAllDecided
                                            : RunStatus::kNoSchedulable);
    }
    if (adversary_->done(*this)) return finish(RunStatus::kAdversaryDone);
    action_.reset();
    adversary_->next(*this, action_);
    if (config_.legacy_hot_path) {
      apply_legacy(action_);
    } else {
      apply(action_);
    }
  }
  return finish(all_nonfaulty_decided() ? RunStatus::kAllDecided
                                        : RunStatus::kEventLimit);
}

/// The optimized per-event path. In steady state (table capacity and
/// scratch vectors warmed up, payload pool primed) a non-crash step
/// performs zero heap allocations when tracing is off: delivery is an O(1)
/// table lookup per id plus one order-preserving compaction of the
/// receiver's buffer, sends reuse recycled slots and pooled payload
/// blocks, and no trace structures are touched.
void SimCore::apply(const Action& action) {
  const ProcId p = action.proc;
  RCOMMIT_CHECK_MSG(p >= 0 && p < n_, "adversary scheduled invalid proc " << p);
  RCOMMIT_CHECK_MSG(schedulable(p), "adversary scheduled unschedulable proc " << p);

  auto& proc = *(*processes_)[static_cast<size_t>(p)];
  auto& buffer = buffers_[static_cast<size_t>(p)];

  // Pull the delivered subset out of p's buffer: O(1) position lookup per
  // id, then one stable compaction from the first hole so the remaining
  // pending order — which the adversary observes — is exactly what
  // repeated single erases would have produced.
  delivered_.clear();
  size_t first_hole = buffer.size();
  for (MsgId id : action.deliver) {
    size_t pos = 0;
    Envelope env = in_flight_.take_at(id, &pos);  // CHECK-fails on a dead id
    RCOMMIT_CHECK_MSG(env.to == p,
                      "adversary delivered message " << id << " not pending for " << p);
    buffer[pos].id = kNoMsg;
    first_hole = std::min(first_hole, pos);
    // RCOMMIT_ANALYZE_ALLOW(A1): delivery scratch; capacity survives across steps
    delivered_.push_back(std::move(env));
  }
  if (!delivered_.empty()) {
    size_t w = first_hole;
    for (size_t r = first_hole; r < buffer.size(); ++r) {
      if (buffer[r].id == kNoMsg) continue;
      if (w != r) {
        buffer[w] = buffer[r];
        in_flight_.set_buffer_pos(buffer[w].id, w);
      }
      ++w;
    }
    // RCOMMIT_ANALYZE_ALLOW(A1): shrink-only compaction; resize below size() never allocates
    buffer.resize(w);
  }

  const EventIndex event_index = next_event_++;
  TraceEvent* te = nullptr;
  if (config_.record_trace) {
    // RCOMMIT_ANALYZE_ALLOW(A1): trace recording is opt-in and off on the measured path
    trace_.events.emplace_back();
    te = &trace_.events.back();
    te->index = event_index;
    te->proc = p;
    te->crash = action.crash;
    // RCOMMIT_ANALYZE_ALLOW(A1): trace recording is opt-in and off on the measured path
    te->delivered.assign(action.deliver.begin(), action.deliver.end());
  }

  const bool pure_failure_step = action.crash && action.suppress_sends_to.empty();
  if (pure_failure_step) {
    // The processor dies without executing its transition; the delivered
    // messages are consumed by the failure step (they were removed from the
    // buffer) but never observed, matching the (p, ⊥, f) formulation.
    mark_crashed(p);
    const Tick clock_now = clocks_[static_cast<size_t>(p)];
    record_delivery_metadata(delivered_, event_index, clock_now);
    if (te != nullptr) te->clock_after = clock_now;
    return;
  }

  // Regular step (or crash-during-broadcast): execute the transition.
  const Tick clock_after = ++clocks_[static_cast<size_t>(p)];
  if (te != nullptr) te->clock_after = clock_after;
  record_delivery_metadata(delivered_, event_index, clock_after);
  messages_delivered_ += static_cast<int64_t>(delivered_.size());

  ctx_.begin_step(p, n_, clock_after, &tapes_[static_cast<size_t>(p)]);
  proc.on_step(ctx_, delivered_);

  // A decision, once made, is forever (paper: Y0/Y1 are absorbing).
  if (was_decided_[static_cast<size_t>(p)]) {
    RCOMMIT_CHECK_MSG(proc.decided(), "processor " << p << " un-decided");
  } else if (proc.decided()) {
    was_decided_[static_cast<size_t>(p)] = true;
    decide_clock_[static_cast<size_t>(p)] = clock_after;
    decide_event_[static_cast<size_t>(p)] = event_index;
    --live_undecided_;
  }

  // Commit the step's sends, minus any the adversary suppressed (modelling
  // a crash in the middle of a broadcast). The suppression list is checked
  // by a linear scan — it is only non-empty on crash steps and holds at
  // most n entries, so no set is built.
  for (auto& out : ctx_.outgoing()) {
    if (action.crash &&
        std::find(action.suppress_sends_to.begin(),
                  action.suppress_sends_to.end(),
                  out.to) != action.suppress_sends_to.end()) {
      continue;
    }
    const MsgId id = next_msg_id_++;
    auto& receiver_buffer = buffers_[static_cast<size_t>(out.to)];
    const size_t buffer_pos = receiver_buffer.size();
    // RCOMMIT_ANALYZE_ALLOW(A1): pending buffer reuses capacity; growth tracks the run's max in-flight span
    receiver_buffer.push_back(PendingInfo{id, p, out.to, event_index, clock_after});

    Envelope env;
    env.id = id;
    env.from = p;
    env.to = out.to;
    env.sent_at_event = event_index;
    env.sender_clock = clock_after;
    env.payload = std::move(out.payload);
    in_flight_.insert(std::move(env), buffer_pos);
    ++messages_sent_;

    if (te != nullptr) {
      // RCOMMIT_ANALYZE_ALLOW(A1): trace recording is opt-in and off on the measured path
      te->sent.push_back(id);
      TraceMessage tm;
      tm.id = id;
      tm.from = p;
      tm.to = out.to;
      tm.sent_event = event_index;
      tm.sender_clock = clock_after;
      // RCOMMIT_ANALYZE_ALLOW(A1): trace recording is opt-in and off on the measured path
      trace_.messages.push_back(tm);
    }
  }

  if (action.crash) mark_crashed(p);
}

/// The pre-optimization per-event path, preserved so the two
/// implementations can be diffed (equivalence tests) and raced
/// (bench_simperf) within one binary: hash-map in-flight storage, a fresh
/// delivered vector and step context per step, a suppression set built on
/// every step, and trace bookkeeping performed even with tracing off.
// RCOMMIT_ANALYZE_ALLOW(A1): legacy stepping loop, kept in-binary only so the equivalence suite can diff it against apply(); the batch hot path never enters it
void SimCore::apply_legacy(const Action& action) {
  const ProcId p = action.proc;
  RCOMMIT_CHECK_MSG(p >= 0 && p < n_, "adversary scheduled invalid proc " << p);
  RCOMMIT_CHECK_MSG(schedulable(p), "adversary scheduled unschedulable proc " << p);

  auto& proc = *(*processes_)[static_cast<size_t>(p)];
  auto& buffer = buffers_[static_cast<size_t>(p)];

  // Remove the delivered subset from p's buffer.
  std::vector<Envelope> delivered;
  delivered.reserve(action.deliver.size());
  for (MsgId id : action.deliver) {
    auto it = std::find_if(buffer.begin(), buffer.end(),
                           [id](const PendingInfo& m) { return m.id == id; });
    RCOMMIT_CHECK_MSG(it != buffer.end(),
                      "adversary delivered message " << id << " not pending for " << p);
    delivered.push_back(std::move(legacy_in_flight_.at(id)));
    legacy_in_flight_.erase(id);
    buffer.erase(it);
  }

  const EventIndex event_index = next_event_++;
  TraceEvent trace_event;
  trace_event.index = event_index;
  trace_event.proc = p;
  trace_event.crash = action.crash;
  for (const auto& env : delivered) trace_event.delivered.push_back(env.id);

  const bool pure_failure_step = action.crash && action.suppress_sends_to.empty();
  if (pure_failure_step) {
    mark_crashed(p);
    trace_event.clock_after = clocks_[static_cast<size_t>(p)];
    record_delivery_metadata(delivered, event_index, trace_event.clock_after);
    if (config_.record_trace) trace_.events.push_back(std::move(trace_event));
    return;
  }

  // Regular step (or crash-during-broadcast): execute the transition.
  const Tick clock_after = ++clocks_[static_cast<size_t>(p)];
  trace_event.clock_after = clock_after;
  record_delivery_metadata(delivered, event_index, clock_after);
  messages_delivered_ += static_cast<int64_t>(delivered.size());

  SimStepContext ctx;
  ctx.begin_step(p, n_, clock_after, &tapes_[static_cast<size_t>(p)]);
  proc.on_step(ctx, delivered);

  if (was_decided_[static_cast<size_t>(p)]) {
    RCOMMIT_CHECK_MSG(proc.decided(), "processor " << p << " un-decided");
  } else if (proc.decided()) {
    was_decided_[static_cast<size_t>(p)] = true;
    decide_clock_[static_cast<size_t>(p)] = clock_after;
    decide_event_[static_cast<size_t>(p)] = event_index;
    --live_undecided_;
  }

  // Commit the step's sends, minus any the adversary suppressed.
  std::unordered_set<ProcId> suppressed(action.suppress_sends_to.begin(),
                                        action.suppress_sends_to.end());
  for (auto& out : ctx.outgoing()) {
    if (action.crash && suppressed.count(out.to) > 0) continue;
    const MsgId id = next_msg_id_++;
    Envelope env;
    env.id = id;
    env.from = p;
    env.to = out.to;
    env.sent_at_event = event_index;
    env.sender_clock = clock_after;
    env.payload = std::move(out.payload);

    buffers_[static_cast<size_t>(out.to)].push_back(
        PendingInfo{id, p, out.to, event_index, clock_after});
    legacy_in_flight_.emplace(id, std::move(env));
    trace_event.sent.push_back(id);
    ++messages_sent_;

    if (config_.record_trace) {
      TraceMessage tm;
      tm.id = id;
      tm.from = p;
      tm.to = out.to;
      tm.sent_event = event_index;
      tm.sender_clock = clock_after;
      trace_.messages.push_back(tm);
    }
  }

  if (action.crash) mark_crashed(p);
  if (config_.record_trace) trace_.events.push_back(std::move(trace_event));
}

void SimCore::record_delivery_metadata(const std::vector<Envelope>& delivered,
                                       EventIndex event_index, Tick receiver_clock) {
  if (!config_.record_trace) return;
  for (const auto& env : delivered) {
    auto& tm = trace_.messages[static_cast<size_t>(env.id)];
    tm.recv_event = event_index;
    tm.receiver_clock = receiver_clock;
  }
}

/// Crash bookkeeping shared by both hot paths: flips the crashed flag and
/// keeps live_undecided_ consistent (a processor that decided on an
/// earlier step already left the count).
void SimCore::mark_crashed(ProcId p) {
  crashed_[static_cast<size_t>(p)] = true;
  if (!was_decided_[static_cast<size_t>(p)]) --live_undecided_;
}

/// Early-exit replacement for schedulable_count() == 0 in the run loop:
/// usually the first probe hits a schedulable processor, so the common
/// case is one halted() virtual call instead of 2n.
bool SimCore::has_schedulable() const {
  for (ProcId p = 0; p < n_; ++p) {
    if (!crashed_[static_cast<size_t>(p)] &&
        !(*processes_)[static_cast<size_t>(p)]->halted()) {
      return true;
    }
  }
  return false;
}

bool SimCore::all_nonfaulty_decided() const {
  for (ProcId p = 0; p < n_; ++p) {
    if (!crashed_[static_cast<size_t>(p)] &&
        !(*processes_)[static_cast<size_t>(p)]->decided()) {
      return false;
    }
  }
  return true;
}

bool SimCore::all_nonfaulty_halted() const {
  for (ProcId p = 0; p < n_; ++p) {
    if (!crashed_[static_cast<size_t>(p)] &&
        !(*processes_)[static_cast<size_t>(p)]->halted()) {
      return false;
    }
  }
  return true;
}

RunResult SimCore::finish(RunStatus status) {
  RunResult result;
  result.status = status;
  result.events = next_event_;
  result.messages_sent = messages_sent_;
  result.messages_delivered = messages_delivered_;
  // RCOMMIT_ANALYZE_ALLOW(A1): once per run at teardown, not in the event loop
  result.decisions.resize(static_cast<size_t>(n_));
  for (ProcId p = 0; p < n_; ++p) {
    const auto& proc = *(*processes_)[static_cast<size_t>(p)];
    if (proc.decided()) result.decisions[static_cast<size_t>(p)] = proc.decision();
  }
  if (config_.record_trace) {
    trace_.crashed = crashed_;
    trace_.decide_clock = decide_clock_;
    trace_.decide_event = decide_event_;
    result.trace = std::move(trace_);
  }
  // The per-processor vectors are moved out wholesale; arm() re-assigns
  // them, so a moved-from state never reaches the next run.
  result.crashed = std::move(crashed_);
  result.decide_clock = std::move(decide_clock_);
  result.decide_event = std::move(decide_event_);
  return result;
}

}  // namespace rcommit::sim::internal
