// Schedule recording and replay.
//
// A run in the paper's model is uniquely determined by (adversary, initial
// configuration, random tapes) — §2.3. RecordingAdversary captures the exact
// action sequence an inner adversary produced; ReplayAdversary plays a
// captured sequence back verbatim. Together with the seeded tapes this gives
// bit-identical re-execution of any interesting run (a failing fuzz case, a
// rare interleaving) against modified protocol code — the foundation of the
// regression workflow.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "sim/adversary.h"

namespace rcommit::sim {

/// A serializable schedule: the adversary's decisions, in order.
struct RecordedSchedule {
  std::vector<Action> actions;

  /// Text round-trip (one action per line) for storing failing cases.
  [[nodiscard]] std::string serialize() const;
  static RecordedSchedule deserialize(const std::string& text);
};

/// Wraps an adversary and records every action it takes.
class RecordingAdversary final : public Adversary {
 public:
  explicit RecordingAdversary(std::unique_ptr<Adversary> inner);

  void next(const PatternView& view, Action& action) override;
  bool done(const PatternView& view) override;

  [[nodiscard]] const RecordedSchedule& schedule() const { return schedule_; }

 private:
  std::unique_ptr<Adversary> inner_;
  RecordedSchedule schedule_;
};

/// Replays a recorded schedule verbatim. Throws CheckFailure if the run
/// diverges (an action becomes inapplicable), which signals that the
/// protocol-side behaviour changed since the recording.
class ReplayAdversary final : public Adversary {
 public:
  explicit ReplayAdversary(RecordedSchedule schedule);

  void next(const PatternView& view, Action& action) override;
  bool done(const PatternView& view) override;

 private:
  RecordedSchedule schedule_;
  size_t position_ = 0;
};

}  // namespace rcommit::sim
