// Run traces.
//
// The simulator records every event and the fate of every message so that
// the paper's derived measures — asynchronous rounds (§2.2), lateness /
// on-time-ness (§2.2), decision times — can be computed after the fact by
// pure functions over the trace.
#pragma once

#include <optional>
#include <vector>

#include "common/types.h"

namespace rcommit::sim {

/// The full life of one message.
struct TraceMessage {
  MsgId id = kNoMsg;
  ProcId from = kNoProc;
  ProcId to = kNoProc;
  EventIndex sent_event = -1;   ///< event index at which it was sent
  Tick sender_clock = 0;        ///< sender's clock at send
  EventIndex recv_event = -1;   ///< event index of receipt; -1 = never received
  Tick receiver_clock = -1;     ///< receiver's clock at receipt; -1 = never

  [[nodiscard]] bool received() const { return recv_event >= 0; }
};

/// One event (p, M, f) of the schedule.
struct TraceEvent {
  EventIndex index = -1;
  ProcId proc = kNoProc;
  Tick clock_after = 0;          ///< proc's clock after the step
  bool crash = false;            ///< true if this was a failure step
  std::vector<MsgId> delivered;  ///< messages received at this event
  std::vector<MsgId> sent;       ///< messages sent at this event
};

/// Everything that happened in a run.
struct Trace {
  int32_t n = 0;
  std::vector<TraceEvent> events;
  std::vector<TraceMessage> messages;  ///< indexed by MsgId

  /// Per-processor clock at the moment it first decided; nullopt = never.
  std::vector<std::optional<Tick>> decide_clock;
  /// Per-processor event index at which it first decided; nullopt = never.
  std::vector<std::optional<EventIndex>> decide_event;
  /// Which processors crashed.
  std::vector<bool> crashed;

  /// Steps processor p took in the half-open global event window (from, to].
  /// Used by the lateness check: a message is late if any processor takes
  /// more than K steps between its send and its receipt.
  [[nodiscard]] int64_t steps_in_window(ProcId p, EventIndex from, EventIndex to) const;
};

}  // namespace rcommit::sim
