#include "sim/batch.h"

#include "common/check.h"
#include "common/payload_pool.h"
#include "sim/sim_core.h"

namespace rcommit::sim {

BatchRunner::BatchRunner() : core_(std::make_unique<internal::SimCore>()) {}

BatchRunner::~BatchRunner() = default;

// RCOMMIT_ANALYZE_ROOT(A1): the batch re-arm path — steady-state batches must reuse capacity
RunResult BatchRunner::run(const SimConfig& config,
                           std::vector<std::unique_ptr<Process>> processes,
                           std::unique_ptr<Adversary> adversary) {
  RCOMMIT_CHECK(adversary != nullptr);
  // Release the previous run's fleet/adversary first so the core is never
  // armed over dangling pointers, then install the new ones.
  processes_ = std::move(processes);
  adversary_ = std::move(adversary);

  core_->arm(config, &processes_, adversary_.get());

  // One pool for the whole batch: recycled blocks from earlier runs seed
  // later ones, which is the bulk of the per-run setup this front end
  // amortizes. Pooling stays opt-in per run, same as Simulator.
  std::shared_ptr<PayloadPool> pool;
  if (config.pool_payloads) {
    // RCOMMIT_ANALYZE_ALLOW(A1): the pool is built once per front end; every later batch run reuses it
    if (pool_ == nullptr) pool_ = std::make_shared<PayloadPool>();
    pool = pool_;
  }
  auto result = core_->run(pool);

  ++stats_.runs;
  stats_.events += result.events;
  stats_.messages_sent += result.messages_sent;
  return result;
}

}  // namespace rcommit::sim
