// Flat slot table for in-flight messages, indexed by the dense MsgId.
//
// The simulator assigns message ids sequentially, and a message leaves the
// table the moment it is delivered, so at any instant the live ids occupy a
// narrow sliding window of the id space. That makes a hash map (the previous
// representation) pure overhead: this table direct-maps id -> slot via
// `id & (capacity - 1)` over a power-of-two slot vector. No hashing, no
// probing, no per-entry nodes — a lookup is one index plus one id compare.
//
// Collisions are possible only when two *live* ids are congruent modulo the
// capacity, i.e. when the live id span outgrew the table; insert() then
// doubles the capacity (re-doubling until every live id lands in a distinct
// slot — a finite id set always separates) and re-places the survivors.
// Growth is amortized start-up cost: once the table covers the run's maximum
// in-flight span, the steady state performs zero allocations.
//
// Each slot also carries the message's current position in the receiver's
// pending buffer, turning delivery — previously a std::find_if scan of the
// buffer — into an O(1) lookup (see Simulator::Impl::apply).
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "common/check.h"
#include "sim/message.h"

namespace rcommit::sim {

/// Envelope storage for messages that are sent but not yet delivered.
class InFlightTable {
 public:
  explicit InFlightTable(size_t initial_capacity = 64) {
    size_t cap = 1;
    while (cap < initial_capacity) cap <<= 1;
    slots_.resize(cap);
    mask_ = cap - 1;
  }

  /// Stores `env` (env.id must be a valid, not-yet-stored id) together with
  /// the message's index in the receiver's pending buffer.
  // RCOMMIT_ANALYZE_ROOT(A1): per-send slot store; growth happens only via the grow() frontier
  void insert(Envelope&& env, size_t buffer_pos) {
    RCOMMIT_CHECK(env.id != kNoMsg);
    while (slots_[slot_of(env.id)].env.id != kNoMsg) grow();
    Slot& s = slots_[slot_of(env.id)];
    s.env = std::move(env);
    s.buffer_pos = buffer_pos;
    ++size_;
  }

  /// The stored envelope, or nullptr when `id` is not in flight.
  [[nodiscard]] const Envelope* find(MsgId id) const {
    const Slot& s = slots_[slot_of(id)];
    return s.env.id == id ? &s.env : nullptr;
  }

  /// The receiver-buffer position recorded for a live id.
  [[nodiscard]] size_t buffer_pos(MsgId id) const {
    const Slot& s = slots_[slot_of(id)];
    RCOMMIT_CHECK_MSG(s.env.id == id, "message " << id << " not in flight");
    return s.buffer_pos;
  }

  /// Re-points a live id at a new buffer position (the pending buffers stay
  /// order-preserving, so compaction after a delivery shifts survivors down).
  void set_buffer_pos(MsgId id, size_t pos) {
    Slot& s = slots_[slot_of(id)];
    RCOMMIT_CHECK_MSG(s.env.id == id, "message " << id << " not in flight");
    s.buffer_pos = pos;
  }

  /// Removes a live id, returning its envelope and (through
  /// `buffer_pos_out`) its receiver-buffer position — one slot lookup where
  /// find() + buffer_pos() + take() would make three.
  // RCOMMIT_ANALYZE_ROOT(A1): per-delivery slot removal
  [[nodiscard]] Envelope take_at(MsgId id, size_t* buffer_pos_out) {
    Slot& s = slots_[slot_of(id)];
    RCOMMIT_CHECK_MSG(s.env.id == id, "message " << id << " not in flight");
    *buffer_pos_out = s.buffer_pos;
    Envelope env = std::move(s.env);
    s.env = Envelope{};  // id = kNoMsg, payload released
    --size_;
    return env;
  }

  /// Removes a live id and returns its envelope; the slot goes back to the
  /// free state for reuse by a future id with the same residue.
  [[nodiscard]] Envelope take(MsgId id) {
    Slot& s = slots_[slot_of(id)];
    RCOMMIT_CHECK_MSG(s.env.id == id, "message " << id << " not in flight");
    Envelope env = std::move(s.env);
    s.env = Envelope{};  // id = kNoMsg, payload released
    --size_;
    return env;
  }

  /// Releases every live envelope and returns the table to the empty state
  /// while keeping the grown slot vector, so a re-armed batch run starts with
  /// the previous run's capacity already paid for.
  void clear() {
    if (size_ != 0) {
      for (Slot& s : slots_) {
        if (s.env.id != kNoMsg) s.env = Envelope{};
      }
    }
    size_ = 0;
  }

  [[nodiscard]] size_t size() const { return size_; }
  [[nodiscard]] size_t capacity() const { return slots_.size(); }

 private:
  struct Slot {
    Envelope env;           ///< env.id == kNoMsg marks a free slot
    size_t buffer_pos = 0;  ///< index into the receiver's pending buffer
  };

  [[nodiscard]] size_t slot_of(MsgId id) const {
    return static_cast<size_t>(static_cast<uint64_t>(id)) & mask_;
  }

  void grow() {
    // Double until every live id gets a distinct residue, then move them in.
    size_t cap = slots_.size();
    for (;;) {
      cap <<= 1;
      const size_t mask = cap - 1;
      bool ok = true;
      std::vector<bool> used(cap, false);
      for (const Slot& s : slots_) {
        if (s.env.id == kNoMsg) continue;
        const size_t idx = static_cast<size_t>(static_cast<uint64_t>(s.env.id)) & mask;
        if (used[idx]) {
          ok = false;
          break;
        }
        used[idx] = true;
      }
      if (!ok) continue;
      std::vector<Slot> fresh(cap);
      for (Slot& s : slots_) {
        if (s.env.id == kNoMsg) continue;
        const size_t idx = static_cast<size_t>(static_cast<uint64_t>(s.env.id)) & mask;
        fresh[idx] = std::move(s);
      }
      slots_ = std::move(fresh);
      mask_ = mask;
      return;
    }
  }

  std::vector<Slot> slots_;
  size_t mask_ = 0;
  size_t size_ = 0;
};

}  // namespace rcommit::sim
