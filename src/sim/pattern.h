// The adversary's view of a run: the message *pattern* only (paper §2.3).
//
// "The point of making this definition is to isolate the pattern of message
// sending and receiving while hiding the contents of the messages." The
// PatternView type enforces that structurally: there is no way to reach a
// payload through it, so every Adversary written against this interface is
// content-oblivious by construction. (The one deliberate exception, the
// omniscient Ben-Or worst-case adversary, is handed side-channel accessors by
// its bench and is documented as strictly stronger than the model.)
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.h"

namespace rcommit::sim {

/// Metadata for one in-flight message.
struct PendingInfo {
  MsgId id = kNoMsg;
  ProcId from = kNoProc;
  ProcId to = kNoProc;
  EventIndex sent_at_event = -1;  ///< global event index of the send
  Tick sender_clock = 0;          ///< sender's clock at send time
};

/// Read-only, contents-free view of the run so far.
class PatternView {
 public:
  virtual ~PatternView() = default;

  /// Number of processors.
  [[nodiscard]] virtual int32_t n() const = 0;

  /// Global event count so far (the index the next event will get).
  [[nodiscard]] virtual EventIndex now() const = 0;

  /// Processor p's clock (steps taken so far).
  [[nodiscard]] virtual Tick clock(ProcId p) const = 0;

  /// True if p has taken a failure step.
  [[nodiscard]] virtual bool crashed(ProcId p) const = 0;

  /// True if p has halted (needs no more steps). Halting is externally
  /// observable — a halted processor stops sending — so exposing it does not
  /// leak state beyond the message pattern.
  [[nodiscard]] virtual bool halted(ProcId p) const = 0;

  /// Messages currently in p's buffer (sent to p, not yet received).
  [[nodiscard]] virtual const std::vector<PendingInfo>& pending(ProcId p) const = 0;

  /// Convenience: true if p can still be scheduled for a step.
  [[nodiscard]] bool schedulable(ProcId p) const { return !crashed(p) && !halted(p); }

  /// Convenience: number of schedulable processors.
  [[nodiscard]] int32_t schedulable_count() const {
    int32_t c = 0;
    for (ProcId p = 0; p < n(); ++p) {
      if (schedulable(p)) ++c;
    }
    return c;
  }
};

}  // namespace rcommit::sim
