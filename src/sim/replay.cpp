#include "sim/replay.h"

#include <sstream>

#include "common/check.h"

namespace rcommit::sim {

std::string RecordedSchedule::serialize() const {
  std::ostringstream os;
  for (const auto& action : actions) {
    os << action.proc;
    if (action.crash) os << " X";
    os << " d";
    for (MsgId id : action.deliver) os << ' ' << id;
    os << " s";
    for (ProcId p : action.suppress_sends_to) os << ' ' << p;
    os << '\n';
  }
  return os.str();
}

RecordedSchedule RecordedSchedule::deserialize(const std::string& text) {
  RecordedSchedule schedule;
  std::istringstream is(text);
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    std::istringstream ls(line);
    Action action;
    ls >> action.proc;
    std::string token;
    enum { kNone, kDeliver, kSuppress } mode = kNone;
    while (ls >> token) {
      if (token == "X") {
        action.crash = true;
      } else if (token == "d") {
        mode = kDeliver;
      } else if (token == "s") {
        mode = kSuppress;
      } else if (mode == kDeliver) {
        action.deliver.push_back(std::stoll(token));
      } else if (mode == kSuppress) {
        action.suppress_sends_to.push_back(static_cast<ProcId>(std::stol(token)));
      } else {
        throw CheckFailure("malformed schedule line: " + line);
      }
    }
    // A non-empty suppress list implies a crash-during-send action.
    if (!action.suppress_sends_to.empty()) action.crash = true;
    schedule.actions.push_back(std::move(action));
  }
  return schedule;
}

RecordingAdversary::RecordingAdversary(std::unique_ptr<Adversary> inner)
    : inner_(std::move(inner)) {
  RCOMMIT_CHECK(inner_ != nullptr);
}

// RCOMMIT_ANALYZE_ALLOW(A1): recording boundary — the tape's purpose is to grow with the schedule it captures; replay runs, not recording runs, are the measured path
void RecordingAdversary::next(const PatternView& view, Action& action) {
  inner_->next(view, action);
  schedule_.actions.push_back(action);
}

bool RecordingAdversary::done(const PatternView& view) { return inner_->done(view); }

ReplayAdversary::ReplayAdversary(RecordedSchedule schedule)
    : schedule_(std::move(schedule)) {}

void ReplayAdversary::next(const PatternView& view, Action& action) {
  (void)view;
  RCOMMIT_CHECK_MSG(position_ < schedule_.actions.size(),
                    "replay exhausted at event " << position_
                                                 << " — run diverged from recording");
  // Copy-assign into the caller's scratch: the recorded action is reused on
  // later replays, and the scratch vectors keep their capacity.
  action = schedule_.actions[position_++];
}

bool ReplayAdversary::done(const PatternView& view) {
  (void)view;
  return position_ >= schedule_.actions.size();
}

}  // namespace rcommit::sim
