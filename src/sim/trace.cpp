#include "sim/trace.h"

#include "common/check.h"

namespace rcommit::sim {

int64_t Trace::steps_in_window(ProcId p, EventIndex from, EventIndex to) const {
  RCOMMIT_CHECK(from <= to);
  int64_t count = 0;
  for (const auto& ev : events) {
    if (ev.index <= from) continue;
    if (ev.index > to) break;
    if (ev.proc == p && !ev.crash) ++count;
  }
  return count;
}

}  // namespace rcommit::sim
