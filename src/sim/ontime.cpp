#include "sim/ontime.h"

#include <algorithm>

#include "common/check.h"

namespace rcommit::sim {

namespace {

/// Per-processor cumulative step counts indexed by event position, so the
/// steps a processor took inside any global event window can be answered in
/// O(1) per query after O(events) setup.
class StepPrefix {
 public:
  explicit StepPrefix(const Trace& trace) : n_(trace.n) {
    const auto num_events = trace.events.size();
    prefix_.assign(static_cast<size_t>(n_), std::vector<int64_t>(num_events + 1, 0));
    for (size_t i = 0; i < num_events; ++i) {
      const auto& ev = trace.events[i];
      for (ProcId p = 0; p < n_; ++p) {
        prefix_[static_cast<size_t>(p)][i + 1] =
            prefix_[static_cast<size_t>(p)][i] +
            ((ev.proc == p && !ev.crash) ? 1 : 0);
      }
    }
  }

  /// Steps by p in the window of event indices (from, to].
  [[nodiscard]] int64_t steps(ProcId p, EventIndex from, EventIndex to) const {
    const auto& row = prefix_[static_cast<size_t>(p)];
    return row[static_cast<size_t>(to) + 1] - row[static_cast<size_t>(from) + 1];
  }

  [[nodiscard]] int32_t n() const { return n_; }

 private:
  int32_t n_;
  std::vector<std::vector<int64_t>> prefix_;
};

}  // namespace

std::vector<MessageTiming> classify_messages(const Trace& trace, Tick k) {
  RCOMMIT_CHECK(k >= 1);
  StepPrefix prefix(trace);
  std::vector<MessageTiming> out;
  out.reserve(trace.messages.size());
  const auto last_event =
      static_cast<EventIndex>(trace.events.empty() ? 0 : trace.events.size() - 1);
  for (const auto& m : trace.messages) {
    MessageTiming timing;
    timing.id = m.id;
    timing.received = m.received();
    // For a pending message, measure against the end of the trace: once K
    // steps have passed, no extension of this run can deliver it on time.
    const EventIndex until = m.received() ? m.recv_event : last_event;
    int64_t max_steps = 0;
    for (ProcId p = 0; p < prefix.n(); ++p) {
      max_steps = std::max(max_steps, prefix.steps(p, m.sent_event, until));
    }
    timing.max_steps_between = max_steps;
    timing.late = max_steps > k;
    out.push_back(timing);
  }
  return out;
}

bool is_on_time(const Trace& trace, Tick k) { return late_message_count(trace, k) == 0; }

int64_t late_message_count(const Trace& trace, Tick k) {
  int64_t late = 0;
  for (const auto& t : classify_messages(trace, k)) {
    if (t.late) ++late;
  }
  return late;
}

}  // namespace rcommit::sim
