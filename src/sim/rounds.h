// Asynchronous rounds (paper §2.2).
//
// The paper's time measure: "Asynchronous round 1 begins for processor p when
// p first takes a step and ends when p's clock reads K. Asynchronous round r,
// r > 1, begins for p at the end of p's round r−1 and ends either K clock
// ticks after the end of round r−1, or K clock ticks after p receives the
// last message sent by a nonfaulty processor q in q's round r−1, whichever
// happens later."
//
// RoundAnalyzer computes the per-processor round-end clocks from a finished
// trace, level by level (round r ends depend only on round r−1 ends of the
// senders, so the induction is well-founded), and maps decision clocks to
// decision rounds. This is the measure behind Lemma 6 / Theorem 10
// ("14 expected asynchronous rounds").
#pragma once

#include <optional>
#include <vector>

#include "common/types.h"
#include "sim/trace.h"

namespace rcommit::sim {

class RoundAnalyzer {
 public:
  /// `k` is the on-time bound K. Senders that crashed in the run are treated
  /// as faulty and their messages do not extend rounds, per the definition.
  RoundAnalyzer(const Trace& trace, Tick k);

  /// The clock value (on p's own clock) at which p's round `round` ends.
  /// round >= 1. Computed lazily and cached.
  Tick round_end(ProcId p, int round);

  /// The round containing clock value `clock` for processor p (clock >= 1).
  int round_at(ProcId p, Tick clock);

  /// The asynchronous round in which p decided; nullopt if p never decided.
  std::optional<int> decision_round(ProcId p);

  /// Largest decision round over all nonfaulty processors that decided;
  /// nullopt when no nonfaulty processor decided.
  std::optional<int> max_decision_round();

 private:
  /// Extends every processor's cached round ends by one more level.
  void compute_next_level();

  struct Receipt {
    ProcId sender;
    Tick sender_clock;    ///< sender's clock at send
    Tick receiver_clock;  ///< this processor's clock at receipt
  };

  const Trace& trace_;
  Tick k_;
  int32_t n_;
  int levels_ = 0;                           ///< rounds computed so far
  std::vector<std::vector<Tick>> ends_;      ///< ends_[p][r-1] = end of round r
  std::vector<std::vector<Receipt>> receipts_;  ///< per receiver, nonfaulty senders only
};

}  // namespace rcommit::sim
