// Message payloads and envelopes.
//
// The simulator is protocol-agnostic: payloads are immutable objects derived
// from MessageBase and are carried by shared_ptr<const ...> so delivering a
// broadcast to n recipients never copies the payload. The adversary never
// sees payloads (see pattern.h) — only the protocol code that receives an
// Envelope may downcast it.
#pragma once

#include <memory>
#include <string>
#include <utility>

#include "common/payload_pool.h"
#include "common/rng.h"
#include "common/types.h"

namespace rcommit::sim {

class MessageBase;

/// Immutable shared handle to a payload.
using MessageRef = std::shared_ptr<const MessageBase>;

/// Base class of every message payload exchanged by protocol code.
class MessageBase {
 public:
  virtual ~MessageBase() = default;

  /// Human-readable rendering for traces and test failure messages.
  [[nodiscard]] virtual std::string debug_string() const = 0;

  /// Byzantine content-corruption hook (adversary/byzantine.h). Returns a
  /// tampered copy of this payload with randomness drawn from `tape`, or
  /// nullptr when the type does not model corruption (the default). The
  /// content-oblivious boundary is preserved by the division of labour: the
  /// Byzantine wrapper decides *when* to corrupt and forwards the result
  /// blindly, while the payload type alone defines *what* a corrupted copy
  /// contains. Implementations must be deterministic functions of
  /// (payload, tape draws).
  [[nodiscard]] virtual MessageRef corrupted(RandomTape& tape) const;
};

inline MessageRef MessageBase::corrupted(RandomTape& /*tape*/) const {
  return nullptr;
}

/// Constructs a payload of concrete type T in place. When the caller runs
/// under a PayloadPoolScope (the simulator installs one when
/// SimConfig::pool_payloads is set), the payload and its shared_ptr control
/// block come from the pool in a single recycled block; otherwise this is a
/// plain make_shared. Either way the result is an ordinary shared_ptr — the
/// pool outlives every block it handed out because the control block's
/// allocator keeps the pool alive.
// RCOMMIT_ANALYZE_ROOT(A1): the per-send payload construction path
template <typename T, typename... Args>
MessageRef make_message(Args&&... args) {
  if (const std::shared_ptr<PayloadPool>& pool = active_payload_pool()) {
    // RCOMMIT_ANALYZE_ALLOW(A1): payload + control block come from a recycled PayloadPool block via PoolAllocator, whose fast path is proven from its own root
    return std::allocate_shared<T>(PoolAllocator<T>(pool),
                                   std::forward<Args>(args)...);
  }
  // RCOMMIT_ANALYZE_ALLOW(A1): unpooled mode — callers that leave SimConfig::pool_payloads off accept per-message heap traffic
  return std::make_shared<const T>(std::forward<Args>(args)...);
}

/// Downcasts a payload; returns nullptr when the payload is a different type.
template <typename T>
const T* msg_cast(const MessageRef& m) {
  return dynamic_cast<const T*>(m.get());
}

/// Deleted: binding the result of msg_cast to a temporary MessageRef leaves
/// the returned raw pointer dangling as soon as the full expression ends
/// (UBSan caught exactly this in the wire round-trip tests). Name the
/// decoded MessageRef first, then cast it.
template <typename T>
const T* msg_cast(MessageRef&& m) = delete;

/// A message instance: payload plus routing and timing metadata. Envelopes
/// are created by the simulator (or the transport runtime) at send time and
/// handed to the recipient at delivery time.
struct Envelope {
  MsgId id = kNoMsg;
  ProcId from = kNoProc;
  ProcId to = kNoProc;
  EventIndex sent_at_event = -1;  ///< global index of the sending event
  Tick sender_clock = 0;          ///< sender's clock when the message was sent
  MessageRef payload;
};

}  // namespace rcommit::sim
