// The adversary interface (paper §2.3).
//
// "The adversary can be considered a scheduler — it decides which processor
// takes a step next and what messages are received." It also decides which
// processors fail and when (fail-stop). It sees only the message pattern
// (PatternView), never message contents, local states, or coin flips.
#pragma once

#include <optional>
#include <vector>

#include "common/types.h"
#include "sim/pattern.h"

namespace rcommit::sim {

/// One scheduling decision: which processor steps and what it receives.
struct Action {
  /// The processor that takes the next step.
  ProcId proc = kNoProc;

  /// Subset of proc's buffered messages to deliver at this step (ids must be
  /// pending for proc). Empty set is a legal step (paper: "which can be
  /// empty").
  std::vector<MsgId> deliver;

  /// If true, this is a failure step: the processor crashes. If
  /// suppress_sends_to is empty the processor crashes *before* executing its
  /// transition (pure failure step). If non-empty, the processor executes the
  /// step but its sends to the listed destinations are discarded and it then
  /// crashes — this models the paper's "processor failing in the middle of a
  /// broadcast" (messages sent at a processor's last step are not
  /// guaranteed).
  bool crash = false;
  std::vector<ProcId> suppress_sends_to;

  /// Returns the action to its default state while keeping the vectors'
  /// capacity, so a caller-owned scratch Action makes next() allocation-free
  /// in steady state. The simulator resets its scratch before every next()
  /// call; adversaries may assume a reset action and only append.
  void reset() {
    proc = kNoProc;
    deliver.clear();
    crash = false;
    suppress_sends_to.clear();
  }
};

/// A scheduling strategy. Implementations must be *t-admissible* for the
/// experiments that assume it: crash at most t processors, eventually deliver
/// every guaranteed message to a nonfaulty processor, and keep scheduling
/// every nonfaulty processor. The simulator validates actions (ids pending,
/// processor schedulable) and reports — but does not repair — unfair
/// schedules, because some experiments (Theorem 11, Theorem 14) deliberately
/// run inadmissible adversaries to demonstrate blocking.
class Adversary {
 public:
  virtual ~Adversary() = default;

  /// Produces the next event by filling `action` (handed in already reset()
  /// by the caller, retaining vector capacity across events — this is what
  /// keeps the simulator's hot loop allocation-free). Must choose a
  /// schedulable processor; if none exists the simulator stops before
  /// calling this.
  virtual void next(const PatternView& view, Action& action) = 0;

  /// Optional early-stop hook: return true to end the run (e.g. an
  /// experiment that only cares about a prefix).
  virtual bool done(const PatternView& view) {
    (void)view;
    return false;
  }
};

}  // namespace rcommit::sim
