#include "faultinject/plan.h"

#include <algorithm>
#include <sstream>

#include "common/check.h"
#include "common/rng.h"

namespace rcommit::faultinject {

namespace {

/// One draw per (seed, space, site): SplitMix64 over mixed coordinates, the
/// same idiom as the swarm matrix's cell seeds — adding sites to the horizon
/// never changes the draws of existing sites.
uint64_t site_draw(uint64_t seed, uint64_t space, int64_t site) {
  SplitMix64 mix(seed ^ (space * 0x9e3779b97f4a7c15ULL) ^
                 (static_cast<uint64_t>(site) * 0xbf58476d1ce4e5b9ULL));
  return mix.next();
}

FaultAction action_at(const std::vector<FaultAction>& actions, int64_t site) {
  const auto it = std::lower_bound(
      actions.begin(), actions.end(), site,
      [](const FaultAction& a, int64_t s) { return a.site < s; });
  if (it != actions.end() && it->site == site) return *it;
  return FaultAction{site, FaultKind::kNone, 0};
}

void insert_sorted(std::vector<FaultAction>& actions, const FaultAction& action) {
  const auto it = std::lower_bound(
      actions.begin(), actions.end(), action.site,
      [](const FaultAction& a, int64_t s) { return a.site < s; });
  RCOMMIT_CHECK_MSG(it == actions.end() || it->site != action.site,
                    "duplicate fault action at site " << action.site);
  actions.insert(it, action);
}

}  // namespace

const char* to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNone: return "none";
    case FaultKind::kCrashBefore: return "crash-before";
    case FaultKind::kTornWrite: return "torn";
    case FaultKind::kPartialFlush: return "partial-flush";
    case FaultKind::kDuplicate: return "duplicate";
    case FaultKind::kCrashAfter: return "crash-after";
    case FaultKind::kRpcDrop: return "rpc-drop";
    case FaultKind::kRpcDuplicate: return "rpc-duplicate";
    case FaultKind::kRpcDelay: return "rpc-delay";
    case FaultKind::kRpcReorder: return "rpc-reorder";
  }
  return "none";
}

FaultKind parse_fault_kind(const std::string& name) {
  for (const FaultKind kind :
       {FaultKind::kNone, FaultKind::kCrashBefore, FaultKind::kTornWrite,
        FaultKind::kPartialFlush, FaultKind::kDuplicate, FaultKind::kCrashAfter,
        FaultKind::kRpcDrop, FaultKind::kRpcDuplicate, FaultKind::kRpcDelay,
        FaultKind::kRpcReorder}) {
    if (name == to_string(kind)) return kind;
  }
  RCOMMIT_CHECK_MSG(false, "unknown fault kind '" << name << "'");
  return FaultKind::kNone;
}

bool is_wal_kind(FaultKind kind) {
  switch (kind) {
    case FaultKind::kCrashBefore:
    case FaultKind::kTornWrite:
    case FaultKind::kPartialFlush:
    case FaultKind::kDuplicate:
    case FaultKind::kCrashAfter:
      return true;
    case FaultKind::kNone:
    case FaultKind::kRpcDrop:
    case FaultKind::kRpcDuplicate:
    case FaultKind::kRpcDelay:
    case FaultKind::kRpcReorder:
      return false;
  }
  return false;
}

bool is_crash_kind(FaultKind kind) {
  switch (kind) {
    case FaultKind::kCrashBefore:
    case FaultKind::kTornWrite:
    case FaultKind::kPartialFlush:
    case FaultKind::kCrashAfter:
      return true;
    case FaultKind::kNone:
    case FaultKind::kDuplicate:
    case FaultKind::kRpcDrop:
    case FaultKind::kRpcDuplicate:
    case FaultKind::kRpcDelay:
    case FaultKind::kRpcReorder:
      return false;
  }
  return false;
}

FaultPlan FaultPlan::none() { return FaultPlan{}; }

FaultPlan FaultPlan::wal_fault_at(int64_t site, FaultKind kind, uint64_t arg) {
  RCOMMIT_CHECK(is_wal_kind(kind));
  FaultPlan plan;
  plan.add({site, kind, arg});
  return plan;
}

FaultPlan FaultPlan::rpc_fault_at(int64_t site, FaultKind kind, uint64_t arg) {
  RCOMMIT_CHECK(!is_wal_kind(kind) && kind != FaultKind::kNone);
  FaultPlan plan;
  plan.add({site, kind, arg});
  return plan;
}

FaultPlan FaultPlan::from_seed(uint64_t seed, const FaultPlanOptions& options) {
  FaultPlan plan;
  plan.seed_ = seed;
  static constexpr FaultKind kWalCrashKinds[] = {
      FaultKind::kCrashBefore, FaultKind::kTornWrite, FaultKind::kPartialFlush,
      FaultKind::kCrashAfter};
  static constexpr FaultKind kRpcKinds[] = {
      FaultKind::kRpcDrop, FaultKind::kRpcDuplicate, FaultKind::kRpcDelay,
      FaultKind::kRpcReorder};
  for (int64_t site = 0; site < options.wal_horizon; ++site) {
    const uint64_t draw = site_draw(seed, /*space=*/1, site);
    if (static_cast<double>(draw >> 11) * 0x1.0p-53 >= options.wal_rate) continue;
    const uint64_t pick = site_draw(seed, /*space=*/2, site);
    const FaultKind kind = options.include_crash_kinds
                               ? (pick % 5 == 4 ? FaultKind::kDuplicate
                                                : kWalCrashKinds[pick % 4])
                               : FaultKind::kDuplicate;
    plan.add({site, kind, site_draw(seed, /*space=*/3, site)});
    // A crash ends the run; later WAL sites are unreachable by construction.
    if (is_crash_kind(kind)) break;
  }
  for (int64_t site = 0; site < options.rpc_horizon; ++site) {
    const uint64_t draw = site_draw(seed, /*space=*/4, site);
    if (static_cast<double>(draw >> 11) * 0x1.0p-53 >= options.rpc_rate) continue;
    const uint64_t pick = site_draw(seed, /*space=*/5, site);
    plan.add({site, kRpcKinds[pick % 4], site_draw(seed, /*space=*/6, site)});
  }
  return plan;
}

void FaultPlan::add(const FaultAction& action) {
  RCOMMIT_CHECK(action.kind != FaultKind::kNone);
  insert_sorted(is_wal_kind(action.kind) ? wal_actions_ : rpc_actions_, action);
}

FaultAction FaultPlan::wal_action_at(int64_t site) const {
  return action_at(wal_actions_, site);
}

FaultAction FaultPlan::rpc_action_at(int64_t site) const {
  return action_at(rpc_actions_, site);
}

std::vector<FaultAction> FaultPlan::all_actions() const {
  std::vector<FaultAction> all = wal_actions_;
  all.insert(all.end(), rpc_actions_.begin(), rpc_actions_.end());
  return all;
}

FaultPlan FaultPlan::with_actions(const std::vector<FaultAction>& actions) const {
  FaultPlan plan;
  plan.seed_ = seed_;
  for (const auto& action : actions) plan.add(action);
  return plan;
}

std::string FaultPlan::serialize() const {
  std::ostringstream out;
  out << "seed=" << seed_ << "\n";
  for (const auto& action : all_actions()) {
    out << "fault=" << action.site << " " << to_string(action.kind) << " "
        << action.arg << "\n";
  }
  return out.str();
}

FaultPlan FaultPlan::deserialize(const std::string& text) {
  FaultPlan plan;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    const size_t eq = line.find('=');
    RCOMMIT_CHECK_MSG(eq != std::string::npos, "malformed plan line: " << line);
    const std::string key = line.substr(0, eq);
    const std::string value = line.substr(eq + 1);
    if (key == "seed") {
      plan.seed_ = std::stoull(value);
    } else if (key == "fault") {
      std::istringstream fields(value);
      int64_t site = 0;
      std::string kind;
      uint64_t arg = 0;
      RCOMMIT_CHECK_MSG(static_cast<bool>(fields >> site >> kind >> arg),
                        "malformed fault action: " << value);
      plan.add({site, parse_fault_kind(kind), arg});
    } else {
      RCOMMIT_CHECK_MSG(false, "unknown plan key '" << key << "'");
    }
  }
  return plan;
}

}  // namespace rcommit::faultinject
