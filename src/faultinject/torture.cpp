#include "faultinject/torture.h"

#include <algorithm>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>

#include "common/check.h"
#include "common/codec.h"
#include "common/rng.h"
#include "db/txn.h"
#include "db/workload.h"
#include "swarm/pool.h"

namespace rcommit::faultinject {

namespace fs = std::filesystem;

namespace {

/// What the client observed for one transaction before the crash.
enum class Observed {
  kCommitted,
  kAborted,
  kInDoubt,  ///< in flight at the crash, or the protocol left it undecided
};

struct TxnRef {
  db::GeneratedTxn writes;
  Observed observed = Observed::kInDoubt;
};

/// The pre-held in-doubt transaction on shard 0 (see run_crash_point).
constexpr db::TxnId kHotTxn = 1'000'000;

uint64_t state_digest(const std::vector<std::unique_ptr<db::KvStore>>& stores) {
  BufWriter w;
  for (size_t i = 0; i < stores.size(); ++i) {
    w.u32(static_cast<uint32_t>(i));
    w.varint(stores[i]->snapshot().size());
    for (const auto& [key, value] : stores[i]->snapshot()) {
      w.str(key);
      w.str(value);
    }
  }
  return crc32c(std::span<const uint8_t>(w.data()));
}

/// Runs the workload (hot prepare + txns generated transactions) against a
/// fresh DistributedDb in `options.scratch_dir` with `injector` installed.
/// Returns the reference model; sets `crashed`/`crash_site` if the plan
/// fired a crash.
std::map<db::TxnId, TxnRef> run_workload(const TortureOptions& options,
                                         FaultInjector& injector, bool& crashed,
                                         int64_t& crash_site) {
  std::map<db::TxnId, TxnRef> reference;
  db::DistributedDb::Options dopts;
  dopts.shard_count = options.shard_count;
  dopts.data_dir = options.scratch_dir;
  dopts.seed = options.seed;
  dopts.network = {.min_delay = options.min_delay, .max_delay = options.max_delay};
  dopts.txn_timeout = options.txn_timeout;
  dopts.wal_fault_hook = &injector;
  try {
    db::DistributedDb database(dopts);
    // A pre-held in-doubt transaction on shard 0: it keeps the "hot" key
    // locked for the whole run, so workload transactions that touch it vote
    // abort (exercising the abort-validity path), and recovery must resolve
    // it alongside whatever the crash leaves behind.
    reference[kHotTxn].writes = {{0, {{"hot", "held"}}}};
    reference[kHotTxn].observed = Observed::kInDoubt;
    RCOMMIT_CHECK(database.shard(0).prepare(kHotTxn, {{"hot", "held"}}, {0}));

    db::WorkloadGenerator generator(
        {.shard_count = options.shard_count,
         .keys_per_shard = options.keys_per_shard,
         .fanout = options.fanout,
         .writes_per_shard = 1,
         .skew = 0.0},
        options.seed);
    for (int32_t i = 0; i < options.txns; ++i) {
      db::GeneratedTxn writes = generator.next();
      // Every third transaction contends on the held hot key.
      if (i % 3 == 1) writes[0] = {{"hot", "steal-" + std::to_string(i)}};
      const db::TxnId id = database.transactions_started() + 1;
      auto& ref = reference[id];
      ref.writes = writes;
      ref.observed = Observed::kInDoubt;  // in flight until execute returns
      const auto outcome = database.execute(writes);
      if (outcome.decided) {
        ref.observed = outcome.decision == Decision::kCommit ? Observed::kCommitted
                                                             : Observed::kAborted;
      }
    }
  } catch (const db::CrashInjected& crash) {
    crashed = true;
    crash_site = crash.site();
  }
  return reference;
}

std::string shard_error(int32_t shard, db::TxnId txn, const std::string& what) {
  return "txn " + std::to_string(txn) + " on shard " + std::to_string(shard) +
         ": " + what;
}

}  // namespace

std::string TortureOptions::serialize() const {
  std::ostringstream out;
  out << "shard_count=" << shard_count << "\n"
      << "txns=" << txns << "\n"
      << "fanout=" << fanout << "\n"
      << "keys_per_shard=" << keys_per_shard << "\n"
      << "seed=" << seed << "\n"
      << "min_delay_us=" << min_delay.count() << "\n"
      << "max_delay_us=" << max_delay.count() << "\n"
      << "txn_timeout_ms=" << txn_timeout.count() << "\n";
  return out.str();
}

TortureOptions TortureOptions::deserialize(const std::string& text) {
  TortureOptions options;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    const size_t eq = line.find('=');
    RCOMMIT_CHECK_MSG(eq != std::string::npos, "malformed config line: " << line);
    const std::string key = line.substr(0, eq);
    const std::string value = line.substr(eq + 1);
    if (key == "shard_count") options.shard_count = static_cast<int32_t>(std::stol(value));
    else if (key == "txns") options.txns = static_cast<int32_t>(std::stol(value));
    else if (key == "fanout") options.fanout = static_cast<int32_t>(std::stol(value));
    else if (key == "keys_per_shard") options.keys_per_shard = static_cast<int32_t>(std::stol(value));
    else if (key == "seed") options.seed = std::stoull(value);
    else if (key == "min_delay_us") options.min_delay = std::chrono::microseconds(std::stoll(value));
    else if (key == "max_delay_us") options.max_delay = std::chrono::microseconds(std::stoll(value));
    else if (key == "txn_timeout_ms") options.txn_timeout = std::chrono::milliseconds(std::stoll(value));
    else RCOMMIT_CHECK_MSG(false, "unknown config key '" << key << "'");
  }
  return options;
}

std::string CrashPointResult::serialize() const {
  std::ostringstream out;
  out << "crashed=" << (crashed ? 1 : 0) << "\n"
      << "crash_site=" << crash_site << "\n"
      << "sites_seen=" << sites_seen << "\n"
      << "resolved_commit=" << report.resolved_commit << "\n"
      << "resolved_abort=" << report.resolved_abort << "\n"
      << "reran_protocol=" << report.reran_protocol << "\n"
      << "committed_txns=" << committed_txns << "\n"
      << "digest=" << digest << "\n";
  for (const auto& error : errors) out << "error=" << error << "\n";
  return out.str();
}

CrashPointResult CrashPointResult::deserialize(const std::string& text) {
  CrashPointResult result;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    const size_t eq = line.find('=');
    RCOMMIT_CHECK_MSG(eq != std::string::npos, "malformed report line: " << line);
    const std::string key = line.substr(0, eq);
    const std::string value = line.substr(eq + 1);
    if (key == "crashed") result.crashed = value == "1";
    else if (key == "crash_site") result.crash_site = std::stoll(value);
    else if (key == "sites_seen") result.sites_seen = std::stoll(value);
    else if (key == "resolved_commit") result.report.resolved_commit = std::stoll(value);
    else if (key == "resolved_abort") result.report.resolved_abort = std::stoll(value);
    else if (key == "reran_protocol") result.report.reran_protocol = std::stoll(value);
    else if (key == "committed_txns") result.committed_txns = std::stoll(value);
    else if (key == "digest") result.digest = std::stoull(value);
    else if (key == "error") result.errors.push_back(value);
    else RCOMMIT_CHECK_MSG(false, "unknown report key '" << key << "'");
  }
  return result;
}

CrashPointResult run_crash_point(const TortureOptions& options,
                                 const FaultPlan& plan) {
  RCOMMIT_CHECK_MSG(!options.scratch_dir.empty(), "scratch_dir is required");
  fs::remove_all(options.scratch_dir);
  fs::create_directories(options.scratch_dir);

  CrashPointResult result;
  FaultInjector injector(plan);
  const auto reference =
      run_workload(options, injector, result.crashed, result.crash_site);
  result.sites_seen = injector.sites_seen();

  // The process is dead; only the WALs remain. Reopen every shard from disk
  // (no fault hook — recovery itself runs on healthy storage) and resolve.
  std::vector<std::unique_ptr<db::KvStore>> stores;
  std::vector<db::KvStore*> ptrs;
  for (int32_t i = 0; i < options.shard_count; ++i) {
    stores.push_back(std::make_unique<db::KvStore>(
        options.scratch_dir / ("shard-" + std::to_string(i) + ".wal")));
    ptrs.push_back(stores.back().get());
  }
  db::RecoveryManager recovery(ptrs, {.seed = options.seed ^ 0x5ec0feULL});
  result.report = recovery.resolve_all();

  for (int32_t i = 0; i < options.shard_count; ++i) {
    if (!stores[static_cast<size_t>(i)]->in_doubt().empty()) {
      result.errors.push_back("shard " + std::to_string(i) +
                              " still holds in-doubt transactions after recovery");
    }
  }

  // Final outcome of every transaction the reference knows about, per the
  // recovered WALs; check it against what the client observed.
  std::map<db::TxnId, bool> committed;
  for (const auto& [txn, ref] : reference) {
    const auto statuses = recovery.survey(txn);
    bool any_commit = false;
    bool any_abort = false;
    for (const auto& [shard, status] : statuses) {
      (void)shard;
      any_commit |= status == db::ShardTxnStatus::kCommitted;
      any_abort |= status == db::ShardTxnStatus::kAborted;
    }
    if (any_commit && any_abort) {
      result.errors.push_back(shard_error(-1, txn, "shards disagree on the outcome"));
    }
    committed[txn] = any_commit;
    if (ref.observed == Observed::kCommitted && !any_commit) {
      result.errors.push_back(
          shard_error(-1, txn, "client-observed commit lost by recovery"));
    }
    if (ref.observed == Observed::kAborted && any_commit) {
      result.errors.push_back(
          shard_error(-1, txn, "client-observed abort resurrected as commit"));
    }
    if (any_commit) {
      ++result.committed_txns;
      // Atomicity: the whole intended participant set installed it.
      for (const auto& [shard, writes] : ref.writes) {
        (void)writes;
        if (statuses.at(shard) != db::ShardTxnStatus::kCommitted) {
          result.errors.push_back(
              shard_error(shard, txn, "committed elsewhere but not installed here"));
        }
      }
    }
  }

  // Reference state: committed transactions' writes, applied in txn-id order
  // (execution order for the workload; recovery resolves leftovers in the
  // same ascending order, and committed key sets never overlap a hot-key
  // conflict because the hot lock forces those votes to abort).
  std::vector<std::map<std::string, std::string>> expected(
      static_cast<size_t>(options.shard_count));
  for (const auto& [txn, ref] : reference) {
    if (!committed[txn]) continue;
    for (const auto& [shard, writes] : ref.writes) {
      for (const auto& write : writes) {
        expected[static_cast<size_t>(shard)][write.key] = write.value;
      }
    }
  }
  for (int32_t i = 0; i < options.shard_count; ++i) {
    const auto& actual = stores[static_cast<size_t>(i)]->snapshot();
    const auto& want = expected[static_cast<size_t>(i)];
    if (actual == want) continue;
    std::string detail = "shard " + std::to_string(i) +
                         " state diverges from the committed-prefix reference (" +
                         std::to_string(actual.size()) + " keys vs " +
                         std::to_string(want.size()) + " expected)";
    for (const auto& [key, value] : want) {
      const auto it = actual.find(key);
      if (it == actual.end()) {
        detail += "; missing " + key + "=" + value;
        break;
      }
      if (it->second != value) {
        detail += "; " + key + "=" + it->second + " want " + value;
        break;
      }
    }
    result.errors.push_back(detail);
  }

  result.digest = state_digest(stores);
  return result;
}

std::vector<SiteInfo> enumerate_sites(const TortureOptions& options) {
  RCOMMIT_CHECK_MSG(!options.scratch_dir.empty(), "scratch_dir is required");
  fs::remove_all(options.scratch_dir);
  fs::create_directories(options.scratch_dir);
  FaultInjector injector(FaultPlan::none());
  bool crashed = false;
  int64_t crash_site = -1;
  run_workload(options, injector, crashed, crash_site);
  RCOMMIT_CHECK_MSG(!crashed, "empty plan must not crash");
  return injector.sites();
}

SweepResult run_wal_sweep(const TortureOptions& options, const SweepOptions& sweep) {
  SweepResult out;
  {
    TortureOptions probe = options;
    probe.scratch_dir = options.scratch_dir / "enumerate";
    out.sites = static_cast<int64_t>(enumerate_sites(probe).size());
    fs::remove_all(probe.scratch_dir);
  }
  const int64_t sites = sweep.max_sites >= 0 ? std::min(out.sites, sweep.max_sites)
                                             : out.sites;

  struct Job {
    int64_t site;
    FaultKind kind;
  };
  std::vector<Job> jobs;
  for (int64_t site = 0; site < sites; ++site) {
    for (const FaultKind kind : sweep.kinds) jobs.push_back({site, kind});
  }

  std::vector<FaultPlan> plans(jobs.size());
  std::vector<CrashPointResult> results(jobs.size());
  const auto run_one = [&](int64_t j) {
    const Job& job = jobs[static_cast<size_t>(j)];
    // The torn-byte draw is a pure function of (seed, site) so the sweep is
    // replayable from those two numbers alone.
    SplitMix64 mix(options.seed ^
                   (static_cast<uint64_t>(job.site) * 0x9e3779b97f4a7c15ULL));
    TortureOptions point = options;
    point.scratch_dir = options.scratch_dir /
                        ("site" + std::to_string(job.site) + "-" +
                         std::string(to_string(job.kind)));
    plans[static_cast<size_t>(j)] =
        FaultPlan::wal_fault_at(job.site, job.kind, mix.next());
    results[static_cast<size_t>(j)] =
        run_crash_point(point, plans[static_cast<size_t>(j)]);
    fs::remove_all(point.scratch_dir);
  };
  if (sweep.threads > 1) {
    swarm::WorkStealingPool pool(sweep.threads);
    pool.run(static_cast<int64_t>(jobs.size()), run_one);
  } else {
    for (int64_t j = 0; j < static_cast<int64_t>(jobs.size()); ++j) run_one(j);
  }

  // Fold in enumeration order: thread-count independent.
  for (size_t j = 0; j < jobs.size(); ++j) {
    ++out.crash_points;
    if (!results[j].ok()) out.failures.push_back({plans[j], results[j]});
  }
  return out;
}

FaultPlan shrink_fault_plan(const TortureOptions& options, const FaultPlan& plan,
                            const swarm::ShrinkOptions& shrink, int* evals) {
  const auto all = plan.all_actions();
  TortureOptions point = options;
  point.scratch_dir = options.scratch_dir / "shrink";
  const auto violates = [&](const std::vector<size_t>& keep) {
    std::vector<FaultAction> subset;
    subset.reserve(keep.size());
    for (const size_t index : keep) subset.push_back(all[index]);
    return !run_crash_point(point, plan.with_actions(subset)).ok();
  };
  const auto kept = swarm::ddmin_keep(all.size(), violates, shrink, evals);
  fs::remove_all(point.scratch_dir);
  std::vector<FaultAction> subset;
  subset.reserve(kept.size());
  for (const size_t index : kept) subset.push_back(all[index]);
  return plan.with_actions(subset);
}

void write_fault_artifact(const fs::path& dir, const FaultArtifact& artifact) {
  fs::create_directories(dir);
  const auto write_file = [&](const char* name, const std::string& contents) {
    std::ofstream out(dir / name, std::ios::trunc);
    RCOMMIT_CHECK_MSG(out.is_open(), "cannot write " << (dir / name).string());
    out << contents;
  };
  write_file("config.txt", artifact.options.serialize());
  write_file("plan.txt", artifact.plan.serialize());
  write_file("report.txt", artifact.expected.serialize());
  write_file("README.txt",
             "Crash-point counterexample / regression entry.\n"
             "Reproduce with:\n\n  faultkit --artifact=" +
                 dir.string() +
                 "\n\nconfig.txt is the workload, plan.txt the fault schedule,\n"
                 "report.txt the expected post-recovery CrashPointResult\n"
                 "(replay must reproduce it field for field).\n");
}

FaultArtifact load_fault_artifact(const fs::path& dir) {
  const auto read_file = [&](const char* name) {
    std::ifstream in(dir / name);
    RCOMMIT_CHECK_MSG(in.is_open(), "cannot read " << (dir / name).string());
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
  };
  FaultArtifact artifact;
  artifact.options = TortureOptions::deserialize(read_file("config.txt"));
  artifact.plan = FaultPlan::deserialize(read_file("plan.txt"));
  artifact.expected = CrashPointResult::deserialize(read_file("report.txt"));
  return artifact;
}

}  // namespace rcommit::faultinject
