#include "faultinject/multitorture.h"

#include <algorithm>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>

#include "common/check.h"
#include "common/codec.h"
#include "common/rng.h"
#include "db/multishot.h"
#include "db/workload.h"
#include "swarm/pool.h"

namespace rcommit::faultinject {

namespace fs = std::filesystem;

namespace {

/// What the driver observed for one instance before the crash.
enum class Observed {
  kCommitted,
  kAborted,
  kInDoubt,  ///< its batch was in flight at the crash
};

struct TxnRef {
  db::GeneratedTxn writes;
  Observed observed = Observed::kInDoubt;
};

/// The pre-held in-doubt instance on shard 0 (see run_multi_workload). Its
/// origin field sits past every real shard, so it can never collide with an
/// engine-allocated id.
db::TxnId hot_txn(const MultiTortureOptions& options) {
  return db::make_txn_id(options.shard_count, 1);
}

uint64_t state_digest(const std::vector<std::unique_ptr<db::KvStore>>& stores) {
  BufWriter w;
  for (size_t i = 0; i < stores.size(); ++i) {
    w.u32(static_cast<uint32_t>(i));
    w.varint(stores[i]->snapshot().size());
    for (const auto& [key, value] : stores[i]->snapshot()) {
      w.str(key);
      w.str(value);
    }
  }
  return crc32c(std::span<const uint8_t>(w.data()));
}

/// Runs the pipelined workload (hot prepare + batches × batch_size instances)
/// against a fresh MultiShotDb in `options.scratch_dir` with `injector`
/// installed. Returns the reference model; `execution_order` lists every
/// instance in the order its writes would take effect.
std::map<db::TxnId, TxnRef> run_multi_workload(
    const MultiTortureOptions& options, FaultInjector& injector, bool& crashed,
    int64_t& crash_site, std::vector<db::TxnId>& execution_order) {
  std::map<db::TxnId, TxnRef> reference;
  db::MultiShotDb::Options mopts;
  mopts.shard_count = options.shard_count;
  mopts.data_dir = options.scratch_dir;
  mopts.seed = options.seed;
  mopts.decision_transport = db::DecisionTransport::kSimulator;
  mopts.k = options.k;
  mopts.max_events = options.max_events;
  mopts.wal_fault_hook = &injector;
  mopts.group_commit = options.group_commit;
  mopts.decision_batch = options.decision_batch;
  try {
    db::MultiShotDb database(mopts);
    // A pre-held in-doubt instance on shard 0: it keeps the "hot" key locked
    // for the whole run, so instances that touch it vote abort, and recovery
    // must resolve it alongside whatever the crash leaves behind.
    reference[hot_txn(options)].writes = {{0, {{"hot", "held"}}}};
    RCOMMIT_CHECK(
        database.shard(0).prepare(hot_txn(options), {{"hot", "held"}}, {0}));

    db::WorkloadGenerator generator(
        {.shard_count = options.shard_count,
         .keys_per_shard = options.keys_per_shard,
         .fanout = options.fanout,
         .writes_per_shard = 1,
         .skew = 0.0},
        options.seed);
    // Mirror the engine's id allocation (per-origin sequences from 1) so the
    // reference knows each instance's id before the batch runs — instances
    // past a mid-batch crash simply never appear in any WAL.
    std::vector<int64_t> next_sequence(
        static_cast<size_t>(options.shard_count), 1);
    for (int32_t b = 0; b < options.batches; ++b) {
      const int32_t origin = b % options.shard_count;
      std::vector<db::GeneratedTxn> batch;
      std::vector<db::TxnId> ids;
      for (int32_t i = 0; i < options.batch_size; ++i) {
        db::GeneratedTxn writes = generator.next();
        // Every third instance contends on the held hot key.
        if (i % 3 == 1) {
          writes[0] = {{"hot", "steal-" + std::to_string(b) + "-" +
                                   std::to_string(i)}};
        }
        const db::TxnId id = db::make_txn_id(
            origin, next_sequence[static_cast<size_t>(origin)]++);
        reference[id].writes = writes;
        execution_order.push_back(id);
        batch.push_back(std::move(writes));
        ids.push_back(id);
      }
      const auto outcomes = database.execute_pipelined(origin, batch);
      for (size_t i = 0; i < outcomes.size(); ++i) {
        if (!outcomes[i].decided) continue;
        reference[ids[i]].observed = outcomes[i].decision == Decision::kCommit
                                         ? Observed::kCommitted
                                         : Observed::kAborted;
      }
    }
  } catch (const db::CrashInjected& crash) {
    crashed = true;
    crash_site = crash.site();
  }
  // The hot instance resolves after everything else (largest id, and
  // recovery works in ascending id order); its only competitor writes abort.
  execution_order.push_back(hot_txn(options));
  return reference;
}

std::string txn_error(db::TxnId txn, const std::string& what) {
  return "txn " + std::to_string(txn) + ": " + what;
}

}  // namespace

std::string MultiTortureOptions::serialize() const {
  std::ostringstream out;
  out << "shard_count=" << shard_count << "\n"
      << "batches=" << batches << "\n"
      << "batch_size=" << batch_size << "\n"
      << "fanout=" << fanout << "\n"
      << "keys_per_shard=" << keys_per_shard << "\n"
      << "group_commit=" << (group_commit ? 1 : 0) << "\n"
      << "decision_batch=" << decision_batch << "\n"
      << "seed=" << seed << "\n"
      << "k=" << k << "\n"
      << "max_events=" << max_events << "\n";
  return out.str();
}

MultiTortureOptions MultiTortureOptions::deserialize(const std::string& text) {
  MultiTortureOptions options;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    const size_t eq = line.find('=');
    RCOMMIT_CHECK_MSG(eq != std::string::npos, "malformed config line: " << line);
    const std::string key = line.substr(0, eq);
    const std::string value = line.substr(eq + 1);
    if (key == "shard_count") options.shard_count = static_cast<int32_t>(std::stol(value));
    else if (key == "batches") options.batches = static_cast<int32_t>(std::stol(value));
    else if (key == "batch_size") options.batch_size = static_cast<int32_t>(std::stol(value));
    else if (key == "fanout") options.fanout = static_cast<int32_t>(std::stol(value));
    else if (key == "keys_per_shard") options.keys_per_shard = static_cast<int32_t>(std::stol(value));
    // Absent keys keep their defaults (off), which is how corpus entries
    // written before the group-commit knobs replay unchanged.
    else if (key == "group_commit") options.group_commit = std::stol(value) != 0;
    else if (key == "decision_batch") options.decision_batch = static_cast<int32_t>(std::stol(value));
    else if (key == "seed") options.seed = std::stoull(value);
    else if (key == "k") options.k = std::stoll(value);
    else if (key == "max_events") options.max_events = std::stoll(value);
    else RCOMMIT_CHECK_MSG(false, "unknown config key '" << key << "'");
  }
  return options;
}

CrashPointResult run_multi_crash_point(const MultiTortureOptions& options,
                                       const FaultPlan& plan) {
  RCOMMIT_CHECK_MSG(!options.scratch_dir.empty(), "scratch_dir is required");
  fs::remove_all(options.scratch_dir);
  fs::create_directories(options.scratch_dir);

  CrashPointResult result;
  FaultInjector injector(plan);
  std::vector<db::TxnId> execution_order;
  const auto reference = run_multi_workload(options, injector, result.crashed,
                                            result.crash_site, execution_order);
  result.sites_seen = injector.sites_seen();

  // The process is dead; only the WALs remain. Reopen every shard from disk
  // (no fault hook — recovery itself runs on healthy storage) and resolve
  // the whole in-doubt instance space from one batch survey.
  std::vector<std::unique_ptr<db::KvStore>> stores;
  std::vector<db::KvStore*> ptrs;
  for (int32_t i = 0; i < options.shard_count; ++i) {
    stores.push_back(std::make_unique<db::KvStore>(
        options.scratch_dir / ("shard-" + std::to_string(i) + ".wal")));
    ptrs.push_back(stores.back().get());
  }
  db::RecoveryManager recovery(ptrs, {.seed = options.seed ^ 0x5ec0feULL,
                                      .k = options.k,
                                      .max_events = options.max_events});
  result.report = recovery.resolve_all();

  for (int32_t i = 0; i < options.shard_count; ++i) {
    if (!stores[static_cast<size_t>(i)]->in_doubt().empty()) {
      result.errors.push_back("shard " + std::to_string(i) +
                              " still holds in-doubt transactions after recovery");
    }
  }

  // Final outcome of every instance the reference knows about, per the
  // recovered WALs (one batch survey — never a per-txn rescan).
  const db::BatchSurvey survey = recovery.survey_all();
  std::map<db::TxnId, bool> committed;
  for (const auto& [txn, ref] : reference) {
    bool any_commit = false;
    bool any_abort = false;
    for (int32_t shard = 0; shard < options.shard_count; ++shard) {
      const auto status = survey.status(shard, txn);
      any_commit |= status == db::ShardTxnStatus::kCommitted;
      any_abort |= status == db::ShardTxnStatus::kAborted;
    }
    if (any_commit && any_abort) {
      result.errors.push_back(txn_error(txn, "shards disagree on the outcome"));
    }
    committed[txn] = any_commit;
    if (ref.observed == Observed::kCommitted && !any_commit) {
      result.errors.push_back(
          txn_error(txn, "driver-observed commit lost by recovery"));
    }
    if (ref.observed == Observed::kAborted && any_commit) {
      result.errors.push_back(
          txn_error(txn, "driver-observed abort resurrected as commit"));
    }
    if (any_commit) {
      ++result.committed_txns;
      // Cross-shard atomicity: the whole intended participant set installed it.
      for (const auto& [shard, writes] : ref.writes) {
        (void)writes;
        if (survey.status(shard, txn) != db::ShardTxnStatus::kCommitted) {
          result.errors.push_back(txn_error(
              txn, "committed on some shards but not installed on shard " +
                       std::to_string(shard)));
        }
      }
    }
  }

  // Reference state: committed instances' writes, applied in execution order.
  // Instances of the same batch never commit overlapping keys (the no-wait
  // lock table forces the later prepare to vote abort), so recovery's
  // ascending-id resolution of a crashed batch agrees with this order.
  std::vector<std::map<std::string, std::string>> expected(
      static_cast<size_t>(options.shard_count));
  for (const db::TxnId txn : execution_order) {
    if (!committed[txn]) continue;
    for (const auto& [shard, writes] : reference.at(txn).writes) {
      for (const auto& write : writes) {
        expected[static_cast<size_t>(shard)][write.key] = write.value;
      }
    }
  }
  for (int32_t i = 0; i < options.shard_count; ++i) {
    const auto& actual = stores[static_cast<size_t>(i)]->snapshot();
    const auto& want = expected[static_cast<size_t>(i)];
    if (actual == want) continue;
    std::string detail = "shard " + std::to_string(i) +
                         " state diverges from the committed-prefix reference (" +
                         std::to_string(actual.size()) + " keys vs " +
                         std::to_string(want.size()) + " expected)";
    for (const auto& [key, value] : want) {
      const auto it = actual.find(key);
      if (it == actual.end()) {
        detail += "; missing " + key + "=" + value;
        break;
      }
      if (it->second != value) {
        detail += "; " + key + "=" + it->second + " want " + value;
        break;
      }
    }
    result.errors.push_back(detail);
  }

  result.digest = state_digest(stores);
  return result;
}

std::vector<SiteInfo> enumerate_multi_sites(const MultiTortureOptions& options) {
  RCOMMIT_CHECK_MSG(!options.scratch_dir.empty(), "scratch_dir is required");
  fs::remove_all(options.scratch_dir);
  fs::create_directories(options.scratch_dir);
  FaultInjector injector(FaultPlan::none());
  bool crashed = false;
  int64_t crash_site = -1;
  std::vector<db::TxnId> execution_order;
  run_multi_workload(options, injector, crashed, crash_site, execution_order);
  RCOMMIT_CHECK_MSG(!crashed, "empty plan must not crash");
  return injector.sites();
}

SweepResult run_multi_wal_sweep(const MultiTortureOptions& options,
                                const SweepOptions& sweep) {
  SweepResult out;
  {
    MultiTortureOptions probe = options;
    probe.scratch_dir = options.scratch_dir / "enumerate";
    out.sites = static_cast<int64_t>(enumerate_multi_sites(probe).size());
    fs::remove_all(probe.scratch_dir);
  }
  const int64_t sites = sweep.max_sites >= 0 ? std::min(out.sites, sweep.max_sites)
                                             : out.sites;

  struct Job {
    int64_t site;
    FaultKind kind;
  };
  std::vector<Job> jobs;
  for (int64_t site = 0; site < sites; ++site) {
    for (const FaultKind kind : sweep.kinds) jobs.push_back({site, kind});
  }

  std::vector<FaultPlan> plans(jobs.size());
  std::vector<CrashPointResult> results(jobs.size());
  const auto run_one = [&](int64_t j) {
    const Job& job = jobs[static_cast<size_t>(j)];
    // The torn-byte draw is a pure function of (seed, site) so the sweep is
    // replayable from those two numbers alone.
    SplitMix64 mix(options.seed ^
                   (static_cast<uint64_t>(job.site) * 0x9e3779b97f4a7c15ULL));
    MultiTortureOptions point = options;
    point.scratch_dir = options.scratch_dir /
                        ("site" + std::to_string(job.site) + "-" +
                         std::string(to_string(job.kind)));
    plans[static_cast<size_t>(j)] =
        FaultPlan::wal_fault_at(job.site, job.kind, mix.next());
    results[static_cast<size_t>(j)] =
        run_multi_crash_point(point, plans[static_cast<size_t>(j)]);
    fs::remove_all(point.scratch_dir);
  };
  if (sweep.threads > 1) {
    swarm::WorkStealingPool pool(sweep.threads);
    pool.run(static_cast<int64_t>(jobs.size()), run_one);
  } else {
    for (int64_t j = 0; j < static_cast<int64_t>(jobs.size()); ++j) run_one(j);
  }

  // Fold in enumeration order: thread-count independent.
  for (size_t j = 0; j < jobs.size(); ++j) {
    ++out.crash_points;
    if (!results[j].ok()) out.failures.push_back({plans[j], results[j]});
  }
  return out;
}

void write_multi_fault_artifact(const fs::path& dir,
                                const MultiFaultArtifact& artifact) {
  fs::create_directories(dir);
  const auto write_file = [&](const char* name, const std::string& contents) {
    std::ofstream out(dir / name, std::ios::trunc);
    RCOMMIT_CHECK_MSG(out.is_open(), "cannot write " << (dir / name).string());
    out << contents;
  };
  write_file("config.txt", artifact.options.serialize());
  write_file("plan.txt", artifact.plan.serialize());
  write_file("report.txt", artifact.expected.serialize());
  write_file("README.txt",
             "Multi-shot crash-point counterexample / regression entry.\n"
             "Reproduce with:\n\n  faultkit --multishot --artifact=" +
                 dir.string() +
                 "\n\nconfig.txt is the pipelined workload, plan.txt the fault\n"
                 "schedule, report.txt the expected post-recovery\n"
                 "CrashPointResult (replay must reproduce it field for field).\n");
}

MultiFaultArtifact load_multi_fault_artifact(const fs::path& dir) {
  const auto read_file = [&](const char* name) {
    std::ifstream in(dir / name);
    RCOMMIT_CHECK_MSG(in.is_open(), "cannot read " << (dir / name).string());
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
  };
  MultiFaultArtifact artifact;
  artifact.options = MultiTortureOptions::deserialize(read_file("config.txt"));
  artifact.plan = FaultPlan::deserialize(read_file("plan.txt"));
  artifact.expected = CrashPointResult::deserialize(read_file("report.txt"));
  return artifact;
}

bool is_multishot_artifact(const fs::path& dir) {
  std::ifstream in(dir / "config.txt");
  RCOMMIT_CHECK_MSG(in.is_open(), "cannot read " << (dir / "config.txt").string());
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind("batches=", 0) == 0) return true;
  }
  return false;
}

}  // namespace rcommit::faultinject
