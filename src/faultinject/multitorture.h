// Multi-transaction recovery-equivalence torture over the multi-shot engine.
//
// torture.{h,cpp} crashes a serial DistributedDb workload, so at most one
// transaction is in flight at the crash. This variant drives
// db::MultiShotDb::execute_pipelined: each batch stages and prepares many
// instances before any of them decides, so a crash anywhere in the pipeline
// leaves *many* transactions in doubt per shard — the WAL-state space the
// batch recovery scan (RecoveryManager::survey_all) exists for. The checks
// are the serial torture's, extended across the whole instance space:
//
//   * no instance remains in doubt after resolve_all();
//   * shards never disagree on an instance's outcome;
//   * a batch outcome the driver observed before the crash survives it;
//   * cross-shard atomicity: a committed instance is installed on every
//     intended participant (the paper's §1 "at all processors or at no
//     processor"), for every instance of every batch;
//   * each shard's recovered state equals the committed-prefix reference,
//     applied in execution order, key for key.
//
// Decision rounds run on the deterministic simulator seeded by (seed, txn id)
// — the exact rerun RecoveryManager performs — so the whole sweep is a pure
// function of (MultiTortureOptions, FaultPlan) and every crash point replays
// from (seed, site) alone. The serial torture's CrashPointResult /
// SweepOptions / SweepResult vocabulary is reused unchanged; artifacts are
// distinguished by the `batches=` key in config.txt.
#pragma once

#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "faultinject/torture.h"

namespace rcommit::faultinject {

struct MultiTortureOptions {
  int32_t shard_count = 3;
  int32_t batches = 3;         ///< pipelined batches; origin shard rotates
  int32_t batch_size = 8;      ///< in-flight instances per batch
  int32_t fanout = 2;          ///< shards per transaction
  int32_t keys_per_shard = 4;  ///< small pool => real lock conflicts
  /// Group-commit WAL mode: appends coalesce per shard and injection sites
  /// move to the group-flush boundaries (crash-before = the whole buffered
  /// group lost between the last batched append and its flush, torn = a
  /// mid-group torn tail). Off keeps the PR 9 per-append site space —
  /// committed corpus entries predate the knob and replay identically.
  bool group_commit = false;
  /// Prepared instances decided per protocol round (kBatchSeal recovery
  /// batches appear in the WALs when > 1).
  int32_t decision_batch = 1;
  uint64_t seed = 1;
  /// Scratch directory for the WALs; wiped and recreated per run.
  std::filesystem::path scratch_dir;
  Tick k = 25;  ///< Protocol 2's K for the simulated decision rounds
  int64_t max_events = 200'000;

  /// Key=value form (scratch_dir excluded); round-trips via deserialize.
  [[nodiscard]] std::string serialize() const;
  static MultiTortureOptions deserialize(const std::string& text);
};

/// Runs workload + crash + batch recovery + equivalence check for one plan.
[[nodiscard]] CrashPointResult run_multi_crash_point(
    const MultiTortureOptions& options, const FaultPlan& plan);

/// Dry run under the empty plan: the reachable WAL injection sites across
/// every shard's log, in append order (the driver is single-threaded, so the
/// numbering is deterministic).
[[nodiscard]] std::vector<SiteInfo> enumerate_multi_sites(
    const MultiTortureOptions& options);

/// Exhaustive (site × kind) sweep over the multi-txn site space.
[[nodiscard]] SweepResult run_multi_wal_sweep(const MultiTortureOptions& options,
                                              const SweepOptions& sweep);

// --- artifacts ---------------------------------------------------------------
//
// Same layout as the serial torture's (config.txt / plan.txt / report.txt /
// README.txt), replayed with:  faultkit --multishot --artifact=<dir>
// is_multishot_artifact() tells the two config schemas apart.

struct MultiFaultArtifact {
  MultiTortureOptions options;
  FaultPlan plan;
  CrashPointResult expected;
};

void write_multi_fault_artifact(const std::filesystem::path& dir,
                                const MultiFaultArtifact& artifact);

/// Loads an artifact directory. The loaded options carry an empty
/// scratch_dir; callers supply one.
[[nodiscard]] MultiFaultArtifact load_multi_fault_artifact(
    const std::filesystem::path& dir);

/// True if `dir`'s config.txt uses the multi-shot schema (has `batches=`).
[[nodiscard]] bool is_multishot_artifact(const std::filesystem::path& dir);

}  // namespace rcommit::faultinject
