// Deterministic fault plans.
//
// A FaultPlan names, ahead of time, exactly which injection sites misbehave
// and how — swarm-style: the plan is a pure function of a seed (or an
// explicit action list), so a crash schedule is reproducible from the plan
// text alone and shrinkable like any other schedule. Two independent site
// spaces exist:
//
//   WAL sites   one per WriteAheadLog::append, numbered globally in append
//               order across every shard of a run (the workload driver is
//               sequential, so the numbering is deterministic);
//   RPC sites   one per Network::send through a FaultyNetwork decorator,
//               numbered in send order.
//
// See docs/fault-injection.md for the site-numbering scheme and plan schema.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace rcommit::faultinject {

/// What happens at one injection site.
enum class FaultKind : uint8_t {
  kNone = 0,
  // WAL append faults.
  kCrashBefore,   ///< crash; nothing of this append reaches the file
  kTornWrite,     ///< crash; frame truncated at 1 + arg % (frame_size - 1) bytes
  kPartialFlush,  ///< crash; only the 8-byte frame header reaches the file
  kDuplicate,     ///< the frame is written twice; execution continues
  kCrashAfter,    ///< crash; the frame reaches the file in full
  // RPC send faults.
  kRpcDrop,       ///< the frame disappears
  kRpcDuplicate,  ///< the frame is sent twice
  kRpcDelay,      ///< the frame is held for max(1, arg) subsequent sends
  kRpcReorder,    ///< the frame swaps places with the next send
};

[[nodiscard]] const char* to_string(FaultKind kind);
/// Throws CheckFailure on an unknown name.
[[nodiscard]] FaultKind parse_fault_kind(const std::string& name);
[[nodiscard]] bool is_wal_kind(FaultKind kind);
[[nodiscard]] bool is_crash_kind(FaultKind kind);

/// One planned fault at one numbered site.
struct FaultAction {
  int64_t site = 0;
  FaultKind kind = FaultKind::kNone;
  uint64_t arg = 0;  ///< kind-specific: torn-byte draw, delay length, ...

  bool operator==(const FaultAction&) const = default;
};

/// Knobs for seed-derived plans.
struct FaultPlanOptions {
  int64_t wal_horizon = 256;   ///< WAL sites eligible for a drawn fault
  int64_t rpc_horizon = 1024;  ///< RPC sites eligible for a drawn fault
  double wal_rate = 0.0;       ///< per-site fault probability
  double rpc_rate = 0.0;
  bool include_crash_kinds = true;  ///< false: only duplicate faults (non-fatal)
};

/// The full fault schedule of one run. Actions are kept sorted by site;
/// at most one action per site per space.
class FaultPlan {
 public:
  /// The empty plan: every site answers kNone. Installing it must be
  /// byte-identical to not installing anything.
  static FaultPlan none();

  /// A plan with exactly one WAL fault at `site`.
  static FaultPlan wal_fault_at(int64_t site, FaultKind kind, uint64_t arg = 0);

  /// A plan with exactly one RPC fault at `site`.
  static FaultPlan rpc_fault_at(int64_t site, FaultKind kind, uint64_t arg = 0);

  /// Derives a plan from a seed, swarm-style: each site in the horizon draws
  /// independently (SplitMix64 over (seed, space, site)), so plans with the
  /// same seed agree on shared sites regardless of horizon.
  static FaultPlan from_seed(uint64_t seed, const FaultPlanOptions& options);

  /// Key=value / one-action-per-line text form; round-trips via deserialize.
  [[nodiscard]] std::string serialize() const;
  static FaultPlan deserialize(const std::string& text);

  /// The action at a WAL site (kNone when unplanned).
  [[nodiscard]] FaultAction wal_action_at(int64_t site) const;
  /// The action at an RPC site (kNone when unplanned).
  [[nodiscard]] FaultAction rpc_action_at(int64_t site) const;

  void add(const FaultAction& action);

  [[nodiscard]] const std::vector<FaultAction>& wal_actions() const {
    return wal_actions_;
  }
  [[nodiscard]] const std::vector<FaultAction>& rpc_actions() const {
    return rpc_actions_;
  }
  /// All actions, WAL first — the index space ddmin shrinking operates on.
  [[nodiscard]] std::vector<FaultAction> all_actions() const;
  /// Rebuilds a plan from a subset of all_actions() (same seed label).
  [[nodiscard]] FaultPlan with_actions(const std::vector<FaultAction>& actions) const;

  [[nodiscard]] uint64_t seed() const { return seed_; }
  [[nodiscard]] bool empty() const {
    return wal_actions_.empty() && rpc_actions_.empty();
  }

  bool operator==(const FaultPlan&) const = default;

 private:
  uint64_t seed_ = 0;  ///< provenance label for derived plans; 0 = hand-built
  std::vector<FaultAction> wal_actions_;
  std::vector<FaultAction> rpc_actions_;
};

}  // namespace rcommit::faultinject
