#include "faultinject/injector.h"

#include "common/check.h"

namespace rcommit::faultinject {

FaultInjector::FaultInjector(FaultPlan plan) : plan_(std::move(plan)) {}

db::WalAppendFault FaultInjector::on_append(const std::filesystem::path& wal_path,
                                            std::span<const uint8_t> frame) {
  const int64_t site = next_site_++;
  // Frame layout is [u32 len][u32 crc][body]; body[0] is the record type.
  RCOMMIT_CHECK_MSG(frame.size() > 8, "WAL frame too small to carry a record");
  SiteInfo info;
  info.site = site;
  info.wal_name = wal_path.filename().string();
  info.record_type = frame[8];
  info.frame_size = frame.size();

  const FaultAction action = plan_.wal_action_at(site);
  db::WalAppendFault fault;
  fault.site = site;
  switch (action.kind) {
    case FaultKind::kNone:
      break;
    case FaultKind::kCrashBefore:
      fault.kind = db::WalAppendFault::Kind::kCrashBefore;
      break;
    case FaultKind::kTornWrite:
      fault.kind = db::WalAppendFault::Kind::kTorn;
      // Strictly inside the frame: at least 1 byte lands, at least 1 is lost.
      fault.keep_bytes = 1 + static_cast<size_t>(action.arg % (frame.size() - 1));
      break;
    case FaultKind::kPartialFlush:
      // Only the 8-byte header reaches the file; the body is lost entirely.
      fault.kind = db::WalAppendFault::Kind::kTorn;
      fault.keep_bytes = 8;
      break;
    case FaultKind::kDuplicate:
      fault.kind = db::WalAppendFault::Kind::kDuplicate;
      break;
    case FaultKind::kCrashAfter:
      fault.kind = db::WalAppendFault::Kind::kCrashAfter;
      break;
    case FaultKind::kRpcDrop:
    case FaultKind::kRpcDuplicate:
    case FaultKind::kRpcDelay:
    case FaultKind::kRpcReorder:
      RCOMMIT_CHECK_MSG(false, "RPC fault kind in a WAL plan at site " << site);
  }
  if (action.kind != FaultKind::kNone) {
    info.fired = action.kind;
    ++fired_[action.kind];
  }
  sites_.push_back(info);
  return fault;
}

int64_t FaultInjector::fired(FaultKind kind) const {
  const auto it = fired_.find(kind);
  return it == fired_.end() ? 0 : it->second;
}

}  // namespace rcommit::faultinject
