// Recovery-equivalence torture: crash the database at a chosen WAL append,
// recover, and check the survivors against a reference state machine.
//
// The reference is the committed prefix: a transaction's writes belong in
// the final state iff the transaction committed — where "committed" after a
// crash means what RecoveryManager derives from the WALs. The checker
// asserts, for every crash point (SQLite crash-test style: enumerate the
// sites, then sweep site × fault kind exhaustively):
//
//   * no transaction remains in doubt after resolve_all();
//   * shards never disagree on a transaction's outcome;
//   * an outcome the client observed before the crash survives it
//     (observed commit => durable commit, observed abort => no commit);
//   * a committed transaction is installed on *every* intended participant
//     (the paper's §1 "at all processors or at no processor");
//   * each shard's recovered state equals the reference's committed-prefix
//     state, key for key.
//
// Everything is a pure function of (TortureOptions, FaultPlan) — the sweep
// is reproducible from (seed, site) alone, which the faultkit replay test
// verifies.
#pragma once

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "db/recovery.h"
#include "faultinject/injector.h"
#include "faultinject/plan.h"
#include "swarm/shrink.h"

namespace rcommit::faultinject {

struct TortureOptions {
  int32_t shard_count = 3;
  int32_t txns = 4;           ///< workload transactions after the hot prepare
  int32_t fanout = 2;         ///< shards per transaction
  int32_t keys_per_shard = 4;
  uint64_t seed = 1;
  /// Scratch directory for the WALs; wiped and recreated per run.
  std::filesystem::path scratch_dir;
  /// Commit-fleet network timing (kept tight: the sweep runs many points).
  std::chrono::microseconds min_delay{10};
  std::chrono::microseconds max_delay{80};
  std::chrono::milliseconds txn_timeout{5000};

  /// Key=value form (scratch_dir excluded); round-trips via deserialize.
  [[nodiscard]] std::string serialize() const;
  static TortureOptions deserialize(const std::string& text);
};

/// One crash point's verdict. `errors` empty means recovery was equivalent
/// to the reference; every field participates in replay-identity checks.
struct CrashPointResult {
  bool crashed = false;
  int64_t crash_site = -1;     ///< site the crash fired at; -1 = no crash
  int64_t sites_seen = 0;      ///< WAL sites reached during the run
  db::RecoveryReport report;
  int64_t committed_txns = 0;  ///< transactions committed per the WALs
  uint64_t digest = 0;         ///< crc32c over every shard's recovered state
  std::vector<std::string> errors;

  [[nodiscard]] bool ok() const { return errors.empty(); }
  bool operator==(const CrashPointResult&) const = default;

  [[nodiscard]] std::string serialize() const;
  static CrashPointResult deserialize(const std::string& text);
};

/// Runs workload + crash + recovery + equivalence check for one plan.
[[nodiscard]] CrashPointResult run_crash_point(const TortureOptions& options,
                                               const FaultPlan& plan);

/// Dry run under the empty plan: the reachable WAL injection sites, in
/// order, with what each one turned out to be.
[[nodiscard]] std::vector<SiteInfo> enumerate_sites(const TortureOptions& options);

struct SweepOptions {
  /// Fault kinds applied at every site. Defaults to the full WAL repertoire.
  std::vector<FaultKind> kinds = {FaultKind::kCrashBefore, FaultKind::kTornWrite,
                                  FaultKind::kPartialFlush, FaultKind::kDuplicate,
                                  FaultKind::kCrashAfter};
  int threads = 1;        ///< >1: crash points run on a WorkStealingPool
  int64_t max_sites = -1; ///< cap on swept sites; -1 = every reachable site
};

struct SweepFailure {
  FaultPlan plan;
  CrashPointResult result;
};

struct SweepResult {
  int64_t sites = 0;         ///< reachable sites in the workload
  int64_t crash_points = 0;  ///< (site, kind) pairs executed
  std::vector<SweepFailure> failures;

  [[nodiscard]] bool ok() const { return failures.empty(); }
};

/// Exhaustive (site × kind) sweep. Deterministic regardless of threads:
/// results are folded in enumeration order.
[[nodiscard]] SweepResult run_wal_sweep(const TortureOptions& options,
                                        const SweepOptions& sweep);

/// Shrinks a failing plan to a locally-minimal still-failing action subset
/// via swarm::ddmin_keep (the fault-plan axis of the swarm's shrinker).
[[nodiscard]] FaultPlan shrink_fault_plan(const TortureOptions& options,
                                          const FaultPlan& plan,
                                          const swarm::ShrinkOptions& shrink = {},
                                          int* evals = nullptr);

// --- artifacts ---------------------------------------------------------------
//
//   <dir>/config.txt   TortureOptions (key=value)
//   <dir>/plan.txt     FaultPlan (the crash schedule; shrunk when from the
//                      sweep's failure path)
//   <dir>/report.txt   expected CrashPointResult (replay must match exactly)
//   <dir>/README.txt   one-command reproduction recipe
//
// Reproduce with:  faultkit --artifact=<dir>
// The same format doubles as the regression corpus under tests/corpus_fault/.

struct FaultArtifact {
  TortureOptions options;
  FaultPlan plan;
  CrashPointResult expected;
};

/// Writes the artifact directory, creating it as needed.
void write_fault_artifact(const std::filesystem::path& dir,
                          const FaultArtifact& artifact);

/// Loads an artifact directory. Throws CheckFailure on missing/malformed
/// files. The loaded options carry an empty scratch_dir; callers supply one.
[[nodiscard]] FaultArtifact load_fault_artifact(const std::filesystem::path& dir);

}  // namespace rcommit::faultinject
