// RCOMMIT_LINT_ALLOW_FILE(R2): decorates the threaded transport, whose send() contract is thread-safe; the counter and hold queue need a lock
#include "faultinject/netfault.h"

#include <algorithm>

#include "common/check.h"

namespace rcommit::faultinject {

FaultyNetwork::FaultyNetwork(transport::Network& inner, FaultPlan plan)
    : inner_(inner), plan_(std::move(plan)) {}

void FaultyNetwork::start() { inner_.start(); }

void FaultyNetwork::stop() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    lost_on_stop_ += static_cast<int64_t>(held_.size());
    held_.clear();
  }
  inner_.stop();
}

void FaultyNetwork::send(const transport::WireFrame& frame) {
  // The site counter, the fault decision, the forwarding, and the release of
  // held frames happen under one lock so concurrent senders observe one
  // consistent global send order (which is what the site numbering means).
  const std::lock_guard<std::mutex> lock(mu_);
  const int64_t site = next_site_++;
  const FaultAction action = plan_.rpc_action_at(site);
  switch (action.kind) {
    case FaultKind::kNone:
      inner_.send(frame);
      break;
    case FaultKind::kRpcDrop:
      ++dropped_;
      break;
    case FaultKind::kRpcDuplicate:
      ++duplicated_;
      inner_.send(frame);
      inner_.send(frame);
      break;
    case FaultKind::kRpcDelay: {
      ++held_total_;
      const int64_t delta = static_cast<int64_t>(std::max<uint64_t>(1, action.arg));
      held_.push_back({site + delta, frame});
      break;
    }
    case FaultKind::kRpcReorder:
      // Emitted right after the next send: swaps places with it.
      ++held_total_;
      held_.push_back({site + 1, frame});
      break;
    case FaultKind::kCrashBefore:
    case FaultKind::kTornWrite:
    case FaultKind::kPartialFlush:
    case FaultKind::kDuplicate:
    case FaultKind::kCrashAfter:
      RCOMMIT_CHECK_MSG(false, "WAL fault kind in an RPC plan at site " << site);
  }
  // Release every held frame whose due site has passed, in hold order.
  for (auto it = held_.begin(); it != held_.end();) {
    if (it->due_site <= site) {
      inner_.send(it->frame);
      it = held_.erase(it);
    } else {
      ++it;
    }
  }
}

transport::Channel<std::vector<uint8_t>>& FaultyNetwork::inbox(ProcId id) {
  return inner_.inbox(id);
}

int32_t FaultyNetwork::n() const { return inner_.n(); }

int64_t FaultyNetwork::sites_seen() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return next_site_;
}
int64_t FaultyNetwork::dropped() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}
int64_t FaultyNetwork::duplicated() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return duplicated_;
}
int64_t FaultyNetwork::held() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return held_total_;
}
int64_t FaultyNetwork::lost_on_stop() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return lost_on_stop_;
}

}  // namespace rcommit::faultinject
