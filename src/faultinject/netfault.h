// RCOMMIT_LINT_ALLOW_FILE(R2): decorates the threaded transport, whose send() contract is thread-safe; the counter and hold queue need a lock
// Fault-injecting network decorator.
//
// Wraps any transport::Network and applies the FaultPlan's RPC actions to
// send(): every send is a numbered RPC injection site (in send order) that
// can be dropped, duplicated, delayed by k subsequent sends, or reordered
// with the next send. Delays are measured in *sends*, not wall-clock time,
// so a plan's effect is reproducible wherever the send order is — no new
// R1 timing sites. ShardServer and DbTxnClient take a Network&, so pointing
// them at a FaultyNetwork injects the whole RPC path without touching them.
#pragma once

#include <cstdint>
#include <mutex>
#include <vector>

#include "faultinject/plan.h"
#include "transport/network.h"

namespace rcommit::faultinject {

class FaultyNetwork final : public transport::Network {
 public:
  /// `inner` must outlive this decorator.
  FaultyNetwork(transport::Network& inner, FaultPlan plan);

  void start() override;
  /// Frames still held for delay/reorder at stop() are lost — a held frame
  /// with no subsequent send to release it behaves as a drop.
  void stop() override;
  void send(const transport::WireFrame& frame) override;
  transport::Channel<std::vector<uint8_t>>& inbox(ProcId id) override;
  [[nodiscard]] int32_t n() const override;

  [[nodiscard]] int64_t sites_seen() const;
  [[nodiscard]] int64_t dropped() const;
  [[nodiscard]] int64_t duplicated() const;
  [[nodiscard]] int64_t held() const;  ///< delay + reorder holds, total
  [[nodiscard]] int64_t lost_on_stop() const;

 private:
  struct Held {
    int64_t due_site;  ///< released after the send at this site completes
    transport::WireFrame frame;
  };

  transport::Network& inner_;
  FaultPlan plan_;

  mutable std::mutex mu_;
  int64_t next_site_ = 0;
  int64_t dropped_ = 0;
  int64_t duplicated_ = 0;
  int64_t held_total_ = 0;
  int64_t lost_on_stop_ = 0;
  std::vector<Held> held_;
};

}  // namespace rcommit::faultinject
