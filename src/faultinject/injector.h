// The WAL-side fault injector.
//
// Implements db::WalFaultHook: numbers every WriteAheadLog append it
// observes (globally, across all shards, in append order) and answers with
// the plan's disposition for that site. With an empty plan it is a pure
// observer — the byte stream written is identical to an uninstrumented run —
// which doubles as the site enumerator: run the workload once under
// FaultPlan::none() and sites_seen() is the reachable-site count.
//
// Deterministic single-threaded core: the sequential workload drivers
// (DistributedDb, the torture suite) append from one thread. Threaded RPC
// deployments inject at the network layer (netfault.h) instead.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "db/wal.h"
#include "faultinject/plan.h"

namespace rcommit::faultinject {

/// What one injection site turned out to be, recorded as the run reaches it.
struct SiteInfo {
  int64_t site = 0;
  std::string wal_name;     ///< filename of the WAL appended to
  uint8_t record_type = 0;  ///< WalRecordType byte of the record
  size_t frame_size = 0;    ///< full frame bytes (header + body)
  FaultKind fired = FaultKind::kNone;  ///< fault executed here, if any
};

class FaultInjector final : public db::WalFaultHook {
 public:
  explicit FaultInjector(FaultPlan plan);

  db::WalAppendFault on_append(const std::filesystem::path& wal_path,
                               std::span<const uint8_t> frame) override;

  /// Sites observed so far (== appends attempted).
  [[nodiscard]] int64_t sites_seen() const { return next_site_; }
  /// How many times each fault kind fired.
  [[nodiscard]] int64_t fired(FaultKind kind) const;
  /// Per-site record, in site order.
  [[nodiscard]] const std::vector<SiteInfo>& sites() const { return sites_; }
  [[nodiscard]] const FaultPlan& plan() const { return plan_; }

 private:
  FaultPlan plan_;
  int64_t next_site_ = 0;
  std::vector<SiteInfo> sites_;
  std::map<FaultKind, int64_t> fired_;
};

}  // namespace rcommit::faultinject
