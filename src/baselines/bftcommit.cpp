#include "baselines/bftcommit.h"

#include <algorithm>

#include "common/check.h"

namespace rcommit::baselines {

namespace {

uint8_t maybe_flip(RandomTape& tape, uint8_t bit) {
  return tape.flip() != 0 ? (bit != 0 ? 0 : 1) : bit;
}

}  // namespace

sim::MessageRef BftVote::corrupted(RandomTape& tape) const {
  return sim::make_message<BftVote>(maybe_flip(tape, vote_));
}

sim::MessageRef BftPrePrepare::corrupted(RandomTape& tape) const {
  return sim::make_message<BftPrePrepare>(view_, maybe_flip(tape, outcome_));
}

sim::MessageRef BftPrepare::corrupted(RandomTape& tape) const {
  return sim::make_message<BftPrepare>(view_, maybe_flip(tape, outcome_));
}

sim::MessageRef BftCommitVote::corrupted(RandomTape& tape) const {
  return sim::make_message<BftCommitVote>(view_, maybe_flip(tape, outcome_));
}

BftCommitProcess::BftCommitProcess(Options options) : options_(std::move(options)) {
  const auto& p = options_.params;
  RCOMMIT_CHECK(p.n >= 1);
  RCOMMIT_CHECK(options_.initial_vote == 0 || options_.initial_vote == 1);
  f_ = max_faulty(p.n);
  if (options_.timeout == 0) options_.timeout = 6 * p.k;
  votes_.assign(static_cast<size_t>(p.n), std::nullopt);
}

bool BftCommitProcess::all_votes_yes() const {
  return all_votes_in() &&
         std::all_of(votes_.begin(), votes_.end(),
                     [](const std::optional<uint8_t>& v) { return *v == 1; });
}

// RCOMMIT_ANALYZE_ALLOW(A1): process boundary — protocol transitions are workload, not simulator machinery; bench_simperf gates their steady-state cost at runtime
void BftCommitProcess::on_step(sim::StepContext& ctx,
                               std::span<const sim::Envelope> delivered) {
  if (!started_) {
    started_ = true;
    id_ = ctx.self();
    ctx.broadcast(
        sim::make_message<BftVote>(static_cast<uint8_t>(options_.initial_vote)));
  }

  for (const auto& env : delivered) {
    if (const auto* m = sim::msg_cast<BftVote>(env.payload)) {
      auto& slot = votes_[static_cast<size_t>(env.from)];
      if (!slot.has_value()) {
        // First registration wins; an equivocating voter's later copies are
        // ignored (each honest replica keeps one view of every voter).
        slot = m->vote() != 0 ? 1 : 0;
        ++votes_in_;
      }
      continue;
    }
    if (const auto* m = sim::msg_cast<BftPrePrepare>(env.payload)) {
      // Only the view's primary may propose — Envelope.from is the
      // simulator-enforced identity, the model's stand-in for a signature.
      if (env.from == primary_of(m->view())) {
        preprepare_.emplace(m->view(), m->outcome() != 0 ? 1 : 0);
        maybe_echo(ctx, m->view());
      }
      continue;
    }
    if (const auto* m = sim::msg_cast<BftPrepare>(env.payload)) {
      const uint8_t o = m->outcome() != 0 ? 1 : 0;
      auto& set = prepares_[{m->view(), o}];
      set.insert(env.from);
      if (static_cast<int32_t>(set.size()) >= quorum()) {
        on_prepare_quorum(ctx, m->view(), o);
      }
      continue;
    }
    if (const auto* m = sim::msg_cast<BftCommitVote>(env.payload)) {
      const uint8_t o = m->outcome() != 0 ? 1 : 0;
      auto& set = commit_votes_[{m->view(), o}];
      set.insert(env.from);
      if (static_cast<int32_t>(set.size()) >= quorum()) {
        decide(o != 0 ? Decision::kCommit : Decision::kAbort);
      }
      continue;
    }
  }
  if (decided()) return;

  // Local view rotation: view v is entered at clock v * timeout. A decided
  // replica stops rotating (halted); an undecided one keeps giving new
  // primaries a chance — the liveness half of the protocol.
  view_ = std::max<int64_t>(view_, ctx.clock() / options_.timeout);

  maybe_propose(ctx);
  // Re-check the echo condition for the current view each step: votes or a
  // lock may have arrived after the proposal did, and a locked replica
  // re-echoes its lock into every view even without a proposal — so a quorum
  // of locked replicas can finish a view whose primary is silent or lying.
  maybe_echo(ctx, view_);
}

void BftCommitProcess::maybe_propose(sim::StepContext& ctx) {
  if (primary_of(view_) != id_ || proposed_views_.contains(view_)) return;
  uint8_t outcome = 0;
  if (locked_.has_value()) {
    outcome = *locked_;
  } else if (all_votes_in()) {
    outcome = all_votes_yes() ? 1 : 0;
  } else if (view_ == 0 && ctx.clock() < options_.timeout) {
    return;  // view 0: give the votes their delivery window before aborting
  }
  // Missing votes past the window count as no — aborting is always safe.
  proposed_views_.insert(view_);
  ctx.broadcast(sim::make_message<BftPrePrepare>(view_, outcome));
}

void BftCommitProcess::maybe_echo(sim::StepContext& ctx, int64_t view) {
  if (echoed_views_.contains(view)) return;
  uint8_t outcome = 0;
  if (locked_.has_value()) {
    outcome = *locked_;
  } else {
    const auto it = preprepare_.find(view);
    if (it == preprepare_.end()) return;
    outcome = it->second;
    // Commit needs evidence: every vote registered and yes. An honest
    // no-vote reaches every honest replica unforged, so a lying primary
    // cannot buy a 2f+1 commit-echo quorum. Abort needs none.
    if (outcome == 1 && !all_votes_yes()) return;
  }
  echoed_views_.insert(view);
  ctx.broadcast(sim::make_message<BftPrepare>(view, outcome));
}

void BftCommitProcess::on_prepare_quorum(sim::StepContext& ctx, int64_t view,
                                         uint8_t outcome) {
  // Sticky lock: the first prepare quorum fixes this replica's value forever.
  // A quorum for the other value is ignored — never commit-voted — which is
  // what makes two conflicting decisions impossible (see header).
  if (!locked_.has_value()) locked_ = outcome;
  if (*locked_ != outcome) return;
  auto& sent = commit_votes_[{view, outcome}];
  if (sent.contains(id_)) return;  // already commit-voted this (view, value)
  sent.insert(id_);
  ctx.broadcast(sim::make_message<BftCommitVote>(view, outcome));
  if (static_cast<int32_t>(sent.size()) >= quorum()) {
    decide(outcome != 0 ? Decision::kCommit : Decision::kAbort);
  }
}

}  // namespace rcommit::baselines
