// Paxos Commit baseline (Gray & Lamport, "Consensus on Transaction Commit").
//
// The paper's most-cited successor: transaction commit as n simultaneous
// Paxos consensus instances, one per participant, sharing a set of 2F+1
// acceptors. Instance i chooses participant i's registered vote (Prepared /
// Aborted); the global outcome is Commit iff every instance chooses
// Prepared. Unlike 2PC the protocol has no single point of blocking: any
// processor can become the leader of a higher ballot, and a majority
// (F+1) of acceptors is enough to learn — or safely complete — every
// instance. Safety holds under *any* timing and message lateness (it is a
// Paxos safety argument, not a timeout argument), which puts Paxos Commit in
// the same asynchronous-safe class as the paper's Protocol 2; timeouts only
// drive liveness.
//
// Mapping onto this repository's model (all n processors play every role):
//   * every processor is a participant (resource manager) with a vote,
//   * processors 0..2F are the acceptors,
//   * the leader of ballot b is processor b mod n; ballot 0 belongs to
//     processor 0 and uses the standard "virtual phase 1" fast path (ballot 0
//     is the lowest ballot, so its phase 1 is vacuous and participants send
//     their votes as phase-2a messages directly),
//   * on timeout, recovery leaders rotate: processor p starts its owned
//     ballots p, p+n, p+2n, ... at staggered clock thresholds, runs phase 1
//     against the acceptors, proposes the Paxos-mandated value per instance
//     (the highest accepted value, else Aborted for a free instance), and
//     broadcasts the outcome once every instance is chosen.
//
// The degenerate case F=0 (one acceptor, colocated with the ballot-0 leader)
// reduces exactly to 2PC — same message pattern, same count, same decisions —
// which tests/paxoscommit_test.cpp locks (the Gray–Lamport §4.1 observation).
#pragma once

#include <optional>
#include <set>
#include <string>
#include <vector>

#include "common/types.h"
#include "sim/message.h"
#include "sim/process.h"

namespace rcommit::baselines {

/// Ballot-0 leader's announcement that the commit protocol is running (the
/// transaction manager's "prepare" stimulus; participants answer with their
/// phase-2a vote).
class PcBegin final : public sim::MessageBase {
 public:
  [[nodiscard]] std::string debug_string() const override { return "PC-BEGIN"; }
};

/// Phase 1a: a recovery leader asks the acceptors to join ballot `ballot`
/// (covering all n instances at once, the Gray–Lamport batching).
class Pc1a final : public sim::MessageBase {
 public:
  explicit Pc1a(int64_t ballot) : ballot_(ballot) {}
  [[nodiscard]] int64_t ballot() const { return ballot_; }
  [[nodiscard]] std::string debug_string() const override {
    return "PC-1A(b=" + std::to_string(ballot_) + ")";
  }

 private:
  int64_t ballot_;
};

/// Phase 1b: an acceptor's promise, reporting its accepted (ballot, value)
/// per instance (-1 = the instance is free at this acceptor).
class Pc1b final : public sim::MessageBase {
 public:
  Pc1b(int64_t ballot, std::vector<int64_t> accepted_ballot,
       std::vector<uint8_t> accepted_value)
      : ballot_(ballot),
        accepted_ballot_(std::move(accepted_ballot)),
        accepted_value_(std::move(accepted_value)) {}
  [[nodiscard]] int64_t ballot() const { return ballot_; }
  [[nodiscard]] const std::vector<int64_t>& accepted_ballot() const {
    return accepted_ballot_;
  }
  [[nodiscard]] const std::vector<uint8_t>& accepted_value() const {
    return accepted_value_;
  }
  [[nodiscard]] std::string debug_string() const override {
    return "PC-1B(b=" + std::to_string(ballot_) + ")";
  }

 private:
  int64_t ballot_;
  std::vector<int64_t> accepted_ballot_;
  std::vector<uint8_t> accepted_value_;
};

/// Phase 2a: a proposal for one instance — a participant's registered vote at
/// ballot 0, or a recovery leader's Paxos-mandated value at higher ballots.
/// value: 1 = Prepared, 0 = Aborted.
class Pc2a final : public sim::MessageBase {
 public:
  Pc2a(int64_t ballot, ProcId instance, uint8_t value)
      : ballot_(ballot), instance_(instance), value_(value) {}
  [[nodiscard]] int64_t ballot() const { return ballot_; }
  [[nodiscard]] ProcId instance() const { return instance_; }
  [[nodiscard]] uint8_t value() const { return value_; }
  [[nodiscard]] std::string debug_string() const override {
    return "PC-2A(b=" + std::to_string(ballot_) + ",i=" + std::to_string(instance_) +
           "," + (value_ ? "Prepared" : "Aborted") + ")";
  }
  [[nodiscard]] sim::MessageRef corrupted(RandomTape& tape) const override;

 private:
  int64_t ballot_;
  ProcId instance_;
  uint8_t value_;
};

/// Phase 2b: an acceptor's acceptance of one instance's proposal, sent to the
/// ballot's leader.
class Pc2b final : public sim::MessageBase {
 public:
  Pc2b(int64_t ballot, ProcId instance, uint8_t value)
      : ballot_(ballot), instance_(instance), value_(value) {}
  [[nodiscard]] int64_t ballot() const { return ballot_; }
  [[nodiscard]] ProcId instance() const { return instance_; }
  [[nodiscard]] uint8_t value() const { return value_; }
  [[nodiscard]] std::string debug_string() const override {
    return "PC-2B(b=" + std::to_string(ballot_) + ",i=" + std::to_string(instance_) +
           "," + (value_ ? "Prepared" : "Aborted") + ")";
  }

 private:
  int64_t ballot_;
  ProcId instance_;
  uint8_t value_;
};

/// The learned global outcome, broadcast by whichever leader first sees every
/// instance chosen (or any instance chosen Aborted).
class PcOutcome final : public sim::MessageBase {
 public:
  explicit PcOutcome(uint8_t commit) : commit_(commit) {}
  [[nodiscard]] bool commit() const { return commit_ != 0; }
  [[nodiscard]] std::string debug_string() const override {
    return commit_ ? "PC-COMMIT" : "PC-ABORT";
  }
  [[nodiscard]] sim::MessageRef corrupted(RandomTape& tape) const override;

 private:
  uint8_t commit_;
};

class PaxosCommitProcess final : public sim::Process {
 public:
  struct Options {
    SystemParams params;
    int initial_vote = 1;
    /// Number of acceptor faults tolerated: 2f+1 acceptors (processors
    /// 0..2f). -1 = derive min(params.t, (n-1)/2), i.e. as fault-tolerant as
    /// the fleet size permits. f = 0 is the 2PC degenerate case.
    int32_t f = -1;
    /// Clock threshold before the first recovery ballot may start; also the
    /// per-ballot stagger unit. 0 = default to 4 * params.k.
    Tick timeout = 0;
  };

  explicit PaxosCommitProcess(Options options);

  void on_step(sim::StepContext& ctx, std::span<const sim::Envelope> delivered) override;
  [[nodiscard]] bool decided() const override { return decision_.has_value(); }
  [[nodiscard]] Decision decision() const override { return *decision_; }
  [[nodiscard]] bool halted() const override { return decided(); }

 private:
  [[nodiscard]] int32_t acceptor_count() const { return 2 * f_ + 1; }
  [[nodiscard]] bool is_acceptor() const { return id_ < acceptor_count(); }
  [[nodiscard]] ProcId leader_of(int64_t ballot) const {
    return static_cast<ProcId>(ballot % options_.params.n);
  }
  void decide(Decision d) { if (!decision_.has_value()) decision_ = d; }

  // Role handlers. "deliver" helpers short-circuit self-addressed messages
  // (leader colocated with an acceptor, an acceptor proposing to itself)
  // into direct calls, so the F=0 message pattern matches 2PC exactly.
  void send_votes_as_2a(sim::StepContext& ctx);
  void acceptor_on_1a(sim::StepContext& ctx, int64_t ballot);
  void acceptor_on_2a(sim::StepContext& ctx, int64_t ballot, ProcId instance,
                      uint8_t value);
  void leader_on_1b(sim::StepContext& ctx, ProcId from, const Pc1b& reply);
  void leader_on_2b(sim::StepContext& ctx, ProcId from, int64_t ballot,
                    ProcId instance, uint8_t value);
  void deliver_1b(sim::StepContext& ctx, ProcId to, int64_t ballot);
  void deliver_2b(sim::StepContext& ctx, int64_t ballot, ProcId instance,
                  uint8_t value);
  void start_recovery_ballot(sim::StepContext& ctx, int64_t ballot);
  void maybe_start_recovery(sim::StepContext& ctx);
  void send_proposals(sim::StepContext& ctx);
  void set_chosen(sim::StepContext& ctx, ProcId instance, uint8_t value);
  void announce(sim::StepContext& ctx, bool commit);

  Options options_;
  int32_t f_ = 0;
  ProcId id_ = kNoProc;
  bool started_ = false;
  bool begin_seen_ = false;
  bool sent_2a_ = false;
  bool announced_ = false;
  std::optional<Decision> decision_;

  // Acceptor state (meaningful when id_ <= 2f).
  int64_t promised_ = 0;
  std::vector<int64_t> accepted_ballot_;  ///< per instance; -1 = free
  std::vector<uint8_t> accepted_value_;

  // Leader state for the currently active owned ballot (-1 = none).
  int64_t active_ballot_ = -1;
  bool proposals_sent_ = false;
  std::set<ProcId> phase1_replies_;
  std::vector<int64_t> fold_ballot_;  ///< highest accepted ballot seen in 1bs
  std::vector<uint8_t> fold_value_;
  std::vector<std::set<ProcId>> accepts_;  ///< 2b senders per instance

  /// Chosen instance values learned across this processor's leaderships
  /// (0xff = not yet chosen). Chosen-ness is monotone — Paxos guarantees a
  /// later ballot re-chooses the same value — so this never resets.
  std::vector<uint8_t> chosen_;
  int64_t owned_rounds_started_ = 0;
};

}  // namespace rcommit::baselines
