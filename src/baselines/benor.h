// Local-coin Ben-Or baseline [Be].
//
// The paper's agreement subroutine *is* Ben-Or's protocol with the local
// coin flip replaced by a shared coin list for the first |coins| stages
// (paper §3.1: "our agreement subroutine is a modification of Ben-Or's
// asynchronous agreement protocol [Be]; the modification lowers the expected
// running time from exponential to constant"). Running AgreementProcess with
// an *empty* coin list therefore recovers the original local-coin protocol
// exactly — every undecided stage falls through to flip(1). This header
// packages that configuration as the named baseline the comparison
// experiments (E6/C14) run against.
#pragma once

#include <memory>
#include <vector>

#include "protocol/agreement.h"

namespace rcommit::baselines {

/// One local-coin Ben-Or participant.
inline std::unique_ptr<protocol::AgreementProcess> make_benor_process(
    const SystemParams& params, int initial_value,
    protocol::SendObserver observer = nullptr,
    protocol::HaltPolicy halt = protocol::HaltPolicy::kDecidedBroadcast) {
  protocol::AgreementProcess::Options options;
  options.params = params;
  options.initial_value = initial_value;
  options.coins = {};  // no shared coins: the original Ben-Or protocol
  options.halt = halt;
  options.observer = std::move(observer);
  return std::make_unique<protocol::AgreementProcess>(std::move(options));
}

/// One shared-coin participant (the paper's modification), with a caller-
/// provided common coin list — identical for all participants in the fleet.
inline std::unique_ptr<protocol::AgreementProcess> make_shared_coin_process(
    const SystemParams& params, int initial_value, std::vector<uint8_t> coins,
    protocol::SendObserver observer = nullptr,
    protocol::HaltPolicy halt = protocol::HaltPolicy::kDecidedBroadcast) {
  protocol::AgreementProcess::Options options;
  options.params = params;
  options.initial_value = initial_value;
  options.coins = std::move(coins);
  options.halt = halt;
  options.observer = std::move(observer);
  return std::make_unique<protocol::AgreementProcess>(std::move(options));
}

}  // namespace rcommit::baselines
