// Two-phase commit baseline (Skeen-style [S]).
//
// The classic synchronous-model commit protocol the paper contrasts with:
// a coordinator collects votes and disseminates the outcome. Its safety rests
// on the timing assumptions holding. We implement two participant timeout
// policies for the prepared state (voted yes, awaiting the outcome):
//
//   kBlock         — wait forever. Safe under any timing, but a crashed (or
//                    slow) coordinator blocks the participant indefinitely —
//                    the blocking problem that motivated [S] and [DS].
//   kPresumeAbort  — unilaterally abort on timeout. Live, but one late
//                    COMMIT message makes a participant abort a transaction
//                    the rest of the system committed — the paper's "a single
//                    violation of the timing assumptions can cause the
//                    protocol to produce the wrong answer" (§1), reproduced
//                    by experiment E7.
#pragma once

#include <optional>
#include <set>
#include <string>

#include "common/types.h"
#include "sim/message.h"
#include "sim/process.h"

namespace rcommit::baselines {

/// Coordinator's vote request.
class TpcPrepare final : public sim::MessageBase {
 public:
  [[nodiscard]] std::string debug_string() const override { return "2PC-PREPARE"; }
};

/// Participant's vote.
class TpcVote final : public sim::MessageBase {
 public:
  explicit TpcVote(uint8_t vote) : vote_(vote) {}
  [[nodiscard]] uint8_t vote() const { return vote_; }
  [[nodiscard]] std::string debug_string() const override {
    return "2PC-VOTE(" + std::to_string(int(vote_)) + ")";
  }

 private:
  uint8_t vote_;
};

/// Coordinator's outcome broadcast.
class TpcDecision final : public sim::MessageBase {
 public:
  explicit TpcDecision(uint8_t commit) : commit_(commit) {}
  [[nodiscard]] bool commit() const { return commit_ != 0; }
  [[nodiscard]] std::string debug_string() const override {
    return commit_ ? "2PC-COMMIT" : "2PC-ABORT";
  }

 private:
  uint8_t commit_;
};

/// Timeout behaviour of a prepared participant.
enum class TwoPcTimeoutPolicy {
  kBlock,
  kPresumeAbort,
};

class TwoPcProcess final : public sim::Process {
 public:
  struct Options {
    SystemParams params;
    int initial_vote = 1;
    TwoPcTimeoutPolicy policy = TwoPcTimeoutPolicy::kBlock;
    /// Per-wait timeout in own clock ticks. Must exceed the normal
    /// request-response latency (2 message delays); default 4K.
    Tick timeout = 0;  ///< 0 = default to 4 * params.k
  };

  explicit TwoPcProcess(Options options);

  void on_step(sim::StepContext& ctx, std::span<const sim::Envelope> delivered) override;
  [[nodiscard]] bool decided() const override { return decision_.has_value(); }
  [[nodiscard]] Decision decision() const override { return *decision_; }
  [[nodiscard]] bool halted() const override { return decided(); }

 private:
  [[nodiscard]] bool is_coordinator() const { return id_ == 0; }
  void decide(Decision d) { if (!decision_.has_value()) decision_ = d; }

  enum class State {
    kStart,
    kCoordCollectVotes,
    kPartAwaitPrepare,
    kPartPrepared,  ///< voted yes, awaiting the outcome
    kDone,
  };

  Options options_;
  ProcId id_ = kNoProc;
  State state_ = State::kStart;
  Tick window_start_ = 0;
  std::set<ProcId> votes_received_;
  int yes_votes_ = 0;
  std::optional<Decision> decision_;
};

}  // namespace rcommit::baselines
