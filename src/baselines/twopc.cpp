#include "baselines/twopc.h"

#include "common/check.h"

namespace rcommit::baselines {

TwoPcProcess::TwoPcProcess(Options options) : options_(std::move(options)) {
  RCOMMIT_CHECK(options_.params.n >= 1);
  RCOMMIT_CHECK(options_.initial_vote == 0 || options_.initial_vote == 1);
  if (options_.timeout == 0) options_.timeout = 4 * options_.params.k;
}

void TwoPcProcess::on_step(sim::StepContext& ctx,
                           std::span<const sim::Envelope> delivered) {
  if (state_ == State::kStart) {
    id_ = ctx.self();
    window_start_ = ctx.clock();
    if (is_coordinator()) {
      ctx.broadcast(sim::make_message<TpcPrepare>());
      votes_received_.insert(id_);
      if (options_.initial_vote != 0) ++yes_votes_;
      state_ = State::kCoordCollectVotes;
    } else {
      state_ = State::kPartAwaitPrepare;
    }
  }

  for (const auto& env : delivered) {
    if (sim::msg_cast<TpcPrepare>(env.payload) != nullptr) {
      if (state_ == State::kPartAwaitPrepare) {
        ctx.send(0, sim::make_message<TpcVote>(static_cast<uint8_t>(options_.initial_vote)));
        if (options_.initial_vote == 0) {
          // A no-voter can abort immediately: the coordinator cannot commit
          // without its yes.
          decide(Decision::kAbort);
          state_ = State::kDone;
        } else {
          state_ = State::kPartPrepared;
          window_start_ = ctx.clock();
        }
      }
      // A prepare arriving after a local timeout-abort is stale; the vote was
      // never sent, so the coordinator can only abort. Ignore it.
      continue;
    }
    if (const auto* vote = sim::msg_cast<TpcVote>(env.payload)) {
      if (state_ == State::kCoordCollectVotes &&
          votes_received_.insert(env.from).second && vote->vote() != 0) {
        ++yes_votes_;
      }
      continue;
    }
    if (const auto* outcome = sim::msg_cast<TpcDecision>(env.payload)) {
      if (state_ == State::kPartPrepared || state_ == State::kPartAwaitPrepare) {
        decide(outcome->commit() ? Decision::kCommit : Decision::kAbort);
        state_ = State::kDone;
      }
      continue;
    }
  }

  const Tick elapsed = ctx.clock() - window_start_;
  switch (state_) {
    case State::kCoordCollectVotes: {
      const bool all_votes =
          static_cast<int32_t>(votes_received_.size()) >= options_.params.n;
      if (all_votes || elapsed >= options_.timeout) {
        const bool commit = all_votes && yes_votes_ >= options_.params.n;
        ctx.broadcast(sim::make_message<TpcDecision>(commit ? 1 : 0));
        decide(commit ? Decision::kCommit : Decision::kAbort);
        state_ = State::kDone;
      }
      break;
    }
    case State::kPartAwaitPrepare:
      if (elapsed >= options_.timeout) {
        // Safe unilateral abort: we never voted, so nobody can commit.
        decide(Decision::kAbort);
        state_ = State::kDone;
      }
      break;
    case State::kPartPrepared:
      if (elapsed >= options_.timeout &&
          options_.policy == TwoPcTimeoutPolicy::kPresumeAbort) {
        // UNSAFE: the coordinator may have committed; its COMMIT being late
        // is exactly the single timing violation the paper warns about.
        decide(Decision::kAbort);
        state_ = State::kDone;
      }
      break;
    case State::kStart:
    case State::kDone:
      break;
  }
}

}  // namespace rcommit::baselines
