// Three-phase commit with a termination (recovery) protocol — the
// Dwork–Skeen [DS] nonblocking-commit family.
//
// Plain 3PC (threepc.h) resolves timeouts with local rules (prepared ⇒
// abort, precommitted ⇒ commit), which is exactly what one late message
// breaks. The nonblocking-commitment line of work replaces the local rules
// with a *termination protocol*: on timeout, participants report their
// states to a recovery leader, which decides COMMIT iff any reachable
// participant holds a PRECOMMIT (then nobody can have aborted) and ABORT
// otherwise, and disseminates the decision.
//
// Under synchronous timing this tolerates coordinator failure without
// blocking or diverging — the property [S]/[DS] prove. Under a *late*
// message the state reports race the live coordinator and the recovery
// leader can decide differently from it: the paper's §1 criticism applies to
// the whole synchronous family, not just the simple timeout rules, and
// experiment E7 shows it against this protocol too.
//
// Scope: one recovery round led by processor 1 (the paper's adversary kills
// at most the coordinator in the scenarios we reproduce). If the leader also
// fails, the protocol blocks — implementing full leader rotation would not
// change the late-message story this baseline exists to tell.
#pragma once

#include <optional>
#include <set>
#include <string>

#include "common/types.h"
#include "sim/message.h"
#include "sim/process.h"

namespace rcommit::baselines {

/// Participant states reported during termination.
enum class Q3pcState : uint8_t {
  kUnvoted = 0,      ///< has not voted yes (cannot have enabled a commit)
  kPrepared = 1,     ///< voted yes, no precommit
  kPrecommitted = 2, ///< holds a PRECOMMIT
  kCommitted = 3,
  kAborted = 4,
};

/// Timeout-triggered report to the recovery leader.
class Q3pcStateReport final : public sim::MessageBase {
 public:
  explicit Q3pcStateReport(Q3pcState state) : state_(state) {}
  [[nodiscard]] Q3pcState state() const { return state_; }
  [[nodiscard]] std::string debug_string() const override {
    return "Q3PC-STATE(" + std::to_string(static_cast<int>(state_)) + ")";
  }

 private:
  Q3pcState state_;
};

/// The recovery leader's verdict.
class Q3pcRecoveryDecision final : public sim::MessageBase {
 public:
  explicit Q3pcRecoveryDecision(uint8_t commit) : commit_(commit) {}
  [[nodiscard]] bool commit() const { return commit_ != 0; }
  [[nodiscard]] std::string debug_string() const override {
    return commit_ ? "Q3PC-RECOVER-COMMIT" : "Q3PC-RECOVER-ABORT";
  }

 private:
  uint8_t commit_;
};

class Q3pcProcess final : public sim::Process {
 public:
  struct Options {
    SystemParams params;
    int initial_vote = 1;
    Tick timeout = 0;  ///< per-wait timeout; 0 = default to 4 * params.k
  };

  explicit Q3pcProcess(Options options);

  void on_step(sim::StepContext& ctx, std::span<const sim::Envelope> delivered) override;
  [[nodiscard]] bool decided() const override { return decision_.has_value(); }
  [[nodiscard]] Decision decision() const override { return *decision_; }
  [[nodiscard]] bool halted() const override { return decided(); }

 private:
  static constexpr ProcId kLeader = 1;  ///< recovery leader

  [[nodiscard]] bool is_coordinator() const { return id_ == 0; }
  [[nodiscard]] bool is_leader() const { return id_ == kLeader; }
  void decide(sim::StepContext& ctx, Decision d, bool announce_recovery);
  void enter_termination(sim::StepContext& ctx);
  [[nodiscard]] Q3pcState my_state() const;

  enum class Phase {
    kStart,
    kCoordCollectVotes,
    kCoordCollectAcks,
    kPartAwaitCanCommit,
    kPartPrepared,
    kPartPrecommitted,
    kAwaitRecovery,  ///< reported to the leader, awaiting its verdict
    kDone,
  };

  Options options_;
  ProcId id_ = kNoProc;
  Phase phase_ = Phase::kStart;
  Tick window_start_ = 0;
  std::set<ProcId> votes_received_;
  int yes_votes_ = 0;
  std::set<ProcId> acks_received_;
  std::optional<Decision> decision_;

  // Recovery-leader bookkeeping.
  bool recovery_active_ = false;
  Tick recovery_start_ = 0;
  std::set<ProcId> reports_received_;
  bool any_precommit_reported_ = false;
  bool any_commit_reported_ = false;
  bool any_abort_reported_ = false;
  bool recovery_decided_ = false;
};

}  // namespace rcommit::baselines
