// Byzantine fault tolerant commit baseline (after Zhao, "A Byzantine Fault
// Tolerant Distributed Commit Protocol").
//
// Zhao's protocol runs the commit decision through a PBFT-style replicated
// coordinator: participants register votes with every coordinator replica,
// the primary proposes the outcome, and the replicas certify it with
// prepare/commit quorums of 2f+1 out of n >= 3f+1 before anyone acts on it.
// This implementation keeps that skeleton in the repository's symmetric
// fleet model — every processor is both a participant and a coordinator
// replica — and makes the simplifications the deterministic simulator
// motivates (documented in docs/baselines.md):
//
//   * identity in place of signatures: the simulator's Envelope.from is
//     unforgeable, so certificates are sender sets instead of signature sets,
//   * view rotation by local timers: a replica in view v accepts proposals
//     from primary v mod n; views advance on a fixed clock schedule rather
//     than a view-change sub-protocol,
//   * sticky locks in place of PBFT's view-change certificates: the first
//     prepare quorum a replica observes locks its value permanently; locked
//     replicas only ever echo or commit-vote their locked value. Two
//     conflicting decisions would need disjoint sets of f+1 honest locked
//     replicas — more than the 2f+1 honest processors available — so
//     agreement among honest processors holds under any timing and up to
//     f = (n-1)/3 traitors. (Liveness can suffer under a split lock; safety
//     cannot. The swarm gates safety only.)
//
// A replica echoes a Commit proposal only with the full yes-vote evidence in
// hand (all n votes registered, all yes), which is what confines a lying
// primary or an equivocating voter to liveness damage: any honest no-vote
// reaches every honest replica unforged, starving Commit of its 2f+1 echo
// quorum. Abort needs no evidence — aborting is always safe.
#pragma once

#include <map>
#include <optional>
#include <set>
#include <string>
#include <utility>

#include "common/types.h"
#include "sim/message.h"
#include "sim/process.h"

namespace rcommit::baselines {

/// A participant's vote, broadcast to every replica. 1 = yes/prepared.
class BftVote final : public sim::MessageBase {
 public:
  explicit BftVote(uint8_t vote) : vote_(vote) {}
  [[nodiscard]] uint8_t vote() const { return vote_; }
  [[nodiscard]] std::string debug_string() const override {
    return "BFT-VOTE(" + std::to_string(int(vote_)) + ")";
  }
  [[nodiscard]] sim::MessageRef corrupted(RandomTape& tape) const override;

 private:
  uint8_t vote_;
};

/// The view primary's outcome proposal. outcome: 1 = commit.
class BftPrePrepare final : public sim::MessageBase {
 public:
  BftPrePrepare(int64_t view, uint8_t outcome) : view_(view), outcome_(outcome) {}
  [[nodiscard]] int64_t view() const { return view_; }
  [[nodiscard]] uint8_t outcome() const { return outcome_; }
  [[nodiscard]] std::string debug_string() const override {
    return "BFT-PREPREPARE(v=" + std::to_string(view_) + "," +
           (outcome_ ? "commit" : "abort") + ")";
  }
  [[nodiscard]] sim::MessageRef corrupted(RandomTape& tape) const override;

 private:
  int64_t view_;
  uint8_t outcome_;
};

/// A replica's echo of the proposal it accepts in a view.
class BftPrepare final : public sim::MessageBase {
 public:
  BftPrepare(int64_t view, uint8_t outcome) : view_(view), outcome_(outcome) {}
  [[nodiscard]] int64_t view() const { return view_; }
  [[nodiscard]] uint8_t outcome() const { return outcome_; }
  [[nodiscard]] std::string debug_string() const override {
    return "BFT-PREPARE(v=" + std::to_string(view_) + "," +
           (outcome_ ? "commit" : "abort") + ")";
  }
  [[nodiscard]] sim::MessageRef corrupted(RandomTape& tape) const override;

 private:
  int64_t view_;
  uint8_t outcome_;
};

/// A replica's commit-phase vote, sent after observing a prepare quorum.
class BftCommitVote final : public sim::MessageBase {
 public:
  BftCommitVote(int64_t view, uint8_t outcome) : view_(view), outcome_(outcome) {}
  [[nodiscard]] int64_t view() const { return view_; }
  [[nodiscard]] uint8_t outcome() const { return outcome_; }
  [[nodiscard]] std::string debug_string() const override {
    return "BFT-COMMITVOTE(v=" + std::to_string(view_) + "," +
           (outcome_ ? "commit" : "abort") + ")";
  }
  [[nodiscard]] sim::MessageRef corrupted(RandomTape& tape) const override;

 private:
  int64_t view_;
  uint8_t outcome_;
};

class BftCommitProcess final : public sim::Process {
 public:
  struct Options {
    SystemParams params;
    int initial_vote = 1;
    /// View length in own clock ticks (view v starts at v * timeout).
    /// 0 = default to 6 * params.k — room for the four message delays of the
    /// fast path before the first rotation.
    Tick timeout = 0;
  };

  explicit BftCommitProcess(Options options);

  void on_step(sim::StepContext& ctx, std::span<const sim::Envelope> delivered) override;
  [[nodiscard]] bool decided() const override { return decision_.has_value(); }
  [[nodiscard]] Decision decision() const override { return *decision_; }
  [[nodiscard]] bool halted() const override { return decided(); }

  /// Byzantine resilience of this fleet size: f = (n-1)/3.
  [[nodiscard]] static int32_t max_faulty(int32_t n) { return (n - 1) / 3; }

 private:
  [[nodiscard]] int32_t quorum() const { return 2 * f_ + 1; }
  [[nodiscard]] ProcId primary_of(int64_t view) const {
    return static_cast<ProcId>(view % options_.params.n);
  }
  [[nodiscard]] bool all_votes_yes() const;
  [[nodiscard]] bool all_votes_in() const { return votes_in_ >= options_.params.n; }
  void decide(Decision d) { if (!decision_.has_value()) decision_ = d; }

  void maybe_propose(sim::StepContext& ctx);
  void maybe_echo(sim::StepContext& ctx, int64_t view);
  void on_prepare_quorum(sim::StepContext& ctx, int64_t view, uint8_t outcome);

  Options options_;
  int32_t f_ = 0;
  ProcId id_ = kNoProc;
  bool started_ = false;
  std::optional<Decision> decision_;

  // Participant state: first vote registered per sender.
  std::vector<std::optional<uint8_t>> votes_;
  int32_t votes_in_ = 0;

  // Replica state. Ordered containers only: iteration order feeds decisions.
  int64_t view_ = 0;                          ///< highest view entered
  std::set<int64_t> proposed_views_;          ///< primary duty done (as primary)
  std::set<int64_t> echoed_views_;            ///< one prepare per view
  std::map<int64_t, uint8_t> preprepare_;     ///< first proposal seen per view
  std::map<std::pair<int64_t, uint8_t>, std::set<ProcId>> prepares_;
  std::map<std::pair<int64_t, uint8_t>, std::set<ProcId>> commit_votes_;
  std::optional<uint8_t> locked_;             ///< sticky: first prepare quorum
};

}  // namespace rcommit::baselines
