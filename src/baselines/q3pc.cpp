#include "baselines/q3pc.h"

#include "baselines/threepc.h"
#include "common/check.h"

namespace rcommit::baselines {

Q3pcProcess::Q3pcProcess(Options options) : options_(std::move(options)) {
  RCOMMIT_CHECK(options_.params.n >= 2);
  RCOMMIT_CHECK(options_.initial_vote == 0 || options_.initial_vote == 1);
  if (options_.timeout == 0) options_.timeout = 4 * options_.params.k;
}

Q3pcState Q3pcProcess::my_state() const {
  if (decision_.has_value()) {
    return *decision_ == Decision::kCommit ? Q3pcState::kCommitted
                                           : Q3pcState::kAborted;
  }
  switch (phase_) {
    case Phase::kPartPrecommitted:
      return Q3pcState::kPrecommitted;
    case Phase::kPartPrepared:
    case Phase::kAwaitRecovery:
      return Q3pcState::kPrepared;
    case Phase::kCoordCollectAcks:
      return Q3pcState::kPrecommitted;  // the coordinator issued PRECOMMITs
    case Phase::kStart:
    case Phase::kCoordCollectVotes:
    case Phase::kPartAwaitCanCommit:
      return Q3pcState::kUnvoted;
    case Phase::kDone:
      // decide() records the decision before entering kDone, so the early
      // return above already handled this phase; keep the mapping total.
      return Q3pcState::kUnvoted;
  }
  return Q3pcState::kUnvoted;
}

void Q3pcProcess::decide(sim::StepContext& ctx, Decision d, bool announce_recovery) {
  if (decision_.has_value()) return;
  decision_ = d;
  if (announce_recovery) {
    ctx.broadcast(sim::make_message<Q3pcRecoveryDecision>(
        d == Decision::kCommit ? uint8_t{1} : uint8_t{0}));
  }
  phase_ = Phase::kDone;
}

void Q3pcProcess::enter_termination(sim::StepContext& ctx) {
  // Report the current state to the recovery leader and await its verdict.
  // The leader counts its own state too.
  if (is_leader()) {
    if (!recovery_active_) {
      recovery_active_ = true;
      recovery_start_ = ctx.clock();
      reports_received_.insert(id_);
      const auto state = my_state();
      any_precommit_reported_ |= state == Q3pcState::kPrecommitted;
      any_commit_reported_ |= state == Q3pcState::kCommitted;
      any_abort_reported_ |= state == Q3pcState::kAborted;
    }
    phase_ = Phase::kAwaitRecovery;
    return;
  }
  ctx.send(kLeader, sim::make_message<Q3pcStateReport>(my_state()));
  phase_ = Phase::kAwaitRecovery;
  window_start_ = ctx.clock();
}

// RCOMMIT_ANALYZE_ALLOW(A1): process boundary — protocol transitions are workload, not simulator machinery; bench_simperf gates their steady-state cost at runtime
void Q3pcProcess::on_step(sim::StepContext& ctx,
                          std::span<const sim::Envelope> delivered) {
  if (phase_ == Phase::kStart) {
    id_ = ctx.self();
    window_start_ = ctx.clock();
    if (is_coordinator()) {
      ctx.broadcast(sim::make_message<ThreePcCanCommit>());
      votes_received_.insert(id_);
      if (options_.initial_vote != 0) ++yes_votes_;
      phase_ = Phase::kCoordCollectVotes;
    } else {
      phase_ = Phase::kPartAwaitCanCommit;
    }
  }

  for (const auto& env : delivered) {
    if (sim::msg_cast<ThreePcCanCommit>(env.payload) != nullptr) {
      if (phase_ == Phase::kPartAwaitCanCommit) {
        ctx.send(0, sim::make_message<ThreePcVote>(
                        static_cast<uint8_t>(options_.initial_vote)));
        if (options_.initial_vote == 0) {
          decide(ctx, Decision::kAbort, /*announce_recovery=*/false);
        } else {
          phase_ = Phase::kPartPrepared;
          window_start_ = ctx.clock();
        }
      }
      continue;
    }
    if (const auto* vote = sim::msg_cast<ThreePcVote>(env.payload)) {
      if (phase_ == Phase::kCoordCollectVotes &&
          votes_received_.insert(env.from).second && vote->vote() != 0) {
        ++yes_votes_;
      }
      continue;
    }
    if (sim::msg_cast<ThreePcPreCommit>(env.payload) != nullptr) {
      if (phase_ == Phase::kPartPrepared) {
        ctx.send(0, sim::make_message<ThreePcAck>());
        phase_ = Phase::kPartPrecommitted;
        window_start_ = ctx.clock();
      }
      continue;
    }
    if (sim::msg_cast<ThreePcAck>(env.payload) != nullptr) {
      if (phase_ == Phase::kCoordCollectAcks) acks_received_.insert(env.from);
      continue;
    }
    if (const auto* outcome = sim::msg_cast<ThreePcOutcome>(env.payload)) {
      if (phase_ != Phase::kDone) {
        decide(ctx, outcome->commit() ? Decision::kCommit : Decision::kAbort,
               /*announce_recovery=*/false);
      }
      continue;
    }
    if (const auto* report = sim::msg_cast<Q3pcStateReport>(env.payload)) {
      if (!is_leader()) continue;
      if (recovery_decided_ || decision_.has_value()) {
        // Straggler: re-announce the verdict so it can finish.
        if (decision_.has_value()) {
          ctx.send(env.from,
                   sim::make_message<Q3pcRecoveryDecision>(
                       *decision_ == Decision::kCommit ? uint8_t{1} : uint8_t{0}));
        }
        continue;
      }
      if (!recovery_active_) {
        // A peer's timeout starts recovery even before the leader's own.
        recovery_active_ = true;
        recovery_start_ = ctx.clock();
        reports_received_.insert(id_);
        const auto own = my_state();
        any_precommit_reported_ |= own == Q3pcState::kPrecommitted;
        any_commit_reported_ |= own == Q3pcState::kCommitted;
        any_abort_reported_ |= own == Q3pcState::kAborted;
      }
      reports_received_.insert(env.from);
      any_precommit_reported_ |= report->state() == Q3pcState::kPrecommitted;
      any_commit_reported_ |= report->state() == Q3pcState::kCommitted;
      any_abort_reported_ |= report->state() == Q3pcState::kAborted;
      continue;
    }
    if (const auto* verdict = sim::msg_cast<Q3pcRecoveryDecision>(env.payload)) {
      if (phase_ != Phase::kDone) {
        decide(ctx, verdict->commit() ? Decision::kCommit : Decision::kAbort,
               /*announce_recovery=*/false);
      }
      continue;
    }
  }

  const Tick elapsed = ctx.clock() - window_start_;
  switch (phase_) {
    case Phase::kCoordCollectVotes: {
      const bool all_votes =
          static_cast<int32_t>(votes_received_.size()) >= options_.params.n;
      if (all_votes && yes_votes_ >= options_.params.n) {
        ctx.broadcast(sim::make_message<ThreePcPreCommit>());
        acks_received_.insert(id_);
        phase_ = Phase::kCoordCollectAcks;
        window_start_ = ctx.clock();
      } else if (all_votes || elapsed >= options_.timeout) {
        ctx.broadcast(sim::make_message<ThreePcOutcome>(0));
        decide(ctx, Decision::kAbort, /*announce_recovery=*/false);
      }
      break;
    }
    case Phase::kCoordCollectAcks: {
      const bool all_acks =
          static_cast<int32_t>(acks_received_.size()) >= options_.params.n;
      if (all_acks || elapsed >= options_.timeout) {
        ctx.broadcast(sim::make_message<ThreePcOutcome>(1));
        decide(ctx, Decision::kCommit, /*announce_recovery=*/false);
      }
      break;
    }
    case Phase::kPartAwaitCanCommit:
      if (elapsed >= options_.timeout) {
        // Never voted: cannot have enabled a commit. Still report, so the
        // leader learns this participant is unvoted.
        enter_termination(ctx);
      }
      break;
    case Phase::kPartPrepared:
    case Phase::kPartPrecommitted:
      if (elapsed >= options_.timeout) enter_termination(ctx);
      break;
    case Phase::kAwaitRecovery:
      if (is_leader() && recovery_active_ && !recovery_decided_) {
        // Give reports one timeout window to arrive, then rule: COMMIT iff a
        // PRECOMMIT (or COMMIT) is visible — then no one can have aborted —
        // else ABORT. Sound under synchrony; wrong when reports are late.
        const bool all_reported =
            static_cast<int32_t>(reports_received_.size()) >= options_.params.n;
        if (all_reported || ctx.clock() - recovery_start_ >= options_.timeout) {
          recovery_decided_ = true;
          const bool commit = any_precommit_reported_ || any_commit_reported_;
          RCOMMIT_CHECK_MSG(!(commit && any_abort_reported_),
                            "Q3PC saw both PRECOMMIT and ABORT states");
          decide(ctx, commit ? Decision::kCommit : Decision::kAbort,
                 /*announce_recovery=*/true);
        }
      }
      // Non-leaders wait for the verdict indefinitely; re-reporting would not
      // help if the leader is dead (single-recovery-round scope, see header).
      break;
    case Phase::kStart:
    case Phase::kDone:
      break;
  }
}

}  // namespace rcommit::baselines
