#include "baselines/paxoscommit.h"

#include <algorithm>

#include "common/check.h"

namespace rcommit::baselines {

sim::MessageRef Pc2a::corrupted(RandomTape& tape) const {
  // A Byzantine participant lies about its vote — possibly differently per
  // recipient (the wrapper draws per send, so equivocation falls out).
  const uint8_t flipped = value_ != 0 ? 0 : 1;
  const uint8_t value = tape.flip() != 0 ? flipped : value_;
  return sim::make_message<Pc2a>(ballot_, instance_, value);
}

sim::MessageRef PcOutcome::corrupted(RandomTape& tape) const {
  const uint8_t flipped = commit_ != 0 ? 0 : 1;
  return sim::make_message<PcOutcome>(tape.flip() != 0 ? flipped : commit_);
}

PaxosCommitProcess::PaxosCommitProcess(Options options) : options_(std::move(options)) {
  const auto& p = options_.params;
  RCOMMIT_CHECK(p.n >= 1);
  RCOMMIT_CHECK(options_.initial_vote == 0 || options_.initial_vote == 1);
  f_ = options_.f >= 0 ? options_.f : std::min(p.t, (p.n - 1) / 2);
  RCOMMIT_CHECK_MSG(2 * f_ + 1 <= p.n,
                    "paxos commit needs 2f+1 <= n acceptors (f=" << f_ << ", n=" << p.n
                                                                 << ")");
  if (options_.timeout == 0) options_.timeout = 4 * p.k;
  const auto n = static_cast<size_t>(p.n);
  accepted_ballot_.assign(n, -1);
  accepted_value_.assign(n, 0);
  chosen_.assign(n, 0xff);
}

// RCOMMIT_ANALYZE_ALLOW(A1): process boundary — protocol transitions are workload, not simulator machinery; bench_simperf gates their steady-state cost at runtime
void PaxosCommitProcess::on_step(sim::StepContext& ctx,
                                 std::span<const sim::Envelope> delivered) {
  if (!started_) {
    started_ = true;
    id_ = ctx.self();
    if (id_ == 0) {
      // Ballot 0: the initial leader announces the protocol and collects 2b
      // acceptances directly — its phase 1 is vacuous (no lower ballot can
      // exist), so participants' votes arrive as phase-2a messages.
      ctx.broadcast(sim::make_message<PcBegin>());
      active_ballot_ = 0;
      proposals_sent_ = true;  // ballot-0 proposals are the participants' own 2as
      accepts_.assign(static_cast<size_t>(options_.params.n), {});
      owned_rounds_started_ = 1;
    }
  }

  for (const auto& env : delivered) {
    if (sim::msg_cast<PcBegin>(env.payload) != nullptr) {
      begin_seen_ = true;
      continue;
    }
    if (const auto* m = sim::msg_cast<Pc1a>(env.payload)) {
      if (is_acceptor()) acceptor_on_1a(ctx, m->ballot());
      continue;
    }
    if (const auto* m = sim::msg_cast<Pc1b>(env.payload)) {
      leader_on_1b(ctx, env.from, *m);
      continue;
    }
    if (const auto* m = sim::msg_cast<Pc2a>(env.payload)) {
      if (is_acceptor()) acceptor_on_2a(ctx, m->ballot(), m->instance(), m->value());
      continue;
    }
    if (const auto* m = sim::msg_cast<Pc2b>(env.payload)) {
      leader_on_2b(ctx, env.from, m->ballot(), m->instance(), m->value());
      continue;
    }
    if (const auto* m = sim::msg_cast<PcOutcome>(env.payload)) {
      decide(m->commit() ? Decision::kCommit : Decision::kAbort);
      continue;
    }
  }

  if (begin_seen_ && !sent_2a_) send_votes_as_2a(ctx);
  maybe_start_recovery(ctx);
}

void PaxosCommitProcess::send_votes_as_2a(sim::StepContext& ctx) {
  sent_2a_ = true;
  const auto value = static_cast<uint8_t>(options_.initial_vote);
  for (ProcId a = 0; a < acceptor_count(); ++a) {
    if (a == id_) {
      acceptor_on_2a(ctx, 0, id_, value);
    } else {
      ctx.send(a, sim::make_message<Pc2a>(0, id_, value));
    }
  }
  if (options_.initial_vote == 0) {
    // An Aborted participant can decide immediately: only ballot-0 proposals
    // carry Prepared, and this instance's sole ballot-0 proposal is Aborted,
    // so no ballot can ever choose Prepared for it — the outcome is Abort.
    // It must ANNOUNCE, not just decide: deciding halts the process, and a
    // silently-halted no-voter is indistinguishable from a crashed acceptor —
    // with several of them a live quorum may not survive and the yes-voters
    // block forever. Announcing is safe for the same reason deciding is: no
    // ballot can ever choose Prepared for this instance, so no conflicting
    // Commit announcement can exist. (Mirrors the 2PC no-voter's unilateral
    // abort plus Gray–Lamport's early-abort notification.)
    announce(ctx, false);
  }
}

void PaxosCommitProcess::acceptor_on_1a(sim::StepContext& ctx, int64_t ballot) {
  if (ballot < promised_) return;  // stale leader; ignore (no NACKs needed)
  promised_ = ballot;
  deliver_1b(ctx, leader_of(ballot), ballot);
}

void PaxosCommitProcess::acceptor_on_2a(sim::StepContext& ctx, int64_t ballot,
                                        ProcId instance, uint8_t value) {
  if (ballot < promised_) return;
  promised_ = ballot;
  const auto i = static_cast<size_t>(instance);
  RCOMMIT_CHECK_MSG(i < accepted_ballot_.size(), "2a instance out of range");
  if (ballot >= accepted_ballot_[i]) {
    accepted_ballot_[i] = ballot;
    accepted_value_[i] = value;
  }
  deliver_2b(ctx, ballot, instance, value);
}

void PaxosCommitProcess::deliver_1b(sim::StepContext& ctx, ProcId to, int64_t ballot) {
  if (to == id_) {
    const Pc1b reply(ballot, accepted_ballot_, accepted_value_);
    leader_on_1b(ctx, id_, reply);
  } else {
    ctx.send(to, sim::make_message<Pc1b>(ballot, accepted_ballot_, accepted_value_));
  }
}

void PaxosCommitProcess::deliver_2b(sim::StepContext& ctx, int64_t ballot,
                                    ProcId instance, uint8_t value) {
  const ProcId to = leader_of(ballot);
  if (to == id_) {
    leader_on_2b(ctx, id_, ballot, instance, value);
  } else {
    ctx.send(to, sim::make_message<Pc2b>(ballot, instance, value));
  }
}

void PaxosCommitProcess::leader_on_1b(sim::StepContext& ctx, ProcId from,
                                      const Pc1b& reply) {
  if (reply.ballot() != active_ballot_ || proposals_sent_) return;
  const auto n = static_cast<size_t>(options_.params.n);
  RCOMMIT_CHECK_MSG(reply.accepted_ballot().size() == n &&
                        reply.accepted_value().size() == n,
                    "malformed 1b");
  if (!phase1_replies_.insert(from).second) return;
  for (size_t i = 0; i < n; ++i) {
    if (reply.accepted_ballot()[i] > fold_ballot_[i]) {
      fold_ballot_[i] = reply.accepted_ballot()[i];
      fold_value_[i] = reply.accepted_value()[i];
    }
  }
  if (static_cast<int32_t>(phase1_replies_.size()) >= f_ + 1) send_proposals(ctx);
}

void PaxosCommitProcess::send_proposals(sim::StepContext& ctx) {
  proposals_sent_ = true;
  const auto n = static_cast<size_t>(options_.params.n);
  for (size_t i = 0; i < n; ++i) {
    // The Paxos rule per instance: re-propose the highest accepted value the
    // phase-1 quorum reported, else the instance is free and Aborted is the
    // always-safe proposal (Gray–Lamport: a free instance means its
    // participant never registered Prepared with a quorum, so aborting it
    // cannot contradict an earlier outcome).
    const uint8_t value = fold_ballot_[i] >= 0 ? fold_value_[i] : 0;
    const auto instance = static_cast<ProcId>(i);
    for (ProcId a = 0; a < acceptor_count(); ++a) {
      if (a == id_) {
        acceptor_on_2a(ctx, active_ballot_, instance, value);
      } else {
        ctx.send(a, sim::make_message<Pc2a>(active_ballot_, instance, value));
      }
    }
  }
}

void PaxosCommitProcess::leader_on_2b(sim::StepContext& ctx, ProcId from,
                                      int64_t ballot, ProcId instance, uint8_t value) {
  if (ballot != active_ballot_) return;
  const auto i = static_cast<size_t>(instance);
  RCOMMIT_CHECK_MSG(i < accepts_.size(), "2b instance out of range");
  accepts_[i].insert(from);
  if (static_cast<int32_t>(accepts_[i].size()) >= f_ + 1) set_chosen(ctx, instance, value);
}

void PaxosCommitProcess::set_chosen(sim::StepContext& ctx, ProcId instance,
                                    uint8_t value) {
  const auto i = static_cast<size_t>(instance);
  if (chosen_[i] != 0xff) return;
  chosen_[i] = value;
  if (value == 0) {
    // One instance chosen Aborted decides the outcome; no need to wait for
    // the rest (Gray–Lamport's early-abort observation; also keeps the F=0
    // case's timing aligned with 2PC).
    announce(ctx, false);
    return;
  }
  const bool all_prepared =
      std::all_of(chosen_.begin(), chosen_.end(), [](uint8_t v) { return v == 1; });
  if (all_prepared) announce(ctx, true);
}

void PaxosCommitProcess::announce(sim::StepContext& ctx, bool commit) {
  if (announced_) return;
  announced_ = true;
  ctx.broadcast(sim::make_message<PcOutcome>(commit ? 1 : 0));
  decide(commit ? Decision::kCommit : Decision::kAbort);
}

void PaxosCommitProcess::start_recovery_ballot(sim::StepContext& ctx, int64_t ballot) {
  active_ballot_ = ballot;
  proposals_sent_ = false;
  phase1_replies_.clear();
  const auto n = static_cast<size_t>(options_.params.n);
  fold_ballot_.assign(n, -1);
  fold_value_.assign(n, 0);
  accepts_.assign(n, {});
  for (ProcId a = 0; a < acceptor_count(); ++a) {
    if (a == id_) {
      if (is_acceptor()) acceptor_on_1a(ctx, ballot);
    } else {
      ctx.send(a, sim::make_message<Pc1a>(ballot));
    }
  }
}

void PaxosCommitProcess::maybe_start_recovery(sim::StepContext& ctx) {
  if (decided()) return;
  // Processor p owns ballots p, p+n, p+2n, ...; ballot b may start once the
  // clock reaches timeout * (1 + b) + b². The linear term staggers recovery
  // leaders; the quadratic term is the backoff that makes the stagger GROW:
  // with a constant inter-ballot gap, message delays longer than the gap
  // pre-empt every ballot before it completes (dueling leaders, the classic
  // Paxos livelock), whereas a gap that widens by 2b+1 per ballot eventually
  // exceeds any bounded delay, leaving one leader unchallenged long enough to
  // finish — the "nonblocking" in Paxos Commit, without randomized backoff
  // (which a deterministic process has no coin for).
  const int64_t n = options_.params.n;
  const int64_t candidate = id_ + owned_rounds_started_ * n;
  if (candidate == 0) return;  // ballot 0 is the fast path, started at init
  if (ctx.clock() >= options_.timeout * (1 + candidate) + candidate * candidate) {
    ++owned_rounds_started_;
    start_recovery_ballot(ctx, candidate);
  }
}

}  // namespace rcommit::baselines
