#include "baselines/threepc.h"

#include "common/check.h"

namespace rcommit::baselines {

ThreePcProcess::ThreePcProcess(Options options) : options_(std::move(options)) {
  RCOMMIT_CHECK(options_.params.n >= 1);
  RCOMMIT_CHECK(options_.initial_vote == 0 || options_.initial_vote == 1);
  if (options_.timeout == 0) options_.timeout = 4 * options_.params.k;
}

void ThreePcProcess::on_step(sim::StepContext& ctx,
                             std::span<const sim::Envelope> delivered) {
  if (state_ == State::kStart) {
    id_ = ctx.self();
    window_start_ = ctx.clock();
    if (is_coordinator()) {
      ctx.broadcast(sim::make_message<ThreePcCanCommit>());
      votes_received_.insert(id_);
      if (options_.initial_vote != 0) ++yes_votes_;
      state_ = State::kCoordCollectVotes;
    } else {
      state_ = State::kPartAwaitCanCommit;
    }
  }

  for (const auto& env : delivered) {
    if (sim::msg_cast<ThreePcCanCommit>(env.payload) != nullptr) {
      if (state_ == State::kPartAwaitCanCommit) {
        ctx.send(0, sim::make_message<ThreePcVote>(
                        static_cast<uint8_t>(options_.initial_vote)));
        if (options_.initial_vote == 0) {
          decide(Decision::kAbort);
          state_ = State::kDone;
        } else {
          state_ = State::kPartPrepared;
          window_start_ = ctx.clock();
        }
      }
      continue;
    }
    if (const auto* vote = sim::msg_cast<ThreePcVote>(env.payload)) {
      if (state_ == State::kCoordCollectVotes &&
          votes_received_.insert(env.from).second && vote->vote() != 0) {
        ++yes_votes_;
      }
      continue;
    }
    if (sim::msg_cast<ThreePcPreCommit>(env.payload) != nullptr) {
      if (state_ == State::kPartPrepared) {
        ctx.send(0, sim::make_message<ThreePcAck>());
        state_ = State::kPartPreCommitted;
        window_start_ = ctx.clock();
      }
      continue;
    }
    if (sim::msg_cast<ThreePcAck>(env.payload) != nullptr) {
      if (state_ == State::kCoordCollectAcks) acks_received_.insert(env.from);
      continue;
    }
    if (const auto* outcome = sim::msg_cast<ThreePcOutcome>(env.payload)) {
      if (state_ != State::kDone) {
        decide(outcome->commit() ? Decision::kCommit : Decision::kAbort);
        state_ = State::kDone;
      }
      continue;
    }
  }

  const Tick elapsed = ctx.clock() - window_start_;
  switch (state_) {
    case State::kCoordCollectVotes: {
      const bool all_votes =
          static_cast<int32_t>(votes_received_.size()) >= options_.params.n;
      if (all_votes && yes_votes_ >= options_.params.n) {
        ctx.broadcast(sim::make_message<ThreePcPreCommit>());
        acks_received_.insert(id_);
        state_ = State::kCoordCollectAcks;
        window_start_ = ctx.clock();
      } else if (all_votes || elapsed >= options_.timeout) {
        ctx.broadcast(sim::make_message<ThreePcOutcome>(0));
        decide(Decision::kAbort);
        state_ = State::kDone;
      }
      break;
    }
    case State::kCoordCollectAcks: {
      const bool all_acks =
          static_cast<int32_t>(acks_received_.size()) >= options_.params.n;
      if (all_acks || elapsed >= options_.timeout) {
        // Having issued PRECOMMIT, the coordinator presses on to commit even
        // without every ack — non-acking participants are presumed crashed
        // and expected to recover to commit. (Sound under synchrony only.)
        ctx.broadcast(sim::make_message<ThreePcOutcome>(1));
        decide(Decision::kCommit);
        state_ = State::kDone;
      }
      break;
    }
    case State::kPartAwaitCanCommit:
      if (elapsed >= options_.timeout) {
        decide(Decision::kAbort);  // never voted: safe
        state_ = State::kDone;
      }
      break;
    case State::kPartPrepared:
      if (elapsed >= options_.timeout) {
        // Termination rule: prepared without PRECOMMIT => assume failure
        // before precommit, abort. Wrong when the PRECOMMIT is merely late.
        decide(Decision::kAbort);
        state_ = State::kDone;
      }
      break;
    case State::kPartPreCommitted:
      if (elapsed >= options_.timeout) {
        // Termination rule: PRECOMMIT in hand => everyone was prepared,
        // commit. Conflicts with a prepared peer's timeout-abort when timing
        // misbehaves.
        decide(Decision::kCommit);
        state_ = State::kDone;
      }
      break;
    case State::kStart:
    case State::kDone:
      break;
  }
}

}  // namespace rcommit::baselines
