// Three-phase commit baseline (Skeen's nonblocking commit [S]).
//
// 3PC removes 2PC's blocking window by inserting a PRECOMMIT phase between
// voting and committing, and pairs it with timeout-based termination rules:
// a participant that is prepared but has no PRECOMMIT aborts on timeout,
// while a participant holding a PRECOMMIT commits on timeout. Those rules
// are sound *only* under the synchronous timing assumption. A single late
// PRECOMMIT splits the participants across the abort/commit timeout rules
// and yields conflicting decisions — the failure mode the paper's model is
// designed to rule out, reproduced by experiment E7.
#pragma once

#include <optional>
#include <set>
#include <string>

#include "common/types.h"
#include "sim/message.h"
#include "sim/process.h"

namespace rcommit::baselines {

class ThreePcCanCommit final : public sim::MessageBase {
 public:
  [[nodiscard]] std::string debug_string() const override { return "3PC-CANCOMMIT"; }
};

class ThreePcVote final : public sim::MessageBase {
 public:
  explicit ThreePcVote(uint8_t vote) : vote_(vote) {}
  [[nodiscard]] uint8_t vote() const { return vote_; }
  [[nodiscard]] std::string debug_string() const override {
    return "3PC-VOTE(" + std::to_string(int(vote_)) + ")";
  }

 private:
  uint8_t vote_;
};

class ThreePcPreCommit final : public sim::MessageBase {
 public:
  [[nodiscard]] std::string debug_string() const override { return "3PC-PRECOMMIT"; }
};

class ThreePcAck final : public sim::MessageBase {
 public:
  [[nodiscard]] std::string debug_string() const override { return "3PC-ACK"; }
};

class ThreePcOutcome final : public sim::MessageBase {
 public:
  explicit ThreePcOutcome(uint8_t commit) : commit_(commit) {}
  [[nodiscard]] bool commit() const { return commit_ != 0; }
  [[nodiscard]] std::string debug_string() const override {
    return commit_ ? "3PC-DOCOMMIT" : "3PC-ABORT";
  }

 private:
  uint8_t commit_;
};

class ThreePcProcess final : public sim::Process {
 public:
  struct Options {
    SystemParams params;
    int initial_vote = 1;
    Tick timeout = 0;  ///< per-wait timeout; 0 = default to 4 * params.k
  };

  explicit ThreePcProcess(Options options);

  void on_step(sim::StepContext& ctx, std::span<const sim::Envelope> delivered) override;
  [[nodiscard]] bool decided() const override { return decision_.has_value(); }
  [[nodiscard]] Decision decision() const override { return *decision_; }
  [[nodiscard]] bool halted() const override { return decided(); }

 private:
  [[nodiscard]] bool is_coordinator() const { return id_ == kNoProc ? false : id_ == 0; }
  void decide(Decision d) { if (!decision_.has_value()) decision_ = d; }

  enum class State {
    kStart,
    kCoordCollectVotes,
    kCoordCollectAcks,
    kPartAwaitCanCommit,
    kPartPrepared,    ///< voted yes; timeout rule: abort
    kPartPreCommitted,  ///< has PRECOMMIT; timeout rule: commit
    kDone,
  };

  Options options_;
  ProcId id_ = kNoProc;
  State state_ = State::kStart;
  Tick window_start_ = 0;
  std::set<ProcId> votes_received_;
  int yes_votes_ = 0;
  std::set<ProcId> acks_received_;
  std::optional<Decision> decision_;
};

}  // namespace rcommit::baselines
