#include "metrics/report.h"

#include <ostream>

#include "common/check.h"
#include "common/json.h"
#include "common/stats.h"

namespace rcommit::metrics {

int claims_held(const BenchResult& result) {
  int held = 0;
  for (const auto& row : result.claims) {
    if (row.holds) ++held;
  }
  return held;
}

std::string to_json(const BenchResult& result) {
  json::JsonWriter w;
  w.begin_object();
  w.key("schema_version").value(static_cast<int64_t>(result.schema_version));
  w.key("experiment").value(result.experiment_id);
  w.key("bench").value(result.bench);
  w.key("title").value(result.title);
  w.key("mode").value(result.quick ? "quick" : "full");
  w.key("repeat").value(static_cast<int64_t>(result.repeat));
  w.key("seed0").value(static_cast<uint64_t>(result.seed0));
  w.key("claims");
  w.begin_array();
  for (const auto& claim : result.claims) {
    w.begin_object();
    w.key("id").value(claim.claim_id);
    w.key("paper").value(claim.paper);
    w.key("measured").value(claim.measured);
    w.key("holds").value(claim.holds);
    w.end_object();
  }
  w.end_array();
  w.key("scalars");
  w.begin_array();
  for (const auto& scalar : result.scalars) {
    w.begin_object();
    w.key("name").value(scalar.name);
    w.key("value").value(scalar.value);
    w.key("unit").value(scalar.unit);
    w.end_object();
  }
  w.end_array();
  w.key("timings");
  w.begin_array();
  for (const auto& timing : result.timings) {
    w.begin_object();
    w.key("name").value(timing.name);
    w.key("seconds").value(timing.seconds);
    w.key("repeats").value(static_cast<int64_t>(timing.repeats));
    w.key("warmups").value(static_cast<int64_t>(timing.warmups));
    w.end_object();
  }
  w.end_array();
  w.key("tables");
  w.begin_array();
  for (const auto& table : result.tables) {
    w.begin_object();
    w.key("name").value(table.name);
    w.key("text").value(table.text);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str();
}

BenchResult bench_result_from_json(const json::JsonValue& value) {
  BenchResult result;
  result.schema_version = static_cast<int>(value.at("schema_version").as_int());
  RCOMMIT_CHECK_MSG(result.schema_version == kBenchSchemaVersion,
                    "bench result schema version "
                        << result.schema_version << " != supported version "
                        << kBenchSchemaVersion
                        << " — regenerate the artifact with this tree's bench "
                           "binaries");
  result.experiment_id = value.at("experiment").as_string();
  result.bench = value.at("bench").as_string();
  result.title = value.at("title").as_string();
  result.quick = value.at("mode").as_string() == "quick";
  result.repeat = static_cast<int>(value.get_int("repeat", 1));
  result.seed0 = static_cast<uint64_t>(value.get_int("seed0", 1));
  for (const auto& claim : value.at("claims").items()) {
    result.claims.push_back(ClaimRow{claim.at("id").as_string(),
                                     claim.at("paper").as_string(),
                                     claim.at("measured").as_string(),
                                     claim.at("holds").as_bool()});
  }
  for (const auto& scalar : value.at("scalars").items()) {
    result.scalars.push_back(MeasuredScalar{scalar.at("name").as_string(),
                                            scalar.at("value").as_double(),
                                            scalar.get_string("unit", "")});
  }
  for (const auto& timing : value.at("timings").items()) {
    result.timings.push_back(
        TimingSample{timing.at("name").as_string(),
                     timing.at("seconds").as_double(),
                     static_cast<int>(timing.get_int("repeats", 1)),
                     static_cast<int>(timing.get_int("warmups", 0))});
  }
  for (const auto& table : value.at("tables").items()) {
    result.tables.push_back(
        RenderedTable{table.at("name").as_string(), table.at("text").as_string()});
  }
  return result;
}

void print_claim_report(std::ostream& os, const std::string& title,
                        const std::vector<ClaimRow>& rows) {
  os << "\n=== " << title << " ===\n";
  Table table({"claim", "paper says", "measured", "verdict"});
  int held = 0;
  for (const auto& row : rows) {
    table.row({row.claim_id, row.paper, row.measured, row.holds ? "OK" : "MISMATCH"});
    if (row.holds) ++held;
  }
  table.print(os);
  os << held << "/" << rows.size() << " claims hold\n";
}

}  // namespace rcommit::metrics
