#include "metrics/report.h"

#include <ostream>

#include "common/stats.h"

namespace rcommit::metrics {

void print_claim_report(std::ostream& os, const std::string& title,
                        const std::vector<ClaimRow>& rows) {
  os << "\n=== " << title << " ===\n";
  Table table({"claim", "paper says", "measured", "verdict"});
  int held = 0;
  for (const auto& row : rows) {
    table.row({row.claim_id, row.paper, row.measured, row.holds ? "OK" : "MISMATCH"});
    if (row.holds) ++held;
  }
  table.print(os);
  os << held << "/" << rows.size() << " claims hold\n";
}

}  // namespace rcommit::metrics
