// Per-run measurement extraction.
//
// Bridges finished runs to the quantities the paper's claims are stated in:
// stages (Lemma 8), asynchronous rounds (Theorem 10), clock ticks to decision
// (the remarks of §3.2), and message cost.
#pragma once

#include <optional>

#include "common/types.h"
#include "sim/simulator.h"

namespace rcommit::metrics {

/// The standard measurements of one run.
struct RunMeasurements {
  bool all_decided = false;
  std::optional<Decision> outcome;        ///< agreed decision (CHECKs agreement)
  int max_decision_round = 0;             ///< asynchronous rounds (0 = none decided)
  Tick max_decision_clock = 0;            ///< largest decide clock over nonfaulty
  int64_t events = 0;
  int64_t messages_sent = 0;
  int64_t late_messages = 0;
};

/// Computes the measurements; `k` is the on-time bound used for both the
/// round analysis and the lateness count. Requires the run to have a trace.
RunMeasurements measure_run(const sim::RunResult& result, Tick k);

}  // namespace rcommit::metrics
