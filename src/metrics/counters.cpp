#include "metrics/counters.h"

#include <algorithm>

#include "sim/ontime.h"
#include "sim/rounds.h"

namespace rcommit::metrics {

RunMeasurements measure_run(const sim::RunResult& result, Tick k) {
  RunMeasurements m;
  m.all_decided = result.all_nonfaulty_decided();
  m.outcome = result.agreed_decision();
  m.events = result.events;
  m.messages_sent = result.messages_sent;
  m.late_messages = sim::late_message_count(result.trace, k);

  sim::RoundAnalyzer rounds(result.trace, k);
  if (auto r = rounds.max_decision_round(); r.has_value()) m.max_decision_round = *r;

  for (size_t p = 0; p < result.trace.decide_clock.size(); ++p) {
    if (result.trace.crashed[p]) continue;
    if (const auto& c = result.trace.decide_clock[p]; c.has_value()) {
      m.max_decision_clock = std::max(m.max_decision_clock, *c);
    }
  }
  return m;
}

}  // namespace rcommit::metrics
