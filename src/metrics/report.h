// Claim-vs-measured reporting for the benchmark harness.
//
// Every bench binary prints rows through this helper so EXPERIMENTS.md can be
// assembled from uniform output: experiment id, the paper's claim, the
// measured value, and a pass/note column.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace rcommit::metrics {

struct ClaimRow {
  std::string claim_id;   ///< e.g. "C1"
  std::string paper;      ///< the paper's statement of the bound
  std::string measured;   ///< what this run of the bench observed
  bool holds = false;     ///< measured value consistent with the claim
};

/// Prints a "=== <title> ===" header, the rows, and a summary line.
void print_claim_report(std::ostream& os, const std::string& title,
                        const std::vector<ClaimRow>& rows);

}  // namespace rcommit::metrics
