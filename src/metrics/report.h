// Claim-vs-measured reporting for the benchmark harness.
//
// Every bench binary reports through this layer so EXPERIMENTS.md can be
// assembled from uniform output: experiment id, the paper's claim, the
// measured value, and a pass/note column — as a human table on stdout and,
// through BenchResult, as a machine-readable JSON artifact the regression
// gate (tools/bench_report + tools/bench_compare) consumes.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace rcommit::json {
class JsonValue;
}  // namespace rcommit::json

namespace rcommit::metrics {

/// Version of the BenchResult / BENCH_RESULTS.json schema. Bump on any
/// field rename or semantic change; tools refuse mismatched versions rather
/// than misread them. See docs/benchmarking.md for the schema.
inline constexpr int kBenchSchemaVersion = 1;

struct ClaimRow {
  std::string claim_id;   ///< e.g. "C1"
  std::string paper;      ///< the paper's statement of the bound
  std::string measured;   ///< what this run of the bench observed
  bool holds = false;     ///< measured value consistent with the claim
};

/// A named measured scalar (the per-row numbers behind a claim verdict),
/// e.g. {"worst_mean_stages", 2.25, "stages"}.
struct MeasuredScalar {
  std::string name;
  double value = 0.0;
  std::string unit;  ///< optional, e.g. "stages", "txn/s"
};

/// One wall-time measurement: mean seconds over `repeats` timed runs (after
/// `warmups` untimed ones). Wall time is the only machine-dependent part of
/// a BenchResult; everything else is a deterministic function of the seeds.
struct TimingSample {
  std::string name;
  double seconds = 0.0;
  int repeats = 1;
  int warmups = 0;
};

/// A rendered stdout table, archived verbatim so the "Measured" sections of
/// EXPERIMENTS.md can be regenerated from the JSON artifact.
struct RenderedTable {
  std::string name;
  std::string text;
};

/// Everything one bench binary measured in one invocation. Serialized to
/// bench/out/<name>.json by the harness (--json) and merged into
/// BENCH_RESULTS.json by tools/bench_report.
struct BenchResult {
  int schema_version = kBenchSchemaVersion;
  std::string experiment_id;  ///< "E1".."E14", "micro"
  std::string bench;          ///< binary name, e.g. "bench_stages"
  std::string title;          ///< one-line description
  bool quick = false;         ///< run with --quick (reduced grids)
  int repeat = 1;             ///< --repeat value used for timed sections
  uint64_t seed0 = 1;         ///< base seed all run seeds derive from
  std::vector<ClaimRow> claims;
  std::vector<MeasuredScalar> scalars;
  std::vector<TimingSample> timings;
  std::vector<RenderedTable> tables;
};

/// Number of claims with holds == true.
int claims_held(const BenchResult& result);

/// Deterministic JSON for one BenchResult (single line framing, stable key
/// order; doubles as "%.4f").
std::string to_json(const BenchResult& result);

/// Parses a BenchResult back from its JSON form. Throws CheckFailure on a
/// schema-version mismatch or missing required fields.
BenchResult bench_result_from_json(const json::JsonValue& value);

/// Prints a "=== <title> ===" header, the rows, and a summary line.
void print_claim_report(std::ostream& os, const std::string& title,
                        const std::vector<ClaimRow>& rows);

}  // namespace rcommit::metrics
