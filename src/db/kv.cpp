#include "db/kv.h"

#include "common/check.h"

namespace rcommit::db {

KvStore::KvStore(const std::filesystem::path& wal_path)
    : wal_(std::make_unique<WriteAheadLog>(wal_path)) {
  for (const auto& record : wal_->replay()) {
    switch (record.type) {
      case WalRecordType::kBegin:
        staged_[record.txn_id];  // ensure the entry exists
        break;
      case WalRecordType::kWrite:
        staged_[record.txn_id].writes.push_back({record.key, record.value});
        break;
      case WalRecordType::kPrepared:
        staged_[record.txn_id].prepared = true;
        staged_[record.txn_id].participants = decode_participant_list(record.value);
        break;
      case WalRecordType::kCommit: {
        auto it = staged_.find(record.txn_id);
        if (it != staged_.end()) {
          apply(it->second);
          staged_.erase(it);
        }
        break;
      }
      case WalRecordType::kAbort:
        staged_.erase(record.txn_id);
        break;
      case WalRecordType::kSnapshot:
        data_[record.key] = record.value;
        break;
      case WalRecordType::kBatchSeal:
        break;  // a recovery hint for RecoveryManager; carries no shard state
    }
  }
  // Unprepared leftovers died before voting: they can only abort.
  std::erase_if(staged_, [](const auto& entry) { return !entry.second.prepared; });
  // Re-acquire locks for in-doubt transactions: their outcome is pending and
  // their keys must stay protected.
  for (const auto& [txn, staged] : staged_) {
    for (const auto& write : staged.writes) {
      RCOMMIT_CHECK_MSG(locks_.try_lock(write.key, txn),
                        "conflicting in-doubt transactions in WAL");
    }
  }
}

void KvStore::apply(const Staged& staged) {
  for (const auto& write : staged.writes) data_[write.key] = write.value;
}

bool KvStore::prepare(TxnId txn, const std::vector<KvWrite>& writes,
                      const std::vector<int32_t>& participants) {
  RCOMMIT_CHECK_MSG(staged_.find(txn) == staged_.end(),
                    "transaction " << txn << " already staged");
  // Lock every key first; on any conflict, release and vote abort.
  std::vector<std::string> keys;
  keys.reserve(writes.size());
  for (const auto& write : writes) keys.push_back(write.key);
  if (!locks_.try_lock_all(keys, txn)) return false;
  try {
    wal_->append({WalRecordType::kBegin, txn, "", ""});
    for (const auto& write : writes) {
      wal_->append({WalRecordType::kWrite, txn, write.key, write.value});
    }
    wal_->append(
        {WalRecordType::kPrepared, txn, "", encode_participant_list(participants)});
  } catch (...) {
    // The PREPARED record never became durable, so recovery will drop the
    // partial transaction as an unprepared leftover. Release the locks so a
    // caller that survives the exception sees the store as if the prepare
    // had never started.
    locks_.unlock_all(txn);
    throw;
  }
  staged_[txn] = Staged{writes, participants, /*prepared=*/true};
  return true;
}

void KvStore::commit(TxnId txn) {
  auto it = staged_.find(txn);
  RCOMMIT_CHECK_MSG(it != staged_.end() && it->second.prepared,
                    "commit of unprepared transaction " << txn);
  wal_->append({WalRecordType::kCommit, txn, "", ""});
  apply(it->second);
  staged_.erase(it);
  locks_.unlock_all(txn);
}

void KvStore::abort(TxnId txn) {
  // WAL-first, like commit(): if the append throws CrashInjected the staged
  // entry must survive, or a caller that catches the exception would see the
  // transaction gone from memory while the log still says prepared — and a
  // retried abort() would silently skip the kAbort record.
  if (staged_.count(txn) > 0) {
    wal_->append({WalRecordType::kAbort, txn, "", ""});
    staged_.erase(txn);
  }
  locks_.unlock_all(txn);
}

std::optional<std::string> KvStore::get(const std::string& key) const {
  auto it = data_.find(key);
  if (it == data_.end()) return std::nullopt;
  return it->second;
}

std::vector<TxnId> KvStore::in_doubt() const {
  std::vector<TxnId> out;
  for (const auto& [txn, staged] : staged_) {
    if (staged.prepared) out.push_back(txn);
  }
  return out;
}

void KvStore::set_fault_hook(WalFaultHook* hook) {
  fault_hook_ = hook;
  wal_->set_fault_hook(hook);
}

void KvStore::wal_begin_group(const WalGroupLimits& limits) {
  group_limits_ = limits;  // remembered so checkpoint() can re-enter group mode
  wal_->begin_group(limits);
}

void KvStore::wal_commit_group() { wal_->commit_group(); }

void KvStore::wal_end_group() { wal_->end_group(); }

bool KvStore::wal_group_open() const { return wal_->group_open(); }

const WalStats& KvStore::wal_stats() const { return wal_->stats(); }

void KvStore::seal_batch(int64_t batch_id, const std::vector<TxnId>& members) {
  wal_->append({WalRecordType::kBatchSeal, batch_id, "", encode_txn_list(members)});
}

void KvStore::checkpoint() {
  namespace fs = std::filesystem;
  // A pending commit group holds records that never reached the file and the
  // rewrite below reads only memory — flush it first, and re-enter group
  // mode on the fresh log so the owner's flush points keep working. Seals
  // are dropped by the rewrite: their batches are resolved, or their members
  // re-surface per transaction (the hint costs nothing to lose).
  const bool group_was_open = wal_->group_open();
  if (group_was_open) wal_->commit_group();
  const fs::path live_path = wal_->path();
  const fs::path tmp_path = live_path.string() + ".compact";
  fs::remove(tmp_path);
  {
    WriteAheadLog fresh(tmp_path);
    fresh.set_fault_hook(fault_hook_);
    for (const auto& [key, value] : data_) {
      fresh.append({WalRecordType::kSnapshot, 0, key, value});
    }
    // Carry pending (prepared, undecided) transactions forward so recovery
    // still surfaces them as in-doubt, participant lists included.
    for (const auto& [txn, staged] : staged_) {
      fresh.append({WalRecordType::kBegin, txn, "", ""});
      for (const auto& write : staged.writes) {
        fresh.append({WalRecordType::kWrite, txn, write.key, write.value});
      }
      if (staged.prepared) {
        fresh.append({WalRecordType::kPrepared, txn, "",
                      encode_participant_list(staged.participants)});
      }
    }
  }
  // The rename is the commit point of the compaction.
  wal_.reset();  // release the append handle to the old log
  fs::rename(tmp_path, live_path);
  wal_ = std::make_unique<WriteAheadLog>(live_path);
  wal_->set_fault_hook(fault_hook_);
  if (group_was_open) wal_->begin_group(group_limits_);
}

}  // namespace rcommit::db
