#include "db/locks.h"

namespace rcommit::db {

bool LockManager::try_lock(const std::string& key, TxnId txn) {
  auto [it, inserted] = holders_.emplace(key, txn);
  if (!inserted && it->second != txn) {
    ++conflicts_;
    return false;
  }
  keys_of_[txn].insert(key);
  return true;
}

bool LockManager::try_lock_all(const std::vector<std::string>& keys, TxnId txn) {
  for (const auto& key : keys) {
    if (!try_lock(key, txn)) {
      unlock_all(txn);
      return false;
    }
  }
  return true;
}

void LockManager::unlock_all(TxnId txn) {
  auto it = keys_of_.find(txn);
  if (it == keys_of_.end()) return;
  for (const auto& key : it->second) {
    auto holder_it = holders_.find(key);
    if (holder_it != holders_.end() && holder_it->second == txn) {
      holders_.erase(holder_it);
    }
  }
  keys_of_.erase(it);
}

std::optional<TxnId> LockManager::holder(const std::string& key) const {
  auto it = holders_.find(key);
  if (it == holders_.end()) return std::nullopt;
  return it->second;
}

}  // namespace rcommit::db
