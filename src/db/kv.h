// WAL-backed key-value store with two-phase local transactions.
//
// One shard's storage engine: writes are staged under a transaction, made
// durable by a PREPARED record (the shard's commit vote), and installed or
// discarded by the global outcome. Recovery replays the WAL; transactions
// that were prepared but have no recorded outcome surface as "in doubt" —
// the state whose resolution is exactly the transaction commit problem.
#pragma once

#include <cstdint>
#include <filesystem>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "db/locks.h"
#include "db/wal.h"

namespace rcommit::db {

struct KvWrite {
  std::string key;
  std::string value;
};

class KvStore {
 public:
  /// Opens the store, replaying any existing WAL at `wal_path`.
  explicit KvStore(const std::filesystem::path& wal_path);

  /// Stages `writes` under `txn` and durably records the prepare. Returns
  /// false (voting abort) when a key is locked by another transaction; in
  /// that case nothing is staged and no locks are retained.
  ///
  /// `participants` names the full intended participant set of the
  /// transaction (shard ids, including this one); it is recorded in the
  /// PREPARED record so recovery can tell "every participant prepared" from
  /// "every participant I can see prepared". An empty list (the legacy
  /// format) records no participant information.
  bool prepare(TxnId txn, const std::vector<KvWrite>& writes,
               const std::vector<int32_t>& participants = {});

  /// Installs the staged writes of a prepared transaction.
  void commit(TxnId txn);

  /// Discards the staged writes; also legal for transactions that never
  /// prepared (making a global abort idempotent per shard).
  void abort(TxnId txn);

  [[nodiscard]] std::optional<std::string> get(const std::string& key) const;
  [[nodiscard]] size_t size() const { return data_.size(); }

  /// The full committed state, for equivalence checking and digests.
  [[nodiscard]] const std::map<std::string, std::string>& snapshot() const {
    return data_;
  }

  /// Transactions recovered from the WAL as prepared-but-undecided. The
  /// owner must resolve each with commit() or abort().
  [[nodiscard]] std::vector<TxnId> in_doubt() const;

  /// Compacts the WAL: rewrites it as a snapshot of the committed state plus
  /// the records of still-pending (prepared, undecided) transactions,
  /// atomically replacing the old log. Shrinks an append-only log that has
  /// accumulated many resolved transactions; crash-safe (the rename is the
  /// commit point — before it the old log is intact, after it the new one is
  /// complete).
  void checkpoint();

  /// Installs (or clears) the WAL fault hook; survives checkpoint()'s log
  /// replacement. Non-owning.
  void set_fault_hook(WalFaultHook* hook);

  // --- group commit ----------------------------------------------------------
  // Passthrough to the WAL's group mode (wal.h): between wal_begin_group and
  // wal_end_group, appends coalesce and hit the disk with one flush per
  // group. The owner picks the flush points — e.g. MultiShotDb flushes at
  // its pipeline phase boundaries so PREPARED records are durable before any
  // decision round and outcomes are durable before the caller observes them.

  void wal_begin_group(const WalGroupLimits& limits = {});
  void wal_commit_group();
  void wal_end_group();
  [[nodiscard]] bool wal_group_open() const;
  [[nodiscard]] const WalStats& wal_stats() const;

  /// Appends a kBatchSeal record: one decision round (seeded by `batch_id`)
  /// decided all of `members`. Recovery uses it to rerun one protocol round
  /// per batch instead of one per member; replay ignores it entirely, and
  /// checkpoint() drops seals (their batches are resolved or will re-surface
  /// per transaction — the hint costs nothing to lose).
  void seal_batch(int64_t batch_id, const std::vector<TxnId>& members);

  [[nodiscard]] const WriteAheadLog& wal() const { return *wal_; }

  /// The shard's lock table (read-only) — conflict counts, current holders.
  [[nodiscard]] const LockManager& locks() const { return locks_; }

 private:
  struct Staged {
    std::vector<KvWrite> writes;
    std::vector<int32_t> participants;
    bool prepared = false;
  };

  void apply(const Staged& staged);

  std::unique_ptr<WriteAheadLog> wal_;
  WalGroupLimits group_limits_;  ///< last wal_begin_group limits (checkpoint)
  LockManager locks_;
  std::map<std::string, std::string> data_;
  std::map<TxnId, Staged> staged_;
  WalFaultHook* fault_hook_ = nullptr;
};

}  // namespace rcommit::db
