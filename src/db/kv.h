// WAL-backed key-value store with two-phase local transactions.
//
// One shard's storage engine: writes are staged under a transaction, made
// durable by a PREPARED record (the shard's commit vote), and installed or
// discarded by the global outcome. Recovery replays the WAL; transactions
// that were prepared but have no recorded outcome surface as "in doubt" —
// the state whose resolution is exactly the transaction commit problem.
#pragma once

#include <cstdint>
#include <filesystem>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "db/locks.h"
#include "db/wal.h"

namespace rcommit::db {

struct KvWrite {
  std::string key;
  std::string value;
};

class KvStore {
 public:
  /// Opens the store, replaying any existing WAL at `wal_path`.
  explicit KvStore(const std::filesystem::path& wal_path);

  /// Stages `writes` under `txn` and durably records the prepare. Returns
  /// false (voting abort) when a key is locked by another transaction; in
  /// that case nothing is staged and no locks are retained.
  ///
  /// `participants` names the full intended participant set of the
  /// transaction (shard ids, including this one); it is recorded in the
  /// PREPARED record so recovery can tell "every participant prepared" from
  /// "every participant I can see prepared". An empty list (the legacy
  /// format) records no participant information.
  bool prepare(TxnId txn, const std::vector<KvWrite>& writes,
               const std::vector<int32_t>& participants = {});

  /// Installs the staged writes of a prepared transaction.
  void commit(TxnId txn);

  /// Discards the staged writes; also legal for transactions that never
  /// prepared (making a global abort idempotent per shard).
  void abort(TxnId txn);

  [[nodiscard]] std::optional<std::string> get(const std::string& key) const;
  [[nodiscard]] size_t size() const { return data_.size(); }

  /// The full committed state, for equivalence checking and digests.
  [[nodiscard]] const std::map<std::string, std::string>& snapshot() const {
    return data_;
  }

  /// Transactions recovered from the WAL as prepared-but-undecided. The
  /// owner must resolve each with commit() or abort().
  [[nodiscard]] std::vector<TxnId> in_doubt() const;

  /// Compacts the WAL: rewrites it as a snapshot of the committed state plus
  /// the records of still-pending (prepared, undecided) transactions,
  /// atomically replacing the old log. Shrinks an append-only log that has
  /// accumulated many resolved transactions; crash-safe (the rename is the
  /// commit point — before it the old log is intact, after it the new one is
  /// complete).
  void checkpoint();

  /// Installs (or clears) the WAL fault hook; survives checkpoint()'s log
  /// replacement. Non-owning.
  void set_fault_hook(WalFaultHook* hook);

  [[nodiscard]] const WriteAheadLog& wal() const { return *wal_; }

  /// The shard's lock table (read-only) — conflict counts, current holders.
  [[nodiscard]] const LockManager& locks() const { return locks_; }

 private:
  struct Staged {
    std::vector<KvWrite> writes;
    std::vector<int32_t> participants;
    bool prepared = false;
  };

  void apply(const Staged& staged);

  std::unique_ptr<WriteAheadLog> wal_;
  LockManager locks_;
  std::map<std::string, std::string> data_;
  std::map<TxnId, Staged> staged_;
  WalFaultHook* fault_hook_ = nullptr;
};

}  // namespace rcommit::db
