// In-doubt transaction resolution (cooperative termination).
//
// The paper's graceful-degradation guarantee (Theorem 11) is precisely what
// makes recovery possible: "instead of producing a wrong answer, the protocol
// simply fails to terminate. By not producing a wrong answer, we leave open
// the opportunity to recover" (§1). After crashes, a shard can hold prepared
// transactions with no recorded outcome. The RecoveryManager resolves them:
//
//   1. If any shard's WAL recorded COMMIT or ABORT for the transaction, that
//      outcome is adopted everywhere (decisions are unanimous under
//      Protocol 2, so one record is authoritative).
//   2. If some involved shard began but never durably prepared, it can never
//      have voted commit, so no participant can have decided commit: ABORT
//      is safe. "Involved" is judged against the participant list recorded
//      in the PREPARED records (when present): a listed participant with no
//      PREPARED record — even one with no WAL trace at all — blocks commit.
//   3. If every involved shard is prepared with no outcome anywhere (all
//      participants crashed between voting and deciding), the shards simply
//      run the commit protocol again, voting commit — each shard still holds
//      its staged writes and locks, so either outcome is applicable and all
//      shards apply the same one. The rerun executes on the deterministic
//      simulator under the on-time adversary, so recovery is a pure function
//      of (seed, WAL contents) — which is what makes crash-point sweeps
//      replayable from (seed, site) alone.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "common/types.h"
#include "db/kv.h"

namespace rcommit::db {

/// What recovery saw in the WALs for one transaction on one shard.
enum class ShardTxnStatus {
  kUnknown,     ///< no record of the transaction
  kStagedOnly,  ///< BEGIN/WRITE records but no PREPARED
  kPrepared,    ///< PREPARED, no outcome
  kCommitted,
  kAborted,
};

struct RecoveryReport {
  int64_t resolved_commit = 0;
  int64_t resolved_abort = 0;
  int64_t reran_protocol = 0;  ///< resolutions that needed a fresh protocol run

  bool operator==(const RecoveryReport&) const = default;
};

/// Every transaction's per-shard status, built from ONE WAL replay per shard
/// — the multi-shot recovery path. With millions of in-doubt instances per
/// shard, the per-transaction survey (one replay per transaction per shard)
/// is quadratic; this index is linear in total WAL bytes and each in-doubt
/// instance is then resolved from the index with its own deterministic
/// protocol rerun.
struct BatchSurvey {
  /// statuses[shard][txn]; transactions a shard never saw are absent
  /// (ShardTxnStatus::kUnknown).
  std::vector<std::map<TxnId, ShardTxnStatus>> statuses;
  /// Union of recorded PREPARED participant lists, per transaction.
  std::map<TxnId, std::vector<int32_t>> participants;
  /// Decision-batch seals (kBatchSeal): batch id -> member instance ids,
  /// merged across shards. Members of the same seal were decided by ONE
  /// protocol round seeded from the batch id, so resolve_all reruns one
  /// round per surviving seal instead of one per in-doubt member. A lost
  /// seal is harmless: the members fall back to per-transaction reruns,
  /// which reach the same decisions (commit-validity under the on-time
  /// adversary — the equivalence the multi-txn torture suite checks).
  std::map<int64_t, std::vector<TxnId>> batches;

  /// The status of `txn` on `shard` (kUnknown if unseen).
  [[nodiscard]] ShardTxnStatus status(int32_t shard, TxnId txn) const;
};

class RecoveryManager {
 public:
  struct Options {
    uint64_t seed = 1;
    Tick k = 25;
    /// Event budget for the deterministic protocol rerun (rule 3).
    int64_t max_events = 200'000;
    /// Participant id of each entry in `shards`, parallel to that vector.
    /// Empty means identity (shard i has id i) — correct for DistributedDb.
    /// RPC deployments whose shard node ids differ from vector positions
    /// must supply the mapping so recorded participant lists resolve.
    std::vector<int32_t> shard_ids = {};
  };

  /// `shards` are the recovered stores (non-owning; must outlive the call).
  RecoveryManager(std::vector<KvStore*> shards, Options options);

  /// Scans every shard's WAL for the given transaction. Keys are positions
  /// in the constructor's `shards` vector.
  [[nodiscard]] std::map<int32_t, ShardTxnStatus> survey(TxnId txn) const;

  /// One WAL replay per shard, indexing every transaction at once.
  [[nodiscard]] BatchSurvey survey_all() const;

  /// Resolves every in-doubt transaction on every shard, in ascending
  /// transaction-id order, from a single batch survey. Idempotent.
  RecoveryReport resolve_all();

 private:
  /// One transaction's classification against the pre-pass index: either a
  /// settled decision (rules 1 and 2) or "needs a protocol rerun" (rule 3)
  /// with the prepared shards that would run it.
  struct Resolution {
    Decision decision = Decision::kAbort;
    bool needs_rerun = false;
    std::vector<int32_t> prepared_shards;
  };

  /// Rules 1 and 2 against the index; flags rule-3 transactions for a rerun.
  [[nodiscard]] Resolution classify(TxnId txn, const BatchSurvey& survey) const;
  /// The rule-3 deterministic protocol rerun among `prepared_shards`, seeded
  /// by mixing `mix_id` (the transaction id, or the batch id for a sealed
  /// batch) into the recovery seed.
  [[nodiscard]] Decision rerun_decision(
      int64_t mix_id, const std::vector<int32_t>& prepared_shards) const;
  /// Applies a decision to every shard still holding `txn` in doubt.
  /// Appending an outcome record for one transaction never changes
  /// another's indexed status, so the index stays valid across the pass.
  void apply_decision(TxnId txn, Decision decision,
                      const std::vector<int32_t>& prepared_shards,
                      RecoveryReport& report);

  std::vector<KvStore*> shards_;
  Options options_;
};

}  // namespace rcommit::db
