// In-doubt transaction resolution (cooperative termination).
//
// The paper's graceful-degradation guarantee (Theorem 11) is precisely what
// makes recovery possible: "instead of producing a wrong answer, the protocol
// simply fails to terminate. By not producing a wrong answer, we leave open
// the opportunity to recover" (§1). After crashes, a shard can hold prepared
// transactions with no recorded outcome. The RecoveryManager resolves them:
//
//   1. If any shard's WAL recorded COMMIT or ABORT for the transaction, that
//      outcome is adopted everywhere (decisions are unanimous under
//      Protocol 2, so one record is authoritative).
//   2. If some involved shard began but never durably prepared, it can never
//      have voted commit, so no participant can have decided commit: ABORT
//      is safe. "Involved" is judged against the participant list recorded
//      in the PREPARED records (when present): a listed participant with no
//      PREPARED record — even one with no WAL trace at all — blocks commit.
//   3. If every involved shard is prepared with no outcome anywhere (all
//      participants crashed between voting and deciding), the shards simply
//      run the commit protocol again, voting commit — each shard still holds
//      its staged writes and locks, so either outcome is applicable and all
//      shards apply the same one. The rerun executes on the deterministic
//      simulator under the on-time adversary, so recovery is a pure function
//      of (seed, WAL contents) — which is what makes crash-point sweeps
//      replayable from (seed, site) alone.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "common/types.h"
#include "db/kv.h"

namespace rcommit::db {

/// What recovery saw in the WALs for one transaction on one shard.
enum class ShardTxnStatus {
  kUnknown,     ///< no record of the transaction
  kStagedOnly,  ///< BEGIN/WRITE records but no PREPARED
  kPrepared,    ///< PREPARED, no outcome
  kCommitted,
  kAborted,
};

struct RecoveryReport {
  int64_t resolved_commit = 0;
  int64_t resolved_abort = 0;
  int64_t reran_protocol = 0;  ///< resolutions that needed a fresh protocol run

  bool operator==(const RecoveryReport&) const = default;
};

/// Every transaction's per-shard status, built from ONE WAL replay per shard
/// — the multi-shot recovery path. With millions of in-doubt instances per
/// shard, the per-transaction survey (one replay per transaction per shard)
/// is quadratic; this index is linear in total WAL bytes and each in-doubt
/// instance is then resolved from the index with its own deterministic
/// protocol rerun.
struct BatchSurvey {
  /// statuses[shard][txn]; transactions a shard never saw are absent
  /// (ShardTxnStatus::kUnknown).
  std::vector<std::map<TxnId, ShardTxnStatus>> statuses;
  /// Union of recorded PREPARED participant lists, per transaction.
  std::map<TxnId, std::vector<int32_t>> participants;

  /// The status of `txn` on `shard` (kUnknown if unseen).
  [[nodiscard]] ShardTxnStatus status(int32_t shard, TxnId txn) const;
};

class RecoveryManager {
 public:
  struct Options {
    uint64_t seed = 1;
    Tick k = 25;
    /// Event budget for the deterministic protocol rerun (rule 3).
    int64_t max_events = 200'000;
    /// Participant id of each entry in `shards`, parallel to that vector.
    /// Empty means identity (shard i has id i) — correct for DistributedDb.
    /// RPC deployments whose shard node ids differ from vector positions
    /// must supply the mapping so recorded participant lists resolve.
    std::vector<int32_t> shard_ids = {};
  };

  /// `shards` are the recovered stores (non-owning; must outlive the call).
  RecoveryManager(std::vector<KvStore*> shards, Options options);

  /// Scans every shard's WAL for the given transaction. Keys are positions
  /// in the constructor's `shards` vector.
  [[nodiscard]] std::map<int32_t, ShardTxnStatus> survey(TxnId txn) const;

  /// One WAL replay per shard, indexing every transaction at once.
  [[nodiscard]] BatchSurvey survey_all() const;

  /// Resolves every in-doubt transaction on every shard, in ascending
  /// transaction-id order, from a single batch survey. Idempotent.
  RecoveryReport resolve_all();

 private:
  /// Decides the fate of one in-doubt transaction (against the pre-pass
  /// index) and applies it. Appending an outcome record for one transaction
  /// never changes another's indexed status, so the index stays valid
  /// across the whole resolution pass.
  void resolve(TxnId txn, const BatchSurvey& survey, RecoveryReport& report);

  std::vector<KvStore*> shards_;
  Options options_;
};

}  // namespace rcommit::db
