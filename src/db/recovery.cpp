#include "db/recovery.h"

#include <algorithm>
#include <set>

#include "adversary/basic.h"
#include "common/check.h"
#include "db/txn.h"
#include "sim/simulator.h"

namespace rcommit::db {

ShardTxnStatus BatchSurvey::status(int32_t shard, TxnId txn) const {
  const auto& shard_statuses = statuses[static_cast<size_t>(shard)];
  const auto it = shard_statuses.find(txn);
  return it == shard_statuses.end() ? ShardTxnStatus::kUnknown : it->second;
}

RecoveryManager::RecoveryManager(std::vector<KvStore*> shards, Options options)
    : shards_(std::move(shards)), options_(std::move(options)) {
  RCOMMIT_CHECK(!shards_.empty());
  for (const auto* shard : shards_) RCOMMIT_CHECK(shard != nullptr);
  RCOMMIT_CHECK_MSG(
      options_.shard_ids.empty() || options_.shard_ids.size() == shards_.size(),
      "shard_ids must be empty or parallel to the shards vector");
}

BatchSurvey RecoveryManager::survey_all() const {
  BatchSurvey survey;
  survey.statuses.resize(shards_.size());
  std::map<TxnId, std::set<int32_t>> participant_sets;
  std::map<int64_t, std::set<TxnId>> seal_sets;
  for (size_t i = 0; i < shards_.size(); ++i) {
    // Replay the shard's WAL fresh; the live KvStore only retains staged
    // state, but recovery needs the full outcome history. ONE replay per
    // shard covers every transaction — the multi-shot scan.
    WriteAheadLog wal(shards_[i]->wal().path());
    auto& statuses = survey.statuses[i];
    for (const auto& record : wal.replay()) {
      switch (record.type) {
        case WalRecordType::kBegin:
        case WalRecordType::kWrite: {
          auto [it, inserted] =
              statuses.emplace(record.txn_id, ShardTxnStatus::kStagedOnly);
          (void)it;
          (void)inserted;
          break;
        }
        case WalRecordType::kPrepared:
          statuses[record.txn_id] = ShardTxnStatus::kPrepared;
          for (int32_t id : decode_participant_list(record.value)) {
            participant_sets[record.txn_id].insert(id);
          }
          break;
        case WalRecordType::kCommit:
          statuses[record.txn_id] = ShardTxnStatus::kCommitted;
          break;
        case WalRecordType::kAbort:
          statuses[record.txn_id] = ShardTxnStatus::kAborted;
          break;
        case WalRecordType::kSnapshot:
          break;  // checkpointed committed state; carries no per-txn status
        case WalRecordType::kBatchSeal:
          // The same seal is appended to every shard its batch touched; a
          // torn group can leave it on a strict subset, so merge.
          for (TxnId member : decode_txn_list(record.value)) {
            seal_sets[record.txn_id].insert(member);
          }
          break;
      }
    }
  }
  for (const auto& [txn, ids] : participant_sets) {
    survey.participants[txn].assign(ids.begin(), ids.end());
  }
  for (const auto& [batch, members] : seal_sets) {
    survey.batches[batch].assign(members.begin(), members.end());
  }
  return survey;
}

std::map<int32_t, ShardTxnStatus> RecoveryManager::survey(TxnId txn) const {
  const BatchSurvey batch = survey_all();
  std::map<int32_t, ShardTxnStatus> statuses;
  for (size_t i = 0; i < shards_.size(); ++i) {
    statuses[static_cast<int32_t>(i)] = batch.status(static_cast<int32_t>(i), txn);
  }
  return statuses;
}

RecoveryManager::Resolution RecoveryManager::classify(
    TxnId txn, const BatchSurvey& survey) const {
  const auto participants_it = survey.participants.find(txn);
  const std::vector<int32_t> intended =
      participants_it == survey.participants.end() ? std::vector<int32_t>{}
                                                   : participants_it->second;

  bool any_commit = false;
  bool any_abort = false;
  bool any_staged_only = false;
  std::vector<int32_t> prepared_shards;
  for (size_t i = 0; i < shards_.size(); ++i) {
    const auto shard = static_cast<int32_t>(i);
    switch (survey.status(shard, txn)) {
      case ShardTxnStatus::kCommitted: any_commit = true; break;
      case ShardTxnStatus::kAborted: any_abort = true; break;
      case ShardTxnStatus::kStagedOnly: any_staged_only = true; break;
      case ShardTxnStatus::kPrepared: prepared_shards.push_back(shard); break;
      case ShardTxnStatus::kUnknown: break;
    }
  }
  // Rule 1: a recorded outcome is authoritative — decisions were unanimous.
  RCOMMIT_CHECK_MSG(!(any_commit && any_abort),
                    "WALs record conflicting outcomes for txn " << txn);

  // Rule 2 extension: a PREPARED record names the full intended participant
  // set. Any listed participant that is not itself prepared (or decided) —
  // including one that never even reached its BEGIN append — can never have
  // voted commit, so commit is impossible. Without this check, a crash
  // between the phase-1 prepares of two shards would leave the first shard
  // "all visibly prepared" and recovery could install a strict subset of the
  // transaction. Legacy records with no participant list fall back to the
  // visible-prepared-set behaviour.
  bool missing_intended_participant = false;
  for (int32_t id : intended) {
    int32_t index = id;
    if (!options_.shard_ids.empty()) {
      const auto it =
          std::find(options_.shard_ids.begin(), options_.shard_ids.end(), id);
      index = it == options_.shard_ids.end()
                  ? -1
                  : static_cast<int32_t>(it - options_.shard_ids.begin());
    }
    const ShardTxnStatus status =
        index >= 0 && index < static_cast<int32_t>(shards_.size())
            ? survey.status(index, txn)
            : ShardTxnStatus::kUnknown;
    if (status == ShardTxnStatus::kUnknown ||
        status == ShardTxnStatus::kStagedOnly) {
      missing_intended_participant = true;
    }
  }

  Resolution resolution;
  resolution.prepared_shards = std::move(prepared_shards);
  if (any_commit) {
    resolution.decision = Decision::kCommit;
  } else if (any_abort || any_staged_only || missing_intended_participant) {
    // Rule 2: an un-prepared participant can never have enabled a commit.
    resolution.decision = Decision::kAbort;
  } else {
    // Rule 3: everyone prepared, nobody decided — the caller reruns the
    // commit protocol among the prepared shards, all voting commit.
    RCOMMIT_CHECK(!resolution.prepared_shards.empty());
    resolution.needs_rerun = true;
  }
  return resolution;
}

Decision RecoveryManager::rerun_decision(
    int64_t mix_id, const std::vector<int32_t>& prepared_shards) const {
  // The rerun happens on the deterministic simulator under the on-time
  // adversary (the Theorem 9 commit-validity conditions), so the outcome —
  // commit — is a pure function of the inputs, never of wall-clock timing.
  // An unsealed instance reruns under its own (seed, txn) mix; a sealed
  // batch reruns ONCE under the (seed, batch id) mix, deciding every member
  // — the same one-round-per-batch shape the live engine used.
  if (prepared_shards.size() == 1) {
    return Decision::kCommit;  // a lone prepared shard may commit
  }
  const auto n = static_cast<int32_t>(prepared_shards.size());
  const SystemParams params{.n = n, .t = (n - 1) / 2, .k = options_.k};
  std::vector<std::unique_ptr<sim::Process>> fleet;
  for (int32_t i = 0; i < n; ++i) {
    fleet.push_back(make_commit_participant(CommitBackend::kPaperProtocol,
                                            params, /*vote=*/1, options_.k));
  }
  sim::SimConfig config;
  config.seed =
      options_.seed ^ (static_cast<uint64_t>(mix_id) * 0x9e3779b97f4a7c15ULL);
  config.max_events = options_.max_events;
  config.record_trace = false;
  sim::Simulator simulator(config, std::move(fleet),
                           adversary::make_on_time_adversary());
  const auto result = simulator.run();
  Decision decision = Decision::kAbort;
  for (const auto& d : result.decisions) {
    if (d.has_value() && *d == Decision::kCommit) decision = Decision::kCommit;
  }
  return decision;
}

void RecoveryManager::apply_decision(TxnId txn, Decision decision,
                                     const std::vector<int32_t>& prepared_shards,
                                     RecoveryReport& report) {
  // Apply to every shard still holding the transaction in doubt.
  for (int32_t shard : prepared_shards) {
    auto& store = *shards_[static_cast<size_t>(shard)];
    bool still_in_doubt = false;
    for (TxnId t : store.in_doubt()) still_in_doubt |= (t == txn);
    if (!still_in_doubt) continue;
    if (decision == Decision::kCommit) {
      store.commit(txn);
    } else {
      store.abort(txn);
    }
  }
  (decision == Decision::kCommit ? report.resolved_commit : report.resolved_abort) += 1;
}

RecoveryReport RecoveryManager::resolve_all() {
  RecoveryReport report;
  std::set<TxnId> pending;
  for (const auto* shard : shards_) {
    for (TxnId txn : shard->in_doubt()) pending.insert(txn);
  }
  if (pending.empty()) return report;
  // One WAL scan per shard indexes every instance at once; each pending
  // transaction is then resolved from the index. Resolving transaction A
  // appends only A's outcome record, so the index stays exact for B, C, ...
  const BatchSurvey survey = survey_all();

  // Classify everything first: rule-3 members of the same recorded seal
  // share ONE protocol rerun (seeded by the batch id) instead of one each.
  std::map<TxnId, Resolution> resolutions;
  for (TxnId txn : pending) resolutions.emplace(txn, classify(txn, survey));
  std::map<TxnId, int64_t> seal_of;
  for (const auto& [batch, members] : survey.batches) {
    for (TxnId member : members) seal_of[member] = batch;
  }

  // Apply in ascending transaction-id order, exactly as the unsealed path
  // always has; a sealed batch's rerun fires lazily at its first pending
  // rule-3 member and the decision is reused for the rest.
  std::map<int64_t, Decision> batch_decisions;
  for (TxnId txn : pending) {
    const Resolution& resolution = resolutions.at(txn);
    Decision decision = resolution.decision;
    if (resolution.needs_rerun) {
      const auto seal_it = seal_of.find(txn);
      if (seal_it == seal_of.end()) {
        ++report.reran_protocol;
        decision = rerun_decision(txn, resolution.prepared_shards);
      } else {
        auto cached = batch_decisions.find(seal_it->second);
        if (cached == batch_decisions.end()) {
          // One rerun for the whole batch, over the union of its pending
          // rule-3 members' prepared shards — the same participant set the
          // live batched round ran over, minus members already settled by
          // rules 1 and 2 (whose recorded outcomes stand on their own).
          std::set<int32_t> union_shards;
          for (const auto& [member, member_resolution] : resolutions) {
            if (seal_of.count(member) == 0 ||
                seal_of.at(member) != seal_it->second) {
              continue;
            }
            if (!member_resolution.needs_rerun) continue;
            union_shards.insert(member_resolution.prepared_shards.begin(),
                                member_resolution.prepared_shards.end());
          }
          ++report.reran_protocol;
          cached = batch_decisions
                       .emplace(seal_it->second,
                                rerun_decision(seal_it->second,
                                               {union_shards.begin(),
                                                union_shards.end()}))
                       .first;
        }
        decision = cached->second;
      }
    }
    apply_decision(txn, decision, resolution.prepared_shards, report);
  }
  return report;
}

}  // namespace rcommit::db
