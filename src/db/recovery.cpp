#include "db/recovery.h"

#include <set>

#include "common/check.h"
#include "protocol/commit.h"
#include "transport/node.h"

namespace rcommit::db {

RecoveryManager::RecoveryManager(std::vector<KvStore*> shards, Options options)
    : shards_(std::move(shards)), options_(options) {
  RCOMMIT_CHECK(!shards_.empty());
  for (const auto* shard : shards_) RCOMMIT_CHECK(shard != nullptr);
}

std::map<int32_t, ShardTxnStatus> RecoveryManager::survey(TxnId txn) const {
  std::map<int32_t, ShardTxnStatus> statuses;
  for (size_t i = 0; i < shards_.size(); ++i) {
    // Replay the shard's WAL fresh; the live KvStore only retains staged
    // state, but recovery needs the full outcome history.
    WriteAheadLog wal(shards_[i]->wal().path());
    ShardTxnStatus status = ShardTxnStatus::kUnknown;
    for (const auto& record : wal.replay()) {
      if (record.txn_id != txn) continue;
      switch (record.type) {
        case WalRecordType::kBegin:
        case WalRecordType::kWrite:
          if (status == ShardTxnStatus::kUnknown) status = ShardTxnStatus::kStagedOnly;
          break;
        case WalRecordType::kPrepared:
          status = ShardTxnStatus::kPrepared;
          break;
        case WalRecordType::kCommit:
          status = ShardTxnStatus::kCommitted;
          break;
        case WalRecordType::kAbort:
          status = ShardTxnStatus::kAborted;
          break;
        case WalRecordType::kSnapshot:
          break;  // checkpointed committed state; carries no per-txn status
      }
    }
    statuses[static_cast<int32_t>(i)] = status;
  }
  return statuses;
}

void RecoveryManager::resolve(TxnId txn, RecoveryReport& report) {
  const auto statuses = survey(txn);

  bool any_commit = false;
  bool any_abort = false;
  bool any_staged_only = false;
  std::vector<int32_t> prepared_shards;
  for (const auto& [shard, status] : statuses) {
    switch (status) {
      case ShardTxnStatus::kCommitted: any_commit = true; break;
      case ShardTxnStatus::kAborted: any_abort = true; break;
      case ShardTxnStatus::kStagedOnly: any_staged_only = true; break;
      case ShardTxnStatus::kPrepared: prepared_shards.push_back(shard); break;
      case ShardTxnStatus::kUnknown: break;
    }
  }
  // Rule 1: a recorded outcome is authoritative — decisions were unanimous.
  RCOMMIT_CHECK_MSG(!(any_commit && any_abort),
                    "WALs record conflicting outcomes for txn " << txn);

  Decision decision;
  if (any_commit) {
    decision = Decision::kCommit;
  } else if (any_abort || any_staged_only) {
    // Rule 2: an un-prepared participant can never have enabled a commit.
    decision = Decision::kAbort;
  } else {
    // Rule 3: everyone prepared, nobody decided — run the commit protocol
    // again among the prepared shards, all voting commit.
    RCOMMIT_CHECK(!prepared_shards.empty());
    ++report.reran_protocol;
    if (prepared_shards.size() == 1) {
      decision = Decision::kCommit;  // a lone prepared shard may commit
    } else {
      const auto n = static_cast<int32_t>(prepared_shards.size());
      const SystemParams params{.n = n, .t = (n - 1) / 2, .k = options_.k};
      std::vector<std::unique_ptr<sim::Process>> fleet;
      for (int32_t i = 0; i < n; ++i) {
        protocol::CommitProcess::Options popts;
        popts.params = params;
        popts.initial_vote = 1;
        fleet.push_back(std::make_unique<protocol::CommitProcess>(popts));
      }
      transport::InMemoryNetwork network(n, options_.seed ^ static_cast<uint64_t>(txn));
      const auto result =
          transport::run_fleet(std::move(fleet), network,
                               options_.seed + static_cast<uint64_t>(txn),
                               options_.timeout);
      decision = Decision::kAbort;
      for (const auto& d : result.decisions) {
        if (d.has_value() && *d == Decision::kCommit) decision = Decision::kCommit;
      }
    }
  }

  // Apply to every shard still holding the transaction in doubt.
  for (int32_t shard : prepared_shards) {
    auto& store = *shards_[static_cast<size_t>(shard)];
    bool still_in_doubt = false;
    for (TxnId t : store.in_doubt()) still_in_doubt |= (t == txn);
    if (!still_in_doubt) continue;
    if (decision == Decision::kCommit) {
      store.commit(txn);
    } else {
      store.abort(txn);
    }
  }
  (decision == Decision::kCommit ? report.resolved_commit : report.resolved_abort) += 1;
}

RecoveryReport RecoveryManager::resolve_all() {
  RecoveryReport report;
  std::set<TxnId> pending;
  for (const auto* shard : shards_) {
    for (TxnId txn : shard->in_doubt()) pending.insert(txn);
  }
  for (TxnId txn : pending) resolve(txn, report);
  return report;
}

}  // namespace rcommit::db
