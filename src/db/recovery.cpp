#include "db/recovery.h"

#include <algorithm>
#include <set>

#include "adversary/basic.h"
#include "common/check.h"
#include "protocol/commit.h"
#include "sim/simulator.h"

namespace rcommit::db {

RecoveryManager::RecoveryManager(std::vector<KvStore*> shards, Options options)
    : shards_(std::move(shards)), options_(std::move(options)) {
  RCOMMIT_CHECK(!shards_.empty());
  for (const auto* shard : shards_) RCOMMIT_CHECK(shard != nullptr);
  RCOMMIT_CHECK_MSG(
      options_.shard_ids.empty() || options_.shard_ids.size() == shards_.size(),
      "shard_ids must be empty or parallel to the shards vector");
}

std::map<int32_t, ShardTxnStatus> RecoveryManager::survey(TxnId txn) const {
  std::vector<int32_t> ignored;
  return survey_with_participants(txn, ignored);
}

std::map<int32_t, ShardTxnStatus> RecoveryManager::survey_with_participants(
    TxnId txn, std::vector<int32_t>& participants) const {
  std::map<int32_t, ShardTxnStatus> statuses;
  std::set<int32_t> participant_set;
  for (size_t i = 0; i < shards_.size(); ++i) {
    // Replay the shard's WAL fresh; the live KvStore only retains staged
    // state, but recovery needs the full outcome history.
    WriteAheadLog wal(shards_[i]->wal().path());
    ShardTxnStatus status = ShardTxnStatus::kUnknown;
    for (const auto& record : wal.replay()) {
      if (record.txn_id != txn) continue;
      switch (record.type) {
        case WalRecordType::kBegin:
        case WalRecordType::kWrite:
          if (status == ShardTxnStatus::kUnknown) status = ShardTxnStatus::kStagedOnly;
          break;
        case WalRecordType::kPrepared:
          status = ShardTxnStatus::kPrepared;
          for (int32_t id : decode_participant_list(record.value)) {
            participant_set.insert(id);
          }
          break;
        case WalRecordType::kCommit:
          status = ShardTxnStatus::kCommitted;
          break;
        case WalRecordType::kAbort:
          status = ShardTxnStatus::kAborted;
          break;
        case WalRecordType::kSnapshot:
          break;  // checkpointed committed state; carries no per-txn status
      }
    }
    statuses[static_cast<int32_t>(i)] = status;
  }
  participants.assign(participant_set.begin(), participant_set.end());
  return statuses;
}

void RecoveryManager::resolve(TxnId txn, RecoveryReport& report) {
  std::vector<int32_t> intended;
  const auto statuses = survey_with_participants(txn, intended);

  bool any_commit = false;
  bool any_abort = false;
  bool any_staged_only = false;
  std::vector<int32_t> prepared_shards;
  for (const auto& [shard, status] : statuses) {
    switch (status) {
      case ShardTxnStatus::kCommitted: any_commit = true; break;
      case ShardTxnStatus::kAborted: any_abort = true; break;
      case ShardTxnStatus::kStagedOnly: any_staged_only = true; break;
      case ShardTxnStatus::kPrepared: prepared_shards.push_back(shard); break;
      case ShardTxnStatus::kUnknown: break;
    }
  }
  // Rule 1: a recorded outcome is authoritative — decisions were unanimous.
  RCOMMIT_CHECK_MSG(!(any_commit && any_abort),
                    "WALs record conflicting outcomes for txn " << txn);

  // Rule 2 extension: a PREPARED record names the full intended participant
  // set. Any listed participant that is not itself prepared (or decided) —
  // including one that never even reached its BEGIN append — can never have
  // voted commit, so commit is impossible. Without this check, a crash
  // between the phase-1 prepares of two shards would leave the first shard
  // "all visibly prepared" and recovery could install a strict subset of the
  // transaction. Legacy records with no participant list fall back to the
  // visible-prepared-set behaviour.
  bool missing_intended_participant = false;
  for (int32_t id : intended) {
    int32_t index = id;
    if (!options_.shard_ids.empty()) {
      const auto it =
          std::find(options_.shard_ids.begin(), options_.shard_ids.end(), id);
      index = it == options_.shard_ids.end()
                  ? -1
                  : static_cast<int32_t>(it - options_.shard_ids.begin());
    }
    const auto status_it = statuses.find(index);
    if (status_it == statuses.end() ||
        status_it->second == ShardTxnStatus::kUnknown ||
        status_it->second == ShardTxnStatus::kStagedOnly) {
      missing_intended_participant = true;
    }
  }

  Decision decision;
  if (any_commit) {
    decision = Decision::kCommit;
  } else if (any_abort || any_staged_only || missing_intended_participant) {
    // Rule 2: an un-prepared participant can never have enabled a commit.
    decision = Decision::kAbort;
  } else {
    // Rule 3: everyone prepared, nobody decided — run the commit protocol
    // again among the prepared shards, all voting commit. The rerun happens
    // on the deterministic simulator under the on-time adversary (the
    // Theorem 9 commit-validity conditions), so the outcome — commit — is a
    // pure function of the inputs, never of wall-clock timing.
    RCOMMIT_CHECK(!prepared_shards.empty());
    ++report.reran_protocol;
    if (prepared_shards.size() == 1) {
      decision = Decision::kCommit;  // a lone prepared shard may commit
    } else {
      const auto n = static_cast<int32_t>(prepared_shards.size());
      const SystemParams params{.n = n, .t = (n - 1) / 2, .k = options_.k};
      std::vector<std::unique_ptr<sim::Process>> fleet;
      for (int32_t i = 0; i < n; ++i) {
        protocol::CommitProcess::Options popts;
        popts.params = params;
        popts.initial_vote = 1;
        fleet.push_back(std::make_unique<protocol::CommitProcess>(popts));
      }
      sim::SimConfig config;
      config.seed = options_.seed ^
                    (static_cast<uint64_t>(txn) * 0x9e3779b97f4a7c15ULL);
      config.max_events = options_.max_events;
      config.record_trace = false;
      sim::Simulator simulator(config, std::move(fleet),
                               adversary::make_on_time_adversary());
      const auto result = simulator.run();
      decision = Decision::kAbort;
      for (const auto& d : result.decisions) {
        if (d.has_value() && *d == Decision::kCommit) decision = Decision::kCommit;
      }
    }
  }

  // Apply to every shard still holding the transaction in doubt.
  for (int32_t shard : prepared_shards) {
    auto& store = *shards_[static_cast<size_t>(shard)];
    bool still_in_doubt = false;
    for (TxnId t : store.in_doubt()) still_in_doubt |= (t == txn);
    if (!still_in_doubt) continue;
    if (decision == Decision::kCommit) {
      store.commit(txn);
    } else {
      store.abort(txn);
    }
  }
  (decision == Decision::kCommit ? report.resolved_commit : report.resolved_abort) += 1;
}

RecoveryReport RecoveryManager::resolve_all() {
  RecoveryReport report;
  std::set<TxnId> pending;
  for (const auto* shard : shards_) {
    for (TxnId txn : shard->in_doubt()) pending.insert(txn);
  }
  for (TxnId txn : pending) resolve(txn, report);
  return report;
}

}  // namespace rcommit::db
