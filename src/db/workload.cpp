#include "db/workload.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace rcommit::db {

WorkloadGenerator::WorkloadGenerator(WorkloadOptions options, uint64_t seed)
    : options_(options), rng_(seed) {
  RCOMMIT_CHECK(options_.shard_count >= 1);
  RCOMMIT_CHECK(options_.keys_per_shard >= 1);
  RCOMMIT_CHECK(options_.fanout >= 1);
  RCOMMIT_CHECK(options_.writes_per_shard >= 1);
  RCOMMIT_CHECK(options_.skew >= 0.0);
  options_.fanout = std::min(options_.fanout, options_.shard_count);
}

int32_t WorkloadGenerator::draw_key() {
  // Inverse power transform: rank = N * u^(1+skew). skew = 0 is uniform;
  // growing skew concentrates mass on the low ranks (rank 0 = hottest key).
  const double u = rng_.next_real();
  const auto rank = static_cast<int32_t>(
      std::pow(u, 1.0 + options_.skew) * options_.keys_per_shard);
  return std::clamp(rank, 0, options_.keys_per_shard - 1);
}

GeneratedTxn WorkloadGenerator::next() {
  ++counter_;
  GeneratedTxn txn;
  // Choose `fanout` distinct shards, starting from a random one.
  const auto first =
      static_cast<int32_t>(rng_.next_below(static_cast<uint64_t>(options_.shard_count)));
  for (int32_t i = 0; i < options_.fanout; ++i) {
    const int32_t shard = (first + i) % options_.shard_count;
    auto& writes = txn[shard];
    for (int32_t w = 0; w < options_.writes_per_shard; ++w) {
      writes.push_back(KvWrite{"key:" + std::to_string(draw_key()),
                               "txn-" + std::to_string(counter_)});
    }
  }
  return txn;
}

}  // namespace rcommit::db
