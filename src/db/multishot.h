// Multi-shot sharded transaction engine.
//
// The single-shot `DistributedDb` commits one transaction at a time: execute
// blocks the whole database until the commit instance decides. This layer —
// in the style of Chockler & Gotsman's *Multi-Shot Distributed Transaction
// Commit* (PAPERS.md) — lets millions of transactions be in flight across
// partitioned shards without head-of-line blocking:
//
//   * Transaction ids span a 64-bit space: the originating shard in the top
//     bits, a shard-local sequence in the bottom 48. Ids are unique across
//     shards with no coordination, and every WAL record a transaction writes
//     is tagged with its instance id (the PR 4 participant-list / shard_ids
//     encoding rides along unchanged in the PREPARED record).
//   * Each shard runs a *pipeline* of commit instances keyed by that id:
//     a shard engine prepares, decides, and applies different transactions
//     independently, serialized only by the shard's own WAL appends and lock
//     table — never by another transaction's commit round-trip.
//   * Conflicts are arbitrated by the per-shard no-wait lock table
//     (db/locks): the later arrival votes abort, deterministically, and no
//     commit instance even starts for it.
//
// Two decision transports share the same instance semantics:
//
//   kSimulator        the commit protocol runs on the deterministic simulator
//                     under the on-time adversary, seeded by (seed, txn id) —
//                     the exact rerun RecoveryManager performs for an
//                     in-doubt instance, so a crashed instance recovers to
//                     the same decision a live one would have reached. This
//                     makes single-driver pipelines pure functions of
//                     (options, workload), which is what the multi-txn
//                     crash-point torture sweep replays from.
//   kThreadedNetwork  each instance runs over a fresh threaded in-memory
//                     network with real delays (DistributedDb's transport) —
//                     the configuration bench_db_multishot (E19) measures,
//                     where pipelining is the entire throughput win.
//
// Two per-transaction costs are amortizable across batches (PROTOCOL.md
// §multi-shot):
//
//   group_commit     each shard's WAL appends coalesce into commit groups
//                    with one flush (and one fault-injection site) per
//                    group; the engine flushes at its phase boundaries so
//                    durability ordering — prepares before rounds, outcomes
//                    before observation — is preserved.
//   decision_batch   one Protocol 2 round decides a whole batch of prepared
//                    transactions (unanimous-yes fast path; mixed batches
//                    split, with lock-table no-voters aborting immediately).
//                    The batch id seeds the round and is sealed into each
//                    shard's WAL (kBatchSeal) so RecoveryManager reruns one
//                    round per crashed batch too.
//
// Both default off: the defaults reproduce the PR 9 engine byte for byte.
//
// Thread model: execute() may be called from many client threads; each shard
// engine guards its store with an annotated Mutex (lock order: ascending
// shard index, one shard at a time — never two shard locks held at once).
// execute_pipelined() is the deterministic single-driver form: it stages a
// whole batch of instances before deciding any of them, which is how the
// fault-injection tooling reaches many-in-doubt-transactions-per-shard WAL
// states reproducibly.
#pragma once

#include <atomic>
#include <chrono>
#include <deque>
#include <filesystem>
#include <memory>
#include <optional>
#include <vector>

#include "common/thread_annotations.h"
#include "common/types.h"
#include "db/kv.h"
#include "db/txn.h"
#include "db/workload.h"
#include "transport/network.h"

namespace rcommit::db {

// --- the 64-bit transaction-id space -----------------------------------------

/// Bits of the shard-local sequence; the top 64-48 = 16 bits carry the
/// originating shard. ~2.8e14 transactions per shard before wraparound.
inline constexpr int kTxnSequenceBits = 48;
inline constexpr int64_t kTxnSequenceMask = (int64_t{1} << kTxnSequenceBits) - 1;

/// Composes an instance id from (originating shard, shard-local sequence).
/// Sequence 0 is reserved (it collides with legacy single-shot ids at origin
/// 0); engines allocate from 1.
[[nodiscard]] constexpr TxnId make_txn_id(int32_t origin_shard, int64_t sequence) {
  return (static_cast<int64_t>(origin_shard) << kTxnSequenceBits) |
         (sequence & kTxnSequenceMask);
}

/// The originating shard encoded in `txn`.
[[nodiscard]] constexpr int32_t txn_origin(TxnId txn) {
  return static_cast<int32_t>(txn >> kTxnSequenceBits);
}

/// The shard-local sequence number encoded in `txn`.
[[nodiscard]] constexpr int64_t txn_sequence(TxnId txn) {
  return txn & kTxnSequenceMask;
}

// --- the engine --------------------------------------------------------------

/// How a commit instance's decision round is executed.
enum class DecisionTransport {
  kSimulator,        ///< deterministic simulator, on-time adversary
  kThreadedNetwork,  ///< fresh threaded in-memory network per instance
};

/// Aggregate engine counters (monotonic; safe to read while running).
struct MultiShotStats {
  int64_t committed = 0;
  int64_t aborted = 0;
  int64_t conflict_aborts = 0;  ///< aborts decided by the lock table alone
  int64_t in_doubt = 0;         ///< instances whose decision round timed out
};

class MultiShotDb {
 public:
  struct Options {
    int32_t shard_count = 3;
    std::filesystem::path data_dir;  ///< one WAL per shard lives here
    CommitBackend backend = CommitBackend::kPaperProtocol;
    DecisionTransport decision_transport = DecisionTransport::kSimulator;
    uint64_t seed = 1;
    transport::LinkPolicy network = {};  ///< kThreadedNetwork link timing
    std::chrono::milliseconds txn_timeout{2000};
    Tick k = 25;  ///< Protocol 2's K
    /// Event budget for one kSimulator decision round.
    int64_t max_events = 200'000;
    /// Cap on simultaneous kThreadedNetwork decision rounds; 0 picks the
    /// hardware concurrency. Each round runs ~3 short-lived threads, so an
    /// uncapped 64-client fleet collapses into scheduler churn — admission
    /// control keeps throughput scaling (see bench_db_multishot, E19).
    int32_t max_concurrent_rounds = 0;
    /// Optional WAL fault hook installed on every shard's log (non-owning).
    /// Only meaningful with a single driver thread (execute_pipelined): the
    /// injector's site numbering assumes sequential appends.
    WalFaultHook* wal_fault_hook = nullptr;
    /// Group-commit WAL: each shard's appends coalesce into commit groups
    /// with ONE flush (and one fault-hook site) per group. The pipelined
    /// path flushes at its phase boundaries (prepares durable before any
    /// decision round, outcomes durable before returning); the threaded
    /// path flushes at the batched-decide leader's round boundaries. Off
    /// reproduces the PR 9 per-append flushing byte for byte.
    bool group_commit = false;
    /// Deterministic group auto-flush bounds (group_commit only).
    WalGroupLimits group_limits = {};
    /// Prepared transactions decided per Protocol 2 round. 1 = one round
    /// per transaction (the ungrouped baseline). >1 folds a batch's vote
    /// vector into one decision round over the union of involved shards:
    /// unanimous-yes batches take the fast path (one round decides all),
    /// mixed batches split — lock-table no-voters abort immediately and the
    /// yes-voters retry as their own unanimous round. The batch id (the
    /// first member's txn id) seeds the round and is sealed into each
    /// shard's WAL so recovery reruns one round per batch too.
    int32_t decision_batch = 1;
    /// How long a threaded batched-decide leader waits for the batch to
    /// fill before running the round with whatever queued (wall-clock;
    /// kThreadedNetwork only — the pipelined path batches by position).
    std::chrono::microseconds batch_collect_window{1000};
  };

  explicit MultiShotDb(Options options);

  /// Executes one transaction whose id originates at `origin_shard`.
  /// Thread-safe: concurrent callers pipeline through the shard engines.
  TxnOutcome execute(int32_t origin_shard, const GeneratedTxn& writes);

  /// Deterministic pipelined batch from one driver thread: every
  /// transaction in `batch` is staged and prepared (in order) before any
  /// decision round runs, then all instances decide and apply in order.
  /// WALs interleave the batch's records exactly as a crashed concurrent
  /// run would — many in-doubt instances per shard — but reproducibly.
  std::vector<TxnOutcome> execute_pipelined(int32_t origin_shard,
                                            const std::vector<GeneratedTxn>& batch);

  /// Reads one key from one shard (thread-safe).
  [[nodiscard]] std::optional<std::string> get(int32_t shard,
                                               const std::string& key) const;

  /// Direct shard access for tests and recovery drivers. Unsynchronized —
  /// callers must be quiescent (no execute in flight).
  [[nodiscard]] KvStore& shard(int32_t index);
  [[nodiscard]] int32_t shard_count() const { return options_.shard_count; }

  [[nodiscard]] MultiShotStats stats() const;

  /// Aggregate WAL counters across every shard (thread-safe). With group
  /// commit on, records_per_flush() is the measured amortization factor.
  [[nodiscard]] WalStats wal_stats() const;

  /// Flushes every shard's pending commit group (no-op when group_commit is
  /// off or nothing is pending). The engine never flushes from a destructor
  /// — that would model a dead process writing — so callers that reopen the
  /// WALs from disk after a clean shutdown flush here first.
  void flush_wals();

 private:
  /// One transaction's staged state between the prepare and apply phases.
  struct Instance {
    TxnId txn = 0;
    std::vector<int32_t> involved;  ///< ascending shard indices
    bool all_voted_commit = false;
  };

  /// One waiting client in the threaded batched-decide queue. Stack-owned
  /// by its execute() call; a leader fills `outcome` and flips `done` under
  /// decide_mu_.
  struct DecideWaiter {
    const Instance* instance = nullptr;
    TxnOutcome outcome;
    bool done = false;
  };

  /// Allocates the next instance id originating at `origin_shard`.
  TxnId allocate_txn_id(int32_t origin_shard);
  /// Phase 1: lock + stage + durably prepare on every involved shard.
  Instance prepare_phase(TxnId txn, const GeneratedTxn& writes);
  /// Phase 2: one commit instance's decision round (all participants voted
  /// commit; lock-table aborts never reach here).
  TxnOutcome decide_phase(const Instance& instance);
  /// One decision round over `shards` (ascending), seeded by mixing
  /// `batch_id` into the engine seed — the shared core of decide_phase and
  /// the batched paths.
  TxnOutcome run_union_round(const std::vector<int32_t>& shards, TxnId batch_id);
  /// Threaded batched decide: queue the instance, let a leader fold up to
  /// decision_batch waiters into one round, return the decided-and-applied
  /// outcome. Leadership ends before the round runs, so batched rounds stay
  /// concurrent under the admission gate.
  TxnOutcome decide_batched(const Instance& instance);
  /// Runs one leader-drained batch: flush prepares, seal, one union round,
  /// apply + flush outcomes, publish to the waiters.
  void run_batch_round(const std::vector<DecideWaiter*>& members);
  /// One threaded decision round under the admission gate: fleet over a
  /// fresh InMemoryNetwork, polled at fine granularity until every node
  /// decides or txn_timeout expires.
  std::vector<std::optional<Decision>> run_threaded_round(
      std::vector<std::unique_ptr<sim::Process>> fleet, uint64_t seed);
  /// Phase 3: apply the decision on every involved shard.
  void apply_phase(const Instance& instance, const TxnOutcome& outcome);
  /// Appends the batch seal to every shard in `shards` (buffered under
  /// group mode — a seal is a hint and never costs its own flush).
  void seal_shards(const std::vector<int32_t>& shards, TxnId batch_id,
                   const std::vector<TxnId>& members);
  /// Flushes the listed shards' pending commit groups (group_commit only).
  void flush_groups(const std::vector<int32_t>& shards);

  struct ShardEngine {
    mutable Mutex mu;
    std::unique_ptr<KvStore> store;  ///< guarded by mu while threads run
    bool group_open = false;         ///< guarded by mu, like the store
    std::atomic<int64_t> next_sequence{1};
  };

  /// Opens the shard's commit group if group_commit is on and it isn't yet
  /// (engine.mu must be held). Groups open lazily and stay open; flushes
  /// happen at the phase/round boundaries above.
  void ensure_group_open(ShardEngine& engine);

  Options options_;
  std::vector<std::unique_ptr<ShardEngine>> engines_;
  /// Admission gate for threaded decision rounds (kThreadedNetwork only).
  mutable Mutex rounds_mu_;
  CondVar rounds_cv_;
  int32_t active_rounds_ GUARDED_BY(rounds_mu_) = 0;
  /// Threaded batched-decide queue (decision_batch > 1 only).
  mutable Mutex decide_mu_;
  CondVar decide_cv_;
  std::deque<DecideWaiter*> decide_queue_ GUARDED_BY(decide_mu_);
  bool decide_leader_active_ GUARDED_BY(decide_mu_) = false;
  std::atomic<int64_t> committed_{0};
  std::atomic<int64_t> aborted_{0};
  std::atomic<int64_t> conflict_aborts_{0};
  std::atomic<int64_t> in_doubt_{0};
};

}  // namespace rcommit::db
