#include "db/multishot.h"

#include <algorithm>
#include <set>
#include <thread>

#include "adversary/basic.h"
#include "common/check.h"
#include "sim/simulator.h"
#include "transport/node.h"

namespace rcommit::db {

namespace {

/// Per-instance seed: the same (seed, txn) mix RecoveryManager uses for its
/// in-doubt rerun, so a crashed instance and a live one derive their decision
/// rounds from the same stream. A decision batch mixes its batch id — the
/// first member's txn id — through the same function, so a sealed batch's
/// recovery rerun and its live round also share a stream.
uint64_t instance_seed(uint64_t seed, TxnId txn) {
  return seed ^ (static_cast<uint64_t>(txn) * 0x9e3779b97f4a7c15ULL);
}

}  // namespace

MultiShotDb::MultiShotDb(Options options) : options_(std::move(options)) {
  RCOMMIT_CHECK(options_.shard_count >= 1);
  RCOMMIT_CHECK_MSG(options_.shard_count <= (1 << (64 - kTxnSequenceBits - 1)),
                    "shard count exceeds the txn-id origin field");
  RCOMMIT_CHECK(!options_.data_dir.empty());
  std::filesystem::create_directories(options_.data_dir);
  engines_.reserve(static_cast<size_t>(options_.shard_count));
  for (int32_t i = 0; i < options_.shard_count; ++i) {
    auto engine = std::make_unique<ShardEngine>();
    engine->store = std::make_unique<KvStore>(
        options_.data_dir / ("shard-" + std::to_string(i) + ".wal"));
    if (options_.wal_fault_hook != nullptr) {
      engine->store->set_fault_hook(options_.wal_fault_hook);
    }
    engines_.push_back(std::move(engine));
  }
}

TxnId MultiShotDb::allocate_txn_id(int32_t origin_shard) {
  RCOMMIT_CHECK(origin_shard >= 0 && origin_shard < options_.shard_count);
  // A crashed or aborted attempt burns its sequence number: ids are
  // allocate-once, never reused, so recovery can treat every id it sees in a
  // WAL as naming exactly one instance.
  const int64_t sequence =
      engines_[static_cast<size_t>(origin_shard)]->next_sequence.fetch_add(1);
  return make_txn_id(origin_shard, sequence);
}

MultiShotDb::Instance MultiShotDb::prepare_phase(TxnId txn,
                                                 const GeneratedTxn& writes) {
  RCOMMIT_CHECK(!writes.empty());
  Instance instance;
  instance.txn = txn;
  for (const auto& [shard_index, shard_writes] : writes) {
    (void)shard_writes;
    RCOMMIT_CHECK(shard_index >= 0 && shard_index < options_.shard_count);
    instance.involved.push_back(shard_index);
  }
  // Prepare in ascending shard order, one shard lock at a time. The first
  // abort vote (a lock conflict) short-circuits: the remaining shards never
  // see the transaction, which recovery's rule 2 reads as "a listed
  // participant never prepared", forcing abort — the same outcome the live
  // path applies below.
  instance.all_voted_commit = true;
  for (const int32_t shard_index : instance.involved) {
    auto& engine = *engines_[static_cast<size_t>(shard_index)];
    MutexLock lock(engine.mu);
    ensure_group_open(engine);
    if (!engine.store->prepare(txn, writes.at(shard_index), instance.involved)) {
      instance.all_voted_commit = false;
      break;
    }
  }
  return instance;
}

void MultiShotDb::ensure_group_open(ShardEngine& engine) {
  if (!options_.group_commit || engine.group_open) return;
  engine.store->wal_begin_group(options_.group_limits);
  engine.group_open = true;
}

void MultiShotDb::flush_groups(const std::vector<int32_t>& shards) {
  if (!options_.group_commit) return;
  for (const int32_t shard_index : shards) {
    auto& engine = *engines_[static_cast<size_t>(shard_index)];
    MutexLock lock(engine.mu);
    if (engine.group_open) engine.store->wal_commit_group();
  }
}

void MultiShotDb::seal_shards(const std::vector<int32_t>& shards, TxnId batch_id,
                              const std::vector<TxnId>& members) {
  for (const int32_t shard_index : shards) {
    auto& engine = *engines_[static_cast<size_t>(shard_index)];
    MutexLock lock(engine.mu);
    engine.store->seal_batch(batch_id, members);
  }
}

void MultiShotDb::flush_wals() {
  std::vector<int32_t> all;
  all.reserve(static_cast<size_t>(options_.shard_count));
  for (int32_t i = 0; i < options_.shard_count; ++i) all.push_back(i);
  flush_groups(all);
}

TxnOutcome MultiShotDb::decide_phase(const Instance& instance) {
  RCOMMIT_CHECK(instance.all_voted_commit);
  return run_union_round(instance.involved, instance.txn);
}

TxnOutcome MultiShotDb::run_union_round(const std::vector<int32_t>& shards,
                                        TxnId batch_id) {
  const auto n = static_cast<int32_t>(shards.size());
  if (n == 1) return {Decision::kCommit, true};

  const uint64_t seed = instance_seed(options_.seed, batch_id);
  const SystemParams params{.n = n, .t = (n - 1) / 2, .k = options_.k};
  std::vector<std::unique_ptr<sim::Process>> fleet;
  fleet.reserve(static_cast<size_t>(n));
  for (int32_t i = 0; i < n; ++i) {
    fleet.push_back(make_commit_participant(options_.backend, params,
                                            /*vote=*/1, options_.k));
  }

  TxnOutcome outcome;
  std::vector<std::optional<Decision>> decisions;
  if (options_.decision_transport == DecisionTransport::kSimulator) {
    sim::SimConfig config;
    config.seed = seed;
    config.max_events = options_.max_events;
    config.record_trace = false;
    sim::Simulator simulator(config, std::move(fleet),
                             adversary::make_on_time_adversary());
    const auto result = simulator.run();
    decisions = result.decisions;
  } else {
    decisions = run_threaded_round(std::move(fleet), seed);
  }

  outcome.decided = true;
  outcome.decision = Decision::kAbort;
  for (const auto& d : decisions) {
    if (!d.has_value()) outcome.decided = false;
    if (d.has_value() && *d == Decision::kCommit) outcome.decision = Decision::kCommit;
  }
  return outcome;
}

std::vector<std::optional<Decision>> MultiShotDb::run_threaded_round(
    std::vector<std::unique_ptr<sim::Process>> fleet, uint64_t seed) {
  // Admission: each round spins up ~n+1 short-lived threads (node hosts plus
  // the network's delivery thread). Running more rounds than cores turns
  // pipelining into scheduler churn, so excess clients wait here — their
  // instances are already prepared, keeping the pipeline full.
  // Enough rounds in flight to cover their network-delay sleeps even on a
  // small machine, few enough that node threads don't thrash the scheduler.
  const int32_t cap =
      options_.max_concurrent_rounds > 0
          ? options_.max_concurrent_rounds
          : std::max(8, static_cast<int32_t>(std::thread::hardware_concurrency()));
  {
    MutexLock lock(rounds_mu_);
    while (active_rounds_ >= cap) {
      rounds_cv_.wait_for(rounds_mu_, std::chrono::milliseconds(50));
    }
    ++active_rounds_;
  }

  const auto n = static_cast<int32_t>(fleet.size());
  transport::InMemoryNetwork network(n, seed, options_.network);
  const auto seeds = derive_seeds(seed ^ 0xf1ee7, n);
  std::vector<std::unique_ptr<transport::NodeHost>> hosts;
  hosts.reserve(static_cast<size_t>(n));
  for (int32_t i = 0; i < n; ++i) {
    transport::NodeHost::Options nopts;
    nopts.id = i;
    nopts.seed = seeds[static_cast<size_t>(i)];
    // Nodes wake early on message arrival, so a coarser step period costs
    // no happy-path latency — it only cuts idle-step CPU, which is what
    // bounds aggregate throughput when many rounds share few cores.
    nopts.step_period = std::chrono::microseconds(500);
    hosts.push_back(std::make_unique<transport::NodeHost>(
        nopts, std::move(fleet[static_cast<size_t>(i)]), network));
  }
  network.start();
  for (auto& host : hosts) host->start();

  // run_fleet polls at a 2ms quantum — fine for one-shot commits, but here
  // it would put a floor under every instance's latency. Poll at the node
  // hosts' own step granularity instead.
  const auto deadline = std::chrono::steady_clock::now() + options_.txn_timeout;
  bool all_decided = false;
  while (std::chrono::steady_clock::now() < deadline) {
    all_decided = true;
    for (const auto& host : hosts) all_decided = all_decided && host->decided();
    if (all_decided) break;
    std::this_thread::sleep_for(std::chrono::microseconds(250));
  }

  for (auto& host : hosts) host->request_stop();
  for (auto& host : hosts) host->join();
  network.stop();

  std::vector<std::optional<Decision>> decisions;
  decisions.reserve(static_cast<size_t>(n));
  for (const auto& host : hosts) {
    if (host->process().decided()) {
      decisions.emplace_back(host->process().decision());
    } else {
      decisions.emplace_back(std::nullopt);
    }
  }

  {
    MutexLock lock(rounds_mu_);
    --active_rounds_;
  }
  rounds_cv_.notify_one();
  return decisions;
}

void MultiShotDb::apply_phase(const Instance& instance, const TxnOutcome& outcome) {
  // An undecided instance stays in doubt: staged state and locks are
  // retained on every prepared shard for RecoveryManager to resolve.
  if (!outcome.decided) return;
  for (const int32_t shard_index : instance.involved) {
    auto& engine = *engines_[static_cast<size_t>(shard_index)];
    MutexLock lock(engine.mu);
    if (outcome.decision == Decision::kCommit) {
      engine.store->commit(instance.txn);
    } else {
      // abort() is idempotent per shard and legal for shards whose prepare
      // never ran (the short-circuited tail of a conflict abort).
      engine.store->abort(instance.txn);
    }
  }
}

TxnOutcome MultiShotDb::execute(int32_t origin_shard, const GeneratedTxn& writes) {
  const TxnId txn = allocate_txn_id(origin_shard);
  const Instance instance = prepare_phase(txn, writes);
  TxnOutcome outcome;
  if (!instance.all_voted_commit) {
    outcome = {Decision::kAbort, true};
    conflict_aborts_.fetch_add(1);
    apply_phase(instance, outcome);
    // A conflict abort's kAbort records may sit buffered under group mode;
    // the next leader or outcome flush on those shards carries them. An
    // unflushed abort is safe: nothing can resurrect it as a commit.
  } else if (options_.decision_batch > 1 && instance.involved.size() > 1) {
    // Batched decide: a leader folds up to decision_batch prepared
    // instances into ONE protocol round. The round decides, applies, and
    // flushes before the waiter is released, so the outcome this caller
    // observes is durable.
    outcome = decide_batched(instance);
  } else {
    outcome = decide_phase(instance);
    apply_phase(instance, outcome);
    if (outcome.decided) flush_groups(instance.involved);
  }
  if (!outcome.decided) {
    in_doubt_.fetch_add(1);
  } else if (outcome.decision == Decision::kCommit) {
    committed_.fetch_add(1);
  } else {
    aborted_.fetch_add(1);
  }
  return outcome;
}

TxnOutcome MultiShotDb::decide_batched(const Instance& instance) {
  DecideWaiter self;
  self.instance = &instance;
  {
    MutexLock lock(decide_mu_);
    // The batched path is threaded-only, where no fault hook is installed.
    // RCOMMIT_ANALYZE_ALLOW(A3): scheduling bookkeeping, not durable state
    decide_queue_.push_back(&self);
  }
  decide_cv_.notify_all();

  while (true) {
    std::vector<DecideWaiter*> members;
    {
      MutexLock lock(decide_mu_);
      if (self.done) return self.outcome;
      if (decide_leader_active_ || decide_queue_.empty()) {
        // Someone else is draining (possibly with us in their batch), or we
        // were drained and our round is in flight — wait for a publish.
        decide_cv_.wait_for(decide_mu_, std::chrono::milliseconds(1));
        continue;
      }
      // Become the leader: give the batch a short window to fill, then
      // drain whatever queued.
      // RCOMMIT_ANALYZE_ALLOW(A3): scheduling bookkeeping, not durable state
      decide_leader_active_ = true;
      const auto deadline =
          std::chrono::steady_clock::now() + options_.batch_collect_window;
      while (static_cast<int32_t>(decide_queue_.size()) < options_.decision_batch &&
             std::chrono::steady_clock::now() < deadline) {
        decide_cv_.wait_for(decide_mu_, options_.batch_collect_window);
      }
      const auto take = std::min(decide_queue_.size(),
                                 static_cast<size_t>(options_.decision_batch));
      members.assign(decide_queue_.begin(),
                     decide_queue_.begin() + static_cast<ptrdiff_t>(take));
      // RCOMMIT_ANALYZE_ALLOW(A3): scheduling bookkeeping, not durable state
      decide_queue_.erase(decide_queue_.begin(),
                          decide_queue_.begin() + static_cast<ptrdiff_t>(take));
      // Leadership ends BEFORE the round runs: the next leader forms its
      // batch while ours is deciding, so batching multiplies per-round
      // throughput instead of serializing rounds behind one leader.
      // RCOMMIT_ANALYZE_ALLOW(A3): scheduling bookkeeping, not durable state
      decide_leader_active_ = false;
    }
    decide_cv_.notify_all();
    run_batch_round(members);
    // If we drained ourselves, the loop exits via self.done; otherwise our
    // instance is still queued (or in another leader's flight) — keep going.
  }
}

void MultiShotDb::run_batch_round(const std::vector<DecideWaiter*>& members) {
  RCOMMIT_CHECK(!members.empty());
  std::set<int32_t> shard_set;
  std::vector<TxnId> ids;
  ids.reserve(members.size());
  for (const auto* member : members) {
    shard_set.insert(member->instance->involved.begin(),
                     member->instance->involved.end());
    ids.push_back(member->instance->txn);
  }
  const std::vector<int32_t> shards(shard_set.begin(), shard_set.end());
  const TxnId batch_id = ids.front();

  // Durability order: every member's PREPARED must be on disk before the
  // round — the same reason the pipelined path flushes at its Phase A
  // boundary. The seal rides unflushed; it is a recovery hint only.
  flush_groups(shards);
  if (members.size() > 1) seal_shards(shards, batch_id, ids);

  const TxnOutcome outcome = run_union_round(shards, batch_id);
  for (const auto* member : members) apply_phase(*member->instance, outcome);
  // Outcomes must be durable before any waiter observes them.
  if (outcome.decided) flush_groups(shards);

  {
    MutexLock lock(decide_mu_);
    for (auto* member : members) {
      member->outcome = outcome;
      member->done = true;
    }
  }
  decide_cv_.notify_all();
}

std::vector<TxnOutcome> MultiShotDb::execute_pipelined(
    int32_t origin_shard, const std::vector<GeneratedTxn>& batch) {
  // Phase A: stage + prepare every instance before deciding any. The WALs
  // interleave the whole batch's BEGIN/WRITE/PREPARED records, so a crash
  // anywhere in the pipeline leaves many instances in doubt per shard.
  std::vector<Instance> instances;
  instances.reserve(batch.size());
  for (const auto& writes : batch) {
    instances.push_back(prepare_phase(allocate_txn_id(origin_shard), writes));
  }
  // Group-commit boundary: every PREPARED must be durable before any
  // decision round runs. A crash after a round but before the prepare flush
  // would otherwise let recovery's rule 1 (an outcome record elsewhere)
  // collide with rule 2 (this shard never prepared) — an atomicity hole.
  flush_wals();

  // Phase B: decision rounds, in instance order. With decision_batch > 1,
  // consecutive instances fold their vote vector into one round: the
  // lock-table no-voters split off as immediate aborts, and the remaining
  // unanimous-yes members decide in a single union round sealed under the
  // batch id (the first yes-member's txn id). Seals stay buffered — they
  // are recovery hints, flushed with the Phase C outcomes.
  const auto chunk = static_cast<size_t>(std::max(1, options_.decision_batch));
  std::vector<TxnOutcome> outcomes(instances.size());
  for (size_t base = 0; base < instances.size(); base += chunk) {
    const size_t end = std::min(instances.size(), base + chunk);
    std::vector<size_t> yes;
    for (size_t i = base; i < end; ++i) {
      if (instances[i].all_voted_commit) {
        yes.push_back(i);
      } else {
        outcomes[i] = {Decision::kAbort, true};
        conflict_aborts_.fetch_add(1);
      }
    }
    if (yes.empty()) continue;
    if (yes.size() == 1) {
      // A singleton decides exactly like the unbatched path (same seed mix,
      // no seal) — decision_batch == 1 therefore reproduces PR 9 rounds
      // decision for decision.
      outcomes[yes.front()] = decide_phase(instances[yes.front()]);
      continue;
    }
    std::set<int32_t> shard_set;
    std::vector<TxnId> ids;
    ids.reserve(yes.size());
    for (const size_t i : yes) {
      shard_set.insert(instances[i].involved.begin(), instances[i].involved.end());
      ids.push_back(instances[i].txn);
    }
    const std::vector<int32_t> shards(shard_set.begin(), shard_set.end());
    const TxnId batch_id = ids.front();
    seal_shards(shards, batch_id, ids);
    const TxnOutcome outcome = run_union_round(shards, batch_id);
    for (const size_t i : yes) outcomes[i] = outcome;
  }

  // Phase C: apply, in instance order.
  for (size_t i = 0; i < instances.size(); ++i) {
    apply_phase(instances[i], outcomes[i]);
    if (!outcomes[i].decided) {
      in_doubt_.fetch_add(1);
    } else if (outcomes[i].decision == Decision::kCommit) {
      committed_.fetch_add(1);
    } else {
      aborted_.fetch_add(1);
    }
  }
  // Group-commit boundary: outcomes (and the seals buffered since Phase B)
  // become durable before the driver observes them.
  flush_wals();
  return outcomes;
}

std::optional<std::string> MultiShotDb::get(int32_t shard,
                                            const std::string& key) const {
  RCOMMIT_CHECK(shard >= 0 && shard < options_.shard_count);
  const auto& engine = *engines_[static_cast<size_t>(shard)];
  MutexLock lock(engine.mu);
  return engine.store->get(key);
}

KvStore& MultiShotDb::shard(int32_t index) {
  RCOMMIT_CHECK(index >= 0 && index < options_.shard_count);
  return *engines_[static_cast<size_t>(index)]->store;
}

MultiShotStats MultiShotDb::stats() const {
  MultiShotStats stats;
  stats.committed = committed_.load();
  stats.aborted = aborted_.load();
  stats.conflict_aborts = conflict_aborts_.load();
  stats.in_doubt = in_doubt_.load();
  return stats;
}

WalStats MultiShotDb::wal_stats() const {
  WalStats total;
  for (const auto& engine : engines_) {
    MutexLock lock(engine->mu);
    const WalStats& shard = engine->store->wal_stats();
    total.records_appended += shard.records_appended;
    total.flushes += shard.flushes;
    total.bytes_written += shard.bytes_written;
  }
  return total;
}

}  // namespace rcommit::db
