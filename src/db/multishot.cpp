#include "db/multishot.h"

#include <thread>

#include "adversary/basic.h"
#include "common/check.h"
#include "sim/simulator.h"
#include "transport/node.h"

namespace rcommit::db {

namespace {

/// Per-instance seed: the same (seed, txn) mix RecoveryManager uses for its
/// in-doubt rerun, so a crashed instance and a live one derive their decision
/// rounds from the same stream.
uint64_t instance_seed(uint64_t seed, TxnId txn) {
  return seed ^ (static_cast<uint64_t>(txn) * 0x9e3779b97f4a7c15ULL);
}

}  // namespace

MultiShotDb::MultiShotDb(Options options) : options_(std::move(options)) {
  RCOMMIT_CHECK(options_.shard_count >= 1);
  RCOMMIT_CHECK_MSG(options_.shard_count <= (1 << (64 - kTxnSequenceBits - 1)),
                    "shard count exceeds the txn-id origin field");
  RCOMMIT_CHECK(!options_.data_dir.empty());
  std::filesystem::create_directories(options_.data_dir);
  engines_.reserve(static_cast<size_t>(options_.shard_count));
  for (int32_t i = 0; i < options_.shard_count; ++i) {
    auto engine = std::make_unique<ShardEngine>();
    engine->store = std::make_unique<KvStore>(
        options_.data_dir / ("shard-" + std::to_string(i) + ".wal"));
    if (options_.wal_fault_hook != nullptr) {
      engine->store->set_fault_hook(options_.wal_fault_hook);
    }
    engines_.push_back(std::move(engine));
  }
}

TxnId MultiShotDb::allocate_txn_id(int32_t origin_shard) {
  RCOMMIT_CHECK(origin_shard >= 0 && origin_shard < options_.shard_count);
  // A crashed or aborted attempt burns its sequence number: ids are
  // allocate-once, never reused, so recovery can treat every id it sees in a
  // WAL as naming exactly one instance.
  const int64_t sequence =
      engines_[static_cast<size_t>(origin_shard)]->next_sequence.fetch_add(1);
  return make_txn_id(origin_shard, sequence);
}

MultiShotDb::Instance MultiShotDb::prepare_phase(TxnId txn,
                                                 const GeneratedTxn& writes) {
  RCOMMIT_CHECK(!writes.empty());
  Instance instance;
  instance.txn = txn;
  for (const auto& [shard_index, shard_writes] : writes) {
    (void)shard_writes;
    RCOMMIT_CHECK(shard_index >= 0 && shard_index < options_.shard_count);
    instance.involved.push_back(shard_index);
  }
  // Prepare in ascending shard order, one shard lock at a time. The first
  // abort vote (a lock conflict) short-circuits: the remaining shards never
  // see the transaction, which recovery's rule 2 reads as "a listed
  // participant never prepared", forcing abort — the same outcome the live
  // path applies below.
  instance.all_voted_commit = true;
  for (const int32_t shard_index : instance.involved) {
    auto& engine = *engines_[static_cast<size_t>(shard_index)];
    MutexLock lock(engine.mu);
    if (!engine.store->prepare(txn, writes.at(shard_index), instance.involved)) {
      instance.all_voted_commit = false;
      break;
    }
  }
  return instance;
}

TxnOutcome MultiShotDb::decide_phase(const Instance& instance) {
  RCOMMIT_CHECK(instance.all_voted_commit);
  const auto n = static_cast<int32_t>(instance.involved.size());
  if (n == 1) return {Decision::kCommit, true};

  const uint64_t seed = instance_seed(options_.seed, instance.txn);
  const SystemParams params{.n = n, .t = (n - 1) / 2, .k = options_.k};
  std::vector<std::unique_ptr<sim::Process>> fleet;
  fleet.reserve(static_cast<size_t>(n));
  for (int32_t i = 0; i < n; ++i) {
    fleet.push_back(make_commit_participant(options_.backend, params,
                                            /*vote=*/1, options_.k));
  }

  TxnOutcome outcome;
  std::vector<std::optional<Decision>> decisions;
  if (options_.decision_transport == DecisionTransport::kSimulator) {
    sim::SimConfig config;
    config.seed = seed;
    config.max_events = options_.max_events;
    config.record_trace = false;
    sim::Simulator simulator(config, std::move(fleet),
                             adversary::make_on_time_adversary());
    const auto result = simulator.run();
    decisions = result.decisions;
  } else {
    decisions = run_threaded_round(std::move(fleet), seed);
  }

  outcome.decided = true;
  outcome.decision = Decision::kAbort;
  for (const auto& d : decisions) {
    if (!d.has_value()) outcome.decided = false;
    if (d.has_value() && *d == Decision::kCommit) outcome.decision = Decision::kCommit;
  }
  return outcome;
}

std::vector<std::optional<Decision>> MultiShotDb::run_threaded_round(
    std::vector<std::unique_ptr<sim::Process>> fleet, uint64_t seed) {
  // Admission: each round spins up ~n+1 short-lived threads (node hosts plus
  // the network's delivery thread). Running more rounds than cores turns
  // pipelining into scheduler churn, so excess clients wait here — their
  // instances are already prepared, keeping the pipeline full.
  // Enough rounds in flight to cover their network-delay sleeps even on a
  // small machine, few enough that node threads don't thrash the scheduler.
  const int32_t cap =
      options_.max_concurrent_rounds > 0
          ? options_.max_concurrent_rounds
          : std::max(8, static_cast<int32_t>(std::thread::hardware_concurrency()));
  {
    MutexLock lock(rounds_mu_);
    while (active_rounds_ >= cap) {
      rounds_cv_.wait_for(rounds_mu_, std::chrono::milliseconds(50));
    }
    ++active_rounds_;
  }

  const auto n = static_cast<int32_t>(fleet.size());
  transport::InMemoryNetwork network(n, seed, options_.network);
  const auto seeds = derive_seeds(seed ^ 0xf1ee7, n);
  std::vector<std::unique_ptr<transport::NodeHost>> hosts;
  hosts.reserve(static_cast<size_t>(n));
  for (int32_t i = 0; i < n; ++i) {
    transport::NodeHost::Options nopts;
    nopts.id = i;
    nopts.seed = seeds[static_cast<size_t>(i)];
    // Nodes wake early on message arrival, so a coarser step period costs
    // no happy-path latency — it only cuts idle-step CPU, which is what
    // bounds aggregate throughput when many rounds share few cores.
    nopts.step_period = std::chrono::microseconds(500);
    hosts.push_back(std::make_unique<transport::NodeHost>(
        nopts, std::move(fleet[static_cast<size_t>(i)]), network));
  }
  network.start();
  for (auto& host : hosts) host->start();

  // run_fleet polls at a 2ms quantum — fine for one-shot commits, but here
  // it would put a floor under every instance's latency. Poll at the node
  // hosts' own step granularity instead.
  const auto deadline = std::chrono::steady_clock::now() + options_.txn_timeout;
  bool all_decided = false;
  while (std::chrono::steady_clock::now() < deadline) {
    all_decided = true;
    for (const auto& host : hosts) all_decided = all_decided && host->decided();
    if (all_decided) break;
    std::this_thread::sleep_for(std::chrono::microseconds(250));
  }

  for (auto& host : hosts) host->request_stop();
  for (auto& host : hosts) host->join();
  network.stop();

  std::vector<std::optional<Decision>> decisions;
  decisions.reserve(static_cast<size_t>(n));
  for (const auto& host : hosts) {
    if (host->process().decided()) {
      decisions.emplace_back(host->process().decision());
    } else {
      decisions.emplace_back(std::nullopt);
    }
  }

  {
    MutexLock lock(rounds_mu_);
    --active_rounds_;
  }
  rounds_cv_.notify_one();
  return decisions;
}

void MultiShotDb::apply_phase(const Instance& instance, const TxnOutcome& outcome) {
  // An undecided instance stays in doubt: staged state and locks are
  // retained on every prepared shard for RecoveryManager to resolve.
  if (!outcome.decided) return;
  for (const int32_t shard_index : instance.involved) {
    auto& engine = *engines_[static_cast<size_t>(shard_index)];
    MutexLock lock(engine.mu);
    if (outcome.decision == Decision::kCommit) {
      engine.store->commit(instance.txn);
    } else {
      // abort() is idempotent per shard and legal for shards whose prepare
      // never ran (the short-circuited tail of a conflict abort).
      engine.store->abort(instance.txn);
    }
  }
}

TxnOutcome MultiShotDb::execute(int32_t origin_shard, const GeneratedTxn& writes) {
  const TxnId txn = allocate_txn_id(origin_shard);
  const Instance instance = prepare_phase(txn, writes);
  TxnOutcome outcome;
  if (!instance.all_voted_commit) {
    outcome = {Decision::kAbort, true};
    conflict_aborts_.fetch_add(1);
  } else {
    outcome = decide_phase(instance);
  }
  apply_phase(instance, outcome);
  if (!outcome.decided) {
    in_doubt_.fetch_add(1);
  } else if (outcome.decision == Decision::kCommit) {
    committed_.fetch_add(1);
  } else {
    aborted_.fetch_add(1);
  }
  return outcome;
}

std::vector<TxnOutcome> MultiShotDb::execute_pipelined(
    int32_t origin_shard, const std::vector<GeneratedTxn>& batch) {
  // Phase A: stage + prepare every instance before deciding any. The WALs
  // interleave the whole batch's BEGIN/WRITE/PREPARED records, so a crash
  // anywhere in the pipeline leaves many instances in doubt per shard.
  std::vector<Instance> instances;
  instances.reserve(batch.size());
  for (const auto& writes : batch) {
    instances.push_back(prepare_phase(allocate_txn_id(origin_shard), writes));
  }
  // Phase B: decision rounds, in instance order.
  std::vector<TxnOutcome> outcomes;
  outcomes.reserve(batch.size());
  for (const auto& instance : instances) {
    if (!instance.all_voted_commit) {
      outcomes.push_back({Decision::kAbort, true});
      conflict_aborts_.fetch_add(1);
    } else {
      outcomes.push_back(decide_phase(instance));
    }
  }
  // Phase C: apply, in instance order.
  for (size_t i = 0; i < instances.size(); ++i) {
    apply_phase(instances[i], outcomes[i]);
    if (!outcomes[i].decided) {
      in_doubt_.fetch_add(1);
    } else if (outcomes[i].decision == Decision::kCommit) {
      committed_.fetch_add(1);
    } else {
      aborted_.fetch_add(1);
    }
  }
  return outcomes;
}

std::optional<std::string> MultiShotDb::get(int32_t shard,
                                            const std::string& key) const {
  RCOMMIT_CHECK(shard >= 0 && shard < options_.shard_count);
  const auto& engine = *engines_[static_cast<size_t>(shard)];
  MutexLock lock(engine.mu);
  return engine.store->get(key);
}

KvStore& MultiShotDb::shard(int32_t index) {
  RCOMMIT_CHECK(index >= 0 && index < options_.shard_count);
  return *engines_[static_cast<size_t>(index)]->store;
}

MultiShotStats MultiShotDb::stats() const {
  MultiShotStats stats;
  stats.committed = committed_.load();
  stats.aborted = aborted_.load();
  stats.conflict_aborts = conflict_aborts_.load();
  stats.in_doubt = in_doubt_.load();
  return stats;
}

}  // namespace rcommit::db
