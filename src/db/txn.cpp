#include "db/txn.h"

#include "baselines/q3pc.h"
#include "baselines/threepc.h"
#include "baselines/twopc.h"
#include "common/check.h"
#include "transport/node.h"

namespace rcommit::db {

DistributedDb::DistributedDb(Options options) : options_(std::move(options)) {
  RCOMMIT_CHECK(options_.shard_count >= 1);
  RCOMMIT_CHECK(!options_.data_dir.empty());
  std::filesystem::create_directories(options_.data_dir);
  txn_seed_ = options_.seed;
  shards_.reserve(static_cast<size_t>(options_.shard_count));
  for (int32_t i = 0; i < options_.shard_count; ++i) {
    shards_.push_back(std::make_unique<KvStore>(
        options_.data_dir / ("shard-" + std::to_string(i) + ".wal")));
    if (options_.wal_fault_hook != nullptr) {
      shards_.back()->set_fault_hook(options_.wal_fault_hook);
    }
  }
}

std::unique_ptr<sim::Process> make_commit_participant(CommitBackend backend,
                                                      const SystemParams& params,
                                                      int vote, Tick k) {
  switch (backend) {
    case CommitBackend::kPaperProtocol: {
      protocol::CommitProcess::Options popts;
      popts.params = params;
      popts.initial_vote = vote;
      return std::make_unique<protocol::CommitProcess>(popts);
    }
    case CommitBackend::kTwoPc: {
      baselines::TwoPcProcess::Options popts;
      popts.params = params;
      popts.initial_vote = vote;
      popts.policy = baselines::TwoPcTimeoutPolicy::kPresumeAbort;
      popts.timeout = 8 * k;
      return std::make_unique<baselines::TwoPcProcess>(popts);
    }
    case CommitBackend::kThreePc: {
      baselines::ThreePcProcess::Options popts;
      popts.params = params;
      popts.initial_vote = vote;
      popts.timeout = 8 * k;
      return std::make_unique<baselines::ThreePcProcess>(popts);
    }
    case CommitBackend::kQ3pc: {
      baselines::Q3pcProcess::Options popts;
      popts.params = params;
      popts.initial_vote = vote;
      popts.timeout = 8 * k;
      return std::make_unique<baselines::Q3pcProcess>(popts);
    }
  }
  RCOMMIT_CHECK_MSG(false, "unknown commit backend");
  return nullptr;
}

std::unique_ptr<sim::Process> DistributedDb::make_participant(int32_t index, int32_t n,
                                                              int vote) const {
  (void)index;
  const SystemParams params{.n = n, .t = (n - 1) / 2, .k = options_.k};
  return make_commit_participant(options_.backend, params, vote, options_.k);
}

TxnOutcome DistributedDb::execute(
    const std::map<int32_t, std::vector<KvWrite>>& writes_by_shard) {
  RCOMMIT_CHECK(!writes_by_shard.empty());
  // A crashed attempt deliberately burns its txn id and seed draw: a retry
  // after CrashInjected must run under a fresh id, never reuse the old one.
  // RCOMMIT_ANALYZE_ALLOW(A3): id burn is intentional; retries need a fresh txn id
  const TxnId txn = next_txn_++;
  // RCOMMIT_ANALYZE_ALLOW(A3): seed advance is intentional; paired with the id burn
  txn_seed_ = txn_seed_ * 6364136223846793005ULL + 1442695040888963407ULL;

  // Phase 1: every involved shard stages + durably prepares (its vote). The
  // PREPARED record names the full intended participant set, so recovery can
  // detect a crash that struck between two shards' prepares (the first shard
  // must not commit a transaction whose other participants never voted).
  std::vector<int32_t> involved;
  for (const auto& [shard_index, writes] : writes_by_shard) {
    (void)writes;
    RCOMMIT_CHECK(shard_index >= 0 && shard_index < options_.shard_count);
    involved.push_back(shard_index);
  }
  std::vector<int> votes;
  for (const auto& [shard_index, writes] : writes_by_shard) {
    votes.push_back(
        shards_[static_cast<size_t>(shard_index)]->prepare(txn, writes, involved)
            ? 1
            : 0);
  }

  // Single-shard transactions need no distributed agreement.
  if (involved.size() == 1) {
    auto& store = *shards_[static_cast<size_t>(involved.front())];
    if (votes.front() == 1) {
      store.commit(txn);
      return {Decision::kCommit, true};
    }
    store.abort(txn);
    return {Decision::kAbort, true};
  }

  // Phase 2: run the commit protocol among the involved shards over a fresh
  // threaded network. Participant i speaks for involved[i]; participant 0 is
  // the protocol's coordinator.
  const auto n = static_cast<int32_t>(involved.size());
  std::vector<std::unique_ptr<sim::Process>> fleet;
  fleet.reserve(static_cast<size_t>(n));
  for (int32_t i = 0; i < n; ++i) {
    fleet.push_back(make_participant(i, n, votes[static_cast<size_t>(i)]));
  }
  transport::InMemoryNetwork network(n, txn_seed_, options_.network);
  const auto result = transport::run_fleet(std::move(fleet), network, txn_seed_ ^ 0xf1ee7,
                                           options_.txn_timeout);

  // Phase 3: apply. With Protocol 2 all deciders agree (Theorem 9); baseline
  // backends can disagree under bad timing, in which case each shard honours
  // its own participant's decision — surfacing the inconsistency to the
  // caller is the point of the comparison. Undecided participants leave the
  // transaction in doubt (locks held) and we report it.
  TxnOutcome outcome;
  outcome.decided = result.all_decided;
  Decision global = Decision::kAbort;
  for (const auto& d : result.decisions) {
    if (d.has_value() && *d == Decision::kCommit) global = Decision::kCommit;
  }
  // If anyone decided abort while another committed, prefer reporting commit
  // conflicts via per-shard application below; the reported decision is the
  // majority-free "any commit" view.
  outcome.decision = global;

  for (int32_t i = 0; i < n; ++i) {
    auto& store = *shards_[static_cast<size_t>(involved[static_cast<size_t>(i)])];
    const auto& d = result.decisions[static_cast<size_t>(i)];
    if (!d.has_value()) continue;  // in doubt: prepared state + locks retained
    if (*d == Decision::kCommit) {
      // A participant can only decide commit when every shard voted 1 under
      // Protocol 2; baselines may commit wrongly — apply regardless and let
      // the caller observe the divergence.
      store.commit(txn);
    } else {
      store.abort(txn);
    }
  }
  return outcome;
}

std::optional<std::string> DistributedDb::get(int32_t shard,
                                              const std::string& key) const {
  RCOMMIT_CHECK(shard >= 0 && shard < options_.shard_count);
  return shards_[static_cast<size_t>(shard)]->get(key);
}

KvStore& DistributedDb::shard(int32_t index) {
  RCOMMIT_CHECK(index >= 0 && index < options_.shard_count);
  return *shards_[static_cast<size_t>(index)];
}

}  // namespace rcommit::db
