// Message-driven shard service and transactional client.
//
// The fully distributed deployment of the database substrate: shard servers
// and clients share nothing but the network. A client sends each involved
// shard a PrepareRequest naming the whole participant group; every shard
// votes by preparing locally and then joins a per-transaction *commit
// session* — an embedded Protocol 2 instance whose messages are tunnelled in
// SessionMsg frames between the shard servers. When a shard's session
// decides, the shard applies the outcome to its store and notifies the
// client. Everything, including the randomized agreement rounds, crosses the
// wire.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "db/kv.h"
#include "protocol/commit.h"
#include "sim/message.h"
#include "transport/network.h"

namespace rcommit::db {

/// Registers the db RPC payloads with the process-wide WireRegistry.
/// Idempotent; called automatically by ShardServer and DbTxnClient.
void register_db_wire_types();

// --- RPC payloads ------------------------------------------------------------

/// Client -> shard: stage these writes under `txn` and join the commit
/// session whose participants (shard node ids, in rank order) are listed.
class PrepareRequest final : public sim::MessageBase {
 public:
  PrepareRequest(TxnId txn, ProcId client, std::vector<ProcId> participants,
                 std::vector<KvWrite> writes)
      : txn_(txn),
        client_(client),
        participants_(std::move(participants)),
        writes_(std::move(writes)) {}

  [[nodiscard]] TxnId txn() const { return txn_; }
  [[nodiscard]] ProcId client() const { return client_; }
  [[nodiscard]] const std::vector<ProcId>& participants() const { return participants_; }
  [[nodiscard]] const std::vector<KvWrite>& writes() const { return writes_; }
  [[nodiscard]] std::string debug_string() const override;

 private:
  TxnId txn_;
  ProcId client_;
  std::vector<ProcId> participants_;
  std::vector<KvWrite> writes_;
};

/// Shard -> shard: one commit-protocol payload of transaction `txn`,
/// tunnelled between session ranks.
class SessionMsg final : public sim::MessageBase {
 public:
  SessionMsg(TxnId txn, int32_t from_rank, std::vector<uint8_t> inner)
      : txn_(txn), from_rank_(from_rank), inner_(std::move(inner)) {}

  [[nodiscard]] TxnId txn() const { return txn_; }
  [[nodiscard]] int32_t from_rank() const { return from_rank_; }
  /// Wire-encoded inner protocol payload.
  [[nodiscard]] const std::vector<uint8_t>& inner() const { return inner_; }
  [[nodiscard]] std::string debug_string() const override;

 private:
  TxnId txn_;
  int32_t from_rank_;
  std::vector<uint8_t> inner_;
};

/// Shard -> client: this shard's transaction outcome.
class TxnOutcomeMsg final : public sim::MessageBase {
 public:
  TxnOutcomeMsg(TxnId txn, uint8_t commit) : txn_(txn), commit_(commit) {}

  [[nodiscard]] TxnId txn() const { return txn_; }
  [[nodiscard]] bool commit() const { return commit_ != 0; }
  [[nodiscard]] std::string debug_string() const override;

 private:
  TxnId txn_;
  uint8_t commit_;
};

/// Client -> shard: read one key.
class GetRequest final : public sim::MessageBase {
 public:
  GetRequest(int64_t request_id, std::string key)
      : request_id_(request_id), key_(std::move(key)) {}

  [[nodiscard]] int64_t request_id() const { return request_id_; }
  [[nodiscard]] const std::string& key() const { return key_; }
  [[nodiscard]] std::string debug_string() const override;

 private:
  int64_t request_id_;
  std::string key_;
};

/// Shard -> client: the read result.
class GetResponse final : public sim::MessageBase {
 public:
  GetResponse(int64_t request_id, bool found, std::string value)
      : request_id_(request_id), found_(found), value_(std::move(value)) {}

  [[nodiscard]] int64_t request_id() const { return request_id_; }
  [[nodiscard]] bool found() const { return found_; }
  [[nodiscard]] const std::string& value() const { return value_; }
  [[nodiscard]] std::string debug_string() const override;

 private:
  int64_t request_id_;
  bool found_;
  std::string value_;
};

// --- shard server --------------------------------------------------------------

class ShardServer {
 public:
  struct Options {
    ProcId node_id = kNoProc;  ///< this shard's address on the network
    uint64_t seed = 1;
    Tick k = 25;  ///< Protocol 2's K, in session steps
    std::chrono::microseconds step_period{200};
  };

  ShardServer(Options options, KvStore& store, transport::Network& network);
  ~ShardServer();

  ShardServer(const ShardServer&) = delete;
  ShardServer& operator=(const ShardServer&) = delete;

  void start();
  void stop();

  [[nodiscard]] int64_t sessions_completed() const { return sessions_completed_.load(); }

 private:
  /// One in-flight transaction's commit-protocol instance.
  struct Session {
    TxnId txn = 0;
    ProcId client = kNoProc;
    std::vector<ProcId> participants;  ///< node ids by rank
    int32_t my_rank = -1;
    std::unique_ptr<protocol::CommitProcess> process;
    std::unique_ptr<RandomTape> tape;
    Tick clock = 0;
    std::vector<sim::Envelope> pending;
    bool outcome_applied = false;
  };

  void loop();
  void handle_frame(const transport::WireFrame& frame);
  void open_session(const PrepareRequest& request);
  void step_sessions();
  void finalize(Session& session);

  // Concurrency model: everything below `thread_` is owned by the server
  // thread alone (loop() and its callees) — the only cross-thread traffic is
  // the two atomics, so there is no mutex capability to annotate here; see
  // src/common/thread_annotations.h for the layers that have one.
  Options options_;
  KvStore& store_;
  transport::Network& network_;
  std::thread thread_;
  std::atomic<bool> stop_requested_{false};
  std::atomic<int64_t> sessions_completed_{0};
  bool running_ = false;

  std::map<TxnId, Session> sessions_;
  /// Session messages that arrived before their PrepareRequest.
  std::map<TxnId, std::vector<sim::Envelope>> early_;
  /// Transactions whose sessions have finished; stray messages are dropped.
  std::set<TxnId> finished_;
};

// --- client ---------------------------------------------------------------------

class DbTxnClient {
 public:
  /// `node_id` is the client's own address on the network.
  DbTxnClient(ProcId node_id, transport::Network& network);

  /// Runs one distributed transaction; returns the outcome, or nullopt if
  /// not every shard reported within the timeout (in doubt).
  std::optional<Decision> execute(TxnId txn,
                                  const std::map<ProcId, std::vector<KvWrite>>& writes,
                                  std::chrono::milliseconds timeout);

  /// Reads a key from a shard; nullopt on timeout or missing key.
  std::optional<std::string> get(ProcId shard, const std::string& key,
                                 std::chrono::milliseconds timeout);

 private:
  ProcId node_id_;
  transport::Network& network_;
  int64_t next_request_ = 1;
};

}  // namespace rcommit::db
