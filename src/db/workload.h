// Transaction workload generation.
//
// Synthetic workloads for the database experiments: configurable shard
// fan-out per transaction and a Zipf-like skew over keys so that contention
// (lock conflicts, hence abort votes) can be dialled from none to severe.
// The paper has no workload of its own — its motivation is the qualitative
// "install at all or none" guarantee — so these parameters are chosen to
// exercise the commit protocol's vote paths: skew drives prepare failures,
// fan-out drives participant-set sizes.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "db/kv.h"

namespace rcommit::db {

struct WorkloadOptions {
  int32_t shard_count = 5;
  int32_t keys_per_shard = 100;
  /// Shards touched per transaction (clamped to shard_count).
  int32_t fanout = 2;
  /// Writes per touched shard.
  int32_t writes_per_shard = 2;
  /// Zipf-ish skew exponent: 0 = uniform keys, larger = hotter hot keys.
  double skew = 0.0;
};

/// One generated transaction: writes grouped by shard index.
using GeneratedTxn = std::map<int32_t, std::vector<KvWrite>>;

class WorkloadGenerator {
 public:
  WorkloadGenerator(WorkloadOptions options, uint64_t seed);

  /// Draws the next transaction.
  GeneratedTxn next();

 private:
  /// Key index draw with approximate Zipf(skew) distribution via inverse
  /// power transform — adequate for contention control, not for modelling.
  int32_t draw_key();

  WorkloadOptions options_;
  RandomTape rng_;
  int64_t counter_ = 0;
};

}  // namespace rcommit::db
