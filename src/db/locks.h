// Per-key exclusive lock manager (strict two-phase locking, no-wait).
//
// Conflicting lock requests fail immediately rather than queueing — a shard
// whose prepare cannot lock its keys votes abort, which exercises the commit
// protocol's abort-validity path instead of hiding the conflict behind a
// wait queue.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace rcommit::db {

using TxnId = int64_t;

class LockManager {
 public:
  /// Acquires an exclusive lock on `key` for `txn`. Re-acquiring a lock the
  /// transaction already holds succeeds. Returns false if another
  /// transaction holds it (no-wait policy).
  bool try_lock(const std::string& key, TxnId txn);

  /// All-or-nothing acquisition of every key in `writes` for `txn`: on the
  /// first conflict, every lock taken by this call (and any the transaction
  /// already held) is released and false is returned. This is the
  /// deterministic abort-on-conflict primitive the multi-shot engine builds
  /// on — which transaction loses depends only on arrival order at this
  /// shard, never on timing races inside the acquisition itself.
  bool try_lock_all(const std::vector<std::string>& keys, TxnId txn);

  /// Releases every lock held by `txn` (end of its strict-2PL lifetime).
  void unlock_all(TxnId txn);

  /// Current holder of `key`, if locked.
  [[nodiscard]] std::optional<TxnId> holder(const std::string& key) const;

  /// Number of keys currently locked.
  [[nodiscard]] size_t locked_count() const { return holders_.size(); }

  /// try_lock / try_lock_all requests refused because another transaction
  /// held a key — the shard's conflict-abort pressure gauge.
  [[nodiscard]] int64_t conflicts() const { return conflicts_; }

 private:
  std::unordered_map<std::string, TxnId> holders_;
  std::unordered_map<TxnId, std::unordered_set<std::string>> keys_of_;
  int64_t conflicts_ = 0;
};

}  // namespace rcommit::db
