// Per-key exclusive lock manager (strict two-phase locking, no-wait).
//
// Conflicting lock requests fail immediately rather than queueing — a shard
// whose prepare cannot lock its keys votes abort, which exercises the commit
// protocol's abort-validity path instead of hiding the conflict behind a
// wait queue.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>

namespace rcommit::db {

using TxnId = int64_t;

class LockManager {
 public:
  /// Acquires an exclusive lock on `key` for `txn`. Re-acquiring a lock the
  /// transaction already holds succeeds. Returns false if another
  /// transaction holds it (no-wait policy).
  bool try_lock(const std::string& key, TxnId txn);

  /// Releases every lock held by `txn` (end of its strict-2PL lifetime).
  void unlock_all(TxnId txn);

  /// Current holder of `key`, if locked.
  [[nodiscard]] std::optional<TxnId> holder(const std::string& key) const;

  /// Number of keys currently locked.
  [[nodiscard]] size_t locked_count() const { return holders_.size(); }

 private:
  std::unordered_map<std::string, TxnId> holders_;
  std::unordered_map<TxnId, std::unordered_set<std::string>> keys_of_;
};

}  // namespace rcommit::db
