#include "db/rpc.h"

#include <sstream>

#include "common/check.h"
#include "transport/wire.h"

namespace rcommit::db {

using transport::WireFrame;
using transport::WireRegistry;

// --- debug strings -------------------------------------------------------------

std::string PrepareRequest::debug_string() const {
  std::ostringstream os;
  os << "PREPARE(txn=" << txn_ << ", " << writes_.size() << " writes, "
     << participants_.size() << " participants)";
  return os.str();
}

std::string SessionMsg::debug_string() const {
  std::ostringstream os;
  os << "SESSION(txn=" << txn_ << ", rank=" << from_rank_ << ", " << inner_.size()
     << "B)";
  return os.str();
}

std::string TxnOutcomeMsg::debug_string() const {
  std::ostringstream os;
  os << "OUTCOME(txn=" << txn_ << ", " << (commit_ ? "COMMIT" : "ABORT") << ")";
  return os.str();
}

std::string GetRequest::debug_string() const { return "GET(" + key_ + ")"; }

std::string GetResponse::debug_string() const {
  return found_ ? ("VALUE(" + value_ + ")") : "NOT_FOUND";
}

// --- wire registration -----------------------------------------------------------

namespace {

enum DbWireTag : uint16_t {
  kPrepareRequest = 100,
  kSessionMsg = 101,
  kTxnOutcome = 102,
  kGetRequest = 103,
  kGetResponse = 104,
};

template <typename T>
const T& as(const sim::MessageBase& payload) {
  const auto* typed = dynamic_cast<const T*>(&payload);
  RCOMMIT_CHECK_MSG(typed != nullptr, "db wire encoder given wrong payload type");
  return *typed;
}

void do_register() {
  WireRegistry::extend(
      kPrepareRequest, typeid(PrepareRequest),
      [](BufWriter& w, const sim::MessageBase& m) {
        const auto& req = as<PrepareRequest>(m);
        w.svarint(req.txn());
        w.svarint(req.client());
        w.varint(req.participants().size());
        for (ProcId p : req.participants()) w.svarint(p);
        w.varint(req.writes().size());
        for (const auto& write : req.writes()) {
          w.str(write.key);
          w.str(write.value);
        }
      },
      [](BufReader& r) -> sim::MessageRef {
        const auto txn = r.svarint();
        const auto client = static_cast<ProcId>(r.svarint());
        std::vector<ProcId> participants(r.varint());
        for (auto& p : participants) p = static_cast<ProcId>(r.svarint());
        std::vector<KvWrite> writes(r.varint());
        for (auto& write : writes) {
          write.key = r.str();
          write.value = r.str();
        }
        return sim::make_message<PrepareRequest>(txn, client, std::move(participants),
                                                 std::move(writes));
      });

  WireRegistry::extend(
      kSessionMsg, typeid(SessionMsg),
      [](BufWriter& w, const sim::MessageBase& m) {
        const auto& msg = as<SessionMsg>(m);
        w.svarint(msg.txn());
        w.svarint(msg.from_rank());
        w.bytes(msg.inner());
      },
      [](BufReader& r) -> sim::MessageRef {
        const auto txn = r.svarint();
        const auto rank = static_cast<int32_t>(r.svarint());
        auto inner = r.bytes();
        return sim::make_message<SessionMsg>(txn, rank, std::move(inner));
      });

  WireRegistry::extend(
      kTxnOutcome, typeid(TxnOutcomeMsg),
      [](BufWriter& w, const sim::MessageBase& m) {
        const auto& msg = as<TxnOutcomeMsg>(m);
        w.svarint(msg.txn());
        w.u8(msg.commit() ? 1 : 0);
      },
      [](BufReader& r) -> sim::MessageRef {
        const auto txn = r.svarint();
        return sim::make_message<TxnOutcomeMsg>(txn, r.u8());
      });

  WireRegistry::extend(
      kGetRequest, typeid(GetRequest),
      [](BufWriter& w, const sim::MessageBase& m) {
        const auto& req = as<GetRequest>(m);
        w.svarint(req.request_id());
        w.str(req.key());
      },
      [](BufReader& r) -> sim::MessageRef {
        const auto id = r.svarint();
        return sim::make_message<GetRequest>(id, r.str());
      });

  WireRegistry::extend(
      kGetResponse, typeid(GetResponse),
      [](BufWriter& w, const sim::MessageBase& m) {
        const auto& resp = as<GetResponse>(m);
        w.svarint(resp.request_id());
        w.boolean(resp.found());
        w.str(resp.value());
      },
      [](BufReader& r) -> sim::MessageRef {
        const auto id = r.svarint();
        const bool found = r.boolean();
        return sim::make_message<GetResponse>(id, found, r.str());
      });
}

}  // namespace

void register_db_wire_types() {
  static std::once_flag flag;
  std::call_once(flag, do_register);
}

// --- session step context -----------------------------------------------------------

namespace {

/// StepContext that tunnels a commit session's sends through SessionMsg
/// frames addressed by participant rank.
class SessionStepContext final : public sim::StepContext {
 public:
  SessionStepContext(TxnId txn, ProcId node_id, const std::vector<ProcId>& participants,
                     int32_t my_rank, Tick clock, RandomTape& tape,
                     transport::Network& network)
      : txn_(txn),
        node_id_(node_id),
        participants_(participants),
        my_rank_(my_rank),
        clock_(clock),
        tape_(tape),
        network_(network) {}

  void send(ProcId to_rank, sim::MessageRef payload) override {
    RCOMMIT_CHECK(to_rank >= 0 && to_rank < n());
    auto inner_bytes = WireRegistry::instance().encode(*payload);
    const SessionMsg tunnel(txn_, my_rank_, std::move(inner_bytes));
    WireFrame frame;
    frame.from = node_id_;
    frame.to = participants_[static_cast<size_t>(to_rank)];
    frame.sender_clock = clock_;
    frame.payload = WireRegistry::instance().encode(tunnel);
    network_.send(frame);
  }

  void broadcast(sim::MessageRef payload) override {
    for (ProcId rank = 0; rank < n(); ++rank) send(rank, payload);
  }

  [[nodiscard]] Tick clock() const override { return clock_; }
  [[nodiscard]] ProcId self() const override { return my_rank_; }
  [[nodiscard]] int32_t n() const override {
    return static_cast<int32_t>(participants_.size());
  }
  RandomTape& random() override { return tape_; }

 private:
  TxnId txn_;
  ProcId node_id_;
  const std::vector<ProcId>& participants_;
  int32_t my_rank_;
  Tick clock_;
  RandomTape& tape_;
  transport::Network& network_;
};

}  // namespace

// --- shard server ----------------------------------------------------------------------

ShardServer::ShardServer(Options options, KvStore& store, transport::Network& network)
    : options_(options), store_(store), network_(network) {
  RCOMMIT_CHECK(options_.node_id >= 0 && options_.node_id < network.n());
  register_db_wire_types();
}

ShardServer::~ShardServer() { stop(); }

void ShardServer::start() {
  RCOMMIT_CHECK(!running_);
  // Server lifecycle flags, not transactional state: a CrashInjected escaping
  // the worker thread tears down the whole server, so there is nothing to
  // roll back here — the WAL appends happen on the spawned thread.
  // RCOMMIT_ANALYZE_ALLOW(A3): lifecycle flag; appends run on the spawned thread
  running_ = true;
  // RCOMMIT_ANALYZE_ALLOW(A3): lifecycle flag; appends run on the spawned thread
  stop_requested_.store(false);
  // RCOMMIT_ANALYZE_ALLOW(A3): thread handle; appends run on the spawned thread
  thread_ = std::thread([this] { loop(); });
}

void ShardServer::stop() {
  if (!running_) return;
  stop_requested_.store(true);
  thread_.join();
  running_ = false;
}

void ShardServer::loop() {
  auto& inbox = network_.inbox(options_.node_id);
  while (!stop_requested_.load()) {
    for (auto& bytes : inbox.drain()) {
      try {
        handle_frame(WireFrame::deserialize(bytes));
      } catch (const CodecError&) {
        // Mangled frame: drop.
      }
    }
    step_sessions();
    // Sleep on the inbox so arriving frames wake the server early.
    if (auto first = inbox.pop(options_.step_period); first.has_value()) {
      try {
        handle_frame(WireFrame::deserialize(*first));
      } catch (const CodecError&) {
      }
    }
  }
}

void ShardServer::handle_frame(const WireFrame& frame) {
  const auto payload = WireRegistry::instance().decode(frame.payload);

  if (const auto* prepare = sim::msg_cast<PrepareRequest>(payload)) {
    if (finished_.count(prepare->txn()) == 0 &&
        sessions_.find(prepare->txn()) == sessions_.end()) {
      open_session(*prepare);
    }
    return;
  }
  if (const auto* tunnel = sim::msg_cast<SessionMsg>(payload)) {
    if (finished_.count(tunnel->txn()) > 0) return;  // stale
    sim::Envelope env;
    env.from = tunnel->from_rank();
    env.to = kNoProc;  // rank-space; filled per session
    env.sender_clock = frame.sender_clock;
    env.payload = WireRegistry::instance().decode(tunnel->inner());
    auto it = sessions_.find(tunnel->txn());
    if (it == sessions_.end()) {
      early_[tunnel->txn()].push_back(std::move(env));  // before our prepare
    } else {
      it->second.pending.push_back(std::move(env));
    }
    return;
  }
  if (const auto* get = sim::msg_cast<GetRequest>(payload)) {
    const auto value = store_.get(get->key());
    const GetResponse response(get->request_id(), value.has_value(),
                               value.value_or(""));
    WireFrame reply;
    reply.from = options_.node_id;
    reply.to = frame.from;
    reply.payload = WireRegistry::instance().encode(response);
    network_.send(reply);
    return;
  }
  // Other payloads (e.g. outcome notifications) are not for servers.
}

void ShardServer::open_session(const PrepareRequest& request) {
  Session session;
  session.txn = request.txn();
  session.client = request.client();
  session.participants = request.participants();
  for (size_t rank = 0; rank < session.participants.size(); ++rank) {
    if (session.participants[rank] == options_.node_id) {
      session.my_rank = static_cast<int32_t>(rank);
    }
  }
  RCOMMIT_CHECK_MSG(session.my_rank >= 0,
                    "shard " << options_.node_id << " not in participant list");

  // Record the whole participant group (shard node ids) in the PREPARED
  // record: recovery cross-checks it against what actually got durable.
  std::vector<int32_t> participant_ids(session.participants.begin(),
                                       session.participants.end());
  const int vote =
      store_.prepare(request.txn(), request.writes(), participant_ids) ? 1 : 0;

  const auto n = static_cast<int32_t>(session.participants.size());
  protocol::CommitProcess::Options popts;
  popts.params = SystemParams{.n = n, .t = (n - 1) / 2, .k = options_.k};
  popts.initial_vote = vote;
  session.process = std::make_unique<protocol::CommitProcess>(popts);
  session.tape = std::make_unique<RandomTape>(
      options_.seed ^ (static_cast<uint64_t>(request.txn()) * 0x9e3779b97f4a7c15ULL));

  // Replay tunnelled messages that beat the prepare here.
  if (auto it = early_.find(request.txn()); it != early_.end()) {
    session.pending = std::move(it->second);
    early_.erase(it);
  }
  sessions_.emplace(request.txn(), std::move(session));
}

void ShardServer::step_sessions() {
  std::vector<TxnId> done;
  for (auto& [txn, session] : sessions_) {
    if (session.process->halted()) {
      done.push_back(txn);
      continue;
    }
    std::vector<sim::Envelope> delivered = std::move(session.pending);
    session.pending.clear();
    SessionStepContext ctx(txn, options_.node_id, session.participants,
                           session.my_rank, ++session.clock, *session.tape, network_);
    session.process->on_step(ctx, delivered);

    if (session.process->decided() && !session.outcome_applied) finalize(session);
  }
  for (TxnId txn : done) {
    sessions_.erase(txn);
    finished_.insert(txn);
    sessions_completed_.fetch_add(1);
  }
}

void ShardServer::finalize(Session& session) {
  session.outcome_applied = true;
  const Decision decision = session.process->decision();
  if (decision == Decision::kCommit) {
    // Protocol 2 only commits when every participant voted 1, so this
    // shard's prepare necessarily succeeded (Theorem 9, abort validity).
    store_.commit(session.txn);
  } else {
    store_.abort(session.txn);
  }
  const TxnOutcomeMsg outcome(session.txn,
                              decision == Decision::kCommit ? uint8_t{1} : uint8_t{0});
  WireFrame frame;
  frame.from = options_.node_id;
  frame.to = session.client;
  frame.payload = WireRegistry::instance().encode(outcome);
  network_.send(frame);
}

// --- client -------------------------------------------------------------------------------

DbTxnClient::DbTxnClient(ProcId node_id, transport::Network& network)
    : node_id_(node_id), network_(network) {
  register_db_wire_types();
}

std::optional<Decision> DbTxnClient::execute(
    TxnId txn, const std::map<ProcId, std::vector<KvWrite>>& writes,
    std::chrono::milliseconds timeout) {
  RCOMMIT_CHECK(!writes.empty());
  std::vector<ProcId> participants;
  for (const auto& [shard, _] : writes) participants.push_back(shard);

  for (const auto& [shard, shard_writes] : writes) {
    const PrepareRequest request(txn, node_id_, participants, shard_writes);
    WireFrame frame;
    frame.from = node_id_;
    frame.to = shard;
    frame.payload = transport::WireRegistry::instance().encode(request);
    network_.send(frame);
  }

  // Await one outcome per involved shard (they agree under Protocol 2).
  std::set<ProcId> reported;
  std::optional<Decision> decision;
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  auto& inbox = network_.inbox(node_id_);
  while (reported.size() < participants.size()) {
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) return std::nullopt;  // in doubt
    const auto wait = std::chrono::duration_cast<std::chrono::microseconds>(
        deadline - now);
    auto bytes = inbox.pop(std::min(wait, std::chrono::microseconds(5000)));
    if (!bytes.has_value()) continue;
    try {
      const auto frame = transport::WireFrame::deserialize(*bytes);
      const auto payload = transport::WireRegistry::instance().decode(frame.payload);
      const auto* outcome = sim::msg_cast<TxnOutcomeMsg>(payload);
      if (outcome == nullptr || outcome->txn() != txn) continue;  // stale
      const Decision d = outcome->commit() ? Decision::kCommit : Decision::kAbort;
      RCOMMIT_CHECK_MSG(!decision.has_value() || *decision == d,
                        "shards disagreed on txn " << txn);
      decision = d;
      reported.insert(frame.from);
    } catch (const CodecError&) {
    }
  }
  return decision;
}

std::optional<std::string> DbTxnClient::get(ProcId shard, const std::string& key,
                                            std::chrono::milliseconds timeout) {
  const int64_t request_id = next_request_++;
  const GetRequest request(request_id, key);
  WireFrame frame;
  frame.from = node_id_;
  frame.to = shard;
  frame.payload = transport::WireRegistry::instance().encode(request);
  network_.send(frame);

  const auto deadline = std::chrono::steady_clock::now() + timeout;
  auto& inbox = network_.inbox(node_id_);
  while (std::chrono::steady_clock::now() < deadline) {
    auto bytes = inbox.pop(std::chrono::microseconds(5000));
    if (!bytes.has_value()) continue;
    try {
      const auto reply = transport::WireFrame::deserialize(*bytes);
      const auto payload = transport::WireRegistry::instance().decode(reply.payload);
      const auto* response = sim::msg_cast<GetResponse>(payload);
      if (response == nullptr || response->request_id() != request_id) continue;
      if (!response->found()) return std::nullopt;
      return response->value();
    } catch (const CodecError&) {
    }
  }
  return std::nullopt;
}

}  // namespace rcommit::db
