// Distributed transactions over sharded KV stores.
//
// The paper's motivating setting made concrete: a transaction touches several
// shards; each shard stages and durably prepares its writes (its vote), and
// the shards then reach a common commit/abort decision by running a commit
// protocol over the threaded transport — the paper's Protocol 2 by default,
// or a 2PC/3PC baseline for comparison. The outcome is applied to every
// involved shard.
#pragma once

#include <chrono>
#include <filesystem>
#include <map>
#include <memory>
#include <vector>

#include "common/types.h"
#include "db/kv.h"
#include "protocol/commit.h"
#include "transport/network.h"

namespace rcommit::db {

/// Which protocol decides the fate of a transaction.
enum class CommitBackend {
  kPaperProtocol,  ///< Protocol 2 (Coan & Lundelius)
  kTwoPc,          ///< two-phase commit (presume-abort timeout policy)
  kThreePc,        ///< three-phase commit
  kQ3pc,           ///< 3PC with the termination (recovery) protocol
};

struct TxnOutcome {
  Decision decision = Decision::kAbort;
  bool decided = true;  ///< false if the commit protocol timed out undecided
};

/// Builds one commit-protocol participant with the given initial vote.
/// Shared by DistributedDb's per-transaction fleets and MultiShotDb's
/// pipelined commit instances; baselines derive their timeout as 8K.
std::unique_ptr<sim::Process> make_commit_participant(CommitBackend backend,
                                                      const SystemParams& params,
                                                      int vote, Tick k);

class DistributedDb {
 public:
  struct Options {
    int32_t shard_count = 3;
    std::filesystem::path data_dir;  ///< one WAL per shard lives here
    CommitBackend backend = CommitBackend::kPaperProtocol;
    uint64_t seed = 1;
    transport::LinkPolicy network = {};  ///< delay/drop injection
    std::chrono::milliseconds txn_timeout{2000};
    Tick k = 25;  ///< Protocol 2's K, in node steps
    /// Optional WAL fault hook, installed on every shard's log (non-owning).
    /// The crash-point torture suite (src/faultinject) uses this to kill the
    /// database at a chosen append; production paths leave it null.
    WalFaultHook* wal_fault_hook = nullptr;
  };

  explicit DistributedDb(Options options);

  /// Executes one distributed transaction: writes grouped per shard. Every
  /// involved shard prepares (vote), the commit protocol runs over a fresh
  /// in-memory network among the involved shards, and the outcome is applied
  /// everywhere. Single-shard transactions commit locally iff they prepare.
  TxnOutcome execute(const std::map<int32_t, std::vector<KvWrite>>& writes_by_shard);

  /// Reads from one shard.
  [[nodiscard]] std::optional<std::string> get(int32_t shard, const std::string& key) const;

  [[nodiscard]] KvStore& shard(int32_t index);
  [[nodiscard]] int32_t shard_count() const { return options_.shard_count; }

  /// Transactions executed so far (also the id generator).
  [[nodiscard]] TxnId transactions_started() const { return next_txn_ - 1; }

 private:
  /// Builds one commit-protocol participant with the given initial vote.
  std::unique_ptr<sim::Process> make_participant(int32_t index, int32_t n, int vote) const;

  Options options_;
  std::vector<std::unique_ptr<KvStore>> shards_;
  TxnId next_txn_ = 1;
  uint64_t txn_seed_ = 0;
};

}  // namespace rcommit::db
