#include "db/wal.h"

#include "common/check.h"
#include "common/codec.h"

namespace rcommit::db {

namespace {

std::vector<uint8_t> encode_record(const WalRecord& record) {
  BufWriter w;
  w.u8(static_cast<uint8_t>(record.type));
  w.svarint(record.txn_id);
  w.str(record.key);
  w.str(record.value);
  return w.take();
}

WalRecord decode_record(std::span<const uint8_t> body) {
  BufReader r(body);
  WalRecord record;
  const uint8_t raw_type = r.u8();
  // An unchecked enum cast would let a type byte outside WalRecordType sail
  // through recovery's switches unmatched — silently dropping a record whose
  // CRC said it was intact. Reject it instead: replay stops here and trusts
  // nothing after (same policy as a CRC mismatch).
  if (raw_type < static_cast<uint8_t>(WalRecordType::kBegin) ||
      raw_type > static_cast<uint8_t>(WalRecordType::kBatchSeal)) {
    throw CodecError("unknown WAL record type " + std::to_string(raw_type));
  }
  record.type = static_cast<WalRecordType>(raw_type);
  record.txn_id = r.svarint();
  record.key = r.str();
  record.value = r.str();
  if (!r.exhausted()) throw CodecError("trailing bytes in WAL record");
  return record;
}

/// Scans a WAL file: the decodable record prefix plus the byte offset where
/// trust ends (first torn, corrupt, or structurally invalid frame).
struct WalScan {
  std::vector<WalRecord> records;
  size_t valid_end = 0;
};

WalScan scan_wal(const std::filesystem::path& path) {
  WalScan scan;
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) return scan;

  std::vector<uint8_t> file_bytes((std::istreambuf_iterator<char>(in)),
                                  std::istreambuf_iterator<char>());
  size_t pos = 0;
  while (pos + 8 <= file_bytes.size()) {
    BufReader header(std::span<const uint8_t>(file_bytes.data() + pos, 8));
    const uint32_t length = header.u32();
    const uint32_t crc = header.u32();
    if (pos + 8 + length > file_bytes.size()) break;  // torn final record
    const std::span<const uint8_t> body(file_bytes.data() + pos + 8, length);
    if (crc32c(body) != crc) break;  // corrupt record: trust nothing after it
    try {
      scan.records.push_back(decode_record(body));
    } catch (const CodecError&) {
      break;  // structurally invalid despite matching CRC — stop here
    }
    pos += 8 + length;
    scan.valid_end = pos;
  }
  return scan;
}

}  // namespace

std::string encode_participant_list(const std::vector<int32_t>& ids) {
  std::string out;
  for (size_t i = 0; i < ids.size(); ++i) {
    if (i > 0) out += ',';
    out += std::to_string(ids[i]);
  }
  return out;
}

std::vector<int32_t> decode_participant_list(const std::string& text) {
  std::vector<int32_t> ids;
  if (text.empty()) return ids;
  size_t pos = 0;
  while (pos <= text.size()) {
    const size_t comma = text.find(',', pos);
    const std::string part =
        text.substr(pos, comma == std::string::npos ? std::string::npos : comma - pos);
    RCOMMIT_CHECK_MSG(!part.empty() &&
                          part.find_first_not_of("0123456789") == std::string::npos,
                      "malformed participant list: '" << text << "'");
    ids.push_back(static_cast<int32_t>(std::stol(part)));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return ids;
}

std::string encode_txn_list(const std::vector<int64_t>& ids) {
  std::string out;
  for (size_t i = 0; i < ids.size(); ++i) {
    if (i > 0) out += ',';
    out += std::to_string(ids[i]);
  }
  return out;
}

std::vector<int64_t> decode_txn_list(const std::string& text) {
  std::vector<int64_t> ids;
  if (text.empty()) return ids;
  size_t pos = 0;
  while (pos <= text.size()) {
    const size_t comma = text.find(',', pos);
    const std::string part =
        text.substr(pos, comma == std::string::npos ? std::string::npos : comma - pos);
    RCOMMIT_CHECK_MSG(!part.empty() &&
                          part.find_first_not_of("0123456789") == std::string::npos,
                      "malformed txn list: '" << text << "'");
    ids.push_back(std::stoll(part));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return ids;
}

WriteAheadLog::WriteAheadLog(std::filesystem::path path) : path_(std::move(path)) {
  // Replay stops at the first torn/corrupt frame and trusts nothing after it
  // — so anything appended after such a frame would be unreachable forever.
  // Make the distrust durable: truncate the invalid tail before appending.
  // (The crash-point torture suite caught exactly this: recovery's COMMIT
  // record landing after a torn frame, lost on the next open.)
  std::error_code ec;
  const auto size = std::filesystem::file_size(path_, ec);
  if (!ec && size > 0) {
    const WalScan scan = scan_wal(path_);
    if (scan.valid_end < size) {
      std::filesystem::resize_file(path_, scan.valid_end);
    }
  }
  out_.open(path_, std::ios::binary | std::ios::app);
  RCOMMIT_CHECK_MSG(out_.is_open(), "cannot open WAL at " << path_.string());
}

void WriteAheadLog::append(const WalRecord& record) {
  const auto body = encode_record(record);
  BufWriter frame_writer;
  frame_writer.u32(static_cast<uint32_t>(body.size()));
  frame_writer.u32(crc32c(body));
  const auto& frame_head = frame_writer.data();
  std::vector<uint8_t> frame;
  frame.reserve(frame_head.size() + body.size());
  frame.insert(frame.end(), frame_head.begin(), frame_head.end());
  frame.insert(frame.end(), body.begin(), body.end());

  if (group_open_) {
    pending_.insert(pending_.end(), frame.begin(), frame.end());
    ++pending_records_;
    ++stats_.records_appended;
    // Deterministic auto-flush: the boundary depends only on the append
    // sequence, never on timing, so injection sites stay enumerable.
    if (pending_records_ >= limits_.max_records ||
        pending_.size() >= limits_.max_bytes) {
      flush_pending();
    }
    return;
  }

  write_frame(std::span<const uint8_t>(frame));
  ++stats_.records_appended;
}

void WriteAheadLog::write_frame(std::span<const uint8_t> bytes) {
  WalAppendFault fault;
  if (fault_hook_ != nullptr) {
    fault = fault_hook_->on_append(path_, bytes);
  }

  const auto write_bytes = [this](std::span<const uint8_t> span) {
    out_.write(reinterpret_cast<const char*>(span.data()),
               static_cast<std::streamsize>(span.size()));
    out_.flush();
    ++stats_.flushes;
    stats_.bytes_written += static_cast<int64_t>(span.size());
    RCOMMIT_CHECK_MSG(out_.good(), "WAL append failed at " << path_.string());
  };

  switch (fault.kind) {
    case WalAppendFault::Kind::kClean:
      write_bytes(bytes);
      break;
    case WalAppendFault::Kind::kCrashBefore:
      throw CrashInjected(fault.site,
                          "injected crash before WAL append at " + path_.string());
    case WalAppendFault::Kind::kTorn: {
      RCOMMIT_CHECK_MSG(fault.keep_bytes < bytes.size(),
                        "torn write must keep fewer than frame bytes");
      write_bytes(bytes.subspan(0, fault.keep_bytes));
      throw CrashInjected(fault.site, "injected torn write (" +
                                          std::to_string(fault.keep_bytes) + "/" +
                                          std::to_string(bytes.size()) +
                                          " bytes) at " + path_.string());
    }
    case WalAppendFault::Kind::kDuplicate:
      write_bytes(bytes);
      write_bytes(bytes);
      break;
    case WalAppendFault::Kind::kCrashAfter:
      write_bytes(bytes);
      throw CrashInjected(fault.site,
                          "injected crash after WAL append at " + path_.string());
  }
}

void WriteAheadLog::begin_group(const WalGroupLimits& limits) {
  RCOMMIT_CHECK_MSG(!group_open_, "begin_group with a group already open");
  RCOMMIT_CHECK(limits.max_records > 0 && limits.max_bytes > 0);
  limits_ = limits;
  group_open_ = true;
}

void WriteAheadLog::commit_group() {
  RCOMMIT_CHECK_MSG(group_open_, "commit_group without an open group");
  flush_pending();
}

void WriteAheadLog::end_group() {
  RCOMMIT_CHECK_MSG(group_open_, "end_group without an open group");
  flush_pending();
  group_open_ = false;
}

void WriteAheadLog::flush_pending() {
  if (pending_.empty()) return;
  // Take the buffer before executing the hook's disposition: a crash verdict
  // unwinds out of write_frame, and the crashed group's bytes must be gone —
  // a later flush replaying them would model a dead process writing.
  const std::vector<uint8_t> group = std::move(pending_);
  pending_.clear();
  pending_records_ = 0;
  write_frame(std::span<const uint8_t>(group));
}

std::vector<WalRecord> WriteAheadLog::replay() const {
  return scan_wal(path_).records;
}

}  // namespace rcommit::db
