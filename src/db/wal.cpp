#include "db/wal.h"

#include "common/check.h"
#include "common/codec.h"

namespace rcommit::db {

namespace {

std::vector<uint8_t> encode_record(const WalRecord& record) {
  BufWriter w;
  w.u8(static_cast<uint8_t>(record.type));
  w.svarint(record.txn_id);
  w.str(record.key);
  w.str(record.value);
  return w.take();
}

WalRecord decode_record(std::span<const uint8_t> body) {
  BufReader r(body);
  WalRecord record;
  record.type = static_cast<WalRecordType>(r.u8());
  record.txn_id = r.svarint();
  record.key = r.str();
  record.value = r.str();
  if (!r.exhausted()) throw CodecError("trailing bytes in WAL record");
  return record;
}

}  // namespace

WriteAheadLog::WriteAheadLog(std::filesystem::path path) : path_(std::move(path)) {
  out_.open(path_, std::ios::binary | std::ios::app);
  RCOMMIT_CHECK_MSG(out_.is_open(), "cannot open WAL at " << path_.string());
}

void WriteAheadLog::append(const WalRecord& record) {
  const auto body = encode_record(record);
  BufWriter frame;
  frame.u32(static_cast<uint32_t>(body.size()));
  frame.u32(crc32c(body));
  const auto& header = frame.data();
  out_.write(reinterpret_cast<const char*>(header.data()),
             static_cast<std::streamsize>(header.size()));
  out_.write(reinterpret_cast<const char*>(body.data()),
             static_cast<std::streamsize>(body.size()));
  out_.flush();
  RCOMMIT_CHECK_MSG(out_.good(), "WAL append failed at " << path_.string());
  ++records_appended_;
}

std::vector<WalRecord> WriteAheadLog::replay() const {
  std::vector<WalRecord> records;
  std::ifstream in(path_, std::ios::binary);
  if (!in.is_open()) return records;

  std::vector<uint8_t> file_bytes((std::istreambuf_iterator<char>(in)),
                                  std::istreambuf_iterator<char>());
  size_t pos = 0;
  while (pos + 8 <= file_bytes.size()) {
    BufReader header(std::span<const uint8_t>(file_bytes.data() + pos, 8));
    const uint32_t length = header.u32();
    const uint32_t crc = header.u32();
    if (pos + 8 + length > file_bytes.size()) break;  // torn final record
    const std::span<const uint8_t> body(file_bytes.data() + pos + 8, length);
    if (crc32c(body) != crc) break;  // corrupt record: trust nothing after it
    try {
      records.push_back(decode_record(body));
    } catch (const CodecError&) {
      break;  // structurally invalid despite matching CRC — stop here
    }
    pos += 8 + length;
  }
  return records;
}

}  // namespace rcommit::db
