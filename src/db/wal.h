// Write-ahead log.
//
// The durability substrate of the motivating application (§1: "the results of
// the transaction are installed in the database at all processors ... or at
// no processor"). Each record is framed [length][crc32c][body] and flushed on
// append; replay stops cleanly at the first torn or corrupted record, so a
// crash mid-append loses at most the record being written.
//
// Every append is also a numbered *injection site*: an installed WalFaultHook
// (src/faultinject) sees each framed record before it hits the file and can
// demand a torn write, a duplicated frame, or a hard crash at exactly that
// point. With no hook installed (or a hook that always answers kClean) the
// byte stream is identical to an uninstrumented log — the hook sees the
// frame that was going to be written anyway.
#pragma once

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/types.h"

namespace rcommit::db {

enum class WalRecordType : uint8_t {
  kBegin = 1,     ///< transaction started on this shard
  kWrite = 2,     ///< staged write (key, value)
  kPrepared = 3,  ///< shard voted commit; writes are staged durably
  kCommit = 4,    ///< outcome: install the staged writes
  kAbort = 5,     ///< outcome: discard the staged writes
  kSnapshot = 6,  ///< checkpointed committed state (key, value), txn_id = 0
};

struct WalRecord {
  WalRecordType type = WalRecordType::kBegin;
  int64_t txn_id = 0;
  std::string key;    ///< kWrite only
  std::string value;  ///< kWrite / kPrepared (participant list)

  bool operator==(const WalRecord&) const = default;
};

/// Thrown by WriteAheadLog::append when the installed fault hook demands a
/// crash at this injection site. Models a whole-process kill: the in-memory
/// store is garbage afterwards; the only truth left is the WAL file.
class CrashInjected : public std::runtime_error {
 public:
  CrashInjected(int64_t site, const std::string& what)
      : std::runtime_error(what), site_(site) {}

  /// The global injection-site index at which the crash fired.
  [[nodiscard]] int64_t site() const { return site_; }

 private:
  int64_t site_;
};

/// What a fault hook wants done with one append.
struct WalAppendFault {
  enum class Kind : uint8_t {
    kClean,        ///< write the frame normally
    kCrashBefore,  ///< write nothing, then crash
    kTorn,         ///< write only keep_bytes of the frame, then crash
    kDuplicate,    ///< write the frame twice, keep running
    kCrashAfter,   ///< write the frame fully, then crash
  };
  Kind kind = Kind::kClean;
  /// kTorn only: bytes of the frame that reach the file, in [0, frame size).
  size_t keep_bytes = 0;
  /// Site index to report in CrashInjected (assigned by the hook).
  int64_t site = -1;
};

/// Consulted once per append with the exact bytes about to be written
/// (header + body). Implemented by faultinject::FaultInjector; the WAL layer
/// only executes the returned disposition.
class WalFaultHook {
 public:
  virtual ~WalFaultHook() = default;
  virtual WalAppendFault on_append(const std::filesystem::path& wal_path,
                                   std::span<const uint8_t> frame) = 0;
};

/// Encodes a participant shard list into the kPrepared record's value field
/// (comma-separated decimal, e.g. "0,2,5"). An empty list encodes as "" —
/// byte-identical to the pre-participant-list record format, which is how
/// legacy WALs and direct KvStore::prepare calls without a list stay valid.
[[nodiscard]] std::string encode_participant_list(const std::vector<int32_t>& ids);
/// Inverse of encode_participant_list; "" decodes to the empty list. Throws
/// CheckFailure on malformed input (the record's CRC already passed, so a
/// parse failure here is a logic bug, not corruption).
[[nodiscard]] std::vector<int32_t> decode_participant_list(const std::string& text);

class WriteAheadLog {
 public:
  /// Opens (creating if absent) the log at `path` for appending.
  explicit WriteAheadLog(std::filesystem::path path);

  /// Appends one record, framed and checksummed, and flushes it. If a fault
  /// hook is installed, its verdict for this site is executed (which may
  /// throw CrashInjected).
  void append(const WalRecord& record);

  /// Reads every intact record from the start of the log. Stops (without
  /// throwing) at the first torn or corrupt frame — everything before it is
  /// trustworthy, everything after is garbage from an interrupted append.
  /// A frame whose CRC matches but whose type byte is outside WalRecordType
  /// is treated the same way: recovery rejects it and trusts nothing after.
  [[nodiscard]] std::vector<WalRecord> replay() const;

  /// Installs (or clears, with nullptr) the per-append fault hook. Non-owning.
  void set_fault_hook(WalFaultHook* hook) { fault_hook_ = hook; }

  [[nodiscard]] const std::filesystem::path& path() const { return path_; }
  [[nodiscard]] int64_t records_appended() const { return records_appended_; }

 private:
  std::filesystem::path path_;
  std::ofstream out_;
  int64_t records_appended_ = 0;
  WalFaultHook* fault_hook_ = nullptr;
};

}  // namespace rcommit::db
