// Write-ahead log.
//
// The durability substrate of the motivating application (§1: "the results of
// the transaction are installed in the database at all processors ... or at
// no processor"). Each record is framed [length][crc32c][body] and flushed on
// append; replay stops cleanly at the first torn or corrupted record, so a
// crash mid-append loses at most the record being written.
#pragma once

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common/types.h"

namespace rcommit::db {

enum class WalRecordType : uint8_t {
  kBegin = 1,     ///< transaction started on this shard
  kWrite = 2,     ///< staged write (key, value)
  kPrepared = 3,  ///< shard voted commit; writes are staged durably
  kCommit = 4,    ///< outcome: install the staged writes
  kAbort = 5,     ///< outcome: discard the staged writes
  kSnapshot = 6,  ///< checkpointed committed state (key, value), txn_id = 0
};

struct WalRecord {
  WalRecordType type = WalRecordType::kBegin;
  int64_t txn_id = 0;
  std::string key;    ///< kWrite only
  std::string value;  ///< kWrite only

  bool operator==(const WalRecord&) const = default;
};

class WriteAheadLog {
 public:
  /// Opens (creating if absent) the log at `path` for appending.
  explicit WriteAheadLog(std::filesystem::path path);

  /// Appends one record, framed and checksummed, and flushes it.
  void append(const WalRecord& record);

  /// Reads every intact record from the start of the log. Stops (without
  /// throwing) at the first torn or corrupt frame — everything before it is
  /// trustworthy, everything after is garbage from an interrupted append.
  [[nodiscard]] std::vector<WalRecord> replay() const;

  [[nodiscard]] const std::filesystem::path& path() const { return path_; }
  [[nodiscard]] int64_t records_appended() const { return records_appended_; }

 private:
  std::filesystem::path path_;
  std::ofstream out_;
  int64_t records_appended_ = 0;
};

}  // namespace rcommit::db
