// Write-ahead log.
//
// The durability substrate of the motivating application (§1: "the results of
// the transaction are installed in the database at all processors ... or at
// no processor"). Each record is framed [length][crc32c][body] and flushed on
// append; replay stops cleanly at the first torn or corrupted record, so a
// crash mid-append loses at most the record being written.
//
// Every append is also a numbered *injection site*: an installed WalFaultHook
// (src/faultinject) sees each framed record before it hits the file and can
// demand a torn write, a duplicated frame, or a hard crash at exactly that
// point. With no hook installed (or a hook that always answers kClean) the
// byte stream is identical to an uninstrumented log — the hook sees the
// frame that was going to be written anyway.
#pragma once

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/types.h"

namespace rcommit::db {

enum class WalRecordType : uint8_t {
  kBegin = 1,      ///< transaction started on this shard
  kWrite = 2,      ///< staged write (key, value)
  kPrepared = 3,   ///< shard voted commit; writes are staged durably
  kCommit = 4,     ///< outcome: install the staged writes
  kAbort = 5,      ///< outcome: discard the staged writes
  kSnapshot = 6,   ///< checkpointed committed state (key, value), txn_id = 0
  kBatchSeal = 7,  ///< decision-batch membership: txn_id = batch id, value =
                   ///< member instance ids. A recovery *hint* — it lets
                   ///< RecoveryManager rerun one protocol round per batch
                   ///< instead of one per member; losing it costs only reruns,
                   ///< never correctness, so seals ride in the next group
                   ///< flush without a flush of their own.
};

struct WalRecord {
  WalRecordType type = WalRecordType::kBegin;
  int64_t txn_id = 0;
  std::string key;    ///< kWrite only
  std::string value;  ///< kWrite / kPrepared (participant list)

  bool operator==(const WalRecord&) const = default;
};

/// Thrown by WriteAheadLog::append when the installed fault hook demands a
/// crash at this injection site. Models a whole-process kill: the in-memory
/// store is garbage afterwards; the only truth left is the WAL file.
class CrashInjected : public std::runtime_error {
 public:
  CrashInjected(int64_t site, const std::string& what)
      : std::runtime_error(what), site_(site) {}

  /// The global injection-site index at which the crash fired.
  [[nodiscard]] int64_t site() const { return site_; }

 private:
  int64_t site_;
};

/// What a fault hook wants done with one append.
struct WalAppendFault {
  enum class Kind : uint8_t {
    kClean,        ///< write the frame normally
    kCrashBefore,  ///< write nothing, then crash
    kTorn,         ///< write only keep_bytes of the frame, then crash
    kDuplicate,    ///< write the frame twice, keep running
    kCrashAfter,   ///< write the frame fully, then crash
  };
  Kind kind = Kind::kClean;
  /// kTorn only: bytes of the frame that reach the file, in [0, frame size).
  size_t keep_bytes = 0;
  /// Site index to report in CrashInjected (assigned by the hook).
  int64_t site = -1;
};

/// Consulted once per append with the exact bytes about to be written
/// (header + body). Implemented by faultinject::FaultInjector; the WAL layer
/// only executes the returned disposition.
class WalFaultHook {
 public:
  virtual ~WalFaultHook() = default;
  virtual WalAppendFault on_append(const std::filesystem::path& wal_path,
                                   std::span<const uint8_t> frame) = 0;
};

/// Encodes a participant shard list into the kPrepared record's value field
/// (comma-separated decimal, e.g. "0,2,5"). An empty list encodes as "" —
/// byte-identical to the pre-participant-list record format, which is how
/// legacy WALs and direct KvStore::prepare calls without a list stay valid.
[[nodiscard]] std::string encode_participant_list(const std::vector<int32_t>& ids);
/// Inverse of encode_participant_list; "" decodes to the empty list. Throws
/// CheckFailure on malformed input (the record's CRC already passed, so a
/// parse failure here is a logic bug, not corruption).
[[nodiscard]] std::vector<int32_t> decode_participant_list(const std::string& text);

/// Encodes a kBatchSeal member list (64-bit instance ids, comma-separated
/// decimal) into the record's value field. Same format family as the
/// participant list, widened to the multi-shot txn-id space.
[[nodiscard]] std::string encode_txn_list(const std::vector<int64_t>& ids);
/// Inverse of encode_txn_list; "" decodes to the empty list.
[[nodiscard]] std::vector<int64_t> decode_txn_list(const std::string& text);

/// Monotonic WAL counters. `records_appended` counts logical appends
/// (buffered appends included); `flushes` counts physical write+flush calls,
/// so records_appended / flushes is the group-commit amortization factor the
/// benchmarks report.
struct WalStats {
  int64_t records_appended = 0;
  int64_t flushes = 0;
  int64_t bytes_written = 0;

  [[nodiscard]] double records_per_flush() const {
    return flushes == 0 ? 0.0
                        : static_cast<double>(records_appended) /
                              static_cast<double>(flushes);
  }
};

/// Group-commit bounds. A group auto-flushes when either limit is reached,
/// so flush boundaries are a pure function of the append sequence — which
/// keeps fault-injection sites enumerable and replayable under group mode.
struct WalGroupLimits {
  int64_t max_records = 256;
  size_t max_bytes = 256 * 1024;
};

class WriteAheadLog {
 public:
  /// Opens (creating if absent) the log at `path` for appending.
  explicit WriteAheadLog(std::filesystem::path path);

  /// Appends one record, framed and checksummed. Outside group mode the
  /// frame is written and flushed immediately, with the installed fault
  /// hook's verdict for this site executed (which may throw CrashInjected).
  /// Inside group mode the frame is buffered; it reaches the file — and the
  /// fault hook — at the next group flush.
  void append(const WalRecord& record);

  // --- group commit ----------------------------------------------------------
  //
  // Between begin_group() and end_group(), appends coalesce into one pending
  // byte run that hits the file with ONE physical flush — and ONE fault-hook
  // consult, whose frame is the whole group. The serial fault kinds map onto
  // the group-boundary crash sites directly: kCrashBefore loses the entire
  // buffered group (a crash between the last batched append and the group
  // flush), kTorn tears mid-group (frames past the tear are lost, the WAL
  // ctor truncates the ragged tail), kDuplicate doubles the whole group
  // (replay is idempotent record by record). A crash disposition drops the
  // pending buffer before unwinding: the crashed group is gone, exactly as a
  // real power cut would leave it. Destruction with a pending group likewise
  // drops it unflushed — owners flush at their commit points, never from a
  // destructor (a destructor flush would model a dead process writing).

  /// Enters group mode. Must not already be in group mode.
  void begin_group(const WalGroupLimits& limits = {});
  /// Flushes the pending group (no-op when empty) and stays in group mode.
  void commit_group();
  /// Flushes the pending group and leaves group mode.
  void end_group();
  [[nodiscard]] bool group_open() const { return group_open_; }

  /// Reads every intact record from the start of the log. Stops (without
  /// throwing) at the first torn or corrupt frame — everything before it is
  /// trustworthy, everything after is garbage from an interrupted append.
  /// A frame whose CRC matches but whose type byte is outside WalRecordType
  /// is treated the same way: recovery rejects it and trusts nothing after.
  [[nodiscard]] std::vector<WalRecord> replay() const;

  /// Installs (or clears, with nullptr) the per-append fault hook. Non-owning.
  void set_fault_hook(WalFaultHook* hook) { fault_hook_ = hook; }

  [[nodiscard]] const std::filesystem::path& path() const { return path_; }
  [[nodiscard]] int64_t records_appended() const {
    return stats_.records_appended;
  }
  [[nodiscard]] const WalStats& stats() const { return stats_; }

 private:
  /// Writes `bytes` (one frame, or a whole pending group) through the fault
  /// hook and flushes. May throw CrashInjected per the hook's verdict.
  void write_frame(std::span<const uint8_t> bytes);
  /// Flushes the pending group buffer, if any.
  void flush_pending();

  std::filesystem::path path_;
  std::ofstream out_;
  WalStats stats_;
  WalFaultHook* fault_hook_ = nullptr;
  bool group_open_ = false;
  WalGroupLimits limits_;
  std::vector<uint8_t> pending_;  ///< concatenated frames awaiting the flush
  int64_t pending_records_ = 0;
};

}  // namespace rcommit::db
