// Fixed-block payload pool: recycled storage for message payloads.
//
// Broadcast-heavy protocols create and destroy millions of small, similarly
// sized payload objects per run. Routing them through the global allocator
// costs a malloc/free round trip per message and scatters payloads across
// the heap; this pool hands out fixed-size blocks from per-pool chunks and
// recycles freed blocks through an intrusive free list, so in steady state a
// payload allocation is a pointer pop and a free is a pointer push.
//
// The pool is deliberately simple and *not* thread-safe: one pool belongs to
// one simulator run, and a run is single-threaded by design (see
// docs/static-analysis.md, rule R2). Blocks own a shared_ptr back to the
// pool state via PoolAllocator, so payloads that outlive the installing
// scope (a Process holding a MessageRef after the run) deallocate safely —
// the pool's chunks are released only when the last block is returned.
//
// Opt-in wiring: make_message (sim/message.h) consults the thread-local
// scope installed by PayloadPoolScope. No scope — or an allocation the pool
// cannot serve (oversized payload, block cap reached) — falls back to the
// global allocator; the fallback is counted, never an error.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <vector>

namespace rcommit {

/// A fixed-block pool with an intrusive free list and chunked growth.
class PayloadPool {
 public:
  struct Config {
    /// Every served allocation occupies exactly one block of this many
    /// bytes. Must be a multiple of 16 and at least 32 (a freed block
    /// stores the free-list link inline). Requests larger than this fall
    /// back to the global allocator.
    size_t block_size = 256;
    /// Blocks acquired from the global allocator per growth step. Small
    /// enough that short runs do not over-commit, large enough to amortize.
    size_t blocks_per_chunk = 256;
    /// Hard cap on pool-owned blocks; further allocations fall back to the
    /// global allocator (counted in Stats::fallback_allocs). 0 = unbounded.
    size_t max_blocks = 0;
  };

  struct Stats {
    int64_t pool_allocs = 0;      ///< allocations served from a block
    int64_t pool_frees = 0;       ///< blocks returned to the free list
    int64_t fallback_allocs = 0;  ///< oversize or cap-hit requests
    size_t blocks_total = 0;      ///< blocks currently owned by the pool
    size_t blocks_free = 0;       ///< blocks currently on the free list
  };

  PayloadPool() : PayloadPool(Config()) {}
  explicit PayloadPool(Config config);

  PayloadPool(const PayloadPool&) = delete;
  PayloadPool& operator=(const PayloadPool&) = delete;

  /// One block, or nullptr when the request cannot be served (bytes >
  /// block_size, alignment > 16, or max_blocks reached). A nullptr return
  /// is counted as a fallback; the caller allocates from the heap.
  [[nodiscard]] void* allocate(size_t bytes, size_t alignment);

  /// Returns true when `p` was pool memory (now back on the free list);
  /// false when `p` is foreign and the caller must free it itself.
  bool deallocate(void* p);

  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] const Config& config() const { return config_; }

 private:
  [[nodiscard]] bool owns(const void* p) const;
  void grow();

  Config config_;
  Stats stats_;
  void* free_head_ = nullptr;  ///< intrusive singly-linked free list
  struct Chunk {
    std::unique_ptr<std::byte[]> bytes;
    size_t size = 0;  ///< bytes, for the ownership range check
  };
  std::vector<Chunk> chunks_;
};

/// std-compatible allocator over a shared PayloadPool; what allocate_shared
/// stores in the control block so deallocation finds its way back to the
/// pool regardless of where the last reference dies.
template <typename T>
class PoolAllocator {
 public:
  using value_type = T;

  explicit PoolAllocator(std::shared_ptr<PayloadPool> pool)
      : pool_(std::move(pool)) {}

  template <typename U>
  PoolAllocator(const PoolAllocator<U>& other)  // NOLINT(google-explicit-constructor)
      : pool_(other.pool_) {}

  // RCOMMIT_ANALYZE_ROOT(A1): what allocate_shared hits under make_message when a pool scope is active
  T* allocate(std::size_t n) {
    if (void* p = pool_->allocate(n * sizeof(T), alignof(T))) {
      return static_cast<T*>(p);
    }
    // RCOMMIT_ANALYZE_ALLOW(A1): heap fallback for oversize/cap-hit requests; the pool counts it in Stats::fallback_allocs
    return static_cast<T*>(::operator new(n * sizeof(T)));
  }

  void deallocate(T* p, std::size_t n) noexcept {
    (void)n;
    if (!pool_->deallocate(p)) ::operator delete(p);
  }

  template <typename U>
  bool operator==(const PoolAllocator<U>& other) const {
    return pool_ == other.pool_;
  }

  std::shared_ptr<PayloadPool> pool_;
};

/// Installs `pool` as the active payload pool for the current thread for the
/// scope's lifetime; nested scopes restore the previous pool. A null pool is
/// a no-op scope (make_message keeps using the global allocator).
class PayloadPoolScope {
 public:
  explicit PayloadPoolScope(std::shared_ptr<PayloadPool> pool);
  ~PayloadPoolScope();

  PayloadPoolScope(const PayloadPoolScope&) = delete;
  PayloadPoolScope& operator=(const PayloadPoolScope&) = delete;

 private:
  std::shared_ptr<PayloadPool> pool_;
  const std::shared_ptr<PayloadPool>* previous_;
};

/// The pool installed by the innermost PayloadPoolScope on this thread, or a
/// null shared_ptr reference when none is active.
const std::shared_ptr<PayloadPool>& active_payload_pool();

}  // namespace rcommit
