// Binary wire codec used by the transport substrate.
//
// A tiny, dependency-free, explicitly little-endian format:
//   - fixed-width integers (u8/u16/u32/u64, signed via zigzag varint)
//   - LEB128 varints for lengths
//   - length-prefixed byte strings
// Every protocol payload serializes through this codec before crossing the
// in-memory network, so the threaded runtime exercises real
// serialize/deserialize paths rather than passing pointers around.
#pragma once

#include <cstdint>
#include <cstring>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/check.h"

namespace rcommit {

/// Error thrown by BufReader on truncated or malformed input.
class CodecError : public std::runtime_error {
 public:
  explicit CodecError(const std::string& what) : std::runtime_error(what) {}
};

/// Appends primitive values to a growing byte buffer.
class BufWriter {
 public:
  void u8(uint8_t v) { buf_.push_back(v); }

  void u16(uint16_t v) {
    u8(static_cast<uint8_t>(v));
    u8(static_cast<uint8_t>(v >> 8));
  }

  void u32(uint32_t v) {
    u16(static_cast<uint16_t>(v));
    u16(static_cast<uint16_t>(v >> 16));
  }

  void u64(uint64_t v) {
    u32(static_cast<uint32_t>(v));
    u32(static_cast<uint32_t>(v >> 32));
  }

  /// Unsigned LEB128 varint.
  void varint(uint64_t v) {
    while (v >= 0x80) {
      u8(static_cast<uint8_t>(v) | 0x80);
      v >>= 7;
    }
    u8(static_cast<uint8_t>(v));
  }

  /// Signed integer via zigzag + varint.
  void svarint(int64_t v) {
    varint((static_cast<uint64_t>(v) << 1) ^ static_cast<uint64_t>(v >> 63));
  }

  void boolean(bool v) { u8(v ? 1 : 0); }

  /// Length-prefixed raw bytes.
  void bytes(std::span<const uint8_t> data) {
    varint(data.size());
    buf_.insert(buf_.end(), data.begin(), data.end());
  }

  /// Length-prefixed UTF-8 string.
  void str(std::string_view s) {
    varint(s.size());
    buf_.insert(buf_.end(), s.begin(), s.end());
  }

  [[nodiscard]] const std::vector<uint8_t>& data() const { return buf_; }
  std::vector<uint8_t> take() { return std::move(buf_); }
  [[nodiscard]] size_t size() const { return buf_.size(); }

 private:
  std::vector<uint8_t> buf_;
};

/// Reads primitive values back out of a byte buffer. Throws CodecError on
/// truncation — callers must treat network bytes as untrusted.
class BufReader {
 public:
  explicit BufReader(std::span<const uint8_t> data) : data_(data) {}

  uint8_t u8() {
    require(1);
    return data_[pos_++];
  }

  uint16_t u16() {
    uint16_t lo = u8();
    uint16_t hi = u8();
    return static_cast<uint16_t>(lo | (hi << 8));
  }

  uint32_t u32() {
    uint32_t lo = u16();
    uint32_t hi = u16();
    return lo | (hi << 16);
  }

  uint64_t u64() {
    uint64_t lo = u32();
    uint64_t hi = u32();
    return lo | (hi << 32);
  }

  uint64_t varint() {
    uint64_t result = 0;
    int shift = 0;
    for (;;) {
      uint8_t byte = u8();
      if (shift >= 64) throw CodecError("varint too long");
      result |= static_cast<uint64_t>(byte & 0x7f) << shift;
      if ((byte & 0x80) == 0) break;
      shift += 7;
    }
    return result;
  }

  int64_t svarint() {
    uint64_t z = varint();
    return static_cast<int64_t>((z >> 1) ^ (~(z & 1) + 1));
  }

  bool boolean() { return u8() != 0; }

  std::vector<uint8_t> bytes() {
    uint64_t len = varint();
    require(len);
    std::vector<uint8_t> out(data_.begin() + static_cast<ptrdiff_t>(pos_),
                             data_.begin() + static_cast<ptrdiff_t>(pos_ + len));
    pos_ += len;
    return out;
  }

  std::string str() {
    uint64_t len = varint();
    require(len);
    std::string out(reinterpret_cast<const char*>(data_.data()) + pos_, len);
    pos_ += len;
    return out;
  }

  [[nodiscard]] bool exhausted() const { return pos_ == data_.size(); }
  [[nodiscard]] size_t remaining() const { return data_.size() - pos_; }

 private:
  void require(uint64_t count) const {
    if (pos_ + count > data_.size()) {
      throw CodecError("truncated buffer: need " + std::to_string(count) +
                       " bytes, have " + std::to_string(data_.size() - pos_));
    }
  }

  std::span<const uint8_t> data_;
  size_t pos_ = 0;
};

/// CRC-32C (Castagnoli), bitwise implementation. Used by the write-ahead log
/// to detect torn or corrupted records during recovery.
uint32_t crc32c(std::span<const uint8_t> data);

}  // namespace rcommit
