// Statistics utilities for the benchmark harness.
//
// The paper's performance claims are expectations (expected stages, expected
// asynchronous rounds), so benches aggregate many seeded runs and report
// mean / max / percentiles via these helpers.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace rcommit {

/// Streaming mean/variance/min/max (Welford's algorithm).
class RunningStat {
 public:
  void add(double x);

  [[nodiscard]] int64_t count() const { return count_; }
  [[nodiscard]] double mean() const { return count_ ? mean_ : 0.0; }
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const { return std::sqrt(variance()); }
  [[nodiscard]] double min() const { return count_ ? min_ : 0.0; }
  [[nodiscard]] double max() const { return count_ ? max_ : 0.0; }

 private:
  int64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Collects raw samples for percentile queries.
class Samples {
 public:
  void add(double x) { values_.push_back(x); }

  [[nodiscard]] int64_t count() const { return static_cast<int64_t>(values_.size()); }
  [[nodiscard]] double mean() const;
  [[nodiscard]] double max() const;
  [[nodiscard]] double min() const;
  /// q in [0,1]; nearest-rank percentile.
  [[nodiscard]] double percentile(double q) const;

 private:
  std::vector<double> values_;
};

/// Fixed-bucket histogram over non-negative integer-ish measurements
/// (stages, rounds, ticks). Values at or above the top bucket accumulate in
/// the overflow bucket. Renders as an ASCII bar chart for bench output.
class Histogram {
 public:
  /// Buckets [0,1), [1,2), ..., [bucket_count-1, inf).
  explicit Histogram(int bucket_count);

  void add(double value);

  [[nodiscard]] int64_t count() const { return total_; }
  [[nodiscard]] int64_t bucket(int index) const;
  /// Renders one line per non-empty bucket: "label | #### count".
  void print(std::ostream& os, int max_bar_width = 40) const;

 private:
  std::vector<int64_t> buckets_;
  int64_t total_ = 0;
};

/// Fixed-width text table used by every bench binary to print
/// claim-vs-measured rows in a uniform format.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  Table& row(std::vector<std::string> cells);
  void print(std::ostream& os) const;
  /// The rendered table as a string — what print() would write. The bench
  /// pipeline stores this in the per-bench JSON so EXPERIMENTS.md tables can
  /// be regenerated from archived results.
  [[nodiscard]] std::string str() const;

  /// Formats a double with the given precision.
  static std::string num(double v, int precision = 2);
  static std::string num(int64_t v);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace rcommit
