// Minimal deterministic JSON assembly and parsing.
//
// The writer started life in src/swarm (the swarm promises byte-identical
// aggregate output across thread counts) and moved here when the benchmark
// pipeline began emitting structured results too: explicit key order
// (insertion order), fixed "%.4f" formatting for doubles, no locale
// involvement, and full string escaping.
//
// The parser is the read side of the same contract: a small recursive-descent
// JSON reader for the documents this repo itself writes (bench results, swarm
// summaries). It accepts standard JSON, reports malformed input via
// CheckFailure, and stores objects as sorted maps — order-insensitive lookup
// is what the tools need; byte preservation is the writer's job.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace rcommit::json {

class JsonWriter {
 public:
  void begin_object();
  void end_object();
  void begin_array();
  void end_array();

  /// Key inside an object; must be followed by a value or container.
  JsonWriter& key(std::string_view name);

  void value(std::string_view s);
  void value(const char* s) { value(std::string_view(s)); }
  void value(int64_t v);
  void value(uint64_t v);
  void value(int v) { value(static_cast<int64_t>(v)); }
  void value(double v);
  void value(bool v);

  /// Splices an already-serialized JSON document in value position (e.g. a
  /// nested object produced by another writer). The caller guarantees it is
  /// well-formed.
  void raw(std::string_view json);

  /// The assembled document. Valid once every container is closed.
  [[nodiscard]] const std::string& str() const { return out_; }

  static std::string escape(std::string_view s);

 private:
  void comma_if_needed();

  std::string out_;
  /// One entry per open container: true once it has at least one element.
  std::vector<bool> has_elements_;
  bool after_key_ = false;
};

/// A parsed JSON document node. Numbers are kept as doubles (the writer
/// emits "%.4f" anyway); as_int() checks the value is integral.
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  [[nodiscard]] Kind kind() const { return kind_; }
  [[nodiscard]] bool is_null() const { return kind_ == Kind::kNull; }

  /// Typed accessors; throw CheckFailure on kind mismatch.
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_double() const;
  [[nodiscard]] int64_t as_int() const;
  [[nodiscard]] const std::string& as_string() const;

  /// Array access; throw CheckFailure when not an array / out of range.
  [[nodiscard]] size_t size() const;
  [[nodiscard]] const JsonValue& at(size_t index) const;
  [[nodiscard]] const std::vector<JsonValue>& items() const;

  /// Object access; at() throws CheckFailure on a missing key.
  [[nodiscard]] bool has(const std::string& key) const;
  [[nodiscard]] const JsonValue& at(const std::string& key) const;
  /// Missing-tolerant typed lookups for schema evolution.
  [[nodiscard]] std::string get_string(const std::string& key,
                                       const std::string& fallback) const;
  [[nodiscard]] double get_double(const std::string& key, double fallback) const;
  [[nodiscard]] int64_t get_int(const std::string& key, int64_t fallback) const;
  [[nodiscard]] bool get_bool(const std::string& key, bool fallback) const;

  static JsonValue make_null() { return JsonValue(); }
  static JsonValue make_bool(bool b);
  static JsonValue make_number(double d);
  static JsonValue make_string(std::string s);
  static JsonValue make_array(std::vector<JsonValue> items);
  static JsonValue make_object(std::map<std::string, JsonValue> members);

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::map<std::string, JsonValue> object_;
};

/// Parses one JSON document (trailing whitespace allowed, trailing garbage
/// is an error). Throws CheckFailure with a byte offset on malformed input.
JsonValue parse(std::string_view text);

}  // namespace rcommit::json
