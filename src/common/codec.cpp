#include "common/codec.h"

#include <array>

namespace rcommit {

namespace {

std::array<uint32_t, 256> make_crc32c_table() {
  constexpr uint32_t kPoly = 0x82f63b78;  // reflected Castagnoli polynomial
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & 1) ? (crc >> 1) ^ kPoly : crc >> 1;
    }
    table[i] = crc;
  }
  return table;
}

}  // namespace

uint32_t crc32c(std::span<const uint8_t> data) {
  static const std::array<uint32_t, 256> table = make_crc32c_table();
  uint32_t crc = 0xffffffff;
  for (uint8_t byte : data) {
    crc = table[(crc ^ byte) & 0xff] ^ (crc >> 8);
  }
  return crc ^ 0xffffffff;
}

}  // namespace rcommit
