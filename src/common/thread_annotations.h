// Clang thread-safety annotations, plus the annotated Mutex/MutexLock/
// CondVar the threaded layers use instead of raw std::mutex.
//
// Why a wrapper: the analysis only tracks types declared as capabilities,
// and libstdc++'s std::mutex is not. Wrapping it in a CAPABILITY("mutex")
// class lets GUARDED_BY/REQUIRES express which lock protects which member,
// and `-Wthread-safety` (clang) turns a forgotten lock into a compile
// error. Under GCC every macro expands to nothing and Mutex degrades to a
// zero-cost veneer over std::mutex, so the annotations cost nothing in the
// default toolchain; CI runs the clang configuration with the warnings
// promoted to errors (see .github/workflows/ci.yml, job `analyze`).
//
// The deterministic core (src/sim, src/protocol, src/adversary,
// src/baselines) stays single-threaded by design — rcommit_lint R2 bans
// threading primitives there, including these wrappers, and this header is
// for the layers R2 explicitly exempts: swarm/, transport/, db/, and the
// fault injectors.
// RCOMMIT_LINT_ALLOW_FILE(R2): this header defines the annotated lock vocabulary the threaded layers are required to use; it introduces no concurrency itself
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>

#if defined(__clang__)
#define RCOMMIT_TS_ATTR(x) __attribute__((x))
#else
#define RCOMMIT_TS_ATTR(x)  // no-op outside clang
#endif

#define CAPABILITY(x) RCOMMIT_TS_ATTR(capability(x))
#define SCOPED_CAPABILITY RCOMMIT_TS_ATTR(scoped_lockable)
#define GUARDED_BY(x) RCOMMIT_TS_ATTR(guarded_by(x))
#define PT_GUARDED_BY(x) RCOMMIT_TS_ATTR(pt_guarded_by(x))
#define REQUIRES(...) RCOMMIT_TS_ATTR(requires_capability(__VA_ARGS__))
#define ACQUIRE(...) RCOMMIT_TS_ATTR(acquire_capability(__VA_ARGS__))
#define RELEASE(...) RCOMMIT_TS_ATTR(release_capability(__VA_ARGS__))
#define TRY_ACQUIRE(...) RCOMMIT_TS_ATTR(try_acquire_capability(__VA_ARGS__))
#define EXCLUDES(...) RCOMMIT_TS_ATTR(locks_excluded(__VA_ARGS__))
#define RETURN_CAPABILITY(x) RCOMMIT_TS_ATTR(lock_returned(x))
#define NO_THREAD_SAFETY_ANALYSIS RCOMMIT_TS_ATTR(no_thread_safety_analysis)

namespace rcommit {

/// std::mutex declared as a capability so members can be GUARDED_BY it.
/// BasicLockable, so it also works directly with condition_variable_any.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() ACQUIRE() { mu_.lock(); }
  void unlock() RELEASE() { mu_.unlock(); }
  bool try_lock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  std::mutex mu_;
};

/// RAII lock over Mutex; the scoped-capability shape the analysis tracks.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable over Mutex. Waits REQUIRE the mutex held — exactly
/// the contract std::condition_variable documents but cannot enforce.
/// (condition_variable_any unlocks/relocks the BasicLockable itself.)
class CondVar {
 public:
  template <typename Pred>
  void wait(Mutex& mu, Pred pred) REQUIRES(mu) {
    cv_.wait(mu, std::move(pred));
  }

  template <typename Rep, typename Period, typename Pred>
  bool wait_for(Mutex& mu, std::chrono::duration<Rep, Period> timeout,
                Pred pred) REQUIRES(mu) {
    return cv_.wait_for(mu, timeout, std::move(pred));
  }

  /// Predicate-free bounded waits, for callers whose loop re-derives state
  /// after every wakeup. Prefer these over the predicate forms when the
  /// predicate would read GUARDED_BY members: a lambda body is analyzed as
  /// its own function, where the mutex is not known to be held.
  template <typename Rep, typename Period>
  std::cv_status wait_for(Mutex& mu,
                          std::chrono::duration<Rep, Period> timeout)
      REQUIRES(mu) {
    return cv_.wait_for(mu, timeout);
  }

  template <typename Clock, typename Duration>
  std::cv_status wait_until(Mutex& mu,
                            std::chrono::time_point<Clock, Duration> deadline)
      REQUIRES(mu) {
    return cv_.wait_until(mu, deadline);
  }

  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

}  // namespace rcommit
