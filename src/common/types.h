// Core identifier and value types shared across the library.
//
// The paper models a protocol as a set of n processors identified by small
// integers; processor 0 is the distinguished coordinator of Protocol 2.
#pragma once

#include <cstdint>
#include <limits>
#include <string>

namespace rcommit {

/// Identifies one of the n processors in a protocol instance.
/// Valid ids are 0..n-1; kNoProc marks "no processor".
using ProcId = int32_t;
inline constexpr ProcId kNoProc = -1;

/// A processor's clock value: the number of steps it has taken (paper §2.1,
/// "there is an integer in each processor's state, called its clock").
using Tick = int64_t;

/// Global event index within a run (position in the schedule).
using EventIndex = int64_t;

/// Identifies a message instance within a run (assigned at send time).
using MsgId = int64_t;
inline constexpr MsgId kNoMsg = -1;

/// The binary values exchanged by the agreement subroutine.
/// The transaction-commit mapping is 0 = abort, 1 = commit (paper §1).
enum class Decision : uint8_t {
  kAbort = 0,
  kCommit = 1,
};

/// Human-readable name for a decision value.
inline const char* to_string(Decision d) {
  return d == Decision::kCommit ? "COMMIT" : "ABORT";
}

/// Converts the paper's {0,1} value encoding to a Decision.
inline Decision decision_from_bit(int bit) {
  return bit == 0 ? Decision::kAbort : Decision::kCommit;
}

/// Converts a Decision to the paper's {0,1} encoding.
inline int bit_from_decision(Decision d) { return d == Decision::kCommit ? 1 : 0; }

/// Parameters common to every protocol instance.
///
/// Invariant: 0 <= t and n >= 1. The paper's protocols additionally require
/// n > 2t for liveness (Theorem 14 proves this is necessary); we permit
/// constructing instances with n <= 2t so the graceful-degradation
/// experiments (Theorem 11) can demonstrate blocking.
struct SystemParams {
  int32_t n = 0;         ///< number of processors
  int32_t t = 0;         ///< maximum number of crash faults tolerated
  Tick k = 1;            ///< K, the on-time message delivery bound (paper §2.2)

  /// True iff the fault bound permits a live protocol (Theorem 14).
  [[nodiscard]] bool majority_correct() const { return n > 2 * t; }

  /// The quorum size n - t used throughout Protocol 1.
  [[nodiscard]] int32_t quorum() const { return n - t; }
};

}  // namespace rcommit
