// Minimal command-line flag parsing for the examples, the scenario CLI, and
// the benchmark harness.
//
// Supports --name=value and --name value forms, typed lookups with defaults,
// and --help/usage text assembly. Deliberately tiny: no subcommands, no
// repetition, no abbreviations.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace rcommit {

/// One documented flag for usage output: `--name=<value>  help`.
struct FlagDoc {
  std::string name;   ///< without the leading "--"
  std::string value;  ///< value placeholder, e.g. "N" or "path"; empty = boolean
  std::string help;
};

class Flags {
 public:
  /// Parses argv. Throws CheckFailure on malformed input (missing value,
  /// unexpected positional argument).
  static Flags parse(int argc, const char* const* argv);

  [[nodiscard]] bool has(const std::string& name) const;

  /// Typed getters; return `fallback` when the flag is absent. Throw
  /// CheckFailure when present but unparsable.
  [[nodiscard]] std::string get_string(const std::string& name,
                                       const std::string& fallback) const;
  [[nodiscard]] int64_t get_int(const std::string& name, int64_t fallback) const;
  [[nodiscard]] double get_double(const std::string& name, double fallback) const;
  [[nodiscard]] bool get_bool(const std::string& name, bool fallback) const;

  /// Flags seen but never queried — typo detection for the CLI.
  [[nodiscard]] std::vector<std::string> unused() const;

  /// Program name (argv[0]).
  [[nodiscard]] const std::string& program() const { return program_; }

  /// Prints `usage: <program> [--flag=<v>]...` plus one aligned line per
  /// documented flag.
  static void print_usage(std::ostream& os, const std::string& program,
                          const std::string& summary,
                          const std::vector<FlagDoc>& docs);

  /// The unknown-flag guard every CLI should end its flag handling with:
  /// if any parsed flag was never queried, prints "unknown flag --x" plus
  /// the usage text to `os` and returns false. Call after all get_*/has
  /// lookups so `unused()` reflects the full flag vocabulary.
  [[nodiscard]] bool check_unknown(std::ostream& os, const std::string& summary,
                                   const std::vector<FlagDoc>& docs) const;

 private:
  std::string program_;
  std::map<std::string, std::string> values_;
  mutable std::map<std::string, bool> queried_;
};

}  // namespace rcommit
