#include "common/json.h"

#include <cstdio>
#include <cstdlib>

#include "common/check.h"

namespace rcommit::json {

std::string JsonWriter::escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::comma_if_needed() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (!has_elements_.empty()) {
    if (has_elements_.back()) out_ += ',';
    has_elements_.back() = true;
  }
}

void JsonWriter::begin_object() {
  comma_if_needed();
  out_ += '{';
  has_elements_.push_back(false);
}

void JsonWriter::end_object() {
  has_elements_.pop_back();
  out_ += '}';
}

void JsonWriter::begin_array() {
  comma_if_needed();
  out_ += '[';
  has_elements_.push_back(false);
}

void JsonWriter::end_array() {
  has_elements_.pop_back();
  out_ += ']';
}

JsonWriter& JsonWriter::key(std::string_view name) {
  comma_if_needed();
  out_ += '"';
  out_ += escape(name);
  out_ += "\":";
  after_key_ = true;
  return *this;
}

void JsonWriter::value(std::string_view s) {
  comma_if_needed();
  out_ += '"';
  out_ += escape(s);
  out_ += '"';
}

void JsonWriter::raw(std::string_view json) {
  comma_if_needed();
  out_ += json;
}

void JsonWriter::value(int64_t v) {
  comma_if_needed();
  out_ += std::to_string(v);
}

void JsonWriter::value(uint64_t v) {
  comma_if_needed();
  out_ += std::to_string(v);
}

void JsonWriter::value(double v) {
  comma_if_needed();
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.4f", v);
  out_ += buf;
}

void JsonWriter::value(bool v) {
  comma_if_needed();
  out_ += v ? "true" : "false";
}

// ---------------------------------------------------------------------------
// JsonValue accessors.
// ---------------------------------------------------------------------------

bool JsonValue::as_bool() const {
  RCOMMIT_CHECK_MSG(kind_ == Kind::kBool, "JSON value is not a boolean");
  return bool_;
}

double JsonValue::as_double() const {
  RCOMMIT_CHECK_MSG(kind_ == Kind::kNumber, "JSON value is not a number");
  return number_;
}

int64_t JsonValue::as_int() const {
  RCOMMIT_CHECK_MSG(kind_ == Kind::kNumber, "JSON value is not a number");
  const auto v = static_cast<int64_t>(number_);
  RCOMMIT_CHECK_MSG(static_cast<double>(v) == number_,
                    "JSON number " << number_ << " is not integral");
  return v;
}

const std::string& JsonValue::as_string() const {
  RCOMMIT_CHECK_MSG(kind_ == Kind::kString, "JSON value is not a string");
  return string_;
}

size_t JsonValue::size() const {
  RCOMMIT_CHECK_MSG(kind_ == Kind::kArray, "JSON value is not an array");
  return array_.size();
}

const JsonValue& JsonValue::at(size_t index) const {
  RCOMMIT_CHECK_MSG(kind_ == Kind::kArray, "JSON value is not an array");
  RCOMMIT_CHECK_MSG(index < array_.size(),
                    "JSON array index " << index << " out of range (size "
                                        << array_.size() << ")");
  return array_[index];
}

const std::vector<JsonValue>& JsonValue::items() const {
  RCOMMIT_CHECK_MSG(kind_ == Kind::kArray, "JSON value is not an array");
  return array_;
}

bool JsonValue::has(const std::string& key) const {
  RCOMMIT_CHECK_MSG(kind_ == Kind::kObject, "JSON value is not an object");
  return object_.count(key) > 0;
}

const JsonValue& JsonValue::at(const std::string& key) const {
  RCOMMIT_CHECK_MSG(kind_ == Kind::kObject, "JSON value is not an object");
  const auto it = object_.find(key);
  RCOMMIT_CHECK_MSG(it != object_.end(), "JSON object has no key '" << key << "'");
  return it->second;
}

std::string JsonValue::get_string(const std::string& key,
                                  const std::string& fallback) const {
  return has(key) ? at(key).as_string() : fallback;
}

double JsonValue::get_double(const std::string& key, double fallback) const {
  return has(key) ? at(key).as_double() : fallback;
}

int64_t JsonValue::get_int(const std::string& key, int64_t fallback) const {
  return has(key) ? at(key).as_int() : fallback;
}

bool JsonValue::get_bool(const std::string& key, bool fallback) const {
  return has(key) ? at(key).as_bool() : fallback;
}

JsonValue JsonValue::make_bool(bool b) {
  JsonValue v;
  v.kind_ = Kind::kBool;
  v.bool_ = b;
  return v;
}

JsonValue JsonValue::make_number(double d) {
  JsonValue v;
  v.kind_ = Kind::kNumber;
  v.number_ = d;
  return v;
}

JsonValue JsonValue::make_string(std::string s) {
  JsonValue v;
  v.kind_ = Kind::kString;
  v.string_ = std::move(s);
  return v;
}

JsonValue JsonValue::make_array(std::vector<JsonValue> items) {
  JsonValue v;
  v.kind_ = Kind::kArray;
  v.array_ = std::move(items);
  return v;
}

JsonValue JsonValue::make_object(std::map<std::string, JsonValue> members) {
  JsonValue v;
  v.kind_ = Kind::kObject;
  v.object_ = std::move(members);
  return v;
}

// ---------------------------------------------------------------------------
// Parser: recursive descent, depth-limited, byte-offset errors.
// ---------------------------------------------------------------------------

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    const JsonValue v = parse_value(0);
    skip_ws();
    RCOMMIT_CHECK_MSG(pos_ == text_.size(),
                      "trailing garbage at byte " << pos_ << " of JSON input");
    return v;
  }

 private:
  static constexpr int kMaxDepth = 64;

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    RCOMMIT_CHECK_MSG(pos_ < text_.size(),
                      "unexpected end of JSON input at byte " << pos_);
    return text_[pos_];
  }

  void expect(char c) {
    RCOMMIT_CHECK_MSG(peek() == c, "expected '" << c << "' at byte " << pos_
                                                << ", got '" << text_[pos_] << "'");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.compare(pos_, lit.size(), lit) != 0) return false;
    pos_ += lit.size();
    return true;
  }

  JsonValue parse_value(int depth) {
    RCOMMIT_CHECK_MSG(depth < kMaxDepth, "JSON nesting deeper than " << kMaxDepth);
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{': return parse_object(depth);
      case '[': return parse_array(depth);
      case '"': return JsonValue::make_string(parse_string());
      case 't':
        RCOMMIT_CHECK_MSG(consume_literal("true"),
                          "malformed literal at byte " << pos_);
        return JsonValue::make_bool(true);
      case 'f':
        RCOMMIT_CHECK_MSG(consume_literal("false"),
                          "malformed literal at byte " << pos_);
        return JsonValue::make_bool(false);
      case 'n':
        RCOMMIT_CHECK_MSG(consume_literal("null"),
                          "malformed literal at byte " << pos_);
        return JsonValue::make_null();
      default:
        return parse_number();
    }
  }

  JsonValue parse_object(int depth) {
    expect('{');
    std::map<std::string, JsonValue> members;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return JsonValue::make_object(std::move(members));
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      members.insert_or_assign(std::move(key), parse_value(depth + 1));
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return JsonValue::make_object(std::move(members));
    }
  }

  JsonValue parse_array(int depth) {
    expect('[');
    std::vector<JsonValue> items;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return JsonValue::make_array(std::move(items));
    }
    while (true) {
      items.push_back(parse_value(depth + 1));
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return JsonValue::make_array(std::move(items));
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      RCOMMIT_CHECK_MSG(pos_ < text_.size(),
                        "unterminated JSON string at byte " << pos_);
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      RCOMMIT_CHECK_MSG(pos_ < text_.size(),
                        "unterminated escape at byte " << pos_);
      const char e = text_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          RCOMMIT_CHECK_MSG(pos_ + 4 <= text_.size(),
                            "truncated \\u escape at byte " << pos_);
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            unsigned digit = 0;
            if (h >= '0' && h <= '9') {
              digit = static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              digit = static_cast<unsigned>(h - 'a') + 10;
            } else if (h >= 'A' && h <= 'F') {
              digit = static_cast<unsigned>(h - 'A') + 10;
            } else {
              RCOMMIT_CHECK_MSG(false, "bad hex digit in \\u escape at byte "
                                           << pos_ - 1);
            }
            code = code * 16 + digit;
          }
          // The writer only emits \u00xx for control bytes; decode the
          // general BMP case as UTF-8 anyway so standard JSON round-trips.
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          RCOMMIT_CHECK_MSG(false, "unknown escape '\\" << e << "' at byte "
                                                        << pos_ - 1);
      }
    }
  }

  JsonValue parse_number() {
    const size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    auto digits = [&] {
      const size_t before = pos_;
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') ++pos_;
      return pos_ > before;
    };
    RCOMMIT_CHECK_MSG(digits(), "malformed JSON number at byte " << start);
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      RCOMMIT_CHECK_MSG(digits(), "malformed JSON fraction at byte " << start);
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) ++pos_;
      RCOMMIT_CHECK_MSG(digits(), "malformed JSON exponent at byte " << start);
    }
    const std::string token(text_.substr(start, pos_ - start));
    return JsonValue::make_number(std::strtod(token.c_str(), nullptr));
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

JsonValue parse(std::string_view text) { return Parser(text).parse_document(); }

}  // namespace rcommit::json
