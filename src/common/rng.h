// Deterministic random number generation.
//
// The paper gives each processor a private random tape: "The random number
// generator supplies an infinite sequence of real numbers, distributed
// uniformly over the interval [0,1)" (§2.1), and processors draw bits via
// flip(i). RandomTape reproduces that interface deterministically: a run is a
// pure function of (adversary, initial configuration, seeds), which the
// simulator exploits for replayable experiments.
#pragma once

#include <cstdint>
#include <vector>

#include "common/check.h"

namespace rcommit {

/// SplitMix64: used to derive independent stream seeds from one master seed.
/// Reference: Steele, Lea & Flood, "Fast Splittable Pseudorandom Number
/// Generators" (OOPSLA 2014).
class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed) : state_(seed) {}

  uint64_t next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  uint64_t state_;
};

/// xoshiro256** — small, fast, high-quality generator (Blackman & Vigna).
class Xoshiro256 {
 public:
  explicit Xoshiro256(uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : s_) s = sm.next();
  }

  uint64_t next() {
    const uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

 private:
  static uint64_t rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
  uint64_t s_[4]{};
};

/// A processor's private random tape (paper §2.1).
///
/// Supplies uniform reals in [0,1), single coin flips, and flip(i) bit
/// strings. Tracks how many draws have been consumed so analyses like the
/// paper's random(p, s) bookkeeping (Lemma 4 machinery) can be reproduced.
class RandomTape {
 public:
  explicit RandomTape(uint64_t seed) : gen_(seed) {}

  /// Next uniform real in [0,1).
  double next_real() {
    ++draws_;
    // 53 high bits -> double in [0,1).
    return static_cast<double>(gen_.next() >> 11) * 0x1.0p-53;
  }

  /// One fair coin flip in {0,1}.
  int flip() { return next_real() < 0.5 ? 0 : 1; }

  /// The paper's flip(i): i independent random bits.
  std::vector<uint8_t> flip_bits(int count) {
    RCOMMIT_CHECK(count >= 0);
    std::vector<uint8_t> bits(static_cast<size_t>(count));
    for (auto& b : bits) b = static_cast<uint8_t>(flip());
    return bits;
  }

  /// Uniform integer in [0, bound). bound must be positive.
  uint64_t next_below(uint64_t bound) {
    RCOMMIT_CHECK(bound > 0);
    ++draws_;
    // Rejection-free Lemire-style bounded draw is overkill here; the modulo
    // bias at 64 bits is negligible for simulation scheduling.
    return gen_.next() % bound;
  }

  /// Number of random draws consumed so far.
  [[nodiscard]] int64_t draws() const { return draws_; }

 private:
  Xoshiro256 gen_;
  int64_t draws_ = 0;
};

/// Derives per-processor tape seeds from a single master seed, so an entire
/// run is reproducible from one integer.
std::vector<uint64_t> derive_seeds(uint64_t master_seed, int count);

}  // namespace rcommit
