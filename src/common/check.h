// Precondition / invariant checking helpers.
//
// RCOMMIT_CHECK is always on (benchmarks included): a violated invariant in a
// consensus protocol is a correctness bug and must never be silently ignored.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace rcommit {

/// Thrown when a CHECK fails. Deliberately distinct from std::logic_error so
/// tests can assert on the specific failure class.
class CheckFailure : public std::logic_error {
 public:
  explicit CheckFailure(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] inline void check_fail(const char* expr, const char* file, int line,
                                    const std::string& msg) {
  std::ostringstream os;
  os << "CHECK failed: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw CheckFailure(os.str());
}
}  // namespace detail

}  // namespace rcommit

/// Aborts (by throwing CheckFailure) if `cond` is false.
#define RCOMMIT_CHECK(cond)                                                \
  do {                                                                     \
    if (!(cond)) ::rcommit::detail::check_fail(#cond, __FILE__, __LINE__, ""); \
  } while (0)

/// Like RCOMMIT_CHECK but with a streamed message, e.g.
/// RCOMMIT_CHECK_MSG(x > 0, "x=" << x).
#define RCOMMIT_CHECK_MSG(cond, stream_expr)                         \
  do {                                                               \
    if (!(cond)) {                                                   \
      std::ostringstream rcommit_check_os_;                          \
      rcommit_check_os_ << stream_expr;                              \
      ::rcommit::detail::check_fail(#cond, __FILE__, __LINE__,       \
                                    rcommit_check_os_.str());        \
    }                                                                \
  } while (0)
