#include "common/stats.h"

#include <iomanip>
#include <ostream>
#include <sstream>

#include "common/check.h"

namespace rcommit {

void RunningStat::add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStat::variance() const {
  return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
}

double Samples::mean() const {
  if (values_.empty()) return 0.0;
  double sum = 0.0;
  for (double v : values_) sum += v;
  return sum / static_cast<double>(values_.size());
}

double Samples::max() const {
  if (values_.empty()) return 0.0;
  return *std::max_element(values_.begin(), values_.end());
}

double Samples::min() const {
  if (values_.empty()) return 0.0;
  return *std::min_element(values_.begin(), values_.end());
}

double Samples::percentile(double q) const {
  RCOMMIT_CHECK(q >= 0.0 && q <= 1.0);
  if (values_.empty()) return 0.0;
  std::vector<double> sorted = values_;
  std::sort(sorted.begin(), sorted.end());
  auto rank = static_cast<size_t>(q * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(rank, sorted.size() - 1)];
}

Histogram::Histogram(int bucket_count) {
  RCOMMIT_CHECK(bucket_count >= 1);
  buckets_.assign(static_cast<size_t>(bucket_count), 0);
}

void Histogram::add(double value) {
  RCOMMIT_CHECK(value >= 0.0);
  auto index = static_cast<size_t>(value);
  if (index >= buckets_.size()) index = buckets_.size() - 1;
  ++buckets_[index];
  ++total_;
}

int64_t Histogram::bucket(int index) const {
  RCOMMIT_CHECK(index >= 0 && static_cast<size_t>(index) < buckets_.size());
  return buckets_[static_cast<size_t>(index)];
}

void Histogram::print(std::ostream& os, int max_bar_width) const {
  RCOMMIT_CHECK(max_bar_width >= 1);
  int64_t max_count = 1;
  for (int64_t c : buckets_) max_count = std::max(max_count, c);
  for (size_t i = 0; i < buckets_.size(); ++i) {
    if (buckets_[i] == 0) continue;
    const auto width = static_cast<int>(
        (buckets_[i] * max_bar_width + max_count - 1) / max_count);
    os << std::setw(4) << i << (i + 1 == buckets_.size() ? "+" : " ") << " | "
       << std::string(static_cast<size_t>(width), '#') << ' ' << buckets_[i]
       << '\n';
  }
}

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

Table& Table::row(std::vector<std::string> cells) {
  RCOMMIT_CHECK(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
  return *this;
}

void Table::print(std::ostream& os) const {
  std::vector<size_t> widths(headers_.size());
  for (size_t i = 0; i < headers_.size(); ++i) widths[i] = headers_[i].size();
  for (const auto& row : rows_) {
    for (size_t i = 0; i < row.size(); ++i) widths[i] = std::max(widths[i], row[i].size());
  }
  auto print_row = [&](const std::vector<std::string>& cells) {
    os << "|";
    for (size_t i = 0; i < cells.size(); ++i) {
      os << ' ' << std::setw(static_cast<int>(widths[i])) << std::left << cells[i] << " |";
    }
    os << '\n';
  };
  print_row(headers_);
  os << "|";
  for (size_t w : widths) os << std::string(w + 2, '-') << "|";
  os << '\n';
  for (const auto& row : rows_) print_row(row);
}

std::string Table::str() const {
  std::ostringstream os;
  print(os);
  return os.str();
}

std::string Table::num(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string Table::num(int64_t v) { return std::to_string(v); }

}  // namespace rcommit
