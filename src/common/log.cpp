// RCOMMIT_LINT_ALLOW_FILE(R2): see log.h — output serialization only
#include "common/log.h"

namespace rcommit {

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

void Logger::write(LogLevel level, const std::string& line) {
  std::lock_guard<std::mutex> lock(mu_);
  (level == LogLevel::kError ? std::cerr : std::clog) << line << '\n';
}

}  // namespace rcommit
