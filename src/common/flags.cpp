#include "common/flags.h"

#include <algorithm>
#include <cstdlib>
#include <ostream>

#include "common/check.h"

namespace rcommit {

Flags Flags::parse(int argc, const char* const* argv) {
  Flags flags;
  if (argc > 0) flags.program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    RCOMMIT_CHECK_MSG(arg.rfind("--", 0) == 0,
                      "unexpected positional argument: " << arg);
    arg = arg.substr(2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      flags.values_[arg.substr(0, eq)] = arg.substr(eq + 1);
      continue;
    }
    // --name value, or bare --name (boolean true).
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      flags.values_[arg] = argv[++i];
    } else {
      flags.values_[arg] = "true";
    }
  }
  return flags;
}

bool Flags::has(const std::string& name) const {
  queried_[name] = true;
  return values_.count(name) > 0;
}

std::string Flags::get_string(const std::string& name,
                              const std::string& fallback) const {
  queried_[name] = true;
  auto it = values_.find(name);
  return it == values_.end() ? fallback : it->second;
}

int64_t Flags::get_int(const std::string& name, int64_t fallback) const {
  queried_[name] = true;
  auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  char* end = nullptr;
  const int64_t value = std::strtoll(it->second.c_str(), &end, 10);
  RCOMMIT_CHECK_MSG(end != nullptr && *end == '\0' && !it->second.empty(),
                    "flag --" << name << " is not an integer: " << it->second);
  return value;
}

double Flags::get_double(const std::string& name, double fallback) const {
  queried_[name] = true;
  auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  char* end = nullptr;
  const double value = std::strtod(it->second.c_str(), &end);
  RCOMMIT_CHECK_MSG(end != nullptr && *end == '\0' && !it->second.empty(),
                    "flag --" << name << " is not a number: " << it->second);
  return value;
}

bool Flags::get_bool(const std::string& name, bool fallback) const {
  queried_[name] = true;
  auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  const std::string& v = it->second;
  if (v == "true" || v == "1" || v == "yes") return true;
  if (v == "false" || v == "0" || v == "no") return false;
  RCOMMIT_CHECK_MSG(false, "flag --" << name << " is not a boolean: " << v);
  return fallback;
}

void Flags::print_usage(std::ostream& os, const std::string& program,
                        const std::string& summary,
                        const std::vector<FlagDoc>& docs) {
  os << "usage: " << program << " [flags]\n";
  if (!summary.empty()) os << "  " << summary << "\n";
  size_t width = 0;
  std::vector<std::string> spellings;
  spellings.reserve(docs.size());
  for (const auto& doc : docs) {
    std::string spelling = "--" + doc.name;
    if (!doc.value.empty()) spelling += "=<" + doc.value + ">";
    width = std::max(width, spelling.size());
    spellings.push_back(std::move(spelling));
  }
  for (size_t i = 0; i < docs.size(); ++i) {
    os << "  " << spellings[i] << std::string(width - spellings[i].size() + 2, ' ')
       << docs[i].help << "\n";
  }
}

bool Flags::check_unknown(std::ostream& os, const std::string& summary,
                          const std::vector<FlagDoc>& docs) const {
  const auto unknown = unused();
  if (unknown.empty()) return true;
  for (const auto& name : unknown) {
    os << program_ << ": unknown flag --" << name << "\n";
  }
  print_usage(os, program_, summary, docs);
  return false;
}

std::vector<std::string> Flags::unused() const {
  std::vector<std::string> out;
  for (const auto& [name, _] : values_) {
    if (queried_.count(name) == 0) out.push_back(name);
  }
  return out;
}

}  // namespace rcommit
