#include "common/payload_pool.h"

#include <algorithm>

#include "common/check.h"

namespace rcommit {
namespace {

// One active pool per thread. A raw pointer-to-shared_ptr (rather than a
// thread_local shared_ptr) keeps scope install/restore at two pointer moves
// and avoids a static destructor racing chunk teardown at thread exit.
thread_local const std::shared_ptr<PayloadPool>* t_active_pool = nullptr;

const std::shared_ptr<PayloadPool> kNoPool;

}  // namespace

PayloadPool::PayloadPool(Config config) : config_(config) {
  RCOMMIT_CHECK_MSG(config_.block_size >= 32 && config_.block_size % 16 == 0,
                    "PayloadPool block_size must be a multiple of 16, >= 32");
  RCOMMIT_CHECK(config_.blocks_per_chunk > 0);
}

// RCOMMIT_ANALYZE_ROOT(A1): the pool fast path — heap traffic only through the grow()/fallback frontiers
void* PayloadPool::allocate(size_t bytes, size_t alignment) {
  if (bytes > config_.block_size || alignment > 16) {
    ++stats_.fallback_allocs;
    return nullptr;
  }
  if (free_head_ == nullptr) {
    if (config_.max_blocks != 0 && stats_.blocks_total >= config_.max_blocks) {
      ++stats_.fallback_allocs;
      return nullptr;
    }
    grow();
  }
  void* block = free_head_;
  free_head_ = *static_cast<void**>(block);
  ++stats_.pool_allocs;
  --stats_.blocks_free;
  return block;
}

bool PayloadPool::deallocate(void* p) {
  if (!owns(p)) return false;
  *static_cast<void**>(p) = free_head_;
  free_head_ = p;
  ++stats_.pool_frees;
  ++stats_.blocks_free;
  return true;
}

bool PayloadPool::owns(const void* p) const {
  const auto* b = static_cast<const std::byte*>(p);
  for (const Chunk& chunk : chunks_) {
    if (b >= chunk.bytes.get() && b < chunk.bytes.get() + chunk.size) {
      return true;
    }
  }
  return false;
}

// RCOMMIT_ANALYZE_ALLOW(A1): the amortized growth frontier — one chunk per free-list refill, visible in Stats::blocks_total; steady state never enters
void PayloadPool::grow() {
  size_t blocks = config_.blocks_per_chunk;
  if (config_.max_blocks != 0) {
    blocks = std::min(blocks, config_.max_blocks - stats_.blocks_total);
  }
  Chunk chunk;
  chunk.size = blocks * config_.block_size;
  // new[] of std::byte yields 16-byte-aligned storage via operator new[]
  // (block_size is a multiple of 16, so every block keeps that alignment).
  chunk.bytes = std::make_unique<std::byte[]>(chunk.size);
  std::byte* base = chunk.bytes.get();
  // Thread the fresh blocks onto the free list back-to-front so they pop in
  // address order — deterministic and cache-friendly.
  for (size_t i = blocks; i-- > 0;) {
    void* block = base + i * config_.block_size;
    *static_cast<void**>(block) = free_head_;
    free_head_ = block;
  }
  stats_.blocks_total += blocks;
  stats_.blocks_free += blocks;
  chunks_.push_back(std::move(chunk));
}

PayloadPoolScope::PayloadPoolScope(std::shared_ptr<PayloadPool> pool)
    : pool_(std::move(pool)), previous_(t_active_pool) {
  t_active_pool = pool_ ? &pool_ : nullptr;
}

PayloadPoolScope::~PayloadPoolScope() { t_active_pool = previous_; }

const std::shared_ptr<PayloadPool>& active_payload_pool() {
  return t_active_pool != nullptr ? *t_active_pool : kNoPool;
}

}  // namespace rcommit
