// Minimal leveled logging.
//
// Logging is off by default so that benchmark numbers are not polluted by
// I/O; tests and examples flip the level when tracing a scenario.
// RCOMMIT_LINT_ALLOW_FILE(R2): the logger is shared by the swarm pool and the RPC server; its one mutex serializes output, never simulation state
#pragma once

#include <iostream>
#include <mutex>
#include <sstream>
#include <string>

namespace rcommit {

enum class LogLevel : int {
  kOff = 0,
  kError = 1,
  kInfo = 2,
  kDebug = 3,
};

/// Process-wide log configuration.
class Logger {
 public:
  static Logger& instance();

  void set_level(LogLevel level) { level_ = level; }
  [[nodiscard]] LogLevel level() const { return level_; }

  /// Writes one line atomically (the threaded runtime logs concurrently).
  void write(LogLevel level, const std::string& line);

 private:
  Logger() = default;
  LogLevel level_ = LogLevel::kOff;
  std::mutex mu_;
};

namespace detail {
inline const char* level_tag(LogLevel l) {
  switch (l) {
    case LogLevel::kError: return "E";
    case LogLevel::kInfo: return "I";
    case LogLevel::kDebug: return "D";
    case LogLevel::kOff: return "?";  // kOff emits nothing; tag is unreachable
  }
  return "?";
}
}  // namespace detail

}  // namespace rcommit

#define RCOMMIT_LOG(level, stream_expr)                                      \
  do {                                                                       \
    if (static_cast<int>(::rcommit::Logger::instance().level()) >=           \
        static_cast<int>(level)) {                                           \
      std::ostringstream rcommit_log_os_;                                    \
      rcommit_log_os_ << "[" << ::rcommit::detail::level_tag(level) << "] "  \
                      << stream_expr;                                        \
      ::rcommit::Logger::instance().write(level, rcommit_log_os_.str());     \
    }                                                                        \
  } while (0)

#define RCOMMIT_LOG_INFO(stream_expr) RCOMMIT_LOG(::rcommit::LogLevel::kInfo, stream_expr)
#define RCOMMIT_LOG_DEBUG(stream_expr) RCOMMIT_LOG(::rcommit::LogLevel::kDebug, stream_expr)
#define RCOMMIT_LOG_ERROR(stream_expr) RCOMMIT_LOG(::rcommit::LogLevel::kError, stream_expr)
