#include "common/rng.h"

namespace rcommit {

std::vector<uint64_t> derive_seeds(uint64_t master_seed, int count) {
  RCOMMIT_CHECK(count >= 0);
  SplitMix64 sm(master_seed);
  std::vector<uint64_t> seeds(static_cast<size_t>(count));
  for (auto& s : seeds) s = sm.next();
  return seeds;
}

}  // namespace rcommit
