// E15 — durability under crash-point fault injection.
//
// The paper's §1 guarantee — a transaction's updates are installed "at all
// processors or at no processor" — is only as strong as the durability layer
// it stands on. This bench drives the crash-point torture suite
// (src/faultinject) as a measurement: an exhaustive (site × kind) sweep of
// WAL crash points must recover equivalently to the reference state machine
// at every point, the zero-fault instrumentation must be byte-identical to
// an uninstrumented run, and the overhead of carrying the injection hook on
// the hot append path is reported.
#include <chrono>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "common/stats.h"
#include "db/kv.h"
#include "faultinject/torture.h"
#include "metrics/report.h"

namespace {

using namespace rcommit;
namespace fs = std::filesystem;

fs::path scratch_root() {
  return fs::temp_directory_path() /
         ("rcommit_bench_durability_" + std::to_string(::getpid()));
}

std::vector<uint8_t> file_bytes(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

/// Appends `appends` single-write prepares and times them; `hook` nullptr
/// measures the uninstrumented WAL.
double append_rate(const fs::path& dir, int appends, db::WalFaultHook* hook) {
  fs::remove_all(dir);
  fs::create_directories(dir);
  db::KvStore store(dir / "shard.wal");
  if (hook != nullptr) store.set_fault_hook(hook);
  // Real disk I/O is the measurement here, not a simulation input.
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < appends; ++i) {
    store.prepare(i + 1, {{"k" + std::to_string(i), "v"}});
    store.commit(i + 1);
  }
  const auto end = std::chrono::steady_clock::now();
  const auto elapsed = std::chrono::duration<double>(end - start).count();
  return static_cast<double>(appends) / elapsed;
}

void body(bench::Context& ctx) {
  using rcommit::Table;
  const fs::path root = scratch_root();
  fs::remove_all(root);

  // --- recovery equivalence: the exhaustive crash-point sweep -------------
  faultinject::TortureOptions options;
  options.seed = ctx.derive_seed(15);
  options.txns = ctx.quick() ? 3 : 4;
  options.scratch_dir = root / "sweep";
  const auto sweep =
      faultinject::run_wal_sweep(options, {.threads = ctx.quick() ? 2 : 4});

  ctx.out() << "E15: exhaustive WAL crash-point sweep, " << sweep.sites
            << " sites x 5 fault kinds = " << sweep.crash_points
            << " crash points\n\n";
  Table table({"check", "crash points", "failures"});
  table.row({"recovery equivalence", Table::num(sweep.crash_points),
             Table::num(static_cast<int64_t>(sweep.failures.size()))});
  ctx.scalar("crash_points", static_cast<double>(sweep.crash_points));
  ctx.scalar("sweep_failures", static_cast<double>(sweep.failures.size()));
  ctx.claim({"durability",
             "recovered state equals the committed prefix at every crash point",
             std::to_string(sweep.crash_points) + " crash points, " +
                 std::to_string(sweep.failures.size()) + " failures",
             sweep.ok() && sweep.crash_points > 0});

  // --- zero-fault transparency --------------------------------------------
  faultinject::FaultInjector injector{faultinject::FaultPlan::none()};
  const int appends = ctx.runs(2000, /*quick_floor=*/400);
  const double plain_rate = append_rate(root / "plain", appends, nullptr);
  const double hooked_rate = append_rate(root / "hooked", appends, &injector);
  const bool identical = file_bytes(root / "plain" / "shard.wal") ==
                         file_bytes(root / "hooked" / "shard.wal");
  ctx.claim({"durability",
             "the zero-fault plan leaves the WAL byte-identical to an "
             "uninstrumented run",
             identical ? "byte-identical" : "WAL bytes diverged", identical});

  // --- hook overhead on the append path -----------------------------------
  const double overhead = plain_rate / hooked_rate;
  table.row({"zero-fault byte-identity", Table::num(static_cast<int64_t>(1)),
             Table::num(static_cast<int64_t>(identical ? 0 : 1))});
  ctx.table("durability_checks", table);

  Table rates({"wal append path", "commits/sec"});
  rates.row({"uninstrumented", Table::num(plain_rate, 0)});
  rates.row({"zero-fault hook installed", Table::num(hooked_rate, 0)});
  ctx.table("durability_overhead", rates);
  ctx.scalar("plain_commits_per_sec", plain_rate, "1/s");
  ctx.scalar("hooked_commits_per_sec", hooked_rate, "1/s");
  ctx.scalar("hook_overhead_ratio", overhead);

  std::error_code ec;
  fs::remove_all(root, ec);
}

}  // namespace

int main(int argc, char** argv) {
  return rcommit::bench::run(
      argc, argv,
      {"E15", "bench_durability",
       "crash-point fault injection: recovery equivalence and hook overhead",
       {"durability"}},
      body);
}
