// E14 — shard-service throughput across transports.
//
// The fully message-driven deployment (shard servers + client RPC) timed on
// both network backends: the in-memory network with injected delays and real
// TCP loopback sockets. Not a paper claim — an engineering datum showing the
// protocol's wall-clock cost is dominated by network pacing, not by the
// randomized agreement itself.
#include <chrono>
#include <filesystem>
#include <memory>

#include "bench/harness.h"
#include "common/stats.h"
#include "db/kv.h"
#include "db/rpc.h"
#include "transport/network.h"
#include "transport/tcp.h"

namespace {

using namespace rcommit;
namespace fs = std::filesystem;
using namespace std::chrono_literals;

struct ThroughputResult {
  int committed = 0;
  int in_doubt = 0;
  double txn_per_sec = 0.0;
};

ThroughputResult run_cluster(transport::Network& net, const fs::path& dir,
                             int shards, int txns) {
  std::vector<std::unique_ptr<db::KvStore>> stores;
  std::vector<std::unique_ptr<db::ShardServer>> servers;
  for (int i = 0; i < shards; ++i) {
    stores.push_back(std::make_unique<db::KvStore>(
        dir / ("shard-" + std::to_string(i) + ".wal")));
    servers.push_back(std::make_unique<db::ShardServer>(
        db::ShardServer::Options{.node_id = i,
                                 .seed = 900 + static_cast<uint64_t>(i),
                                 .step_period = std::chrono::microseconds(100)},
        *stores.back(), net));
  }
  net.start();
  for (auto& server : servers) server->start();

  db::DbTxnClient client(shards, net);
  ThroughputResult result;
  // Throughput reporting over real transports — wall time is the
  // measurement, not a simulation input.
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < txns; ++i) {
    const int a = i % shards;
    const int b = (i + 1) % shards;
    const auto outcome = client.execute(
        i + 1,
        {{a, {{"k" + std::to_string(i), "v"}}}, {b, {{"m" + std::to_string(i), "v"}}}},
        3000ms);
    if (!outcome.has_value()) {
      ++result.in_doubt;
    } else if (*outcome == Decision::kCommit) {
      ++result.committed;
    }
  }
  const auto end = std::chrono::steady_clock::now();
  const double elapsed = std::chrono::duration<double>(end - start).count();
  result.txn_per_sec = txns / elapsed;

  for (auto& server : servers) server->stop();
  net.stop();
  return result;
}

fs::path make_dir(const std::string& tag) {
  const fs::path dir = fs::temp_directory_path() /
                       ("rcommit_bench_rpc_" + std::to_string(::getpid()) + "_" + tag);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

void body(bench::Context& ctx) {
  using rcommit::Table;
  const int txns = ctx.runs(40, /*quick_floor=*/12);

  ctx.out() << "E14: shard-service throughput, 2-shard cross-shard transactions,\n"
            << txns << " transactions per cell (wall-clock; machine-dependent)\n\n";

  Table table({"transport", "shards", "committed", "in doubt", "txn/sec"});
  for (int shards : {3, 5}) {
    {
      const auto dir = make_dir("mem" + std::to_string(shards));
      transport::InMemoryNetwork net(shards + 1, 3,
                                     {.min_delay = 30us, .max_delay = 300us});
      const auto r = run_cluster(net, dir, shards, txns);
      table.row({"in-memory (30-300us)", Table::num(static_cast<int64_t>(shards)),
                 Table::num(static_cast<int64_t>(r.committed)),
                 Table::num(static_cast<int64_t>(r.in_doubt)),
                 Table::num(r.txn_per_sec, 1)});
      if (shards == 5) ctx.scalar("mem_txn_per_sec_5shard", r.txn_per_sec, "txn/s");
      std::error_code ec;
      fs::remove_all(dir, ec);
    }
    {
      const auto dir = make_dir("tcp" + std::to_string(shards));
      transport::TcpNetwork net(shards + 1);
      const auto r = run_cluster(net, dir, shards, txns);
      table.row({"TCP loopback", Table::num(static_cast<int64_t>(shards)),
                 Table::num(static_cast<int64_t>(r.committed)),
                 Table::num(static_cast<int64_t>(r.in_doubt)),
                 Table::num(r.txn_per_sec, 1)});
      if (shards == 5) ctx.scalar("tcp_txn_per_sec_5shard", r.txn_per_sec, "txn/s");
      std::error_code ec;
      fs::remove_all(dir, ec);
    }
  }
  ctx.table("rpc_throughput", table);
  ctx.out() << "\nEvery byte — prepare requests, tunnelled agreement rounds, "
               "outcomes, reads —\ncrosses the transport; the commit decision "
               "itself is a handful of milliseconds.\n";
}

}  // namespace

int main(int argc, char** argv) {
  return rcommit::bench::run(
      argc, argv,
      {"E14", "bench_rpc_throughput",
       "shard-service throughput on in-memory and TCP transports", {}},
      body);
}
