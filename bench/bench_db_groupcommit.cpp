// E20 — group-commit WAL + decision-round batching vs the PR 9 engine.
//
// The ungrouped multi-shot engine pays one physical WAL flush per logical
// append and one Protocol 2 round per prepared transaction. Group commit
// coalesces each shard's appends into boundary flushes; decision batching
// folds up to `decision_batch` prepared transactions into ONE simulated
// round (batch id seeds the instance mix, unanimous-yes fast path). This
// bench races the two configurations head to head over the same threaded
// network and gates three claims:
//
//   group_2x_ungrouped      ≥2× the ungrouped committed-txn throughput at
//                           64 clients with decision_batch=8 + group commit
//   group_flush_amortized   <0.25 physical flushes per transaction through
//                           the pipelined path at decision_batch=8
//   group_recovery_equiv    zero recovery-equivalence failures across a
//                           grouped crash-at-every-boundary torture sweep
//
// RCOMMIT_LINT_ALLOW_FILE(R2): the client fleet is real threads by design —
// wall-clock throughput over the threaded transport is the measurement
#include <chrono>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "bench/harness.h"
#include "common/stats.h"
#include "db/multishot.h"
#include "db/txn.h"
#include "faultinject/multitorture.h"
#include "metrics/report.h"

namespace {

using namespace rcommit;
namespace fs = std::filesystem;

// Same WAN-ish links as E19: where round amortization pays, because every
// decision round costs a full latency-bound message exchange.
constexpr std::chrono::microseconds kMinDelay(50);
constexpr std::chrono::microseconds kMaxDelay(500);

fs::path scratch_dir(const std::string& tag) {
  return fs::temp_directory_path() /
         ("rcommit_bench_groupcommit_" + std::to_string(::getpid()) + "_" + tag);
}

struct CellResult {
  db::MultiShotStats stats;
  db::WalStats wal;
  double committed_per_sec = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
};

/// One threaded cell: `clients` threads of cross-shard writes through one
/// MultiShotDb. `batched` switches on the E20 configuration; off reproduces
/// the PR 9 engine exactly (decision_batch=1, per-append flushes).
CellResult run_cell(bool batched, int clients, int txns_per_client,
                    uint64_t seed) {
  const fs::path dir =
      scratch_dir((batched ? "grp" : "plain") + std::to_string(clients));
  fs::remove_all(dir);
  db::MultiShotDb::Options options;
  options.shard_count = 3;
  options.data_dir = dir;
  options.seed = seed;
  options.decision_transport = db::DecisionTransport::kThreadedNetwork;
  options.network = {.min_delay = kMinDelay, .max_delay = kMaxDelay};
  options.max_concurrent_rounds = 16;
  if (batched) {
    options.group_commit = true;
    options.decision_batch = 8;
  }
  db::MultiShotDb database(options);

  std::vector<std::vector<double>> latencies(static_cast<size_t>(clients));
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> fleet;
  fleet.reserve(static_cast<size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    fleet.emplace_back([&, c] {
      auto& mine = latencies[static_cast<size_t>(c)];
      mine.reserve(static_cast<size_t>(txns_per_client));
      for (int i = 0; i < txns_per_client; ++i) {
        const int32_t a = static_cast<int32_t>(c % 3);
        const int32_t b = static_cast<int32_t>((a + 1 + i % 2) % 3);
        const std::string key =
            "c" + std::to_string(c) + ":k" + std::to_string(i);
        const auto txn_start = std::chrono::steady_clock::now();
        (void)database.execute(a, {{a, {{key, "x"}}}, {b, {{key, "x"}}}});
        mine.push_back(std::chrono::duration<double, std::micro>(
                           std::chrono::steady_clock::now() - txn_start)
                           .count());
      }
    });
  }
  for (auto& thread : fleet) thread.join();
  const auto elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  CellResult cell;
  cell.stats = database.stats();
  cell.wal = database.wal_stats();
  cell.committed_per_sec = static_cast<double>(cell.stats.committed) / elapsed;
  Samples merged;
  for (const auto& mine : latencies) {
    for (const double sample : mine) merged.add(sample);
  }
  cell.p50_us = merged.percentile(0.50);
  cell.p99_us = merged.percentile(0.99);
  std::error_code ec;
  fs::remove_all(dir, ec);
  return cell;
}

/// Flush amortization through the deterministic pipelined path: one
/// execute_pipelined batch, flushes counted across all shards.
double pipelined_flushes_per_txn(int txns, uint64_t seed) {
  const fs::path dir = scratch_dir("pipe");
  fs::remove_all(dir);
  db::MultiShotDb::Options options;
  options.shard_count = 3;
  options.data_dir = dir;
  options.seed = seed;
  options.group_commit = true;
  options.decision_batch = 8;
  db::MultiShotDb database(options);
  std::vector<db::GeneratedTxn> batch;
  batch.reserve(static_cast<size_t>(txns));
  for (int i = 0; i < txns; ++i) {
    batch.push_back({{i % 3, {{"k" + std::to_string(i), "x"}}},
                     {(i + 1) % 3, {{"k" + std::to_string(i), "x"}}}});
  }
  (void)database.execute_pipelined(0, batch);
  const db::WalStats wal = database.wal_stats();
  std::error_code ec;
  fs::remove_all(dir, ec);
  return static_cast<double>(wal.flushes) / static_cast<double>(txns);
}

void body(bench::Context& ctx) {
  using rcommit::Table;
  const int txns_per_client = ctx.runs(8, /*quick_floor=*/3);
  // Floor of 32 keeps the flush-amortization claim meaningful under --quick:
  // the pipelined path costs 6 boundary flushes (Phase A + Phase C, one per
  // shard) regardless of batch size, so 32 txns bound the ratio at 0.1875.
  const int pipelined_txns = ctx.runs(64, /*quick_floor=*/32);

  ctx.out() << "E20: group-commit WAL + decision-round batching vs the\n"
            << "ungrouped multi-shot engine, threaded network with 50-500us\n"
            << "delays; " << txns_per_client << " txns per client\n\n";

  Table table({"config", "clients", "committed", "txn/sec", "p50 us", "p99 us",
               "wal flushes", "rec/flush"});
  double plain_64 = 0.0;
  double grouped_64 = 0.0;
  for (const int clients : {8, 64}) {
    for (const bool batched : {false, true}) {
      const auto cell =
          run_cell(batched, clients, txns_per_client,
                   ctx.derive_seed(20 + static_cast<uint64_t>(clients)));
      table.row({batched ? "grouped b=8" : "ungrouped",
                 Table::num(static_cast<int64_t>(clients)),
                 Table::num(cell.stats.committed),
                 Table::num(cell.committed_per_sec, 1),
                 Table::num(cell.p50_us, 0), Table::num(cell.p99_us, 0),
                 Table::num(cell.wal.flushes),
                 Table::num(cell.wal.records_per_flush(), 2)});
      if (clients == 64) {
        (batched ? grouped_64 : plain_64) = cell.committed_per_sec;
      }
    }
  }
  ctx.table("groupcommit_sweep", table);
  const double speedup = plain_64 > 0.0 ? grouped_64 / plain_64 : 0.0;
  ctx.scalar("grouped_txn_per_sec_64c", grouped_64, "txn/s");
  ctx.scalar("ungrouped_txn_per_sec_64c", plain_64, "txn/s");
  ctx.scalar("group_speedup_64c", speedup, "x");

  const double flushes_per_txn =
      pipelined_flushes_per_txn(pipelined_txns, ctx.derive_seed(20));
  ctx.out() << "\npipelined flushes/txn at decision_batch=8: "
            << Table::num(flushes_per_txn, 3) << "\n";
  ctx.scalar("pipelined_flushes_per_txn", flushes_per_txn);

  // Recovery equivalence under the grouped site space: every boundary flush
  // crashed with every fault kind, batch recovery must restore the
  // committed-prefix reference.
  faultinject::MultiTortureOptions torture;
  torture.group_commit = true;
  torture.decision_batch = 4;
  torture.seed = ctx.derive_seed(21);
  torture.scratch_dir = scratch_dir("torture");
  const auto sweep =
      faultinject::run_multi_wal_sweep(torture, {.threads = 2});
  {
    std::error_code ec;
    fs::remove_all(torture.scratch_dir, ec);
  }
  ctx.out() << "grouped torture: " << sweep.crash_points << " crash points over "
            << sweep.sites << " boundary sites, " << sweep.failures.size()
            << " failures\n\n";
  ctx.scalar("grouped_crash_points", static_cast<double>(sweep.crash_points));
  ctx.scalar("grouped_recovery_failures",
             static_cast<double>(sweep.failures.size()));

  ctx.claim({"group_2x_ungrouped",
             "one decision round per batch of 8 amortizes the latency-bound "
             "exchanges: >=2x ungrouped committed-txn throughput at 64 clients",
             Table::num(speedup, 2) + "x at 64 clients", speedup >= 2.0});
  ctx.claim({"group_flush_amortized",
             "group commit coalesces per-append flushes into boundary "
             "flushes: <0.25 physical flushes per pipelined txn at batch 8",
             Table::num(flushes_per_txn, 3) + " flushes/txn",
             flushes_per_txn < 0.25});
  ctx.claim({"group_recovery_equiv",
             "a crash at any group boundary with any fault kind recovers to "
             "the committed-prefix reference (\"at all processors or none\")",
             std::to_string(sweep.failures.size()) + " failures over " +
                 std::to_string(sweep.crash_points) + " crash points",
             !sweep.failures.empty() ? false : sweep.crash_points > 0});
}

}  // namespace

int main(int argc, char** argv) {
  return rcommit::bench::run(
      argc, argv,
      {"E20", "bench_db_groupcommit",
       "group-commit WAL + decision batching vs the ungrouped engine",
       {"group_2x_ungrouped", "group_flush_amortized", "group_recovery_equiv"}},
      body);
}
