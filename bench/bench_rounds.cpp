// E2 — asynchronous rounds to decision for Protocol 2 (claims C2, C3).
//
// Theorem 10: all nonfaulty processors decide in 14 expected asynchronous
// rounds. Lemma 6: each agreement stage costs at most 2 rounds. We measure
// the decision round (per the §2.2 round definition, computed by
// RoundAnalyzer) across system sizes under both random admissible timing and
// the hostile-but-admissible quorum staller.
#include <memory>
#include <vector>

#include "adversary/adaptive.h"
#include "adversary/basic.h"
#include "bench/harness.h"
#include "common/stats.h"
#include "metrics/counters.h"
#include "metrics/report.h"
#include "protocol/commit.h"
#include "sim/simulator.h"

namespace {

using namespace rcommit;

struct RoundStats {
  Samples rounds;
  Histogram histogram{16};
  int64_t undecided = 0;
};

enum class AdversaryKind { kRandom, kStaller };

RoundStats run_sweep(const bench::Context& ctx, int n, AdversaryKind kind,
                     int runs) {
  SystemParams params{.n = n, .t = (n - 1) / 2, .k = 2};
  RoundStats stats;
  for (int run = 0; run < runs; ++run) {
    const auto seed = ctx.derive_seed(static_cast<uint64_t>(run * 6151 + n * 17 + 1));
    std::vector<int> votes(static_cast<size_t>(n), 1);
    std::unique_ptr<sim::Adversary> adv;
    if (kind == AdversaryKind::kRandom) {
      adv = adversary::make_random_adversary(seed + 3, /*max_delay=*/3);
    } else {
      adv = std::make_unique<adversary::QuorumStallAdversary>(params.t, 32, seed + 3);
    }
    sim::Simulator sim({.seed = seed}, protocol::make_commit_fleet(params, votes),
                       std::move(adv));
    const auto result = sim.run();
    if (result.status != sim::RunStatus::kAllDecided) {
      ++stats.undecided;
      continue;
    }
    const auto m = metrics::measure_run(result, params.k);
    stats.rounds.add(m.max_decision_round);
    stats.histogram.add(m.max_decision_round);
  }
  return stats;
}

const char* kind_name(AdversaryKind k) {
  return k == AdversaryKind::kRandom ? "random" : "quorum-staller";
}

void body(bench::Context& ctx) {
  using rcommit::Table;
  const int runs = ctx.runs(800);

  ctx.out() << "E2: asynchronous rounds to decision for Protocol 2 (Theorem 10)\n"
            << runs << " seeded runs per row, all-commit votes, t = (n-1)/2, K = 2\n\n";

  Table table({"n", "adversary", "mean rounds", "p99", "max", "undecided"});
  double worst_mean = 0.0;
  for (int n : {3, 5, 7, 9}) {
    for (auto kind : {AdversaryKind::kRandom, AdversaryKind::kStaller}) {
      const auto stats = run_sweep(ctx, n, kind, runs);
      table.row({Table::num(static_cast<int64_t>(n)), kind_name(kind),
                 Table::num(stats.rounds.mean()),
                 Table::num(stats.rounds.percentile(0.99)),
                 Table::num(stats.rounds.max()), Table::num(stats.undecided)});
      worst_mean = std::max(worst_mean, stats.rounds.mean());
    }
  }
  ctx.table("rounds_by_adversary", table);

  // Distribution at the largest size against the hostile staller — the
  // shape behind Theorem 10's expectation.
  ctx.out() << "\nround distribution, n = 9, quorum-staller:\n";
  run_sweep(ctx, 9, AdversaryKind::kStaller, runs).histogram.print(ctx.out());

  ctx.scalar("worst_mean_rounds", worst_mean, "rounds");

  ctx.claim({"C3", "decide in <= 14 expected asynchronous rounds",
             "worst mean over all rows = " + Table::num(worst_mean),
             worst_mean <= 14.0});
  ctx.claim({"C2",
             "constant rounds independent of n (each stage costs <= 2 rounds)",
             "means stay flat across n (see table)", worst_mean <= 14.0});
}

}  // namespace

int main(int argc, char** argv) {
  return rcommit::bench::run(
      argc, argv,
      {"E2", "bench_rounds",
       "asynchronous rounds to decision for Protocol 2 (Theorem 10)",
       {"C3", "C2"}},
      body);
}
