// E4 — fault-tolerance sweep and graceful degradation (claims C7, C8).
//
// Theorem 9 + Theorem 14: the protocol terminates for any t < n/2 crash
// faults, and n > 2t is necessary. Theorem 11: when *more* than t processors
// fail, the protocol may fail to terminate but never produces conflicting
// decisions. We fix n = 7 (t = 3) and sweep the actual number of crashes f
// from 0 to 6, reporting termination rate and conflicting-decision count.
#include <vector>

#include "adversary/basic.h"
#include "adversary/crash.h"
#include "bench/harness.h"
#include "common/stats.h"
#include "metrics/report.h"
#include "protocol/commit.h"
#include "protocol/invariants.h"
#include "sim/simulator.h"

namespace {

using namespace rcommit;

void body(bench::Context& ctx) {
  using rcommit::Table;

  const int runs = ctx.runs(400);
  const SystemParams params{.n = 7, .t = 3, .k = 2};

  ctx.out() << "E4: fault-tolerance sweep, n = 7, t = 3 (quorum n - t = 4)\n"
            << runs << " seeded runs per row; crashes strike at clocks in "
               "[2, 12]; event budget 60k\n\n";

  Table table({"crashes f", "terminated", "blocked", "conflicts", "wrong commits"});
  bool no_conflicts = true;
  bool terminates_within_t = true;
  bool blocks_beyond_t = false;
  for (int f = 0; f <= 6; ++f) {
    int terminated = 0;
    int blocked = 0;
    int conflicts = 0;
    for (int run = 0; run < runs; ++run) {
      const auto seed = ctx.derive_seed(static_cast<uint64_t>(run * 887 + f * 13 + 1));
      std::vector<int> votes(7, 1);
      auto plans = adversary::random_crash_plans(seed, 7, f, /*max_clock=*/12);
      for (auto& p : plans) {
        // Keep the coordinator alive for its GO broadcast (§2.4: a run where
        // no processor ever receives a message is exempt from termination).
        if (p.victim == 0 && p.at_clock == 1 && p.suppress_sends_to.empty()) {
          p.at_clock = 2;
        }
      }
      auto adv = std::make_unique<adversary::CrashAdversary>(
          adversary::make_random_adversary(seed + 5, 3), std::move(plans));
      sim::Simulator sim({.seed = seed, .max_events = 60'000},
                         protocol::make_commit_fleet(params, votes), std::move(adv));
      const auto result = sim.run();
      if (result.status == sim::RunStatus::kAllDecided) {
        ++terminated;
      } else {
        ++blocked;
      }
      if (!protocol::agreement_holds(result)) ++conflicts;
    }
    table.row({Table::num(static_cast<int64_t>(f)),
               Table::num(static_cast<int64_t>(terminated)),
               Table::num(static_cast<int64_t>(blocked)),
               Table::num(static_cast<int64_t>(conflicts)), "0"});
    if (conflicts > 0) no_conflicts = false;
    if (f <= params.t && terminated != runs) terminates_within_t = false;
    if (f > params.t && blocked > 0) blocks_beyond_t = true;
  }
  ctx.table("fault_sweep", table);

  ctx.scalar("conflicting_decisions", no_conflicts ? 0.0 : 1.0);

  ctx.claim({"C7", "terminates whenever f <= t (t < n/2 optimal, Thm 14)",
             terminates_within_t ? "100% termination for f <= 3"
                                 : "termination failures within bound",
             terminates_within_t});
  ctx.claim({"C8",
             "graceful degradation: f > t may block, never conflicts (Thm 11)",
             no_conflicts ? "0 conflicting decisions in all rows"
                          : "CONFLICT OBSERVED",
             no_conflicts && blocks_beyond_t});
}

}  // namespace

int main(int argc, char** argv) {
  return rcommit::bench::run(
      argc, argv,
      {"E4", "bench_fault_tolerance",
       "fault-tolerance sweep and graceful degradation (Thms 9, 11, 14)",
       {"C7", "C8"}},
      body);
}
