#include "bench/harness.h"

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>

#include "common/check.h"
#include "common/flags.h"
#include "common/rng.h"

namespace rcommit::bench {
namespace {

const std::vector<FlagDoc>& flag_docs() {
  static const std::vector<FlagDoc> kDocs = {
      {"json", "path", "write the BenchResult JSON artifact (\"-\" = stdout)"},
      {"quick", "", "reduced grids / run counts (the CI bench-smoke mode)"},
      {"repeat", "N", "time the body over N silent re-runs (default 1)"},
      {"seed0", "N", "base seed for every derived run seed (default 1)"},
      {"list", "", "print experiment id, title, and claim ids, then exit"},
      {"help", "", "this text"},
  };
  return kDocs;
}

/// Discards everything written to it; timing re-runs print here.
class NullStream : public std::ostream {
 public:
  NullStream() : std::ostream(&buffer_) {}

 private:
  class NullBuffer : public std::streambuf {
   protected:
    int overflow(int c) override { return c; }
  };
  NullBuffer buffer_;
};

double now_seconds() {
  // Wall time is the measurement here, not an input to any simulated
  // decision; seeds stay fixed across re-runs so simulated results agree.
  const auto now = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(now.time_since_epoch()).count();
}

std::string join(const std::vector<std::string>& parts, const char* sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

}  // namespace

Context::Context(const BenchInfo& info, bool quick, int repeat, uint64_t seed0,
                 std::ostream& out)
    : quick_(quick), repeat_(repeat), seed0_(seed0), out_(&out) {
  result_.experiment_id = info.experiment_id;
  result_.bench = info.name;
  result_.title = info.title;
  result_.quick = quick;
  result_.repeat = repeat;
  result_.seed0 = seed0;
}

int Context::runs(int full, int quick_floor) const {
  if (!quick_) return full;
  return std::max(std::min(full, quick_floor), full / 10);
}

uint64_t Context::derive_seed(uint64_t local) const {
  if (seed0_ == 1) return local;
  SplitMix64 mix(seed0_ ^ (local * 0x9e3779b97f4a7c15ULL));
  return mix.next();
}

void Context::claim(metrics::ClaimRow row) {
  if (recording_) result_.claims.push_back(std::move(row));
}

void Context::scalar(const std::string& name, double value,
                     const std::string& unit) {
  if (recording_) result_.scalars.push_back({name, value, unit});
}

void Context::timing(metrics::TimingSample sample) {
  if (recording_) result_.timings.push_back(std::move(sample));
}

void Context::table(const std::string& name, const Table& table) {
  table.print(*out_);
  if (recording_) result_.tables.push_back({name, table.str()});
}

int run(int argc, const char* const* argv, const BenchInfo& info,
        const std::function<void(Context&)>& body) {
  Flags flags;
  try {
    flags = Flags::parse(argc, argv);
  } catch (const CheckFailure& e) {
    std::cerr << info.name << ": " << e.what() << "\n";
    Flags::print_usage(std::cerr, info.name, info.title, flag_docs());
    return 2;
  }

  const std::string json_path = flags.get_string("json", "");
  const bool quick = flags.get_bool("quick", false);
  const auto repeat = static_cast<int>(flags.get_int("repeat", 1));
  const auto seed0 = static_cast<uint64_t>(flags.get_int("seed0", 1));
  const bool list = flags.get_bool("list", false);
  const bool help = flags.get_bool("help", false);

  if (help) {
    Flags::print_usage(std::cout, info.name, info.title, flag_docs());
    return 0;
  }
  if (!flags.check_unknown(std::cerr, info.title, flag_docs())) return 2;
  if (list) {
    std::cout << info.name << "  " << info.experiment_id << "  claims: "
              << (info.claim_ids.empty() ? "-" : join(info.claim_ids, ","))
              << "\n  " << info.title << "\n";
    return 0;
  }
  RCOMMIT_CHECK_MSG(repeat >= 1, "--repeat must be >= 1, got " << repeat);

  Context ctx(info, quick, repeat, seed0, std::cout);

  // The printing run. When --repeat > 1 it doubles as the untimed warmup;
  // otherwise its wall time is the one "total" sample.
  const double t0 = now_seconds();
  body(ctx);
  const double first_seconds = now_seconds() - t0;

  metrics::TimingSample total{"total", first_seconds, 1, 0};
  if (repeat > 1) {
    NullStream null_out;
    ctx.out_ = &null_out;
    ctx.recording_ = false;
    double sum = 0.0;
    for (int r = 0; r < repeat; ++r) {
      const double start = now_seconds();
      body(ctx);
      sum += now_seconds() - start;
    }
    ctx.out_ = &std::cout;
    ctx.recording_ = true;
    total = {"total", sum / repeat, repeat, 1};
  }
  ctx.result_.timings.insert(ctx.result_.timings.begin(), total);

  if (!ctx.result_.claims.empty()) {
    metrics::print_claim_report(std::cout, info.experiment_id + " claims",
                                ctx.result_.claims);
  }

  if (!json_path.empty()) {
    const std::string doc = metrics::to_json(ctx.result_) + "\n";
    if (json_path == "-") {
      std::cout << doc;
    } else {
      const std::filesystem::path path(json_path);
      if (path.has_parent_path()) {
        std::filesystem::create_directories(path.parent_path());
      }
      std::ofstream out(path, std::ios::binary | std::ios::trunc);
      RCOMMIT_CHECK_MSG(out.good(), "cannot open --json path " << json_path);
      out << doc;
      RCOMMIT_CHECK_MSG(out.good(), "failed writing " << json_path);
      std::cout << "\nwrote " << json_path << "\n";
    }
  }

  const int held = metrics::claims_held(ctx.result_);
  const int claims = static_cast<int>(ctx.result_.claims.size());
  return held == claims ? 0 : 1;
}

}  // namespace rcommit::bench
