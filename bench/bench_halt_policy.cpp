// E10 — ablation of the halting helper (design decision D1).
//
// The paper's Protocol 1 "returns" one quorum after deciding and says nothing
// about how an implementation stops cleanly. kRunForever is the paper-literal
// behaviour (a decided processor keeps assisting); kDecidedBroadcast adds a
// DECIDED announcement so every processor can stop. This ablation measures
// what the helper buys: events and messages until every nonfaulty processor
// has decided, plus whether the fleet reaches a state where every processor
// has halted at all.
#include <memory>
#include <vector>

#include "adversary/basic.h"
#include "bench/harness.h"
#include "common/stats.h"
#include "protocol/commit.h"
#include "sim/simulator.h"

namespace {

using namespace rcommit;

struct PolicyStats {
  Samples events;
  Samples messages;
  int64_t halted_runs = 0;
};

PolicyStats run_policy(const bench::Context& ctx, protocol::HaltPolicy policy,
                       int n, int runs) {
  SystemParams params{.n = n, .t = (n - 1) / 2, .k = 2};
  PolicyStats stats;
  for (int run = 0; run < runs; ++run) {
    const auto seed = ctx.derive_seed(static_cast<uint64_t>(run * 613 + n));
    std::vector<int> votes(static_cast<size_t>(n), 1);
    sim::Simulator sim({.seed = seed, .record_trace = false},
                       protocol::make_commit_fleet(params, votes, policy),
                       adversary::make_random_adversary(seed, 3));
    const auto result = sim.run();
    if (result.status != sim::RunStatus::kAllDecided) continue;
    stats.events.add(static_cast<double>(result.events));
    stats.messages.add(static_cast<double>(result.messages_sent));
    bool all_halted = true;
    for (const auto& proc : sim.processes()) {
      all_halted = all_halted && proc->halted();
    }
    if (all_halted) ++stats.halted_runs;
  }
  return stats;
}

void body(bench::Context& ctx) {
  using rcommit::Table;
  const int runs = ctx.runs(400);

  ctx.out() << "E10: halt-policy ablation (DESIGN.md D1)\n"
            << runs << " runs per row, random admissible timing, all-commit\n\n";

  Table table({"n", "policy", "mean events", "mean msgs", "runs fully halted"});
  for (int n : {5, 9}) {
    for (auto policy : {protocol::HaltPolicy::kDecidedBroadcast,
                        protocol::HaltPolicy::kRunForever}) {
      const auto stats = run_policy(ctx, policy, n, runs);
      table.row({Table::num(static_cast<int64_t>(n)),
                 policy == protocol::HaltPolicy::kDecidedBroadcast
                     ? "DECIDED broadcast"
                     : "run forever (paper-literal)",
                 Table::num(stats.events.mean(), 0),
                 Table::num(stats.messages.mean(), 0),
                 Table::num(stats.halted_runs)});
    }
  }
  ctx.table("halt_policy", table);
  ctx.out() << "\nThe paper-literal policy decides just as fast but leaves every "
               "processor running;\nthe DECIDED helper lets the whole fleet "
               "terminate at the cost of n^2 extra messages.\n";
}

}  // namespace

int main(int argc, char** argv) {
  return rcommit::bench::run(
      argc, argv,
      {"E10", "bench_halt_policy",
       "halt-policy ablation: DECIDED broadcast vs paper-literal run-forever "
       "(DESIGN.md D1)",
       {}},
      body);
}
