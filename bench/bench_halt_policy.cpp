// E10 — ablation of the halting helper (design decision D1).
//
// The paper's Protocol 1 "returns" one quorum after deciding and says nothing
// about how an implementation stops cleanly. kRunForever is the paper-literal
// behaviour (a decided processor keeps assisting); kDecidedBroadcast adds a
// DECIDED announcement so every processor can stop. This ablation measures
// what the helper buys: events and messages until every nonfaulty processor
// has decided, plus whether the fleet reaches a state where every processor
// has halted at all.
#include <iostream>
#include <memory>
#include <vector>

#include "adversary/basic.h"
#include "common/stats.h"
#include "protocol/commit.h"
#include "sim/simulator.h"

namespace {

using namespace rcommit;

struct PolicyStats {
  Samples events;
  Samples messages;
  int64_t halted_runs = 0;
};

PolicyStats run_policy(protocol::HaltPolicy policy, int n, int runs) {
  SystemParams params{.n = n, .t = (n - 1) / 2, .k = 2};
  PolicyStats stats;
  for (int run = 0; run < runs; ++run) {
    const auto seed = static_cast<uint64_t>(run * 613 + n);
    std::vector<int> votes(static_cast<size_t>(n), 1);
    sim::Simulator sim({.seed = seed, .record_trace = false},
                       protocol::make_commit_fleet(params, votes, policy),
                       adversary::make_random_adversary(seed, 3));
    const auto result = sim.run();
    if (result.status != sim::RunStatus::kAllDecided) continue;
    stats.events.add(static_cast<double>(result.events));
    stats.messages.add(static_cast<double>(result.messages_sent));
    bool all_halted = true;
    for (const auto& proc : sim.processes()) {
      all_halted = all_halted && proc->halted();
    }
    if (all_halted) ++stats.halted_runs;
  }
  return stats;
}

}  // namespace

int main() {
  using rcommit::Table;
  constexpr int kRuns = 400;

  std::cout << "E10: halt-policy ablation (DESIGN.md D1)\n"
            << kRuns << " runs per row, random admissible timing, all-commit\n\n";

  Table table({"n", "policy", "mean events", "mean msgs", "runs fully halted"});
  for (int n : {5, 9}) {
    for (auto policy : {protocol::HaltPolicy::kDecidedBroadcast,
                        protocol::HaltPolicy::kRunForever}) {
      const auto stats = run_policy(policy, n, kRuns);
      table.row({Table::num(static_cast<int64_t>(n)),
                 policy == protocol::HaltPolicy::kDecidedBroadcast
                     ? "DECIDED broadcast"
                     : "run forever (paper-literal)",
                 Table::num(stats.events.mean(), 0),
                 Table::num(stats.messages.mean(), 0),
                 Table::num(stats.halted_runs)});
    }
  }
  table.print(std::cout);
  std::cout << "\nThe paper-literal policy decides just as fast but leaves every "
               "processor running;\nthe DECIDED helper lets the whole fleet "
               "terminate at the cost of n^2 extra messages.\n";
  return 0;
}
