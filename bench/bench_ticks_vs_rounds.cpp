// E8 — clock ticks vs asynchronous rounds under stretched delays (claim C12).
//
// Theorem 17: no protocol terminates in a bounded expected number of clock
// ticks — the adversary can dilate message delays without limit. Section 2.2
// introduces asynchronous rounds precisely so a performance guarantee *can*
// be stated. This bench is the executable version of that argument: as the
// uniform message delay x grows, decision time in clock ticks grows linearly
// without bound, while the decision round stays constant (each round simply
// stretches to contain the slower messages).
#include <memory>
#include <vector>

#include "adversary/stretch.h"
#include "bench/harness.h"
#include "common/stats.h"
#include "metrics/counters.h"
#include "metrics/report.h"
#include "protocol/commit.h"
#include "sim/simulator.h"

namespace {

using namespace rcommit;

void body(bench::Context& ctx) {
  using rcommit::Table;

  const int runs = ctx.runs(200);
  const SystemParams params{.n = 5, .t = 2, .k = 2};

  ctx.out() << "E8: decision ticks vs asynchronous rounds as the uniform delay "
               "x grows\n"
            << "n = 5, K = 2, all-commit votes, " << runs << " runs per row\n\n";

  Table table({"delay x", "mean ticks", "ticks/x", "mean rounds", "max rounds"});
  std::vector<double> tick_means;
  std::vector<double> round_means;
  for (Tick x : {1, 2, 4, 8, 16, 32, 64}) {
    Samples ticks;
    Samples rounds;
    for (int run = 0; run < runs; ++run) {
      const auto seed = ctx.derive_seed(static_cast<uint64_t>(run * 577 + x));
      std::vector<int> votes(5, 1);
      sim::Simulator sim({.seed = seed}, protocol::make_commit_fleet(params, votes),
                         std::make_unique<adversary::DelayStretchAdversary>(x));
      const auto result = sim.run();
      if (result.status != sim::RunStatus::kAllDecided) continue;
      const auto m = metrics::measure_run(result, params.k);
      ticks.add(static_cast<double>(m.max_decision_clock));
      rounds.add(m.max_decision_round);
    }
    tick_means.push_back(ticks.mean());
    round_means.push_back(rounds.mean());
    table.row({Table::num(static_cast<int64_t>(x)), Table::num(ticks.mean()),
               Table::num(ticks.mean() / static_cast<double>(x)),
               Table::num(rounds.mean()), Table::num(rounds.max(), 0)});
  }
  ctx.table("ticks_vs_rounds", table);

  // Ticks must keep growing with x; rounds must not.
  const bool ticks_unbounded =
      tick_means.back() > 4.0 * tick_means.front();
  double max_round_mean = 0.0;
  for (double r : round_means) max_round_mean = std::max(max_round_mean, r);
  const bool rounds_constant = max_round_mean <= 14.0;

  ctx.scalar("tick_mean_at_x1", tick_means.front(), "ticks");
  ctx.scalar("tick_mean_at_x64", tick_means.back(), "ticks");
  ctx.scalar("max_mean_rounds", max_round_mean, "rounds");

  ctx.claim({"C12a", "decision clock ticks grow without bound as delays stretch",
             "ticks grow from " + Table::num(tick_means.front()) + " to " +
                 Table::num(tick_means.back()) + " over x: 1 -> 64",
             ticks_unbounded});
  ctx.claim({"C12b", "decision stays within ~14 asynchronous rounds regardless",
             "max mean rounds = " + Table::num(max_round_mean), rounds_constant});
}

}  // namespace

int main(int argc, char** argv) {
  return rcommit::bench::run(
      argc, argv,
      {"E8", "bench_ticks_vs_rounds",
       "decision ticks vs asynchronous rounds under stretched delays "
       "(Theorem 17 / §2.2)",
       {"C12a", "C12b"}},
      body);
}
