// E3 — the fast path in clock ticks (claims C4, C5).
//
// Remark (1) §3.2: in failure-free on-time runs, all processors decide within
// 8K clock ticks (4K for Protocol 2's GO and vote exchanges, at most 2K per
// agreement stage). Remark (2): on-time runs that are *not* failure-free
// still decide in a constant expected number of ticks. We sweep K and n for
// the failure-free bound and inject up to t crashes for the constant-expected
// claim.
#include <algorithm>
#include <vector>

#include "adversary/basic.h"
#include "adversary/crash.h"
#include "bench/harness.h"
#include "common/stats.h"
#include "metrics/report.h"
#include "protocol/commit.h"
#include "sim/simulator.h"

namespace {

using namespace rcommit;

Tick max_decide_clock(const sim::RunResult& result) {
  Tick max_clock = 0;
  for (size_t p = 0; p < result.trace.decide_clock.size(); ++p) {
    if (result.trace.crashed[p]) continue;
    if (const auto& c = result.trace.decide_clock[p]; c.has_value()) {
      max_clock = std::max(max_clock, *c);
    }
  }
  return max_clock;
}

void body(bench::Context& ctx) {
  using rcommit::Table;
  const int runs = ctx.runs(400);

  ctx.out() << "E3: decision time in clock ticks on the fast path\n\n";

  // --- failure-free, on-time: the 8K bound ---------------------------------
  Table ff({"K", "n", "mean ticks", "max ticks", "bound 8K", "within"});
  bool all_within = true;
  for (Tick k : {2, 5, 10}) {
    for (int n : {3, 5, 9}) {
      SystemParams params{.n = n, .t = (n - 1) / 2, .k = k};
      Samples ticks;
      for (int run = 0; run < runs; ++run) {
        const auto seed = ctx.derive_seed(static_cast<uint64_t>(run * 31 + n + k));
        std::vector<int> votes(static_cast<size_t>(n), 1);
        sim::Simulator sim({.seed = seed}, protocol::make_commit_fleet(params, votes),
                           adversary::make_on_time_adversary());
        const auto result = sim.run();
        ticks.add(static_cast<double>(max_decide_clock(result)));
      }
      const bool within = ticks.max() <= static_cast<double>(8 * k);
      all_within = all_within && within;
      ff.row({Table::num(static_cast<int64_t>(k)), Table::num(static_cast<int64_t>(n)),
              Table::num(ticks.mean()), Table::num(ticks.max(), 0),
              Table::num(static_cast<int64_t>(8 * k)), within ? "yes" : "NO"});
    }
  }
  ctx.out() << "failure-free on-time runs (remark 1):\n";
  ctx.table("failure_free_ticks", ff);

  // --- on-time with up to t crashes: constant expected ticks ----------------
  ctx.out() << "\non-time runs with up to t crashes (remark 2):\n";
  Table crash_table({"K", "crashes", "mean ticks", "max ticks", "mean/K"});
  double worst_ratio = 0.0;
  for (Tick k : {2, 5, 10}) {
    SystemParams params{.n = 7, .t = 3, .k = k};
    for (int crashes : {1, 2, 3}) {
      Samples ticks;
      for (int run = 0; run < runs; ++run) {
        const auto seed =
            ctx.derive_seed(static_cast<uint64_t>(run * 131 + k * 7 + crashes));
        std::vector<int> votes(7, 1);
        auto plans = adversary::random_crash_plans(seed, 7, crashes, 6 * k);
        // Keep the coordinator alive for its GO broadcast (§2.4 exemption).
        for (auto& p : plans) {
          if (p.victim == 0 && p.at_clock == 1 && p.suppress_sends_to.empty()) {
            p.at_clock = 2;
          }
        }
        auto adv = std::make_unique<adversary::CrashAdversary>(
            adversary::make_on_time_adversary(), std::move(plans));
        sim::Simulator sim({.seed = seed}, protocol::make_commit_fleet(params, votes),
                           std::move(adv));
        const auto result = sim.run();
        if (result.status == sim::RunStatus::kAllDecided) {
          ticks.add(static_cast<double>(max_decide_clock(result)));
        }
      }
      const double ratio = ticks.mean() / static_cast<double>(k);
      worst_ratio = std::max(worst_ratio, ratio);
      crash_table.row({Table::num(static_cast<int64_t>(k)),
                       Table::num(static_cast<int64_t>(crashes)),
                       Table::num(ticks.mean()), Table::num(ticks.max(), 0),
                       Table::num(ratio)});
    }
  }
  ctx.table("crash_ticks", crash_table);

  ctx.scalar("worst_mean_over_k_ratio", worst_ratio);

  ctx.claim({"C4", "failure-free on-time runs decide within 8K ticks",
             all_within ? "every run within 8K" : "bound exceeded", all_within});
  ctx.claim({"C5", "on-time runs decide in constant expected ticks (O(K))",
             "worst mean/K ratio = " + Table::num(worst_ratio),
             worst_ratio <= 16.0});
}

}  // namespace

int main(int argc, char** argv) {
  return rcommit::bench::run(
      argc, argv,
      {"E3", "bench_fastpath",
       "decision time in clock ticks on the fast path (remarks 1–2, §3.2)",
       {"C4", "C5"}},
      body);
}
