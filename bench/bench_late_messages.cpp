// E7 — one late message: synchronous commit protocols err, Protocol 2 does
// not (claim C13).
//
// The paper (§1): "The main difficulty in using these [synchronous] protocols
// in real systems is that a single violation of the timing assumptions (i.e.,
// a late message) can cause the protocol to produce the wrong answer."
// We run 2PC (both timeout policies), 3PC, and Protocol 2 through schedules
// that are perfectly on-time except for one targeted late message, and count
// conflicting decisions (two processors deciding differently) and blocked
// runs.
//
//   2PC / presume-abort : the coordinator's COMMIT to one participant is
//                         late; the participant times out and aborts a
//                         committed transaction — inconsistency.
//   2PC / block         : the same participant simply blocks forever — safe
//                         but unavailable (the classic blocking problem).
//   3PC                 : one PRECOMMIT is late; the prepared participant's
//                         timeout rule says abort while the precommitted rest
//                         commit — inconsistency.
//   Protocol 2          : late messages only ever delay or flip the outcome
//                         toward abort; all processors still agree.
#include <map>
#include <memory>
#include <vector>

#include "adversary/basic.h"
#include "adversary/crash.h"
#include "adversary/latemsg.h"
#include "baselines/q3pc.h"
#include "baselines/threepc.h"
#include "baselines/twopc.h"
#include "bench/harness.h"
#include "common/stats.h"
#include "metrics/report.h"
#include "protocol/commit.h"
#include "protocol/invariants.h"
#include "sim/simulator.h"

namespace {

using namespace rcommit;

struct Tally {
  int conflicts = 0;
  int blocked = 0;
  int commits = 0;
  int aborts = 0;
};

enum class Proto { kTwoPcPresume, kTwoPcBlock, kThreePc, kQ3pc, kOurs };

const char* proto_name(Proto p) {
  switch (p) {
    case Proto::kTwoPcPresume: return "2PC (presume-abort)";
    case Proto::kTwoPcBlock: return "2PC (block)";
    case Proto::kThreePc: return "3PC";
    case Proto::kQ3pc: return "3PC + termination protocol";
    default: return "Protocol 2 (ours)";
  }
}

std::vector<std::unique_ptr<sim::Process>> make_fleet(Proto proto,
                                                      const SystemParams& params) {
  std::vector<std::unique_ptr<sim::Process>> fleet;
  for (int i = 0; i < params.n; ++i) {
    switch (proto) {
      case Proto::kTwoPcPresume:
      case Proto::kTwoPcBlock: {
        baselines::TwoPcProcess::Options options;
        options.params = params;
        options.initial_vote = 1;
        options.policy = proto == Proto::kTwoPcBlock
                             ? baselines::TwoPcTimeoutPolicy::kBlock
                             : baselines::TwoPcTimeoutPolicy::kPresumeAbort;
        fleet.push_back(std::make_unique<baselines::TwoPcProcess>(options));
        break;
      }
      case Proto::kThreePc: {
        baselines::ThreePcProcess::Options options;
        options.params = params;
        options.initial_vote = 1;
        fleet.push_back(std::make_unique<baselines::ThreePcProcess>(options));
        break;
      }
      case Proto::kQ3pc: {
        baselines::Q3pcProcess::Options options;
        options.params = params;
        options.initial_vote = 1;
        fleet.push_back(std::make_unique<baselines::Q3pcProcess>(options));
        break;
      }
      case Proto::kOurs: {
        protocol::CommitProcess::Options options;
        options.params = params;
        options.initial_vote = 1;
        fleet.push_back(std::make_unique<protocol::CommitProcess>(options));
        break;
      }
    }
  }
  return fleet;
}

/// Which message on the coordinator->victim link to delay, per protocol:
/// the one whose lateness splits the timeout rules.
int late_ordinal(Proto proto) {
  switch (proto) {
    case Proto::kTwoPcPresume:
    case Proto::kTwoPcBlock:
      return 1;  // 0 = PREPARE, 1 = COMMIT/ABORT decision
    case Proto::kThreePc:
    case Proto::kQ3pc:
      return 1;  // 0 = CANCOMMIT, 1 = PRECOMMIT
    default:
      return 1;  // for ours: second coordinator message, arbitrary
  }
}

enum class Scenario {
  kLateMessage,      ///< one message delayed 60 ticks, otherwise on-time
  kCoordinatorDies,  ///< coordinator crashes mid-outcome-broadcast
  kLeaderIsolated,   ///< every link INTO processor 1 is late (no failures)
};

Tally run_protocol(const bench::Context& ctx, Proto proto, Scenario scenario,
                   int runs) {
  const SystemParams params{.n = 5, .t = 2, .k = 2};
  Tally tally;
  for (int run = 0; run < runs; ++run) {
    const auto seed = ctx.derive_seed(static_cast<uint64_t>(run * 41 + 7));
    const ProcId victim = 1 + static_cast<ProcId>(run % (params.n - 1));
    std::unique_ptr<sim::Adversary> adv;
    if (scenario == Scenario::kLeaderIsolated) {
      // Processor 1 — Q3PC's recovery leader — is cut off *after* the first
      // message on each incoming link (so it joins the protocol normally and
      // votes), then sees everything else 120 ticks late. Nobody crashes.
      std::vector<adversary::LateRule> rules;
      for (ProcId p = 0; p < params.n; ++p) {
        if (p == 1) continue;
        for (int nth = 1; nth <= 8; ++nth) {
          rules.push_back({.from = p, .to = 1, .nth = nth, .extra_delay = 120});
        }
      }
      adv = std::make_unique<adversary::LateMessageAdversary>(std::move(rules));
    } else if (scenario == Scenario::kLateMessage) {
      adversary::LateRule rule;
      rule.from = 0;
      rule.to = victim;
      rule.nth = late_ordinal(proto);
      rule.extra_delay = 60;  // far beyond every timeout (4K = 8)
      adv = std::make_unique<adversary::LateMessageAdversary>(
          std::vector<adversary::LateRule>{rule});
    } else {
      // In the delay-1 round-robin schedule the coordinator's second step
      // (clock 2) is its 2PC decision broadcast — respectively its 3PC
      // PRECOMMIT broadcast. It executes that step, but the copy to `victim`
      // is lost and the coordinator then crashes: the mid-broadcast failure
      // the paper's guaranteed-message machinery models.
      adversary::CrashPlan plan;
      plan.victim = 0;
      plan.at_clock = 2;
      plan.suppress_sends_to = {victim};
      adv = std::make_unique<adversary::CrashAdversary>(
          adversary::make_on_time_adversary(),
          std::vector<adversary::CrashPlan>{plan});
    }
    sim::Simulator sim({.seed = seed, .max_events = 30'000},
                       make_fleet(proto, params), std::move(adv));
    const auto result = sim.run();
    if (result.has_conflicting_decisions()) ++tally.conflicts;
    if (result.status != sim::RunStatus::kAllDecided) ++tally.blocked;
    int commit_count = 0;
    int abort_count = 0;
    for (const auto& d : result.decisions) {
      if (!d.has_value()) continue;
      (*d == Decision::kCommit ? commit_count : abort_count) += 1;
    }
    if (commit_count > 0) ++tally.commits;
    if (abort_count > 0) ++tally.aborts;
  }
  return tally;
}

void body(bench::Context& ctx) {
  using rcommit::Table;
  const int runs = ctx.runs(500);

  ctx.out() << "E7: timing violations vs commit protocols, n = 5, all votes "
               "commit, K = 2, "
            << runs << " runs per cell\n";

  std::map<std::pair<Proto, Scenario>, Tally> tallies;
  for (auto scenario : {Scenario::kLateMessage, Scenario::kCoordinatorDies,
                        Scenario::kLeaderIsolated}) {
    const char* table_name = "scenario_a_late_message";
    switch (scenario) {
      case Scenario::kLateMessage:
        ctx.out() << "\nscenario A: one message delayed by 60 ticks "
                     "(timeouts are 4K = 8), no failures\n";
        break;
      case Scenario::kCoordinatorDies:
        table_name = "scenario_b_coordinator_dies";
        ctx.out() << "\nscenario B: coordinator crashes in the middle of "
                     "its outcome broadcast\n";
        break;
      case Scenario::kLeaderIsolated:
        table_name = "scenario_c_leader_isolated";
        ctx.out() << "\nscenario C: every message into processor 1 (the "
                     "termination-protocol leader) is late, no failures\n";
        break;
    }
    Table table({"protocol", "conflicting runs", "blocked runs",
                 "runs w/ commit", "runs w/ abort"});
    for (auto proto : {Proto::kTwoPcPresume, Proto::kTwoPcBlock, Proto::kThreePc,
                       Proto::kQ3pc, Proto::kOurs}) {
      const auto tally = run_protocol(ctx, proto, scenario, runs);
      table.row({proto_name(proto), Table::num(static_cast<int64_t>(tally.conflicts)),
                 Table::num(static_cast<int64_t>(tally.blocked)),
                 Table::num(static_cast<int64_t>(tally.commits)),
                 Table::num(static_cast<int64_t>(tally.aborts))});
      tallies[{proto, scenario}] = tally;
    }
    ctx.table(table_name, table);
  }

  const auto& presume_late = tallies[{Proto::kTwoPcPresume, Scenario::kLateMessage}];
  const auto& threepc_late = tallies[{Proto::kThreePc, Scenario::kLateMessage}];
  const auto& block_crash = tallies[{Proto::kTwoPcBlock, Scenario::kCoordinatorDies}];
  const auto& q3pc_late = tallies[{Proto::kQ3pc, Scenario::kLateMessage}];
  const auto& q3pc_crash = tallies[{Proto::kQ3pc, Scenario::kCoordinatorDies}];
  const auto& q3pc_isolated = tallies[{Proto::kQ3pc, Scenario::kLeaderIsolated}];
  const auto& ours_late = tallies[{Proto::kOurs, Scenario::kLateMessage}];
  const auto& ours_crash = tallies[{Proto::kOurs, Scenario::kCoordinatorDies}];
  const auto& ours_isolated = tallies[{Proto::kOurs, Scenario::kLeaderIsolated}];

  ctx.scalar("ours_conflicts",
             ours_late.conflicts + ours_crash.conflicts + ours_isolated.conflicts,
             "runs");
  ctx.scalar("ours_blocked",
             ours_late.blocked + ours_crash.blocked + ours_isolated.blocked,
             "runs");

  ctx.claim({"C13a", "a single late message drives 2PC/3PC to a wrong answer",
             "2PC-presume conflicts: " +
                 Table::num(static_cast<int64_t>(presume_late.conflicts)) +
                 ", 3PC conflicts: " +
                 Table::num(static_cast<int64_t>(threepc_late.conflicts)),
             presume_late.conflicts > 0 && threepc_late.conflicts > 0});
  ctx.claim({"C13b",
             "the safe 2PC variant escapes wrong answers only by blocking "
             "(coordinator-crash scenario)",
             "2PC-block: conflicts " +
                 Table::num(static_cast<int64_t>(block_crash.conflicts)) +
                 ", blocked " + Table::num(static_cast<int64_t>(block_crash.blocked)),
             block_crash.conflicts == 0 && block_crash.blocked > 0});
  ctx.claim({"C13c",
             "the termination protocol fixes A and B but falls to leader "
             "isolation (C): the synchrony assumption, not the rule set, is "
             "the flaw",
             "Q3PC conflicts A/B/C: " +
                 Table::num(static_cast<int64_t>(q3pc_late.conflicts)) + "/" +
                 Table::num(static_cast<int64_t>(q3pc_crash.conflicts)) + "/" +
                 Table::num(static_cast<int64_t>(q3pc_isolated.conflicts)),
             q3pc_late.conflicts == 0 && q3pc_crash.conflicts == 0 &&
                 q3pc_isolated.conflicts > 0});
  ctx.claim({"C13d", "Protocol 2 neither conflicts nor blocks in any scenario",
             "conflicts: " +
                 Table::num(static_cast<int64_t>(ours_late.conflicts +
                                                 ours_crash.conflicts +
                                                 ours_isolated.conflicts)) +
                 ", blocked: " +
                 Table::num(static_cast<int64_t>(ours_late.blocked +
                                                 ours_crash.blocked +
                                                 ours_isolated.blocked)),
             ours_late.conflicts + ours_crash.conflicts + ours_isolated.conflicts ==
                     0 &&
                 ours_late.blocked + ours_crash.blocked + ours_isolated.blocked ==
                     0});
}

}  // namespace

int main(int argc, char** argv) {
  return rcommit::bench::run(
      argc, argv,
      {"E7", "bench_late_messages",
       "timing violations vs 2PC/3PC/Q3PC/Protocol 2 (§1 motivation)",
       {"C13a", "C13b", "C13c", "C13d"}},
      body);
}
