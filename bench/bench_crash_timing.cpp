// E13 — outcome vs. crash timing (phase-boundary ablation).
//
// Sweeps the instant a single crash strikes — from before the GO broadcast,
// through the GO/vote collection windows, into the agreement stages — for
// both the coordinator and a participant, and reports how the fleet
// responds. The paper's structure is directly visible in the rows: a
// coordinator that dies mute leaves the protocol unstarted (the §2.4
// exemption); any later crash is absorbed, with the outcome drifting from
// abort (vote windows poisoned by the missing processor) to commit (crash
// after the votes are in).
#include <memory>
#include <vector>

#include "adversary/basic.h"
#include "adversary/crash.h"
#include "bench/harness.h"
#include "common/stats.h"
#include "metrics/report.h"
#include "protocol/commit.h"
#include "protocol/invariants.h"
#include "sim/simulator.h"

namespace {

using namespace rcommit;

struct TimingRow {
  int commits = 0;
  int aborts = 0;
  int blocked = 0;
  int conflicts = 0;
};

TimingRow run_crash_at(const bench::Context& ctx, ProcId victim, Tick at_clock,
                       int runs) {
  const SystemParams params{.n = 5, .t = 2, .k = 2};
  TimingRow row;
  for (int run = 0; run < runs; ++run) {
    const auto seed =
        ctx.derive_seed(static_cast<uint64_t>(run * 37 + victim * 5 + at_clock));
    std::vector<int> votes(5, 1);
    adversary::CrashPlan plan;
    plan.victim = victim;
    plan.at_clock = at_clock;
    auto adv = std::make_unique<adversary::CrashAdversary>(
        adversary::make_random_adversary(seed, 2),
        std::vector<adversary::CrashPlan>{plan});
    sim::Simulator sim({.seed = seed, .max_events = 40'000},
                       protocol::make_commit_fleet(params, votes), std::move(adv));
    const auto result = sim.run();
    if (!protocol::agreement_holds(result)) ++row.conflicts;
    if (result.status != sim::RunStatus::kAllDecided) {
      ++row.blocked;
      continue;
    }
    if (result.agreed_decision() == Decision::kCommit) {
      ++row.commits;
    } else {
      ++row.aborts;
    }
  }
  return row;
}

void body(bench::Context& ctx) {
  using rcommit::Table;
  const int runs = ctx.runs(300);

  ctx.out() << "E13: one crash at a controlled clock, n = 5, t = 2, K = 2, "
            << runs << " runs per row (random admissible timing)\n\n";

  bool no_conflicts = true;
  for (ProcId victim : {0, 2}) {
    ctx.out() << (victim == 0 ? "victim: coordinator (p0)\n"
                              : "victim: participant (p2)\n");
    Table table({"crash at clock", "commits", "aborts", "blocked", "conflicts"});
    for (Tick at : {1, 2, 3, 4, 6, 8, 12}) {
      const auto row = run_crash_at(ctx, victim, at, runs);
      table.row({Table::num(static_cast<int64_t>(at)),
                 Table::num(static_cast<int64_t>(row.commits)),
                 Table::num(static_cast<int64_t>(row.aborts)),
                 Table::num(static_cast<int64_t>(row.blocked)),
                 Table::num(static_cast<int64_t>(row.conflicts))});
      no_conflicts = no_conflicts && row.conflicts == 0;
    }
    ctx.table(victim == 0 ? "crash_timing_coordinator" : "crash_timing_participant",
              table);
    ctx.out() << '\n';
  }

  ctx.out() << "(coordinator at clock 1 = the mute-coordinator exemption of "
               "§2.4: no processor ever receives a message)\n";

  ctx.claim({"Thm9/11", "no crash instant produces conflicting decisions",
             no_conflicts ? "0 conflicts over all rows" : "CONFLICT",
             no_conflicts});
}

}  // namespace

int main(int argc, char** argv) {
  return rcommit::bench::run(
      argc, argv,
      {"E13", "bench_crash_timing",
       "outcome vs crash timing: phase-boundary ablation (Thms 9/11)",
       {"Thm9/11"}},
      body);
}
