// Shared harness for the bench_* binaries.
//
// Every experiment registers its metadata (experiment id, binary name,
// title, claim ids) and a body; the harness owns the command line, the
// structured result, and the timing protocol, so all 15 binaries speak the
// same flags and emit the same JSON schema:
//
//   --json=<path>   write the BenchResult JSON ("-" for stdout)
//   --quick         reduced grids / run counts for the CI smoke job
//   --repeat=<N>    time the bench body over N silent re-runs (the printing
//                   run becomes an untimed warmup)
//   --seed0=<N>     base seed every per-run seed derives from (default 1,
//                   which reproduces the archived EXPERIMENTS.md numbers)
//   --list          print id/title/claims and exit
//   --help          usage
//
// An unknown flag prints usage and exits 2 instead of being silently
// ignored. A claim that fails to hold makes the binary exit 1, so running a
// bench IS running its regression check; tools/bench_compare additionally
// gates verdict flips and timing drift against an archived baseline.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/stats.h"
#include "metrics/report.h"

namespace rcommit::bench {

struct BenchInfo {
  std::string experiment_id;           ///< "E1".."E14", "micro"
  std::string name;                    ///< binary name, e.g. "bench_stages"
  std::string title;                   ///< one line, printed and archived
  std::vector<std::string> claim_ids;  ///< e.g. {"C1", "C6"}; may be empty
};

/// Handed to the bench body: measurement sinks plus the run configuration.
/// All stdout goes through out() so timing re-runs can be silenced.
class Context {
 public:
  Context(const BenchInfo& info, bool quick, int repeat, uint64_t seed0,
          std::ostream& out);

  [[nodiscard]] bool quick() const { return quick_; }
  [[nodiscard]] int repeat() const { return repeat_; }
  [[nodiscard]] uint64_t seed0() const { return seed0_; }
  [[nodiscard]] std::ostream& out() const { return *out_; }

  /// Scales a per-row run count for quick mode: `full` normally,
  /// max(quick_floor, full / 10) under --quick.
  [[nodiscard]] int runs(int full, int quick_floor = 25) const;

  /// Derives a per-run seed from the bench's local seed expression. With the
  /// default --seed0=1 this is the identity, so archived numbers reproduce
  /// exactly; any other seed0 remixes every run deterministically.
  [[nodiscard]] uint64_t derive_seed(uint64_t local) const;

  /// Records a claim verdict. The harness prints the claim report after the
  /// body and fails the process if any claim does not hold.
  void claim(metrics::ClaimRow row);
  /// Records a named measured scalar for the JSON artifact.
  void scalar(const std::string& name, double value, const std::string& unit = "");
  /// Records an extra wall-time sample (the harness adds "total" itself).
  void timing(metrics::TimingSample sample);
  /// Prints the table to out() and archives its rendering in the artifact.
  void table(const std::string& name, const Table& table);

  [[nodiscard]] metrics::BenchResult& result() { return result_; }

 private:
  friend int run(int argc, const char* const* argv, const BenchInfo& info,
                 const std::function<void(Context&)>& body);

  bool quick_;
  int repeat_;
  uint64_t seed0_;
  std::ostream* out_;
  bool recording_ = true;  ///< false during silent timing re-runs
  metrics::BenchResult result_;
};

/// Runs one bench binary: parses flags, executes the body (plus silent
/// timing re-runs under --repeat), prints the claim report, writes the JSON
/// artifact. Returns the process exit code: 0 ok, 1 claim mismatch, 2 usage
/// error.
int run(int argc, const char* const* argv, const BenchInfo& info,
        const std::function<void(Context&)>& body);

}  // namespace rcommit::bench
