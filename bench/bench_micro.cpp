// Micro-benchmarks (google-benchmark): the hot paths under the experiments —
// codec round-trips, wire encode/decode, CRC, WAL appends, and raw simulator
// event throughput. These quantify the substrate costs so the protocol-level
// numbers in E1-E14 can be read with the constant factors in mind.
//
// Runs under the shared bench harness instead of BENCHMARK_MAIN so it speaks
// the same flags and emits the same JSON artifact as the E-benches; each
// google-benchmark result becomes one TimingSample (seconds per iteration).
#include <benchmark/benchmark.h>

#include <filesystem>
#include <string>

#include "adversary/basic.h"
#include "bench/harness.h"
#include "common/codec.h"
#include "common/rng.h"
#include "db/wal.h"
#include "protocol/commit.h"
#include "protocol/messages.h"
#include "sim/simulator.h"
#include "transport/wire.h"

namespace {

using namespace rcommit;

void BM_CodecVarintRoundTrip(benchmark::State& state) {
  for (auto _ : state) {
    BufWriter w;
    for (uint64_t v = 1; v < 1u << 20; v <<= 1) w.varint(v * 2654435761u);
    BufReader r(w.data());
    uint64_t sum = 0;
    while (!r.exhausted()) sum += r.varint();
    benchmark::DoNotOptimize(sum);
  }
}
BENCHMARK(BM_CodecVarintRoundTrip);

void BM_Crc32c(benchmark::State& state) {
  std::vector<uint8_t> data(static_cast<size_t>(state.range(0)));
  RandomTape rng(1);
  for (auto& b : data) b = static_cast<uint8_t>(rng.next_below(256));
  for (auto _ : state) {
    benchmark::DoNotOptimize(crc32c(data));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Crc32c)->Arg(64)->Arg(4096);

void BM_WireEncodeDecodePiggybacked(benchmark::State& state) {
  const auto msg = sim::make_message<protocol::PiggybackedMsg>(
      std::vector<uint8_t>(16, 1),
      sim::make_message<protocol::AgreementR2>(3, 1));
  const auto& registry = transport::WireRegistry::instance();
  for (auto _ : state) {
    const auto bytes = registry.encode(*msg);
    benchmark::DoNotOptimize(registry.decode(bytes));
  }
}
BENCHMARK(BM_WireEncodeDecodePiggybacked);

void BM_WalAppend(benchmark::State& state) {
  namespace fs = std::filesystem;
  const fs::path path = fs::temp_directory_path() /
                        ("rcommit_bm_wal_" + std::to_string(::getpid()) + ".wal");
  fs::remove(path);
  db::WriteAheadLog wal(path);
  int64_t txn = 0;
  for (auto _ : state) {
    wal.append({db::WalRecordType::kWrite, ++txn, "some-key", "some-value"});
  }
  state.SetItemsProcessed(state.iterations());
  fs::remove(path);
}
BENCHMARK(BM_WalAppend);

void BM_SimulatorCommitRun(benchmark::State& state) {
  const auto n = static_cast<int32_t>(state.range(0));
  SystemParams params{.n = n, .t = (n - 1) / 2, .k = 2};
  uint64_t seed = 1;
  int64_t events = 0;
  for (auto _ : state) {
    std::vector<int> votes(static_cast<size_t>(n), 1);
    sim::Simulator sim({.seed = ++seed, .record_trace = false},
                       protocol::make_commit_fleet(params, votes),
                       adversary::make_random_adversary(seed, 3));
    const auto result = sim.run();
    events += result.events;
    benchmark::DoNotOptimize(result.decisions.front());
  }
  state.SetItemsProcessed(events);
  state.SetLabel("events/iteration ~" + std::to_string(events / state.iterations()));
}
BENCHMARK(BM_SimulatorCommitRun)->Arg(5)->Arg(9)->Arg(13);

void BM_RandomTape(benchmark::State& state) {
  RandomTape tape(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tape.next_real());
  }
}
BENCHMARK(BM_RandomTape);

/// Console output as usual, plus one TimingSample per benchmark: mean real
/// seconds per iteration, with the iteration count as the repeat count.
class CaptureReporter : public benchmark::ConsoleReporter {
 public:
  explicit CaptureReporter(bench::Context& ctx) : ctx_(ctx) {}

  void ReportRuns(const std::vector<Run>& report) override {
    for (const auto& run : report) {
      if (run.run_type != Run::RT_Iteration || run.error_occurred) continue;
      const double per_iter =
          run.iterations > 0
              ? run.real_accumulated_time / static_cast<double>(run.iterations)
              : 0.0;
      ctx_.timing({run.benchmark_name(), per_iter,
                   static_cast<int>(run.iterations), 0});
    }
    benchmark::ConsoleReporter::ReportRuns(report);
  }

 private:
  bench::Context& ctx_;
};

void body(bench::Context& ctx) {
  // The harness owns the real command line; google-benchmark sees only a
  // synthetic one (quick mode shrinks the per-benchmark minimum time).
  std::string min_time = "--benchmark_min_time=";
  min_time += ctx.quick() ? "0.02" : "0.1";
  std::string prog = "bench_micro";
  std::vector<char*> argv = {prog.data(), min_time.data()};
  int argc = static_cast<int>(argv.size());
  benchmark::Initialize(&argc, argv.data());

  CaptureReporter reporter(ctx);
  reporter.SetOutputStream(&ctx.out());
  reporter.SetErrorStream(&ctx.out());
  benchmark::RunSpecifiedBenchmarks(&reporter);
}

}  // namespace

int main(int argc, char** argv) {
  return rcommit::bench::run(
      argc, argv,
      {"micro", "bench_micro",
       "substrate micro-benchmarks: codec, CRC, wire, WAL, simulator, RNG",
       {}},
      body);
}
