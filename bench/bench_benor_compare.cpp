// E6 — shared coins vs. local coins: the exponential/constant separation
// (claim C14).
//
// The paper (§1): "Our agreement subroutine is a modification of Ben-Or's
// asynchronous agreement protocol. The modification lowers the expected
// running time from exponential to constant." We drive both variants with
// the omniscient split-vote adversary (strictly stronger than the paper's
// content-oblivious adversary — see src/adversary/omniscient.h), which holds
// every stage's first-phase messages and releases value-balanced quorums so
// no processor ever sees a majority. The only escape is a unanimous coin
// round: probability 2^(1-n) per stage for independent local coins (expected
// stages ~ 2^(n-1)), probability 1 for the shared coin list (constant).
#include <algorithm>
#include <cmath>
#include <memory>
#include <vector>

#include "adversary/omniscient.h"
#include "bench/harness.h"
#include "common/rng.h"
#include "common/stats.h"
#include "metrics/report.h"
#include "protocol/agreement.h"
#include "sim/simulator.h"

namespace {

using namespace rcommit;

struct CompareResult {
  Samples stages;
  int64_t censored = 0;  ///< runs stopped by the event budget
};

CompareResult run_variant(const bench::Context& ctx, int n, bool shared_coins,
                          int runs, int64_t max_events) {
  SystemParams params{.n = n, .t = (n - 1) / 2, .k = 1};
  CompareResult out;
  for (int run = 0; run < runs; ++run) {
    const auto seed = ctx.derive_seed(
        static_cast<uint64_t>(run * 104729 + n * 7 + (shared_coins ? 1 : 0)));
    auto spy = std::make_shared<adversary::BroadcastSpy>();

    RandomTape coin_rng(seed ^ 0xc0135);
    std::vector<uint8_t> coins;
    if (shared_coins) coins = coin_rng.flip_bits(4096);  // enough for any run

    std::vector<std::unique_ptr<sim::Process>> fleet;
    for (int i = 0; i < n; ++i) {
      protocol::AgreementProcess::Options options;
      options.params = params;
      options.initial_value = i % 2;  // maximally split inputs
      options.coins = coins;
      options.observer = [spy, i](Tick clock, int phase, int stage, int value) {
        spy->record(i, clock, adversary::SpiedSend{phase, stage, value});
      };
      fleet.push_back(std::make_unique<protocol::AgreementProcess>(std::move(options)));
    }
    auto adv = std::make_unique<adversary::SplitVoteAdversary>(spy, params.t);
    sim::Simulator sim({.seed = seed, .max_events = max_events}, std::move(fleet),
                       std::move(adv));
    const auto result = sim.run();
    if (result.status != sim::RunStatus::kAllDecided) {
      ++out.censored;
      continue;
    }
    int max_stage = 0;
    for (const auto& proc : sim.processes()) {
      const auto& core = dynamic_cast<const protocol::AgreementProcess&>(*proc).core();
      max_stage = std::max(max_stage, core.decision_stage());
    }
    out.stages.add(max_stage);
  }
  return out;
}

void body(bench::Context& ctx) {
  using rcommit::Table;

  ctx.out() << "E6: local-coin Ben-Or vs shared-coin Protocol 1 under the\n"
               "omniscient split-vote adversary (worst-case scheduler;\n"
               "stronger than the paper's model — see DESIGN.md D4)\n\n";

  // Each local-coin run costs ~2^(n-1) stages, so the grid — not the
  // per-row run count — dominates cost; quick mode drops the n = 10 rows.
  const std::vector<int> sizes =
      ctx.quick() ? std::vector<int>{4, 6, 8} : std::vector<int>{4, 6, 8, 10};

  Table table({"n", "variant", "runs", "mean stages", "max stages", "censored",
               "theory E[stages]"});
  double shared_worst_mean = 0.0;
  bool exponential_growth = true;
  double prev_local_mean = 0.0;
  for (int n : sizes) {
    // Fewer runs for large n: each local-coin run costs ~2^(n-1) stages.
    const int full_runs = n <= 6 ? 200 : (n == 8 ? 80 : 30);
    const int runs = ctx.runs(full_runs, /*quick_floor=*/full_runs / 4);
    const int64_t budget = 400'000 + (static_cast<int64_t>(1) << (n + 12));

    const auto local = run_variant(ctx, n, /*shared_coins=*/false, runs, budget);
    const auto shared = run_variant(ctx, n, /*shared_coins=*/true, runs, budget);

    const double theory = std::pow(2.0, n - 1);
    table.row({Table::num(static_cast<int64_t>(n)), "local coins (Ben-Or)",
               Table::num(static_cast<int64_t>(runs)), Table::num(local.stages.mean()),
               Table::num(local.stages.max(), 0), Table::num(local.censored),
               "~" + Table::num(theory, 0)});
    table.row({Table::num(static_cast<int64_t>(n)), "shared coins (paper)",
               Table::num(static_cast<int64_t>(runs)), Table::num(shared.stages.mean()),
               Table::num(shared.stages.max(), 0), Table::num(shared.censored), "<= 4"});

    shared_worst_mean = std::max(shared_worst_mean, shared.stages.mean());
    if (n > 4 && local.stages.mean() < 1.5 * prev_local_mean) {
      exponential_growth = false;
    }
    prev_local_mean = local.stages.mean();
  }
  ctx.table("variant_compare", table);

  ctx.scalar("shared_worst_mean_stages", shared_worst_mean, "stages");
  ctx.scalar("largest_n_local_mean_stages", prev_local_mean, "stages");

  ctx.claim({"C14a", "shared coins: constant expected stages vs the adversary",
             "worst mean = " + Table::num(shared_worst_mean),
             shared_worst_mean <= 4.0});
  ctx.claim({"C14b", "local coins: expected stages grow exponentially in n",
             exponential_growth ? "mean stages grow >= 1.5x per +2 processors"
                                : "growth slower than exponential",
             exponential_growth});
}

}  // namespace

int main(int argc, char** argv) {
  return rcommit::bench::run(
      argc, argv,
      {"E6", "bench_benor_compare",
       "local-coin Ben-Or vs shared-coin Protocol 1 (exponential/constant "
       "separation, §1)",
       {"C14a", "C14b"}},
      body);
}
