// E5 — validity conditions under hostile timing (claims C9, C10).
//
// Abort validity (Theorem 9): if any processor initially wants to abort, the
// decision is abort "no matter what the timing behavior of the system is".
// Commit validity: all-commit + failure-free + on-time forces commit. We
// hammer the first across four adversary families and verify the second on
// the on-time family.
#include <memory>
#include <vector>

#include "adversary/adaptive.h"
#include "adversary/basic.h"
#include "adversary/crash.h"
#include "adversary/stretch.h"
#include "bench/harness.h"
#include "common/stats.h"
#include "metrics/report.h"
#include "protocol/commit.h"
#include "protocol/invariants.h"
#include "sim/simulator.h"

namespace {

using namespace rcommit;

std::unique_ptr<sim::Adversary> make_adversary(int family, const SystemParams& params,
                                               uint64_t seed) {
  switch (family) {
    case 0:
      return adversary::make_on_time_adversary();
    case 1:
      return adversary::make_random_adversary(seed, 6);
    case 2:
      return std::make_unique<adversary::DelayStretchAdversary>(9);
    default: {
      auto plans = adversary::random_crash_plans(seed, params.n, params.t, 20);
      for (auto& p : plans) {
        if (p.victim == 0 && p.at_clock == 1 && p.suppress_sends_to.empty()) {
          p.at_clock = 2;
        }
      }
      return std::make_unique<adversary::CrashAdversary>(
          adversary::make_random_adversary(seed, 4), std::move(plans));
    }
  }
}

const char* family_name(int family) {
  switch (family) {
    case 0: return "on-time";
    case 1: return "random";
    case 2: return "stretch x9 (all late)";
    default: return "crash(t)+random";
  }
}

void body(bench::Context& ctx) {
  using rcommit::Table;
  const int runs = ctx.runs(500);
  const SystemParams params{.n = 7, .t = 3, .k = 2};

  ctx.out() << "E5: validity conditions, n = 7, t = 3, K = 2, " << runs
            << " runs per row\n\n";

  // --- abort validity: one aborter, the rest want commit --------------------
  Table abort_table({"adversary", "decided runs", "aborts", "commits (violations)"});
  bool abort_ok = true;
  for (int family = 0; family < 4; ++family) {
    int decided = 0;
    int aborts = 0;
    int commits = 0;
    for (int run = 0; run < runs; ++run) {
      const auto seed = ctx.derive_seed(static_cast<uint64_t>(run * 53 + family + 1));
      std::vector<int> votes(7, 1);
      votes[static_cast<size_t>(run % 7)] = 0;
      // Aborter must survive for the crash family: abort validity is about
      // a live processor's wish.
      sim::Simulator sim({.seed = seed, .max_events = 100'000},
                         protocol::make_commit_fleet(params, votes),
                         make_adversary(family, params, seed));
      const auto result = sim.run();
      if (!protocol::abort_validity_holds(result, votes)) ++commits;
      if (result.status == sim::RunStatus::kAllDecided) {
        ++decided;
        if (result.agreed_decision() == Decision::kAbort) ++aborts;
      }
    }
    abort_ok = abort_ok && commits == 0;
    abort_table.row({family_name(family), Table::num(static_cast<int64_t>(decided)),
                     Table::num(static_cast<int64_t>(aborts)),
                     Table::num(static_cast<int64_t>(commits))});
  }
  ctx.out() << "abort validity (one initial abort):\n";
  ctx.table("abort_validity", abort_table);

  // --- commit validity: all-commit, failure-free, on-time -------------------
  int commit_ok_runs = 0;
  for (int run = 0; run < runs; ++run) {
    const auto seed = ctx.derive_seed(static_cast<uint64_t>(run * 97 + 11));
    std::vector<int> votes(7, 1);
    sim::Simulator sim({.seed = seed}, protocol::make_commit_fleet(params, votes),
                       adversary::make_on_time_adversary());
    const auto result = sim.run();
    if (result.status == sim::RunStatus::kAllDecided &&
        result.agreed_decision() == Decision::kCommit) {
      ++commit_ok_runs;
    }
  }
  const bool commit_ok = commit_ok_runs == runs;
  ctx.out() << "\ncommit validity: " << commit_ok_runs << "/" << runs
            << " all-commit failure-free on-time runs committed\n";

  ctx.scalar("commit_validity_runs", commit_ok_runs, "runs");

  ctx.claim({"C9", "any initial abort forces abort, under ANY timing",
             abort_ok ? "0 violations across 4 adversary families" : "VIOLATION",
             abort_ok});
  ctx.claim({"C10", "all-commit failure-free on-time runs commit",
             Table::num(static_cast<int64_t>(commit_ok_runs)) + "/" +
                 Table::num(static_cast<int64_t>(runs)) + " committed",
             commit_ok});
}

}  // namespace

int main(int argc, char** argv) {
  return rcommit::bench::run(
      argc, argv,
      {"E5", "bench_validity",
       "abort/commit validity under hostile timing (Theorem 9)", {"C9", "C10"}},
      body);
}
