// E5 — validity conditions under hostile timing (claims C9, C10).
//
// Abort validity (Theorem 9): if any processor initially wants to abort, the
// decision is abort "no matter what the timing behavior of the system is".
// Commit validity: all-commit + failure-free + on-time forces commit. We
// hammer the first across four adversary families and verify the second on
// the on-time family.
#include <iostream>
#include <memory>
#include <vector>

#include "adversary/adaptive.h"
#include "adversary/basic.h"
#include "adversary/crash.h"
#include "adversary/stretch.h"
#include "common/stats.h"
#include "metrics/report.h"
#include "protocol/commit.h"
#include "protocol/invariants.h"
#include "sim/simulator.h"

namespace {

using namespace rcommit;

std::unique_ptr<sim::Adversary> make_adversary(int family, const SystemParams& params,
                                               uint64_t seed) {
  switch (family) {
    case 0:
      return adversary::make_on_time_adversary();
    case 1:
      return adversary::make_random_adversary(seed, 6);
    case 2:
      return std::make_unique<adversary::DelayStretchAdversary>(9);
    default: {
      auto plans = adversary::random_crash_plans(seed, params.n, params.t, 20);
      for (auto& p : plans) {
        if (p.victim == 0 && p.at_clock == 1 && p.suppress_sends_to.empty()) {
          p.at_clock = 2;
        }
      }
      return std::make_unique<adversary::CrashAdversary>(
          adversary::make_random_adversary(seed, 4), std::move(plans));
    }
  }
}

const char* family_name(int family) {
  switch (family) {
    case 0: return "on-time";
    case 1: return "random";
    case 2: return "stretch x9 (all late)";
    default: return "crash(t)+random";
  }
}

}  // namespace

int main() {
  using rcommit::Table;
  constexpr int kRuns = 500;
  const SystemParams params{.n = 7, .t = 3, .k = 2};

  std::cout << "E5: validity conditions, n = 7, t = 3, K = 2, " << kRuns
            << " runs per row\n\n";

  // --- abort validity: one aborter, the rest want commit --------------------
  Table abort_table({"adversary", "decided runs", "aborts", "commits (violations)"});
  bool abort_ok = true;
  for (int family = 0; family < 4; ++family) {
    int decided = 0;
    int aborts = 0;
    int commits = 0;
    for (int run = 0; run < kRuns; ++run) {
      const auto seed = static_cast<uint64_t>(run * 53 + family + 1);
      std::vector<int> votes(7, 1);
      votes[static_cast<size_t>(run % 7)] = 0;
      // Aborter must survive for the crash family: abort validity is about
      // a live processor's wish.
      sim::Simulator sim({.seed = seed, .max_events = 100'000},
                         protocol::make_commit_fleet(params, votes),
                         make_adversary(family, params, seed));
      const auto result = sim.run();
      if (!protocol::abort_validity_holds(result, votes)) ++commits;
      if (result.status == sim::RunStatus::kAllDecided) {
        ++decided;
        if (result.agreed_decision() == Decision::kAbort) ++aborts;
      }
    }
    abort_ok = abort_ok && commits == 0;
    abort_table.row({family_name(family), Table::num(static_cast<int64_t>(decided)),
                     Table::num(static_cast<int64_t>(aborts)),
                     Table::num(static_cast<int64_t>(commits))});
  }
  std::cout << "abort validity (one initial abort):\n";
  abort_table.print(std::cout);

  // --- commit validity: all-commit, failure-free, on-time -------------------
  int commit_ok_runs = 0;
  for (int run = 0; run < kRuns; ++run) {
    const auto seed = static_cast<uint64_t>(run * 97 + 11);
    std::vector<int> votes(7, 1);
    sim::Simulator sim({.seed = seed}, protocol::make_commit_fleet(params, votes),
                       adversary::make_on_time_adversary());
    const auto result = sim.run();
    if (result.status == sim::RunStatus::kAllDecided &&
        result.agreed_decision() == Decision::kCommit) {
      ++commit_ok_runs;
    }
  }
  const bool commit_ok = commit_ok_runs == kRuns;
  std::cout << "\ncommit validity: " << commit_ok_runs << "/" << kRuns
            << " all-commit failure-free on-time runs committed\n";

  metrics::print_claim_report(
      std::cout, "E5 claims",
      {
          {"C9", "any initial abort forces abort, under ANY timing",
           abort_ok ? "0 violations across 4 adversary families" : "VIOLATION",
           abort_ok},
          {"C10", "all-commit failure-free on-time runs commit",
           Table::num(static_cast<int64_t>(commit_ok_runs)) + "/" +
               Table::num(static_cast<int64_t>(kRuns)) + " committed",
           commit_ok},
      });
  return 0;
}
