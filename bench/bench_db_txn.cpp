// E11 — the database substrate under each commit backend.
//
// The paper's introduction motivates the commit problem with distributed
// database transactions. This bench runs bursts of cross-shard transactions
// through the WAL-backed sharded KV store with the commit decision made by
// (a) the paper's Protocol 2, (b) 2PC, (c) 3PC, (d) quorum-based 3PC — over
// a threaded network with real delays — and reports throughput, abort rate,
// and atomicity
// violations (a transaction visible on one shard but not another).
#include <chrono>
#include <filesystem>
#include <string>

#include "bench/harness.h"
#include "common/stats.h"
#include "db/txn.h"
#include "metrics/report.h"

namespace {

using namespace rcommit;
namespace fs = std::filesystem;

struct DbStats {
  int committed = 0;
  int aborted = 0;
  int in_doubt = 0;
  int atomicity_violations = 0;
  double txn_per_sec = 0.0;
};

DbStats run_backend(db::CommitBackend backend, int txns, uint64_t seed) {
  const fs::path dir = fs::temp_directory_path() /
                       ("rcommit_bench_db_" + std::to_string(::getpid()) + "_" +
                        std::to_string(static_cast<int>(backend)));
  fs::remove_all(dir);
  fs::create_directories(dir);

  db::DistributedDb::Options options;
  options.shard_count = 5;
  options.data_dir = dir;
  options.backend = backend;
  options.seed = seed;
  options.network = {.min_delay = std::chrono::microseconds(30),
                     .max_delay = std::chrono::microseconds(300)};
  db::DistributedDb database(options);

  DbStats stats;
  // Throughput reporting over a real threaded network — wall time is the
  // measurement, not a simulation input.
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < txns; ++i) {
    const int a = i % 5;
    const int b = (i + 1 + i / 5) % 5;
    if (a == b) continue;
    const std::string key = "k" + std::to_string(i);
    const auto outcome = database.execute({
        {a, {{key, "left"}}},
        {b, {{key, "right"}}},
    });
    if (!outcome.decided) {
      ++stats.in_doubt;
      continue;
    }
    (outcome.decision == Decision::kCommit ? stats.committed : stats.aborted) += 1;
    const bool on_a = database.get(a, key).has_value();
    const bool on_b = database.get(b, key).has_value();
    if (on_a != on_b) ++stats.atomicity_violations;
  }
  const auto end = std::chrono::steady_clock::now();
  const auto elapsed = std::chrono::duration<double>(end - start).count();
  stats.txn_per_sec = static_cast<double>(txns) / elapsed;

  std::error_code ec;
  fs::remove_all(dir, ec);
  return stats;
}

const char* backend_name(db::CommitBackend backend) {
  switch (backend) {
    case db::CommitBackend::kPaperProtocol: return "Protocol 2 (paper)";
    case db::CommitBackend::kTwoPc: return "2PC";
    case db::CommitBackend::kThreePc: return "3PC";
    default: return "3PC + termination";
  }
}

void body(bench::Context& ctx) {
  using rcommit::Table;
  const int txns = ctx.runs(60, /*quick_floor=*/20);

  ctx.out() << "E11: 5-shard KV database, " << txns
            << " cross-shard transactions per backend,\nthreaded network with "
               "30-300us delays, WAL-backed shards\n\n";

  Table table({"backend", "committed", "aborted", "in doubt", "atomicity violations",
               "txn/sec"});
  bool paper_atomic = false;
  for (auto backend : {db::CommitBackend::kPaperProtocol, db::CommitBackend::kTwoPc,
                       db::CommitBackend::kThreePc, db::CommitBackend::kQ3pc}) {
    const auto stats = run_backend(backend, txns, ctx.derive_seed(5));
    table.row({backend_name(backend), Table::num(static_cast<int64_t>(stats.committed)),
               Table::num(static_cast<int64_t>(stats.aborted)),
               Table::num(static_cast<int64_t>(stats.in_doubt)),
               Table::num(static_cast<int64_t>(stats.atomicity_violations)),
               Table::num(stats.txn_per_sec, 1)});
    if (backend == db::CommitBackend::kPaperProtocol) {
      paper_atomic = stats.atomicity_violations == 0 && stats.committed > 0;
      ctx.scalar("paper_txn_per_sec", stats.txn_per_sec, "txn/s");
    }
  }
  ctx.table("db_backends", table);

  ctx.claim({"intro", "transactions install at all processors or none (§1)",
             paper_atomic ? "0 atomicity violations with Protocol 2"
                          : "violation or no commits",
             paper_atomic});
}

}  // namespace

int main(int argc, char** argv) {
  return rcommit::bench::run(
      argc, argv,
      {"E11", "bench_db_txn",
       "sharded KV database under each commit backend (§1 motivation)",
       {"intro"}},
      body);
}
