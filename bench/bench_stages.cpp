// E1 — expected stages of Protocol 1 (claims C1 and C6).
//
// Lemma 8: with at least n shared coins all nonfaulty processors decide in at
// most 4 expected stages. Remark (3) §3.2: flipping more than n coins pushes
// the expectation toward 3. Sweeping the coin-list length at several system
// sizes under randomized admissible timing reproduces both: measured means
// sit well under the proofs' bounds, and longer coin lists shave the tail.
#include <vector>

#include "adversary/basic.h"
#include "bench/harness.h"
#include "common/rng.h"
#include "common/stats.h"
#include "metrics/report.h"
#include "protocol/agreement.h"
#include "sim/simulator.h"

namespace {

using namespace rcommit;

struct StageStats {
  Samples stages;
  int64_t undecided = 0;
};

StageStats run_sweep(const bench::Context& ctx, int n, int coin_len, int runs) {
  SystemParams params{.n = n, .t = (n - 1) / 2, .k = 2};
  StageStats stats;
  for (int run = 0; run < runs; ++run) {
    const auto seed = ctx.derive_seed(
        static_cast<uint64_t>(run * 7919 + n * 131 + coin_len + 1));
    RandomTape coin_rng(seed ^ 0xc01);
    const auto coins = coin_rng.flip_bits(coin_len);
    RandomTape input_rng(seed ^ 0x1117);

    std::vector<std::unique_ptr<sim::Process>> fleet;
    for (int i = 0; i < n; ++i) {
      protocol::AgreementProcess::Options options;
      options.params = params;
      options.initial_value = input_rng.flip();  // worst case: mixed inputs
      options.coins = coins;
      fleet.push_back(std::make_unique<protocol::AgreementProcess>(std::move(options)));
    }
    sim::Simulator sim({.seed = seed}, std::move(fleet),
                       adversary::make_random_adversary(seed + 13, 4));
    const auto result = sim.run();
    if (result.status != sim::RunStatus::kAllDecided) {
      ++stats.undecided;
      continue;
    }
    int max_stage = 0;
    for (const auto& proc : sim.processes()) {
      const auto& core =
          dynamic_cast<const protocol::AgreementProcess&>(*proc).core();
      max_stage = std::max(max_stage, core.decision_stage());
    }
    stats.stages.add(max_stage);
  }
  return stats;
}

void body(bench::Context& ctx) {
  using rcommit::Table;
  const int runs = ctx.runs(1500);

  ctx.out() << "E1: expected stages of Protocol 1 (Lemma 8 / remark 3)\n"
            << runs << " seeded runs per row, mixed inputs, random admissible "
               "timing, t = (n-1)/2\n\n";

  Table table({"n", "coins", "mean stages", "p99", "max", "undecided"});
  double worst_mean_with_coins = 0.0;
  double mean_n5_coins_n = 0.0;
  double mean_n5_coins_4n = 0.0;
  for (int n : {3, 5, 7, 9, 13}) {
    for (int coin_len : {0, n, 4 * n}) {
      const auto stats = run_sweep(ctx, n, coin_len, runs);
      table.row({Table::num(static_cast<int64_t>(n)),
                 Table::num(static_cast<int64_t>(coin_len)),
                 Table::num(stats.stages.mean()),
                 Table::num(stats.stages.percentile(0.99)),
                 Table::num(stats.stages.max()),
                 Table::num(stats.undecided)});
      if (coin_len >= n) {
        worst_mean_with_coins = std::max(worst_mean_with_coins, stats.stages.mean());
      }
      if (n == 5 && coin_len == n) mean_n5_coins_n = stats.stages.mean();
      if (n == 5 && coin_len == 4 * n) mean_n5_coins_4n = stats.stages.mean();
    }
  }
  ctx.table("stages_by_coin_len", table);

  ctx.scalar("worst_mean_stages_with_coins", worst_mean_with_coins, "stages");
  ctx.scalar("mean_stages_n5_coins_n", mean_n5_coins_n, "stages");
  ctx.scalar("mean_stages_n5_coins_4n", mean_n5_coins_4n, "stages");

  ctx.claim({"C1", "expected stages <= 4 with >= n shared coins",
             "worst mean = " + Table::num(worst_mean_with_coins),
             worst_mean_with_coins <= 4.0});
  ctx.claim({"C6", "more coins do not increase expected stages (→3)",
             "n=5: coins=n mean " + Table::num(mean_n5_coins_n) +
                 " vs coins=4n mean " + Table::num(mean_n5_coins_4n),
             mean_n5_coins_4n <= mean_n5_coins_n + 0.1});
}

}  // namespace

int main(int argc, char** argv) {
  return rcommit::bench::run(
      argc, argv,
      {"E1", "bench_stages",
       "expected stages of Protocol 1 (Lemma 8 / remark 3)", {"C1", "C6"}},
      body);
}
