// E18 — commit-baseline comparison: Paxos Commit and BFT commit against
// 2PC/3PC/Q3PC and the paper's Protocol 2.
//
// Two cost tables (messages per decided instance, asynchronous rounds to
// decision) put the new baselines on the same failure-free axis as the old
// ones, and four gated claims lock the properties that justify their
// existence:
//   * paxos_f0_2pc        — with F=0 acceptors Paxos Commit degenerates to
//                           exactly 2PC's message count (Gray–Lamport §4.1),
//   * paxos_c13_safe      — under the paper's §1 late-message scenario (the
//                           C13 shape that splits 2PC/3PC) Paxos Commit
//                           neither conflicts nor blocks,
//   * paxos_nonblocking   — a dead coordinator stalls blocking 2PC forever;
//                           Paxos Commit's rotating recovery leaders decide,
//   * bft_byzantine_safe  — BFT commit keeps honest processors unanimous
//                           under seed-derived Byzantine traitors.
#include <memory>
#include <vector>

#include "adversary/basic.h"
#include "adversary/byzantine.h"
#include "adversary/crash.h"
#include "adversary/latemsg.h"
#include "baselines/bftcommit.h"
#include "baselines/paxoscommit.h"
#include "baselines/q3pc.h"
#include "baselines/threepc.h"
#include "baselines/twopc.h"
#include "bench/harness.h"
#include "common/stats.h"
#include "metrics/counters.h"
#include "protocol/commit.h"
#include "protocol/invariants.h"
#include "sim/simulator.h"

namespace {

using namespace rcommit;

enum class Proto { kTwoPc, kThreePc, kQ3pc, kPaxosF0, kPaxosFt, kBft, kOurs };

const char* proto_name(Proto p) {
  switch (p) {
    case Proto::kTwoPc: return "2PC (presume abort)";
    case Proto::kThreePc: return "3PC";
    case Proto::kQ3pc: return "Q3PC";
    case Proto::kPaxosF0: return "Paxos Commit F=0";
    case Proto::kPaxosFt: return "Paxos Commit F=t";
    case Proto::kBft: return "BFT commit";
    default: return "Protocol 2 (commit)";
  }
}

std::vector<std::unique_ptr<sim::Process>> make_fleet(Proto proto,
                                                      const SystemParams& params) {
  std::vector<std::unique_ptr<sim::Process>> fleet;
  for (int i = 0; i < params.n; ++i) {
    switch (proto) {
      case Proto::kTwoPc: {
        baselines::TwoPcProcess::Options options;
        options.params = params;
        options.initial_vote = 1;
        options.policy = baselines::TwoPcTimeoutPolicy::kPresumeAbort;
        fleet.push_back(std::make_unique<baselines::TwoPcProcess>(options));
        break;
      }
      case Proto::kThreePc: {
        baselines::ThreePcProcess::Options options;
        options.params = params;
        options.initial_vote = 1;
        fleet.push_back(std::make_unique<baselines::ThreePcProcess>(options));
        break;
      }
      case Proto::kQ3pc: {
        baselines::Q3pcProcess::Options options;
        options.params = params;
        options.initial_vote = 1;
        fleet.push_back(std::make_unique<baselines::Q3pcProcess>(options));
        break;
      }
      case Proto::kPaxosF0:
      case Proto::kPaxosFt: {
        baselines::PaxosCommitProcess::Options options;
        options.params = params;
        options.initial_vote = 1;
        options.f = proto == Proto::kPaxosF0 ? 0 : -1;
        fleet.push_back(std::make_unique<baselines::PaxosCommitProcess>(options));
        break;
      }
      case Proto::kBft: {
        baselines::BftCommitProcess::Options options;
        options.params = params;
        options.initial_vote = 1;
        fleet.push_back(std::make_unique<baselines::BftCommitProcess>(options));
        break;
      }
      case Proto::kOurs: {
        protocol::CommitProcess::Options options;
        options.params = params;
        options.initial_vote = 1;
        fleet.push_back(std::make_unique<protocol::CommitProcess>(options));
        break;
      }
    }
  }
  return fleet;
}

constexpr Proto kAllProtos[] = {Proto::kTwoPc,   Proto::kThreePc, Proto::kQ3pc,
                                Proto::kPaxosF0, Proto::kPaxosFt, Proto::kBft,
                                Proto::kOurs};
constexpr int kNs[] = {3, 5, 7, 9};

void cost_tables(bench::Context& ctx) {
  const int runs = ctx.runs(100);
  Table messages({"protocol", "n=3", "n=5", "n=7", "n=9"});
  Table rounds({"protocol", "n=3", "n=5", "n=7", "n=9"});
  for (auto proto : kAllProtos) {
    std::vector<std::string> msg_row{proto_name(proto)};
    std::vector<std::string> round_row{proto_name(proto)};
    for (int n : kNs) {
      const SystemParams params{.n = n, .t = (n - 1) / 2, .k = 2};
      Samples msg_samples;
      Samples round_samples;
      for (int run = 0; run < runs; ++run) {
        const auto seed = ctx.derive_seed(static_cast<uint64_t>(run * 37 + n));
        sim::Simulator sim({.seed = seed, .record_trace = true},
                           make_fleet(proto, params),
                           adversary::make_on_time_adversary());
        const auto result = sim.run();
        if (result.status != sim::RunStatus::kAllDecided) continue;
        msg_samples.add(static_cast<double>(result.messages_sent));
        const auto m = metrics::measure_run(result, params.k);
        round_samples.add(static_cast<double>(m.max_decision_round));
      }
      msg_row.push_back(Table::num(msg_samples.mean(), 0));
      round_row.push_back(Table::num(round_samples.mean(), 1));
    }
    messages.row(std::move(msg_row));
    rounds.row(std::move(round_row));
  }
  ctx.out() << "\nMessage complexity (failure-free, on-time, all-yes):\n";
  ctx.table("messages_per_decision", messages);
  ctx.out() << "\nAsynchronous rounds to decision (same runs):\n";
  ctx.table("rounds_to_decision", rounds);
}

void claim_f0_equals_twopc(bench::Context& ctx) {
  // Exact per-n equality of the failure-free message count, not a mean: the
  // reduction is structural (begin ↔ vote-req, ballot-0 2a ↔ yes vote,
  // outcome ↔ decision broadcast), so any difference is a bug.
  bool equal = true;
  std::string measured;
  for (int n : kNs) {
    const SystemParams params{.n = n, .t = (n - 1) / 2, .k = 2};
    sim::Simulator paxos({.seed = ctx.derive_seed(1)},
                         make_fleet(Proto::kPaxosF0, params),
                         adversary::make_on_time_adversary());
    const auto paxos_result = paxos.run();
    sim::Simulator twopc({.seed = ctx.derive_seed(1)},
                         make_fleet(Proto::kTwoPc, params),
                         adversary::make_on_time_adversary());
    const auto twopc_result = twopc.run();
    equal = equal && paxos_result.status == sim::RunStatus::kAllDecided &&
            twopc_result.status == sim::RunStatus::kAllDecided &&
            paxos_result.messages_sent == twopc_result.messages_sent;
    measured += "n=" + std::to_string(n) + ": " +
                std::to_string(paxos_result.messages_sent) + " vs " +
                std::to_string(twopc_result.messages_sent) + "  ";
  }
  ctx.claim({.claim_id = "paxos_f0_2pc",
             .paper = "Gray–Lamport §4.1: F=0 Paxos Commit sends exactly 2PC's "
                      "message count on the failure-free path",
             .measured = measured,
             .holds = equal});
}

void claim_c13_safe(bench::Context& ctx) {
  // The paper's §1 scenario (E7's C13 shape): one clique of messages held
  // far past every timeout while the rest of the run proceeds. 2PC/3PC split
  // decisions here; Paxos Commit must neither conflict nor block.
  const int runs = ctx.runs(100);
  int conflicts = 0;
  int blocked = 0;
  for (int run = 0; run < runs; ++run) {
    const SystemParams params{.n = 5, .t = 2, .k = 2};
    std::vector<adversary::LateRule> rules;
    rules.push_back({.from = 0, .to = 1, .nth = 0, .extra_delay = 150});
    rules.push_back({.from = 0, .to = 1, .nth = 1, .extra_delay = 150});
    rules.push_back({.from = 2, .to = 1, .nth = 0, .extra_delay = 150});
    rules.push_back({.from = 1, .to = 0, .nth = 0, .extra_delay = 150});
    sim::Simulator sim(
        {.seed = ctx.derive_seed(1000 + static_cast<uint64_t>(run)),
         .max_events = 100'000},
        make_fleet(Proto::kPaxosFt, {.n = 5, .t = 2, .k = 2}),
        std::make_unique<adversary::LateMessageAdversary>(std::move(rules)));
    const auto result = sim.run();
    if (result.has_conflicting_decisions()) ++conflicts;
    if (result.status != sim::RunStatus::kAllDecided) ++blocked;
    (void)params;
  }
  ctx.claim({.claim_id = "paxos_c13_safe",
             .paper = "a late message neither splits nor blocks Paxos Commit "
                      "(safety is quorum intersection, not timeouts)",
             .measured = std::to_string(conflicts) + " conflicts, " +
                         std::to_string(blocked) + " blocked of " +
                         std::to_string(runs) + " late-message runs",
             .holds = conflicts == 0 && blocked == 0});
}

void claim_nonblocking(bench::Context& ctx) {
  // Kill the coordinator/ballot-0 leader at its outcome-broadcast step
  // (clock 2 in the delay-1 schedule — E7's scenario B), suppressing every
  // copy: the participants have voted Yes and sit in the uncertainty window,
  // where blocking 2PC (the safe variant, C13b) waits forever. Paxos
  // Commit's recovery leaders finish the run for every survivor. (Crashing
  // earlier would be too kind to 2PC — before voting, even the blocking
  // variant may presume abort.)
  const int runs = ctx.runs(50);
  int twopc_stalled = 0;
  int paxos_decided = 0;
  for (int run = 0; run < runs; ++run) {
    const SystemParams params{.n = 5, .t = 2, .k = 2};
    const auto seed = ctx.derive_seed(2000 + static_cast<uint64_t>(run));
    const auto crash_adv = [&] {
      adversary::CrashPlan plan{.victim = 0, .at_clock = 2,
                                .suppress_sends_to = {1, 2, 3, 4}};
      return std::make_unique<adversary::CrashAdversary>(
          adversary::make_on_time_adversary(),
          std::vector<adversary::CrashPlan>{plan});
    };

    auto blocking = make_fleet(Proto::kTwoPc, params);
    for (size_t i = 0; i < blocking.size(); ++i) {
      baselines::TwoPcProcess::Options options;
      options.params = params;
      options.initial_vote = 1;
      options.policy = baselines::TwoPcTimeoutPolicy::kBlock;
      blocking[i] = std::make_unique<baselines::TwoPcProcess>(options);
    }
    sim::Simulator twopc({.seed = seed, .max_events = 20'000}, std::move(blocking),
                         crash_adv());
    if (twopc.run().status != sim::RunStatus::kAllDecided) ++twopc_stalled;

    sim::Simulator paxos({.seed = seed, .max_events = 100'000},
                         make_fleet(Proto::kPaxosFt, params), crash_adv());
    const auto result = paxos.run();
    bool survivors_decided = result.status == sim::RunStatus::kAllDecided;
    for (size_t p = 1; p < result.decisions.size(); ++p) {
      survivors_decided = survivors_decided && result.decisions[p].has_value();
    }
    if (survivors_decided && !result.has_conflicting_decisions()) ++paxos_decided;
  }
  ctx.claim({.claim_id = "paxos_nonblocking",
             .paper = "a dead coordinator blocks safe 2PC forever; Paxos "
                      "Commit's rotating recovery leaders decide",
             .measured = std::to_string(twopc_stalled) + "/" + std::to_string(runs) +
                         " blocking-2PC stalls, " + std::to_string(paxos_decided) +
                         "/" + std::to_string(runs) + " Paxos recoveries",
             .holds = twopc_stalled == runs && paxos_decided == runs});
}

void claim_bft_byzantine_safe(bench::Context& ctx) {
  // Seed-derived traitors (equivocation, stale replay, vote corruption) under
  // random schedules: honest processors must stay unanimous and must never
  // commit over an honest No vote.
  const int runs = ctx.runs(100);
  int violations = 0;
  int undecided = 0;
  for (int run = 0; run < runs; ++run) {
    const int32_t n = 7;
    const auto seed = ctx.derive_seed(3000 + static_cast<uint64_t>(run));
    RandomTape vote_tape(seed ^ 0x5eedULL);
    std::vector<int> votes(static_cast<size_t>(n));
    for (auto& v : votes) v = vote_tape.flip();

    std::vector<std::unique_ptr<sim::Process>> fleet;
    for (int32_t i = 0; i < n; ++i) {
      baselines::BftCommitProcess::Options options;
      options.params = {.n = n, .t = (n - 1) / 2, .k = 2};
      options.initial_vote = votes[static_cast<size_t>(i)];
      fleet.push_back(std::make_unique<baselines::BftCommitProcess>(options));
    }
    const auto plans = adversary::random_byzantine_plans(
        seed ^ 0xb12aULL, n, baselines::BftCommitProcess::max_faulty(n),
        /*max_start_clock=*/16);
    adversary::wrap_byzantine(fleet, plans);

    sim::Simulator sim({.seed = seed, .max_events = 100'000}, std::move(fleet),
                       adversary::make_random_adversary(seed, /*max_delay=*/4));
    const auto result = sim.run();
    if (result.status != sim::RunStatus::kAllDecided) {
      ++undecided;
      continue;
    }
    std::vector<bool> honest(static_cast<size_t>(n), true);
    for (const auto& plan : plans) honest[static_cast<size_t>(plan.victim)] = false;
    if (!protocol::agreement_holds_among(result, honest) ||
        !protocol::abort_validity_holds_among(result, votes, honest)) {
      ++violations;
    }
  }
  ctx.claim({.claim_id = "bft_byzantine_safe",
             .paper = "up to (n-1)/3 Byzantine traitors never split honest "
                      "decisions or force an honest-No commit",
             .measured = std::to_string(violations) + " honest violations, " +
                         std::to_string(undecided) + " undecided of " +
                         std::to_string(runs) + " Byzantine runs",
             .holds = violations == 0 && undecided == 0});
}

void body(bench::Context& ctx) {
  ctx.out() << "E18: commit baselines — Paxos Commit and BFT commit vs "
               "2PC/3PC/Q3PC/Protocol 2\n";
  cost_tables(ctx);
  claim_f0_equals_twopc(ctx);
  claim_c13_safe(ctx);
  claim_nonblocking(ctx);
  claim_bft_byzantine_safe(ctx);
  ctx.out() << "\nPaxos Commit buys 2PC's fast path plus nonblocking recovery "
               "for 2F+1 acceptors;\nBFT commit pays a full quadratic echo "
               "round for Byzantine resilience (see docs/baselines.md).\n";
}

}  // namespace

int main(int argc, char** argv) {
  return rcommit::bench::run(
      argc, argv,
      {"E18", "bench_commit_baselines",
       "Paxos Commit and BFT commit vs 2PC/3PC/Q3PC/Protocol 2 (cost + safety)",
       {"paxos_f0_2pc", "paxos_c13_safe", "paxos_nonblocking",
        "bft_byzantine_safe"}},
      body);
}
