// E9 — message cost per decision across protocols.
//
// Not a numbered claim in the paper, but the natural cost-side companion to
// its comparison: Protocol 2 buys timing-robustness with O(n^2) messages per
// stage (everyone broadcasts), where coordinator-based 2PC/3PC spend O(n) —
// and pay for it with late-message fragility (see E7).
#include <iostream>
#include <memory>
#include <vector>

#include "adversary/basic.h"
#include "baselines/benor.h"
#include "baselines/threepc.h"
#include "baselines/twopc.h"
#include "common/stats.h"
#include "protocol/commit.h"
#include "sim/simulator.h"

namespace {

using namespace rcommit;

enum class Proto { kOurs, kAgreementOnly, kTwoPc, kThreePc };

const char* proto_name(Proto p) {
  switch (p) {
    case Proto::kOurs: return "Protocol 2 (commit)";
    case Proto::kAgreementOnly: return "Protocol 1 (agreement)";
    case Proto::kTwoPc: return "2PC";
    default: return "3PC";
  }
}

std::vector<std::unique_ptr<sim::Process>> make_fleet(Proto proto,
                                                      const SystemParams& params,
                                                      uint64_t seed) {
  std::vector<std::unique_ptr<sim::Process>> fleet;
  RandomTape coin_rng(seed);
  const auto coins = coin_rng.flip_bits(params.n);
  for (int i = 0; i < params.n; ++i) {
    switch (proto) {
      case Proto::kOurs: {
        protocol::CommitProcess::Options options;
        options.params = params;
        options.initial_vote = 1;
        fleet.push_back(std::make_unique<protocol::CommitProcess>(options));
        break;
      }
      case Proto::kAgreementOnly:
        fleet.push_back(baselines::make_shared_coin_process(params, 1, coins));
        break;
      case Proto::kTwoPc: {
        baselines::TwoPcProcess::Options options;
        options.params = params;
        options.initial_vote = 1;
        fleet.push_back(std::make_unique<baselines::TwoPcProcess>(options));
        break;
      }
      case Proto::kThreePc: {
        baselines::ThreePcProcess::Options options;
        options.params = params;
        options.initial_vote = 1;
        fleet.push_back(std::make_unique<baselines::ThreePcProcess>(options));
        break;
      }
    }
  }
  return fleet;
}

}  // namespace

int main() {
  using rcommit::Table;
  constexpr int kRuns = 300;

  std::cout << "E9: messages sent per decided instance (failure-free, on-time)\n"
            << kRuns << " runs per cell\n\n";

  Table table({"protocol", "n=3", "n=5", "n=9", "n=13"});
  for (auto proto : {Proto::kOurs, Proto::kAgreementOnly, Proto::kTwoPc,
                     Proto::kThreePc}) {
    std::vector<std::string> row{proto_name(proto)};
    for (int n : {3, 5, 9, 13}) {
      SystemParams params{.n = n, .t = (n - 1) / 2, .k = 2};
      Samples messages;
      for (int run = 0; run < kRuns; ++run) {
        const auto seed = static_cast<uint64_t>(run * 29 + n);
        sim::Simulator sim({.seed = seed, .record_trace = false},
                           make_fleet(proto, params, seed),
                           adversary::make_on_time_adversary());
        const auto result = sim.run();
        if (result.status == sim::RunStatus::kAllDecided) {
          messages.add(static_cast<double>(result.messages_sent));
        }
      }
      row.push_back(Table::num(messages.mean(), 0));
    }
    table.row(std::move(row));
  }
  table.print(std::cout);
  std::cout << "\nProtocol 2 pays O(n^2) messages per stage for coordinator-free "
               "timing robustness;\n2PC/3PC are O(n) but fail under one late "
               "message (see bench_late_messages).\n";
  return 0;
}
