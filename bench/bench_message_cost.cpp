// E9 — message cost per decision across protocols.
//
// Not a numbered claim in the paper, but the natural cost-side companion to
// its comparison: Protocol 2 buys timing-robustness with O(n^2) messages per
// stage (everyone broadcasts), where coordinator-based 2PC/3PC spend O(n) —
// and pay for it with late-message fragility (see E7).
#include <memory>
#include <vector>

#include "adversary/basic.h"
#include "baselines/benor.h"
#include "baselines/threepc.h"
#include "baselines/twopc.h"
#include "bench/harness.h"
#include "common/stats.h"
#include "protocol/commit.h"
#include "sim/simulator.h"

namespace {

using namespace rcommit;

enum class Proto { kOurs, kAgreementOnly, kTwoPc, kThreePc };

const char* proto_name(Proto p) {
  switch (p) {
    case Proto::kOurs: return "Protocol 2 (commit)";
    case Proto::kAgreementOnly: return "Protocol 1 (agreement)";
    case Proto::kTwoPc: return "2PC";
    default: return "3PC";
  }
}

std::vector<std::unique_ptr<sim::Process>> make_fleet(Proto proto,
                                                      const SystemParams& params,
                                                      uint64_t seed) {
  std::vector<std::unique_ptr<sim::Process>> fleet;
  RandomTape coin_rng(seed);
  const auto coins = coin_rng.flip_bits(params.n);
  for (int i = 0; i < params.n; ++i) {
    switch (proto) {
      case Proto::kOurs: {
        protocol::CommitProcess::Options options;
        options.params = params;
        options.initial_vote = 1;
        fleet.push_back(std::make_unique<protocol::CommitProcess>(options));
        break;
      }
      case Proto::kAgreementOnly:
        fleet.push_back(baselines::make_shared_coin_process(params, 1, coins));
        break;
      case Proto::kTwoPc: {
        baselines::TwoPcProcess::Options options;
        options.params = params;
        options.initial_vote = 1;
        fleet.push_back(std::make_unique<baselines::TwoPcProcess>(options));
        break;
      }
      case Proto::kThreePc: {
        baselines::ThreePcProcess::Options options;
        options.params = params;
        options.initial_vote = 1;
        fleet.push_back(std::make_unique<baselines::ThreePcProcess>(options));
        break;
      }
    }
  }
  return fleet;
}

void body(bench::Context& ctx) {
  using rcommit::Table;
  const int runs = ctx.runs(300);

  ctx.out() << "E9: messages sent per decided instance (failure-free, on-time)\n"
            << runs << " runs per cell\n\n";

  Table table({"protocol", "n=3", "n=5", "n=9", "n=13"});
  for (auto proto : {Proto::kOurs, Proto::kAgreementOnly, Proto::kTwoPc,
                     Proto::kThreePc}) {
    std::vector<std::string> row{proto_name(proto)};
    for (int n : {3, 5, 9, 13}) {
      SystemParams params{.n = n, .t = (n - 1) / 2, .k = 2};
      Samples messages;
      for (int run = 0; run < runs; ++run) {
        const auto seed = ctx.derive_seed(static_cast<uint64_t>(run * 29 + n));
        sim::Simulator sim({.seed = seed, .record_trace = false},
                           make_fleet(proto, params, seed),
                           adversary::make_on_time_adversary());
        const auto result = sim.run();
        if (result.status == sim::RunStatus::kAllDecided) {
          messages.add(static_cast<double>(result.messages_sent));
        }
      }
      row.push_back(Table::num(messages.mean(), 0));
      if (proto == Proto::kOurs && n == 13) {
        ctx.scalar("ours_mean_messages_n13", messages.mean(), "messages");
      }
    }
    table.row(std::move(row));
  }
  ctx.table("messages_per_decision", table);
  ctx.out() << "\nProtocol 2 pays O(n^2) messages per stage for coordinator-free "
               "timing robustness;\n2PC/3PC are O(n) but fail under one late "
               "message (see bench_late_messages).\n";
}

}  // namespace

int main(int argc, char** argv) {
  return rcommit::bench::run(
      argc, argv,
      {"E9", "bench_message_cost",
       "messages per decided instance across protocols (cost companion to E7)",
       {}},
      body);
}
