// E17 — coverage-guided schedule search vs pure random seeding.
//
// The search loop (src/swarm/coverage.h, docs/coverage-search.md) claims
// that spending a run budget on corpus mutation buys more *behavioral*
// coverage than spending the same budget on fresh random seeds. This bench
// measures that directly: novel run fingerprints per CPU-second, at equal
// run budgets, for two spending policies on the same cell shape:
//
//   random    every run is a fresh seed of the cell's adversary
//             (run_search with mutation_runs = 0);
//   coverage  1/4 of the budget seeds, 3/4 mutates corpus entries
//             (the search default split).
//
// The gated cell is commit × random-adversary × n=5. The choice is the
// point, not a convenience: the random adversary never crashes anybody, so
// pure seeding can only ever explore the crash-free slice of the fingerprint
// space, and it saturates there quickly (the log2 bucketing in the
// fingerprint is designed to make that happen). The mutation operators —
// crash injection above all — walk out of that slice, so the coverage curve
// keeps climbing after the random curve has flattened. The claim gates on
// the largest budget checkpoint: coverage must find >=2x the novel
// fingerprints per CPU-second. Both numerators are counted exactly and both
// denominators are measured back-to-back in one process, so the ratio is
// robust to how fast the runner is.
//
// A crash-adversary grid is reported for contrast, not gated: when the
// seeding adversary already crashes processors, random seeding reaches most
// of the space on its own and the coverage advantage thins to the tail —
// the same Amdahl-style dilution E16 reports for its random-schedule rows.
#include <string>
#include <vector>

#include "bench/harness.h"
#include "common/stats.h"
#include "swarm/coverage.h"
#include "swarm/matrix.h"

namespace {

using namespace rcommit;

struct ModeResult {
  size_t novel = 0;
  int64_t runs = 0;
  int64_t events = 0;
  double seconds = 0;

  [[nodiscard]] double novel_per_sec() const {
    return seconds > 0 ? static_cast<double>(novel) / seconds : 0;
  }
};

/// One search at a fixed run budget. `mutate` picks the spending policy:
/// false = the whole budget on fresh adversary seeds, true = the search
/// default 1/4 seed + 3/4 mutation split. Single chain, single thread, so
/// elapsed wall time is CPU time.
ModeResult run_mode(const bench::Context& ctx, swarm::AdversaryKind adversary,
                    int budget, bool mutate) {
  swarm::SearchOptions options;
  options.cell.protocol = swarm::ProtocolKind::kCommit;
  options.cell.adversary = adversary;
  options.cell.n = 5;
  options.cell.t = 2;
  options.cell.k = 2;
  options.cell.seed = ctx.derive_seed(1);
  options.chains = 1;
  options.threads = 1;
  options.seed_runs = mutate ? budget / 4 : budget;
  options.mutation_runs = mutate ? budget - budget / 4 : 0;
  options.artifacts_dir.clear();  // commit never violates; nothing to archive

  const auto summary = swarm::run_search(options);
  ModeResult mode;
  mode.novel = summary.novel_fingerprints;
  mode.runs = summary.runs_executed;
  mode.events = summary.events_executed;
  mode.seconds = summary.elapsed_seconds;
  return mode;
}

void body(bench::Context& ctx) {
  using rcommit::Table;
  const std::vector<int> budgets = ctx.quick()
                                       ? std::vector<int>{64, 128, 256, 512}
                                       : std::vector<int>{128, 256, 512, 1024, 2048};
  const int gate_budget = budgets.back();

  ctx.out() << "E17: novel fingerprints per CPU-second, coverage-guided vs "
               "pure random seeding, commit x random-adversary x n=5\n\n";

  // Untimed warmup: first-touch costs (allocator, code pages, CPU clocks)
  // land here instead of inside the smallest checkpoint's timing window.
  (void)run_mode(ctx, swarm::AdversaryKind::kRandom, budgets.front(), true);

  // --- gated curve: the random (crash-free) seeding adversary --------------
  Table curve({"budget", "mode", "novel", "cpu_s", "novel/s", "ratio"});
  double gate_ratio = 0;
  ModeResult gate_random;
  ModeResult gate_coverage;
  for (const int budget : budgets) {
    const auto random = run_mode(ctx, swarm::AdversaryKind::kRandom, budget, false);
    const auto coverage = run_mode(ctx, swarm::AdversaryKind::kRandom, budget, true);
    const double ratio = random.novel_per_sec() > 0
                             ? coverage.novel_per_sec() / random.novel_per_sec()
                             : 0;
    curve.row({Table::num(static_cast<int64_t>(budget)), "random",
               Table::num(static_cast<int64_t>(random.novel)),
               Table::num(random.seconds, 4),
               Table::num(random.novel_per_sec(), 0), ""});
    curve.row({Table::num(static_cast<int64_t>(budget)), "coverage",
               Table::num(static_cast<int64_t>(coverage.novel)),
               Table::num(coverage.seconds, 4),
               Table::num(coverage.novel_per_sec(), 0), Table::num(ratio, 2)});
    ctx.timing({"search_random_b" + std::to_string(budget), random.seconds,
                static_cast<int>(random.runs), 0});
    ctx.timing({"search_coverage_b" + std::to_string(budget), coverage.seconds,
                static_cast<int>(coverage.runs), 0});
    if (budget == gate_budget) {
      gate_ratio = ratio;
      gate_random = random;
      gate_coverage = coverage;
    }
  }
  ctx.table("coverage_curve", curve);

  ctx.scalar("novel_random", static_cast<double>(gate_random.novel));
  ctx.scalar("novel_coverage", static_cast<double>(gate_coverage.novel));
  ctx.scalar("novel_per_cpu_sec_random", gate_random.novel_per_sec(), "1/s");
  ctx.scalar("novel_per_cpu_sec_coverage", gate_coverage.novel_per_sec(), "1/s");
  ctx.scalar("coverage_speedup", gate_ratio, "x");

  char text[96];
  std::snprintf(text, sizeof text, "%.2fx (%zu vs %zu novel at %d runs each)",
                gate_ratio, gate_coverage.novel, gate_random.novel, gate_budget);
  ctx.claim({"coverage_2x",
             "coverage-guided search finds >=2x the novel run fingerprints "
             "per CPU-second of pure random seeding at equal run budget "
             "(commit x random-adversary x n=5)",
             text, gate_ratio >= 2.0});

  // --- contrast grid: the crash adversary, reported not gated --------------
  ctx.out() << "\nContrast: crash-adversary seeding (random seeding already "
               "reaches the crash dimensions; the advantage thins)\n\n";
  Table contrast({"budget", "mode", "novel", "cpu_s", "novel/s", "ratio"});
  const int contrast_budget = budgets[budgets.size() / 2];
  const auto crash_random =
      run_mode(ctx, swarm::AdversaryKind::kCrash, contrast_budget, false);
  const auto crash_coverage =
      run_mode(ctx, swarm::AdversaryKind::kCrash, contrast_budget, true);
  const double crash_ratio =
      crash_random.novel_per_sec() > 0
          ? crash_coverage.novel_per_sec() / crash_random.novel_per_sec()
          : 0;
  contrast.row({Table::num(static_cast<int64_t>(contrast_budget)), "random",
                Table::num(static_cast<int64_t>(crash_random.novel)),
                Table::num(crash_random.seconds, 4),
                Table::num(crash_random.novel_per_sec(), 0), ""});
  contrast.row({Table::num(static_cast<int64_t>(contrast_budget)), "coverage",
                Table::num(static_cast<int64_t>(crash_coverage.novel)),
                Table::num(crash_coverage.seconds, 4),
                Table::num(crash_coverage.novel_per_sec(), 0),
                Table::num(crash_ratio, 2)});
  ctx.table("coverage_contrast_crash", contrast);
  ctx.scalar("coverage_speedup_crash_seeding", crash_ratio, "x");
}

}  // namespace

int main(int argc, char** argv) {
  return rcommit::bench::run(
      argc, argv,
      {"E17", "bench_coverage",
       "coverage-guided schedule search: novel fingerprints per CPU-second "
       "vs pure random seeding at equal run budget",
       {"coverage_2x"}},
      body);
}
